// Avionics mixed-criticality walkthrough: demonstrates fine-grained,
// criticality-aware degradation (paper Section 1, "indirect advantage").
//
// We shrink the platform to 3 flight computers so resources are scarce, then
// fail nodes one at a time and show which flows each mode keeps: BTR sheds
// the in-flight entertainment long before it touches flight control, while a
// black-box scheme would have to drop everything or nothing.

#include <cstdio>

#include "src/common/table.h"
#include "src/core/btr_system.h"
#include "src/workload/generators.h"

int main() {
  using namespace btr;

  Scenario scenario = MakeAvionicsScenario(/*compute_nodes=*/3);
  BtrConfig config;
  config.planner.max_faults = 2;
  config.planner.recovery_bound = Milliseconds(500);
  BtrSystem system(scenario, config);
  const Status st = system.Plan();
  if (!st.ok()) {
    std::printf("planning failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const Dataflow& w = system.scenario().workload;
  std::printf("workload flows by criticality:\n");
  for (TaskId sink : w.SinkIds()) {
    std::printf("  %-15s %s\n", w.task(sink).name.c_str(),
                CriticalityName(w.task(sink).criticality));
  }

  // Show per-mode service as flight computers fail one after another.
  Table table({"failed nodes", "elevator", "outflow_valve", "seatback", "telem_tx",
               "utility", "kept replicas"});
  std::vector<FaultSet> timeline{
      FaultSet(),
      FaultSet({NodeId(5)}),
      FaultSet({NodeId(5), NodeId(6)}),
  };
  for (const FaultSet& faults : timeline) {
    const Plan* plan = system.strategy().Lookup(faults);
    if (plan == nullptr) {
      continue;
    }
    auto served = [&](const char* name) {
      return plan->ServesSink(w.FindTask(name)) ? "served" : "SHED";
    };
    size_t replicas = 0;
    for (uint32_t rep : system.planner().graph().ReplicasOf(w.FindTask("control_law"))) {
      if (plan->placement()[rep].valid()) {
        ++replicas;
      }
    }
    table.AddRow({faults.empty() ? "(none)" : faults.ToString(), served("elevator"),
                  served("outflow_valve"), served("seatback"), served("telem_tx"),
                  CellDouble(plan->utility(), 0), CellInt(static_cast<int64_t>(replicas))});
  }
  std::printf("\nper-mode service (degradation by criticality):\n%s", table.Render().c_str());

  // Now actually run that double-fault timeline.
  system.AddFault({NodeId(5), Milliseconds(300), FaultBehavior::kValueCorruption, 0,
                   NodeId::Invalid(), 0});
  system.AddFault({NodeId(6), Milliseconds(1200), FaultBehavior::kCrash, 0,
                   NodeId::Invalid(), 0});
  auto report = system.Run(250);
  if (!report.ok()) {
    std::printf("run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntwo sequential faults, R = 500 ms each:\n");
  for (const auto& fault : report->faults) {
    std::printf("  %s at %.0f ms: detected +%.1f ms, recovery %.1f ms\n",
                ToString(fault.node).c_str(), ToMillisF(fault.manifested_at),
                ToMillisF(fault.detection_latency), ToMillisF(fault.recovery_time));
  }
  std::printf("  cumulative bad-output time: %.1f ms (k*R bound: 1000 ms)\n",
              ToMillisF(report->correctness.total_bad_time));
  std::printf("  Definition 3.1 violated: %s\n",
              report->correctness.btr_violated ? "YES" : "no");
  return report->correctness.btr_violated ? 1 : 0;
}
