// SCADA pressure vessel: couples the BTR control system to a physical plant
// model and shows the actual "five-second rule" — how long the plant itself
// tolerates the outage BTR is allowed to cause during recovery.
//
// The BTR side answers: "how long are outputs wrong after a fault?" (R_meas)
// The plant side answers: "how long may outputs be wrong before physical
// damage?" (R_max). BTR is safe for this plant iff R_meas <= R_max, which is
// exactly how the paper says R should be provisioned (R := D / f).

#include <cstdio>

#include "src/core/btr_system.h"
#include "src/plant/models.h"
#include "src/plant/outage_analysis.h"
#include "src/workload/generators.h"

int main() {
  using namespace btr;

  // --- plant side: empirical tolerance of the vessel ---
  PressureVessel vessel;
  auto controller = MakePressureController();
  OutageParams params;
  params.mode = OutageMode::kFailDefault;  // valve slams shut during outage
  const double r_max = MaxTolerableOutage(&vessel, controller.get(), params, 60.0, 0.05);
  std::printf("pressure vessel: tolerates a control outage of at most %.1f s\n", r_max);
  std::printf("(heat input %.1f bar/s toward the %.0f bar envelope edge)\n\n", 0.6, 16.0);

  // --- BTR side: run the SCADA control system under attack ---
  Scenario scenario = MakeScadaScenario();
  BtrConfig config;
  config.planner.max_faults = 1;
  // Provision R comfortably below the plant's physical tolerance.
  config.planner.recovery_bound = Seconds(2);
  BtrSystem system(scenario, config);
  if (!system.Plan().ok()) {
    std::printf("planning failed\n");
    return 1;
  }

  const Dataflow& w = system.scenario().workload;
  const Plan* root = system.strategy().Lookup(FaultSet());
  const NodeId victim =
      root->placement()[system.planner().graph().PrimaryOf(w.FindTask("relief_logic"))];
  system.AddFault({victim, Seconds(1), FaultBehavior::kValueCorruption, 0,
                   NodeId::Invalid(), 0});
  std::printf("attack: PLC %s (relief logic) signs corrupted valve commands from t=1 s\n",
              ToString(victim).c_str());

  auto report = system.Run(200);  // 10 s at 50 ms scan cycle
  if (!report.ok()) {
    std::printf("run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const double r_meas = ToSecondsF(report->correctness.max_recovery);
  std::printf("BTR: wrong/missing valve commands for %.3f s (R budget %.0f s)\n", r_meas,
              ToSecondsF(config.planner.recovery_bound));

  // --- close the loop: replay that outage against the plant ---
  params.outage = r_meas;
  const OutageResult impact = SimulateOutage(&vessel, controller.get(), params);
  std::printf("\nplant impact of that outage:\n");
  std::printf("  peak excursion:    %.0f%% of the way to the envelope edge\n",
              impact.max_excursion * 100.0);
  std::printf("  envelope violated: %s\n", impact.violated ? "YES" : "no");
  std::printf("  plant recovered:   %s\n", impact.recovered ? "yes" : "NO");
  std::printf("\nverdict: BTR recovery (%.3f s) %s the vessel's five-second rule (%.1f s)\n",
              r_meas, r_meas <= r_max ? "respects" : "VIOLATES", r_max);
  return impact.violated ? 1 : 0;
}
