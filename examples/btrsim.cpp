// btrsim — command-line driver for the BTR simulator.
//
//   btrsim [--scenario avionics|scada|convoy|random] [--nodes N] [--seed S]
//          [--f F] [--recovery-ms R] [--periods P]
//          [--fault BEHAVIOR] [--fault-node N] [--fault-at-ms T]
//          [--analyze] [--save-strategy FILE] [--verbose]
//
// Examples:
//   btrsim --scenario scada --fault value-corruption --fault-at-ms 500
//   btrsim --scenario avionics --f 2 --analyze
//   btrsim --scenario random --seed 9 --periods 500

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "src/common/log.h"
#include "src/core/btr_system.h"
#include "src/core/strategy_io.h"
#include "src/workload/generators.h"

namespace {

using namespace btr;

struct Options {
  std::string scenario = "avionics";
  size_t nodes = 6;
  uint64_t seed = 1;
  uint32_t f = 1;
  int64_t recovery_ms = 500;
  uint64_t periods = 200;
  std::optional<std::string> fault;
  std::optional<uint32_t> fault_node;
  int64_t fault_at_ms = 200;
  bool analyze = false;
  std::optional<std::string> save_strategy;
  bool verbose = false;
};

std::optional<FaultBehavior> ParseBehavior(const std::string& name) {
  const struct {
    const char* name;
    FaultBehavior behavior;
  } table[] = {
      {"crash", FaultBehavior::kCrash},
      {"value-corruption", FaultBehavior::kValueCorruption},
      {"omission", FaultBehavior::kOmission},
      {"selective-omission", FaultBehavior::kSelectiveOmission},
      {"delay", FaultBehavior::kDelay},
      {"equivocate", FaultBehavior::kEquivocate},
      {"evidence-flood", FaultBehavior::kEvidenceFlood},
  };
  for (const auto& entry : table) {
    if (name == entry.name) {
      return entry.behavior;
    }
  }
  return std::nullopt;
}

int Usage(const char* argv0) {
  std::printf(
      "usage: %s [--scenario avionics|scada|convoy|random] [--nodes N]\n"
      "          [--seed S] [--f F] [--recovery-ms R] [--periods P]\n"
      "          [--fault crash|value-corruption|omission|selective-omission|\n"
      "                   delay|equivocate|evidence-flood]\n"
      "          [--fault-node N] [--fault-at-ms T]\n"
      "          [--analyze] [--save-strategy FILE] [--verbose]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      opts.scenario = next("--scenario");
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<size_t>(std::atoll(next("--nodes")));
    } else if (arg == "--seed") {
      opts.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--f") {
      opts.f = static_cast<uint32_t>(std::atoi(next("--f")));
    } else if (arg == "--recovery-ms") {
      opts.recovery_ms = std::atoll(next("--recovery-ms"));
    } else if (arg == "--periods") {
      opts.periods = static_cast<uint64_t>(std::atoll(next("--periods")));
    } else if (arg == "--fault") {
      opts.fault = next("--fault");
    } else if (arg == "--fault-node") {
      opts.fault_node = static_cast<uint32_t>(std::atoi(next("--fault-node")));
    } else if (arg == "--fault-at-ms") {
      opts.fault_at_ms = std::atoll(next("--fault-at-ms"));
    } else if (arg == "--analyze") {
      opts.analyze = true;
    } else if (arg == "--save-strategy") {
      opts.save_strategy = next("--save-strategy");
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.verbose) {
    SetLogLevel(LogLevel::kInfo);
  }

  Scenario scenario;
  if (opts.scenario == "avionics") {
    scenario = MakeAvionicsScenario(opts.nodes);
  } else if (opts.scenario == "scada") {
    scenario = MakeScadaScenario(opts.nodes);
  } else if (opts.scenario == "convoy") {
    scenario = MakeConvoyScenario(std::max<size_t>(opts.nodes / 2, 2));
  } else if (opts.scenario == "random") {
    Rng rng(opts.seed);
    RandomDagParams params;
    params.compute_nodes = opts.nodes;
    scenario = MakeRandomScenario(&rng, params);
  } else {
    return Usage(argv[0]);
  }

  BtrConfig config;
  config.planner.max_faults = opts.f;
  config.planner.recovery_bound = Milliseconds(opts.recovery_ms);
  config.seed = opts.seed;

  BtrSystem system(scenario, config);
  const Status plan_status = system.Plan();
  if (!plan_status.ok()) {
    std::printf("planning failed: %s\n", plan_status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu nodes, %zu tasks, f=%u, R=%lld ms -> %zu modes (%.1f KB/node)\n",
              opts.scenario.c_str(), system.scenario().topology.node_count(),
              system.scenario().workload.task_count(), opts.f,
              static_cast<long long>(opts.recovery_ms), system.strategy().mode_count(),
              static_cast<double>(system.strategy().MemoryFootprintBytes()) / 1024.0);

  if (opts.save_strategy.has_value()) {
    std::ofstream out(*opts.save_strategy);
    out << SaveStrategy(system.strategy(), system.planner().graph(),
                        system.scenario().topology);
    std::printf("strategy written to %s\n", opts.save_strategy->c_str());
  }

  if (opts.analyze) {
    const TransitionAnalysis analysis = system.AnalyzeRecoveryBound();
    std::printf("offline analysis: worst transition %.1f ms (detection bound %.1f ms) -> %s\n",
                ToMillisF(analysis.worst_total), ToMillisF(analysis.detection_bound),
                analysis.fits_recovery_bound ? "R is guaranteed" : "R is NOT guaranteed");
    if (const TransitionBound* worst = analysis.Worst()) {
      std::printf("  worst case entering mode %s: spread %.1f + boundary %.1f + "
                  "transfer %.1f + settle %.1f ms\n",
                  worst->to.ToString().c_str(), ToMillisF(worst->evidence_spread),
                  ToMillisF(worst->boundary_wait), ToMillisF(worst->state_transfer),
                  ToMillisF(worst->settle));
    }
  }

  if (opts.fault.has_value()) {
    const auto behavior = ParseBehavior(*opts.fault);
    if (!behavior.has_value()) {
      return Usage(argv[0]);
    }
    NodeId victim;
    if (opts.fault_node.has_value()) {
      victim = NodeId(*opts.fault_node);
    } else {
      // Default victim: host of the most critical compute task's primary.
      const Dataflow& w = system.scenario().workload;
      TaskId target;
      for (TaskId t : w.ComputeIds()) {
        if (!target.valid() || w.task(t).criticality > w.task(target).criticality) {
          target = t;
        }
      }
      victim = system.strategy().Lookup(FaultSet())->placement()[system.planner().graph()
                                                                   .PrimaryOf(target)];
    }
    FaultInjection injection;
    injection.node = victim;
    injection.manifest_at = Milliseconds(opts.fault_at_ms);
    injection.behavior = *behavior;
    injection.delay = system.scenario().workload.period() / 2;
    system.AddFault(injection);
    std::printf("fault: %s on %s at %lld ms\n", opts.fault->c_str(),
                ToString(victim).c_str(), static_cast<long long>(opts.fault_at_ms));
  }

  auto report = system.Run(opts.periods);
  if (!report.ok()) {
    std::printf("run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nran %llu periods (%.2f s simulated, %llu events)\n",
              static_cast<unsigned long long>(report->periods),
              ToSecondsF(report->simulated_time),
              static_cast<unsigned long long>(report->events_executed));
  const CorrectnessReport& c = report->correctness;
  std::printf("sinks: %llu correct / %llu expected (%llu wrong, %llu late, %llu missing, "
              "%llu shed)\n",
              static_cast<unsigned long long>(c.correct_instances),
              static_cast<unsigned long long>(c.total_instances),
              static_cast<unsigned long long>(c.incorrect_value),
              static_cast<unsigned long long>(c.incorrect_late),
              static_cast<unsigned long long>(c.incorrect_missing),
              static_cast<unsigned long long>(c.shed_instances));
  for (const auto& fault : report->faults) {
    std::printf("fault %s (%s): detection %+.2f ms, distribution %+.2f ms, recovery %.2f ms\n",
                ToString(fault.node).c_str(), FaultBehaviorName(fault.behavior),
                ToMillisF(fault.detection_latency), ToMillisF(fault.distribution_latency),
                ToMillisF(fault.recovery_time));
  }
  std::printf("Definition 3.1 (R = %lld ms): %s\n", static_cast<long long>(opts.recovery_ms),
              c.btr_violated ? "VIOLATED" : "holds");
  return c.btr_violated ? 1 : 0;
}
