// btrsim — command-line driver for the BTR simulator.
//
// Experiments are data: the primary interface is a .btrx experiment spec
// (see README "Experiments as data" and examples/specs/):
//
//   btrsim --spec examples/specs/avionics_flap.btrx
//
// A spec describes the whole lifecycle — scenario, BTR config, a timed
// script of fault injections and mid-run system edits (incrementally
// rebuilt and rolled out as sliced patches over the simulated network),
// and optional parameter sweep axes, which btrsim expands into seeded
// runs with a summary table.
//
// The classic flags still work and are sugar: they synthesize a
// single-phase spec and run it through the same path. --dump-spec prints
// the synthesized (or loaded) spec instead of running, so any flag
// invocation can be frozen into a file:
//
//   btrsim --scenario scada --fault value-corruption --fault-at-ms 500
//   btrsim --scenario avionics --f 2 --analyze
//   btrsim --scenario random --seed 9 --periods 500 --dump-spec
//
//   btrsim [--spec FILE] [--scenario avionics|scada|convoy|convoy-mobile|lossy-mesh|random]
//          [--nodes N] [--seed S] [--f F] [--recovery-ms R] [--periods P]
//          [--fault BEHAVIOR] [--fault-node N] [--fault-at-ms T]
//          [--fault-until-ms T] [--analyze] [--save-strategy FILE]
//          [--dump-spec] [--verbose]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "src/common/log.h"
#include "src/common/table.h"
#include "src/core/btr_system.h"
#include "src/core/strategy_io.h"
#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_service.h"
#include "src/spec/experiment_spec.h"
#include "src/workload/generators.h"

namespace {

using namespace btr;

struct Options {
  std::optional<std::string> spec_file;
  std::string scenario = "avionics";
  size_t nodes = 6;
  uint64_t seed = 1;
  uint32_t f = 1;
  int64_t recovery_ms = 500;
  uint64_t periods = 200;
  std::optional<uint32_t> shards;  // overrides the spec; default = auto
  std::optional<std::string> dissem;  // overrides the spec: unicast|gossip
  std::optional<int64_t> beacon_us;
  std::optional<uint32_t> suppress_k;
  std::optional<std::string> pace_fraction;
  std::optional<std::string> wire;
  std::optional<std::string> fault;
  std::optional<uint32_t> fault_node;
  int64_t fault_at_ms = 200;
  std::optional<int64_t> fault_until_ms;
  bool analyze = false;
  std::optional<std::string> save_strategy;
  bool dump_spec = false;
  bool verbose = false;
  // Sweep-service knobs (sweep mode only). jobs = 0: host hardware
  // concurrency; --jobs 1 reproduces the sequential sweep byte-for-byte.
  size_t jobs = 0;
  bool no_cache = false;
  std::optional<std::string> results;
  bool bench_service = false;
};

int Usage(const char* argv0) {
  std::printf(
      "usage: %s [--spec FILE.btrx]\n"
      "          [--scenario avionics|scada|convoy|convoy-mobile|lossy-mesh|random] [--nodes N]\n"
      "          [--seed S] [--f F] [--recovery-ms R] [--periods P] [--shards N]\n"
      "          [--dissem unicast|gossip] [--beacon-us T] [--suppress-k K]\n"
      "          [--pace-fraction F] [--wire v2|v4]\n"
      "          [--fault crash|value-corruption|omission|selective-omission|\n"
      "                   delay|equivocate|evidence-flood]\n"
      "          [--fault-node N] [--fault-at-ms T] [--fault-until-ms T]\n"
      "          [--analyze] [--save-strategy FILE] [--dump-spec] [--verbose]\n"
      "          [--jobs N] [--no-cache] [--results FILE.btrr] [--bench-service]\n",
      argv0);
  return 2;
}

// Flag sugar: the classic single-run flag set as an ExperimentSpec.
StatusOr<ExperimentSpec> SynthesizeSpec(const Options& opts) {
  ExperimentSpec spec;
  spec.name = opts.scenario;
  const auto kind = ParseScenarioKind(opts.scenario);
  if (!kind.has_value() || *kind == SpecScenario::Kind::kInline) {
    return Status::InvalidArgument("unknown scenario '" + opts.scenario + "'");
  }
  spec.scenario.kind = *kind;
  if (*kind == SpecScenario::Kind::kRandom) {
    spec.scenario.scenario_seed = opts.seed;
  }
  spec.scenario.nodes = opts.nodes;
  spec.max_faults = opts.f;
  spec.recovery_bound = Milliseconds(opts.recovery_ms);
  spec.seed = opts.seed;

  SpecPhase phase;
  phase.periods = opts.periods;
  if (opts.fault.has_value()) {
    const auto behavior = ParseFaultBehavior(*opts.fault);
    if (!behavior.has_value()) {
      return Status::InvalidArgument("unknown fault behavior '" + *opts.fault + "'");
    }
    SpecFault fault;
    fault.injection.behavior = *behavior;
    fault.injection.manifest_at = Milliseconds(opts.fault_at_ms);
    if (opts.fault_until_ms.has_value()) {
      if (*opts.fault_until_ms <= opts.fault_at_ms) {
        return Status::InvalidArgument("--fault-until-ms must be after --fault-at-ms");
      }
      fault.injection.until = Milliseconds(*opts.fault_until_ms);
    }
    if (opts.fault_node.has_value()) {
      fault.injection.node = NodeId(*opts.fault_node);
    } else {
      // Default victim: host of the most critical compute task's primary.
      fault.critical_primary = true;
    }
    if (*behavior == FaultBehavior::kDelay) {
      // Half a period late, like the pre-spec CLI.
      StatusOr<Scenario> scenario = BuildScenario(spec.scenario);
      if (!scenario.ok()) {
        return scenario.status();
      }
      fault.injection.delay = scenario->workload.period() / 2;
    }
    phase.faults.push_back(fault);
  }
  spec.phases.push_back(std::move(phase));
  return spec;
}

void PrintPhaseReport(size_t phase, const RunReport& report) {
  std::printf("\nphase %zu: %llu periods (%.2f s simulated, %llu events)\n", phase,
              static_cast<unsigned long long>(report.periods),
              ToSecondsF(report.simulated_time),
              static_cast<unsigned long long>(report.events_executed));
  const CorrectnessReport& c = report.correctness;
  std::printf("sinks: %llu correct / %llu expected (%llu wrong, %llu late, %llu missing, "
              "%llu shed)\n",
              static_cast<unsigned long long>(c.correct_instances),
              static_cast<unsigned long long>(c.total_instances),
              static_cast<unsigned long long>(c.incorrect_value),
              static_cast<unsigned long long>(c.incorrect_late),
              static_cast<unsigned long long>(c.incorrect_missing),
              static_cast<unsigned long long>(c.shed_instances));
  for (const auto& fault : report.faults) {
    std::printf("fault %s (%s): detection %+.2f ms, distribution %+.2f ms, "
                "recovery %.2f ms\n",
                ToString(fault.node).c_str(), FaultBehaviorName(fault.behavior),
                ToMillisF(fault.detection_latency), ToMillisF(fault.distribution_latency),
                ToMillisF(fault.recovery_time));
  }
  if (report.install.started_at != kSimTimeNever) {
    const InstallRunReport& ir = report.install;
    std::printf("rollout: %zu nodes installed, %llu patch B + %llu fallback B",
                ir.nodes_installed,
                static_cast<unsigned long long>(ir.patch_bytes_sent),
                static_cast<unsigned long long>(ir.full_bytes_sent));
    if (ir.completed_at != kSimTimeNever) {
      std::printf(", done in %.2f ms", ToMillisF(ir.completed_at - ir.started_at));
    }
    std::printf(" (%zu fallbacks)\n", ir.fallbacks);
  }
}

// Runs one expanded spec; returns the report or prints the failure.
StatusOr<ExperimentReport> RunOne(const ExperimentSpec& spec, const Options& opts,
                                  bool print_phases) {
  ExperimentHooks hooks;
  hooks.after_plan = [&](const BtrSystem& system) {
    std::printf("%s: %zu nodes, %zu tasks, f=%u, R=%.0f ms -> %zu modes (%.1f KB/node)\n",
                spec.name.c_str(), system.scenario().topology.node_count(),
                system.scenario().workload.task_count(), spec.max_faults,
                ToMillisF(spec.recovery_bound), system.strategy().mode_count(),
                static_cast<double>(system.strategy().MemoryFootprintBytes()) / 1024.0);
    if (opts.save_strategy.has_value()) {
      std::ofstream out(*opts.save_strategy);
      out << SaveStrategy(system.strategy(), system.planner().graph(),
                          system.scenario().topology);
      std::printf("strategy written to %s\n", opts.save_strategy->c_str());
    }
    if (opts.analyze) {
      const TransitionAnalysis analysis = system.AnalyzeRecoveryBound();
      std::printf("offline analysis: worst transition %.1f ms (detection bound %.1f ms)"
                  " -> %s\n",
                  ToMillisF(analysis.worst_total), ToMillisF(analysis.detection_bound),
                  analysis.fits_recovery_bound ? "R is guaranteed" : "R is NOT guaranteed");
      if (const TransitionBound* worst = analysis.Worst()) {
        std::printf("  worst case entering mode %s: spread %.1f + boundary %.1f + "
                    "transfer %.1f + settle %.1f ms\n",
                    worst->to.ToString().c_str(), ToMillisF(worst->evidence_spread),
                    ToMillisF(worst->boundary_wait), ToMillisF(worst->state_transfer),
                    ToMillisF(worst->settle));
      }
    }
  };
  if (print_phases) {
    hooks.after_phase = [](size_t phase, const BtrSystem&, const RunReport& report) {
      PrintPhaseReport(phase, report);
    };
  }
  auto report = RunExperiment(spec, hooks);
  if (!report.ok()) {
    std::printf("experiment failed: %s\n", report.status().ToString().c_str());
  }
  return report;
}

bool AnyViolation(const ExperimentReport& report) {
  for (const RunReport& phase : report.phases) {
    if (phase.correctness.btr_violated) {
      return true;
    }
  }
  return false;
}

// Sweep runner: expands the spec's axes through the experiment service —
// parallel job lanes over the fingerprint-keyed strategy cache — prints
// the summary table, and emits one BENCH_JSON row (aggregate throughput +
// combined fingerprint) that ci/run_benches.sh folds into
// BENCH_runtime.json. The rendering is computed from the service's
// deterministic job records, so stdout is byte-identical for every
// --jobs / cache setting (and matches the pre-service sequential loop).
int RunSweep(const ExperimentSpec& spec, const Options& opts) {
  if (opts.analyze || opts.save_strategy.has_value()) {
    std::printf("note: --analyze and --save-strategy apply to single runs and are "
                "ignored in sweep mode\n");
  }
  ServiceOptions service;
  service.jobs = opts.jobs;
  service.cache = !opts.no_cache;
  service.results_path = opts.results.value_or("");
  auto sweep = RunSweepService(spec, service);
  if (!sweep.ok()) {
    std::printf("sweep failed: %s\n", sweep.status().ToString().c_str());
    return 1;
  }
  std::printf("sweep: %zu runs\n\n", sweep->jobs.size());
  Table table({"run", "modes", "correct/expected", "worst recovery", "R", "fingerprint"});
  int failures = 0;
  for (const SweepJobRecord& job : sweep->jobs) {
    if (!job.status.ok()) {
      std::printf("%s failed: %s\n", job.name.c_str(), job.status.ToString().c_str());
      ++failures;
      continue;
    }
    char fp_hex[32];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(job.fingerprint));
    table.AddRow({job.name, std::to_string(job.modes),
                  std::to_string(job.correct) + "/" + std::to_string(job.expected),
                  CellDouble(ToMillisF(job.worst_recovery), 2) + " ms",
                  job.violated ? "VIOLATED" : "holds", fp_hex});
    if (job.violated) {
      ++failures;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  // The row identifies itself by spec name (unlike the bench binaries,
  // sweeps have no --preset; the spec is the preset).
  std::printf(
      "BENCH_JSON {\"bench\":\"spec_sweep\",\"spec\":\"%s\",\"runs\":%zu,"
      "\"events\":%llu,\"fingerprint\":\"%016llx\"}\n",
      spec.name.c_str(), sweep->jobs.size(),
      static_cast<unsigned long long>(sweep->total_events),
      static_cast<unsigned long long>(sweep->combined_fingerprint));
  return failures == 0 ? 0 : 1;
}

// --bench-service: measures the sweep service against its contract on the
// loaded spec. Four passes over the same sweep — {cache off, cache on} x
// {--jobs 1, --jobs 4} — must agree on the combined experiment
// fingerprint; the wall times give the cache economics (cold = cache
// disabled, warm = cache enabled, both at --jobs 1, so the speedup
// isolates the cache from the parallelism). Emits one BENCH_JSON
// sweep_service row for ci/run_benches.sh.
int RunServiceBench(const ExperimentSpec& spec, const Options& opts) {
  struct Pass {
    const char* label;
    size_t jobs;
    bool cache;
  };
  const Pass passes[] = {
      {"nocache/jobs=1", 1, false},
      {"nocache/jobs=4", 4, false},
      {"cache/jobs=1", 1, true},
      {"cache/jobs=4", 4, true},
  };
  uint64_t fp[4] = {0, 0, 0, 0};
  uint64_t wall_us[4] = {0, 0, 0, 0};
  size_t runs = 0;
  double hit_ratio = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    ServiceOptions service;
    service.jobs = passes[i].jobs;
    service.cache = passes[i].cache;
    service.results_path = opts.results.value_or("");
    auto sweep = RunSweepService(spec, service);
    if (!sweep.ok()) {
      std::printf("pass %s failed: %s\n", passes[i].label,
                  sweep.status().ToString().c_str());
      return 1;
    }
    if (sweep->failures != 0) {
      std::printf("pass %s: %zu job(s) failed\n", passes[i].label, sweep->failures);
      return 1;
    }
    fp[i] = sweep->combined_fingerprint;
    wall_us[i] = sweep->wall_us;
    runs = sweep->jobs.size();
    if (passes[i].cache && passes[i].jobs == 1) {
      hit_ratio = sweep->cache_hit_ratio();
    }
    std::printf("%-16s %8.1f ms  hits/misses %llu/%llu  fingerprint %016llx\n",
                passes[i].label, static_cast<double>(sweep->wall_us) / 1000.0,
                static_cast<unsigned long long>(sweep->strategy_cache.hits),
                static_cast<unsigned long long>(sweep->strategy_cache.misses),
                static_cast<unsigned long long>(fp[i]));
  }
  bool identical = true;
  for (size_t i = 1; i < 4; ++i) {
    identical = identical && fp[i] == fp[0];
  }
  const double cold_ms = static_cast<double>(wall_us[0]) / 1000.0;
  const double warm_ms = static_cast<double>(wall_us[2]) / 1000.0;
  const double parallel_ms = static_cast<double>(wall_us[3]) / 1000.0;
  std::printf("\nfingerprints across {cache on,off} x {jobs 1,4}: %s\n",
              identical ? "identical" : "DIVERGED");
  std::printf("cache speedup at --jobs 1: %.2fx (%.1f ms -> %.1f ms), hit ratio %.3f\n",
              warm_ms > 0 ? cold_ms / warm_ms : 0.0, cold_ms, warm_ms, hit_ratio);
  std::printf(
      "BENCH_JSON {\"bench\":\"sweep_service\",\"spec\":\"%s\",\"runs\":%zu,"
      "\"cold_ms\":%.1f,\"warm_ms\":%.1f,\"parallel_ms\":%.1f,"
      "\"cache_speedup\":%.2f,\"hit_ratio\":%.3f,\"fingerprints_identical\":%s,"
      "\"fingerprint\":\"%016llx\"}\n",
      spec.name.c_str(), runs, cold_ms, warm_ms, parallel_ms,
      warm_ms > 0 ? cold_ms / warm_ms : 0.0, hit_ratio, identical ? "true" : "false",
      static_cast<unsigned long long>(fp[0]));
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spec") {
      opts.spec_file = next("--spec");
    } else if (arg == "--scenario") {
      opts.scenario = next("--scenario");
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<size_t>(std::atoll(next("--nodes")));
    } else if (arg == "--seed") {
      opts.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--f") {
      opts.f = static_cast<uint32_t>(std::atoi(next("--f")));
    } else if (arg == "--recovery-ms") {
      opts.recovery_ms = std::atoll(next("--recovery-ms"));
    } else if (arg == "--periods") {
      opts.periods = static_cast<uint64_t>(std::atoll(next("--periods")));
    } else if (arg == "--shards") {
      opts.shards = static_cast<uint32_t>(std::atoi(next("--shards")));
    } else if (arg == "--dissem") {
      opts.dissem = next("--dissem");
    } else if (arg == "--beacon-us") {
      opts.beacon_us = std::atoll(next("--beacon-us"));
    } else if (arg == "--suppress-k") {
      opts.suppress_k = static_cast<uint32_t>(std::atoi(next("--suppress-k")));
    } else if (arg == "--pace-fraction") {
      opts.pace_fraction = next("--pace-fraction");
    } else if (arg == "--wire") {
      opts.wire = next("--wire");
    } else if (arg == "--fault") {
      opts.fault = next("--fault");
    } else if (arg == "--fault-node") {
      opts.fault_node = static_cast<uint32_t>(std::atoi(next("--fault-node")));
    } else if (arg == "--fault-at-ms") {
      opts.fault_at_ms = std::atoll(next("--fault-at-ms"));
    } else if (arg == "--fault-until-ms") {
      opts.fault_until_ms = std::atoll(next("--fault-until-ms"));
    } else if (arg == "--analyze") {
      opts.analyze = true;
    } else if (arg == "--save-strategy") {
      opts.save_strategy = next("--save-strategy");
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<size_t>(std::atoll(next("--jobs")));
    } else if (arg == "--no-cache") {
      opts.no_cache = true;
    } else if (arg == "--results") {
      opts.results = next("--results");
    } else if (arg == "--bench-service") {
      opts.bench_service = true;
    } else if (arg == "--dump-spec") {
      opts.dump_spec = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.verbose) {
    SetLogLevel(LogLevel::kInfo);
  }

  ExperimentSpec spec;
  if (opts.spec_file.has_value()) {
    std::ifstream in(*opts.spec_file);
    if (!in) {
      std::printf("cannot read %s\n", opts.spec_file->c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = ParseExperimentSpec(buffer.str());
    if (!parsed.ok()) {
      std::printf("%s: %s\n", opts.spec_file->c_str(),
                  parsed.status().ToString().c_str());
      return 1;
    }
    spec = std::move(parsed).value();
  } else {
    auto synthesized = SynthesizeSpec(opts);
    if (!synthesized.ok()) {
      std::printf("%s\n", synthesized.status().ToString().c_str());
      return Usage(argv[0]);
    }
    spec = std::move(synthesized).value();
  }

  // The flag outranks the loaded spec (reports are identical either way —
  // sharding only changes how fast they arrive).
  if (opts.shards.has_value()) {
    spec.shards = *opts.shards;
  }
  if (opts.dissem.has_value()) {
    if (!ParseDissemMode(*opts.dissem, &spec.dissem)) {
      std::printf("--dissem must be unicast or gossip\n");
      return Usage(argv[0]);
    }
  }
  if (opts.beacon_us.has_value()) {
    spec.beacon_period = Microseconds(*opts.beacon_us);
  }
  if (opts.suppress_k.has_value()) {
    spec.suppress_k = *opts.suppress_k;
  }
  if (opts.pace_fraction.has_value()) {
    if (!ParsePaceFraction(*opts.pace_fraction, &spec.pace_mille)) {
      std::printf("--pace-fraction must be a canonical fraction in (0, 1], e.g. 0.25\n");
      return Usage(argv[0]);
    }
  }
  if (opts.wire.has_value()) {
    if (*opts.wire == "v2") {
      spec.wire_version = 0;
    } else if (*opts.wire == "v4") {
      spec.wire_version = 4;
    } else {
      std::printf("--wire must be v2 or v4\n");
      return Usage(argv[0]);
    }
  }

  if (opts.dump_spec) {
    std::printf("%s", SerializeExperimentSpec(spec).c_str());
    return 0;
  }

  if (opts.bench_service) {
    if (spec.sweeps.empty()) {
      std::printf("--bench-service needs a spec with SWEEP axes\n");
      return 2;
    }
    return RunServiceBench(spec, opts);
  }

  if (!spec.sweeps.empty()) {
    return RunSweep(spec, opts);
  }

  auto report = RunOne(spec, opts, /*print_phases=*/true);
  if (!report.ok()) {
    return 1;
  }
  const bool violated = AnyViolation(*report);
  std::printf("\nDefinition 3.1 (R = %.0f ms): %s\n", ToMillisF(spec.recovery_bound),
              violated ? "VIOLATED" : "holds");
  std::printf("experiment fingerprint: %016llx\n",
              static_cast<unsigned long long>(FingerprintExperimentReport(*report)));
  return violated ? 1 : 0;
}
