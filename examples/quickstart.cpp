// Quickstart: plan a BTR strategy for the avionics scenario, inject a
// Byzantine fault, run, and print what happened.
//
//   $ ./build/examples/quickstart
//
// This is the 60-second tour of the public API: Scenario -> BtrConfig ->
// BtrSystem -> Plan() -> AddFault() -> Run() -> RunReport. The same
// experiment as data — a .btrx spec instead of C++ — is
// quickstart_spec.cpp; see README "Experiments as data".

#include <cstdio>

#include "src/core/btr_system.h"
#include "src/workload/generators.h"

int main() {
  using namespace btr;

  // 1. A scenario bundles a network topology with a periodic dataflow
  //    workload. This one is the paper's motivating example: flight control
  //    (safety-critical) sharing a platform with in-flight entertainment.
  Scenario scenario = MakeAvionicsScenario(/*compute_nodes=*/6);
  std::printf("scenario: %zu nodes, %zu tasks, period %.1f ms\n",
              scenario.topology.node_count(), scenario.workload.task_count(),
              ToMillisF(scenario.workload.period()));

  // 2. Configure BTR: tolerate f = 1 Byzantine node, recover within R = 500 ms.
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Milliseconds(500);
  config.seed = 42;

  // 3. The offline planner computes one plan per fault mode.
  BtrSystem system(scenario, config);
  const Status plan_status = system.Plan();
  if (!plan_status.ok()) {
    std::printf("planning failed: %s\n", plan_status.ToString().c_str());
    return 1;
  }
  std::printf("strategy: %zu modes, %.1f KB on each node\n", system.strategy().mode_count(),
              static_cast<double>(system.strategy().MemoryFootprintBytes()) / 1024.0);

  // 4. Compromise the node running the flight-control law: from t = 200 ms
  //    it signs corrupted outputs.
  const TaskId control_law = system.scenario().workload.FindTask("control_law");
  const Plan* root = system.strategy().Lookup(FaultSet());
  const NodeId victim = root->placement()[system.planner().graph().PrimaryOf(control_law)];
  system.AddFault(FaultInjection{victim, Milliseconds(200), FaultBehavior::kValueCorruption,
                                 0, NodeId::Invalid(), 0});
  std::printf("adversary: corrupting %s (hosts the control law) at t=200 ms\n",
              ToString(victim).c_str());

  // 5. Run 200 periods (2 seconds) and evaluate Definition 3.1.
  auto report = system.Run(200);
  if (!report.ok()) {
    std::printf("run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  const RunReport::FaultOutcome& fault = report->faults[0];
  std::printf("\n--- outcome ---\n");
  std::printf("detected after:        %.2f ms (%s evidence)\n",
              ToMillisF(fault.detection_latency), "replay-verified");
  std::printf("all nodes convinced:   +%.2f ms\n", ToMillisF(fault.distribution_latency));
  std::printf("incorrect outputs for: %.2f ms (bound R = 500 ms)\n",
              ToMillisF(report->correctness.max_recovery));
  std::printf("BTR violated:          %s\n",
              report->correctness.btr_violated ? "YES (bug!)" : "no");
  std::printf("sink instances:        %llu correct / %llu expected (+%llu shed by plan)\n",
              static_cast<unsigned long long>(report->correctness.correct_instances),
              static_cast<unsigned long long>(report->correctness.total_instances),
              static_cast<unsigned long long>(report->correctness.shed_instances));
  return report->correctness.btr_violated ? 1 : 0;
}
