// Vehicle convoy: multi-hop V2V communication and the omission problem.
//
// The convoy topology is a ring of vehicle computers, so messages relay
// through other vehicles. A Byzantine relay that silently drops traffic is
// the hardest fault in the paper's taxonomy: there is no provable evidence,
// only path declarations and accumulated blame (Section 4.2). This example
// shows blame-based conviction working, and routes healing around the relay.

#include <cstdio>

#include "src/common/table.h"
#include "src/core/btr_system.h"
#include "src/workload/generators.h"

int main() {
  using namespace btr;

  Scenario scenario = MakeConvoyScenario(/*vehicles=*/5);
  BtrConfig config;
  config.planner.max_faults = 1;
  config.planner.recovery_bound = Seconds(1);
  BtrSystem system(scenario, config);
  if (!system.Plan().ok()) {
    std::printf("planning failed\n");
    return 1;
  }
  std::printf("convoy of 5 vehicles: %zu nodes, %zu tasks, %zu planned modes\n",
              system.scenario().topology.node_count(),
              system.scenario().workload.task_count(), system.strategy().mode_count());

  // Vehicle 2's computer (node 5) turns Byzantine: it keeps sending its own
  // traffic (and heartbeats!) but silently drops everything it relays, and
  // omits its own task outputs.
  const NodeId relay(5);
  system.AddFault({relay, Milliseconds(400), FaultBehavior::kOmission, 0,
                   NodeId::Invalid(), 0});
  std::printf("attack: vehicle computer %s drops all outputs and relayed traffic "
              "from t=400 ms\n",
              ToString(relay).c_str());

  auto report = system.Run(150);  // 3 s at 20 ms control period
  if (!report.ok()) {
    std::printf("run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  const RunReport::FaultOutcome& fault = report->faults[0];
  std::printf("\n--- outcome ---\n");
  std::printf("path declarations:  %llu (no single one is proof)\n",
              static_cast<unsigned long long>(report->total_node_stats.path_declarations));
  if (fault.first_conviction != kSimTimeNever) {
    std::printf("blame conviction:   +%.1f ms after manifestation\n",
                ToMillisF(fault.detection_latency));
  } else {
    std::printf("blame conviction:   never (not enough distinct paths)\n");
  }
  std::printf("recovery:           %.1f ms of disturbed outputs (R = 1000 ms)\n",
              ToMillisF(report->correctness.max_recovery));
  std::printf("Definition 3.1:     %s\n",
              report->correctness.btr_violated ? "VIOLATED" : "holds");

  // Show where the throttle controllers moved.
  const Plan* before = system.strategy().Lookup(FaultSet());
  const Plan* after = system.strategy().Lookup(FaultSet({relay}));
  if (after != nullptr) {
    const PlanDelta delta = ComputeDelta(*before, *after, system.planner().graph());
    std::printf("mode transition:    %zu tasks moved, %zu started, %zu stopped, %s state\n",
                delta.tasks_moved, delta.tasks_started, delta.tasks_stopped,
                CellBytes(static_cast<double>(delta.state_bytes_moved)).c_str());
  }
  return report->correctness.btr_violated ? 1 : 0;
}
