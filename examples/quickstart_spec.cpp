// Quickstart, experiments-as-data edition: the same shape of avionics
// experiment as quickstart.cpp — plan, compromise a critical compute host
// at t = 200 ms, run 200 periods — but described as a .btrx spec instead
// of C++ calls. A spec-driven run is bit-identical to the same script
// assembled through the raw API (pinned by tests/spec_test.cc).
//
//   $ ./build/examples/quickstart_spec

#include <cstdio>

#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_spec.h"

int main() {
  using namespace btr;
  const std::string btrx =
      "BTRX 1\n"
      "NAME quickstart\n"
      "SCENARIO avionics nodes=6\n"
      "CONFIG f=1 recovery-us=500000 seed=42\n"
      "PHASE periods=200\n"
      "FAULT node=critical-primary at-us=200000 behavior=value-corruption\n"
      "END\n";
  auto spec = ParseExperimentSpec(btrx);
  if (!spec.ok()) {
    std::printf("parse failed: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto report = RunExperiment(*spec);
  if (!report.ok()) {
    std::printf("run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const RunReport& run = report->phases[0];
  const RunReport::FaultOutcome& fault = run.faults[0];
  std::printf("detected after %.2f ms; incorrect outputs for %.2f ms (R = 500 ms); "
              "BTR %s\n",
              ToMillisF(fault.detection_latency), ToMillisF(run.correctness.max_recovery),
              run.correctness.btr_violated ? "VIOLATED" : "holds");
  return run.correctness.btr_violated ? 1 : 0;
}
