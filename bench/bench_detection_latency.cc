// E9 "Figure 7" — detection latency by fault type.
//
// Paper Section 4.2: BTR requires a *time bound* on detection. Commission
// faults are caught by the next checker replay; omissions accumulate blame
// over a couple of periods; crashes are caught by heartbeats. We measure
// manifestation -> first honest conviction, and the extra time until every
// honest node is convinced (evidence distribution, Section 4.3).

#include "bench/bench_util.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E9 / Figure 7: detection and distribution latency by fault type",
              "period = 10 ms; detection should be a small constant number of periods");

  const FaultBehavior behaviors[] = {
      FaultBehavior::kCrash,      FaultBehavior::kValueCorruption,
      FaultBehavior::kOmission,   FaultBehavior::kEquivocate,
      FaultBehavior::kDelay,
  };
  Table table({"fault type", "detection p50", "detection max", "distribution p50",
               "distribution max", "detected"});

  for (FaultBehavior behavior : behaviors) {
    Samples detection;
    Samples distribution;
    int detected = 0;
    int total = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      Scenario scenario = MakeAvionicsScenario(6);
      BtrSystem system(scenario, DefaultBtrConfig(1, Milliseconds(500), seed));
      if (!system.Plan().ok()) {
        continue;
      }
      FaultInjection injection;
      injection.node = MostCriticalPrimaryHost(system);
      injection.manifest_at = Milliseconds(100) + static_cast<SimTime>(seed) * Milliseconds(3);
      injection.behavior = behavior;
      injection.delay = Milliseconds(6);
      system.AddFault(injection);
      auto report = system.Run(200);
      if (!report.ok()) {
        continue;
      }
      ++total;
      if (report->faults[0].detection_latency >= 0) {
        ++detected;
        detection.Add(static_cast<double>(report->faults[0].detection_latency));
        if (report->faults[0].distribution_latency >= 0) {
          distribution.Add(static_cast<double>(report->faults[0].distribution_latency));
        }
      }
    }
    table.AddRow({FaultBehaviorName(behavior),
                  detection.empty() ? "-" : CellDuration(detection.Percentile(0.5)),
                  detection.empty() ? "-" : CellDuration(detection.Max()),
                  distribution.empty() ? "-" : CellDuration(distribution.Percentile(0.5)),
                  distribution.empty() ? "-" : CellDuration(distribution.Max()),
                  std::to_string(detected) + "/" + std::to_string(total)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
