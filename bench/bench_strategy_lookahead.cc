// E11 "Table 3" — strategic planning (game-tree lookahead).
//
// Paper Section 4.1: "If the planner was not careful when choosing the plan
// for {X}, it may be impossible to find a plan for {X,Y} that can be
// activated quickly enough — for instance, a task with a lot of state may
// have been moved to a node whose only high-bandwidth connection to the
// rest of the system is via Y."
//
// Setup: a dual-bus topology whose B segment hangs off two gateway nodes.
// All sensors/actuators live on segment A. After one gateway fails, tasks
// parked on segment B are one fault away from being stranded: if the second
// gateway fails too, their state has no reachable donor and must be
// cold-started (data loss). The lookahead planner's vulnerability score
// evacuates stateful tasks from segment B in every one-gateway mode; the
// greedy planner leaves them there. We count state-loss transitions across
// all (parent, child) mode pairs.

#include "bench/bench_util.h"

namespace btr {
namespace {

// Dual-bus scenario: nodes 0..4 on bus A (node 4 = gateway A), nodes 4..9 on
// bus B via gateways 4 and 5. I/O pinned to nodes 0 and 1 (segment A).
Scenario MakeGatewayScenario() {
  Scenario s;
  s.name = "gateway";
  s.topology = Topology::DualBus(10, 5, 100'000'000, Microseconds(2));

  Dataflow& w = s.workload;
  w = Dataflow(Milliseconds(20));
  const NodeId sensor_node(0);
  const NodeId actuator_node(1);
  const TaskId s1 = w.AddSource("s1", Microseconds(40), sensor_node, Criticality::kHigh);
  const TaskId s2 = w.AddSource("s2", Microseconds(40), sensor_node, Criticality::kHigh);
  // Stateful pipeline: plenty of state so stranding is expensive.
  for (int chain = 0; chain < 3; ++chain) {
    const std::string tag = std::to_string(chain);
    const TaskId a = w.AddCompute("filter" + tag, Microseconds(300), 8192, Criticality::kHigh);
    const TaskId b = w.AddCompute("law" + tag, Microseconds(300), 8192,
                                  Criticality::kSafetyCritical);
    const TaskId sink = w.AddSink("act" + tag, Microseconds(40), actuator_node,
                                  Criticality::kSafetyCritical, Milliseconds(16));
    w.Connect(chain % 2 == 0 ? s1 : s2, a, 128);
    w.Connect(a, b, 128);
    w.Connect(b, sink, 64);
  }
  return s;
}

struct LookaheadResult {
  size_t transitions = 0;
  size_t state_loss_events = 0;   // stateful task with no reachable donor
  double state_lost_bytes = 0.0;
  double avg_utility = 0.0;       // across double-fault modes
};

LookaheadResult Measure(bool lookahead) {
  LookaheadResult result;
  Scenario scenario = MakeGatewayScenario();
  PlannerConfig config;
  config.max_faults = 2;
  config.lookahead = lookahead;
  config.weight_lookahead = 8.0;
  Planner planner(&scenario.topology, &scenario.workload, config);
  auto strategy = planner.BuildStrategy();
  if (!strategy.ok()) {
    return result;
  }
  const AugmentedGraph& g = planner.graph();
  double utility_sum = 0.0;
  size_t modes2 = 0;
  for (const FaultSet& faults : strategy->PlannedSets()) {
    if (faults.size() != 2) {
      continue;
    }
    const Plan* child = strategy->Lookup(faults);
    utility_sum += child->utility();
    ++modes2;
    for (NodeId y : faults.nodes()) {
      std::vector<NodeId> reduced;
      for (NodeId z : faults.nodes()) {
        if (z != y) {
          reduced.push_back(z);
        }
      }
      const Plan* parent = strategy->Lookup(FaultSet(std::move(reduced)));
      if (parent == nullptr) {
        continue;
      }
      ++result.transitions;
      // For every stateful task newly placed (or moved) in the child, is
      // there a live parent-mode replica the new host can still reach?
      for (uint32_t aug = 0; aug < g.size(); ++aug) {
        const AugTask& task = g.task(aug);
        if (task.kind != AugKind::kWorkload || task.state_bytes == 0) {
          continue;
        }
        const NodeId new_host = child->placement()[aug];
        if (!new_host.valid()) {
          continue;
        }
        bool donor = false;
        for (uint32_t rep : g.ReplicasOf(task.workload_task)) {
          const NodeId old_host = parent->placement()[rep];
          if (!old_host.valid() || faults.Contains(old_host)) {
            continue;
          }
          if (old_host == new_host || child->routing->Reachable(old_host, new_host)) {
            donor = true;
            break;
          }
        }
        if (!donor) {
          ++result.state_loss_events;
          result.state_lost_bytes += static_cast<double>(task.state_bytes);
        }
      }
    }
  }
  if (modes2 > 0) {
    result.avg_utility = utility_sum / static_cast<double>(modes2);
  }
  return result;
}

void Run() {
  PrintHeader("E11 / Table 3: strategic lookahead vs greedy placement",
              "claim C6: lookahead keeps state where one more fault cannot strand it");

  Table table({"planner", "transitions checked", "state-loss events", "state lost",
               "avg double-fault utility"});
  for (bool lookahead : {true, false}) {
    const LookaheadResult r = Measure(lookahead);
    if (r.transitions == 0) {
      continue;
    }
    table.AddRow({lookahead ? "lookahead" : "greedy",
                  CellInt(static_cast<int64_t>(r.transitions)),
                  CellInt(static_cast<int64_t>(r.state_loss_events)),
                  CellBytes(r.state_lost_bytes), CellDouble(r.avg_utility, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(dual-bus topology: segment B reachable only through two gateways;\n"
              " a state-loss event = a stateful task whose new host cannot reach any\n"
              " surviving copy of its state)\n\n");
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
