// E5 "Figure 4" — criticality-aware degradation vs black-box fault tolerance.
//
// Paper claim C3: BTR "can disable some of the less critical tasks and
// allocate their resources to the more critical ones", unlike schemes that
// treat the workload as a black box and protect all of it or none of it.
// We fail flight computers one by one on a scarce platform and plot the
// criticality-weighted utility each approach still guarantees.

#include "bench/bench_util.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E5 / Figure 4: utility retained vs number of failed nodes",
              "claim C3: fine-grained degradation beats all-or-nothing");

  // Scarce platform: 3 flight computers, f = 2.
  Scenario scenario = MakeAvionicsScenario(3);
  BtrSystem system(scenario, DefaultBtrConfig(2, Milliseconds(500)));
  if (!system.Plan().ok()) {
    std::printf("planning failed\n");
    return;
  }
  const Dataflow& w = system.scenario().workload;
  double full_utility = 0.0;
  double critical_utility = 0.0;
  for (TaskId sink : w.SinkIds()) {
    full_utility += CriticalityWeight(w.task(sink).criticality);
    if (w.task(sink).criticality >= Criticality::kHigh) {
      critical_utility += CriticalityWeight(w.task(sink).criticality);
    }
  }

  Table table({"failed compute nodes", "BTR utility", "BTR critical flows",
               "PBFT f=1 (black box)", "unreplicated"});
  // Fail compute nodes n4, then n4+n5.
  std::vector<FaultSet> fault_sets{FaultSet(), FaultSet({NodeId(4)}),
                                   FaultSet({NodeId(4), NodeId(5)})};
  for (size_t k = 0; k < fault_sets.size(); ++k) {
    const Plan* plan = system.strategy().Lookup(fault_sets[k]);
    if (plan == nullptr) {
      continue;
    }
    bool all_critical = true;
    for (TaskId sink : w.SinkIds()) {
      if (w.task(sink).criticality >= Criticality::kHigh && !plan->ServesSink(sink)) {
        all_critical = false;
      }
    }
    // A black-box masking scheme with f=1 keeps full utility for k <= 1 and
    // guarantees nothing beyond; unreplicated guarantees nothing once any
    // node fails.
    const double pbft = k <= 1 ? full_utility : 0.0;
    const double unrep = k == 0 ? full_utility : 0.0;
    table.AddRow({std::to_string(k) + (k == 0 ? " (none)" : ""),
                  CellDouble(plan->utility(), 0) + " / " + CellDouble(full_utility, 0),
                  all_critical ? "all served" : "degraded", CellDouble(pbft, 0),
                  CellDouble(unrep, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(critical = criticality >= high; full utility %.0f, critical subset %.0f)\n\n",
              full_utility, critical_utility);
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
