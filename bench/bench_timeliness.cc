// E2 "Figure 1" — output timeliness in normal operation.
//
// Paper claim C2 (first half): "BTR can also guarantee that outputs are
// timely when an attack is absent... BTR can use the output of some replicas
// without waiting for the others to complete." BFT must finish agreement
// before actuating. We compare the sink actuation-latency distribution
// (from period start) for BTR, ZZ, and PBFT on the same workload.

#include "bench/bench_util.h"
#include "src/baselines/bft_smr.h"

namespace btr {
namespace {

void AddLatencyRow(Table* table, const std::string& scheme, const Samples& samples,
                   SimDuration deadline) {
  if (samples.empty()) {
    return;
  }
  table->AddRow({scheme, CellInt(static_cast<int64_t>(samples.count())),
                 CellDuration(samples.Percentile(0.50)), CellDuration(samples.Percentile(0.99)),
                 CellDuration(samples.Max()),
                 CellPercent(samples.Max() <= static_cast<double>(deadline) ? 1.0 : 0.0, 0)});
}

void Run() {
  PrintHeader("E2 / Figure 1: sink actuation latency, fault-free operation",
              "claim C2: BTR is timely without waiting for agreement");

  constexpr uint64_t kPeriods = 200;
  Scenario scenario = MakeAvionicsScenario(6);
  // Tightest sink deadline in the workload, for the "within deadline" column.
  SimDuration deadline = kSimTimeNever;
  for (TaskId s : scenario.workload.SinkIds()) {
    deadline = std::min(deadline, scenario.workload.task(s).relative_deadline);
  }

  Table table({"scheme", "outputs", "p50 latency", "p99 latency", "max latency",
               "all within deadline"});

  {
    BtrSystem system(scenario, DefaultBtrConfig(1, Milliseconds(500)));
    if (system.Plan().ok()) {
      auto report = system.Run(kPeriods);
      if (report.ok()) {
        AddLatencyRow(&table, "BTR", report->correctness.sink_latency, deadline);
      }
    }
  }
  for (BftMode mode : {BftMode::kZz, BftMode::kPbft}) {
    BftConfig config;
    config.f = 1;
    config.mode = mode;
    auto report = BftBaseline(&scenario, config).Run(kPeriods, AdversarySpec{});
    if (report.ok()) {
      AddLatencyRow(&table, mode == BftMode::kZz ? "ZZ" : "PBFT", report->sink_latency,
                    deadline);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(deadline column uses the tightest sink deadline: %s)\n\n",
              CellDuration(static_cast<double>(deadline)).c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
