// E4 "Figure 3" — the k*R adversarial bound.
//
// Paper Section 3: "if an adversary controls k <= f nodes, he can trigger a
// new fault every R seconds and thus potentially force the system to produce
// bad outputs for kR seconds." We let the adversary stage k sequential
// faults, spaced to maximize damage, and verify cumulative bad-output time
// never exceeds k*R (and report how much of the budget was actually used).

#include "bench/bench_util.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E4 / Figure 3: cumulative disruption vs k sequential faults",
              "bound: total bad-output time <= k * R");

  constexpr SimDuration kBound = Milliseconds(500);
  Table table({"k (faults)", "f", "cumulative bad time", "k*R budget", "budget used",
               "Definition 3.1"});

  for (uint32_t k = 1; k <= 3; ++k) {
    const uint32_t f = k;
    Scenario scenario = MakeAvionicsScenario(4 + 2 * f);
    BtrSystem system(scenario, DefaultBtrConfig(f, kBound));
    if (!system.Plan().ok()) {
      continue;
    }
    // Stage k faults on distinct compute hosts, one per ~600 ms.
    const Plan* root = system.strategy().Lookup(FaultSet());
    std::vector<NodeId> victims;
    const Dataflow& w = system.scenario().workload;
    for (TaskId t : w.ComputeIds()) {
      for (uint32_t rep : system.planner().graph().ReplicasOf(t)) {
        const NodeId host = root->placement()[rep];
        if (host.valid() &&
            std::find(victims.begin(), victims.end(), host) == victims.end()) {
          victims.push_back(host);
        }
        if (victims.size() >= k) {
          break;
        }
      }
      if (victims.size() >= k) {
        break;
      }
    }
    const FaultBehavior behaviors[] = {FaultBehavior::kValueCorruption, FaultBehavior::kCrash,
                                       FaultBehavior::kOmission};
    for (uint32_t i = 0; i < k && i < victims.size(); ++i) {
      FaultInjection injection;
      injection.node = victims[i];
      injection.manifest_at = Milliseconds(200) + static_cast<SimTime>(i) * Milliseconds(600);
      injection.behavior = behaviors[i % 3];
      system.AddFault(injection);
    }
    auto report = system.Run(100 + 60 * k * 2);
    if (!report.ok()) {
      std::printf("k=%u failed: %s\n", k, report.status().ToString().c_str());
      continue;
    }
    const double budget = static_cast<double>(k) * static_cast<double>(kBound);
    table.AddRow({CellInt(k), CellInt(f),
                  CellDuration(static_cast<double>(report->correctness.total_bad_time)),
                  CellDuration(budget),
                  CellPercent(static_cast<double>(report->correctness.total_bad_time) / budget),
                  report->correctness.btr_violated ? "VIOLATED" : "holds"});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
