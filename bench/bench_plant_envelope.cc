// E6 "Figure 5" — the five-second rule: plant envelope excursion vs outage.
//
// Paper claim C4: physical systems have inertia, so a bounded outage causes
// no damage ("the flight control system can operate within a relatively
// large flight envelope... a short malfunction will not be enough to push
// the airplane out of this envelope"). For each plant we sweep the outage
// length, report peak excursion, and print the empirical maximum tolerable
// outage — the number R must stay below.

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "src/plant/models.h"
#include "src/plant/outage_analysis.h"

namespace btr {
namespace {

struct PlantCase {
  std::unique_ptr<Plant> plant;
  std::unique_ptr<Controller> controller;
  OutageParams params;
  double sweep_hi;
};

void Run() {
  PrintHeader("E6 / Figure 5: envelope excursion vs control-outage length",
              "claim C4: plant inertia tolerates an R-bounded outage");

  std::vector<PlantCase> cases;
  {
    PlantCase c;
    c.plant = std::make_unique<InvertedPendulum>();
    c.controller = MakePendulumController();
    c.params.settle_time = 20.0;
    c.sweep_hi = 4.0;
    cases.push_back(std::move(c));
  }
  {
    PlantCase c;
    c.plant = std::make_unique<PressureVessel>();
    c.controller = MakePressureController();
    c.sweep_hi = 16.0;
    cases.push_back(std::move(c));
  }
  {
    PlantCase c;
    c.plant = std::make_unique<CruiseControl>();
    c.controller = MakeCruiseController();
    c.sweep_hi = 120.0;
    cases.push_back(std::move(c));
  }

  Table table({"plant", "outage", "peak excursion", "violated", "recovered"});
  for (PlantCase& c : cases) {
    for (int step = 0; step <= 4; ++step) {
      c.params.outage = c.sweep_hi * static_cast<double>(step) / 4.0;
      const OutageResult result = SimulateOutage(c.plant.get(), c.controller.get(), c.params);
      table.AddRow({c.plant->name(), CellDouble(c.params.outage, 2) + " s",
                    CellPercent(std::min(result.max_excursion, 99.99)), result.violated ? "YES" : "no",
                    result.recovered ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  Table rmax({"plant", "max tolerable outage (fail-default)", "character"});
  const char* notes[] = {"open-loop unstable: sub-second rule",
                         "integrating: the literal five-second-rule regime",
                         "self-stable: tolerates the better part of a minute"};
  int i = 0;
  for (PlantCase& c : cases) {
    const double r = MaxTolerableOutage(c.plant.get(), c.controller.get(), c.params,
                                        c.sweep_hi * 2, 0.05);
    rmax.AddRow({c.plant->name(), CellDouble(r, 2) + " s", notes[i++]});
  }
  std::printf("%s\n", rmax.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
