// E10 "Figure 8" — evidence-flooding DoS and its countermeasures.
//
// Paper Section 4.3: a compromised node can fabricate evidence that "can
// only be recognized as invalid after a lot of expensive computation", so
// distribution must (a) quick-reject cheaply checkable garbage and (b) turn
// endorsements of invalid evidence into evidence against the endorser. We
// flood from one node while a *real* fault manifests elsewhere, and measure
// how the countermeasures affect detecting the real fault.

#include "bench/bench_util.h"

namespace btr {
namespace {

struct DosResult {
  SimDuration real_fault_detection = -1;
  // Time until *every* honest node is convinced of the real fault; this is
  // what flooded verification queues actually delay (the generating checker
  // convicts locally without queuing).
  SimDuration real_fault_distribution = -1;
  bool distribution_complete = false;
  bool flooder_convicted = false;
  uint64_t rejected = 0;
  size_t queue_peak = 0;
  uint64_t dropped = 0;
};

DosResult Measure(bool quick_reject, bool endorsement_abuse, uint32_t flood_rate) {
  DosResult result;
  Scenario scenario = MakeAvionicsScenario(6);
  BtrConfig config = DefaultBtrConfig(2, Milliseconds(800));
  config.runtime.validation.quick_reject = quick_reject;
  config.runtime.endorsement_abuse = endorsement_abuse;
  BtrSystem system(scenario, config);
  if (!system.Plan().ok()) {
    return result;
  }
  // Flooder: host of the *least* critical replicated task's checker... any
  // compute host distinct from the real victim works.
  const NodeId victim = PrimaryHostOf(system, "att_fusion");
  NodeId flooder = PrimaryHostOf(system, "transcode");
  if (!flooder.valid() || flooder == victim) {
    flooder = PrimaryHostOf(system, "pressure_ctl");
  }
  system.AddFault({flooder, Milliseconds(50), FaultBehavior::kEvidenceFlood, 0,
                   NodeId::Invalid(), flood_rate});
  system.AddFault({victim, Milliseconds(300), FaultBehavior::kValueCorruption, 0,
                   NodeId::Invalid(), 0});
  auto report = system.Run(200);
  if (!report.ok()) {
    return result;
  }
  for (const auto& fault : report->faults) {
    if (fault.node == victim) {
      result.real_fault_detection = fault.detection_latency;
      result.real_fault_distribution = fault.distribution_latency;
      result.distribution_complete = fault.last_conviction != kSimTimeNever;
    }
    if (fault.node == flooder && fault.first_conviction != kSimTimeNever) {
      result.flooder_convicted = true;
    }
  }
  result.rejected = report->total_node_stats.evidence_rejected;
  result.queue_peak = report->total_node_stats.evidence_queue_peak;
  result.dropped = report->total_node_stats.evidence_dropped_queue;
  return result;
}

void Run() {
  PrintHeader("E10 / Figure 8: evidence-flood DoS vs countermeasures",
              "a real fault manifests at 300 ms while a flooder spams bogus evidence");

  Table table({"validator", "endorsement abuse", "flood rate", "real-fault detection",
               "full distribution", "flooder convicted", "bogus rejected", "queue peak"});
  struct Case {
    bool quick;
    bool abuse;
    uint32_t rate;
  };
  const Case cases[] = {
      {true, true, 8},  {true, true, 32},  {true, false, 8},  {true, false, 32},
      {false, false, 8}, {false, false, 32},
  };
  for (const Case& c : cases) {
    const DosResult r = Measure(c.quick, c.abuse, c.rate);
    table.AddRow({c.quick ? "quick-reject" : "naive", c.abuse ? "on" : "off",
                  CellInt(c.rate) + "/period",
                  r.real_fault_detection >= 0
                      ? CellDuration(static_cast<double>(r.real_fault_detection))
                      : "NEVER",
                  r.distribution_complete
                      ? "+" + CellDuration(static_cast<double>(r.real_fault_distribution))
                      : "INCOMPLETE",
                  r.flooder_convicted ? "yes" : "no",
                  CellInt(static_cast<int64_t>(r.rejected)),
                  CellInt(static_cast<int64_t>(r.queue_peak))});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
