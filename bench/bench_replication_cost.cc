// E1 "Table 1" — replication cost: BTR vs PBFT vs ZZ vs unreplicated.
//
// Paper claim C1: "BTR can be more efficient than, say, BFT because it
// provides weaker guarantees; detection requires fewer replicas than
// masking." We measure, per fault bound f, the provisioned replicas, the
// fault-free CPU time per period, and the fault-free link bytes per period
// of each scheme on the same workload and network.

#include "bench/bench_util.h"
#include "src/baselines/bft_smr.h"
#include "src/baselines/unreplicated.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E1 / Table 1: replication cost vs fault bound f",
              "claim C1: detection (f+1) is cheaper than masking (3f+1)");

  Table table({"f", "scheme", "replicas", "cpu/period", "net bytes/period",
               "cpu vs unreplicated"});
  constexpr uint64_t kPeriods = 100;

  for (uint32_t f = 1; f <= 3; ++f) {
    // Enough flight computers for 3f+1 PBFT replicas.
    Scenario scenario = MakeAvionicsScenario(3 * f + 2);
    const UnreplicatedCost base = ComputeUnreplicatedCost(scenario.workload);

    // --- unreplicated ---
    table.AddRow({CellInt(f), "unreplicated", "1", CellDuration(base.cpu_per_period),
                  CellBytes(base.bytes_per_period), "1.00x"});

    // --- BTR ---
    {
      BtrSystem system(scenario, DefaultBtrConfig(f, Milliseconds(500)));
      if (!system.Plan().ok()) {
        continue;
      }
      auto report = system.Run(kPeriods);
      if (!report.ok()) {
        continue;
      }
      const double cpu = static_cast<double>(report->total_node_stats.busy +
                                             report->total_node_stats.crypto) /
                         static_cast<double>(kPeriods);
      const double bytes = static_cast<double>(report->network.total_link_bytes) /
                           static_cast<double>(kPeriods);
      table.AddRow({CellInt(f), "BTR (detect)", std::to_string(f + 1) + " per task",
                    CellDuration(cpu), CellBytes(bytes),
                    CellDouble(cpu / base.cpu_per_period, 2) + "x"});
    }

    // --- ZZ ---
    {
      BftConfig config;
      config.f = f;
      config.mode = BftMode::kZz;
      auto report = BftBaseline(&scenario, config).Run(kPeriods, AdversarySpec{});
      if (report.ok()) {
        table.AddRow({CellInt(f), "ZZ (reactive BFT)",
                      std::to_string(f + 1) + "+" + std::to_string(f) + " standby",
                      CellDuration(report->cpu_per_period), CellBytes(report->bytes_per_period),
                      CellDouble(report->cpu_per_period / base.cpu_per_period, 2) + "x"});
      }
    }

    // --- PBFT ---
    {
      BftConfig config;
      config.f = f;
      config.mode = BftMode::kPbft;
      auto report = BftBaseline(&scenario, config).Run(kPeriods, AdversarySpec{});
      if (report.ok()) {
        table.AddRow({CellInt(f), "PBFT (mask)", std::to_string(3 * f + 1),
                      CellDuration(report->cpu_per_period), CellBytes(report->bytes_per_period),
                      CellDouble(report->cpu_per_period / base.cpu_per_period, 2) + "x"});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
