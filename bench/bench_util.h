// Shared helpers for the experiment harness binaries.
//
// Every bench binary reproduces one experiment from EXPERIMENTS.md and
// prints its rows as an ASCII table, so bench output and the experiment
// index line up one-to-one.

#ifndef BTR_BENCH_BENCH_UTIL_H_
#define BTR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "src/common/table.h"
#include "src/core/btr_system.h"
#include "src/spec/experiment_runner.h"
#include "src/workload/generators.h"

namespace btr {

inline void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("=== %s ===\n%s\n\n", experiment.c_str(), claim.c_str());
}

inline BtrConfig DefaultBtrConfig(uint32_t f, SimDuration recovery_bound, uint64_t seed = 1) {
  BtrConfig config;
  config.planner.max_faults = f;
  config.planner.recovery_bound = recovery_bound;
  config.seed = seed;
  return config;
}

// Host of the primary replica of `task_name` in the root plan.
inline NodeId PrimaryHostOf(const BtrSystem& system, const std::string& task_name) {
  const TaskId task = system.scenario().workload.FindTask(task_name);
  const Plan* root = system.strategy().Lookup(FaultSet());
  if (!task.valid() || root == nullptr) {
    return NodeId::Invalid();
  }
  return root->placement()[system.planner().graph().PrimaryOf(task)];
}

// Host of the primary of the most critical compute task, preferring hosts
// that carry no pinned sensor/actuator (losing a sensor node sheds its flows
// outright, which would make the recovery experiments trivially quiet).
// Same resolution as a spec's FAULT node=critical-primary.
inline NodeId MostCriticalPrimaryHost(const BtrSystem& system) {
  return ResolveCriticalPrimary(system);
}

}  // namespace btr

#endif  // BTR_BENCH_BENCH_UTIL_H_
