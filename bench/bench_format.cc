// Strategy format v4: wire and install-path economics of the binary image.
//
// The same E7 system as the install-traffic bench (14 nodes, f=2, the
// flaplink edit family), measured along the format axis instead of the
// shipment axis:
//
//   size   — v4 blob image vs the v2 text blob, and the two E7 edit
//            patches (link_flap: pure re-reference; bus_remeasure: every
//            mode dirtied) as BTRPATCH text vs v4 patch images.
//   time   — node install cost for a full slice: parse-and-verify the
//            text slice vs verify-fingerprint-and-map the v4 image
//            (InstallEngine::InstallFull both ways, wall clock).
//   safety — the formats must be semantically invisible: a run on the
//            planned strategy, on the strategy loaded back from the v2
//            text, and on the strategy loaded from the v4 image must
//            produce byte-identical run reports. The bench exits nonzero
//            on divergence, so the harness records it.
//
// Emits one `BENCH_JSON {"bench":"strategy_format",...}` row that
// ci/run_benches.sh --format folds into BENCH_runtime.json.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_patch.h"
#include "src/fmt/strategy_binary.h"

namespace btr {
namespace {

// The E7 incremental-replanning system (see bench_plan_delta.cc): 12
// compute nodes + sensors, f=2, ~100 modes, plus the removable flaplink.
Scenario MakeE7Scenario() {
  Rng rng(42);
  RandomDagParams params;
  params.compute_nodes = 12;
  params.layers = 3;
  params.tasks_per_layer = 4;
  params.period = Milliseconds(50);
  Scenario base = MakeRandomScenario(&rng, params);
  base.topology.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "flaplink");
  return base;
}

BtrConfig E7Config() { return DefaultBtrConfig(2, Milliseconds(500)); }

struct PatchMeasurement {
  size_t text_bytes = 0;
  size_t image_bytes = 0;
};

// Stages `edit` through the real incremental-replan path (ApplyDelta →
// Rebuild → diff) and measures the full patch in both serializations.
StatusOr<PatchMeasurement> MeasurePatch(const Scenario& base, const std::string& base_blob,
                                        const DeltaEdit& edit) {
  BtrConfig config = E7Config();
  config.runtime.heartbeats = false;
  BtrSystem system(base, config);
  Status planned = system.Plan();
  if (!planned.ok()) {
    return planned;
  }
  StrategyDelta delta;
  delta.edits.push_back(edit);
  const SimDuration period = system.scenario().workload.period();
  Status staged = system.ApplyDelta(delta, 2 * period + 1);
  if (!staged.ok()) {
    return staged;
  }
  const std::string& target_blob = system.staged_update()->target_blob;
  auto patch = MakeStrategyPatch(base_blob, target_blob);
  if (!patch.ok()) {
    return patch.status();
  }
  PatchMeasurement m;
  m.text_bytes = SaveStrategyPatch(*patch).size();
  auto image = fmt::EncodePatchImage(*patch);
  if (!image.ok()) {
    return image.status();
  }
  m.image_bytes = image->size();
  return m;
}

// Wall-clock microseconds per InstallFull of `artifact` on a fresh engine.
double TimeInstall(const std::string& artifact, uint64_t sfp, int reps) {
  // Warm up allocator and caches with one untimed pass.
  {
    InstallEngine engine{NodeId(0)};
    if (!engine.InstallFull(artifact, sfp).ok()) {
      return -1.0;
    }
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    InstallEngine engine{NodeId(0)};
    if (!engine.InstallFull(artifact, sfp).ok()) {
      return -1.0;
    }
  }
  const double total_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  return total_us / reps;
}

// Byte-identity of run reports across strategy sources: planned in-process,
// loaded from the v2 text, loaded from the v4 image. Returns true when all
// three serialize identically.
bool ReportsMatchAcrossSources(const std::string& v2_blob, const std::string& v4_image,
                               uint64_t* fingerprint) {
  const auto make_system = [] { return BtrSystem(MakeE7Scenario(), E7Config()); };
  BtrSystem planned = make_system();
  if (!planned.Plan().ok()) {
    return false;
  }
  auto baseline = planned.Run(100);
  if (!baseline.ok()) {
    return false;
  }
  const std::string baseline_dump = SerializeRunReport(*baseline);
  *fingerprint = FingerprintRunReport(*baseline);
  for (const std::string* serialized : {&v2_blob, &v4_image}) {
    BtrSystem system = make_system();
    auto loaded =
        LoadStrategy(*serialized, system.planner().graph(), system.scenario().topology);
    if (!loaded.ok()) {
      std::fprintf(stderr, "format bench: load failed: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    if (!system.AdoptStrategy(std::make_shared<const Strategy>(std::move(*loaded))).ok()) {
      return false;
    }
    auto report = system.Run(100);
    if (!report.ok() || SerializeRunReport(*report) != baseline_dump) {
      return false;
    }
  }
  return true;
}

int Run(int reps) {
  PrintHeader("Strategy format v4: image vs text",
              "same strategies, same fingerprint chain — fewer bytes, no parse");

  const Scenario base = MakeE7Scenario();
  BtrSystem system(base, E7Config());
  Status planned = system.Plan();
  if (!planned.ok()) {
    std::fprintf(stderr, "format bench: plan failed: %s\n", planned.ToString().c_str());
    return 1;
  }
  const std::string v2_blob =
      SaveStrategy(system.strategy(), system.planner().graph(), system.scenario().topology);
  auto v4_blob = SaveStrategyV4(system.strategy(), system.planner().graph(),
                                system.scenario().topology);
  if (!v4_blob.ok()) {
    std::fprintf(stderr, "format bench: encode failed: %s\n",
                 v4_blob.status().ToString().c_str());
    return 1;
  }
  const uint64_t blob_fp = FingerprintStrategyText(v2_blob);

  // E7 edit patches, both serializations.
  auto link_flap = MeasurePatch(base, v2_blob, DeltaEdit::LinkRemove("flaplink"));
  auto bus_remeasure =
      MeasurePatch(base, v2_blob, DeltaEdit::LinkLatencyChange("bus", 60'000'000, -1));
  if (!link_flap.ok() || !bus_remeasure.ok()) {
    std::fprintf(stderr, "format bench: patch failed: %s\n",
                 (!link_flap.ok() ? link_flap.status() : bus_remeasure.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  // Node-0 install: parse the text slice vs map the image.
  auto slice_text = ExtractSlice(v2_blob, 0);
  if (!slice_text.ok()) {
    return 1;
  }
  auto slice_image = fmt::EncodeStrategyImage(*slice_text);
  if (!slice_image.ok()) {
    return 1;
  }
  const double parse_us = TimeInstall(*slice_text, blob_fp, reps);
  const double map_us = TimeInstall(*slice_image, blob_fp, reps);
  if (parse_us < 0 || map_us < 0) {
    std::fprintf(stderr, "format bench: install timing failed\n");
    return 1;
  }

  uint64_t report_fp = 0;
  const bool reports_match = ReportsMatchAcrossSources(v2_blob, *v4_blob, &report_fp);

  const double v2_bytes = static_cast<double>(v2_blob.size());
  const double v4_bytes = static_cast<double>(v4_blob->size());
  Table table({"artifact", "v2 text", "v4 image", "ratio"});
  table.AddRow({"blob (full strategy)", CellBytes(v2_bytes), CellBytes(v4_bytes),
                CellDouble(100.0 * v4_bytes / v2_bytes, 1) + " %"});
  table.AddRow({"patch: link_flap", CellBytes(static_cast<double>(link_flap->text_bytes)),
                CellBytes(static_cast<double>(link_flap->image_bytes)),
                CellDouble(100.0 * static_cast<double>(link_flap->image_bytes) /
                               static_cast<double>(link_flap->text_bytes),
                           1) +
                    " %"});
  table.AddRow({"patch: bus_remeasure",
                CellBytes(static_cast<double>(bus_remeasure->text_bytes)),
                CellBytes(static_cast<double>(bus_remeasure->image_bytes)),
                CellDouble(100.0 * static_cast<double>(bus_remeasure->image_bytes) /
                               static_cast<double>(bus_remeasure->text_bytes),
                           1) +
                    " %"});
  table.AddRow({"slice install (node 0)", CellDouble(parse_us, 1) + " us",
                CellDouble(map_us, 1) + " us",
                CellDouble(100.0 * map_us / parse_us, 1) + " %"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("(install = InstallEngine::InstallFull wall clock over %d reps: full\n"
              " parse + canonical re-check for text vs fingerprint-verify + map for\n"
              " the image; reports_match pins planned / v2-loaded / v4-mapped runs\n"
              " to byte-identical reports)\n\n", reps);

  std::printf(
      "BENCH_JSON {\"bench\":\"strategy_format\",\"preset\":\"e7\","
      "\"v2_blob_bytes\":%zu,\"v4_blob_bytes\":%zu,\"blob_ratio\":%.4f,"
      "\"link_flap_patch_text_bytes\":%zu,\"link_flap_patch_image_bytes\":%zu,"
      "\"bus_remeasure_patch_text_bytes\":%zu,\"bus_remeasure_patch_image_bytes\":%zu,"
      "\"bus_remeasure_patch_vs_v2_blob\":%.4f,"
      "\"parse_install_us\":%.1f,\"map_install_us\":%.1f,"
      "\"reports_match\":%s,\"report_fingerprint\":\"%016llx\"}\n",
      v2_blob.size(), v4_blob->size(), v4_bytes / v2_bytes, link_flap->text_bytes,
      link_flap->image_bytes, bus_remeasure->text_bytes, bus_remeasure->image_bytes,
      static_cast<double>(bus_remeasure->image_bytes) / v2_bytes, parse_us, map_us,
      reports_match ? "true" : "false", static_cast<unsigned long long>(report_fp));

  if (!reports_match) {
    std::fprintf(stderr,
                 "format bench: run reports diverged across strategy sources\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) {
  int reps = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    }
  }
  return btr::Run(reps < 1 ? 1 : reps);
}
