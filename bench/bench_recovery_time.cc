// E3 "Figure 2" — measured recovery interval vs the configured bound R.
//
// Paper claim C2 (second half): after a fault manifests, outputs may be
// incorrect for at most R. We inject each fault type, measure the actual
// incorrect-output interval, and compare with R and with the
// self-stabilization baseline's eventual (unbounded-tail) recovery.

#include "bench/bench_util.h"
#include "src/baselines/selfstab.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E3 / Figure 2: recovery interval by fault type (R = 500 ms)",
              "claim C2: incorrect outputs last at most R; self-stabilization "
              "is only eventual");

  constexpr SimDuration kBound = Milliseconds(500);
  constexpr uint64_t kPeriods = 300;
  const FaultBehavior behaviors[] = {
      FaultBehavior::kCrash,     FaultBehavior::kValueCorruption, FaultBehavior::kOmission,
      FaultBehavior::kEquivocate, FaultBehavior::kDelay,
  };

  Table table({"fault type", "scheme", "detection", "recovery (worst of 5 seeds)",
               "bound", "within bound"});
  for (FaultBehavior behavior : behaviors) {
    SimDuration worst_recovery = 0;
    SimDuration worst_detect = 0;
    bool all_bounded = true;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Scenario scenario = MakeAvionicsScenario(6);
      BtrSystem system(scenario, DefaultBtrConfig(1, kBound, seed));
      if (!system.Plan().ok()) {
        continue;
      }
      FaultInjection injection;
      injection.node = MostCriticalPrimaryHost(system);
      injection.manifest_at = Milliseconds(100);
      injection.behavior = behavior;
      injection.delay = Milliseconds(6);
      system.AddFault(injection);
      auto report = system.Run(kPeriods);
      if (!report.ok()) {
        continue;
      }
      worst_recovery = std::max(worst_recovery, report->correctness.max_recovery);
      if (report->faults[0].detection_latency >= 0) {
        worst_detect = std::max(worst_detect, report->faults[0].detection_latency);
      }
      all_bounded = all_bounded && !report->correctness.btr_violated;
    }
    table.AddRow({FaultBehaviorName(behavior), "BTR",
                  CellDuration(static_cast<double>(worst_detect)),
                  CellDuration(static_cast<double>(worst_recovery)),
                  CellDuration(static_cast<double>(kBound)), all_bounded ? "yes" : "NO"});
  }

  // Self-stabilization baseline: crash and corruption, tail over seeds.
  for (FaultBehavior behavior : {FaultBehavior::kCrash, FaultBehavior::kValueCorruption}) {
    Scenario scenario = MakeAvionicsScenario(6);
    SimDuration worst = -1;
    bool always = true;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      SelfStabConfig config;
      config.seed = seed;
      AdversarySpec adversary;
      adversary.Add({NodeId(5), Milliseconds(100), behavior, 0, NodeId::Invalid(), 0});
      auto report = SelfStabBaseline(&scenario, config).Run(1200, adversary);
      if (!report.ok()) {
        continue;
      }
      if (!report->stabilized) {
        always = false;
      } else {
        worst = std::max(worst, report->recovery_time);
      }
    }
    table.AddRow({FaultBehaviorName(behavior), "self-stabilization", "(probabilistic)",
                  always ? CellDuration(static_cast<double>(worst)) : "never (in 12 s)",
                  "none (eventual)", always ? "n/a" : "n/a"});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
