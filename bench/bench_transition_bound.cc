// E13 "Table 4" (extension) — design-time recovery guarantee.
//
// The paper chooses offline planning because an online rescheduler has no
// time bound. This experiment closes the loop: with the whole strategy
// computed, the worst-case recovery per mode transition is itself computable
// offline (detection + evidence spread + boundary + state transfer +
// settle). We print the analyzed bound per scenario, check it against R, and
// compare with the worst *measured* recovery across fault injections — the
// measured value must never exceed the analyzed bound.

#include "bench/bench_util.h"

namespace btr {
namespace {

void Row(Table* table, const std::string& name, Scenario scenario, SimDuration recovery_bound,
         uint64_t periods) {
  BtrSystem system(std::move(scenario), DefaultBtrConfig(1, recovery_bound));
  if (!system.Plan().ok()) {
    return;
  }
  const TransitionAnalysis analysis = system.AnalyzeRecoveryBound();

  // Worst measured recovery across crashing / corrupting each compute host.
  SimDuration worst_measured = 0;
  const Plan* root = system.strategy().Lookup(FaultSet());
  std::set<NodeId> hosts;
  for (TaskId t : system.scenario().workload.ComputeIds()) {
    for (uint32_t rep : system.planner().graph().ReplicasOf(t)) {
      if (root->placement()[rep].valid()) {
        hosts.insert(root->placement()[rep]);
      }
    }
  }
  for (NodeId victim : hosts) {
    for (FaultBehavior behavior :
         {FaultBehavior::kCrash, FaultBehavior::kValueCorruption, FaultBehavior::kOmission}) {
      system.ClearFaults();
      system.AddFault({victim, Milliseconds(100), behavior, 0, NodeId::Invalid(), 0});
      auto report = system.Run(periods);
      if (report.ok()) {
        worst_measured = std::max(worst_measured, report->correctness.max_recovery);
      }
    }
  }
  const TransitionBound* worst = analysis.Worst();
  table->AddRow({name, CellDuration(static_cast<double>(analysis.worst_total)),
                 CellDuration(static_cast<double>(recovery_bound)),
                 analysis.fits_recovery_bound ? "guaranteed" : "NOT GUARANTEED",
                 CellDuration(static_cast<double>(worst_measured)),
                 worst != nullptr ? worst->to.ToString() : "-"});
}

void Run() {
  PrintHeader("E13 / Table 4 (extension): offline recovery-bound analysis",
              "analyzed worst-case transition vs configured R vs worst measured recovery");

  Table table({"scenario", "analyzed worst case", "R", "design-time verdict",
               "worst measured", "worst transition"});
  Row(&table, "avionics", MakeAvionicsScenario(6), Milliseconds(500), 150);
  Row(&table, "scada", MakeScadaScenario(), Milliseconds(2000), 60);
  Row(&table, "convoy", MakeConvoyScenario(4), Milliseconds(1000), 100);
  std::printf("%s\n", table.Render().c_str());
  std::printf("(measured <= analyzed must hold on every row; analyzed <= R means the\n"
              " deployment's R is provably sufficient, not just empirically so)\n\n");
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
