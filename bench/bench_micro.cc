// Micro-benchmarks (google-benchmark) for the hot primitives: event queue,
// signatures, evidence validation, golden oracle, list scheduler, and
// single-mode planning. These quantify the *simulator's* own costs, so
// users can size experiments; the experiment binaries measure the *modeled*
// system.

#include <benchmark/benchmark.h>

#include <map>

#include "src/common/block_pool.h"
#include "src/common/flat_map.h"
#include "src/common/packed_key.h"
#include "src/core/btr_system.h"
#include "src/core/evidence.h"
#include "src/core/golden.h"
#include "src/core/messages.h"
#include "src/core/planner.h"
#include "src/crypto/keys.h"
#include "src/rt/list_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/generators.h"

namespace btr {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < batch; ++i) {
      q.Schedule((i * 7919) % 1000, [&sink] { ++sink; });
    }
    while (!q.Empty()) {
      q.RunNext();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancel(benchmark::State& state) {
  // O(1) cancel via generation-stamped handles (no shadow live-set).
  const int batch = static_cast<int>(state.range(0));
  std::vector<EventHandle> handles(batch);
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < batch; ++i) {
      handles[i] = q.Schedule((i * 7919) % 1000, [] {});
    }
    for (int i = 0; i < batch; i += 2) {
      q.Cancel(handles[i]);
    }
    while (!q.Empty()) {
      q.RunNext();
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueCancel)->Arg(1024)->Arg(16384);

void BM_FlatMapInsertFindErase(benchmark::State& state) {
  // The runtime-state container: packed-key flat map.
  Rng rng(7);
  std::vector<uint64_t> keys(4096);
  for (uint64_t& k : keys) {
    k = PackIdPeriod(static_cast<uint32_t>(rng.NextBelow(64)), rng.NextBelow(1024));
  }
  for (auto _ : state) {
    FlatMap64<uint64_t> m;
    uint64_t sum = 0;
    for (uint64_t k : keys) {
      m.InsertOrAssign(k, k);
    }
    for (uint64_t k : keys) {
      sum += *m.Find(k);
    }
    m.EraseIf([](uint64_t k, const uint64_t&) { return PeriodOfPackedKey(k) < 512; });
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapInsertFindErase);

void BM_StdMapInsertFindErase(benchmark::State& state) {
  // Reference point: the ordered container the runtime used to key by
  // pairs/tuples (same packed keys for comparability).
  Rng rng(7);
  std::vector<uint64_t> keys(4096);
  for (uint64_t& k : keys) {
    k = PackIdPeriod(static_cast<uint32_t>(rng.NextBelow(64)), rng.NextBelow(1024));
  }
  for (auto _ : state) {
    std::map<uint64_t, uint64_t> m;
    uint64_t sum = 0;
    for (uint64_t k : keys) {
      m[k] = k;
    }
    for (uint64_t k : keys) {
      sum += m.find(k)->second;
    }
    std::erase_if(m, [](const auto& kv) { return PeriodOfPackedKey(kv.first) < 512; });
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_StdMapInsertFindErase);

void BM_PooledPayloadAllocation(benchmark::State& state) {
  // Freelist-pooled payloads vs the make_shared the runtime used per send.
  auto pool = std::make_shared<BlockPool>();
  for (auto _ : state) {
    auto hb = MakePooled<Heartbeat>(pool);
    hb->period = 1;
    benchmark::DoNotOptimize(hb);
  }
}
BENCHMARK(BM_PooledPayloadAllocation);

void BM_MakeSharedPayloadAllocation(benchmark::State& state) {
  for (auto _ : state) {
    auto hb = std::make_shared<Heartbeat>();
    hb->period = 1;
    benchmark::DoNotOptimize(hb);
  }
}
BENCHMARK(BM_MakeSharedPayloadAllocation);

void BM_SignVerify(benchmark::State& state) {
  Rng rng(1);
  KeyStore keys(8, &rng);
  Signer signer = keys.SignerFor(NodeId(3));
  uint64_t digest = 0x1234;
  for (auto _ : state) {
    const Signature sig = signer.Sign(digest);
    benchmark::DoNotOptimize(keys.Verify(sig, digest));
    ++digest;
  }
}
BENCHMARK(BM_SignVerify);

void BM_GoldenOracle(benchmark::State& state) {
  Scenario scenario = MakeAvionicsScenario(6);
  uint64_t period = 0;
  for (auto _ : state) {
    GoldenOracle oracle(&scenario.workload);  // cold each iteration
    uint64_t acc = 0;
    for (TaskId sink : scenario.workload.SinkIds()) {
      acc ^= oracle.Golden(sink, period);
    }
    benchmark::DoNotOptimize(acc);
    ++period;
  }
}
BENCHMARK(BM_GoldenOracle);

void BM_EvidenceValidateCommission(benchmark::State& state) {
  Rng rng(1);
  KeyStore keys(4, &rng);
  Scenario scenario = MakeScadaScenario();
  const Dataflow& w = scenario.workload;
  EvidenceValidator validator(&keys, &w, EvidenceValidationConfig{});

  const TaskId estimator = w.FindTask("estimator");
  auto rec = std::make_shared<OutputRecord>();
  rec->task = estimator;
  rec->period = 3;
  rec->sender = NodeId(2);
  for (const ChannelSpec& ch : w.Inputs(estimator)) {
    const uint64_t digest = SourceValue(ch.from, 3);
    rec->claimed_inputs.push_back(SignedInput{
        ch.from, digest, keys.SignerFor(NodeId(0)).Sign(InputContentDigest(ch.from, 3, digest))});
  }
  rec->digest = 0xBAD;  // provably wrong
  rec->value_sig = keys.SignerFor(NodeId(2)).Sign(InputContentDigest(estimator, 3, rec->digest));
  rec->sender_sig = keys.SignerFor(NodeId(2)).Sign(rec->ContentDigest());

  auto ev = std::make_shared<EvidenceRecord>();
  ev->kind = EvidenceKind::kCommission;
  ev->declarer = NodeId(3);
  ev->period = 3;
  ev->record = rec;
  ev->declarer_sig = keys.SignerFor(NodeId(3)).Sign(ev->ContentDigest());

  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.Validate(*ev));
  }
}
BENCHMARK(BM_EvidenceValidateCommission);

void BM_EvidenceValidateBatch(benchmark::State& state) {
  // The verifier-budget loop's batched path: one KeyStore pass for a chunk
  // of declarer signatures, memoized digests across items.
  Rng rng(1);
  KeyStore keys(4, &rng);
  Scenario scenario = MakeScadaScenario();
  const Dataflow& w = scenario.workload;
  EvidenceValidator validator(&keys, &w, EvidenceValidationConfig{});

  constexpr size_t kBatch = 8;
  std::vector<std::shared_ptr<EvidenceRecord>> records;
  const EvidenceRecord* batch[kBatch];
  for (size_t i = 0; i < kBatch; ++i) {
    auto ev = std::make_shared<EvidenceRecord>();
    ev->kind = EvidenceKind::kPathDeclaration;
    ev->declarer = NodeId(1);
    ev->period = i;
    ev->path_a = NodeId(1);
    ev->path_b = NodeId(2);
    ev->declarer_sig = keys.SignerFor(NodeId(1)).Sign(ev->SealDigest());
    batch[i] = ev.get();
    records.push_back(std::move(ev));
  }
  EvidenceVerdict verdicts[kBatch];
  for (auto _ : state) {
    validator.ValidateBatch(batch, kBatch, verdicts);
    benchmark::DoNotOptimize(verdicts[0].valid);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EvidenceValidateBatch);

void BM_ListScheduler(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<SchedJob> jobs;
  std::vector<SchedEdge> edges;
  for (uint32_t i = 0; i < n; ++i) {
    jobs.push_back(SchedJob{i, i % 8, Microseconds(100), 0, Milliseconds(50), 0});
    if (i > 0) {
      edges.push_back(SchedEdge{i - 1, i, Microseconds(10)});
    }
  }
  ListScheduler scheduler(8, Milliseconds(50));
  for (auto _ : state) {
    auto result = scheduler.Schedule(jobs, edges);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListScheduler)->Arg(32)->Arg(128)->Arg(256);

void BM_PlanSingleMode(benchmark::State& state) {
  Scenario scenario = MakeAvionicsScenario(static_cast<size_t>(state.range(0)));
  PlannerConfig config;
  config.max_faults = 1;
  Planner planner(&scenario.topology, &scenario.workload, config);
  for (auto _ : state) {
    auto plan = planner.PlanForMode(FaultSet(), {});
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanSingleMode)->Arg(4)->Arg(8)->Arg(16);

void BM_FullAvionicsRun(benchmark::State& state) {
  // End-to-end simulator throughput: one fault-free 100-period avionics run.
  Scenario scenario = MakeAvionicsScenario(6);
  for (auto _ : state) {
    BtrConfig config;
    config.planner.max_faults = 1;
    config.planner.recovery_bound = Milliseconds(500);
    BtrSystem sys(scenario, config);
    benchmark::DoNotOptimize(sys.Plan().ok());
    auto report = sys.Run(100);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_FullAvionicsRun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace btr

BENCHMARK_MAIN();
