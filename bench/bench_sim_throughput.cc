// End-to-end simulation data-plane throughput.
//
// Unlike the experiment benches (which measure the *modeled* system), this
// measures the *simulator itself*: host wall-clock and executed events/sec
// for a full BtrSystem::Run over an E7-scale avionics scenario (8 flight
// computers, f=2), both fault-free and with a crash plus a value-corruption
// fault so the evidence/recovery path is on the clock.
//
// Emits one `BENCH_JSON {...}` line per row; ci/run_benches.sh collects
// them into BENCH_runtime.json so the perf trajectory is recorded per PR.
// The report fingerprint is printed alongside: it must not change when only
// the data plane's implementation (not its behavior) is optimized.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench/bench_util.h"

namespace btr {
namespace {

struct Options {
  std::string preset = "e7";  // "e7" or "smoke"
  uint64_t periods = 0;       // 0 = preset default
  uint64_t seed = 1;
  int reps = 3;
};

struct PresetSpec {
  size_t compute_nodes;
  uint32_t f;
  uint64_t periods;
};

PresetSpec SpecFor(const std::string& preset) {
  if (preset == "smoke") {
    return PresetSpec{6, 1, 100};
  }
  // E7-scale: 8 interchangeable flight computers (plus pinned I/O nodes),
  // f=2 (79 modes), long enough that the per-period hot path dominates.
  return PresetSpec{8, 2, 1500};
}

struct RowResult {
  double best_wall_ms = 0.0;
  uint64_t events = 0;
  double events_per_sec = 0.0;
  uint64_t fingerprint = 0;
};

RowResult Measure(BtrSystem& system, uint64_t periods, int reps) {
  RowResult r;
  r.best_wall_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto report = system.Run(periods);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n", report.status().ToString().c_str());
      std::exit(1);
    }
    const uint64_t fp = FingerprintRunReport(*report);
    if (i == 0) {
      r.fingerprint = fp;
    } else if (fp != r.fingerprint) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: rep %d fingerprint %016" PRIx64
                           " != %016" PRIx64 "\n",
                   i, fp, r.fingerprint);
      std::exit(1);
    }
    if (wall_ms < r.best_wall_ms) {
      r.best_wall_ms = wall_ms;
      r.events = report->events_executed;
      r.events_per_sec = static_cast<double>(report->events_executed) / (wall_ms / 1e3);
    }
  }
  return r;
}

void Run(const Options& opts) {
  PrintHeader("sim data-plane throughput",
              "host events/sec of BtrSystem::Run on the E7-style preset (best of " +
                  std::to_string(opts.reps) + " reps; fingerprint must be seed-stable)");

  const PresetSpec spec = SpecFor(opts.preset);
  const uint64_t periods = opts.periods != 0 ? opts.periods : spec.periods;

  Scenario scenario = MakeAvionicsScenario(spec.compute_nodes);

  BtrConfig config = DefaultBtrConfig(spec.f, Milliseconds(500), opts.seed);
  BtrSystem system(std::move(scenario), config);
  if (!system.Plan().ok()) {
    std::fprintf(stderr, "planning failed\n");
    std::exit(1);
  }

  const SimDuration period_len = system.scenario().workload.period();
  Table table({"variant", "periods", "events", "wall (best)", "events/sec", "fingerprint"});
  auto emit = [&](const char* variant, const RowResult& r) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, r.fingerprint);
    table.AddRow({std::string(variant), CellInt(static_cast<int64_t>(periods)),
                  CellInt(static_cast<int64_t>(r.events)), CellDuration(r.best_wall_ms * 1e6),
                  CellDouble(r.events_per_sec, 0), std::string(fp)});
    std::printf("BENCH_JSON {\"bench\":\"sim_throughput\",\"preset\":\"%s\","
                "\"variant\":\"%s\",\"periods\":%" PRIu64 ",\"events\":%" PRIu64 ","
                "\"wall_ms\":%.3f,\"events_per_sec\":%.0f,\"fingerprint\":\"%s\"}\n",
                opts.preset.c_str(), variant, periods, r.events, r.best_wall_ms,
                r.events_per_sec, fp);
  };

  // Fault-free: the pure dispatch/heartbeat/network hot path.
  system.ClearFaults();
  emit("fault-free", Measure(system, periods, opts.reps));

  // Faulty: a crash and a value corruption, so detection, evidence
  // distribution, verification, and mode switching are all exercised.
  const NodeId victim = MostCriticalPrimaryHost(system);
  NodeId corrupt;
  for (uint32_t n = 0; n < system.scenario().topology.node_count(); ++n) {
    const Plan* root = system.strategy().Lookup(FaultSet());
    bool hosts_compute = false;
    for (uint32_t aug = 0; aug < system.planner().graph().size(); ++aug) {
      if (root->placement()[aug] == NodeId(n)) {
        hosts_compute = true;
        break;
      }
    }
    if (hosts_compute && NodeId(n) != victim) {
      corrupt = NodeId(n);
      break;
    }
  }
  system.ClearFaults();
  FaultInjection crash;
  crash.node = victim;
  crash.manifest_at = static_cast<SimTime>(periods / 3) * period_len;
  crash.behavior = FaultBehavior::kCrash;
  system.AddFault(crash);
  if (corrupt.valid()) {
    FaultInjection corruption;
    corruption.node = corrupt;
    corruption.manifest_at = static_cast<SimTime>(2 * periods / 3) * period_len;
    corruption.behavior = FaultBehavior::kValueCorruption;
    system.AddFault(corruption);
  }
  emit("faulty", Measure(system, periods, opts.reps));

  // Conservative-parallel scaling: the identical fault-free run at shard
  // counts {1, 2, 4, 8}. The fingerprint column is the point, not garnish —
  // any divergence across shard counts is a determinism bug and fails the
  // bench. host_cores is recorded so a flat curve on a small host reads as
  // what it is, not as a regression.
  system.ClearFaults();
  const unsigned host_cores = std::thread::hardware_concurrency();
  uint64_t scale_fp = 0;
  double s1_events_per_sec = 0.0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    system.set_shards(shards);
    const RowResult r = Measure(system, periods, opts.reps);
    if (shards == 1) {
      scale_fp = r.fingerprint;
      s1_events_per_sec = r.events_per_sec;
    } else if (r.fingerprint != scale_fp) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: shards=%u fingerprint %016" PRIx64
                   " != shards=1 fingerprint %016" PRIx64 "\n",
                   shards, r.fingerprint, scale_fp);
      std::exit(1);
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, r.fingerprint);
    char variant[32];
    std::snprintf(variant, sizeof(variant), "parallel-s%u", shards);
    table.AddRow({std::string(variant), CellInt(static_cast<int64_t>(periods)),
                  CellInt(static_cast<int64_t>(r.events)), CellDuration(r.best_wall_ms * 1e6),
                  CellDouble(r.events_per_sec, 0), std::string(fp)});
    std::printf("BENCH_JSON {\"bench\":\"sim_parallel\",\"preset\":\"%s\","
                "\"shards\":%u,\"host_cores\":%u,\"periods\":%" PRIu64
                ",\"events\":%" PRIu64 ",\"wall_ms\":%.3f,\"events_per_sec\":%.0f,"
                "\"speedup_vs_s1\":%.2f,\"fingerprint\":\"%s\"}\n",
                opts.preset.c_str(), shards, host_cores, periods, r.events, r.best_wall_ms,
                r.events_per_sec,
                s1_events_per_sec > 0.0 ? r.events_per_sec / s1_events_per_sec : 0.0, fp);
  }
  system.set_shards(0);

  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) {
  btr::Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--preset=", 9) == 0) {
      opts.preset = arg + 9;
    } else if (std::strncmp(arg, "--periods=", 10) == 0) {
      opts.periods = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      opts.reps = std::atoi(arg + 7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--preset=e7|smoke] [--periods=N] [--seed=S] [--reps=R]\n", arg);
      return 2;
    }
  }
  btr::Run(opts);
  return 0;
}
