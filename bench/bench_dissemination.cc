// Rollout dissemination: gossip vs unicast on the convoy presets.
//
// The question this bench answers: what does a mid-run strategy rollout
// cost on the shared V2V bus as the fleet grows, with heartbeats left ON?
// For each fleet size it stages the convoy gap-log edit (the
// convoy_staged_task scenario) and runs the identical script twice —
// dissem=unicast (the distributor ships every slice point-to-point) and
// dissem=gossip (Trickle beacons, suppression, hop-by-hop relay with
// heartbeat-aware pacing) — recording rollout latency, nodes installed,
// control-class bytes on the bus, suppression counts, and the sinks the
// install burst cost the workload.
//
// Emits `BENCH_JSON {...}` rows that ci/run_benches.sh --dissemination
// folds into BENCH_runtime.json.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/net/dissemination.h"
#include "src/net/network.h"
#include "src/spec/experiment_spec.h"

namespace btr {
namespace {

std::string ConvoySpecText(size_t nodes, const char* dissem) {
  std::string text = "BTRX 1\nNAME dissem_convoy\nSCENARIO convoy nodes=" +
                     std::to_string(nodes) +
                     "\nCONFIG f=1 recovery-us=800000 seed=3";
  if (std::strcmp(dissem, "unicast") != 0) {
    text += " dissem=";
    text += dissem;
  }
  text +=
      "\nPHASE periods=60\n"
      "EDIT at-us=600000 kind=task-add name=gap_log task-kind=sink wcet-us=80"
      " crit=best-effort node=0 deadline-us=20000 chan=gap_est1:gap_log:64\n"
      "END\n";
  return text;
}

struct RolloutRow {
  double rollout_ms = -1.0;  // completed - started; -1: never completed
  size_t installed = 0;
  uint64_t control_bytes = 0;  // bus bytes in the control class, whole phase
  uint64_t install_payload = 0;
  uint64_t missing = 0;
  DissemAgentStats dissem;
  uint64_t fingerprint = 0;
};

StatusOr<RolloutRow> RunOne(size_t nodes, const char* dissem) {
  auto spec = ParseExperimentSpec(ConvoySpecText(nodes, dissem));
  if (!spec.ok()) {
    return spec.status();
  }
  auto report = RunExperiment(*spec);
  if (!report.ok()) {
    return report.status();
  }
  const RunReport& phase = report->phases[0];
  RolloutRow row;
  if (phase.install.completed_at != kSimTimeNever) {
    row.rollout_ms =
        static_cast<double>(phase.install.completed_at - phase.install.started_at) / 1e6;
  }
  row.installed = phase.install.nodes_installed;
  row.control_bytes =
      phase.network.bytes_by_class[static_cast<int>(TrafficClass::kControl)];
  row.install_payload = phase.install.patch_bytes_sent + phase.install.full_bytes_sent;
  row.missing = phase.correctness.incorrect_missing;
  row.dissem = phase.install.dissem;
  row.fingerprint = FingerprintExperimentReport(*report);
  return row;
}

// Pace-fraction sweep: the same gossip rollout with the chunk-pacing knob
// turned. pace_fraction caps one chunk's serialization time at that
// fraction of the workload period — small values keep heartbeats flowing
// but stretch the transfer; large values approach the unicast burst.
// DissemConfig is not spec-exposed, so the system is built by hand:
// BuildScenario + MakeBtrConfig, mutate, then replay the identical script
// through RunExperimentPhases.
StatusOr<RolloutRow> RunPace(size_t nodes, double pace_fraction) {
  auto spec = ParseExperimentSpec(ConvoySpecText(nodes, "gossip"));
  if (!spec.ok()) {
    return spec.status();
  }
  auto scenario = BuildScenario(spec->scenario);
  if (!scenario.ok()) {
    return scenario.status();
  }
  BtrConfig config = MakeBtrConfig(*spec);
  config.runtime.dissem.pace_fraction = pace_fraction;
  BtrSystem system(std::move(*scenario), config);
  if (auto planned = system.Plan(); !planned.ok()) {
    return planned;
  }
  auto report = RunExperimentPhases(system, *spec);
  if (!report.ok()) {
    return report.status();
  }
  const RunReport& phase = report->phases[0];
  RolloutRow row;
  if (phase.install.completed_at != kSimTimeNever) {
    row.rollout_ms =
        static_cast<double>(phase.install.completed_at - phase.install.started_at) / 1e6;
  }
  row.installed = phase.install.nodes_installed;
  row.control_bytes =
      phase.network.bytes_by_class[static_cast<int>(TrafficClass::kControl)];
  row.install_payload = phase.install.patch_bytes_sent + phase.install.full_bytes_sent;
  row.missing = phase.correctness.incorrect_missing;
  row.dissem = phase.install.dissem;
  row.fingerprint = FingerprintExperimentReport(*report);
  return row;
}

int Main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--preset=", 0) == 0) {
      preset = arg.substr(9);
    }
  }
  // convoy200 doubles planning time per run; reserved for --full.
  std::vector<size_t> sizes = {8, 40};
  if (preset != "smoke") {
    sizes.push_back(200);
  }

  PrintHeader("dissemination",
              "Rollout latency and bytes-on-bus vs fleet size, heartbeats on: "
              "Trickle gossip against the unicast install burst.");

  Table table({"fleet", "mode", "rollout", "installed", "control B", "payload B",
               "missing sinks", "beacons", "suppressed"});
  for (size_t nodes : sizes) {
    for (const char* mode : {"unicast", "gossip"}) {
      auto row = RunOne(nodes, mode);
      if (!row.ok()) {
        std::printf("dissemination bench convoy%zu/%s: %s\n", nodes, mode,
                    row.status().ToString().c_str());
        return 1;
      }
      table.AddRow({"convoy" + std::to_string(nodes), mode,
                    row->rollout_ms < 0 ? std::string("incomplete")
                                        : CellDouble(row->rollout_ms, 2) + " ms",
                    CellInt(static_cast<int64_t>(row->installed)) + "/" +
                        std::to_string(nodes),
                    CellBytes(static_cast<double>(row->control_bytes)),
                    CellBytes(static_cast<double>(row->install_payload)),
                    CellInt(static_cast<int64_t>(row->missing)),
                    CellInt(static_cast<int64_t>(row->dissem.beacons_sent)),
                    CellInt(static_cast<int64_t>(row->dissem.beacons_suppressed))});
      std::printf(
          "BENCH_JSON {\"bench\":\"dissemination\",\"preset\":\"%s\","
          "\"variant\":\"convoy%zu/%s\",\"nodes\":%zu,\"rollout_ms\":%.3f,"
          "\"installed\":%zu,\"control_bus_bytes\":%llu,"
          "\"install_payload_bytes\":%llu,\"missing_sinks\":%llu,"
          "\"beacons_sent\":%llu,\"beacons_suppressed\":%llu,"
          "\"chunks_sent\":%llu,\"serves\":%llu,\"resumes\":%llu,"
          "\"fingerprint\":\"%016llx\"}\n",
          preset.c_str(), nodes, mode, nodes, row->rollout_ms, row->installed,
          static_cast<unsigned long long>(row->control_bytes),
          static_cast<unsigned long long>(row->install_payload),
          static_cast<unsigned long long>(row->missing),
          static_cast<unsigned long long>(row->dissem.beacons_sent),
          static_cast<unsigned long long>(row->dissem.beacons_suppressed),
          static_cast<unsigned long long>(row->dissem.chunks_sent),
          static_cast<unsigned long long>(row->dissem.serves),
          static_cast<unsigned long long>(row->dissem.resumes),
          static_cast<unsigned long long>(row->fingerprint));
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Rollout latency vs pace_fraction at convoy40: how hard the pacing knob
  // trades heartbeat headroom against install speed.
  Table pace_table({"fleet", "pace", "rollout", "installed", "control B",
                    "missing sinks"});
  for (double pace : {0.1, 0.25, 0.5}) {
    auto row = RunPace(40, pace);
    if (!row.ok()) {
      std::printf("dissemination pace bench convoy40/%.2f: %s\n", pace,
                  row.status().ToString().c_str());
      return 1;
    }
    pace_table.AddRow({"convoy40", CellDouble(pace, 2),
                       row->rollout_ms < 0 ? std::string("incomplete")
                                           : CellDouble(row->rollout_ms, 2) + " ms",
                       CellInt(static_cast<int64_t>(row->installed)) + "/40",
                       CellBytes(static_cast<double>(row->control_bytes)),
                       CellInt(static_cast<int64_t>(row->missing))});
    std::printf(
        "BENCH_JSON {\"bench\":\"dissemination_pace\",\"preset\":\"%s\","
        "\"variant\":\"convoy40/pace%.2f\",\"nodes\":40,\"pace_fraction\":%.2f,"
        "\"rollout_ms\":%.3f,\"installed\":%zu,\"control_bus_bytes\":%llu,"
        "\"install_payload_bytes\":%llu,\"missing_sinks\":%llu,"
        "\"fingerprint\":\"%016llx\"}\n",
        preset.c_str(), pace, pace, row->rollout_ms, row->installed,
        static_cast<unsigned long long>(row->control_bytes),
        static_cast<unsigned long long>(row->install_payload),
        static_cast<unsigned long long>(row->missing),
        static_cast<unsigned long long>(row->fingerprint));
  }
  std::printf("%s\n", pace_table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) { return btr::Main(argc, argv); }
