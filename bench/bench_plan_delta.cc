// E8 "Figure 6" — reassignment delta governs recovery time.
//
// Paper Section 4.1: a successor plan "should otherwise change as little as
// possible. Any extra reassignments will consume resources... and can thus
// prolong recovery." We compare the parent-stickiness heuristic against a
// fresh-replan planner: per single-fault mode, the plan delta (tasks moved,
// state bytes transferred) and the measured recovery time after that fault.
//
// The install section (--install-only for CI) measures the strategy
// *distribution* cost after an E7 single-edit: per-node install bytes and
// simulated install latency over the network's control class, sliced-patch
// shipments vs the naive full-blob-to-every-node baseline. Emits
// `BENCH_JSON {...}` rows that ci/run_benches.sh folds into
// BENCH_runtime.json.

#include <cstring>

#include "bench/bench_util.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_patch.h"

namespace btr {
namespace {

struct Aggregate {
  double moved = 0;
  double state = 0;
  double recovery_ms = 0;
  double worst_recovery_ms = 0;
  int runs = 0;
};

Aggregate Measure(bool stickiness) {
  Aggregate agg;
  Scenario scenario = MakeAvionicsScenario(6);
  BtrConfig config = DefaultBtrConfig(1, Milliseconds(500));
  config.planner.parent_stickiness = stickiness;
  // Give the fickle planner a reason to move: strong load weight.
  config.planner.weight_load = 4.0;
  BtrSystem system(scenario, config);
  if (!system.Plan().ok()) {
    return agg;
  }
  const Plan* root = system.strategy().Lookup(FaultSet());
  for (uint32_t n = 4; n < scenario.topology.node_count(); ++n) {
    const NodeId victim(n);
    const Plan* next = system.strategy().Lookup(FaultSet({victim}));
    if (next == nullptr) {
      continue;
    }
    const PlanDelta delta = ComputeDelta(*root, *next, system.planner().graph());
    system.ClearFaults();
    system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
    auto report = system.Run(150);
    if (!report.ok()) {
      continue;
    }
    agg.moved += static_cast<double>(delta.tasks_moved + delta.tasks_started);
    agg.state += static_cast<double>(delta.state_bytes_moved);
    const double rec = ToMillisF(report->correctness.max_recovery);
    agg.recovery_ms += rec;
    agg.worst_recovery_ms = std::max(agg.worst_recovery_ms, rec);
    ++agg.runs;
  }
  return agg;
}

void Run() {
  PrintHeader("E8 / Figure 6: plan delta vs recovery time",
              "claim C5: minimal-reassignment planning shortens recovery");

  Table table({"planner", "avg tasks moved/started", "avg state moved", "avg recovery",
               "worst recovery"});
  for (bool stickiness : {true, false}) {
    const Aggregate agg = Measure(stickiness);
    if (agg.runs == 0) {
      continue;
    }
    table.AddRow({stickiness ? "minimal-delta (stickiness on)" : "fresh replan (stickiness off)",
                  CellDouble(agg.moved / agg.runs, 1),
                  CellBytes(agg.state / agg.runs),
                  CellDouble(agg.recovery_ms / agg.runs, 1) + " ms",
                  CellDouble(agg.worst_recovery_ms, 1) + " ms"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(averaged over crashing each flight computer once)\n\n");
}

// --- E7 install traffic: sliced patches vs full blob ----------------------

struct InstallMeasurement {
  uint64_t bytes_sent = 0;
  double install_ms = -1.0;
  size_t installed = 0;
  size_t fallbacks = 0;
  size_t target_modes = 0;
  size_t target_blob_bytes = 0;
  double avg_patch = 0.0;
  size_t max_patch = 0;
  size_t nodes = 0;
};

// One full lifecycle pass through the public API: plan, stage the edit
// (ApplyDelta rebuilds incrementally and diffs to per-node patches), and
// let Run replay the rollout over the simulated network. The data plane
// executes the *old* strategy throughout the rollout run — this measures
// dissemination, not activation. Each ship mode pays its own Plan +
// Rebuild (Run commits the staged edit, so one system cannot roll the
// same edit out twice); planning is deterministic, so both modes ship a
// bit-identical StrategyUpdate.
StatusOr<InstallMeasurement> SimulateInstall(const Scenario& base, const DeltaEdit& edit,
                                             BtrRuntime::InstallShipMode mode) {
  BtrConfig config = DefaultBtrConfig(2, Milliseconds(500));
  // Heartbeats share the control class with install traffic; an unpaced
  // distributor burst would delay its own heartbeats into false omission
  // convictions (pacing is the dissemination-scheduling ROADMAP item).
  config.runtime.heartbeats = false;

  BtrSystem system(base, config);
  Status planned = system.Plan();
  if (!planned.ok()) {
    return planned;
  }
  StrategyDelta delta;
  delta.edits.push_back(edit);
  const SimDuration period = system.scenario().workload.period();
  Status staged = system.ApplyDelta(delta, 2 * period + 1, mode);
  if (!staged.ok()) {
    return staged;
  }

  InstallMeasurement m;
  const StrategyUpdate* update = system.staged_update();
  m.nodes = update->patch_slices.size();
  m.target_blob_bytes = update->target_blob.size();
  size_t sum_patch = 0;
  for (const std::string& slice : update->patch_slices) {
    m.max_patch = std::max(m.max_patch, slice.size());
    sum_patch += slice.size();
  }
  m.avg_patch = static_cast<double>(sum_patch) / static_cast<double>(m.nodes);

  // Long enough that even the full-blob baseline (~0.8 s serialization per
  // 100 KB shipment on the distributor's control share) finishes.
  auto report = system.Run(400);
  if (!report.ok()) {
    return report.status();
  }
  m.target_modes = system.strategy().mode_count();  // committed at run end
  m.bytes_sent = report->install.patch_bytes_sent + report->install.full_bytes_sent;
  m.installed = report->install.nodes_installed;
  m.fallbacks = report->install.fallbacks;
  if (report->install.completed_at != kSimTimeNever) {
    m.install_ms =
        static_cast<double>(report->install.completed_at - report->install.started_at) / 1e6;
  }
  return m;
}

void RunInstall() {
  PrintHeader("E7 addendum: strategy install traffic",
              "ship only what an edit changed, and only each node's own table rows");

  // The same 14-node / f=2 / 106-mode system as the incremental-replanning
  // bench, so the install rows compose with the planner_incremental rows:
  // edit -> Rebuild -> patch -> install, all through BtrSystem::ApplyDelta.
  Rng rng(42);
  RandomDagParams params;
  params.compute_nodes = 12;
  params.layers = 3;
  params.tasks_per_layer = 4;
  params.period = Milliseconds(50);

  Scenario base;
  {
    Rng scenario_rng = rng;
    base = MakeRandomScenario(&scenario_rng, params);
  }
  base.topology.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "flaplink");

  struct Variant {
    const char* name;
    DeltaEdit edit;
  };
  const Variant variants[] = {
      // The E7 single-link-flap edit: every mode stays clean, the patch is
      // pure re-reference.
      {"link_flap", DeltaEdit::LinkRemove("flaplink")},
      // A bus re-measurement dirties every mode: the worst case for a
      // delta install (all bodies ship, but still only per-node rows).
      {"bus_remeasure", DeltaEdit::LinkLatencyChange("bus", 60'000'000, -1)},
  };

  Table table({"edit", "mode", "blob bytes", "bytes/node", "vs full blob", "install time",
               "installed", "fallbacks"});
  for (const Variant& variant : variants) {
    auto patch = SimulateInstall(base, variant.edit, BtrRuntime::InstallShipMode::kPatchSlices);
    auto blob = SimulateInstall(base, variant.edit, BtrRuntime::InstallShipMode::kFullBlob);
    if (!patch.ok() || !blob.ok()) {
      std::printf("install bench %s: %s\n", variant.name,
                  (!patch.ok() ? patch.status() : blob.status()).ToString().c_str());
      continue;
    }

    const double blob_bytes = static_cast<double>(patch->target_blob_bytes);
    table.AddRow({std::string(variant.name), "patch slices", CellBytes(blob_bytes),
                  CellBytes(patch->avg_patch),
                  CellDouble(100.0 * patch->avg_patch / blob_bytes, 1) + " %",
                  CellDouble(patch->install_ms, 2) + " ms",
                  CellInt(static_cast<int64_t>(patch->installed)),
                  CellInt(static_cast<int64_t>(patch->fallbacks))});
    table.AddRow({std::string(variant.name), "full blob", CellBytes(blob_bytes),
                  CellBytes(blob_bytes), "100.0 %", CellDouble(blob->install_ms, 2) + " ms",
                  CellInt(static_cast<int64_t>(blob->installed)),
                  CellInt(static_cast<int64_t>(blob->fallbacks))});
    std::printf(
        "BENCH_JSON {\"bench\":\"strategy_install\",\"preset\":\"e7\","
        "\"variant\":\"%s\",\"nodes\":%zu,\"modes\":%zu,\"full_blob_bytes\":%zu,"
        "\"patch_bytes_per_node_avg\":%.1f,\"patch_bytes_per_node_max\":%zu,"
        "\"patch_vs_blob_ratio\":%.4f,\"patch_install_ms\":%.3f,"
        "\"full_blob_install_ms\":%.3f,\"patch_bytes_sent\":%llu,"
        "\"full_blob_bytes_sent\":%llu,\"patch_installed\":%zu,\"fallbacks\":%zu}\n",
        variant.name, patch->nodes, patch->target_modes, patch->target_blob_bytes,
        patch->avg_patch, patch->max_patch, patch->avg_patch / blob_bytes,
        patch->install_ms, blob->install_ms,
        static_cast<unsigned long long>(patch->bytes_sent),
        static_cast<unsigned long long>(blob->bytes_sent), patch->installed,
        patch->fallbacks);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(bytes/node = average install shipment per node over the simulated\n"
              " network's control class; install time = simulated time from rollout\n"
              " start to the last node verifying its new slice; patches chain to the\n"
              " installed base by fingerprint and fall back to a full slice on any\n"
              " mismatch — see README \"Strategy distribution\")\n\n");
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) {
  bool install_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--install-only") == 0) {
      install_only = true;
    }
  }
  if (!install_only) {
    btr::Run();
  }
  btr::RunInstall();
  return 0;
}
