// E8 "Figure 6" — reassignment delta governs recovery time.
//
// Paper Section 4.1: a successor plan "should otherwise change as little as
// possible. Any extra reassignments will consume resources... and can thus
// prolong recovery." We compare the parent-stickiness heuristic against a
// fresh-replan planner: per single-fault mode, the plan delta (tasks moved,
// state bytes transferred) and the measured recovery time after that fault.

#include "bench/bench_util.h"

namespace btr {
namespace {

struct Aggregate {
  double moved = 0;
  double state = 0;
  double recovery_ms = 0;
  double worst_recovery_ms = 0;
  int runs = 0;
};

Aggregate Measure(bool stickiness) {
  Aggregate agg;
  Scenario scenario = MakeAvionicsScenario(6);
  BtrConfig config = DefaultBtrConfig(1, Milliseconds(500));
  config.planner.parent_stickiness = stickiness;
  // Give the fickle planner a reason to move: strong load weight.
  config.planner.weight_load = 4.0;
  BtrSystem system(scenario, config);
  if (!system.Plan().ok()) {
    return agg;
  }
  const Plan* root = system.strategy().Lookup(FaultSet());
  for (uint32_t n = 4; n < scenario.topology.node_count(); ++n) {
    const NodeId victim(n);
    const Plan* next = system.strategy().Lookup(FaultSet({victim}));
    if (next == nullptr) {
      continue;
    }
    const PlanDelta delta = ComputeDelta(*root, *next, system.planner().graph());
    system.ClearFaults();
    system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
    auto report = system.Run(150);
    if (!report.ok()) {
      continue;
    }
    agg.moved += static_cast<double>(delta.tasks_moved + delta.tasks_started);
    agg.state += static_cast<double>(delta.state_bytes_moved);
    const double rec = ToMillisF(report->correctness.max_recovery);
    agg.recovery_ms += rec;
    agg.worst_recovery_ms = std::max(agg.worst_recovery_ms, rec);
    ++agg.runs;
  }
  return agg;
}

void Run() {
  PrintHeader("E8 / Figure 6: plan delta vs recovery time",
              "claim C5: minimal-reassignment planning shortens recovery");

  Table table({"planner", "avg tasks moved/started", "avg state moved", "avg recovery",
               "worst recovery"});
  for (bool stickiness : {true, false}) {
    const Aggregate agg = Measure(stickiness);
    if (agg.runs == 0) {
      continue;
    }
    table.AddRow({stickiness ? "minimal-delta (stickiness on)" : "fresh replan (stickiness off)",
                  CellDouble(agg.moved / agg.runs, 1),
                  CellBytes(agg.state / agg.runs),
                  CellDouble(agg.recovery_ms / agg.runs, 1) + " ms",
                  CellDouble(agg.worst_recovery_ms, 1) + " ms"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(averaged over crashing each flight computer once)\n\n");
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
