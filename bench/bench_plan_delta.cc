// E8 "Figure 6" — reassignment delta governs recovery time.
//
// Paper Section 4.1: a successor plan "should otherwise change as little as
// possible. Any extra reassignments will consume resources... and can thus
// prolong recovery." We compare the parent-stickiness heuristic against a
// fresh-replan planner: per single-fault mode, the plan delta (tasks moved,
// state bytes transferred) and the measured recovery time after that fault.
//
// The install section (--install-only for CI) measures the strategy
// *distribution* cost after an E7 single-edit: per-node install bytes and
// simulated install latency over the network's control class, sliced-patch
// shipments vs the naive full-blob-to-every-node baseline. Emits
// `BENCH_JSON {...}` rows that ci/run_benches.sh folds into
// BENCH_runtime.json.

#include <cstring>
#include <deque>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_patch.h"

namespace btr {
namespace {

struct Aggregate {
  double moved = 0;
  double state = 0;
  double recovery_ms = 0;
  double worst_recovery_ms = 0;
  int runs = 0;
};

Aggregate Measure(bool stickiness) {
  Aggregate agg;
  Scenario scenario = MakeAvionicsScenario(6);
  BtrConfig config = DefaultBtrConfig(1, Milliseconds(500));
  config.planner.parent_stickiness = stickiness;
  // Give the fickle planner a reason to move: strong load weight.
  config.planner.weight_load = 4.0;
  BtrSystem system(scenario, config);
  if (!system.Plan().ok()) {
    return agg;
  }
  const Plan* root = system.strategy().Lookup(FaultSet());
  for (uint32_t n = 4; n < scenario.topology.node_count(); ++n) {
    const NodeId victim(n);
    const Plan* next = system.strategy().Lookup(FaultSet({victim}));
    if (next == nullptr) {
      continue;
    }
    const PlanDelta delta = ComputeDelta(*root, *next, system.planner().graph());
    system.ClearFaults();
    system.AddFault({victim, Milliseconds(100), FaultBehavior::kCrash, 0, NodeId::Invalid(), 0});
    auto report = system.Run(150);
    if (!report.ok()) {
      continue;
    }
    agg.moved += static_cast<double>(delta.tasks_moved + delta.tasks_started);
    agg.state += static_cast<double>(delta.state_bytes_moved);
    const double rec = ToMillisF(report->correctness.max_recovery);
    agg.recovery_ms += rec;
    agg.worst_recovery_ms = std::max(agg.worst_recovery_ms, rec);
    ++agg.runs;
  }
  return agg;
}

void Run() {
  PrintHeader("E8 / Figure 6: plan delta vs recovery time",
              "claim C5: minimal-reassignment planning shortens recovery");

  Table table({"planner", "avg tasks moved/started", "avg state moved", "avg recovery",
               "worst recovery"});
  for (bool stickiness : {true, false}) {
    const Aggregate agg = Measure(stickiness);
    if (agg.runs == 0) {
      continue;
    }
    table.AddRow({stickiness ? "minimal-delta (stickiness on)" : "fresh replan (stickiness off)",
                  CellDouble(agg.moved / agg.runs, 1),
                  CellBytes(agg.state / agg.runs),
                  CellDouble(agg.recovery_ms / agg.runs, 1) + " ms",
                  CellDouble(agg.worst_recovery_ms, 1) + " ms"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(averaged over crashing each flight computer once)\n\n");
}

// --- E7 install traffic: sliced patches vs full blob ----------------------

struct InstallSystem {
  Topology topo;
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<Planner> planner;
};

struct InstallMeasurement {
  uint64_t bytes_sent = 0;
  double install_ms = -1.0;
  size_t installed = 0;
  size_t fallbacks = 0;
};

// Runs one rollout over the simulated network and reports its cost. The
// data plane executes the *old* strategy throughout — this measures
// dissemination, not activation.
InstallMeasurement SimulateInstall(const InstallSystem& sys, const Strategy& strategy,
                                   const std::shared_ptr<const StrategyUpdate>& update,
                                   BtrRuntime::InstallShipMode mode) {
  BtrConfig config = DefaultBtrConfig(2, Milliseconds(500));
  // Heartbeats share the control class with install traffic; an unpaced
  // distributor burst would delay its own heartbeats into false omission
  // convictions (pacing is the dissemination-scheduling ROADMAP item).
  config.runtime.heartbeats = false;

  Simulator sim(config.seed);
  Network network(&sim, &sys.topo, config.planner.network);
  Rng key_rng(config.seed ^ 0x5eedc0deULL);
  KeyStore keys(sys.topo.node_count(), &key_rng);
  AdversarySpec adversary;
  Monitor monitor(&sys.workload, &strategy, &adversary, config.planner.recovery_bound);
  RuntimeContext ctx;
  ctx.sim = &sim;
  ctx.network = &network;
  ctx.topo = &sys.topo;
  ctx.workload = &sys.workload;
  ctx.graph = &sys.planner->graph();
  ctx.strategy = &strategy;
  ctx.planner = sys.planner.get();
  ctx.keys = &keys;
  ctx.adversary = &adversary;
  ctx.monitor = &monitor;
  ctx.config = config.runtime;
  BtrRuntime runtime(ctx);
  // Long enough that even the full-blob baseline (~0.8 s serialization per
  // 100 KB shipment on the distributor's control share) finishes.
  runtime.Start(400);
  const SimDuration period = sys.workload.period();
  runtime.ScheduleStrategyInstall(2 * period + 1, update, NodeId(0), mode);
  sim.RunToCompletion();

  const InstallRunReport& report = runtime.install_report();
  InstallMeasurement m;
  m.bytes_sent = report.patch_bytes_sent + report.full_bytes_sent;
  m.installed = report.nodes_installed;
  m.fallbacks = report.fallbacks;
  if (report.completed_at != kSimTimeNever) {
    m.install_ms = static_cast<double>(report.completed_at - report.started_at) / 1e6;
  }
  return m;
}

void RunInstall() {
  PrintHeader("E7 addendum: strategy install traffic",
              "ship only what an edit changed, and only each node's own table rows");

  // The same 14-node / f=2 / 106-mode system as the incremental-replanning
  // bench, so the install rows compose with the planner_incremental rows:
  // edit -> Rebuild (that bench) -> patch -> install (this one).
  Rng rng(42);
  RandomDagParams params;
  params.compute_nodes = 12;
  params.layers = 3;
  params.tasks_per_layer = 4;
  params.period = Milliseconds(50);

  PlannerConfig config;
  config.max_faults = 2;

  std::deque<InstallSystem> generations;
  InstallSystem& base = generations.emplace_back();
  {
    Rng scenario_rng = rng;
    Scenario s = MakeRandomScenario(&scenario_rng, params);
    base.topo = std::move(s.topology);
    base.workload = std::move(s.workload);
  }
  base.topo.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "flaplink");
  base.planner = std::make_unique<Planner>(&base.topo, &base.workload, config);
  StrategyBuilder builder(base.planner.get(), 0);
  auto base_strategy = builder.Build();
  if (!base_strategy.ok()) {
    std::printf("install bench: base build failed: %s\n",
                base_strategy.status().ToString().c_str());
    return;
  }
  const std::string base_blob =
      SaveStrategy(*base_strategy, base.planner->graph(), base.topo);

  struct Variant {
    const char* name;
    DeltaEdit edit;
  };
  const Variant variants[] = {
      // The E7 single-link-flap edit: every mode stays clean, the patch is
      // pure re-reference.
      {"link_flap", DeltaEdit::LinkRemove("flaplink")},
      // A bus re-measurement dirties every mode: the worst case for a
      // delta install (all bodies ship, but still only per-node rows).
      {"bus_remeasure", DeltaEdit::LinkLatencyChange("bus", 60'000'000, -1)},
  };

  Table table({"edit", "mode", "blob bytes", "bytes/node", "vs full blob", "install time",
               "installed", "fallbacks"});
  for (const Variant& variant : variants) {
    StrategyDelta delta;
    delta.edits.push_back(variant.edit);
    InstallSystem& next = generations.emplace_back();
    Status applied =
        ApplyDelta(base.topo, base.workload, delta, &next.topo, &next.workload);
    if (!applied.ok()) {
      std::printf("install bench %s: %s\n", variant.name, applied.ToString().c_str());
      continue;
    }
    next.planner = std::make_unique<Planner>(&next.topo, &next.workload, config);
    StrategyBuilder next_builder(next.planner.get(), 0);
    auto target = next_builder.Rebuild(*base_strategy, *base.planner, delta);
    if (!target.ok()) {
      std::printf("install bench %s: rebuild failed: %s\n", variant.name,
                  target.status().ToString().c_str());
      continue;
    }
    const std::string target_blob = SaveStrategy(*target, next.planner->graph(), next.topo);
    auto update = BuildStrategyUpdate(base_blob, target_blob);
    if (!update.ok()) {
      std::printf("install bench %s: %s\n", variant.name, update.status().ToString().c_str());
      continue;
    }
    size_t max_patch = 0;
    size_t sum_patch = 0;
    for (const std::string& slice : update->patch_slices) {
      max_patch = std::max(max_patch, slice.size());
      sum_patch += slice.size();
    }
    const size_t n = update->patch_slices.size();
    const double avg_patch = static_cast<double>(sum_patch) / static_cast<double>(n);
    auto shared = std::make_shared<const StrategyUpdate>(std::move(*update));

    const InstallMeasurement patch = SimulateInstall(
        base, *base_strategy, shared, BtrRuntime::InstallShipMode::kPatchSlices);
    const InstallMeasurement blob = SimulateInstall(
        base, *base_strategy, shared, BtrRuntime::InstallShipMode::kFullBlob);

    const double blob_bytes = static_cast<double>(target_blob.size());
    table.AddRow({std::string(variant.name), "patch slices", CellBytes(blob_bytes),
                  CellBytes(avg_patch),
                  CellDouble(100.0 * avg_patch / blob_bytes, 1) + " %",
                  CellDouble(patch.install_ms, 2) + " ms",
                  CellInt(static_cast<int64_t>(patch.installed)),
                  CellInt(static_cast<int64_t>(patch.fallbacks))});
    table.AddRow({std::string(variant.name), "full blob", CellBytes(blob_bytes),
                  CellBytes(blob_bytes), "100.0 %", CellDouble(blob.install_ms, 2) + " ms",
                  CellInt(static_cast<int64_t>(blob.installed)),
                  CellInt(static_cast<int64_t>(blob.fallbacks))});
    std::printf(
        "BENCH_JSON {\"bench\":\"strategy_install\",\"preset\":\"e7\","
        "\"variant\":\"%s\",\"nodes\":%zu,\"modes\":%zu,\"full_blob_bytes\":%zu,"
        "\"patch_bytes_per_node_avg\":%.1f,\"patch_bytes_per_node_max\":%zu,"
        "\"patch_vs_blob_ratio\":%.4f,\"patch_install_ms\":%.3f,"
        "\"full_blob_install_ms\":%.3f,\"patch_bytes_sent\":%llu,"
        "\"full_blob_bytes_sent\":%llu,\"patch_installed\":%zu,\"fallbacks\":%zu}\n",
        variant.name, n, target->mode_count(), target_blob.size(), avg_patch, max_patch,
        avg_patch / blob_bytes, patch.install_ms, blob.install_ms,
        static_cast<unsigned long long>(patch.bytes_sent),
        static_cast<unsigned long long>(blob.bytes_sent), patch.installed,
        patch.fallbacks);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(bytes/node = average install shipment per node over the simulated\n"
              " network's control class; install time = simulated time from rollout\n"
              " start to the last node verifying its new slice; patches chain to the\n"
              " installed base by fingerprint and fall back to a full slice on any\n"
              " mismatch — see README \"Strategy distribution\")\n\n");
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) {
  bool install_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--install-only") == 0) {
      install_only = true;
    }
  }
  if (!install_only) {
    btr::Run();
  }
  btr::RunInstall();
  return 0;
}
