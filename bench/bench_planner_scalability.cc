// E7 "Table 2" — offline planner scalability, full and incremental.
//
// Planning is offline, but its cost still gates how large a system BTR can
// target: the strategy has one plan per fault set up to size f. We sweep
// node count, task count, and f, and report wall-clock strategy-build time
// with 1 planner thread and with one thread per core (the StrategyBuilder
// plans each fault-set level as a parallel wave), schedule attempts
// (degradation retries), the number of physically unique plan bodies after
// structural deduplication, the dedup ratio (deduplicated storage over the
// verbatim one-plan-per-mode layout), and the strategy's per-node memory
// footprint after dedup.
//
// The incremental section measures StrategyBuilder::Rebuild against a full
// rebuild on single-edit streams (a redundant link flapping down/up; a
// staged task rolled in/out), verifying byte-identical serialization at
// every step. Emits `BENCH_JSON {...}` rows that ci/run_benches.sh folds
// into BENCH_runtime.json.

#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_delta.h"
#include "src/core/strategy_io.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E7 / Table 2: planner scalability",
              "offline cost of computing the full strategy");

  const size_t hw_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  Table table({"nodes", "workload tasks", "f", "modes", "unique plans", "dedup ratio",
               "plan time x1", "plan time xN", "attempts", "strategy size/node"});

  struct Case {
    size_t compute_nodes;
    size_t layers;
    size_t per_layer;
    uint32_t f;
  };
  const Case cases[] = {
      {4, 2, 3, 1}, {8, 2, 3, 1}, {12, 3, 4, 1}, {16, 3, 4, 1},
      {8, 2, 3, 2}, {12, 3, 4, 2}, {8, 2, 3, 3},
  };
  for (const Case& c : cases) {
    Rng rng(42);
    RandomDagParams params;
    params.compute_nodes = c.compute_nodes;
    params.layers = c.layers;
    params.tasks_per_layer = c.per_layer;
    params.period = Milliseconds(50);
    Scenario scenario = MakeRandomScenario(&rng, params);

    PlannerConfig config;
    config.max_faults = c.f;
    Planner planner(&scenario.topology, &scenario.workload, config);

    auto timed_build = [&planner](size_t threads, double* elapsed_us) {
      StrategyBuilder builder(&planner, threads);
      const auto start = std::chrono::steady_clock::now();
      auto strategy = builder.Build();
      *elapsed_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      return strategy;
    };

    double serial_us = 0.0;
    double parallel_us = 0.0;
    auto strategy = timed_build(1, &serial_us);
    // Snapshot before the second build: the planner's counters accumulate.
    const size_t attempts = planner.metrics().schedule_attempts;
    auto parallel = timed_build(hw_threads, &parallel_us);
    if (!strategy.ok() || !parallel.ok()) {
      const Status& failed = strategy.ok() ? parallel.status() : strategy.status();
      std::printf("case (%zu nodes, f=%u) failed: %s\n", c.compute_nodes, c.f,
                  failed.ToString().c_str());
      continue;
    }
    table.AddRow({CellInt(static_cast<int64_t>(scenario.topology.node_count())),
                  CellInt(static_cast<int64_t>(scenario.workload.task_count())), CellInt(c.f),
                  CellInt(static_cast<int64_t>(strategy->mode_count())),
                  CellInt(static_cast<int64_t>(strategy->unique_plan_count())),
                  CellDouble(strategy->DedupRatio(), 2), CellDuration(serial_us * 1e3),
                  CellDuration(parallel_us * 1e3), CellInt(static_cast<int64_t>(attempts)),
                  CellBytes(static_cast<double>(strategy->MemoryFootprintBytes()))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(plan time x1 = single planner thread; xN = one thread per core (N=%zu),\n"
              " waves over fault-set levels; dedup ratio = deduplicated strategy bytes over\n"
              " the verbatim per-mode layout; size/node counts shared storage once)\n\n",
              hw_threads);
}

// --- Incremental replanning: single-edit streams ------------------------

struct PlannedSystem {
  Topology topo;
  Dataflow workload{Milliseconds(10)};
  std::unique_ptr<Planner> planner;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

void RunIncremental() {
  PrintHeader("E7 addendum: incremental replanning",
              "rebuild only the fault modes a topology/workload edit can reach");

  // A system big enough that per-mode planning dominates classification:
  // 12 compute + 2 I/O nodes on a bus (plus a provably redundant
  // point-to-point link that the streams flap), f = 2 -> C(14, <=2) = 106
  // modes, ~3 dozen workload tasks.
  Rng rng(42);
  RandomDagParams params;
  params.compute_nodes = 12;
  params.layers = 3;
  params.tasks_per_layer = 4;
  params.period = Milliseconds(50);

  PlannerConfig config;
  config.max_faults = 2;

  struct Stream {
    const char* name;
    const char* description;
  };
  const Stream streams[] = {
      {"link_flap", "redundant link removed / re-added per edit"},
      {"task_add", "staged task rolled in / out per edit"},
  };
  constexpr int kEdits = 6;

  Table table({"stream", "edits", "modes", "dirty/edit", "clean/edit", "full ms/edit",
               "incr ms/edit", "speedup", "bytes equal"});

  for (const Stream& stream : streams) {
    std::deque<PlannedSystem> generations;
    PlannedSystem& base = generations.emplace_back();
    {
      Rng scenario_rng = rng;  // same scenario for both streams
      Scenario s = MakeRandomScenario(&scenario_rng, params);
      base.topo = std::move(s.topology);
      base.workload = std::move(s.workload);
    }
    // The redundant link shares the bus endpoints' adjacency and has equal
    // propagation, so no route or vulnerability score ever depends on it.
    base.topo.AddLink({NodeId(2), NodeId(3)}, 25'000'000, Microseconds(2), "flaplink");
    base.planner = std::make_unique<Planner>(&base.topo, &base.workload, config);
    StrategyBuilder builder(base.planner.get(), 0);
    auto strategy = builder.Build();
    if (!strategy.ok()) {
      std::printf("%s: base build failed: %s\n", stream.name,
                  strategy.status().ToString().c_str());
      continue;
    }

    TaskSpec staged;
    staged.name = "staged_task";
    staged.kind = TaskKind::kCompute;
    staged.wcet = Microseconds(150);
    staged.state_bytes = 2048;
    staged.criticality = Criticality::kMedium;

    double full_ms = 0.0;
    double incremental_ms = 0.0;
    size_t dirty = 0;
    size_t clean = 0;
    bool all_equal = true;
    const PlannedSystem* current = &base;
    Strategy carried = std::move(strategy).value();

    for (int edit = 0; edit < kEdits; ++edit) {
      StrategyDelta delta;
      const bool forward = edit % 2 == 0;  // remove/add, add/remove alternating
      if (std::strcmp(stream.name, "link_flap") == 0) {
        delta.edits.push_back(forward ? DeltaEdit::LinkRemove("flaplink")
                                      : DeltaEdit::LinkAdd("flaplink",
                                                           {NodeId(2), NodeId(3)},
                                                           25'000'000, Microseconds(2)));
      } else {
        delta.edits.push_back(forward ? DeltaEdit::TaskAdd(staged)
                                      : DeltaEdit::TaskRemove(staged.name));
      }

      PlannedSystem& next = generations.emplace_back();
      Status applied =
          ApplyDelta(current->topo, current->workload, delta, &next.topo, &next.workload);
      if (!applied.ok()) {
        std::printf("%s edit %d: %s\n", stream.name, edit, applied.ToString().c_str());
        all_equal = false;
        break;
      }
      next.planner = std::make_unique<Planner>(&next.topo, &next.workload, config);
      StrategyBuilder next_builder(next.planner.get(), 0);

      auto start = std::chrono::steady_clock::now();
      auto full = next_builder.Build();
      full_ms += MsSince(start);

      start = std::chrono::steady_clock::now();
      auto incremental = next_builder.Rebuild(carried, *current->planner, delta);
      incremental_ms += MsSince(start);

      if (!full.ok() || !incremental.ok()) {
        std::printf("%s edit %d failed: %s\n", stream.name, edit,
                    (full.ok() ? incremental.status() : full.status()).ToString().c_str());
        all_equal = false;
        break;
      }
      const PlannerMetrics metrics = next.planner->metrics();
      dirty += metrics.rebuild_dirty_modes;
      clean += metrics.rebuild_clean_modes;
      all_equal =
          all_equal && SaveStrategy(*full, next.planner->graph(), next.topo) ==
                           SaveStrategy(*incremental, next.planner->graph(), next.topo);
      carried = std::move(incremental).value();
      current = &next;
    }

    const size_t modes = carried.mode_count();
    const double speedup = incremental_ms > 0.0 ? full_ms / incremental_ms : 0.0;
    table.AddRow({std::string(stream.name), CellInt(kEdits),
                  CellInt(static_cast<int64_t>(modes)),
                  CellDouble(static_cast<double>(dirty) / kEdits, 1),
                  CellDouble(static_cast<double>(clean) / kEdits, 1),
                  CellDouble(full_ms / kEdits, 2), CellDouble(incremental_ms / kEdits, 2),
                  CellDouble(speedup, 1), std::string(all_equal ? "yes" : "NO")});
    std::printf("BENCH_JSON {\"bench\":\"planner_incremental\",\"preset\":\"e7\","
                "\"variant\":\"%s\",\"edits\":%d,\"modes\":%zu,"
                "\"dirty_modes_per_edit\":%.1f,\"clean_modes_per_edit\":%.1f,"
                "\"full_ms_per_edit\":%.3f,\"incremental_ms_per_edit\":%.3f,"
                "\"speedup\":%.1f,\"serialization_equal\":%s}\n",
                stream.name, kEdits, modes, static_cast<double>(dirty) / kEdits,
                static_cast<double>(clean) / kEdits, full_ms / kEdits,
                incremental_ms / kEdits, speedup, all_equal ? "true" : "false");
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(each edit is applied as a StrategyDelta; full = Build() of the edited\n"
              " system, incr = Rebuild() from the previous strategy; \"bytes equal\"\n"
              " checks the two strategies serialize byte-identically via strategy_io;\n"
              " the link-flap stream leaves every mode clean, the staged task-add\n"
              " migrates every body into the grown universe without replanning)\n\n");
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) {
  bool incremental_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--incremental-only") == 0) {
      incremental_only = true;
    }
  }
  if (!incremental_only) {
    btr::Run();
  }
  btr::RunIncremental();
  return 0;
}
