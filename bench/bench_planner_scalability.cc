// E7 "Table 2" — offline planner scalability.
//
// Planning is offline, but its cost still gates how large a system BTR can
// target: the strategy has one plan per fault set up to size f. We sweep
// node count, task count, and f, and report wall-clock strategy-build time
// with 1 planner thread and with one thread per core (the StrategyBuilder
// plans each fault-set level as a parallel wave), schedule attempts
// (degradation retries), the number of physically unique plan bodies after
// structural deduplication, the dedup ratio (deduplicated storage over the
// verbatim one-plan-per-mode layout), and the strategy's per-node memory
// footprint after dedup.

#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/strategy_builder.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E7 / Table 2: planner scalability",
              "offline cost of computing the full strategy");

  const size_t hw_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  Table table({"nodes", "workload tasks", "f", "modes", "unique plans", "dedup ratio",
               "plan time x1", "plan time xN", "attempts", "strategy size/node"});

  struct Case {
    size_t compute_nodes;
    size_t layers;
    size_t per_layer;
    uint32_t f;
  };
  const Case cases[] = {
      {4, 2, 3, 1}, {8, 2, 3, 1}, {12, 3, 4, 1}, {16, 3, 4, 1},
      {8, 2, 3, 2}, {12, 3, 4, 2}, {8, 2, 3, 3},
  };
  for (const Case& c : cases) {
    Rng rng(42);
    RandomDagParams params;
    params.compute_nodes = c.compute_nodes;
    params.layers = c.layers;
    params.tasks_per_layer = c.per_layer;
    params.period = Milliseconds(50);
    Scenario scenario = MakeRandomScenario(&rng, params);

    PlannerConfig config;
    config.max_faults = c.f;
    Planner planner(&scenario.topology, &scenario.workload, config);

    auto timed_build = [&planner](size_t threads, double* elapsed_us) {
      StrategyBuilder builder(&planner, threads);
      const auto start = std::chrono::steady_clock::now();
      auto strategy = builder.Build();
      *elapsed_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      return strategy;
    };

    double serial_us = 0.0;
    double parallel_us = 0.0;
    auto strategy = timed_build(1, &serial_us);
    // Snapshot before the second build: the planner's counters accumulate.
    const size_t attempts = planner.metrics().schedule_attempts;
    auto parallel = timed_build(hw_threads, &parallel_us);
    if (!strategy.ok() || !parallel.ok()) {
      const Status& failed = strategy.ok() ? parallel.status() : strategy.status();
      std::printf("case (%zu nodes, f=%u) failed: %s\n", c.compute_nodes, c.f,
                  failed.ToString().c_str());
      continue;
    }
    table.AddRow({CellInt(static_cast<int64_t>(scenario.topology.node_count())),
                  CellInt(static_cast<int64_t>(scenario.workload.task_count())), CellInt(c.f),
                  CellInt(static_cast<int64_t>(strategy->mode_count())),
                  CellInt(static_cast<int64_t>(strategy->unique_plan_count())),
                  CellDouble(strategy->DedupRatio(), 2), CellDuration(serial_us * 1e3),
                  CellDuration(parallel_us * 1e3), CellInt(static_cast<int64_t>(attempts)),
                  CellBytes(static_cast<double>(strategy->MemoryFootprintBytes()))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(plan time x1 = single planner thread; xN = one thread per core (N=%zu),\n"
              " waves over fault-set levels; dedup ratio = deduplicated strategy bytes over\n"
              " the verbatim per-mode layout; size/node counts shared storage once)\n\n",
              hw_threads);
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
