// E7 "Table 2" — offline planner scalability.
//
// Planning is offline, but its cost still gates how large a system BTR can
// target: the strategy has one plan per fault set up to size f. We sweep
// node count, task count, and f, and report wall-clock planning time, mode
// count, schedule attempts (degradation retries), and the strategy's
// per-node memory footprint.

#include <chrono>

#include "bench/bench_util.h"

namespace btr {
namespace {

void Run() {
  PrintHeader("E7 / Table 2: planner scalability",
              "offline cost of computing the full strategy");

  Table table({"nodes", "workload tasks", "f", "modes", "plan time", "attempts",
               "strategy size/node"});

  struct Case {
    size_t compute_nodes;
    size_t layers;
    size_t per_layer;
    uint32_t f;
  };
  const Case cases[] = {
      {4, 2, 3, 1}, {8, 2, 3, 1}, {12, 3, 4, 1}, {16, 3, 4, 1},
      {8, 2, 3, 2}, {12, 3, 4, 2}, {8, 2, 3, 3},
  };
  for (const Case& c : cases) {
    Rng rng(42);
    RandomDagParams params;
    params.compute_nodes = c.compute_nodes;
    params.layers = c.layers;
    params.tasks_per_layer = c.per_layer;
    params.period = Milliseconds(50);
    Scenario scenario = MakeRandomScenario(&rng, params);

    PlannerConfig config;
    config.max_faults = c.f;
    Planner planner(&scenario.topology, &scenario.workload, config);
    const auto start = std::chrono::steady_clock::now();
    auto strategy = planner.BuildStrategy();
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (!strategy.ok()) {
      std::printf("case (%zu nodes, f=%u) failed: %s\n", c.compute_nodes, c.f,
                  strategy.status().ToString().c_str());
      continue;
    }
    table.AddRow({CellInt(static_cast<int64_t>(scenario.topology.node_count())),
                  CellInt(static_cast<int64_t>(scenario.workload.task_count())), CellInt(c.f),
                  CellInt(static_cast<int64_t>(strategy->mode_count())),
                  CellDuration(static_cast<double>(elapsed) * 1e3),
                  CellInt(static_cast<int64_t>(planner.metrics().schedule_attempts)),
                  CellBytes(static_cast<double>(strategy->MemoryFootprintBytes()))});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
