// Scenario-family sweep: coverage vs churn rate on the mobile convoy.
//
// The question this bench answers: how gracefully does an f=1 strategy
// degrade as vehicle churn outruns it? Each row subjects the convoy-mobile
// scenario (lossy v2v radio ring) to transient vehicle crashes at a fixed
// rate. Convictions never retract, so every healed vehicle still counts
// against the fault bound: past one event the observed fault set exceeds
// every planned mode and the runtime falls back to the nearest covered one
// (see NodeRuntime::Convict). The report's coverage metric — fraction of
// node-time spent on an exactly-covered mode — is the y-axis; the row also
// records the beyond-f lookup/fallback counters and what the workload kept
// delivering while degraded.
//
// Emits `BENCH_JSON {...}` rows that ci/run_benches.sh --scenarios folds
// into BENCH_runtime.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace btr {
namespace {

struct ChurnRow {
  size_t events = 0;
  double coverage = 1.0;
  uint64_t beyond_f = 0;
  uint64_t fallbacks = 0;
  uint64_t correct = 0;
  uint64_t incorrect = 0;
  uint64_t fingerprint = 0;
};

// `events` transient vehicle crashes (400 ms each) spread evenly over a
// 2-second run, cycling through the compute nodes. events_per_sec =
// events / 2.
StatusOr<ChurnRow> RunChurn(size_t vehicles, size_t events, uint64_t seed) {
  RadioParams radio;
  // Gentle enough that the path-blame rule never frames an innocent relay:
  // the sweep's only conviction source must be the injected churn, or the
  // coverage axis measures the framing cascade instead of the churn rate.
  radio.loss = 0.001;
  // f=2 covers one whole vehicle: a crashed computer drags its co-hosted
  // I/O node into the blame set (the vehicle's sources stop arriving), so
  // one churn event costs two convictions. One vehicle of churn is then
  // exactly covered and the beyond-f knee tracks the *second* event —
  // which is what makes coverage respond to the rate.
  BtrConfig config = DefaultBtrConfig(2, Milliseconds(800), seed);
  // Paced gossip rollouts: an eager unicast blast on the 5 Mbps v2v ring
  // congests heartbeats and convicts innocents (see convoy_churn.btrx).
  config.runtime.dissem.mode = DissemMode::kGossip;
  // A real crash floods enough coincident path declarations that the
  // default threshold of 2 also frames a relay next to the victim —
  // which would push even a single churn event beyond f and flatten the
  // sweep. Demanding one more distinct declarer keeps convictions pinned
  // to the actual churn victims, so coverage responds to the churn rate.
  config.runtime.blame_threshold = 3;
  BtrSystem system(MakeConvoyMobileScenario(vehicles, &radio), config);
  if (auto planned = system.Plan(); !planned.ok()) {
    return planned;
  }
  const uint64_t periods = 200;  // 2 s at the 10 ms workload period
  const SimDuration horizon = Milliseconds(10) * periods;
  for (size_t i = 0; i < events; ++i) {
    FaultInjection churn;
    // Compute node of vehicle (i mod vehicles): odd ids host the movable
    // controllers, so a crash forces a real mode switch.
    churn.node = NodeId(static_cast<uint32_t>(2 * (i % vehicles) + 1));
    churn.manifest_at = Milliseconds(300) + (horizon - Milliseconds(800)) * i / events;
    churn.until = churn.manifest_at + Milliseconds(400);
    churn.behavior = FaultBehavior::kCrash;
    system.AddFault(churn);
  }
  auto report = system.Run(periods);
  if (!report.ok()) {
    return report.status();
  }
  ChurnRow row;
  row.events = events;
  row.coverage = report->degradation.coverage;
  row.beyond_f = report->degradation.beyond_f_lookups;
  row.fallbacks = report->degradation.fallback_switches;
  row.correct = report->correctness.correct_instances;
  row.incorrect = report->correctness.incorrect_missing + report->correctness.incorrect_value +
                  report->correctness.incorrect_late;
  row.fingerprint = FingerprintRunReport(*report);
  return row;
}

int Main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--preset=", 0) == 0) {
      preset = arg.substr(9);
    }
  }
  const size_t vehicles = preset == "smoke" ? 4 : 8;
  std::vector<size_t> event_counts = {0, 1, 2, 4};
  if (preset != "smoke") {
    event_counts.push_back(8);
  }

  PrintHeader("Scenario family: coverage vs churn rate on the mobile convoy",
              "graceful degradation: churn beyond f costs coverage, not the run");

  Table table({"churn (events/s)", "coverage", "beyond-f lookups", "fallback switches",
               "sinks correct", "sinks incorrect"});
  for (size_t events : event_counts) {
    auto row = RunChurn(vehicles, events, 1);
    if (!row.ok()) {
      std::printf("scenario churn bench convoy%zu/events%zu: %s\n", vehicles, events,
                  row.status().ToString().c_str());
      return 1;
    }
    const double rate = static_cast<double>(events) / 2.0;
    table.AddRow({CellDouble(rate, 1), CellDouble(row->coverage, 4),
                  CellInt(static_cast<int64_t>(row->beyond_f)),
                  CellInt(static_cast<int64_t>(row->fallbacks)),
                  CellInt(static_cast<int64_t>(row->correct)),
                  CellInt(static_cast<int64_t>(row->incorrect))});
    std::printf(
        "BENCH_JSON {\"bench\":\"scenario_churn\",\"preset\":\"%s\","
        "\"variant\":\"convoy-mobile%zu/churn%.1f\",\"vehicles\":%zu,"
        "\"churn_events_per_sec\":%.1f,\"coverage\":%.6f,"
        "\"beyond_f_lookups\":%llu,\"fallback_switches\":%llu,"
        "\"sinks_correct\":%llu,\"sinks_incorrect\":%llu,"
        "\"fingerprint\":\"%016llx\"}\n",
        preset.c_str(), vehicles, rate, vehicles, rate, row->coverage,
        static_cast<unsigned long long>(row->beyond_f),
        static_cast<unsigned long long>(row->fallbacks),
        static_cast<unsigned long long>(row->correct),
        static_cast<unsigned long long>(row->incorrect),
        static_cast<unsigned long long>(row->fingerprint));
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}

}  // namespace
}  // namespace btr

int main(int argc, char** argv) { return btr::Main(argc, argv); }
