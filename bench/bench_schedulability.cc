// E12 "Figure 9" — placement-heuristic ablation: schedulable fraction vs load.
//
// The planner's knobs (communication locality, replica dispersion via the
// load balance weight) decide whether a mode fits in the period at all. We
// sweep workload utilization by scaling task WCETs and report the fraction
// of random workloads whose *root* mode is fully schedulable (no shedding),
// for the full heuristic vs locality disabled.

#include "bench/bench_util.h"

namespace btr {
namespace {

double FullyServedFraction(double wcet_scale, bool locality, int trials) {
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    RandomDagParams params;
    params.period = Milliseconds(20);
    params.compute_nodes = 6;
    params.min_wcet = static_cast<SimDuration>(wcet_scale * Microseconds(100));
    params.max_wcet = static_cast<SimDuration>(wcet_scale * Microseconds(600));
    // Keep communication light so the sweep isolates CPU schedulability;
    // the planner's queueing bounds are deliberately conservative and would
    // otherwise dominate.
    params.min_msg_bytes = 32;
    params.max_msg_bytes = 256;
    params.bus_bandwidth_bps = 100'000'000;
    Scenario scenario = MakeRandomScenario(&rng, params);

    PlannerConfig config;
    config.max_faults = 1;
    config.locality_heuristic = locality;
    Planner planner(&scenario.topology, &scenario.workload, config);
    auto plan = planner.PlanForMode(FaultSet(), {});
    if (plan.ok() && plan->shed_sinks().empty()) {
      ++ok;
    }
  }
  return static_cast<double>(ok) / trials;
}

void Run() {
  PrintHeader("E12 / Figure 9: fully-served fraction vs workload scale",
              "ablation: communication-locality heuristic on vs off");

  constexpr int kTrials = 20;
  Table table({"wcet scale", "approx utilization", "locality on", "locality off"});
  for (double scale : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0}) {
    // Rough utilization estimate: mean wcet * (tasks * (f+1)) / (nodes * period).
    const double mean_wcet = scale * 350e3;  // ns
    const double util = mean_wcet * (12.0 * 2.0 + 6.0) / (8.0 * 20e6);
    table.AddRow({CellDouble(scale, 1), CellPercent(util),
                  CellPercent(FullyServedFraction(scale, true, kTrials)),
                  CellPercent(FullyServedFraction(scale, false, kTrials))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(%d random layered-DAG workloads per cell; root mode, f=1)\n\n", kTrials);
}

}  // namespace
}  // namespace btr

int main() {
  btr::Run();
  return 0;
}
