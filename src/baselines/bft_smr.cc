#include "src/baselines/bft_smr.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "src/core/golden.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace btr {
namespace {

enum class BftMsgType : int {
  kInput = 0,
  kPrePrepare,
  kPrepare,
  kCommit,
  kResult,
  kViewChange,
  kWake,
};

struct BftMsg : Payload {
  BftMsgType type = BftMsgType::kInput;
  uint64_t period = 0;
  uint64_t view = 0;
  uint64_t digest = 0;  // combined digest of all sink outputs
  std::vector<std::pair<uint32_t, uint64_t>> sink_digests;  // (sink task, digest)
  NodeId from;
  TaskId source;  // kInput: which source task
};

uint32_t MsgBytes(const BftMsg& msg) {
  switch (msg.type) {
    case BftMsgType::kInput:
      return 64;
    case BftMsgType::kPrePrepare:
    case BftMsgType::kResult:
      return 64 + static_cast<uint32_t>(msg.sink_digests.size()) * 12;
    case BftMsgType::kPrepare:
    case BftMsgType::kCommit:
    case BftMsgType::kViewChange:
    case BftMsgType::kWake:
      return 48;
  }
  return 48;
}

uint64_t CombineSinkDigests(const std::vector<std::pair<uint32_t, uint64_t>>& digests) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (const auto& [task, digest] : digests) {
    acc = HashCombine(acc, HashCombine(task, digest));
  }
  return acc;
}

constexpr uint64_t kCorruptionMask = 0xBAD0BAD0BAD0BAD0ULL;

// The whole per-run protocol state; torn down when Run returns.
class BftRun {
 public:
  BftRun(const Scenario* scenario, const BftConfig& config, const std::vector<NodeId>& replicas,
         const AdversarySpec* adversary, uint64_t periods)
      : scenario_(scenario),
        config_(config),
        replicas_(replicas),
        adversary_(adversary),
        periods_(periods),
        sim_(config.seed),
        network_(&sim_, &scenario->topology, config.network),
        oracle_(&scenario->workload) {
    const size_t n = scenario_->topology.node_count();
    for (size_t i = 0; i < n; ++i) {
      const NodeId id(static_cast<uint32_t>(i));
      network_.SetReceiver(id, [this, id](const Packet& packet) { OnPacket(id, packet); });
    }
    exec_cost_ = 0;
    for (const TaskSpec& t : scenario_->workload.tasks()) {
      if (t.kind == TaskKind::kCompute) {
        exec_cost_ += t.wcet;
      }
    }
    active_count_ = config_.mode == BftMode::kPbft ? static_cast<uint32_t>(replicas_.size())
                                                   : config_.f + 1;
    per_replica_.resize(replicas_.size());
    // ZZ standbys start asleep; they neither receive inputs nor execute
    // until a sink wakes them.
    for (size_t r = active_count_; r < per_replica_.size(); ++r) {
      per_replica_[r].awake = false;
    }
    sinks_ = scenario_->workload.SinkIds();
  }

  BftReport Execute() {
    const SimDuration period_len = scenario_->workload.period();
    for (uint64_t p = 0; p < periods_; ++p) {
      sim_.At(static_cast<SimTime>(p) * period_len, [this, p]() { BeginPeriod(p); });
    }
    for (const FaultInjection& inj : adversary_->injections()) {
      if (inj.behavior == FaultBehavior::kCrash) {
        sim_.At(inj.manifest_at, [this, inj]() { network_.SetNodeDown(inj.node, true); });
      }
    }
    sim_.RunToCompletion();
    return BuildReport();
  }

 private:
  struct PeriodState {
    std::set<uint32_t> inputs_seen;      // source tasks received
    bool executed = false;
    std::vector<std::pair<uint32_t, uint64_t>> my_digests;
    uint64_t my_digest = 0;
    bool preprepare_seen = false;
    uint64_t preprepare_digest = 0;
    bool prepared = false;
    bool committed = false;
    bool result_sent = false;
    std::set<uint32_t> prepare_from;
    std::set<uint32_t> commit_from;
    std::set<uint32_t> view_change_from;
    bool view_changed = false;
  };
  struct ReplicaState {
    SimTime busy_until = 0;
    bool awake = true;  // ZZ standbys start asleep
    std::map<uint64_t, PeriodState> periods;
  };
  struct SinkInstance {
    std::map<uint64_t, std::set<uint32_t>> votes;  // digest -> replica indices
    bool actuated = false;
    uint64_t digest = 0;
    SimTime at = 0;
    bool woke = false;
  };

  int ReplicaIndexAt(NodeId node) const {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i] == node) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  const FaultInjection* FaultOn(NodeId node) const {
    return adversary_->ActiveOn(node, sim_.Now());
  }

  bool Silent(NodeId node) const {
    const FaultInjection* f = FaultOn(node);
    return f != nullptr &&
           (f->behavior == FaultBehavior::kCrash || f->behavior == FaultBehavior::kOmission);
  }

  bool Corrupting(NodeId node) const {
    const FaultInjection* f = FaultOn(node);
    return f != nullptr && (f->behavior == FaultBehavior::kValueCorruption ||
                            f->behavior == FaultBehavior::kEquivocate ||
                            f->behavior == FaultBehavior::kDelay ||
                            f->behavior == FaultBehavior::kSelectiveOmission ||
                            f->behavior == FaultBehavior::kEvidenceFlood);
  }

  void Multicast(NodeId from, const std::shared_ptr<const BftMsg>& msg, bool to_sinks) {
    if (Silent(from)) {
      return;
    }
    const uint32_t bytes = MsgBytes(*msg);
    if (to_sinks) {
      std::set<NodeId> sink_nodes;
      for (TaskId s : sinks_) {
        sink_nodes.insert(scenario_->workload.task(s).pinned_node);
      }
      for (NodeId n : sink_nodes) {
        network_.Send(from, n, bytes, TrafficClass::kForeground, msg);
      }
      return;
    }
    for (NodeId r : replicas_) {
      if (r != from) {
        network_.Send(from, r, bytes, TrafficClass::kForeground, msg);
      }
    }
  }

  void BeginPeriod(uint64_t p) {
    const SimDuration period_len = scenario_->workload.period();
    // Sources disseminate inputs to every replica.
    for (TaskId src : scenario_->workload.SourceIds()) {
      const NodeId node = scenario_->workload.task(src).pinned_node;
      if (Silent(node)) {
        continue;
      }
      auto msg = std::make_shared<BftMsg>();
      msg->type = BftMsgType::kInput;
      msg->period = p;
      msg->from = node;
      msg->source = src;
      for (size_t r = 0; r < replicas_.size(); ++r) {
        if (config_.mode == BftMode::kZz && r >= active_count_ && !per_replica_[r].awake) {
          continue;  // sleeping standby
        }
        network_.Send(node, replicas_[r], MsgBytes(*msg), TrafficClass::kForeground, msg);
      }
    }
    // Timeout for this period.
    const SimTime timeout =
        static_cast<SimTime>(p) * period_len +
        static_cast<SimTime>(config_.timeout_fraction * static_cast<double>(period_len));
    sim_.At(timeout, [this, p]() { OnTimeout(p); });
  }

  void OnTimeout(uint64_t p) {
    if (config_.mode == BftMode::kPbft) {
      // Replicas that have not committed ask for a view change.
      for (size_t r = 0; r < replicas_.size(); ++r) {
        PeriodState& ps = per_replica_[r].periods[p];
        if (ps.committed || Silent(replicas_[r])) {
          continue;
        }
        auto msg = std::make_shared<BftMsg>();
        msg->type = BftMsgType::kViewChange;
        msg->period = p;
        msg->view = view_ + 1;
        msg->from = replicas_[r];
        Multicast(replicas_[r], msg, /*to_sinks=*/false);
        OnViewChangeVote(static_cast<uint32_t>(r), p, view_ + 1);  // own vote
      }
    } else {
      // ZZ: sinks that have not actuated wake the standbys.
      for (TaskId s : sinks_) {
        SinkInstance& inst = sink_state_[std::make_pair(s.value(), p)];
        if (inst.actuated || inst.woke) {
          continue;
        }
        inst.woke = true;
        ++report_.wakeups;
        const NodeId sink_node = scenario_->workload.task(s).pinned_node;
        for (size_t r = active_count_; r < replicas_.size(); ++r) {
          auto msg = std::make_shared<BftMsg>();
          msg->type = BftMsgType::kWake;
          msg->period = p;
          msg->from = sink_node;
          network_.Send(sink_node, replicas_[r], MsgBytes(*msg), TrafficClass::kForeground, msg);
        }
      }
    }
  }

  void OnPacket(NodeId at, const Packet& packet) {
    auto msg = std::dynamic_pointer_cast<const BftMsg>(packet.payload);
    if (msg == nullptr) {
      return;
    }
    const int replica_index = ReplicaIndexAt(at);
    switch (msg->type) {
      case BftMsgType::kInput:
        if (replica_index >= 0) {
          OnInput(static_cast<uint32_t>(replica_index), *msg);
        }
        break;
      case BftMsgType::kPrePrepare:
        if (replica_index >= 0) {
          OnPrePrepare(static_cast<uint32_t>(replica_index), *msg);
        }
        break;
      case BftMsgType::kPrepare:
        if (replica_index >= 0) {
          OnPrepare(static_cast<uint32_t>(replica_index), *msg);
        }
        break;
      case BftMsgType::kCommit:
        if (replica_index >= 0) {
          OnCommit(static_cast<uint32_t>(replica_index), *msg);
        }
        break;
      case BftMsgType::kViewChange:
        if (replica_index >= 0) {
          OnViewChangeVote(static_cast<uint32_t>(replica_index), msg->period, msg->view);
        }
        break;
      case BftMsgType::kResult:
        OnResult(*msg);
        break;
      case BftMsgType::kWake:
        if (replica_index >= 0) {
          OnWake(static_cast<uint32_t>(replica_index), msg->period);
        }
        break;
    }
  }

  void OnInput(uint32_t r, const BftMsg& msg) {
    ReplicaState& rs = per_replica_[r];
    if (config_.mode == BftMode::kZz && r >= active_count_ && !rs.awake) {
      return;
    }
    PeriodState& ps = rs.periods[msg.period];
    ps.inputs_seen.insert(msg.source.value());
    if (ps.executed ||
        ps.inputs_seen.size() < scenario_->workload.SourceIds().size()) {
      return;
    }
    ps.executed = true;
    // Serialize executions on the replica's CPU.
    const SimTime start = std::max(sim_.Now(), rs.busy_until);
    rs.busy_until = start + exec_cost_;
    report_.cpu_per_period += static_cast<double>(exec_cost_);
    sim_.At(rs.busy_until, [this, r, p = msg.period]() { OnExecuted(r, p); });
  }

  void OnExecuted(uint32_t r, uint64_t p) {
    ReplicaState& rs = per_replica_[r];
    PeriodState& ps = rs.periods[p];
    const NodeId node = replicas_[r];
    ps.my_digests.clear();
    for (TaskId s : sinks_) {
      uint64_t digest = oracle_.Golden(s, p);
      if (Corrupting(node)) {
        digest ^= kCorruptionMask;
      }
      ps.my_digests.emplace_back(s.value(), digest);
    }
    ps.my_digest = CombineSinkDigests(ps.my_digests);

    if (config_.mode == BftMode::kZz) {
      // Results go straight to the sinks.
      auto msg = std::make_shared<BftMsg>();
      msg->type = BftMsgType::kResult;
      msg->period = p;
      msg->from = node;
      msg->sink_digests = ps.my_digests;
      msg->digest = ps.my_digest;
      Multicast(node, msg, /*to_sinks=*/true);
      return;
    }
    // PBFT: the primary proposes.
    MaybePropose(r, p);
    MaybePrepare(r, p);
  }

  void MaybePropose(uint32_t r, uint64_t p) {
    if (r != view_ % replicas_.size()) {
      return;
    }
    ReplicaState& rs = per_replica_[r];
    PeriodState& ps = rs.periods[p];
    if (!ps.executed || rs.busy_until > sim_.Now()) {
      return;
    }
    auto msg = std::make_shared<BftMsg>();
    msg->type = BftMsgType::kPrePrepare;
    msg->period = p;
    msg->view = view_;
    msg->from = replicas_[r];
    msg->sink_digests = ps.my_digests;
    msg->digest = ps.my_digest;
    Multicast(replicas_[r], msg, /*to_sinks=*/false);
    // Primary's own pre-prepare.
    ps.preprepare_seen = true;
    ps.preprepare_digest = ps.my_digest;
    MaybePrepare(r, p);
  }

  void OnPrePrepare(uint32_t r, const BftMsg& msg) {
    PeriodState& ps = per_replica_[r].periods[msg.period];
    if (ps.preprepare_seen) {
      return;
    }
    ps.preprepare_seen = true;
    ps.preprepare_digest = msg.digest;
    MaybePrepare(r, msg.period);
  }

  void MaybePrepare(uint32_t r, uint64_t p) {
    PeriodState& ps = per_replica_[r].periods[p];
    if (!ps.executed || !ps.preprepare_seen || ps.prepared ||
        per_replica_[r].busy_until > sim_.Now()) {
      return;
    }
    if (ps.preprepare_digest != ps.my_digest) {
      return;  // disagree with the primary; the timeout will handle it
    }
    ps.prepared = true;
    auto msg = std::make_shared<BftMsg>();
    msg->type = BftMsgType::kPrepare;
    msg->period = p;
    msg->from = replicas_[r];
    msg->digest = ps.my_digest;
    Multicast(replicas_[r], msg, /*to_sinks=*/false);
    ps.prepare_from.insert(r);
    MaybeCommit(r, p);
  }

  void OnPrepare(uint32_t r, const BftMsg& msg) {
    PeriodState& ps = per_replica_[r].periods[msg.period];
    const int from = ReplicaIndexAt(msg.from);
    if (from >= 0 && msg.digest == ps.my_digest) {
      ps.prepare_from.insert(static_cast<uint32_t>(from));
    }
    MaybeCommit(r, msg.period);
  }

  void MaybeCommit(uint32_t r, uint64_t p) {
    PeriodState& ps = per_replica_[r].periods[p];
    const size_t quorum = 2 * config_.f + 1;
    if (!ps.prepared || ps.committed || ps.prepare_from.size() < quorum) {
      return;
    }
    ps.committed = true;
    auto msg = std::make_shared<BftMsg>();
    msg->type = BftMsgType::kCommit;
    msg->period = p;
    msg->from = replicas_[r];
    msg->digest = ps.my_digest;
    Multicast(replicas_[r], msg, /*to_sinks=*/false);
    ps.commit_from.insert(r);
    MaybeRespond(r, p);
  }

  void OnCommit(uint32_t r, const BftMsg& msg) {
    PeriodState& ps = per_replica_[r].periods[msg.period];
    const int from = ReplicaIndexAt(msg.from);
    if (from >= 0 && msg.digest == ps.my_digest) {
      ps.commit_from.insert(static_cast<uint32_t>(from));
    }
    MaybeRespond(r, msg.period);
  }

  void MaybeRespond(uint32_t r, uint64_t p) {
    PeriodState& ps = per_replica_[r].periods[p];
    const size_t quorum = 2 * config_.f + 1;
    if (!ps.committed || ps.result_sent || ps.commit_from.size() < quorum) {
      return;
    }
    ps.result_sent = true;
    auto msg = std::make_shared<BftMsg>();
    msg->type = BftMsgType::kResult;
    msg->period = p;
    msg->from = replicas_[r];
    msg->sink_digests = ps.my_digests;
    msg->digest = ps.my_digest;
    Multicast(replicas_[r], msg, /*to_sinks=*/true);
  }

  void OnViewChangeVote(uint32_t r, uint64_t p, uint64_t proposed_view) {
    if (proposed_view <= view_) {
      return;
    }
    PeriodState& ps = per_replica_[r].periods[p];
    ps.view_change_from.insert(r);
    // Global (simplified) view change: 2f+1 distinct complainers anywhere.
    std::set<uint32_t> complainers;
    for (size_t i = 0; i < per_replica_.size(); ++i) {
      auto it = per_replica_[i].periods.find(p);
      if (it != per_replica_[i].periods.end()) {
        complainers.insert(it->second.view_change_from.begin(),
                           it->second.view_change_from.end());
      }
    }
    if (complainers.size() >= 2 * config_.f + 1 && !view_changed_for_.count(p)) {
      view_changed_for_.insert(p);
      view_ = proposed_view;
      ++report_.view_changes;
      // The new primary re-proposes this period.
      const uint32_t new_primary = static_cast<uint32_t>(view_ % replicas_.size());
      sim_.After(0, [this, new_primary, p]() { MaybePropose(new_primary, p); });
    }
  }

  void OnWake(uint32_t r, uint64_t p) {
    ReplicaState& rs = per_replica_[r];
    if (rs.awake) {
      return;
    }
    sim_.After(config_.wake_delay, [this, r, p]() {
      per_replica_[r].awake = true;
      // Ask sources to resend by simulating immediate input availability:
      // standbys read the inputs from their log (modeled as instant) and
      // execute the missed period.
      ReplicaState& rs2 = per_replica_[r];
      PeriodState& ps = rs2.periods[p];
      if (ps.executed) {
        return;
      }
      ps.executed = true;
      const SimTime start = std::max(sim_.Now(), rs2.busy_until);
      rs2.busy_until = start + exec_cost_;
      report_.cpu_per_period += static_cast<double>(exec_cost_);
      sim_.At(rs2.busy_until, [this, r, p]() { OnExecuted(r, p); });
    });
  }

  void OnResult(const BftMsg& msg) {
    const int from = ReplicaIndexAt(msg.from);
    if (from < 0) {
      return;
    }
    for (const auto& [task_value, digest] : msg.sink_digests) {
      SinkInstance& inst = sink_state_[std::make_pair(task_value, msg.period)];
      if (inst.actuated) {
        continue;
      }
      auto& votes = inst.votes[digest];
      votes.insert(static_cast<uint32_t>(from));
      if (votes.size() >= config_.f + 1) {
        inst.actuated = true;
        inst.digest = digest;
        inst.at = sim_.Now();
      }
    }
  }

  BftReport BuildReport() {
    const SimDuration period_len = scenario_->workload.period();
    report_.replicas_total = static_cast<uint32_t>(replicas_.size());
    report_.replicas_active = active_count_;
    report_.bytes_per_period =
        static_cast<double>(network_.stats().total_link_bytes) / static_cast<double>(periods_);
    report_.cpu_per_period /= static_cast<double>(periods_);

    SimTime first_fault = kSimTimeNever;
    for (const FaultInjection& inj : adversary_->injections()) {
      first_fault = std::min(first_fault, inj.manifest_at);
    }

    uint64_t disruption_run = 0;
    for (uint64_t p = 0; p < periods_; ++p) {
      bool period_bad = false;
      for (TaskId s : sinks_) {
        const TaskSpec& spec = scenario_->workload.task(s);
        const SimTime deadline = static_cast<SimTime>(p) * period_len + spec.relative_deadline;
        auto it = sink_state_.find(std::make_pair(s.value(), p));
        if (it == sink_state_.end() || !it->second.actuated) {
          ++report_.missing_outputs;
          period_bad = true;
          continue;
        }
        const SinkInstance& inst = it->second;
        if (inst.digest != oracle_.Golden(s, p)) {
          ++report_.wrong_outputs;
          period_bad = true;
        } else if (inst.at > deadline) {
          ++report_.late_outputs;
          period_bad = true;
          report_.sink_latency.Add(
              static_cast<double>(inst.at - static_cast<SimTime>(p) * period_len));
        } else {
          ++report_.correct_outputs;
          report_.sink_latency.Add(
              static_cast<double>(inst.at - static_cast<SimTime>(p) * period_len));
        }
      }
      if (first_fault != kSimTimeNever &&
          static_cast<SimTime>(p) * period_len >= first_fault) {
        disruption_run = period_bad ? disruption_run + 1 : 0;
        report_.max_disruption =
            std::max(report_.max_disruption,
                     static_cast<SimDuration>(disruption_run) * period_len);
      }
    }
    return report_;
  }

  const Scenario* scenario_;
  BftConfig config_;
  std::vector<NodeId> replicas_;
  const AdversarySpec* adversary_;
  uint64_t periods_;

  Simulator sim_;
  Network network_;
  GoldenOracle oracle_;
  SimDuration exec_cost_ = 0;
  uint32_t active_count_ = 0;
  uint64_t view_ = 0;
  std::set<uint64_t> view_changed_for_;
  std::vector<ReplicaState> per_replica_;
  std::vector<TaskId> sinks_;
  std::map<std::pair<uint32_t, uint64_t>, SinkInstance> sink_state_;
  BftReport report_;
};

}  // namespace

BftBaseline::BftBaseline(const Scenario* scenario, BftConfig config)
    : scenario_(scenario), config_(config) {
  // Prefer nodes that do not host sources/sinks; fall back to any node.
  std::set<NodeId> pinned;
  for (const TaskSpec& t : scenario_->workload.tasks()) {
    if (t.pinned_node.valid()) {
      pinned.insert(t.pinned_node);
    }
  }
  const uint32_t needed =
      config_.mode == BftMode::kPbft ? 3 * config_.f + 1 : 2 * config_.f + 1;
  for (size_t i = 0; i < scenario_->topology.node_count() && replicas_.size() < needed; ++i) {
    const NodeId id(static_cast<uint32_t>(i));
    if (pinned.count(id) == 0) {
      replicas_.push_back(id);
    }
  }
  for (size_t i = 0; i < scenario_->topology.node_count() && replicas_.size() < needed; ++i) {
    const NodeId id(static_cast<uint32_t>(i));
    if (std::find(replicas_.begin(), replicas_.end(), id) == replicas_.end()) {
      replicas_.push_back(id);
    }
  }
}

StatusOr<BftReport> BftBaseline::Run(uint64_t periods, const AdversarySpec& adversary) {
  const uint32_t needed =
      config_.mode == BftMode::kPbft ? 3 * config_.f + 1 : 2 * config_.f + 1;
  if (replicas_.size() < needed) {
    return Status::InvalidArgument("not enough nodes for " + std::to_string(needed) +
                                   " replicas");
  }
  BftRun run(scenario_, config_, replicas_, &adversary, periods);
  return run.Execute();
}

}  // namespace btr
