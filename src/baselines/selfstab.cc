#include "src/baselines/selfstab.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/golden.h"

namespace btr {
namespace {

constexpr uint64_t kCorruptionMask = 0xBAD0BAD0BAD0BAD0ULL;
constexpr uint32_t kGossipBytes = 32;

}  // namespace

StatusOr<SelfStabReport> SelfStabBaseline::Run(uint64_t periods, const AdversarySpec& adversary) {
  const Dataflow& w = scenario_->workload;
  const size_t n = scenario_->topology.node_count();
  const SimDuration period_len = w.period();
  Rng rng(config_.seed);
  GoldenOracle oracle(&w);

  // Initial round-robin assignment of compute tasks; sources/sinks pinned.
  std::vector<NodeId> hosts;  // candidate hosts for compute tasks
  {
    std::set<NodeId> pinned;
    for (const TaskSpec& t : w.tasks()) {
      if (t.pinned_node.valid()) {
        pinned.insert(t.pinned_node);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const NodeId id(static_cast<uint32_t>(i));
      if (pinned.count(id) == 0) {
        hosts.push_back(id);
      }
    }
    if (hosts.empty()) {
      for (size_t i = 0; i < n; ++i) {
        hosts.push_back(NodeId(static_cast<uint32_t>(i)));
      }
    }
  }
  // Per-node local view of who owns each task (views can diverge; that is
  // the point of the baseline).
  std::vector<std::vector<NodeId>> view(n, std::vector<NodeId>(w.task_count()));
  size_t rr = 0;
  for (const TaskSpec& t : w.tasks()) {
    NodeId owner = t.pinned_node;
    if (!owner.valid()) {
      owner = hosts[rr++ % hosts.size()];
    }
    for (size_t node = 0; node < n; ++node) {
      view[node][t.id.value()] = owner;
    }
  }

  // Gossip state: per node, per suspect, set of gossipers heard from.
  std::vector<std::map<uint32_t, std::set<uint32_t>>> heard(n);

  SelfStabReport report;
  double total_cpu = 0.0;
  double total_bytes = 0.0;
  std::vector<bool> period_ok(periods, true);

  auto fault_on = [&](NodeId node, uint64_t p) -> const FaultInjection* {
    return adversary.ActiveOn(node, static_cast<SimTime>(p) * period_len);
  };

  for (uint64_t p = 0; p < periods; ++p) {
    // --- execute tasks in topological order, per each node's local view ---
    // produced[task][node]: output digest produced by `node` this period.
    std::vector<std::map<uint32_t, uint64_t>> produced(w.task_count());
    std::vector<std::pair<uint32_t, uint32_t>> new_suspicions;  // (suspect, by)

    // Liveness watchdog: crashes are locally detectable by everyone (the
    // easy, benign-fault case classical self-stabilization handles); wrong
    // values are only probabilistically noticed by direct consumers below.
    for (size_t other = 0; other < n; ++other) {
      const NodeId them(static_cast<uint32_t>(other));
      const FaultInjection* of = fault_on(them, p);
      if (of == nullptr || of->behavior != FaultBehavior::kCrash) {
        continue;
      }
      for (size_t node = 0; node < n; ++node) {
        if (node != other) {
          new_suspicions.emplace_back(static_cast<uint32_t>(other),
                                      static_cast<uint32_t>(node));
        }
      }
    }

    for (TaskId t : w.TopologicalOrder()) {
      const TaskSpec& spec = w.task(t);
      for (size_t node = 0; node < n; ++node) {
        const NodeId me(static_cast<uint32_t>(node));
        if (view[node][t.value()] != me) {
          continue;  // I do not believe I own this task
        }
        const FaultInjection* fault = fault_on(me, p);
        if (fault != nullptr && fault->behavior == FaultBehavior::kCrash) {
          continue;
        }
        // Gather inputs as seen from my view.
        bool missing = false;
        std::vector<InputValue> inputs;
        for (const ChannelSpec& ch : w.Inputs(t)) {
          const NodeId owner = view[node][ch.from.value()];
          auto it = produced[ch.from.value()].find(owner.value());
          const FaultInjection* pf = fault_on(owner, p);
          const bool omitted =
              pf != nullptr && (pf->behavior == FaultBehavior::kOmission ||
                                pf->behavior == FaultBehavior::kCrash ||
                                (pf->behavior == FaultBehavior::kSelectiveOmission &&
                                 pf->target == me));
          if (it == produced[ch.from.value()].end() || omitted) {
            missing = true;
            new_suspicions.emplace_back(owner.value(), me.value());
            continue;
          }
          // Wrong values are only *probabilistically* noticed (no replicas).
          if (it->second != oracle.Golden(ch.from, p) && rng.NextBool(config_.detect_prob)) {
            new_suspicions.emplace_back(owner.value(), me.value());
          }
          inputs.push_back(InputValue{ch.from, it->second});
          total_bytes += ch.message_bytes;
        }
        if (missing) {
          continue;
        }
        std::sort(inputs.begin(), inputs.end(),
                  [](const InputValue& a, const InputValue& b) { return a.producer < b.producer; });
        uint64_t digest = spec.kind == TaskKind::kSource ? SourceValue(t, p)
                                                         : ComputeOutput(t, p, inputs);
        if (fault != nullptr && (fault->behavior == FaultBehavior::kValueCorruption ||
                                 fault->behavior == FaultBehavior::kEquivocate)) {
          digest ^= kCorruptionMask;
        }
        produced[t.value()][me.value()] = digest;
        total_cpu += static_cast<double>(spec.wcet);
      }
    }

    // --- evaluate sinks from their pinned node's perspective ---
    for (TaskId s : w.SinkIds()) {
      auto it = produced[s.value()].find(w.task(s).pinned_node.value());
      const bool ok = it != produced[s.value()].end() && it->second == oracle.Golden(s, p);
      if (ok) {
        ++report.correct_outputs;
      } else {
        ++report.incorrect_outputs;
        period_ok[p] = false;
      }
    }

    // --- gossip suspicions (everyone hears everyone; byzantine lies) ---
    for (size_t node = 0; node < n; ++node) {
      const NodeId me(static_cast<uint32_t>(node));
      const FaultInjection* fault = fault_on(me, p);
      if (fault != nullptr && fault->behavior == FaultBehavior::kCrash) {
        continue;
      }
      if (fault != nullptr) {
        // Byzantine gossip: frame a random honest node every period.
        const uint32_t victim = static_cast<uint32_t>(rng.NextBelow(n));
        for (size_t other = 0; other < n; ++other) {
          heard[other][victim].insert(me.value());
        }
        total_bytes += static_cast<double>(kGossipBytes * n);
        continue;
      }
      for (const auto& [suspect, by] : new_suspicions) {
        if (by != me.value()) {
          continue;
        }
        for (size_t other = 0; other < n; ++other) {
          heard[other][suspect].insert(by);
        }
        total_bytes += static_cast<double>(kGossipBytes * n);
      }
    }

    // --- local reassignment once a majority of nodes suspect someone ---
    const size_t majority = n / 2 + 1;
    for (size_t node = 0; node < n; ++node) {
      for (const auto& [suspect, gossipers] : heard[node]) {
        if (gossipers.size() < majority) {
          continue;
        }
        for (const TaskSpec& t : w.tasks()) {
          if (t.pinned_node.valid() || view[node][t.id.value()].value() != suspect) {
            continue;
          }
          // Deterministic next host, skipping locally-suspected nodes.
          for (size_t k = 1; k <= hosts.size(); ++k) {
            const NodeId cand = hosts[(suspect + k + t.id.value()) % hosts.size()];
            auto hit = heard[node].find(cand.value());
            const bool cand_suspected = hit != heard[node].end() &&
                                        hit->second.size() >= majority;
            if (!cand_suspected) {
              view[node][t.id.value()] = cand;
              break;
            }
          }
        }
      }
    }
  }

  // --- stabilization analysis ---
  SimTime first_fault = kSimTimeNever;
  for (const FaultInjection& inj : adversary.injections()) {
    first_fault = std::min(first_fault, inj.manifest_at);
  }
  if (first_fault != kSimTimeNever) {
    // Find the start of the final all-correct suffix.
    int64_t suffix_start = static_cast<int64_t>(periods);
    for (int64_t p = static_cast<int64_t>(periods) - 1; p >= 0; --p) {
      if (!period_ok[p]) {
        break;
      }
      suffix_start = p;
    }
    const uint64_t fault_period = static_cast<uint64_t>(first_fault / period_len);
    if (suffix_start < static_cast<int64_t>(periods) &&
        static_cast<uint64_t>(suffix_start) > fault_period) {
      report.stabilized = true;
      report.recovery_time = suffix_start * period_len - first_fault;
    } else if (suffix_start <= static_cast<int64_t>(fault_period)) {
      report.stabilized = true;
      report.recovery_time = 0;
    }
  } else {
    report.stabilized = true;
    report.recovery_time = 0;
  }
  report.bytes_per_period = total_bytes / static_cast<double>(periods);
  report.cpu_per_period = total_cpu / static_cast<double>(periods);
  return report;
}

}  // namespace btr
