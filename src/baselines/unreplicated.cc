#include "src/baselines/unreplicated.h"

namespace btr {

UnreplicatedCost ComputeUnreplicatedCost(const Dataflow& workload) {
  UnreplicatedCost cost;
  for (const TaskSpec& t : workload.tasks()) {
    cost.cpu_per_period += static_cast<double>(t.wcet);
  }
  for (const ChannelSpec& ch : workload.channels()) {
    cost.bytes_per_period += static_cast<double>(ch.message_bytes);
  }
  return cost;
}

}  // namespace btr
