// Unreplicated baseline: the raw workload cost with no fault tolerance at
// all. Used as the denominator in the replication-cost experiment (E1).

#ifndef BTR_SRC_BASELINES_UNREPLICATED_H_
#define BTR_SRC_BASELINES_UNREPLICATED_H_

#include "src/workload/dataflow.h"

namespace btr {

struct UnreplicatedCost {
  double cpu_per_period = 0.0;    // sum of all task WCETs, ns
  double bytes_per_period = 0.0;  // sum of all channel payloads
  uint32_t replicas = 1;
};

// Analytic cost of running the workload once per period with no replication,
// checking, or evidence machinery.
UnreplicatedCost ComputeUnreplicatedCost(const Dataflow& workload);

}  // namespace btr

#endif  // BTR_SRC_BASELINES_UNREPLICATED_H_
