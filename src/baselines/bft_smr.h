// BFT state-machine-replication baselines (paper Sections 1 and 5).
//
// To quantify BTR's efficiency claim ("detection requires fewer replicas
// than masking, and BTR can use the output of some replicas without waiting
// for the others"), we implement the two classical comparators on the same
// simulator, network, and workload:
//
//  * kPbft — a compact PBFT-style protocol: 3f+1 replicas each execute the
//    whole compute DAG every period; the primary proposes the sink outputs;
//    prepare and commit rounds (O(n^2) messages) mask up to f Byzantine
//    replicas; sinks actuate on f+1 matching results. A silent or lying
//    primary triggers a view change. Simplifications vs. real PBFT: one
//    instance per workload period, digests instead of full requests, no
//    checkpointing/garbage collection — none of which change the resource
//    or latency shape being measured.
//  * kZz — a ZZ-style reactive scheme: only f+1 replicas execute in the
//    fault-free case; sinks actuate when all f+1 results match. On mismatch
//    or timeout the f standby replicas are woken (boot delay), execute, and
//    the sink takes the majority of 2f+1. Cheap normal case, recovery delay
//    on fault — the closest relative of BTR's reactive philosophy.
//
// Both baselines treat the workload as a black box: every replica executes
// everything, and no degradation by criticality is possible. That contrast
// is exactly experiment E5.

#ifndef BTR_SRC_BASELINES_BFT_SMR_H_
#define BTR_SRC_BASELINES_BFT_SMR_H_

#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/core/adversary.h"
#include "src/net/network.h"
#include "src/workload/generators.h"

namespace btr {

enum class BftMode : int { kPbft = 0, kZz = 1 };

struct BftConfig {
  uint32_t f = 1;
  BftMode mode = BftMode::kPbft;
  uint64_t seed = 1;
  // View-change / standby-wake timeout as a fraction of the period.
  double timeout_fraction = 0.5;
  // ZZ: standby boot delay.
  SimDuration wake_delay = Milliseconds(30);
  NetworkConfig network;
};

struct BftReport {
  uint32_t replicas_total = 0;     // replicas provisioned
  uint32_t replicas_active = 0;    // executing in the fault-free case
  double bytes_per_period = 0.0;   // link-level bytes per period
  double cpu_per_period = 0.0;     // execution ns per period, all replicas
  Samples sink_latency;            // actuation time minus period start (ns)
  uint64_t correct_outputs = 0;
  uint64_t wrong_outputs = 0;
  uint64_t missing_outputs = 0;
  uint64_t late_outputs = 0;
  uint64_t view_changes = 0;
  uint64_t wakeups = 0;            // ZZ standby activations
  // Longest run of consecutive periods with a missing/late/wrong sink
  // output after the first fault manifestation.
  SimDuration max_disruption = 0;
};

class BftBaseline {
 public:
  BftBaseline(const Scenario* scenario, BftConfig config);

  StatusOr<BftReport> Run(uint64_t periods, const AdversarySpec& adversary);

  // Replica nodes chosen (for tests and fault targeting).
  const std::vector<NodeId>& replica_nodes() const { return replicas_; }

 private:
  const Scenario* scenario_;
  BftConfig config_;
  std::vector<NodeId> replicas_;
};

}  // namespace btr

#endif  // BTR_SRC_BASELINES_BFT_SMR_H_
