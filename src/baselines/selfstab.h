// Self-stabilization-style baseline (paper Section 5).
//
// Self-stabilizing systems guarantee only *eventual* convergence to a
// correct state, with no bound on when; classical formulations also assume
// benign faults. This baseline models that recovery style on our substrate:
//
//  * tasks run unreplicated, assigned round-robin;
//  * there is no evidence: an honest node merely *suspects* a producer when
//    its output is missing or (with probability detect_prob, since there is
//    no replica to compare against) wrong;
//  * suspicions are gossiped; a node locally reassigns the suspect's tasks
//    once it has heard suspicions from a majority of nodes. Nothing forces
//    nodes to reassign at the same time, and a Byzantine node can gossip
//    false suspicions, so convergence is eventual and jittery — which is
//    exactly the contrast with BTR's bounded recovery (experiment E3).
//
// The protocol is intentionally simple; it stands in for the *class* of
// eventual-recovery schemes, not for any specific published algorithm.

#ifndef BTR_SRC_BASELINES_SELFSTAB_H_
#define BTR_SRC_BASELINES_SELFSTAB_H_

#include "src/common/status.h"
#include "src/core/adversary.h"
#include "src/net/network.h"
#include "src/workload/generators.h"

namespace btr {

struct SelfStabConfig {
  uint64_t seed = 1;
  // Probability per period that an honest consumer notices a *wrong* (as
  // opposed to missing) input value without replicas to compare against.
  double detect_prob = 0.25;
  NetworkConfig network;
};

struct SelfStabReport {
  uint64_t correct_outputs = 0;
  uint64_t incorrect_outputs = 0;  // wrong, late, or missing
  // Time from first fault manifestation to the start of the final
  // all-correct suffix; -1 if the system never re-stabilized.
  SimDuration recovery_time = -1;
  bool stabilized = false;
  double bytes_per_period = 0.0;
  double cpu_per_period = 0.0;
};

class SelfStabBaseline {
 public:
  SelfStabBaseline(const Scenario* scenario, SelfStabConfig config)
      : scenario_(scenario), config_(config) {}

  StatusOr<SelfStabReport> Run(uint64_t periods, const AdversarySpec& adversary);

 private:
  const Scenario* scenario_;
  SelfStabConfig config_;
};

}  // namespace btr

#endif  // BTR_SRC_BASELINES_SELFSTAB_H_
