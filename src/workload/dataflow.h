// The workload model: a static, periodic dataflow graph (paper Section 2.1).
//
// The system has a period P and releases a set of tasks during each period.
// Each task consumes inputs from sources and/or other tasks and produces at
// least one output toward a sink or another task. Each sink output has a
// criticality level and an end-to-end deadline. Sources and sinks are pinned
// to physical nodes (they are sensors/actuators); computation tasks float
// and may be replicated by the planner.

#ifndef BTR_SRC_WORKLOAD_DATAFLOW_H_
#define BTR_SRC_WORKLOAD_DATAFLOW_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace btr {

// Criticality levels, ordered: higher value = more critical. Mirrors the
// DO-178-style A..E levels the mixed-criticality literature uses.
enum class Criticality : int {
  kBestEffort = 0,   // in-flight entertainment
  kLow = 1,          // logging, telemetry
  kMedium = 2,       // comfort functions
  kHigh = 3,         // cabin pressure, stability control
  kSafetyCritical = 4,  // flight control, shutdown valves
};
inline constexpr int kCriticalityLevels = 5;

const char* CriticalityName(Criticality c);
// Inverse of CriticalityName; nullopt for an unknown name.
std::optional<Criticality> ParseCriticality(std::string_view name);

// Utility weight used by the degradation experiments: shedding a flow of
// criticality c forfeits Weight(c) utility.
double CriticalityWeight(Criticality c);

enum class TaskKind : int {
  kSource = 0,   // reads the physical world; pinned, not replicated
  kCompute = 1,  // pure function of its inputs; replicable
  kSink = 2,     // actuates the physical world; pinned, not replicated
};
inline constexpr int kTaskKindCount = 3;

const char* TaskKindName(TaskKind k);
// Inverse of TaskKindName; nullopt for an unknown name.
std::optional<TaskKind> ParseTaskKind(std::string_view name);

struct TaskSpec {
  TaskId id;
  std::string name;
  TaskKind kind = TaskKind::kCompute;
  SimDuration wcet = 0;          // worst-case execution time per instance
  uint32_t state_bytes = 0;      // internal state migrated on reassignment
  NodeId pinned_node;            // valid only for sources/sinks
  Criticality criticality = Criticality::kMedium;
  // For sinks: deadline of the output relative to the period start.
  SimDuration relative_deadline = 0;
};

struct ChannelSpec {
  TaskId from;
  TaskId to;
  uint32_t message_bytes = 0;
};

// A periodic dataflow workload.
class Dataflow {
 public:
  explicit Dataflow(SimDuration period) : period_(period) {}

  TaskId AddSource(std::string name, SimDuration wcet, NodeId pinned, Criticality crit);
  TaskId AddCompute(std::string name, SimDuration wcet, uint32_t state_bytes, Criticality crit);
  TaskId AddSink(std::string name, SimDuration wcet, NodeId pinned, Criticality crit,
                 SimDuration relative_deadline);
  void Connect(TaskId from, TaskId to, uint32_t message_bytes);

  SimDuration period() const { return period_; }
  size_t task_count() const { return tasks_.size(); }
  // Finds a task by name; invalid TaskId if absent.
  TaskId FindTask(const std::string& name) const;
  const TaskSpec& task(TaskId id) const { return tasks_[id.value()]; }
  const std::vector<TaskSpec>& tasks() const { return tasks_; }
  const std::vector<ChannelSpec>& channels() const { return channels_; }

  // Channels into / out of a task.
  const std::vector<ChannelSpec>& Inputs(TaskId id) const;
  const std::vector<ChannelSpec>& Outputs(TaskId id) const;

  std::vector<TaskId> SourceIds() const;
  std::vector<TaskId> SinkIds() const;
  std::vector<TaskId> ComputeIds() const;

  // Tasks in a topological order (sources first). Requires acyclicity.
  const std::vector<TaskId>& TopologicalOrder() const;

  // All tasks that (transitively) feed `sink`, excluding the sink itself.
  std::vector<TaskId> AncestorsOf(TaskId sink) const;

  // All tasks whose output (transitively) reaches any sink in `sinks`.
  std::vector<bool> ReachesSinkMask(const std::vector<TaskId>& sinks) const;

  // Sum of WCET over all tasks (one instance each).
  SimDuration TotalWcet() const;

  // Structural validation: acyclic; sources have no inputs; sinks have no
  // outputs; every compute task lies on a source->sink path; pinned nodes
  // set exactly for sources/sinks; wcets positive; deadlines within period.
  Status Validate() const;

 private:
  TaskId AddTask(TaskSpec spec);
  void InvalidateCaches();

  SimDuration period_;
  std::vector<TaskSpec> tasks_;
  std::vector<ChannelSpec> channels_;
  mutable std::vector<std::vector<ChannelSpec>> inputs_;   // lazily built
  mutable std::vector<std::vector<ChannelSpec>> outputs_;  // lazily built
  mutable std::vector<TaskId> topo_order_;                 // lazily built
  mutable bool caches_valid_ = false;
  void BuildCaches() const;
};

}  // namespace btr

#endif  // BTR_SRC_WORKLOAD_DATAFLOW_H_
