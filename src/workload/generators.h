// Synthetic workload + topology generators.
//
// The paper motivates BTR with avionics (flight control + in-flight
// entertainment on one platform), SCADA-style plant control (pressure valve),
// and automotive examples. Each generator produces a matched topology and
// dataflow so examples, tests, and benches share realistic scenarios.

#ifndef BTR_SRC_WORKLOAD_GENERATORS_H_
#define BTR_SRC_WORKLOAD_GENERATORS_H_

#include <string>

#include "src/common/rng.h"
#include "src/net/topology.h"
#include "src/workload/dataflow.h"

namespace btr {

struct Scenario {
  std::string name;
  Topology topology;
  Dataflow workload{Milliseconds(10)};
};

// Avionics mix (paper Section 1): safety-critical flight-control chain,
// high-criticality cabin pressure loop, best-effort in-flight entertainment,
// on `compute_nodes` interchangeable flight computers plus pinned I/O nodes.
Scenario MakeAvionicsScenario(size_t compute_nodes = 6);

// SCADA pressure vessel (paper Section 2): pressure sensor -> controller ->
// relief valve with a hard deadline, plus low-criticality logging.
Scenario MakeScadaScenario(size_t compute_nodes = 4);

// Vehicle platoon: per-vehicle radar/speed sensing fused into a
// cruise-control command; exercises multi-hop (ring) communication.
Scenario MakeConvoyScenario(size_t vehicles = 4);

// Radio-link dynamics for the lossy/mobile scenario family: applied to
// every radio (non-wired) link the generator emits, via
// Topology::SetLinkDynamics. Defaults model a mildly hostile channel; pass
// an explicit struct (e.g. from a .btrx SCENARIO record's loss-pm= /
// duty-on-us= / duty-period-us= keys) to sweep the hostility.
struct RadioParams {
  double loss = 0.0;            // per-hop drop probability, [0, 1)
  SimDuration duty_on = 0;      // transmit window within each duty period
  SimDuration duty_period = 0;  // 0 = always on
};

// Mobile convoy: the platoon of MakeConvoyScenario, but the inter-vehicle
// v2v radio ring is lossy and (optionally) duty-cycled — vehicles drift in
// and out of range, so links drop packets instead of failing cleanly. The
// intra-vehicle wired links stay ideal.
Scenario MakeConvoyMobileScenario(size_t vehicles = 4, const RadioParams* radio = nullptr);

// Lossy sensor mesh: `nodes` field motes in a near-square grid of slow
// point-to-point radio hops (every link lossy/duty-cycled), corner sensors
// fused mid-mesh and delivered to a gateway sink — a WSN-flavored workload
// where multi-hop relay is the common case, not the fallback.
Scenario MakeLossyMeshScenario(size_t nodes = 9, const RadioParams* radio = nullptr);

// Builds a scenario by generator name: "avionics", "scada", "convoy" /
// "convoy-mobile" (nodes = vehicles * 2 rounded down, >= 2 vehicles),
// "lossy-mesh", or "random" (seeded layered DAG; `params` tweaks beyond
// compute_nodes are the caller's job — pass nullptr for defaults). `radio`
// parameterizes the lossy/mobile kinds and is ignored elsewhere. The one
// registry the btrsim CLI and the experiment-spec runner both resolve
// scenario names through.
struct RandomDagParams;
StatusOr<Scenario> MakeNamedScenario(const std::string& kind, size_t nodes, uint64_t seed,
                                     const RandomDagParams* params = nullptr,
                                     const RadioParams* radio = nullptr);

// Random layered DAG for property tests and scalability sweeps.
struct RandomDagParams {
  size_t compute_nodes = 8;    // processing nodes (excluding I/O nodes)
  size_t sources = 3;
  size_t sinks = 3;
  size_t layers = 3;           // compute layers between sources and sinks
  size_t tasks_per_layer = 4;
  double edge_density = 0.5;   // probability of layer-(i)->(i+1) edge
  SimDuration period = Milliseconds(20);
  SimDuration min_wcet = Microseconds(50);
  SimDuration max_wcet = Microseconds(400);
  uint32_t min_msg_bytes = 64;
  uint32_t max_msg_bytes = 1024;
  uint32_t max_state_bytes = 4096;
  int64_t bus_bandwidth_bps = 50'000'000;  // 50 Mbps automotive Ethernet-ish
};
Scenario MakeRandomScenario(Rng* rng, const RandomDagParams& params);

}  // namespace btr

#endif  // BTR_SRC_WORKLOAD_GENERATORS_H_
