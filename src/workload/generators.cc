#include "src/workload/generators.h"

#include <algorithm>
#include <cassert>

namespace btr {
namespace {

constexpr SimDuration kBusPropagation = Microseconds(2);

}  // namespace

StatusOr<Scenario> MakeNamedScenario(const std::string& kind, size_t nodes, uint64_t seed,
                                     const RandomDagParams* params, const RadioParams* radio) {
  if (kind == "avionics") {
    return MakeAvionicsScenario(std::max<size_t>(nodes, 2));
  }
  if (kind == "scada") {
    return MakeScadaScenario(std::max<size_t>(nodes, 2));
  }
  if (kind == "convoy") {
    return MakeConvoyScenario(std::max<size_t>(nodes / 2, 2));
  }
  if (kind == "convoy-mobile") {
    return MakeConvoyMobileScenario(std::max<size_t>(nodes / 2, 2), radio);
  }
  if (kind == "lossy-mesh") {
    return MakeLossyMeshScenario(nodes, radio);
  }
  if (kind == "random") {
    Rng rng(seed);
    RandomDagParams p;
    if (params != nullptr) {
      p = *params;
    }
    p.compute_nodes = nodes;
    return MakeRandomScenario(&rng, p);
  }
  return Status::InvalidArgument("unknown scenario generator '" + kind + "'");
}

Scenario MakeAvionicsScenario(size_t compute_nodes) {
  assert(compute_nodes >= 2);
  Scenario s;
  s.name = "avionics";

  // Nodes: [0] sensor I/O node, [1] actuator I/O node, [2] cabin I/O node,
  // [3] IFE head-end, then `compute_nodes` flight computers. Dual redundant
  // buses so a single faulty gateway cannot partition the system.
  Topology& topo = s.topology;
  const NodeId sensor_io = topo.AddNode();
  const NodeId actuator_io = topo.AddNode();
  const NodeId cabin_io = topo.AddNode();
  const NodeId ife_node = topo.AddNode();
  const NodeId first_fc = topo.AddNodes(compute_nodes);
  std::vector<NodeId> all;
  for (size_t i = 0; i < topo.node_count(); ++i) {
    all.push_back(NodeId(static_cast<uint32_t>(i)));
  }
  // 100 Mbps avionics backbone, duplicated (ARINC-style dual bus).
  topo.AddLink(all, 100'000'000, kBusPropagation, "backboneA");
  topo.AddLink(all, 100'000'000, kBusPropagation, "backboneB");
  (void)first_fc;

  Dataflow& w = s.workload;
  w = Dataflow(Milliseconds(10));  // 100 Hz major frame

  // Flight-control chain: gyro + accel -> fusion -> control law -> elevator.
  const TaskId gyro =
      w.AddSource("gyro", Microseconds(40), sensor_io, Criticality::kSafetyCritical);
  const TaskId accel =
      w.AddSource("accel", Microseconds(40), sensor_io, Criticality::kSafetyCritical);
  const TaskId fusion =
      w.AddCompute("att_fusion", Microseconds(250), 2048, Criticality::kSafetyCritical);
  const TaskId ctrl_law =
      w.AddCompute("control_law", Microseconds(350), 4096, Criticality::kSafetyCritical);
  const TaskId elevator = w.AddSink("elevator", Microseconds(50), actuator_io,
                                    Criticality::kSafetyCritical, Milliseconds(8));
  w.Connect(gyro, fusion, 128);
  w.Connect(accel, fusion, 128);
  w.Connect(fusion, ctrl_law, 256);
  w.Connect(ctrl_law, elevator, 64);

  // Cabin-pressure loop (high criticality, slower deadline).
  const TaskId pres = w.AddSource("cabin_pressure", Microseconds(30), cabin_io,
                                  Criticality::kHigh);
  const TaskId pres_ctl =
      w.AddCompute("pressure_ctl", Microseconds(200), 1024, Criticality::kHigh);
  const TaskId outflow = w.AddSink("outflow_valve", Microseconds(40), cabin_io,
                                   Criticality::kHigh, Milliseconds(10));
  w.Connect(pres, pres_ctl, 64);
  w.Connect(pres_ctl, outflow, 64);

  // In-flight entertainment: best-effort streaming pipeline.
  const TaskId media = w.AddSource("media_in", Microseconds(60), ife_node,
                                   Criticality::kBestEffort);
  const TaskId transcode =
      w.AddCompute("transcode", Microseconds(900), 16384, Criticality::kBestEffort);
  const TaskId mux = w.AddCompute("av_mux", Microseconds(300), 8192, Criticality::kBestEffort);
  const TaskId seatback = w.AddSink("seatback", Microseconds(80), ife_node,
                                    Criticality::kBestEffort, Milliseconds(10));
  w.Connect(media, transcode, 4096);
  w.Connect(transcode, mux, 2048);
  w.Connect(mux, seatback, 2048);

  // Telemetry: low criticality, taps the fusion output.
  const TaskId telem_fmt =
      w.AddCompute("telem_fmt", Microseconds(120), 512, Criticality::kLow);
  const TaskId telem_tx = w.AddSink("telem_tx", Microseconds(40), cabin_io,
                                    Criticality::kLow, Milliseconds(10));
  w.Connect(fusion, telem_fmt, 256);
  w.Connect(telem_fmt, telem_tx, 512);

  return s;
}

Scenario MakeScadaScenario(size_t compute_nodes) {
  assert(compute_nodes >= 2);
  Scenario s;
  s.name = "scada";

  Topology& topo = s.topology;
  const NodeId field_io = topo.AddNode();   // sensor + valve RTU
  const NodeId hist_node = topo.AddNode();  // historian
  topo.AddNodes(compute_nodes);             // PLC rack
  std::vector<NodeId> all;
  for (size_t i = 0; i < topo.node_count(); ++i) {
    all.push_back(NodeId(static_cast<uint32_t>(i)));
  }
  topo.AddLink(all, 10'000'000, Microseconds(5), "fieldbus");

  Dataflow& w = s.workload;
  w = Dataflow(Milliseconds(50));  // 20 Hz scan cycle

  const TaskId pressure =
      w.AddSource("pressure", Microseconds(50), field_io, Criticality::kSafetyCritical);
  const TaskId temp = w.AddSource("temperature", Microseconds(50), field_io, Criticality::kHigh);
  const TaskId estimator =
      w.AddCompute("estimator", Microseconds(400), 2048, Criticality::kSafetyCritical);
  const TaskId relief_logic =
      w.AddCompute("relief_logic", Microseconds(300), 1024, Criticality::kSafetyCritical);
  const TaskId valve = w.AddSink("relief_valve", Microseconds(60), field_io,
                                 Criticality::kSafetyCritical, Milliseconds(40));
  w.Connect(pressure, estimator, 64);
  w.Connect(temp, estimator, 64);
  w.Connect(estimator, relief_logic, 128);
  w.Connect(relief_logic, valve, 32);

  const TaskId trend = w.AddCompute("trend", Microseconds(500), 8192, Criticality::kLow);
  const TaskId historian = w.AddSink("historian", Microseconds(100), hist_node,
                                     Criticality::kLow, Milliseconds(50));
  w.Connect(estimator, trend, 256);
  w.Connect(trend, historian, 1024);

  return s;
}

Scenario MakeConvoyScenario(size_t vehicles) {
  assert(vehicles >= 2);
  Scenario s;
  s.name = "convoy";

  // Each vehicle contributes one I/O node and one compute node, arranged in
  // a ring of V2V radio links (so messages may relay through neighbors).
  Topology& topo = s.topology;
  topo.AddNodes(2 * vehicles);
  for (size_t v = 0; v < vehicles; ++v) {
    const NodeId io(static_cast<uint32_t>(2 * v));
    const NodeId cpu(static_cast<uint32_t>(2 * v + 1));
    topo.AddLink({io, cpu}, 50'000'000, Microseconds(1), "veh" + std::to_string(v));
    const NodeId next_cpu(static_cast<uint32_t>(2 * ((v + 1) % vehicles) + 1));
    topo.AddLink({cpu, next_cpu}, 5'000'000, Microseconds(20), "v2v" + std::to_string(v));
  }

  Dataflow& w = s.workload;
  w = Dataflow(Milliseconds(20));  // 50 Hz control

  // Lead vehicle broadcasts speed; each follower fuses radar + lead speed.
  const NodeId lead_io(0);
  const TaskId lead_speed =
      w.AddSource("lead_speed", Microseconds(30), lead_io, Criticality::kHigh);
  for (size_t v = 1; v < vehicles; ++v) {
    const NodeId io(static_cast<uint32_t>(2 * v));
    const std::string tag = std::to_string(v);
    const TaskId radar = w.AddSource("radar" + tag, Microseconds(60), io, Criticality::kHigh);
    const TaskId gap = w.AddCompute("gap_est" + tag, Microseconds(200), 1024, Criticality::kHigh);
    const TaskId acc =
        w.AddCompute("acc_ctl" + tag, Microseconds(250), 2048, Criticality::kSafetyCritical);
    const TaskId throttle = w.AddSink("throttle" + tag, Microseconds(40), io,
                                      Criticality::kSafetyCritical, Milliseconds(15));
    w.Connect(lead_speed, gap, 64);
    w.Connect(radar, gap, 128);
    w.Connect(gap, acc, 128);
    w.Connect(acc, throttle, 32);
  }
  return s;
}

Scenario MakeConvoyMobileScenario(size_t vehicles, const RadioParams* radio) {
  Scenario s = MakeConvoyScenario(vehicles);
  s.name = "convoy-mobile";
  // Vehicles drift in and out of radio range: the v2v ring drops packets
  // probabilistically (and, when duty-cycled, deterministically in the off
  // window). The intra-vehicle veh<N> links are wired and stay ideal.
  RadioParams r;
  // Default hostility is milder than the lossy mesh's: the convoy's fused
  // chains amplify one drop into many coincident path declarations, so a
  // per-hop rate that the mesh absorbs can frame the platoon's relays.
  // 0.1% sees real drops over a long run while a bare
  // `--scenario convoy-mobile` still completes; specs that want a hotter
  // channel say so with loss-pm=.
  r.loss = 0.001;
  if (radio != nullptr) {
    r = *radio;
  }
  Topology& topo = s.topology;
  for (size_t l = 0; l < topo.link_count(); ++l) {
    const LinkId id(static_cast<uint32_t>(l));
    if (topo.link(id).name.rfind("v2v", 0) == 0) {
      topo.SetLinkDynamics(id, r.loss, r.duty_on, r.duty_period);
    }
  }
  return s;
}

Scenario MakeLossyMeshScenario(size_t nodes, const RadioParams* radio) {
  const size_t n = std::max<size_t>(nodes, 4);
  Scenario s;
  s.name = "lossy-mesh";
  // 0.2% per hop: hostile enough that long runs see real drops, gentle
  // enough that the path-blame rule is not guaranteed to frame the mesh's
  // relay hubs (raise it deliberately to study that collapse).
  RadioParams r;
  r.loss = 0.002;
  if (radio != nullptr) {
    r = *radio;
  }

  // Near-square grid of motes, row-major; every hop is a slow lossy
  // point-to-point radio. Multi-hop relay is the common case: the far
  // corner's samples cross the whole mesh to reach the gateway.
  size_t cols = 1;
  while (cols * cols < n) {
    ++cols;
  }
  Topology& topo = s.topology;
  topo.AddNodes(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t row = i / cols;
    const size_t col = i % cols;
    const std::string tag = std::to_string(row) + "_" + std::to_string(col);
    if (col + 1 < cols && i + 1 < n) {
      const LinkId id = topo.AddLink({NodeId(static_cast<uint32_t>(i)),
                                      NodeId(static_cast<uint32_t>(i + 1))},
                                     10'000'000, Microseconds(5), "mesh" + tag + "e");
      topo.SetLinkDynamics(id, r.loss, r.duty_on, r.duty_period);
    }
    if (i + cols < n) {
      const LinkId id = topo.AddLink({NodeId(static_cast<uint32_t>(i)),
                                      NodeId(static_cast<uint32_t>(i + cols))},
                                     10'000'000, Microseconds(5), "mesh" + tag + "s");
      topo.SetLinkDynamics(id, r.loss, r.duty_on, r.duty_period);
    }
  }

  // WSN workload at 10 Hz: two corner sensors fused mid-mesh; the fused
  // estimate drives a safety alarm at the gateway plus a low-criticality
  // uplink report.
  Dataflow& w = s.workload;
  w = Dataflow(Milliseconds(100));
  const NodeId gateway(0);
  const NodeId far_corner(static_cast<uint32_t>(n - 1));
  const NodeId near_corner(static_cast<uint32_t>(cols - 1));
  const TaskId sense_far =
      w.AddSource("sense_far", Microseconds(50), far_corner, Criticality::kHigh);
  const TaskId sense_near =
      w.AddSource("sense_near", Microseconds(50), near_corner, Criticality::kHigh);
  const TaskId fuse =
      w.AddCompute("fuse", Microseconds(400), 2048, Criticality::kSafetyCritical);
  const TaskId alarm_logic =
      w.AddCompute("alarm_logic", Microseconds(250), 1024, Criticality::kSafetyCritical);
  const TaskId alarm = w.AddSink("alarm", Microseconds(60), gateway,
                                 Criticality::kSafetyCritical, Milliseconds(60));
  const TaskId report_fmt =
      w.AddCompute("report_fmt", Microseconds(300), 4096, Criticality::kLow);
  const TaskId uplink = w.AddSink("uplink", Microseconds(80), gateway,
                                  Criticality::kLow, Milliseconds(100));
  w.Connect(sense_far, fuse, 96);
  w.Connect(sense_near, fuse, 96);
  w.Connect(fuse, alarm_logic, 64);
  w.Connect(alarm_logic, alarm, 32);
  w.Connect(fuse, report_fmt, 128);
  w.Connect(report_fmt, uplink, 512);
  return s;
}

Scenario MakeRandomScenario(Rng* rng, const RandomDagParams& params) {
  Scenario s;
  s.name = "random";

  Topology& topo = s.topology;
  const size_t io_nodes = params.sources + params.sinks > 0 ? 2 : 0;
  topo.AddNodes(io_nodes + params.compute_nodes);
  std::vector<NodeId> all;
  for (size_t i = 0; i < topo.node_count(); ++i) {
    all.push_back(NodeId(static_cast<uint32_t>(i)));
  }
  topo.AddLink(all, params.bus_bandwidth_bps, kBusPropagation, "bus");

  const NodeId src_io(0);
  const NodeId sink_io(1);

  Dataflow& w = s.workload;
  w = Dataflow(params.period);

  auto rand_wcet = [&]() {
    return rng->NextInRange(params.min_wcet, params.max_wcet);
  };
  auto rand_bytes = [&]() {
    return static_cast<uint32_t>(rng->NextInRange(params.min_msg_bytes, params.max_msg_bytes));
  };
  auto rand_crit = [&]() {
    return static_cast<Criticality>(rng->NextInRange(0, kCriticalityLevels - 1));
  };

  std::vector<TaskId> prev_layer;
  for (size_t i = 0; i < params.sources; ++i) {
    prev_layer.push_back(w.AddSource("src" + std::to_string(i), rand_wcet(), src_io,
                                     Criticality::kMedium));
  }

  std::vector<std::vector<TaskId>> layers;
  for (size_t l = 0; l < params.layers; ++l) {
    std::vector<TaskId> layer;
    for (size_t i = 0; i < params.tasks_per_layer; ++i) {
      const uint32_t state = static_cast<uint32_t>(rng->NextInRange(0, params.max_state_bytes));
      layer.push_back(w.AddCompute("c" + std::to_string(l) + "_" + std::to_string(i),
                                   rand_wcet(), state, rand_crit()));
    }
    // Connect from the previous layer: each task gets >= 1 input.
    for (TaskId t : layer) {
      bool connected = false;
      for (TaskId p : prev_layer) {
        if (rng->NextBool(params.edge_density)) {
          w.Connect(p, t, rand_bytes());
          connected = true;
        }
      }
      if (!connected) {
        const TaskId p = prev_layer[rng->NextBelow(prev_layer.size())];
        w.Connect(p, t, rand_bytes());
      }
    }
    // Every previous-layer task must have at least one consumer.
    for (TaskId p : prev_layer) {
      if (w.Outputs(p).empty()) {
        const TaskId t = layer[rng->NextBelow(layer.size())];
        w.Connect(p, t, rand_bytes());
      }
    }
    layers.push_back(layer);
    prev_layer = std::move(layer);
  }

  for (size_t i = 0; i < params.sinks; ++i) {
    const Criticality crit = rand_crit();
    const SimDuration deadline = rng->NextInRange(params.period / 2, params.period);
    const TaskId snk =
        w.AddSink("snk" + std::to_string(i), rand_wcet(), sink_io, crit, deadline);
    // At least one feeder from the final layer.
    const TaskId p = prev_layer[rng->NextBelow(prev_layer.size())];
    w.Connect(p, snk, rand_bytes());
    for (TaskId q : prev_layer) {
      if (q != p && rng->NextBool(params.edge_density * 0.5)) {
        w.Connect(q, snk, rand_bytes());
      }
    }
  }
  // Any final-layer task still lacking a consumer feeds the first sink.
  const std::vector<TaskId> sinks = w.SinkIds();
  for (TaskId p : prev_layer) {
    if (w.Outputs(p).empty()) {
      w.Connect(p, sinks[0], rand_bytes());
    }
  }
  return s;
}

}  // namespace btr
