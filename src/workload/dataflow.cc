#include "src/workload/dataflow.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace btr {

const char* CriticalityName(Criticality c) {
  switch (c) {
    case Criticality::kBestEffort:
      return "best-effort";
    case Criticality::kLow:
      return "low";
    case Criticality::kMedium:
      return "medium";
    case Criticality::kHigh:
      return "high";
    case Criticality::kSafetyCritical:
      return "safety-critical";
  }
  return "?";
}

std::optional<Criticality> ParseCriticality(std::string_view name) {
  for (int i = 0; i < kCriticalityLevels; ++i) {
    const Criticality c = static_cast<Criticality>(i);
    if (name == CriticalityName(c)) {
      return c;
    }
  }
  return std::nullopt;
}

const char* TaskKindName(TaskKind k) {
  switch (k) {
    case TaskKind::kSource:
      return "source";
    case TaskKind::kCompute:
      return "compute";
    case TaskKind::kSink:
      return "sink";
  }
  return "?";
}

std::optional<TaskKind> ParseTaskKind(std::string_view name) {
  for (int i = 0; i < kTaskKindCount; ++i) {
    const TaskKind k = static_cast<TaskKind>(i);
    if (name == TaskKindName(k)) {
      return k;
    }
  }
  return std::nullopt;
}

double CriticalityWeight(Criticality c) {
  // Exponential spacing: losing one safety-critical flow outweighs losing
  // every best-effort flow, matching the mixed-criticality framing.
  switch (c) {
    case Criticality::kBestEffort:
      return 1.0;
    case Criticality::kLow:
      return 4.0;
    case Criticality::kMedium:
      return 16.0;
    case Criticality::kHigh:
      return 64.0;
    case Criticality::kSafetyCritical:
      return 256.0;
  }
  return 0.0;
}

TaskId Dataflow::AddTask(TaskSpec spec) {
  spec.id = TaskId(static_cast<uint32_t>(tasks_.size()));
  tasks_.push_back(std::move(spec));
  InvalidateCaches();
  return tasks_.back().id;
}

TaskId Dataflow::AddSource(std::string name, SimDuration wcet, NodeId pinned, Criticality crit) {
  TaskSpec spec;
  spec.name = std::move(name);
  spec.kind = TaskKind::kSource;
  spec.wcet = wcet;
  spec.pinned_node = pinned;
  spec.criticality = crit;
  return AddTask(std::move(spec));
}

TaskId Dataflow::AddCompute(std::string name, SimDuration wcet, uint32_t state_bytes,
                            Criticality crit) {
  TaskSpec spec;
  spec.name = std::move(name);
  spec.kind = TaskKind::kCompute;
  spec.wcet = wcet;
  spec.state_bytes = state_bytes;
  spec.criticality = crit;
  return AddTask(std::move(spec));
}

TaskId Dataflow::AddSink(std::string name, SimDuration wcet, NodeId pinned, Criticality crit,
                         SimDuration relative_deadline) {
  TaskSpec spec;
  spec.name = std::move(name);
  spec.kind = TaskKind::kSink;
  spec.wcet = wcet;
  spec.pinned_node = pinned;
  spec.criticality = crit;
  spec.relative_deadline = relative_deadline;
  return AddTask(std::move(spec));
}

TaskId Dataflow::FindTask(const std::string& name) const {
  for (const TaskSpec& t : tasks_) {
    if (t.name == name) {
      return t.id;
    }
  }
  return TaskId::Invalid();
}

void Dataflow::Connect(TaskId from, TaskId to, uint32_t message_bytes) {
  assert(from.valid() && from.value() < tasks_.size());
  assert(to.valid() && to.value() < tasks_.size());
  channels_.push_back(ChannelSpec{from, to, message_bytes});
  InvalidateCaches();
}

void Dataflow::InvalidateCaches() { caches_valid_ = false; }

void Dataflow::BuildCaches() const {
  if (caches_valid_) {
    return;
  }
  inputs_.assign(tasks_.size(), {});
  outputs_.assign(tasks_.size(), {});
  for (const ChannelSpec& ch : channels_) {
    outputs_[ch.from.value()].push_back(ch);
    inputs_[ch.to.value()].push_back(ch);
  }
  // Kahn topological sort; deterministic because ready tasks pop in id order.
  topo_order_.clear();
  std::vector<size_t> in_degree(tasks_.size(), 0);
  for (const ChannelSpec& ch : channels_) {
    ++in_degree[ch.to.value()];
  }
  std::deque<TaskId> ready;
  for (const TaskSpec& t : tasks_) {
    if (in_degree[t.id.value()] == 0) {
      ready.push_back(t.id);
    }
  }
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    topo_order_.push_back(id);
    for (const ChannelSpec& ch : outputs_[id.value()]) {
      if (--in_degree[ch.to.value()] == 0) {
        ready.push_back(ch.to);
      }
    }
  }
  caches_valid_ = true;
}

const std::vector<ChannelSpec>& Dataflow::Inputs(TaskId id) const {
  BuildCaches();
  return inputs_[id.value()];
}

const std::vector<ChannelSpec>& Dataflow::Outputs(TaskId id) const {
  BuildCaches();
  return outputs_[id.value()];
}

std::vector<TaskId> Dataflow::SourceIds() const {
  std::vector<TaskId> out;
  for (const TaskSpec& t : tasks_) {
    if (t.kind == TaskKind::kSource) {
      out.push_back(t.id);
    }
  }
  return out;
}

std::vector<TaskId> Dataflow::SinkIds() const {
  std::vector<TaskId> out;
  for (const TaskSpec& t : tasks_) {
    if (t.kind == TaskKind::kSink) {
      out.push_back(t.id);
    }
  }
  return out;
}

std::vector<TaskId> Dataflow::ComputeIds() const {
  std::vector<TaskId> out;
  for (const TaskSpec& t : tasks_) {
    if (t.kind == TaskKind::kCompute) {
      out.push_back(t.id);
    }
  }
  return out;
}

const std::vector<TaskId>& Dataflow::TopologicalOrder() const {
  BuildCaches();
  return topo_order_;
}

std::vector<TaskId> Dataflow::AncestorsOf(TaskId sink) const {
  BuildCaches();
  std::vector<bool> seen(tasks_.size(), false);
  std::deque<TaskId> frontier{sink};
  std::vector<TaskId> out;
  while (!frontier.empty()) {
    const TaskId cur = frontier.front();
    frontier.pop_front();
    for (const ChannelSpec& ch : inputs_[cur.value()]) {
      if (!seen[ch.from.value()]) {
        seen[ch.from.value()] = true;
        out.push_back(ch.from);
        frontier.push_back(ch.from);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<bool> Dataflow::ReachesSinkMask(const std::vector<TaskId>& sinks) const {
  BuildCaches();
  std::vector<bool> mask(tasks_.size(), false);
  std::deque<TaskId> frontier;
  for (TaskId s : sinks) {
    if (!mask[s.value()]) {
      mask[s.value()] = true;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const TaskId cur = frontier.front();
    frontier.pop_front();
    for (const ChannelSpec& ch : inputs_[cur.value()]) {
      if (!mask[ch.from.value()]) {
        mask[ch.from.value()] = true;
        frontier.push_back(ch.from);
      }
    }
  }
  return mask;
}

SimDuration Dataflow::TotalWcet() const {
  SimDuration sum = 0;
  for (const TaskSpec& t : tasks_) {
    sum += t.wcet;
  }
  return sum;
}

Status Dataflow::Validate() const {
  if (period_ <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  if (tasks_.empty()) {
    return Status::InvalidArgument("workload has no tasks");
  }
  BuildCaches();
  if (topo_order_.size() != tasks_.size()) {
    return Status::InvalidArgument("dataflow graph has a cycle");
  }
  for (const TaskSpec& t : tasks_) {
    if (t.wcet <= 0) {
      return Status::InvalidArgument(t.name + ": wcet must be positive");
    }
    switch (t.kind) {
      case TaskKind::kSource:
        if (!inputs_[t.id.value()].empty()) {
          return Status::InvalidArgument(t.name + ": source has inputs");
        }
        if (outputs_[t.id.value()].empty()) {
          return Status::InvalidArgument(t.name + ": source has no outputs");
        }
        if (!t.pinned_node.valid()) {
          return Status::InvalidArgument(t.name + ": source not pinned to a node");
        }
        break;
      case TaskKind::kSink:
        if (!outputs_[t.id.value()].empty()) {
          return Status::InvalidArgument(t.name + ": sink has outputs");
        }
        if (inputs_[t.id.value()].empty()) {
          return Status::InvalidArgument(t.name + ": sink has no inputs");
        }
        if (!t.pinned_node.valid()) {
          return Status::InvalidArgument(t.name + ": sink not pinned to a node");
        }
        if (t.relative_deadline <= 0 || t.relative_deadline > period_) {
          return Status::InvalidArgument(t.name + ": sink deadline must be in (0, period]");
        }
        break;
      case TaskKind::kCompute:
        if (inputs_[t.id.value()].empty() || outputs_[t.id.value()].empty()) {
          return Status::InvalidArgument(t.name + ": compute task must have inputs and outputs");
        }
        if (t.pinned_node.valid()) {
          return Status::InvalidArgument(t.name + ": compute tasks must not be pinned");
        }
        break;
    }
  }
  for (const ChannelSpec& ch : channels_) {
    if (ch.message_bytes == 0) {
      return Status::InvalidArgument("channel with zero message bytes");
    }
  }
  return Status::Ok();
}

}  // namespace btr
