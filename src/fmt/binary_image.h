// Container layout for v4 binary strategy images ("BTRIMG4").
//
// An image is a single contiguous byte buffer designed to be mapped and
// used in place: a fixed header, a section table of relative offsets, the
// section payloads at 8-byte alignment, and a fingerprint trailer that
// seals the whole buffer. Nothing in the layout is position-dependent, so
// the same bytes are valid on disk, in an mmap, or inside a network
// message.
//
//   offset 0    magic "BTRIMG4\n" (8 bytes)
//   offset 8    u8 kind (1 = blob, 2 = slice, 3 = patch), 3 zero pad bytes
//   offset 12   u32 section count (always 7)
//   offset 16   u64 image size in bytes
//   offset 24   section table: 7 entries of {u32 id, u32 zero, u64 offset,
//               u64 size}, ids strictly ascending
//   offset 192  section payloads, each at an 8-byte-aligned offset with
//               zero padding between; the TRAILER section ends exactly at
//               image size
//
// The TRAILER's final 8 bytes are HashBytes over [0, image_size - 8), so
// any flipped bit anywhere in the image — header, table, padding, payload —
// breaks the seal. Validation here is purely structural (bounds, alignment,
// contiguity, seal); section payload grammar belongs to strategy_binary.cc.

#ifndef BTR_SRC_FMT_BINARY_IMAGE_H_
#define BTR_SRC_FMT_BINARY_IMAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/fmt/varint.h"

namespace btr {
namespace fmt {

inline constexpr std::string_view kImageMagic = "BTRIMG4\n";

inline constexpr uint8_t kKindBlob = 1;
inline constexpr uint8_t kKindSlice = 2;
inline constexpr uint8_t kKindPatch = 3;

// Section ids, in the order they appear in every image.
inline constexpr uint32_t kSecMeta = 1;     // dims, node/sfp, patch header fields
inline constexpr uint32_t kSecStrDict = 2;  // deduped strings (U texts, ...)
inline constexpr uint32_t kSecTabDict = 3;  // deduped schedule-table row groups
inline constexpr uint32_t kSecBodyIdx = 4;  // fixed-width (offset, size) per body
inline constexpr uint32_t kSecBodies = 5;   // body payloads, raw or delta
inline constexpr uint32_t kSecModes = 6;    // mode table (fault sets -> body refs)
inline constexpr uint32_t kSecTrailer = 7;  // provenance + fingerprint seal

inline constexpr uint32_t kSectionCount = 7;
inline constexpr size_t kSectionEntryBytes = 24;
inline constexpr size_t kHeaderBytes = 24 + kSectionCount * kSectionEntryBytes;  // 192

// Fast sniff: does this buffer claim to be a v4 image? (Magic only; callers
// still validate before trusting anything else.)
inline bool LooksLikeImage(std::string_view data) {
  return data.size() >= kImageMagic.size() &&
         data.substr(0, kImageMagic.size()) == kImageMagic;
}

// Parsed section table of a structurally valid image. Views point into the
// validated buffer.
struct ImageIndex {
  uint8_t kind = 0;
  std::string_view sections[kSectionCount];  // indexed by id - 1

  std::string_view section(uint32_t id) const { return sections[id - 1]; }
};

// Structural validation: magic, kind, exact section count, table bounds,
// ascending ids, 8-byte alignment, contiguity with zero padding, trailer
// placed last and ending at image size, and the fingerprint seal over
// everything before the final 8 bytes. Returns views into `data`.
inline StatusOr<ImageIndex> IndexImage(std::string_view data) {
  const auto bad = [](const std::string& why) {
    return Status::InvalidArgument("strategy image: " + why);
  };
  if (!LooksLikeImage(data)) {
    return bad("bad magic");
  }
  if (data.size() < kHeaderBytes + 8) {
    return bad("truncated header");
  }
  ByteReader reader(data.substr(kImageMagic.size()));
  uint32_t kind_word = 0;
  uint32_t section_count = 0;
  uint64_t image_size = 0;
  if (!reader.ReadFixed32(&kind_word) || !reader.ReadFixed32(&section_count) ||
      !reader.ReadFixed64(&image_size)) {
    return bad("truncated header");
  }
  const uint8_t kind = static_cast<uint8_t>(kind_word & 0xFF);
  if ((kind_word >> 8) != 0) {
    return bad("nonzero header padding");
  }
  if (kind != kKindBlob && kind != kKindSlice && kind != kKindPatch) {
    return bad("unknown image kind");
  }
  if (section_count != kSectionCount) {
    return bad("unexpected section count");
  }
  if (image_size != data.size()) {
    return bad("image size mismatch");
  }

  ImageIndex index;
  index.kind = kind;
  uint64_t cursor = kHeaderBytes;  // end of the last section seen so far
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    uint32_t id = 0;
    uint32_t zero = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
    if (!reader.ReadFixed32(&id) || !reader.ReadFixed32(&zero) ||
        !reader.ReadFixed64(&offset) || !reader.ReadFixed64(&size)) {
      return bad("truncated section table");
    }
    if (id != i + 1 || zero != 0) {
      return bad("bad section table entry");
    }
    if (offset % 8 != 0 || offset < cursor || offset > data.size() ||
        size > data.size() - offset) {
      return bad("section out of bounds");
    }
    if (offset - cursor >= 8) {
      return bad("oversized section gap");
    }
    for (uint64_t p = cursor; p < offset; ++p) {
      if (data[p] != '\0') {
        return bad("nonzero section padding");
      }
    }
    index.sections[i] = data.substr(offset, size);
    cursor = offset + size;
  }
  if (cursor != data.size()) {
    return bad("trailing bytes after last section");
  }
  const std::string_view trailer = index.section(kSecTrailer);
  if (trailer.size() < 8) {
    return bad("trailer too small");
  }
  uint64_t sealed_fp = 0;
  ByteReader seal_reader(trailer.substr(trailer.size() - 8));
  seal_reader.ReadFixed64(&sealed_fp);
  if (HashBytes(data.data(), data.size() - 8) != sealed_fp) {
    return bad("fingerprint seal mismatch");
  }
  return index;
}

// Assembles an image from section payloads (indexed by id - 1), appending
// alignment padding, patching the size field, and computing the seal. The
// TRAILER payload must already reserve its final 8 bytes (zeros) for the
// seal.
inline std::string SealImage(uint8_t kind, const std::string (&payloads)[kSectionCount]) {
  std::string out(kImageMagic);
  AppendFixed32(&out, kind);
  AppendFixed32(&out, kSectionCount);
  AppendFixed64(&out, 0);  // image size, patched below

  // Lay out payload offsets first so the table can be written in one pass.
  uint64_t offsets[kSectionCount];
  uint64_t cursor = kHeaderBytes;
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    cursor = (cursor + 7) & ~uint64_t{7};
    offsets[i] = cursor;
    cursor += payloads[i].size();
  }
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    AppendFixed32(&out, i + 1);
    AppendFixed32(&out, 0);
    AppendFixed64(&out, offsets[i]);
    AppendFixed64(&out, payloads[i].size());
  }
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    out.resize(offsets[i], '\0');
    out += payloads[i];
  }

  // Patch image size, then seal.
  const uint64_t image_size = out.size();
  std::string size_bytes;
  AppendFixed64(&size_bytes, image_size);
  out.replace(16, 8, size_bytes);
  const uint64_t seal = HashBytes(out.data(), out.size() - 8);
  std::string seal_bytes;
  AppendFixed64(&seal_bytes, seal);
  out.replace(out.size() - 8, 8, seal_bytes);
  return out;
}

}  // namespace fmt
}  // namespace btr

#endif  // BTR_SRC_FMT_BINARY_IMAGE_H_
