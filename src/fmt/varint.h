// Byte-level primitives for the v4 binary strategy image: LEB128 varints
// and explicit little-endian fixed-width fields, written into std::string
// buffers and read back through a bounds-checked cursor.
//
// Every integer a v4 image carries is either a varint (counts, ids, table
// rows — values the delta encoder makes small) or a fixed64 (fingerprints,
// which are uniformly random and gain nothing from packing). Varints are
// canonical: the encoder emits the minimal length and the reader rejects
// padded encodings, so a given value has exactly one byte sequence — the
// same one-encoding discipline the text formats enforce line by line, and
// what makes encode(decode(image)) byte-identical.
//
// Byte order is explicit (shift-and-mask, never memcpy of host integers),
// so images are portable across endianness and the on-disk bytes are a
// pure function of the values.

#ifndef BTR_SRC_FMT_VARINT_H_
#define BTR_SRC_FMT_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace btr {
namespace fmt {

inline void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<unsigned char>(value)));
}

inline void AppendFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(value >> (8 * i))));
  }
}

inline void AppendFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<unsigned char>(value >> (8 * i))));
  }
}

// Bounds-checked forward reader over an image span. Every accessor returns
// false instead of reading past the end, so a truncated or forged image can
// never walk the cursor out of the buffer — callers turn false into their
// format's Status error.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  // Canonical LEB128: minimal length, at most 10 bytes, no 64-bit overflow.
  bool ReadVarint(uint64_t* value) {
    uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
      if (pos_ >= data_.size()) {
        return false;
      }
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (i == 9 && byte > 1) {
        return false;  // would overflow 64 bits
      }
      v |= static_cast<uint64_t>(byte & 0x7F) << (7 * i);
      if ((byte & 0x80) == 0) {
        if (i > 0 && byte == 0) {
          return false;  // padded (non-minimal) encoding
        }
        *value = v;
        return true;
      }
    }
    return false;  // continuation bit on the 10th byte
  }

  bool ReadFixed64(uint64_t* value) {
    if (remaining() < 8) {
      return false;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    *value = v;
    return true;
  }

  bool ReadFixed32(uint32_t* value) {
    if (remaining() < 4) {
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    *value = v;
    return true;
  }

  bool ReadBytes(size_t len, std::string_view* out) {
    if (remaining() < len) {
      return false;
    }
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace fmt
}  // namespace btr

#endif  // BTR_SRC_FMT_VARINT_H_
