#include "src/fmt/strategy_binary.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/core/strategy_io.h"
#include "src/core/strategy_parts_internal.h"
#include "src/core/strategy_text_internal.h"
#include "src/fmt/varint.h"

namespace btr {
namespace fmt {
namespace {

using strategy_text::BodyDims;
using strategy_text::Parts;
using strategy_text::PlausibleFloatField;
using strategy_text::ValidFaultNodeList;

Status BadImage(const std::string& why) {
  return Status::InvalidArgument("strategy image: " + why);
}
Status BadEncode(const std::string& why) {
  return Status::InvalidArgument("v4 encode: " + why);
}

// Body payload flags: which sections are delta-coded against the parent.
constexpr uint64_t kFlagDeltaP = 1;
constexpr uint64_t kFlagDeltaT = 2;
constexpr uint64_t kFlagDeltaB = 4;
constexpr uint64_t kFlagMask = 7;

// Dimensions, body counts, and mode counts all describe one target graph;
// anything above this is a forged header.
constexpr uint64_t kDimLimit = uint64_t{1} << 32;

struct PRow {
  uint64_t aug = 0;
  uint64_t node = 0;
  uint64_t start = 0;
  bool operator==(const PRow&) const = default;
};

using TableRow = std::array<uint64_t, 3>;  // job, start, duration
using Pair = std::pair<uint64_t, uint64_t>;

// A body's records in dictionary-referenced form: the U text and each run
// of same-node T rows live in the shared dictionaries; everything else is
// the integer rows themselves, in file order.
struct BodyRecords {
  uint64_t u_ref = 0;
  std::vector<PRow> p;
  std::vector<uint64_t> s;
  std::vector<Pair> t;  // (node, table dict ref), one per run of T rows
  std::vector<Pair> b;  // (edge idx, budget)
};

// Patch images carry BCOPY references alongside BNEW record bodies.
struct DecodedBody {
  bool copy = false;
  uint64_t old_id = 0;
  BodyRecords records;
};

struct Dicts {
  std::vector<std::string> strings;
  std::vector<std::vector<TableRow>> tables;
};

struct DictBuilder {
  Dicts dicts;
  std::map<std::string, uint64_t> string_ids;
  std::map<std::vector<TableRow>, uint64_t> table_ids;

  uint64_t StringRef(std::string s) {
    auto [it, inserted] = string_ids.try_emplace(std::move(s), dicts.strings.size());
    if (inserted) {
      dicts.strings.push_back(it->first);
    }
    return it->second;
  }
  uint64_t TableRef(std::vector<TableRow> rows) {
    auto [it, inserted] = table_ids.try_emplace(std::move(rows), dicts.tables.size());
    if (inserted) {
      dicts.tables.push_back(it->first);
    }
    return it->second;
  }
};

bool StrictlyAscendingByAug(const std::vector<PRow>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i].aug <= v[i - 1].aug) {
      return false;
    }
  }
  return true;
}

bool StrictlyAscendingByKey(const std::vector<Pair>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i].first <= v[i - 1].first) {
      return false;
    }
  }
  return true;
}

// ---- body chunk <-> records ---------------------------------------------

// Parses a validated canonical body chunk (U, P*, S*, T*, B*, END — the
// writer's record order) into dictionary-referenced records. Rejects any
// other record ordering: the delta coder relies on the canonical shape,
// and non-canonical chunks never come out of SaveStrategy / ExtractSlice.
Status ParseChunk(const std::string& chunk, const BodyDims& dims, DictBuilder* dicts,
                  BodyRecords* out) {
  strategy_text::LineScanner scan(chunk);
  std::string_view line;
  int stage = 0;  // 0 = expect U, then 1 P, 2 S, 3 T, 4 B
  bool saw_end = false;
  uint64_t run_node = 0;
  std::vector<TableRow> run_rows;
  const auto flush_run = [&] {
    if (!run_rows.empty()) {
      out->t.emplace_back(run_node, dicts->TableRef(std::move(run_rows)));
      run_rows.clear();
    }
  };
  std::vector<std::string_view> f;
  while (strategy_text::NextTerminatedLine(&scan, &line)) {
    if (saw_end) {
      return BadEncode("records after END");
    }
    if (line == "END") {
      flush_run();
      saw_end = true;
      continue;
    }
    if (!strategy_text::SplitFields(line, &f)) {
      return BadEncode("bad record line");
    }
    uint64_t v0 = 0;
    uint64_t v1 = 0;
    uint64_t v2 = 0;
    uint64_t v3 = 0;
    if (f[0] == "U") {
      if (stage != 0 || f.size() != 2 || !PlausibleFloatField(f[1])) {
        return BadEncode("non-canonical U record");
      }
      out->u_ref = dicts->StringRef(std::string(f[1]));
      stage = 1;
    } else if (f[0] == "P") {
      if (stage != 1 || f.size() != 4 || !strategy_text::ParseU64(f[1], &v0) ||
          v0 >= dims.aug_count || !strategy_text::ParseU64(f[2], &v1) ||
          v1 >= dims.node_count || !strategy_text::ParseU64(f[3], &v2)) {
        return BadEncode("non-canonical P record");
      }
      out->p.push_back(PRow{v0, v1, v2});
    } else if (f[0] == "S") {
      if (stage < 1 || stage > 2 || f.size() != 2 || !strategy_text::ParseU64(f[1], &v0)) {
        return BadEncode("non-canonical S record");
      }
      out->s.push_back(v0);
      stage = 2;
    } else if (f[0] == "T") {
      if (stage < 1 || stage > 3 || f.size() != 5 || !strategy_text::ParseU64(f[1], &v0) ||
          v0 >= dims.node_count || !strategy_text::ParseU64(f[2], &v1) ||
          v1 >= dims.aug_count || !strategy_text::ParseU64(f[3], &v2) ||
          !strategy_text::ParseU64(f[4], &v3)) {
        return BadEncode("non-canonical T record");
      }
      if (!run_rows.empty() && v0 != run_node) {
        flush_run();
      }
      run_node = v0;
      run_rows.push_back(TableRow{v1, v2, v3});
      stage = 3;
    } else if (f[0] == "B") {
      if (stage < 1 || stage > 4 || f.size() != 3 || !strategy_text::ParseU64(f[1], &v0) ||
          v0 >= dims.edge_count || !strategy_text::ParseU64(f[2], &v1)) {
        return BadEncode("non-canonical B record");
      }
      if (stage != 4) {
        flush_run();
      }
      out->b.emplace_back(v0, v1);
      stage = 4;
    } else {
      return BadEncode("unknown body record");
    }
  }
  if (!saw_end || !scan.AtEnd()) {
    return BadEncode("unterminated body chunk");
  }
  if (stage == 0) {
    return BadEncode("body missing U record");
  }
  return Status::Ok();
}

// Renders records back to the canonical chunk text — the exact inverse of
// ParseChunk (raw sections preserve file order; delta sections were only
// chosen for canonically sorted bodies, where sorted order IS file order).
std::string RenderChunk(const BodyRecords& rec, const Dicts& dicts) {
  std::string out = "U ";
  out += dicts.strings[rec.u_ref];
  out += '\n';
  for (const PRow& row : rec.p) {
    out += "P " + std::to_string(row.aug) + " " + std::to_string(row.node) + " " +
           std::to_string(row.start) + "\n";
  }
  for (uint64_t sink : rec.s) {
    out += "S " + std::to_string(sink) + "\n";
  }
  for (const Pair& run : rec.t) {
    const std::string node_prefix = "T " + std::to_string(run.first) + " ";
    for (const TableRow& row : dicts.tables[run.second]) {
      out += node_prefix + std::to_string(row[0]) + " " + std::to_string(row[1]) + " " +
             std::to_string(row[2]) + "\n";
    }
  }
  for (const Pair& budget : rec.b) {
    out += "B " + std::to_string(budget.first) + " " + std::to_string(budget.second) + "\n";
  }
  out += "END\n";
  return out;
}

// ---- delta coding --------------------------------------------------------

void DiffPairs(const std::vector<Pair>& parent, const std::vector<Pair>& child,
               std::vector<uint64_t>* removed, std::vector<Pair>* changed) {
  size_t i = 0;
  size_t j = 0;
  while (i < parent.size() || j < child.size()) {
    if (j == child.size() || (i < parent.size() && parent[i].first < child[j].first)) {
      removed->push_back(parent[i].first);
      ++i;
    } else if (i == parent.size() || child[j].first < parent[i].first) {
      changed->push_back(child[j]);
      ++j;
    } else {
      if (parent[i].second != child[j].second) {
        changed->push_back(child[j]);
      }
      ++i;
      ++j;
    }
  }
}

void DiffP(const std::vector<PRow>& parent, const std::vector<PRow>& child,
           std::vector<uint64_t>* removed, std::vector<PRow>* changed) {
  size_t i = 0;
  size_t j = 0;
  while (i < parent.size() || j < child.size()) {
    if (j == child.size() || (i < parent.size() && parent[i].aug < child[j].aug)) {
      removed->push_back(parent[i].aug);
      ++i;
    } else if (i == parent.size() || child[j].aug < parent[i].aug) {
      changed->push_back(child[j]);
      ++j;
    } else {
      if (!(parent[i] == child[j])) {
        changed->push_back(child[j]);
      }
      ++i;
      ++j;
    }
  }
}

// result = (parent \ removed) overridden/extended by changed, key-sorted.
// Every removed key must name a surviving parent entry, so a forged delta
// cannot silently no-op.
Status MergePairs(const std::vector<Pair>& parent, const std::vector<uint64_t>& removed,
                  const std::vector<Pair>& changed, std::vector<Pair>* out) {
  size_t i = 0;
  size_t r = 0;
  size_t c = 0;
  while (i < parent.size() || c < changed.size()) {
    if (c < changed.size() && (i == parent.size() || changed[c].first <= parent[i].first)) {
      if (i < parent.size() && parent[i].first == changed[c].first) {
        ++i;
      }
      out->push_back(changed[c++]);
    } else {
      if (r < removed.size() && removed[r] == parent[i].first) {
        ++r;
        ++i;
        continue;
      }
      out->push_back(parent[i++]);
    }
  }
  if (r != removed.size()) {
    return BadImage("delta removes unknown key");
  }
  return Status::Ok();
}

Status MergeP(const std::vector<PRow>& parent, const std::vector<uint64_t>& removed,
              const std::vector<PRow>& changed, std::vector<PRow>* out) {
  size_t i = 0;
  size_t r = 0;
  size_t c = 0;
  while (i < parent.size() || c < changed.size()) {
    if (c < changed.size() && (i == parent.size() || changed[c].aug <= parent[i].aug)) {
      if (i < parent.size() && parent[i].aug == changed[c].aug) {
        ++i;
      }
      out->push_back(changed[c++]);
    } else {
      if (r < removed.size() && removed[r] == parent[i].aug) {
        ++r;
        ++i;
        continue;
      }
      out->push_back(parent[i++]);
    }
  }
  if (r != removed.size()) {
    return BadImage("delta removes unknown key");
  }
  return Status::Ok();
}

// ---- body payload encode -------------------------------------------------

std::string EncodeRawP(const std::vector<PRow>& rows) {
  std::string out;
  AppendVarint(&out, rows.size());
  for (const PRow& row : rows) {
    AppendVarint(&out, row.aug);
    AppendVarint(&out, row.node);
    AppendVarint(&out, row.start);
  }
  return out;
}

std::string EncodeDeltaP(const std::vector<uint64_t>& removed, const std::vector<PRow>& changed) {
  std::string out;
  AppendVarint(&out, removed.size());
  for (uint64_t aug : removed) {
    AppendVarint(&out, aug);
  }
  AppendVarint(&out, changed.size());
  for (const PRow& row : changed) {
    AppendVarint(&out, row.aug);
    AppendVarint(&out, row.node);
    AppendVarint(&out, row.start);
  }
  return out;
}

std::string EncodeRawPairs(const std::vector<Pair>& pairs) {
  std::string out;
  AppendVarint(&out, pairs.size());
  for (const Pair& p : pairs) {
    AppendVarint(&out, p.first);
    AppendVarint(&out, p.second);
  }
  return out;
}

std::string EncodeDeltaPairs(const std::vector<uint64_t>& removed,
                             const std::vector<Pair>& changed) {
  std::string out;
  AppendVarint(&out, removed.size());
  for (uint64_t key : removed) {
    AppendVarint(&out, key);
  }
  AppendVarint(&out, changed.size());
  for (const Pair& p : changed) {
    AppendVarint(&out, p.first);
    AppendVarint(&out, p.second);
  }
  return out;
}

// Encodes one body, delta-coding each section against the parent when the
// parent exists, both sides are canonically sorted, and the delta is
// actually smaller — a pure size race, so degenerate edits never regress
// past the raw encoding.
std::string EncodeBodyPayload(const BodyRecords& rec, const BodyRecords* parent,
                              uint64_t parent_id) {
  std::string p_sec = EncodeRawP(rec.p);
  std::string t_sec = EncodeRawPairs(rec.t);
  std::string b_sec = EncodeRawPairs(rec.b);
  uint64_t flags = 0;
  if (parent != nullptr) {
    if (StrictlyAscendingByAug(parent->p) && StrictlyAscendingByAug(rec.p)) {
      std::vector<uint64_t> removed;
      std::vector<PRow> changed;
      DiffP(parent->p, rec.p, &removed, &changed);
      std::string delta = EncodeDeltaP(removed, changed);
      if (delta.size() < p_sec.size()) {
        p_sec = std::move(delta);
        flags |= kFlagDeltaP;
      }
    }
    if (StrictlyAscendingByKey(parent->t) && StrictlyAscendingByKey(rec.t)) {
      std::vector<uint64_t> removed;
      std::vector<Pair> changed;
      DiffPairs(parent->t, rec.t, &removed, &changed);
      std::string delta = EncodeDeltaPairs(removed, changed);
      if (delta.size() < t_sec.size()) {
        t_sec = std::move(delta);
        flags |= kFlagDeltaT;
      }
    }
    if (StrictlyAscendingByKey(parent->b) && StrictlyAscendingByKey(rec.b)) {
      std::vector<uint64_t> removed;
      std::vector<Pair> changed;
      DiffPairs(parent->b, rec.b, &removed, &changed);
      std::string delta = EncodeDeltaPairs(removed, changed);
      if (delta.size() < b_sec.size()) {
        b_sec = std::move(delta);
        flags |= kFlagDeltaB;
      }
    }
  }
  std::string out;
  AppendVarint(&out, flags);
  if (flags != 0) {
    AppendVarint(&out, parent_id);
  }
  AppendVarint(&out, rec.u_ref);
  out += p_sec;
  AppendVarint(&out, rec.s.size());
  for (uint64_t sink : rec.s) {
    AppendVarint(&out, sink);
  }
  out += t_sec;
  out += b_sec;
  return out;
}

// ---- body payload decode -------------------------------------------------

using ParentLookup = std::function<const BodyRecords*(uint64_t)>;

Status DecodePairSection(ByteReader* r, bool is_delta, const std::vector<Pair>* parent,
                         uint64_t key_limit, const std::vector<std::vector<TableRow>>* ref_tables,
                         std::vector<Pair>* out) {
  const auto valid_value = [&](uint64_t v) {
    return ref_tables == nullptr || v < ref_tables->size();
  };
  uint64_t n = 0;
  if (is_delta) {
    std::vector<uint64_t> removed;
    std::vector<Pair> changed;
    if (!r->ReadVarint(&n)) {
      return BadImage("truncated body payload");
    }
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t key = 0;
      if (!r->ReadVarint(&key)) {
        return BadImage("truncated body payload");
      }
      if (key >= key_limit || (!removed.empty() && key <= removed.back())) {
        return BadImage("bad delta removal");
      }
      removed.push_back(key);
    }
    if (!r->ReadVarint(&n)) {
      return BadImage("truncated body payload");
    }
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t key = 0;
      uint64_t value = 0;
      if (!r->ReadVarint(&key) || !r->ReadVarint(&value)) {
        return BadImage("truncated body payload");
      }
      if (key >= key_limit || !valid_value(value) ||
          (!changed.empty() && key <= changed.back().first)) {
        return BadImage("bad delta entry");
      }
      changed.emplace_back(key, value);
    }
    if (!StrictlyAscendingByKey(*parent)) {
      return BadImage("delta parent not canonical");
    }
    return MergePairs(*parent, removed, changed, out);
  }
  if (!r->ReadVarint(&n)) {
    return BadImage("truncated body payload");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    uint64_t value = 0;
    if (!r->ReadVarint(&key) || !r->ReadVarint(&value)) {
      return BadImage("truncated body payload");
    }
    if (key >= key_limit || !valid_value(value)) {
      return BadImage("record out of range");
    }
    out->emplace_back(key, value);
  }
  return Status::Ok();
}

Status DecodeBodyPayload(std::string_view span, uint64_t id, const BodyDims& dims,
                         const Dicts& dicts, const ParentLookup& parent_of, BodyRecords* out) {
  ByteReader r(span);
  uint64_t flags = 0;
  if (!r.ReadVarint(&flags)) {
    return BadImage("truncated body payload");
  }
  if ((flags & ~kFlagMask) != 0) {
    return BadImage("unknown body flags");
  }
  const BodyRecords* parent = nullptr;
  if (flags != 0) {
    uint64_t pid = 0;
    if (!r.ReadVarint(&pid)) {
      return BadImage("truncated body payload");
    }
    if (pid >= id) {
      return BadImage("body parent not earlier");
    }
    parent = parent_of(pid);
    if (parent == nullptr) {
      return BadImage("body parent unavailable");
    }
  }
  if (!r.ReadVarint(&out->u_ref) || out->u_ref >= dicts.strings.size()) {
    return BadImage("utility ref out of range");
  }
  uint64_t n = 0;
  if ((flags & kFlagDeltaP) != 0) {
    std::vector<uint64_t> removed;
    std::vector<PRow> changed;
    if (!r.ReadVarint(&n)) {
      return BadImage("truncated body payload");
    }
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t aug = 0;
      if (!r.ReadVarint(&aug)) {
        return BadImage("truncated body payload");
      }
      if (aug >= dims.aug_count || (!removed.empty() && aug <= removed.back())) {
        return BadImage("bad delta removal");
      }
      removed.push_back(aug);
    }
    if (!r.ReadVarint(&n)) {
      return BadImage("truncated body payload");
    }
    for (uint64_t i = 0; i < n; ++i) {
      PRow row;
      if (!r.ReadVarint(&row.aug) || !r.ReadVarint(&row.node) || !r.ReadVarint(&row.start)) {
        return BadImage("truncated body payload");
      }
      if (row.aug >= dims.aug_count || row.node >= dims.node_count ||
          (!changed.empty() && row.aug <= changed.back().aug)) {
        return BadImage("bad delta entry");
      }
      changed.push_back(row);
    }
    if (!StrictlyAscendingByAug(parent->p)) {
      return BadImage("delta parent not canonical");
    }
    const Status merged = MergeP(parent->p, removed, changed, &out->p);
    if (!merged.ok()) {
      return merged;
    }
  } else {
    if (!r.ReadVarint(&n)) {
      return BadImage("truncated body payload");
    }
    for (uint64_t i = 0; i < n; ++i) {
      PRow row;
      if (!r.ReadVarint(&row.aug) || !r.ReadVarint(&row.node) || !r.ReadVarint(&row.start)) {
        return BadImage("truncated body payload");
      }
      if (row.aug >= dims.aug_count || row.node >= dims.node_count) {
        return BadImage("record out of range");
      }
      out->p.push_back(row);
    }
  }
  if (!r.ReadVarint(&n)) {
    return BadImage("truncated body payload");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t sink = 0;
    if (!r.ReadVarint(&sink)) {
      return BadImage("truncated body payload");
    }
    out->s.push_back(sink);
  }
  Status section = DecodePairSection(&r, (flags & kFlagDeltaT) != 0,
                                     parent != nullptr ? &parent->t : nullptr, dims.node_count,
                                     &dicts.tables, &out->t);
  if (!section.ok()) {
    return section;
  }
  section = DecodePairSection(&r, (flags & kFlagDeltaB) != 0,
                              parent != nullptr ? &parent->b : nullptr, dims.edge_count,
                              nullptr, &out->b);
  if (!section.ok()) {
    return section;
  }
  if (!r.AtEnd()) {
    return BadImage("trailing bytes in body payload");
  }
  return Status::Ok();
}

// Reads just far enough into a body payload to learn its parent reference
// (the lazy view resolves delta chains iteratively with this, so a forged
// long chain cannot recurse the stack).
StatusOr<std::optional<uint64_t>> PeekParent(std::string_view span, uint64_t id) {
  ByteReader r(span);
  uint64_t flags = 0;
  if (!r.ReadVarint(&flags)) {
    return BadImage("truncated body payload");
  }
  if ((flags & ~kFlagMask) != 0) {
    return BadImage("unknown body flags");
  }
  if (flags == 0) {
    return std::optional<uint64_t>();
  }
  uint64_t pid = 0;
  if (!r.ReadVarint(&pid)) {
    return BadImage("truncated body payload");
  }
  if (pid >= id) {
    return BadImage("body parent not earlier");
  }
  return std::optional<uint64_t>(pid);
}

// ---- wave-DAG prefix parents ---------------------------------------------

// For each body, the body referenced by the first referencing mode's fault
// set minus its last element — the level-(k-1) wave parent. Canonical mode
// order lists the parent's mode first, so the parent's file id precedes the
// child's; when it does not (or the prefix mode is absent), the body simply
// encodes raw.
std::vector<std::optional<uint64_t>> PrefixParents(
    const std::vector<std::pair<std::vector<uint32_t>, uint64_t>>& modes, size_t body_count) {
  std::map<std::vector<uint32_t>, uint64_t> ref_of;
  for (const auto& [faults, ref] : modes) {
    ref_of.try_emplace(faults, ref);
  }
  std::vector<std::optional<uint64_t>> parent(body_count);
  std::vector<bool> seen(body_count, false);
  for (const auto& [faults, ref] : modes) {
    if (ref >= body_count || seen[ref]) {
      continue;
    }
    seen[ref] = true;
    if (faults.empty()) {
      continue;
    }
    const std::vector<uint32_t> prefix(faults.begin(), faults.end() - 1);
    const auto it = ref_of.find(prefix);
    if (it != ref_of.end() && it->second < ref) {
      parent[ref] = it->second;
    }
  }
  return parent;
}

// ---- section encode / decode ---------------------------------------------

std::string EncodeStrDict(const Dicts& dicts) {
  std::string out;
  AppendVarint(&out, dicts.strings.size());
  for (const std::string& s : dicts.strings) {
    AppendVarint(&out, s.size());
    out += s;
  }
  return out;
}

Status DecodeStrDict(std::string_view section, Dicts* dicts) {
  ByteReader r(section);
  uint64_t count = 0;
  if (!r.ReadVarint(&count)) {
    return BadImage("truncated string dictionary");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    std::string_view bytes;
    if (!r.ReadVarint(&len) || !r.ReadBytes(len, &bytes)) {
      return BadImage("truncated string dictionary");
    }
    // Dictionary strings are spliced verbatim into rendered record lines,
    // so they must be single well-formed fields — no separators, no
    // injected records.
    if (!PlausibleFloatField(bytes)) {
      return BadImage("bad dictionary string");
    }
    dicts->strings.emplace_back(bytes);
  }
  if (!r.AtEnd()) {
    return BadImage("trailing bytes in string dictionary");
  }
  return Status::Ok();
}

std::string EncodeTabDict(const Dicts& dicts) {
  std::string out;
  AppendVarint(&out, dicts.tables.size());
  for (const std::vector<TableRow>& rows : dicts.tables) {
    AppendVarint(&out, rows.size());
    for (const TableRow& row : rows) {
      AppendVarint(&out, row[0]);
      AppendVarint(&out, row[1]);
      AppendVarint(&out, row[2]);
    }
  }
  return out;
}

Status DecodeTabDict(std::string_view section, uint64_t aug_count, Dicts* dicts) {
  ByteReader r(section);
  uint64_t count = 0;
  if (!r.ReadVarint(&count)) {
    return BadImage("truncated table dictionary");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0;
    if (!r.ReadVarint(&rows) || rows == 0) {
      return BadImage("bad table group");
    }
    std::vector<TableRow> group;
    for (uint64_t j = 0; j < rows; ++j) {
      TableRow row;
      if (!r.ReadVarint(&row[0]) || !r.ReadVarint(&row[1]) || !r.ReadVarint(&row[2])) {
        return BadImage("truncated table dictionary");
      }
      if (row[0] >= aug_count) {
        return BadImage("table job out of range");
      }
      group.push_back(row);
    }
    dicts->tables.push_back(std::move(group));
  }
  if (!r.AtEnd()) {
    return BadImage("trailing bytes in table dictionary");
  }
  return Status::Ok();
}

std::string EncodeModesSection(const std::vector<Parts::Mode>& modes) {
  std::string out;
  AppendVarint(&out, modes.size());
  for (const Parts::Mode& mode : modes) {
    AppendVarint(&out, mode.fault_nodes.size());
    for (uint32_t node : mode.fault_nodes) {
      AppendVarint(&out, node);
    }
    AppendVarint(&out, mode.ref);
  }
  return out;
}

Status DecodeFaultList(ByteReader* r, uint64_t node_count, std::vector<uint32_t>* out) {
  uint64_t k = 0;
  if (!r->ReadVarint(&k)) {
    return BadImage("truncated mode section");
  }
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t node = 0;
    if (!r->ReadVarint(&node)) {
      return BadImage("truncated mode section");
    }
    if (node >= node_count) {
      return BadImage("fault node out of range");
    }
    out->push_back(static_cast<uint32_t>(node));
  }
  if (!ValidFaultNodeList(*out, node_count)) {
    return BadImage("bad fault node list");
  }
  return Status::Ok();
}

Status DecodeModesSection(std::string_view section, uint64_t node_count, uint64_t body_count,
                          std::vector<Parts::Mode>* out) {
  ByteReader r(section);
  uint64_t count = 0;
  if (!r.ReadVarint(&count)) {
    return BadImage("truncated mode section");
  }
  if (count >= kDimLimit) {
    return BadImage("dimension out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    Parts::Mode mode;
    const Status faults = DecodeFaultList(&r, node_count, &mode.fault_nodes);
    if (!faults.ok()) {
      return faults;
    }
    if (!r.ReadVarint(&mode.ref)) {
      return BadImage("truncated mode section");
    }
    if (mode.ref >= body_count) {
      return BadImage("mode ref out of range");
    }
    out->push_back(std::move(mode));
  }
  if (!r.AtEnd()) {
    return BadImage("trailing bytes in mode section");
  }
  return Status::Ok();
}

std::string EncodePatchModesSection(const StrategyPatch& patch) {
  std::string out;
  AppendVarint(&out, patch.sets.size());
  for (const StrategyPatch::ModeRef& set : patch.sets) {
    AppendVarint(&out, set.fault_nodes.size());
    for (uint32_t node : set.fault_nodes) {
      AppendVarint(&out, node);
    }
    AppendVarint(&out, set.ref);
  }
  AppendVarint(&out, patch.dels.size());
  for (const std::vector<uint32_t>& del : patch.dels) {
    AppendVarint(&out, del.size());
    for (uint32_t node : del) {
      AppendVarint(&out, node);
    }
  }
  return out;
}

Status DecodePatchModesSection(std::string_view section, uint64_t node_count,
                               uint64_t body_count, std::vector<StrategyPatch::ModeRef>* sets,
                               std::vector<std::vector<uint32_t>>* dels) {
  ByteReader r(section);
  uint64_t count = 0;
  if (!r.ReadVarint(&count)) {
    return BadImage("truncated mode section");
  }
  if (count >= kDimLimit) {
    return BadImage("dimension out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    StrategyPatch::ModeRef set;
    const Status faults = DecodeFaultList(&r, node_count, &set.fault_nodes);
    if (!faults.ok()) {
      return faults;
    }
    uint64_t ref = 0;
    if (!r.ReadVarint(&ref)) {
      return BadImage("truncated mode section");
    }
    if (ref >= body_count) {
      return BadImage("mode ref out of range");
    }
    set.ref = static_cast<uint32_t>(ref);
    sets->push_back(std::move(set));
  }
  if (!r.ReadVarint(&count)) {
    return BadImage("truncated mode section");
  }
  if (count >= kDimLimit) {
    return BadImage("dimension out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<uint32_t> del;
    const Status faults = DecodeFaultList(&r, node_count, &del);
    if (!faults.ok()) {
      return faults;
    }
    dels->push_back(std::move(del));
  }
  if (!r.AtEnd()) {
    return BadImage("trailing bytes in mode section");
  }
  return Status::Ok();
}

std::string EncodeTrailerSection(bool has_prov, uint64_t max_faults, uint64_t planner_fp,
                                 uint64_t text_fp) {
  std::string out;
  AppendVarint(&out, has_prov ? 1 : 0);
  if (has_prov) {
    AppendVarint(&out, max_faults);
    AppendFixed64(&out, planner_fp);
  }
  AppendFixed64(&out, text_fp);
  out.append(8, '\0');  // image seal, patched by SealImage
  return out;
}

// ---- decoded shell -------------------------------------------------------

// Everything in an image except the body payloads: header fields, both
// dictionaries, the body index (as spans into the BODIES section), modes,
// and the trailer. Span views point into the caller's image buffer.
struct Shell {
  uint8_t kind = 0;
  BodyDims dims;
  uint64_t node = 0;  // slices
  uint64_t sfp = 0;   // slices
  uint64_t base_fp = 0;
  uint64_t target_fp = 0;
  bool sliced = false;
  uint64_t slice_node = 0;
  uint64_t old_body_count = 0;
  std::vector<uint32_t> deleted_old;
  std::vector<std::pair<uint32_t, uint64_t>> slice_fps;
  uint64_t final_mode_count = 0;
  Dicts dicts;
  std::vector<std::string_view> body_spans;
  std::vector<Parts::Mode> modes;
  std::vector<StrategyPatch::ModeRef> sets;
  std::vector<std::vector<uint32_t>> dels;
  bool has_prov = false;
  uint64_t prov_max_faults = 0;
  uint64_t prov_planner_fp = 0;
  uint64_t text_fp = 0;
};

Status DecodeMetaSection(std::string_view section, uint8_t kind, Shell* shell) {
  ByteReader r(section);
  if (!r.ReadVarint(&shell->dims.aug_count) || !r.ReadVarint(&shell->dims.node_count) ||
      !r.ReadVarint(&shell->dims.edge_count)) {
    return BadImage("truncated meta section");
  }
  if (shell->dims.aug_count >= kDimLimit || shell->dims.node_count >= kDimLimit ||
      shell->dims.edge_count >= kDimLimit) {
    return BadImage("dimension out of range");
  }
  if (kind == kKindSlice) {
    if (!r.ReadVarint(&shell->node) || !r.ReadFixed64(&shell->sfp)) {
      return BadImage("truncated meta section");
    }
    if (shell->node >= shell->dims.node_count) {
      return BadImage("slice node out of range");
    }
  } else if (kind == kKindPatch) {
    uint64_t sliced = 0;
    if (!r.ReadFixed64(&shell->base_fp) || !r.ReadFixed64(&shell->target_fp) ||
        !r.ReadVarint(&sliced) || !r.ReadVarint(&shell->slice_node) ||
        !r.ReadVarint(&shell->old_body_count)) {
      return BadImage("truncated meta section");
    }
    if (sliced > 1 || shell->old_body_count >= kDimLimit) {
      return BadImage("bad meta section");
    }
    shell->sliced = sliced == 1;
    if (shell->sliced ? shell->slice_node >= shell->dims.node_count : shell->slice_node != 0) {
      return BadImage("slice node out of range");
    }
    uint64_t count = 0;
    if (!r.ReadVarint(&count) || count >= kDimLimit) {
      return BadImage("bad meta section");
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      if (!r.ReadVarint(&id)) {
        return BadImage("truncated meta section");
      }
      if (id >= shell->old_body_count ||
          (!shell->deleted_old.empty() && id <= shell->deleted_old.back())) {
        return BadImage("bad deleted body id");
      }
      shell->deleted_old.push_back(static_cast<uint32_t>(id));
    }
    if (!r.ReadVarint(&count) || count >= kDimLimit) {
      return BadImage("bad meta section");
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t node = 0;
      uint64_t fp = 0;
      if (!r.ReadVarint(&node) || !r.ReadFixed64(&fp)) {
        return BadImage("truncated meta section");
      }
      if (node >= shell->dims.node_count ||
          (!shell->slice_fps.empty() && node <= shell->slice_fps.back().first)) {
        return BadImage("bad slice fingerprint entry");
      }
      shell->slice_fps.emplace_back(static_cast<uint32_t>(node), fp);
    }
    if (!r.ReadVarint(&shell->final_mode_count) || shell->final_mode_count >= kDimLimit) {
      return BadImage("bad meta section");
    }
  }
  if (!r.AtEnd()) {
    return BadImage("trailing bytes in meta section");
  }
  return Status::Ok();
}

Status DecodeBodyIndex(std::string_view index_section, std::string_view bodies_section,
                       std::vector<std::string_view>* spans) {
  if (index_section.size() % 8 != 0) {
    return BadImage("bad body index size");
  }
  ByteReader r(index_section);
  uint64_t cursor = 0;
  while (!r.AtEnd()) {
    uint32_t offset = 0;
    uint32_t size = 0;
    r.ReadFixed32(&offset);
    r.ReadFixed32(&size);
    if (offset != cursor || size > bodies_section.size() - cursor) {
      return BadImage("body index not contiguous");
    }
    spans->push_back(bodies_section.substr(offset, size));
    cursor = offset + size;
  }
  if (cursor != bodies_section.size()) {
    return BadImage("body index does not cover bodies");
  }
  return Status::Ok();
}

Status DecodeTrailerSection(std::string_view section, Shell* shell) {
  ByteReader r(section);
  uint64_t has_prov = 0;
  if (!r.ReadVarint(&has_prov) || has_prov > 1) {
    return BadImage("bad trailer");
  }
  shell->has_prov = has_prov == 1;
  if (shell->has_prov) {
    if (!r.ReadVarint(&shell->prov_max_faults) || !r.ReadFixed64(&shell->prov_planner_fp)) {
      return BadImage("bad trailer");
    }
    if (shell->prov_max_faults >= kDimLimit) {
      return BadImage("bad trailer");
    }
  }
  uint64_t seal = 0;
  if (!r.ReadFixed64(&shell->text_fp) || !r.ReadFixed64(&seal) || !r.AtEnd()) {
    return BadImage("bad trailer");
  }
  return Status::Ok();
}

StatusOr<Shell> DecodeShell(std::string_view image) {
  const StatusOr<ImageIndex> index = IndexImage(image);
  if (!index.ok()) {
    return index.status();
  }
  Shell shell;
  shell.kind = index->kind;
  Status step = DecodeMetaSection(index->section(kSecMeta), shell.kind, &shell);
  if (!step.ok()) {
    return step;
  }
  step = DecodeStrDict(index->section(kSecStrDict), &shell.dicts);
  if (!step.ok()) {
    return step;
  }
  step = DecodeTabDict(index->section(kSecTabDict), shell.dims.aug_count, &shell.dicts);
  if (!step.ok()) {
    return step;
  }
  step = DecodeBodyIndex(index->section(kSecBodyIdx), index->section(kSecBodies),
                         &shell.body_spans);
  if (!step.ok()) {
    return step;
  }
  if (shell.body_spans.size() >= kDimLimit) {
    return BadImage("dimension out of range");
  }
  if (shell.kind == kKindPatch) {
    step = DecodePatchModesSection(index->section(kSecModes), shell.dims.node_count,
                                   shell.body_spans.size(), &shell.sets, &shell.dels);
  } else {
    step = DecodeModesSection(index->section(kSecModes), shell.dims.node_count,
                              shell.body_spans.size(), &shell.modes);
  }
  if (!step.ok()) {
    return step;
  }
  step = DecodeTrailerSection(index->section(kSecTrailer), &shell);
  if (!step.ok()) {
    return step;
  }
  return shell;
}

Status DecodePatchBody(std::string_view span, uint64_t id, const Shell& shell,
                       const ParentLookup& parent_of, DecodedBody* out) {
  ByteReader r(span);
  uint64_t copy = 0;
  if (!r.ReadVarint(&copy) || copy > 1) {
    return BadImage("bad body payload");
  }
  if (copy == 1) {
    out->copy = true;
    if (!r.ReadVarint(&out->old_id) || out->old_id >= shell.old_body_count || !r.AtEnd()) {
      return BadImage("bad body copy reference");
    }
    return Status::Ok();
  }
  return DecodeBodyPayload(span.substr(r.pos()), id, shell.dims, shell.dicts, parent_of,
                           &out->records);
}

// Forward pass over every body payload in id order (parents always resolve
// into already-decoded bodies). This is both the full decoder and the
// validate-only walk.
StatusOr<std::vector<DecodedBody>> DecodeAllBodies(const Shell& shell) {
  std::vector<DecodedBody> bodies(shell.body_spans.size());
  for (uint64_t id = 0; id < shell.body_spans.size(); ++id) {
    const ParentLookup parent_of = [&bodies, id](uint64_t pid) -> const BodyRecords* {
      if (pid >= id || bodies[pid].copy) {
        return nullptr;
      }
      return &bodies[pid].records;
    };
    Status decoded;
    if (shell.kind == kKindPatch) {
      decoded = DecodePatchBody(shell.body_spans[id], id, shell, parent_of, &bodies[id]);
    } else {
      decoded = DecodeBodyPayload(shell.body_spans[id], id, shell.dims, shell.dicts, parent_of,
                                  &bodies[id].records);
    }
    if (!decoded.ok()) {
      return decoded;
    }
  }
  return bodies;
}

StatusOr<std::string> RenderShellText(const Shell& shell, const std::vector<DecodedBody>& bodies) {
  std::vector<std::string> chunks;
  chunks.reserve(bodies.size());
  for (const DecodedBody& body : bodies) {
    chunks.push_back(RenderChunk(body.records, shell.dicts));
  }
  std::string text;
  if (shell.kind == kKindSlice) {
    std::vector<const std::string*> chunk_ptrs;
    chunk_ptrs.reserve(chunks.size());
    for (const std::string& chunk : chunks) {
      chunk_ptrs.push_back(&chunk);
    }
    text = strategy_text::RenderSliceText(shell.node, shell.dims.aug_count,
                                          shell.dims.node_count, shell.dims.edge_count,
                                          shell.has_prov, shell.prov_max_faults,
                                          shell.prov_planner_fp, shell.sfp, chunk_ptrs,
                                          shell.modes);
  } else {
    Parts parts;
    parts.is_slice = false;
    parts.aug_count = shell.dims.aug_count;
    parts.node_count = shell.dims.node_count;
    parts.edge_count = shell.dims.edge_count;
    parts.has_prov = shell.has_prov;
    parts.prov_max_faults = shell.prov_max_faults;
    parts.prov_planner_fp = shell.prov_planner_fp;
    parts.bodies = std::move(chunks);
    parts.modes = shell.modes;
    text = strategy_text::RenderBlobText(parts);
  }
  if (HashString(text) != shell.text_fp) {
    return BadImage("decoded text fingerprint mismatch");
  }
  return text;
}

}  // namespace

// ---- public API ----------------------------------------------------------

StatusOr<std::string> EncodeStrategyImage(const std::string& text) {
  const StatusOr<Parts> parts_or = strategy_text::ParseParts(text);
  if (!parts_or.ok()) {
    return parts_or.status();
  }
  const Parts& parts = *parts_or;
  const BodyDims dims{parts.aug_count, parts.node_count, parts.edge_count};
  DictBuilder dicts;
  std::vector<BodyRecords> records(parts.bodies.size());
  for (size_t id = 0; id < parts.bodies.size(); ++id) {
    const Status chunk = ParseChunk(parts.bodies[id], dims, &dicts, &records[id]);
    if (!chunk.ok()) {
      return chunk;
    }
  }
  std::vector<std::pair<std::vector<uint32_t>, uint64_t>> mode_pairs;
  mode_pairs.reserve(parts.modes.size());
  for (const Parts::Mode& mode : parts.modes) {
    mode_pairs.emplace_back(mode.fault_nodes, mode.ref);
  }
  const std::vector<std::optional<uint64_t>> parents =
      PrefixParents(mode_pairs, records.size());

  std::string bodies_section;
  std::string index_section;
  for (size_t id = 0; id < records.size(); ++id) {
    const BodyRecords* parent =
        parents[id].has_value() ? &records[*parents[id]] : nullptr;
    const std::string payload =
        EncodeBodyPayload(records[id], parent, parents[id].value_or(0));
    if (bodies_section.size() + payload.size() > UINT32_MAX) {
      return BadEncode("image too large");
    }
    AppendFixed32(&index_section, static_cast<uint32_t>(bodies_section.size()));
    AppendFixed32(&index_section, static_cast<uint32_t>(payload.size()));
    bodies_section += payload;
  }

  std::string meta;
  AppendVarint(&meta, parts.aug_count);
  AppendVarint(&meta, parts.node_count);
  AppendVarint(&meta, parts.edge_count);
  if (parts.is_slice) {
    AppendVarint(&meta, parts.node);
    AppendFixed64(&meta, parts.slice_sfp);
  }

  std::string payloads[kSectionCount];
  payloads[kSecMeta - 1] = std::move(meta);
  payloads[kSecStrDict - 1] = EncodeStrDict(dicts.dicts);
  payloads[kSecTabDict - 1] = EncodeTabDict(dicts.dicts);
  payloads[kSecBodyIdx - 1] = std::move(index_section);
  payloads[kSecBodies - 1] = std::move(bodies_section);
  payloads[kSecModes - 1] = EncodeModesSection(parts.modes);
  payloads[kSecTrailer - 1] = EncodeTrailerSection(parts.has_prov, parts.prov_max_faults,
                                                   parts.prov_planner_fp, HashString(text));
  std::string image = SealImage(parts.is_slice ? kKindSlice : kKindBlob, payloads);

  // Same discipline as the text patch path's canonical re-serialize seal:
  // never emit an image that does not provably round-trip.
  const StatusOr<std::string> round_trip = DecodeStrategyImage(image);
  if (!round_trip.ok() || *round_trip != text) {
    return Status::Internal("v4 encode self-check failed");
  }
  return image;
}

StatusOr<std::string> DecodeStrategyImage(const std::string& image) {
  const StatusOr<Shell> shell = DecodeShell(image);
  if (!shell.ok()) {
    return shell.status();
  }
  if (shell->kind == kKindPatch) {
    return BadImage("patch image; use DecodePatchImage");
  }
  const StatusOr<std::vector<DecodedBody>> bodies = DecodeAllBodies(*shell);
  if (!bodies.ok()) {
    return bodies.status();
  }
  return RenderShellText(*shell, *bodies);
}

StatusOr<std::string> EncodePatchImage(const StrategyPatch& patch) {
  const BodyDims dims{patch.aug_count, patch.node_count, patch.edge_count};
  DictBuilder dicts;
  std::vector<BodyRecords> records(patch.bodies.size());
  std::vector<bool> is_copy(patch.bodies.size(), false);
  for (size_t id = 0; id < patch.bodies.size(); ++id) {
    if (patch.bodies[id].copy) {
      is_copy[id] = true;
      continue;
    }
    const Status chunk = ParseChunk(patch.bodies[id].text, dims, &dicts, &records[id]);
    if (!chunk.ok()) {
      return chunk;
    }
  }
  std::vector<std::pair<std::vector<uint32_t>, uint64_t>> mode_pairs;
  mode_pairs.reserve(patch.sets.size());
  for (const StrategyPatch::ModeRef& set : patch.sets) {
    mode_pairs.emplace_back(set.fault_nodes, set.ref);
  }
  std::vector<std::optional<uint64_t>> parents = PrefixParents(mode_pairs, records.size());
  for (size_t id = 0; id < parents.size(); ++id) {
    // A patch image must stay self-contained: only earlier BNEW bodies in
    // this same patch can serve as delta parents.
    if (is_copy[id] || (parents[id].has_value() && is_copy[*parents[id]])) {
      parents[id].reset();
    }
  }

  std::string bodies_section;
  std::string index_section;
  for (size_t id = 0; id < patch.bodies.size(); ++id) {
    std::string payload;
    if (is_copy[id]) {
      AppendVarint(&payload, 1);
      AppendVarint(&payload, patch.bodies[id].old_id);
    } else {
      AppendVarint(&payload, 0);
      const BodyRecords* parent =
          parents[id].has_value() ? &records[*parents[id]] : nullptr;
      payload += EncodeBodyPayload(records[id], parent, parents[id].value_or(0));
    }
    if (bodies_section.size() + payload.size() > UINT32_MAX) {
      return BadEncode("image too large");
    }
    AppendFixed32(&index_section, static_cast<uint32_t>(bodies_section.size()));
    AppendFixed32(&index_section, static_cast<uint32_t>(payload.size()));
    bodies_section += payload;
  }

  std::string meta;
  AppendVarint(&meta, patch.aug_count);
  AppendVarint(&meta, patch.node_count);
  AppendVarint(&meta, patch.edge_count);
  AppendFixed64(&meta, patch.base_fp);
  AppendFixed64(&meta, patch.target_fp);
  AppendVarint(&meta, patch.sliced ? 1 : 0);
  AppendVarint(&meta, patch.sliced ? patch.slice_node : 0);
  AppendVarint(&meta, patch.old_body_count);
  AppendVarint(&meta, patch.deleted_old.size());
  for (uint32_t id : patch.deleted_old) {
    AppendVarint(&meta, id);
  }
  AppendVarint(&meta, patch.slice_fps.size());
  for (const auto& [node, fp] : patch.slice_fps) {
    AppendVarint(&meta, node);
    AppendFixed64(&meta, fp);
  }
  AppendVarint(&meta, patch.final_mode_count);

  const std::string text = SaveStrategyPatch(patch);
  std::string payloads[kSectionCount];
  payloads[kSecMeta - 1] = std::move(meta);
  payloads[kSecStrDict - 1] = EncodeStrDict(dicts.dicts);
  payloads[kSecTabDict - 1] = EncodeTabDict(dicts.dicts);
  payloads[kSecBodyIdx - 1] = std::move(index_section);
  payloads[kSecBodies - 1] = std::move(bodies_section);
  payloads[kSecModes - 1] = EncodePatchModesSection(patch);
  payloads[kSecTrailer - 1] = EncodeTrailerSection(patch.has_prov, patch.prov_max_faults,
                                                   patch.prov_planner_fp, HashString(text));
  std::string image = SealImage(kKindPatch, payloads);

  const StatusOr<StrategyPatch> round_trip = DecodePatchImage(image);
  if (!round_trip.ok() || SaveStrategyPatch(*round_trip) != text) {
    return Status::Internal("v4 patch encode self-check failed");
  }
  return image;
}

StatusOr<StrategyPatch> DecodePatchImage(const std::string& image) {
  const StatusOr<Shell> shell = DecodeShell(image);
  if (!shell.ok()) {
    return shell.status();
  }
  if (shell->kind != kKindPatch) {
    return BadImage("not a patch image");
  }
  const StatusOr<std::vector<DecodedBody>> bodies = DecodeAllBodies(*shell);
  if (!bodies.ok()) {
    return bodies.status();
  }
  StrategyPatch patch;
  patch.sliced = shell->sliced;
  patch.slice_node = static_cast<uint32_t>(shell->slice_node);
  patch.aug_count = shell->dims.aug_count;
  patch.node_count = shell->dims.node_count;
  patch.edge_count = shell->dims.edge_count;
  patch.base_fp = shell->base_fp;
  patch.target_fp = shell->target_fp;
  patch.has_prov = shell->has_prov;
  patch.prov_max_faults = static_cast<uint32_t>(shell->prov_max_faults);
  patch.prov_planner_fp = shell->prov_planner_fp;
  patch.slice_fps = shell->slice_fps;
  patch.old_body_count = shell->old_body_count;
  patch.deleted_old = shell->deleted_old;
  patch.sets = shell->sets;
  patch.dels = shell->dels;
  patch.final_mode_count = shell->final_mode_count;
  for (const DecodedBody& body : *bodies) {
    StrategyPatch::BodyDef def;
    if (body.copy) {
      def.copy = true;
      def.old_id = static_cast<uint32_t>(body.old_id);
    } else {
      def.text = RenderChunk(body.records, shell->dicts);
    }
    patch.bodies.push_back(std::move(def));
  }
  const std::string text = SaveStrategyPatch(patch);
  if (HashString(text) != shell->text_fp) {
    return BadImage("decoded text fingerprint mismatch");
  }
  // Funnel through the strict text parser so a decoded patch carries
  // exactly the validation guarantees of a text-parsed one.
  return ParseStrategyPatch(text);
}

Status ValidateStrategyImage(const std::string& image) {
  const StatusOr<Shell> shell = DecodeShell(image);
  if (!shell.ok()) {
    return shell.status();
  }
  const StatusOr<std::vector<DecodedBody>> bodies = DecodeAllBodies(*shell);
  if (!bodies.ok()) {
    return bodies.status();
  }
  return Status::Ok();
}

StatusOr<std::string> ExtractSliceImage(const std::string& blob_text, uint32_t node) {
  StatusOr<std::string> slice = ExtractSlice(blob_text, node);
  if (!slice.ok()) {
    return slice.status();
  }
  return EncodeStrategyImage(*slice);
}

StatusOr<std::string> MakeStrategyPatchImage(const std::string& base_blob,
                                             const std::string& target_blob) {
  StatusOr<StrategyPatch> patch = MakeStrategyPatch(base_blob, target_blob);
  if (!patch.ok()) {
    return patch.status();
  }
  return EncodePatchImage(*patch);
}

// ---- BinaryStrategyView --------------------------------------------------

struct BinaryStrategyView::State {
  std::string image;
  Shell shell;  // spans point into `image`
  // Lazily decoded bodies; not thread-safe (one view per consumer, like
  // every other install-plane object).
  std::vector<std::optional<BodyRecords>> memo;
};

StatusOr<BinaryStrategyView> BinaryStrategyView::Map(std::string image) {
  auto state = std::make_shared<State>();
  state->image = std::move(image);
  StatusOr<Shell> shell = DecodeShell(state->image);
  if (!shell.ok()) {
    return shell.status();
  }
  if (shell->kind == kKindPatch) {
    return BadImage("patch image; use DecodePatchImage");
  }
  state->shell = std::move(*shell);
  state->memo.resize(state->shell.body_spans.size());
  return BinaryStrategyView(std::move(state));
}

bool BinaryStrategyView::is_slice() const { return state_->shell.kind == kKindSlice; }
uint64_t BinaryStrategyView::node() const { return state_->shell.node; }
uint64_t BinaryStrategyView::slice_sfp() const { return state_->shell.sfp; }
uint64_t BinaryStrategyView::aug_count() const { return state_->shell.dims.aug_count; }
uint64_t BinaryStrategyView::node_count() const { return state_->shell.dims.node_count; }
uint64_t BinaryStrategyView::edge_count() const { return state_->shell.dims.edge_count; }
uint64_t BinaryStrategyView::body_count() const { return state_->shell.body_spans.size(); }
uint64_t BinaryStrategyView::mode_count() const { return state_->shell.modes.size(); }
bool BinaryStrategyView::has_prov() const { return state_->shell.has_prov; }
uint64_t BinaryStrategyView::prov_max_faults() const { return state_->shell.prov_max_faults; }
uint64_t BinaryStrategyView::prov_planner_fp() const { return state_->shell.prov_planner_fp; }
uint64_t BinaryStrategyView::text_fingerprint() const { return state_->shell.text_fp; }
const std::string& BinaryStrategyView::image() const { return state_->image; }

StatusOr<std::string> BinaryStrategyView::BodyChunk(uint64_t id) const {
  State& state = *state_;
  if (id >= state.memo.size()) {
    return BadImage("body id out of range");
  }
  // Walk the undecoded suffix of the parent chain (ids strictly decrease,
  // so this terminates), then decode it root-first.
  std::vector<uint64_t> chain;
  uint64_t cur = id;
  while (!state.memo[cur].has_value()) {
    chain.push_back(cur);
    const StatusOr<std::optional<uint64_t>> parent = PeekParent(state.shell.body_spans[cur], cur);
    if (!parent.ok()) {
      return parent.status();
    }
    if (!parent->has_value()) {
      break;
    }
    cur = **parent;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const ParentLookup parent_of = [&state](uint64_t pid) -> const BodyRecords* {
      if (pid >= state.memo.size() || !state.memo[pid].has_value()) {
        return nullptr;
      }
      return &*state.memo[pid];
    };
    BodyRecords records;
    const Status decoded = DecodeBodyPayload(state.shell.body_spans[*it], *it, state.shell.dims,
                                             state.shell.dicts, parent_of, &records);
    if (!decoded.ok()) {
      return decoded;
    }
    state.memo[*it] = std::move(records);
  }
  return RenderChunk(*state.memo[id], state.shell.dicts);
}

StatusOr<std::string> BinaryStrategyView::DecodeText() const {
  State& state = *state_;
  std::vector<DecodedBody> bodies(state.memo.size());
  for (uint64_t id = 0; id < state.memo.size(); ++id) {
    const StatusOr<std::string> chunk = BodyChunk(id);  // fills the memo
    if (!chunk.ok()) {
      return chunk.status();
    }
    bodies[id].records = *state.memo[id];
  }
  return RenderShellText(state.shell, bodies);
}

}  // namespace fmt
}  // namespace btr
