// v4 binary strategy format: delta-encoded, dictionary-packed, mmap-able
// images of the canonical strategy texts.
//
// The v2/v3 text formats dedup whole plan bodies but still write every
// table and budget record verbatim per body, so slices and patches inherit
// verbatim rows and every install pays full parse time on the node's
// critical path. The v4 image closes both gaps:
//
//   delta encoding — sibling bodies in the wave DAG differ from their
//     level-(k-1) prefix parent in a handful of rows (that is what makes
//     incremental replanning cheap), so each body is encoded against the
//     body referenced by its first mode's prefix fault set: only changed
//     placement / table / budget entries are stored, the rest is implied
//     by the parent reference. Bodies that do not delta well fall back to
//     raw encoding per section; the choice is size-driven.
//   dictionaries — utility strings and schedule-table row groups repeat
//     across bodies; each is stored once (STRDICT / TABDICT) and bodies
//     carry varint references.
//   zero-copy layout — the image is sectioned with relative offsets and
//     fixed alignment (see binary_image.h), sealed by a trailing
//     fingerprint over every byte, so a node can verify-fingerprint, map,
//     and swap a slice without parsing; BinaryStrategyView resolves body
//     chunks lazily from the mapped bytes on first use.
//
// The oracle contract mirrors the text install plane: DecodeStrategyImage
// (EncodeStrategyImage(text)) returns `text` byte-for-byte (the encoder
// self-checks this before returning), and a decoded patch re-serializes to
// the exact BTRPATCH text it was encoded from. Equality stays provable by
// string comparison all the way down.

#ifndef BTR_SRC_FMT_STRATEGY_BINARY_H_
#define BTR_SRC_FMT_STRATEGY_BINARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/strategy_patch.h"
#include "src/fmt/binary_image.h"

namespace btr {
namespace fmt {

// True if `data` carries the v4 image magic. Callers use this to
// auto-detect format; a positive sniff still requires validation.
inline bool IsV4Image(std::string_view data) { return LooksLikeImage(data); }

// Encodes a canonical BTRSTRATEGY v3 blob or BTRSLICE v1 slice text into a
// v4 image (kind chosen from the text). Fails on non-canonical input. The
// returned image decodes back to `text` byte-for-byte (self-checked).
StatusOr<std::string> EncodeStrategyImage(const std::string& text);

// Decodes a v4 blob/slice image back to its canonical text. Rejects
// structural corruption, out-of-range references, and any image whose
// decoded text does not hash to the trailer's text fingerprint.
StatusOr<std::string> DecodeStrategyImage(const std::string& image);

// Encodes a parsed patch into a v4 patch image. BNEW bodies delta against
// earlier BNEW bodies in the same patch (resolved through the MSET prefix
// fault sets), so the image is self-contained: a gossip relay holding only
// its own slice can still decode it. Self-checked like the blob encoder.
StatusOr<std::string> EncodePatchImage(const StrategyPatch& patch);

// Decodes a v4 patch image. The result is re-serialized and re-parsed
// through the strict BTRPATCH text path, so a decoded patch carries exactly
// the guarantees of a text-parsed one.
StatusOr<StrategyPatch> DecodePatchImage(const std::string& image);

// Structural + grammatical validation without materializing any text: walks
// the header, section table, dictionaries, every body payload (including
// delta chains), modes, and the fingerprint seal. This is the install
// plane's verify-before-map step.
Status ValidateStrategyImage(const std::string& image);

// Binary twins of the text-plane primitives: carve a node's slice / diff
// two blobs, packed as v4 images instead of text.
StatusOr<std::string> ExtractSliceImage(const std::string& blob_text, uint32_t node);
StatusOr<std::string> MakeStrategyPatchImage(const std::string& base_blob,
                                             const std::string& target_blob);

// Zero-parse accessor over a validated blob/slice image. Map() performs
// the structural walk once; header fields are then O(1) reads and body
// chunks are decoded lazily (resolving delta chains and dictionaries from
// the mapped bytes) and memoized. Copyable; copies share the mapped image.
class BinaryStrategyView {
 public:
  // Walks the header, section table, dictionaries, mode table, and seal,
  // then takes ownership of the image bytes. Rejects patch images (use
  // DecodePatchImage). Body payloads are validated lazily by BodyChunk;
  // run ValidateStrategyImage first when full up-front validation matters
  // (the install plane does).
  static StatusOr<BinaryStrategyView> Map(std::string image);

  bool is_slice() const;
  uint64_t node() const;       // slices only
  uint64_t slice_sfp() const;  // slices only: fingerprint of the source blob
  uint64_t aug_count() const;
  uint64_t node_count() const;
  uint64_t edge_count() const;
  uint64_t body_count() const;
  uint64_t mode_count() const;
  bool has_prov() const;
  uint64_t prov_max_faults() const;
  uint64_t prov_planner_fp() const;
  // Fingerprint of the canonical text this image encodes (the trailer's
  // text_fp) — equals FingerprintStrategyText(DecodeText()).
  uint64_t text_fingerprint() const;
  const std::string& image() const;

  // Canonical record chunk of body `id` (up to and including "END\n"),
  // decoded on first use and memoized along the resolved parent chain.
  StatusOr<std::string> BodyChunk(uint64_t id) const;

  // Full canonical text materialization (verified against text_fp).
  StatusOr<std::string> DecodeText() const;

 private:
  struct State;
  explicit BinaryStrategyView(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

}  // namespace fmt
}  // namespace btr

#endif  // BTR_SRC_FMT_STRATEGY_BINARY_H_
