// Deterministic discrete-event queue.
//
// Events at equal timestamps are delivered in insertion order (a strictly
// increasing sequence number breaks ties), which makes entire simulations
// reproducible from a seed. The sharded simulator supplies its own tie-break
// keys instead: a canonical (scheduling actor, per-actor counter) priority
// that is identical for every shard count, so per-queue sequence allocation
// never leaks into cross-shard event order.
//
// Storage is slot-based: callables live in recycled slots (whose inline
// SmallFn buffers hold the common capture sizes without allocating), and
// the time-ordered heap holds 24-byte {when, seq, slot, generation}
// entries. Handles carry the slot's generation, so Cancel is O(1) — bump
// the generation, free the slot — with no shadow live-set; the heap sweeps
// stale entries lazily when they surface.
//
// The hot operations (Schedule, PopNext, the heap) are defined inline: the
// simulator executes one of each per event, and the call overhead was
// measurable at millions of events per second.

#ifndef BTR_SRC_SIM_EVENT_QUEUE_H_
#define BTR_SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/small_fn.h"
#include "src/common/types.h"

namespace btr {

// Inline capacity covers the simulator's largest hot-path capture (the
// network's per-hop forwarding closure: this + packet + routing handle +
// index + flag).
using EventFn = SmallFn<48>;

// Handle for cancelling a scheduled event. Carries the id of the queue that
// issued it so a sharded simulator can route (and police) cancellations.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return generation_ != 0; }
  uint32_t queue_id() const { return queue_; }

 private:
  friend class EventQueue;
  EventHandle(uint32_t slot, uint32_t generation, uint32_t queue)
      : slot_(slot), generation_(generation), queue_(queue) {}
  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
  uint32_t queue_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // No-owner sentinel for events scheduled through the plain Schedule path.
  static constexpr uint32_t kNoOwner = 0xFFFFFFFFu;

  // Identifies this queue in the handles it issues (the shard index in a
  // sharded simulator). Must be set before the first Schedule.
  void set_queue_id(uint32_t id) { queue_id_ = id; }

  // Schedules `fn` at absolute time `when`. `when` must be >= the time of the
  // last popped event (no scheduling into the past). Takes the callable by
  // rvalue so a caller-site lambda is materialized once and moved once.
  // Equal timestamps tie-break on a per-queue insertion counter.
  EventHandle Schedule(SimTime when, EventFn&& fn) {
    return Schedule(when, next_seq_++, kNoOwner, std::move(fn));
  }

  // Sharded form: the caller supplies the tie-break priority (canonical
  // across shard counts) and the owning actor, which PopNext hands back so
  // the simulator can stamp the execution context. Callers must not mix
  // supplied priorities with the auto-sequenced overload in one queue.
  EventHandle Schedule(SimTime when, uint64_t prio, uint32_t owner, EventFn&& fn) {
    assert(when >= last_popped_ && "scheduling into the past");
    const uint32_t index = AcquireSlot();
    Slot& slot = slots_[index];
    slot.fn = std::move(fn);
    slot.owner = owner;
    slot.generation |= 1;  // arm: odd generation
    HeapPush(HeapEntry{when < last_popped_ ? last_popped_ : when, prio, index,
                       slot.generation});
    ++live_count_;
    return EventHandle(index, slot.generation, queue_id_);
  }

  // Cancels a previously scheduled event. Safe to call on already-fired or
  // already-cancelled handles (no-op). Returns true if the event was pending.
  bool Cancel(EventHandle handle);

  bool Empty() const { return live_count_ == 0; }
  size_t PendingCount() const { return live_count_; }

  // Time of the earliest pending event; kSimTimeNever if empty.
  SimTime NextTime() const {
    SkipDead();
    if (heap_.empty()) {
      return kSimTimeNever;
    }
    return heap_.front().when;
  }

  // (when, prio) key of the earliest pending event, for cross-queue merges.
  // Returns false if empty.
  bool PeekKey(SimTime* when, uint64_t* prio) const {
    SkipDead();
    if (heap_.empty()) {
      return false;
    }
    *when = heap_.front().when;
    *prio = heap_.front().prio;
    return true;
  }

  // Pops the earliest event into `*fn` WITHOUT running it, and returns its
  // timestamp. Requires !Empty(). The driver advances its clock between the
  // pop and the call, so callbacks observe their own timestamp via Now().
  // `owner` (optional) receives the owning actor supplied at Schedule.
  SimTime PopNext(EventFn* fn, uint32_t* owner = nullptr) {
    SkipDead();
    assert(!heap_.empty());
    const HeapEntry top = heap_.front();
    HeapPop();
    Slot& slot = slots_[top.slot];
    // Move the callable out before it can run: the callback may schedule
    // new events (growing slots_) or cancel, and must see this event done.
    *fn = std::move(slot.fn);
    if (owner != nullptr) {
      *owner = slot.owner;
    }
    slot.generation += 1;
    ReleaseSlot(top.slot);
    --live_count_;
    last_popped_ = top.when;
    return top.when;
  }

  // Pops and runs the earliest event. Returns its timestamp. Requires !Empty().
  SimTime RunNext() {
    EventFn fn;
    const SimTime when = PopNext(&fn);
    fn();
    return when;
  }

  SimTime last_popped_time() const { return last_popped_; }

 private:
  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

  struct Slot {
    EventFn fn;
    // Odd while the slot is armed, bumped on fire/cancel; a handle or heap
    // entry whose generation mismatches is stale. Starts at 0 (free).
    uint32_t generation = 0;
    uint32_t next_free = kNilSlot;
    uint32_t owner = kNoOwner;
  };
  struct HeapEntry {
    SimTime when;
    uint64_t prio;
    uint32_t slot;
    uint32_t generation;

    bool Earlier(const HeapEntry& o) const {
      return when != o.when ? when < o.when : prio < o.prio;
    }
  };

  uint32_t AcquireSlot() {
    if (free_head_ != kNilSlot) {
      const uint32_t index = free_head_;
      free_head_ = slots_[index].next_free;
      return index;
    }
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  void ReleaseSlot(uint32_t index) {
    Slot& slot = slots_[index];
    slot.fn.Reset();  // free captured resources (payload refs, routing handles)
    slot.next_free = free_head_;
    free_head_ = index;
  }

  // 4-ary min-heap ordered by (when, prio): half the depth of a binary heap
  // and better cache behavior for the sift-downs every pop performs. The
  // (when, prio) order is strict and total, so the pop sequence — and with
  // it the whole simulation — is identical for any correct heap layout.
  void HeapPush(HeapEntry entry) const {
    size_t i = heap_.size();
    heap_.push_back(entry);
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!heap_[i].Earlier(heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void HeapPop() const {
    heap_.front() = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    size_t i = 0;
    while (true) {
      const size_t first_child = i * 4 + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      const size_t last_child = std::min(first_child + 4, n);
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (heap_[c].Earlier(heap_[best])) {
          best = c;
        }
      }
      if (!heap_[best].Earlier(heap_[i])) {
        break;
      }
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  // Drops heap entries whose slot generation moved on (fired or cancelled).
  void SkipDead() const {
    while (!heap_.empty() && slots_[heap_.front().slot].generation != heap_.front().generation) {
      HeapPop();
    }
  }

  // `mutable` so NextTime() can lazily sweep cancelled entries.
  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilSlot;
  uint32_t queue_id_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  SimTime last_popped_ = 0;
};

}  // namespace btr

#endif  // BTR_SRC_SIM_EVENT_QUEUE_H_
