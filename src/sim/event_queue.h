// Deterministic discrete-event queue.
//
// Events at equal timestamps are delivered in insertion order (a strictly
// increasing sequence number breaks ties), which makes entire simulations
// reproducible from a seed.

#ifndef BTR_SRC_SIM_EVENT_QUEUE_H_
#define BTR_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace btr {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `when`. `when` must be >= the time of the
  // last popped event (no scheduling into the past).
  EventHandle Schedule(SimTime when, EventFn fn);

  // Cancels a previously scheduled event. Safe to call on already-fired or
  // already-cancelled handles (no-op). Returns true if the event was pending.
  bool Cancel(EventHandle handle);

  bool Empty() const { return live_.empty(); }
  size_t PendingCount() const { return live_.size(); }

  // Time of the earliest pending event; kSimTimeNever if empty.
  SimTime NextTime() const;

  // Pops and runs the earliest event. Returns its timestamp. Requires !Empty().
  SimTime RunNext();

  SimTime last_popped_time() const { return last_popped_; }

 private:
  struct Entry {
    SimTime when = 0;
    uint64_t id = 0;
    EventFn fn;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  // Drops heap entries whose id is no longer live (cancelled).
  void SkipDead() const;

  // `mutable` so NextTime() can lazily sweep cancelled entries.
  mutable std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_set<uint64_t> live_;
  uint64_t next_id_ = 1;
  SimTime last_popped_ = 0;
};

}  // namespace btr

#endif  // BTR_SRC_SIM_EVENT_QUEUE_H_
