// The simulation driver: owns the event queue, current time, and root RNG.

#ifndef BTR_SRC_SIM_SIMULATOR_H_
#define BTR_SRC_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace btr {

class Simulator {
 public:
  explicit Simulator(uint64_t seed);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }
  Rng* rng() { return &rng_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()). Inline, with
  // the callable taken by rvalue: the data plane schedules one event per
  // hop and per job dispatch, and each avoided 48-byte move is measurable.
  EventHandle At(SimTime when, EventFn&& fn) {
    assert(when >= now_);
    return queue_.Schedule(when, std::move(fn));
  }

  // Schedules `fn` to run after `delay` (>= 0).
  EventHandle After(SimDuration delay, EventFn&& fn) {
    assert(delay >= 0);
    return queue_.Schedule(now_ + delay, std::move(fn));
  }

  bool Cancel(EventHandle h) { return queue_.Cancel(h); }

  // Runs until the queue drains or simulated time would exceed `deadline`.
  // Returns the final simulated time.
  SimTime RunUntil(SimTime deadline);

  // Runs until the queue is fully drained.
  SimTime RunToCompletion();

  // Executes exactly one event if one is pending; returns false if idle.
  bool Step();

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.PendingCount(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  uint64_t events_executed_ = 0;
};

}  // namespace btr

#endif  // BTR_SRC_SIM_SIMULATOR_H_
