// The simulation driver: event queues, current time, root RNG, and the
// conservative-parallel (Chandy–Misra–Bryant style) shard engine.
//
// With the default single-shard layout every event lives in one queue and
// RunToCompletion is the classic sequential loop — byte-for-byte the same
// behavior and, to within noise, the same speed as the pre-sharding engine.
//
// With a multi-shard layout, each shard owns an EventQueue and a local
// clock. Execution proceeds in conservative windows: the coordinator picks
// the globally earliest pending event time t, and every shard may safely
// execute its own events in [t, t + lookahead) without synchronizing,
// because any event a peer could still send it lands no earlier than
// t + lookahead (the minimum cross-shard link latency). Cross-shard
// schedules go through single-writer mailboxes that the coordinator drains
// between windows. Driver events (period ticks — the natural coarse
// barriers — fault injections, install shipping) run exclusively between
// windows, with every worker parked.
//
// Determinism is the contract, not a best effort: every event carries a
// canonical priority (scheduling actor, per-actor counter) that is
// independent of the shard layout, each shard pops its queue in (when,
// priority) order, and shards never share mutable simulation state. The
// result is that reports are byte-identical for ANY shard count, including
// 1. Window boundaries do vary with the layout; event order per actor does
// not.

#ifndef BTR_SRC_SIM_SIMULATOR_H_
#define BTR_SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/exec_context.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/sim/event_queue.h"
#include "src/sim/shard_layout.h"

namespace btr {

class Simulator {
 public:
  // Single-shard simulator: the classic sequential engine.
  explicit Simulator(uint64_t seed);
  // Sharded simulator. A layout with shard_count == 1 is identical to the
  // sequential form.
  Simulator(uint64_t seed, ShardLayout layout);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Simulated time as seen by the calling context: the shard-local clock
  // inside a shard window, the driver clock otherwise.
  SimTime Now() const {
    const ExecContext& exec = ThisThreadExec();
    return exec.worker ? *exec.now : now_;
  }

  // Root RNG. Exclusive-path only (planning, scenario setup); never
  // touched by shard workers. The data plane itself draws no randomness —
  // loss draws are stateless hashes (see net/network.cc).
  Rng* rng() { return &rng_; }
  uint64_t seed() const { return seed_; }

  uint32_t shard_count() const { return shard_count_; }
  uint32_t ShardOf(uint32_t actor) const { return layout_.ShardOf(actor); }
  SimDuration lookahead() const { return lookahead_; }

  // Shard whose state the calling context may touch (0 on the exclusive
  // path). Network and runtime use this to index per-shard state.
  uint32_t CurrentShard() const {
    const ExecContext& exec = ThisThreadExec();
    return exec.worker ? exec.shard : 0;
  }

  // Schedules `fn` at absolute time `when` (>= Now()) for the actor of the
  // calling context: a node event reschedules for its own node (same
  // shard), a driver/exclusive caller schedules a driver event. Inline,
  // with the callable taken by rvalue: the data plane schedules one event
  // per hop and per job dispatch, and each avoided 48-byte move is
  // measurable.
  EventHandle At(SimTime when, EventFn&& fn) {
    assert(when >= Now());
    ExecContext& exec = ThisThreadExec();
    if (exec.actor == kDriverActor) {
      return DriverQueue().Schedule(when, next_driver_prio_++, kDriverActor, std::move(fn));
    }
    const uint32_t shard = exec.worker ? exec.shard : layout_.ShardOf(exec.actor);
    return shards_[shard]->queue.Schedule(when, NextActorPrio(exec.actor), exec.actor,
                                          std::move(fn));
  }

  // Schedules `fn` at `when` owned by `actor`, which may live on another
  // shard. Cross-shard schedules from inside a shard window go through the
  // sender's mailbox (and must respect the lookahead: when >= window end);
  // the returned handle is invalid for those, so they cannot be cancelled.
  EventHandle AtActor(uint32_t actor, SimTime when, EventFn&& fn) {
    assert(when >= Now());
    ExecContext& exec = ThisThreadExec();
    const uint64_t prio = exec.actor == kDriverActor ? next_driver_prio_++
                                                     : NextActorPrio(exec.actor);
    const uint32_t shard = layout_.ShardOf(actor);
    if (exec.worker && shard != exec.shard && !merged_exec_) {
      assert(when >= window_end_ && "cross-shard event inside the lookahead window");
      auto& box = mail_[exec.shard * shard_count_ + shard];
      box.items.push_back(PendingEvent{when, prio, actor, std::move(fn)});
      return EventHandle();
    }
    return shards_[shard]->queue.Schedule(when, prio, actor, std::move(fn));
  }

  // Schedules `fn` to run after `delay` (>= 0) for the calling context's
  // actor.
  EventHandle After(SimDuration delay, EventFn&& fn) {
    assert(delay >= 0);
    return At(Now() + delay, std::move(fn));
  }

  // Cancels an event previously scheduled on the calling context's shard.
  // A handle owned by another shard's queue is rejected with an error: the
  // owning queue's lazy sweep must only ever be touched by its own shard.
  bool Cancel(EventHandle h);

  // Runs until the queues drain or simulated time would exceed `deadline`.
  // Returns the final simulated time.
  SimTime RunUntil(SimTime deadline);

  // Runs until every queue is fully drained.
  SimTime RunToCompletion();

  // Executes exactly one event (the globally earliest) if one is pending;
  // returns false if idle. Sharded simulators execute it inline on the
  // calling thread.
  bool Step();

  uint64_t events_executed() const;
  size_t pending_events() const;

 private:
  struct PendingEvent {
    SimTime when;
    uint64_t prio;
    uint32_t owner;
    EventFn fn;
  };
  struct alignas(64) Mailbox {
    std::vector<PendingEvent> items;
  };
  struct alignas(64) Shard {
    EventQueue queue;
    SimTime now = 0;
    uint64_t events = 0;
  };
  struct alignas(64) ActorSeq {
    uint64_t next = 0;
  };

  // Canonical tie-break priority. Driver events use a bare counter (always
  // below every actor priority at equal timestamps); actor events use
  // (actor + 1) << 40 | counter. Both depend only on the actor's own
  // execution history, never on the shard layout.
  uint64_t NextActorPrio(uint32_t actor) {
    if (actor >= actor_seq_.size()) {
      // Only the default (layout-less) single-shard simulator can see an
      // actor beyond the layout: unit harnesses construct Simulator(seed)
      // and invent actor ids ad hoc. That path is exclusive (no workers),
      // so growing here is safe. A partitioned layout covers every node up
      // front, making an out-of-range actor a caller bug.
      assert(shard_count_ == 1);
      actor_seq_.resize(size_t{actor} + 1);
    }
    return (uint64_t{actor} + 1) << 40 | actor_seq_[actor].next++;
  }

  EventQueue& DriverQueue() { return shard_count_ == 1 ? shards_[0]->queue : driver_queue_; }

  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(uint32_t shard);
  void RunShardWindow(uint32_t shard);
  void DrainMailboxes();
  // Windowed conservative execution of events with when <= deadline.
  void RunWindowed(SimTime deadline);
  // Sequential single-event global merge (Step on a sharded simulator).
  bool StepMerged();

  ShardLayout layout_;
  uint32_t shard_count_ = 1;
  SimDuration lookahead_ = kSimTimeNever;
  bool use_threads_ = false;
  bool workers_running_ = false;
  bool merged_exec_ = false;  // inside StepMerged: cross-shard pushes go direct

  std::vector<std::unique_ptr<Shard>> shards_;
  EventQueue driver_queue_;  // unused when shard_count_ == 1
  std::vector<Mailbox> mail_;
  std::vector<ActorSeq> actor_seq_;
  uint64_t next_driver_prio_ = 1;

  SimTime now_ = 0;
  uint64_t seed_ = 0;
  Rng rng_;
  uint64_t events_executed_ = 0;

  // Window handshake. window_end_ is written by the coordinator before the
  // epoch_ release-increment and read by workers after their acquire load,
  // so it needs no atomicity of its own; arrived_ release-increments chain
  // each worker's queue/mailbox writes to the coordinator's acquire reads.
  SimTime window_end_ = 0;
  alignas(64) std::atomic<uint64_t> epoch_{0};
  alignas(64) std::atomic<uint32_t> arrived_{0};
  std::atomic<bool> stop_workers_{false};
  ThreadPool::Ticket worker_ticket_;
};

}  // namespace btr

#endif  // BTR_SRC_SIM_SIMULATOR_H_
