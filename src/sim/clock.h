// Per-node local clocks with bounded offset and drift.
//
// The paper's system model assumes synchronized clocks with a known bound on
// skew; we model each node's clock as local(t) = t + offset + drift * t with
// |local(t) - t| <= epsilon over the run, and let the fault detector widen
// its acceptance windows by epsilon.

#ifndef BTR_SRC_SIM_CLOCK_H_
#define BTR_SRC_SIM_CLOCK_H_

#include "src/common/rng.h"
#include "src/common/types.h"

namespace btr {

class LocalClock {
 public:
  // Perfect clock.
  LocalClock() = default;

  // offset: constant error in ns; drift_ppm: parts-per-million rate error.
  LocalClock(SimDuration offset, double drift_ppm) : offset_(offset), drift_ppm_(drift_ppm) {}

  // Random clock with |offset| <= max_offset and |drift| <= max_drift_ppm.
  static LocalClock Random(Rng* rng, SimDuration max_offset, double max_drift_ppm);

  // Local reading at true time `now`.
  SimTime Read(SimTime now) const;

  // Inverse: true time at which the local clock reads `local`.
  SimTime TrueTimeAt(SimTime local) const;

  // Worst-case |local - true| over a run of the given length.
  SimDuration MaxError(SimDuration run_length) const;

  SimDuration offset() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }

 private:
  SimDuration offset_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace btr

#endif  // BTR_SRC_SIM_CLOCK_H_
