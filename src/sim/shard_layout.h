// Shard layout for the conservative-parallel simulator.
//
// A layout assigns every simulated actor (node) to one shard and carries
// the conservative lookahead: the minimum latency any message needs to
// cross between two shards. Events a shard schedules for itself may land at
// any future time; events that cross shards are guaranteed to land at least
// `lookahead` after the sender's current time, which is what lets every
// shard safely execute a window of that width without hearing from its
// peers. The partitioner over Topology (src/net/partition.h) builds these;
// the default layout is the degenerate single-shard one, which reduces the
// simulator to the classic sequential engine.

#ifndef BTR_SRC_SIM_SHARD_LAYOUT_H_
#define BTR_SRC_SIM_SHARD_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace btr {

struct ShardLayout {
  uint32_t shard_count = 1;
  // shard_of[actor] for actor in [0, actor_count). Empty means "everything
  // on shard 0".
  std::vector<uint32_t> shard_of;
  // Minimum cross-shard event latency. kSimTimeNever when no link crosses
  // shards (or shard_count == 1): the shards are fully independent.
  SimDuration lookahead = kSimTimeNever;

  uint32_t ShardOf(uint32_t actor) const {
    return actor < shard_of.size() ? shard_of[actor] : 0;
  }
};

}  // namespace btr

#endif  // BTR_SRC_SIM_SHARD_LAYOUT_H_
