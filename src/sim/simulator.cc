#include "src/sim/simulator.h"

#include <cassert>

#include "src/common/log.h"

namespace btr {

Simulator::Simulator(uint64_t seed) : rng_(seed) { SetLogTimeSource(&now_); }

Simulator::~Simulator() { SetLogTimeSource(nullptr); }

EventHandle Simulator::At(SimTime when, EventFn fn) {
  assert(when >= now_);
  return queue_.Schedule(when, std::move(fn));
}

EventHandle Simulator::After(SimDuration delay, EventFn fn) {
  assert(delay >= 0);
  return queue_.Schedule(now_ + delay, std::move(fn));
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    // Advance the clock before dispatching so callbacks observe the event's
    // own timestamp via Now().
    now_ = queue_.NextTime();
    queue_.RunNext();
    ++events_executed_;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

SimTime Simulator::RunToCompletion() {
  while (!queue_.Empty()) {
    now_ = queue_.NextTime();
    queue_.RunNext();
    ++events_executed_;
  }
  return now_;
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  now_ = queue_.NextTime();
  queue_.RunNext();
  ++events_executed_;
  return true;
}

}  // namespace btr
