#include "src/sim/simulator.h"

#include "src/common/log.h"

namespace btr {

Simulator::Simulator(uint64_t seed) : rng_(seed) { SetLogTimeSource(&now_); }

Simulator::~Simulator() { SetLogTimeSource(nullptr); }

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    // Advance the clock before dispatching so callbacks observe the event's
    // own timestamp via Now().
    EventFn fn;
    now_ = queue_.PopNext(&fn);
    fn();
    ++events_executed_;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

SimTime Simulator::RunToCompletion() {
  while (!queue_.Empty()) {
    EventFn fn;
    now_ = queue_.PopNext(&fn);
    fn();
    ++events_executed_;
  }
  return now_;
}

bool Simulator::Step() {
  if (queue_.Empty()) {
    return false;
  }
  EventFn fn;
  now_ = queue_.PopNext(&fn);
  fn();
  ++events_executed_;
  return true;
}

}  // namespace btr
