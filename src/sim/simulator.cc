#include "src/sim/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/common/log.h"

namespace btr {
namespace {

// Saturating add against kSimTimeNever (and plain overflow).
SimTime SatAdd(SimTime a, SimTime b) {
  if (a == kSimTimeNever || b == kSimTimeNever) {
    return kSimTimeNever;
  }
  SimTime sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    return kSimTimeNever;
  }
  return sum;
}

// Spin briefly, then yield: on a loaded or single-core host the peer we are
// waiting for needs the cpu more than we need the cache line.
void Backoff(uint32_t& spins) {
  if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

Simulator::Simulator(uint64_t seed) : Simulator(seed, ShardLayout{}) {}

Simulator::Simulator(uint64_t seed, ShardLayout layout)
    : layout_(std::move(layout)), seed_(seed), rng_(seed) {
  shard_count_ = std::max<uint32_t>(1, layout_.shard_count);
  layout_.shard_count = shard_count_;
  lookahead_ = layout_.lookahead;
  shards_.reserve(shard_count_);
  for (uint32_t s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->queue.set_queue_id(s);
  }
  driver_queue_.set_queue_id(shard_count_);
  mail_.resize(size_t{shard_count_} * shard_count_);
  actor_seq_.resize(layout_.shard_of.size());
  // Worker threads only pay off when the host can actually run shards in
  // parallel; otherwise run the windows sequentially on this thread — the
  // canonical event order, and therefore every report, is identical either
  // way. BTR_SHARD_EXEC=threads|seq overrides (tests force `threads` so
  // TSan exercises the real handshake even on small hosts).
  const char* mode = std::getenv("BTR_SHARD_EXEC");
  if (mode != nullptr && std::strcmp(mode, "threads") == 0) {
    use_threads_ = true;
  } else if (mode != nullptr && std::strcmp(mode, "seq") == 0) {
    use_threads_ = false;
  } else {
    use_threads_ = std::thread::hardware_concurrency() > 1;
  }
  // A simulator constructed *on* a pool worker (a sweep-service job) must
  // not park long-lived shard loops on the pool its own job occupies: with
  // every worker running a job, the loops would never start and the window
  // handshake would spin forever. Sequential windows are the inline
  // degenerate schedule — same canonical event order, same report — so
  // this overrides even an explicit BTR_SHARD_EXEC=threads.
  if (ThreadPool::OnWorkerThread()) {
    use_threads_ = false;
  }
  SetLogTimeSource(&now_);
}

Simulator::~Simulator() {
  StopWorkers();
  SetLogTimeSource(nullptr);
}

bool Simulator::Cancel(EventHandle h) {
  if (!h.valid()) {
    return false;
  }
  const uint32_t qid = h.queue_id();
  const ExecContext& exec = ThisThreadExec();
  if (exec.worker && qid != exec.shard) {
    BTR_LOG(kError, "sim") << "Cancel rejected: handle belongs to shard " << qid
                           << " but was cancelled from shard " << exec.shard
                           << "; cross-shard cancellation would corrupt the owner's queue";
    return false;
  }
  if (qid == shard_count_) {
    return driver_queue_.Cancel(h);
  }
  if (qid < shard_count_) {
    return shards_[qid]->queue.Cancel(h);
  }
  return false;
}

void Simulator::StartWorkers() {
  if (workers_running_ || shard_count_ == 1) {
    return;
  }
  stop_workers_.store(false, std::memory_order_relaxed);
  const uint64_t base_epoch = epoch_.load(std::memory_order_relaxed);
  ThreadPool& pool = ThreadPool::Shared();
  // Reserved ticket: the loops below block until StopWorkers, so they need
  // *idle* workers — EnsureWorkers only bounds the total, and a pool whose
  // workers are all occupied by long-running sweep jobs would queue these
  // loops forever and deadlock the first window's arrival barrier.
  pool.ReserveWorkers(shard_count_ - 1);
  worker_ticket_ = pool.Dispatch(shard_count_ - 1, [this, base_epoch](size_t i) {
    const uint32_t shard = static_cast<uint32_t>(i) + 1;
    uint64_t seen = base_epoch;
    for (;;) {
      uint32_t spins = 0;
      while (epoch_.load(std::memory_order_acquire) == seen) {
        Backoff(spins);
      }
      ++seen;
      if (stop_workers_.load(std::memory_order_relaxed)) {
        arrived_.fetch_add(1, std::memory_order_release);
        return;
      }
      RunShardWindow(shard);
      arrived_.fetch_add(1, std::memory_order_release);
    }
  });
  workers_running_ = true;
}

void Simulator::StopWorkers() {
  if (!workers_running_) {
    return;
  }
  stop_workers_.store(true, std::memory_order_relaxed);
  arrived_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  uint32_t spins = 0;
  while (arrived_.load(std::memory_order_acquire) != shard_count_ - 1) {
    Backoff(spins);
  }
  worker_ticket_.Wait();
  workers_running_ = false;
}

void Simulator::RunShardWindow(uint32_t shard) {
  Shard& sh = *shards_[shard];
  const SimTime w_end = window_end_;
  ExecContext ctx;
  ctx.worker = true;
  ctx.shard = shard;
  ctx.now = &sh.now;
  ScopedExecContext scoped(ctx);
  ExecContext& exec = ThisThreadExec();
  for (;;) {
    const SimTime t = sh.queue.NextTime();
    if (t >= w_end) {
      break;  // includes the empty case: kSimTimeNever
    }
    EventFn fn;
    uint32_t owner = kDriverActor;
    sh.now = sh.queue.PopNext(&fn, &owner);
    exec.actor = owner;
    fn();
    ++sh.events;
  }
}

void Simulator::DrainMailboxes() {
  for (uint32_t src = 0; src < shard_count_; ++src) {
    for (uint32_t dst = 0; dst < shard_count_; ++dst) {
      auto& items = mail_[size_t{src} * shard_count_ + dst].items;
      if (items.empty()) {
        continue;
      }
      EventQueue& queue = shards_[dst]->queue;
      for (PendingEvent& p : items) {
        queue.Schedule(p.when, p.prio, p.owner, std::move(p.fn));
      }
      items.clear();
    }
  }
}

void Simulator::RunWindowed(SimTime deadline) {
  const SimDuration lookahead =
      lookahead_ == kSimTimeNever ? kSimTimeNever : std::max<SimDuration>(1, lookahead_);
  if (use_threads_) {
    StartWorkers();
  }
  for (;;) {
    const SimTime t_driver = driver_queue_.NextTime();
    SimTime t_nodes = kSimTimeNever;
    for (auto& sh : shards_) {
      t_nodes = std::min(t_nodes, sh->queue.NextTime());
    }
    const SimTime t = std::min(t_driver, t_nodes);
    if (t == kSimTimeNever || t > deadline) {
      break;
    }
    if (t_driver <= t_nodes) {
      // Driver events (period ticks, fault injections, install shipping)
      // run exclusively: every worker is parked between windows, so they
      // may touch any shard's state. Period ticks are the coarse barriers.
      EventFn fn;
      now_ = driver_queue_.PopNext(&fn);
      fn();
      ++events_executed_;
      continue;
    }
    SimTime w_end = std::min(SatAdd(t_nodes, lookahead), t_driver);
    w_end = std::min(w_end, SatAdd(deadline, 1));
    window_end_ = w_end;
    if (use_threads_) {
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.fetch_add(1, std::memory_order_release);
      RunShardWindow(0);
      uint32_t spins = 0;
      while (arrived_.load(std::memory_order_acquire) != shard_count_ - 1) {
        Backoff(spins);
      }
    } else {
      for (uint32_t s = 0; s < shard_count_; ++s) {
        RunShardWindow(s);
      }
    }
    DrainMailboxes();
  }
}

SimTime Simulator::RunUntil(SimTime deadline) {
  if (shard_count_ == 1) {
    EventQueue& q = shards_[0]->queue;
    ExecContext& exec = ThisThreadExec();
    while (!q.Empty() && q.NextTime() <= deadline) {
      // Advance the clock before dispatching so callbacks observe the
      // event's own timestamp via Now().
      EventFn fn;
      uint32_t owner = kDriverActor;
      now_ = q.PopNext(&fn, &owner);
      exec.actor = owner;
      fn();
      ++events_executed_;
    }
    exec.actor = kDriverActor;
  } else {
    RunWindowed(deadline);
    StopWorkers();
    for (auto& sh : shards_) {
      now_ = std::max(now_, sh->now);
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

SimTime Simulator::RunToCompletion() {
  if (shard_count_ == 1) {
    EventQueue& q = shards_[0]->queue;
    ExecContext& exec = ThisThreadExec();
    while (!q.Empty()) {
      EventFn fn;
      uint32_t owner = kDriverActor;
      now_ = q.PopNext(&fn, &owner);
      exec.actor = owner;
      fn();
      ++events_executed_;
    }
    exec.actor = kDriverActor;
    return now_;
  }
  RunWindowed(kSimTimeNever);
  StopWorkers();
  // The final simulated time is the globally last executed event — a
  // property of the event set, not of the shard layout.
  for (auto& sh : shards_) {
    now_ = std::max(now_, sh->now);
  }
  return now_;
}

bool Simulator::Step() {
  if (shard_count_ == 1) {
    EventQueue& q = shards_[0]->queue;
    if (q.Empty()) {
      return false;
    }
    ExecContext& exec = ThisThreadExec();
    EventFn fn;
    uint32_t owner = kDriverActor;
    now_ = q.PopNext(&fn, &owner);
    exec.actor = owner;
    fn();
    exec.actor = kDriverActor;
    ++events_executed_;
    return true;
  }
  return StepMerged();
}

bool Simulator::StepMerged() {
  // Global (when, prio) merge across the driver queue and every shard:
  // executes exactly the event the windowed engine would execute next, just
  // one at a time on the calling thread.
  constexpr int kNone = -1;
  constexpr int kDriver = -2;
  SimTime best_when = kSimTimeNever;
  uint64_t best_prio = 0;
  int best = kNone;
  SimTime when = 0;
  uint64_t prio = 0;
  if (driver_queue_.PeekKey(&when, &prio)) {
    best_when = when;
    best_prio = prio;
    best = kDriver;
  }
  for (uint32_t s = 0; s < shard_count_; ++s) {
    if (shards_[s]->queue.PeekKey(&when, &prio) &&
        (best == kNone || when < best_when || (when == best_when && prio < best_prio))) {
      best_when = when;
      best_prio = prio;
      best = static_cast<int>(s);
    }
  }
  if (best == kNone) {
    return false;
  }
  if (best == kDriver) {
    EventFn fn;
    now_ = driver_queue_.PopNext(&fn);
    fn();
    ++events_executed_;
    return true;
  }
  Shard& sh = *shards_[best];
  merged_exec_ = true;
  {
    ExecContext ctx;
    ctx.worker = true;
    ctx.shard = static_cast<uint32_t>(best);
    ctx.now = &sh.now;
    ScopedExecContext scoped(ctx);
    EventFn fn;
    uint32_t owner = kDriverActor;
    sh.now = sh.queue.PopNext(&fn, &owner);
    ThisThreadExec().actor = owner;
    fn();
    ++sh.events;
  }
  merged_exec_ = false;
  now_ = std::max(now_, sh.now);
  return true;
}

uint64_t Simulator::events_executed() const {
  uint64_t total = events_executed_;
  for (const auto& sh : shards_) {
    total += sh->events;
  }
  return total;
}

size_t Simulator::pending_events() const {
  size_t total = driver_queue_.PendingCount();
  for (const auto& sh : shards_) {
    total += sh->queue.PendingCount();
  }
  return total;
}

}  // namespace btr
