#include "src/sim/clock.h"

#include <cmath>

namespace btr {

LocalClock LocalClock::Random(Rng* rng, SimDuration max_offset, double max_drift_ppm) {
  const SimDuration offset = rng->NextInRange(-max_offset, max_offset);
  const double drift = rng->NextDouble(-max_drift_ppm, max_drift_ppm);
  return LocalClock(offset, drift);
}

SimTime LocalClock::Read(SimTime now) const {
  const double drifted = static_cast<double>(now) * (drift_ppm_ * 1e-6);
  return now + offset_ + static_cast<SimTime>(drifted);
}

SimTime LocalClock::TrueTimeAt(SimTime local) const {
  // local = t * (1 + d) + offset  =>  t = (local - offset) / (1 + d)
  const double d = drift_ppm_ * 1e-6;
  return static_cast<SimTime>(static_cast<double>(local - offset_) / (1.0 + d));
}

SimDuration LocalClock::MaxError(SimDuration run_length) const {
  const double drift_err = std::fabs(drift_ppm_ * 1e-6) * static_cast<double>(run_length);
  return std::abs(offset_) + static_cast<SimDuration>(drift_err) + 1;
}

}  // namespace btr
