#include "src/sim/event_queue.h"

#include <cassert>

namespace btr {

EventHandle EventQueue::Schedule(SimTime when, EventFn fn) {
  assert(when >= last_popped_ && "scheduling into the past");
  Entry e;
  e.when = when < last_popped_ ? last_popped_ : when;
  e.id = next_id_++;
  e.fn = std::move(fn);
  const uint64_t id = e.id;
  heap_.push(std::move(e));
  live_.insert(id);
  return EventHandle(id);
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid()) {
    return false;
  }
  // The heap entry is swept lazily when it reaches the top.
  return live_.erase(handle.id_) > 0;
}

void EventQueue::SkipDead() const {
  while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  SkipDead();
  if (heap_.empty()) {
    return kSimTimeNever;
  }
  return heap_.top().when;
}

SimTime EventQueue::RunNext() {
  SkipDead();
  assert(!heap_.empty());
  // Move the entry out before running: the callback may schedule new events.
  Entry e = heap_.top();
  heap_.pop();
  live_.erase(e.id);
  last_popped_ = e.when;
  e.fn();
  return e.when;
}

}  // namespace btr
