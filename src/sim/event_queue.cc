#include "src/sim/event_queue.h"

namespace btr {

// Cold path: everything hot is inline in the header.

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) {
    return false;
  }
  if (handle.queue_ != queue_id_) {
    // A handle from another shard's queue: its (slot, generation) coordinates
    // are meaningless here, and blindly bumping a generation would corrupt
    // the lazy sweep. The simulator rejects these with a logged error before
    // they reach us; this guard keeps direct EventQueue users safe too.
    assert(false && "Cancel called with a handle from a different queue");
    return false;
  }
  Slot& slot = slots_[handle.slot_];
  if (slot.generation != handle.generation_) {
    return false;  // already fired, cancelled, or the slot was reused
  }
  slot.generation += 1;  // even: disarmed; stale heap entry swept lazily
  ReleaseSlot(handle.slot_);
  --live_count_;
  return true;
}

}  // namespace btr
