// Physical plant models with inertia (paper Sections 1-2).
//
// The paper's core justification for tolerating an R-second outage is that
// the physical side of a CPS has inertia: a short control outage does not
// push it out of its safety envelope. These models make that measurable.
// Each plant is a small continuous system integrated with fixed-step RK4,
// paired with a reference controller; the envelope analysis in
// outage_analysis.h computes how long the controller may be absent before
// the envelope is violated — the plant's own "five-second rule".

#ifndef BTR_SRC_PLANT_PLANT_H_
#define BTR_SRC_PLANT_PLANT_H_

#include <memory>
#include <string>

namespace btr {

class Plant {
 public:
  virtual ~Plant() = default;

  virtual void Reset() = 0;
  // Sensor reading the controller sees.
  virtual double Observe() const = 0;
  // Applies the control command currently held by the actuator.
  virtual void SetCommand(double u) = 0;
  virtual double Command() const = 0;
  // Advances the dynamics by dt seconds with the held command.
  virtual void Step(double dt) = 0;
  // Normalized distance to the envelope edge: 0 at setpoint, 1 at the edge,
  // > 1 outside the envelope.
  virtual double Excursion() const = 0;
  bool InEnvelope() const { return Excursion() <= 1.0; }

  virtual const std::string& name() const = 0;
};

class Controller {
 public:
  virtual ~Controller() = default;
  virtual void Reset() = 0;
  // Computes the next command from the current observation.
  virtual double Control(double observation, double dt) = 0;
};

// Simple PID with output clamping; sufficient for all three plants.
class PidController : public Controller {
 public:
  PidController(double setpoint, double kp, double ki, double kd, double u_min, double u_max);

  void Reset() override;
  double Control(double observation, double dt) override;

 private:
  double setpoint_;
  double kp_;
  double ki_;
  double kd_;
  double u_min_;
  double u_max_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool first_ = true;
};

}  // namespace btr

#endif  // BTR_SRC_PLANT_PLANT_H_
