#include "src/plant/outage_analysis.h"

#include <algorithm>
#include <cmath>

namespace btr {

OutageResult SimulateOutage(Plant* plant, Controller* controller, const OutageParams& params) {
  plant->Reset();
  controller->Reset();

  OutageResult result;
  const double dt = params.integration_step;
  double next_control = 0.0;
  double t = 0.0;

  auto run_phase = [&](double duration, bool control_active, bool track) {
    const double end = t + duration;
    while (t < end) {
      if (control_active && t >= next_control) {
        plant->SetCommand(controller->Control(plant->Observe(), params.control_period));
        next_control = t + params.control_period;
      }
      plant->Step(dt);
      t += dt;
      if (track) {
        result.max_excursion = std::max(result.max_excursion, plant->Excursion());
      }
    }
  };

  // Warm-up: reach steady state under control.
  run_phase(params.settle_time, /*control_active=*/true, /*track=*/false);

  // Outage.
  if (params.mode == OutageMode::kFailDefault) {
    plant->SetCommand(params.fail_default);
  }
  run_phase(params.outage, /*control_active=*/false, /*track=*/true);
  result.excursion_at_resume = plant->Excursion();

  // Recovery: controller returns.
  next_control = t;
  run_phase(params.recovery_window, /*control_active=*/true, /*track=*/true);

  result.violated = result.max_excursion > 1.0;
  result.recovered = plant->Excursion() < 0.1;
  return result;
}

double MaxTolerableOutage(Plant* plant, Controller* controller, OutageParams params, double hi,
                          double tolerance) {
  double lo = 0.0;
  // Verify the lower end is safe at all.
  params.outage = 0.0;
  if (SimulateOutage(plant, controller, params).violated) {
    return 0.0;
  }
  params.outage = hi;
  if (!SimulateOutage(plant, controller, params).violated) {
    return hi;
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    params.outage = mid;
    if (SimulateOutage(plant, controller, params).violated) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

}  // namespace btr
