#include "src/plant/plant.h"

#include <algorithm>

namespace btr {

PidController::PidController(double setpoint, double kp, double ki, double kd, double u_min,
                             double u_max)
    : setpoint_(setpoint), kp_(kp), ki_(ki), kd_(kd), u_min_(u_min), u_max_(u_max) {}

void PidController::Reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  first_ = true;
}

double PidController::Control(double observation, double dt) {
  const double error = setpoint_ - observation;
  integral_ += error * dt;
  double derivative = 0.0;
  if (!first_ && dt > 0.0) {
    derivative = (error - prev_error_) / dt;
  }
  first_ = false;
  prev_error_ = error;
  const double u = kp_ * error + ki_ * integral_ + kd_ * derivative;
  return std::clamp(u, u_min_, u_max_);
}

}  // namespace btr
