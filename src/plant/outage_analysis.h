// Outage-tolerance analysis: how long may the controller be absent?
//
// SimulateOutage runs the closed loop, lets it settle, then cuts the
// controller off for `outage` seconds (the actuator either holds its last
// command or fails to a configurable default), resumes control, and reports
// the maximum envelope excursion. MaxTolerableOutage binary-searches the
// longest outage that keeps the plant inside its envelope — the plant's
// empirical "five-second rule", and the physical justification for a
// recovery bound R.

#ifndef BTR_SRC_PLANT_OUTAGE_ANALYSIS_H_
#define BTR_SRC_PLANT_OUTAGE_ANALYSIS_H_

#include "src/plant/plant.h"

namespace btr {

enum class OutageMode : int {
  kHoldLast = 0,   // actuator holds the last commanded value
  kFailDefault = 1,  // actuator falls to a fail-safe default (e.g., valve shut)
};

struct OutageParams {
  double control_period = 0.01;  // seconds between controller invocations
  double settle_time = 60.0;     // closed-loop warm-up before the outage
  double outage = 5.0;           // controller silence, seconds
  double recovery_window = 60.0; // observation time after control resumes
  OutageMode mode = OutageMode::kFailDefault;
  double fail_default = 0.0;     // command applied in kFailDefault mode
  double integration_step = 0.001;
};

struct OutageResult {
  double max_excursion = 0.0;    // peak over outage + recovery window
  bool violated = false;         // excursion exceeded 1.0
  bool recovered = false;        // back inside 10% of setpoint at the end
  double excursion_at_resume = 0.0;
};

OutageResult SimulateOutage(Plant* plant, Controller* controller, const OutageParams& params);

// Longest outage (seconds, within [0, hi]) that does not violate the
// envelope, to `tolerance` resolution.
double MaxTolerableOutage(Plant* plant, Controller* controller, OutageParams params,
                          double hi = 120.0, double tolerance = 0.05);

}  // namespace btr

#endif  // BTR_SRC_PLANT_OUTAGE_ANALYSIS_H_
