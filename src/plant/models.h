// The three concrete plants used throughout the experiments.
//
//  * PressureVessel — SCADA water/steam drum: pressure rises under constant
//    heat input and is relieved by a controlled valve. Slow first-order
//    dynamics: tolerates outages on the order of seconds (the paper's
//    pressure-valve example: "the system may need to respond within
//    seconds").
//  * InvertedPendulum — open-loop *unstable*: the state diverges
//    exponentially without control, so tolerable outages are short. The
//    hard case for BTR's recovery bound.
//  * CruiseControl — open-loop stable speed dynamics with drag: drifts
//    slowly toward a safe equilibrium, so it tolerates long outages.
//
// Factory functions also return a matched reference controller and the
// control period each plant expects.

#ifndef BTR_SRC_PLANT_MODELS_H_
#define BTR_SRC_PLANT_MODELS_H_

#include <memory>

#include "src/plant/plant.h"

namespace btr {

// Pressure vessel: dP/dt = heat_in - relief_gain * u * sqrt(max(P, 0)).
// Envelope: P in [p_min, p_max]; setpoint in the middle.
class PressureVessel : public Plant {
 public:
  PressureVessel();

  void Reset() override;
  double Observe() const override { return pressure_; }
  void SetCommand(double u) override;
  double Command() const override { return valve_; }
  void Step(double dt) override;
  double Excursion() const override;
  const std::string& name() const override { return name_; }

  static constexpr double kSetpoint = 10.0;  // bar
  static constexpr double kMin = 2.0;
  static constexpr double kMax = 16.0;

 private:
  std::string name_ = "pressure-vessel";
  double pressure_ = kSetpoint;
  double valve_ = 0.0;
};

// Inverted pendulum (linearized): theta'' = (g/l) * theta - u + d.
// Envelope: |theta| <= kThetaMax.
class InvertedPendulum : public Plant {
 public:
  InvertedPendulum();

  void Reset() override;
  double Observe() const override { return theta_; }
  void SetCommand(double u) override { u_ = u; }
  double Command() const override { return u_; }
  void Step(double dt) override;
  double Excursion() const override;
  const std::string& name() const override { return name_; }

  static constexpr double kThetaMax = 0.5;  // rad

 private:
  std::string name_ = "inverted-pendulum";
  double theta_ = 0.02;  // small initial tilt
  double omega_ = 0.0;
  double u_ = 0.0;
};

// Cruise control: v' = (u - drag * v) / mass, with a headwind disturbance.
// Envelope: |v - setpoint| <= kBand.
class CruiseControl : public Plant {
 public:
  CruiseControl();

  void Reset() override;
  double Observe() const override { return speed_; }
  void SetCommand(double u) override { throttle_ = u; }
  double Command() const override { return throttle_; }
  void Step(double dt) override;
  double Excursion() const override;
  const std::string& name() const override { return name_; }

  static constexpr double kSetpoint = 30.0;  // m/s
  static constexpr double kBand = 5.0;

 private:
  std::string name_ = "cruise-control";
  double speed_ = kSetpoint;
  double throttle_ = 0.0;
};

// Matched reference controllers.
std::unique_ptr<Controller> MakePressureController();
std::unique_ptr<Controller> MakePendulumController();
std::unique_ptr<Controller> MakeCruiseController();

}  // namespace btr

#endif  // BTR_SRC_PLANT_MODELS_H_
