#include "src/plant/models.h"

#include <algorithm>
#include <cmath>

namespace btr {
namespace {

// Pressure vessel parameters.
constexpr double kHeatIn = 0.6;       // bar/s pressure rise at closed valve
constexpr double kReliefGain = 0.4;   // bar/s per unit command at 1 bar
// Pendulum parameters. The constant torque bias models a persistent
// disturbance (payload imbalance / wind); without it the linearized model
// balances exactly at zero and an outage would never matter.
constexpr double kGravityOverLength = 9.81;
constexpr double kTorqueBias = 0.05;
// Cruise parameters.
constexpr double kDragOverMass = 0.005;  // 1/s (200 s time constant)

}  // namespace

PressureVessel::PressureVessel() = default;

void PressureVessel::Reset() {
  pressure_ = kSetpoint;
  valve_ = 0.0;
}

void PressureVessel::SetCommand(double u) { valve_ = std::clamp(u, 0.0, 1.0); }

void PressureVessel::Step(double dt) {
  const double relief = kReliefGain * valve_ * std::sqrt(std::max(pressure_, 0.0));
  pressure_ += (kHeatIn - relief) * dt;
}

double PressureVessel::Excursion() const {
  if (pressure_ >= kSetpoint) {
    return (pressure_ - kSetpoint) / (kMax - kSetpoint);
  }
  return (kSetpoint - pressure_) / (kSetpoint - kMin);
}

InvertedPendulum::InvertedPendulum() = default;

void InvertedPendulum::Reset() {
  theta_ = 0.02;
  omega_ = 0.0;
  u_ = 0.0;
}

void InvertedPendulum::Step(double dt) {
  // Semi-implicit Euler; theta'' = (g/l) * theta + u + bias.
  const double alpha = kGravityOverLength * theta_ + u_ + kTorqueBias;
  omega_ += alpha * dt;
  theta_ += omega_ * dt;
}

double InvertedPendulum::Excursion() const { return std::fabs(theta_) / kThetaMax; }

CruiseControl::CruiseControl() = default;

void CruiseControl::Reset() {
  speed_ = kSetpoint;
  throttle_ = 0.0;
}

void CruiseControl::Step(double dt) {
  speed_ += (throttle_ - kDragOverMass * speed_) * dt;
}

double CruiseControl::Excursion() const { return std::fabs(speed_ - kSetpoint) / kBand; }

std::unique_ptr<Controller> MakePressureController() {
  // Valve command in [0, 1]; pressure error in bar.
  return std::make_unique<PidController>(PressureVessel::kSetpoint, -0.4, -0.05, -0.1, 0.0, 1.0);
}

std::unique_ptr<Controller> MakePendulumController() {
  // u = -kp * theta - kd * theta' (PID on setpoint 0 yields exactly this).
  return std::make_unique<PidController>(0.0, 40.0, 0.0, 10.0, -50.0, 50.0);
}

std::unique_ptr<Controller> MakeCruiseController() {
  return std::make_unique<PidController>(CruiseControl::kSetpoint, 0.5, 0.02, 0.0, 0.0, 2.0);
}

}  // namespace btr
