// Time-triggered schedule tables.
//
// A plan prescribes, for every node, a static table of execution windows
// within the workload period; the runtime dispatches exactly according to
// the table. Tables are the unit the paper's mode switcher swaps out.

#ifndef BTR_SRC_RT_SCHEDULE_H_
#define BTR_SRC_RT_SCHEDULE_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace btr {

// One execution window. `job` is an opaque id owned by the caller (the
// planner maps it to a task replica).
struct ScheduleEntry {
  uint32_t job = 0;
  SimDuration start = 0;     // offset from period start
  SimDuration duration = 0;  // == job WCET
};

// A single node's table for one period.
//
// Storage is copy-on-write: copying a table shares the underlying entry
// vector, and the first mutation of a shared table detaches a private copy.
// The strategy store exploits this — many fault modes prescribe identical
// tables for untouched nodes, and after deduplication they all point at one
// physical entry vector (see Strategy::Insert).
class ScheduleTable {
 public:
  ScheduleTable() = default;

  void Add(uint32_t job, SimDuration start, SimDuration duration);

  const std::vector<ScheduleEntry>& entries() const {
    return entries_ != nullptr ? *entries_ : EmptyEntries();
  }
  bool empty() const { return entries().empty(); }
  size_t size() const { return entries().size(); }

  // Sorts entries by start time (runtime dispatch order).
  void SortByStart();

  // Sum of all window durations (node busy time per period).
  SimDuration BusyTime() const;

  // Utilization of this node given the period.
  double Utilization(SimDuration period) const;

  // Earliest gap of at least `duration` starting at or after `earliest`,
  // within [0, period). Returns -1 if none. Entries must be sorted.
  SimDuration FindGap(SimDuration earliest, SimDuration duration, SimDuration period) const;

  // Validates: entries sorted, non-overlapping, inside [0, period].
  Status Validate(SimDuration period) const;

  // True if both tables are backed by the same physical entry vector
  // (deduplication diagnostics; empty tables compare false unless both
  // share a non-null buffer).
  bool SharesStorageWith(const ScheduleTable& other) const {
    return entries_ != nullptr && entries_ == other.entries_;
  }

  // Identity of the backing entry vector (nullptr for an empty default
  // table); used by the strategy store to count shared storage once.
  const void* storage_key() const { return entries_.get(); }

  friend bool operator==(const ScheduleTable& a, const ScheduleTable& b);

 private:
  static const std::vector<ScheduleEntry>& EmptyEntries();
  // Gives this table sole ownership of its entries before a mutation.
  std::vector<ScheduleEntry>& Detach();

  std::shared_ptr<std::vector<ScheduleEntry>> entries_;
};

}  // namespace btr

#endif  // BTR_SRC_RT_SCHEDULE_H_
