// Time-triggered schedule tables.
//
// A plan prescribes, for every node, a static table of execution windows
// within the workload period; the runtime dispatches exactly according to
// the table. Tables are the unit the paper's mode switcher swaps out.

#ifndef BTR_SRC_RT_SCHEDULE_H_
#define BTR_SRC_RT_SCHEDULE_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace btr {

// One execution window. `job` is an opaque id owned by the caller (the
// planner maps it to a task replica).
struct ScheduleEntry {
  uint32_t job = 0;
  SimDuration start = 0;     // offset from period start
  SimDuration duration = 0;  // == job WCET
};

// A single node's table for one period.
class ScheduleTable {
 public:
  ScheduleTable() = default;

  void Add(uint32_t job, SimDuration start, SimDuration duration);

  const std::vector<ScheduleEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Sorts entries by start time (runtime dispatch order).
  void SortByStart();

  // Sum of all window durations (node busy time per period).
  SimDuration BusyTime() const;

  // Utilization of this node given the period.
  double Utilization(SimDuration period) const;

  // Earliest gap of at least `duration` starting at or after `earliest`,
  // within [0, period). Returns -1 if none. Entries must be sorted.
  SimDuration FindGap(SimDuration earliest, SimDuration duration, SimDuration period) const;

  // Validates: entries sorted, non-overlapping, inside [0, period].
  Status Validate(SimDuration period) const;

 private:
  std::vector<ScheduleEntry> entries_;
};

}  // namespace btr

#endif  // BTR_SRC_RT_SCHEDULE_H_
