#include "src/rt/schedule.h"

#include <algorithm>

namespace btr {

void ScheduleTable::Add(uint32_t job, SimDuration start, SimDuration duration) {
  entries_.push_back(ScheduleEntry{job, start, duration});
}

void ScheduleTable::SortByStart() {
  std::sort(entries_.begin(), entries_.end(), [](const ScheduleEntry& a, const ScheduleEntry& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    return a.job < b.job;
  });
}

SimDuration ScheduleTable::BusyTime() const {
  SimDuration sum = 0;
  for (const ScheduleEntry& e : entries_) {
    sum += e.duration;
  }
  return sum;
}

double ScheduleTable::Utilization(SimDuration period) const {
  if (period <= 0) {
    return 0.0;
  }
  return static_cast<double>(BusyTime()) / static_cast<double>(period);
}

SimDuration ScheduleTable::FindGap(SimDuration earliest, SimDuration duration,
                                   SimDuration period) const {
  SimDuration cursor = earliest < 0 ? 0 : earliest;
  for (const ScheduleEntry& e : entries_) {
    const SimDuration end = e.start + e.duration;
    if (end <= cursor) {
      continue;
    }
    if (e.start >= cursor + duration) {
      break;  // gap before this entry fits
    }
    cursor = end;
  }
  if (cursor + duration > period) {
    return -1;
  }
  return cursor;
}

Status ScheduleTable::Validate(SimDuration period) const {
  SimDuration prev_end = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ScheduleEntry& e = entries_[i];
    if (e.duration <= 0) {
      return Status::InvalidArgument("schedule entry with non-positive duration");
    }
    if (e.start < 0 || e.start + e.duration > period) {
      return Status::InvalidArgument("schedule entry outside period");
    }
    if (i > 0 && e.start < prev_end) {
      return Status::InvalidArgument("overlapping schedule entries");
    }
    if (i > 0 && e.start < entries_[i - 1].start) {
      return Status::InvalidArgument("schedule entries not sorted");
    }
    prev_end = e.start + e.duration;
  }
  return Status::Ok();
}

}  // namespace btr
