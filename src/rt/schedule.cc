#include "src/rt/schedule.h"

#include <algorithm>

namespace btr {

const std::vector<ScheduleEntry>& ScheduleTable::EmptyEntries() {
  static const std::vector<ScheduleEntry> kEmpty;
  return kEmpty;
}

std::vector<ScheduleEntry>& ScheduleTable::Detach() {
  if (entries_ == nullptr) {
    entries_ = std::make_shared<std::vector<ScheduleEntry>>();
  } else if (entries_.use_count() > 1) {
    entries_ = std::make_shared<std::vector<ScheduleEntry>>(*entries_);
  }
  return *entries_;
}

void ScheduleTable::Add(uint32_t job, SimDuration start, SimDuration duration) {
  Detach().push_back(ScheduleEntry{job, start, duration});
}

void ScheduleTable::SortByStart() {
  if (entries_ == nullptr) {
    return;
  }
  std::vector<ScheduleEntry>& entries = Detach();
  std::sort(entries.begin(), entries.end(), [](const ScheduleEntry& a, const ScheduleEntry& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    return a.job < b.job;
  });
}

SimDuration ScheduleTable::BusyTime() const {
  SimDuration sum = 0;
  for (const ScheduleEntry& e : entries()) {
    sum += e.duration;
  }
  return sum;
}

bool operator==(const ScheduleTable& a, const ScheduleTable& b) {
  if (a.entries_ == b.entries_) {
    return true;
  }
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  if (ea.size() != eb.size()) {
    return false;
  }
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].job != eb[i].job || ea[i].start != eb[i].start ||
        ea[i].duration != eb[i].duration) {
      return false;
    }
  }
  return true;
}

double ScheduleTable::Utilization(SimDuration period) const {
  if (period <= 0) {
    return 0.0;
  }
  return static_cast<double>(BusyTime()) / static_cast<double>(period);
}

SimDuration ScheduleTable::FindGap(SimDuration earliest, SimDuration duration,
                                   SimDuration period) const {
  SimDuration cursor = earliest < 0 ? 0 : earliest;
  for (const ScheduleEntry& e : entries()) {
    const SimDuration end = e.start + e.duration;
    if (end <= cursor) {
      continue;
    }
    if (e.start >= cursor + duration) {
      break;  // gap before this entry fits
    }
    cursor = end;
  }
  if (cursor + duration > period) {
    return -1;
  }
  return cursor;
}

Status ScheduleTable::Validate(SimDuration period) const {
  SimDuration prev_end = 0;
  const std::vector<ScheduleEntry>& all = entries();
  for (size_t i = 0; i < all.size(); ++i) {
    const ScheduleEntry& e = all[i];
    if (e.duration <= 0) {
      return Status::InvalidArgument("schedule entry with non-positive duration");
    }
    if (e.start < 0 || e.start + e.duration > period) {
      return Status::InvalidArgument("schedule entry outside period");
    }
    if (i > 0 && e.start < prev_end) {
      return Status::InvalidArgument("overlapping schedule entries");
    }
    if (i > 0 && e.start < all[i - 1].start) {
      return Status::InvalidArgument("schedule entries not sorted");
    }
    prev_end = e.start + e.duration;
  }
  return Status::Ok();
}

}  // namespace btr
