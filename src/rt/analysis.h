// Classical schedulability analyses used by the planner and by ablations:
// utilization bounds, EDF processor-demand analysis, and fixed-priority
// response-time analysis for independent periodic tasks on one node.

#ifndef BTR_SRC_RT_ANALYSIS_H_
#define BTR_SRC_RT_ANALYSIS_H_

#include <vector>

#include "src/common/types.h"

namespace btr {

struct PeriodicTask {
  SimDuration wcet = 0;
  SimDuration period = 0;
  SimDuration deadline = 0;  // relative; <= period (constrained deadlines)
};

// Total utilization sum(wcet/period).
double TotalUtilization(const std::vector<PeriodicTask>& tasks);

// Liu & Layland bound for rate-monotonic: n(2^{1/n} - 1).
double RmUtilizationBound(size_t n);

// Sufficient RM test: utilization <= bound (implicit deadlines assumed).
bool RmUtilizationSchedulable(const std::vector<PeriodicTask>& tasks);

// Exact EDF test for constrained deadlines via processor-demand analysis
// over the hyperperiod (bounded test points).
bool EdfSchedulable(const std::vector<PeriodicTask>& tasks);

// Exact fixed-priority (deadline-monotonic) response-time analysis.
// Returns per-task worst-case response times, or empty if unschedulable.
std::vector<SimDuration> ResponseTimes(const std::vector<PeriodicTask>& tasks);

}  // namespace btr

#endif  // BTR_SRC_RT_ANALYSIS_H_
