#include "src/rt/mixed_criticality.h"

#include <algorithm>

#include "src/common/math_util.h"

namespace btr {

McAnalysisResult AmcRtbAnalyze(const std::vector<McTask>& tasks) {
  McAnalysisResult result;
  result.response_lo.assign(tasks.size(), 0);
  result.response_hi.assign(tasks.size(), 0);

  // Deadline-monotonic priority order.
  std::vector<size_t> order(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&tasks](size_t a, size_t b) {
    if (tasks[a].deadline != tasks[b].deadline) {
      return tasks[a].deadline < tasks[b].deadline;
    }
    return a < b;
  });

  // LO-mode response times: all tasks run, LO WCETs.
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const McTask& task = tasks[order[rank]];
    SimDuration r = task.wcet_lo;
    for (;;) {
      SimDuration interference = 0;
      for (size_t h = 0; h < rank; ++h) {
        const McTask& higher = tasks[order[h]];
        interference += CeilDiv(r, higher.period) * higher.wcet_lo;
      }
      const SimDuration next = task.wcet_lo + interference;
      if (next == r) {
        break;
      }
      r = next;
      if (r > task.deadline) {
        return result;  // unschedulable in LO mode
      }
    }
    if (r > task.deadline) {
      return result;
    }
    result.response_lo[order[rank]] = r;
  }

  // HI-mode (AMC-rtb): HI tasks at HI WCET; LO tasks interfere only up to
  // the LO-mode response time of the task under analysis.
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t idx = order[rank];
    const McTask& task = tasks[idx];
    if (!task.high_criticality) {
      continue;
    }
    const SimDuration r_lo = result.response_lo[idx];
    SimDuration r = task.wcet_hi;
    for (;;) {
      SimDuration interference = 0;
      for (size_t h = 0; h < rank; ++h) {
        const size_t hidx = order[h];
        const McTask& higher = tasks[hidx];
        if (higher.high_criticality) {
          interference += CeilDiv(r, higher.period) * higher.wcet_hi;
        } else {
          // LO tasks stop being released after the mode switch, which can
          // happen no later than r_lo into the busy period.
          interference += CeilDiv(r_lo, higher.period) * higher.wcet_lo;
        }
      }
      const SimDuration next = task.wcet_hi + interference;
      if (next == r) {
        break;
      }
      r = next;
      if (r > task.deadline) {
        return result;  // unschedulable in HI mode
      }
    }
    if (r > task.deadline) {
      return result;
    }
    result.response_hi[idx] = r;
  }
  result.schedulable = true;
  return result;
}

}  // namespace btr
