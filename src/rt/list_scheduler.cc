#include "src/rt/list_scheduler.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace btr {

ListScheduler::ListScheduler(size_t node_count, SimDuration period)
    : node_count_(node_count), period_(period) {}

StatusOr<SchedResult> ListScheduler::Schedule(const std::vector<SchedJob>& jobs,
                                              const std::vector<SchedEdge>& edges) const {
  const size_t n = jobs.size();
  for (const SchedJob& j : jobs) {
    if (j.id >= n) {
      return Status::InvalidArgument("job ids must be dense 0..n-1");
    }
    if (j.node >= node_count_) {
      return Status::InvalidArgument("job assigned to unknown node");
    }
    if (j.wcet <= 0) {
      return Status::InvalidArgument("job with non-positive wcet");
    }
  }
  std::vector<std::vector<SchedEdge>> out_edges(n);
  std::vector<size_t> in_degree(n, 0);
  for (const SchedEdge& e : edges) {
    if (e.from >= n || e.to >= n) {
      return Status::InvalidArgument("edge references unknown job");
    }
    out_edges[e.from].push_back(e);
    ++in_degree[e.to];
  }

  SchedResult result;
  result.start.assign(n, -1);
  result.finish.assign(n, -1);
  result.tables.assign(node_count_, ScheduleTable());

  // earliest[j]: earliest start honoring release + finished predecessors.
  std::vector<SimDuration> earliest(n);
  for (const SchedJob& j : jobs) {
    earliest[j.id] = j.release;
  }

  // Ready set ordered by (deadline, priority_rank, id) for determinism.
  auto cmp = [&jobs](uint32_t a, uint32_t b) {
    const SchedJob& ja = jobs[a];
    const SchedJob& jb = jobs[b];
    if (ja.deadline != jb.deadline) {
      return ja.deadline < jb.deadline;
    }
    if (ja.priority_rank != jb.priority_rank) {
      return ja.priority_rank < jb.priority_rank;
    }
    return a < b;
  };
  std::set<uint32_t, decltype(cmp)> ready(cmp);
  for (const SchedJob& j : jobs) {
    if (in_degree[j.id] == 0) {
      ready.insert(j.id);
    }
  }

  size_t scheduled = 0;
  while (!ready.empty()) {
    const uint32_t id = *ready.begin();
    ready.erase(ready.begin());
    const SchedJob& job = jobs[id];

    ScheduleTable& table = result.tables[job.node];
    table.SortByStart();
    const SimDuration start = table.FindGap(earliest[id], job.wcet, period_);
    if (start < 0) {
      return Status::Infeasible("no gap for job " + std::to_string(id) + " on node " +
                                std::to_string(job.node));
    }
    const SimDuration finish = start + job.wcet;
    if (job.deadline != kSimTimeNever && finish > job.deadline) {
      return Status::Infeasible("job " + std::to_string(id) + " misses deadline");
    }
    table.Add(id, start, job.wcet);
    result.start[id] = start;
    result.finish[id] = finish;
    result.makespan = std::max(result.makespan, finish);
    ++scheduled;

    for (const SchedEdge& e : out_edges[id]) {
      const SchedJob& succ = jobs[e.to];
      const SimDuration delay = succ.node == job.node ? 0 : e.comm_delay;
      earliest[e.to] = std::max(earliest[e.to], finish + delay);
      if (--in_degree[e.to] == 0) {
        ready.insert(e.to);
      }
    }
  }
  if (scheduled != n) {
    return Status::InvalidArgument("precedence graph has a cycle");
  }
  for (ScheduleTable& t : result.tables) {
    t.SortByStart();
  }
  return result;
}

}  // namespace btr
