// Vestal-style mixed-criticality schedulability (single node).
//
// The paper notes that CPS run mixed-criticality workloads and that BTR's
// fine-grained degradation needs criticality-aware scheduling. This module
// provides the standard dual-criticality model: each task has a LO and HI
// WCET estimate; HI-criticality tasks must stay schedulable when every HI
// task exhibits its HI WCET, while LO tasks may be dropped in HI mode.
// Implements the AMC-rtb (adaptive mixed criticality, response-time bound)
// test of Baruah/Burns/Davis.

#ifndef BTR_SRC_RT_MIXED_CRITICALITY_H_
#define BTR_SRC_RT_MIXED_CRITICALITY_H_

#include <vector>

#include "src/common/types.h"

namespace btr {

struct McTask {
  SimDuration wcet_lo = 0;
  SimDuration wcet_hi = 0;  // >= wcet_lo for HI tasks; ignored for LO tasks
  SimDuration period = 0;
  SimDuration deadline = 0;  // relative, <= period
  bool high_criticality = false;
};

struct McAnalysisResult {
  bool schedulable = false;
  std::vector<SimDuration> response_lo;  // per task, LO mode
  std::vector<SimDuration> response_hi;  // HI tasks only (0 for LO tasks)
};

// Audsley-style priority assignment + AMC-rtb test. Deadline-monotonic
// ordering is used as the base priority order.
McAnalysisResult AmcRtbAnalyze(const std::vector<McTask>& tasks);

}  // namespace btr

#endif  // BTR_SRC_RT_MIXED_CRITICALITY_H_
