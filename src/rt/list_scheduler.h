// Precedence-constrained list scheduling onto assigned nodes.
//
// Given jobs already mapped to nodes (the planner's placement step) plus
// precedence edges carrying communication delays, builds per-node
// time-triggered tables and per-job start times, or reports infeasibility
// against the jobs' deadlines. Deterministic: ready jobs are ordered by
// (deadline, criticality rank, id).

#ifndef BTR_SRC_RT_LIST_SCHEDULER_H_
#define BTR_SRC_RT_LIST_SCHEDULER_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/rt/schedule.h"

namespace btr {

struct SchedJob {
  uint32_t id = 0;          // dense 0..n-1
  uint32_t node = 0;        // assigned processing node
  SimDuration wcet = 0;
  SimDuration release = 0;  // earliest start within the period
  // Latest allowed completion within the period; kSimTimeNever = unconstrained.
  SimDuration deadline = kSimTimeNever;
  int priority_rank = 0;    // lower = more urgent tie-break (e.g., -criticality)
};

struct SchedEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  SimDuration comm_delay = 0;  // message latency if from/to are on different nodes
};

struct SchedResult {
  std::vector<SimDuration> start;   // per job, offset within period
  std::vector<SimDuration> finish;  // start + wcet
  std::vector<ScheduleTable> tables;  // per node
  SimDuration makespan = 0;
};

class ListScheduler {
 public:
  // `node_count` bounds job.node values. `period` bounds the tables.
  ListScheduler(size_t node_count, SimDuration period);

  // Schedules all jobs; fails with kInfeasible if any deadline is missed or
  // a job cannot fit in the period.
  StatusOr<SchedResult> Schedule(const std::vector<SchedJob>& jobs,
                                 const std::vector<SchedEdge>& edges) const;

 private:
  size_t node_count_;
  SimDuration period_;
};

}  // namespace btr

#endif  // BTR_SRC_RT_LIST_SCHEDULER_H_
