#include "src/rt/analysis.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"

namespace btr {

double TotalUtilization(const std::vector<PeriodicTask>& tasks) {
  double u = 0.0;
  for (const PeriodicTask& t : tasks) {
    u += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  return u;
}

double RmUtilizationBound(size_t n) {
  if (n == 0) {
    return 1.0;
  }
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool RmUtilizationSchedulable(const std::vector<PeriodicTask>& tasks) {
  return TotalUtilization(tasks) <= RmUtilizationBound(tasks.size()) + 1e-12;
}

namespace {

// Demand bound function: total execution demand of jobs with both release
// and deadline inside [0, t].
int64_t DemandBound(const std::vector<PeriodicTask>& tasks, int64_t t) {
  int64_t demand = 0;
  for (const PeriodicTask& task : tasks) {
    if (t >= task.deadline) {
      const int64_t jobs = (t - task.deadline) / task.period + 1;
      demand += jobs * task.wcet;
    }
  }
  return demand;
}

}  // namespace

bool EdfSchedulable(const std::vector<PeriodicTask>& tasks) {
  if (tasks.empty()) {
    return true;
  }
  for (const PeriodicTask& t : tasks) {
    if (t.wcet <= 0 || t.period <= 0 || t.deadline <= 0 || t.deadline > t.period) {
      return false;
    }
  }
  const double u = TotalUtilization(tasks);
  if (u > 1.0 + 1e-12) {
    return false;
  }
  // Check all deadlines up to the hyperperiod (constrained deadlines make
  // the busy-period bound unnecessary for our problem sizes).
  std::vector<int64_t> periods;
  periods.reserve(tasks.size());
  for (const PeriodicTask& t : tasks) {
    periods.push_back(t.period);
  }
  const int64_t horizon = LcmAll(periods);
  for (const PeriodicTask& t : tasks) {
    for (int64_t d = t.deadline; d <= horizon; d += t.period) {
      if (DemandBound(tasks, d) > d) {
        return false;
      }
    }
  }
  return true;
}

std::vector<SimDuration> ResponseTimes(const std::vector<PeriodicTask>& tasks) {
  // Deadline-monotonic priority order (shorter relative deadline first).
  std::vector<size_t> order(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&tasks](size_t a, size_t b) {
    if (tasks[a].deadline != tasks[b].deadline) {
      return tasks[a].deadline < tasks[b].deadline;
    }
    return a < b;
  });

  std::vector<SimDuration> response(tasks.size(), 0);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const PeriodicTask& task = tasks[order[rank]];
    SimDuration r = task.wcet;
    for (;;) {
      SimDuration interference = 0;
      for (size_t h = 0; h < rank; ++h) {
        const PeriodicTask& higher = tasks[order[h]];
        interference += CeilDiv(r, higher.period) * higher.wcet;
      }
      const SimDuration next = task.wcet + interference;
      if (next == r) {
        break;
      }
      r = next;
      if (r > task.deadline) {
        return {};
      }
    }
    if (r > task.deadline) {
      return {};
    }
    response[order[rank]] = r;
  }
  return response;
}

}  // namespace btr
