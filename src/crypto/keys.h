// Simulated message authentication.
//
// The paper assumes nodes can sign messages so that evidence of misbehavior
// is independently verifiable. We simulate signatures that are unforgeable
// *by construction*: a Signer holds its node's secret and is handed only to
// that node's runtime (including a Byzantine one), so a compromised node can
// sign arbitrary content with its own key but can never produce another
// node's signature. Verification recomputes the tag through the KeyStore.
//
// Sign/verify consume simulated CPU time through CryptoCostModel, which is
// what the efficiency experiments (E1, E10) actually measure.

#ifndef BTR_SRC_CRYPTO_KEYS_H_
#define BTR_SRC_CRYPTO_KEYS_H_

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace btr {

// A detached signature over a 64-bit content digest.
struct Signature {
  NodeId signer;
  uint64_t tag = 0;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.tag == b.tag;
  }
};

// Costs charged to the signing/verifying node's CPU schedule.
struct CryptoCostModel {
  SimDuration sign_cost = Microseconds(20);
  SimDuration verify_cost = Microseconds(40);
  // Verifying replay-based evidence additionally costs the replayed WCET.
};

class KeyStore;

// Capability to sign with one node's key. Handed out once per node.
class Signer {
 public:
  Signature Sign(uint64_t digest) const;
  NodeId node() const { return node_; }

 private:
  friend class KeyStore;
  Signer(NodeId node, uint64_t secret) : node_(node), secret_(secret) {}

  NodeId node_;
  uint64_t secret_;
};

class KeyStore {
 public:
  // Generates per-node secrets for nodes [0, node_count).
  KeyStore(size_t node_count, Rng* rng);

  // Returns the signing capability for `node`. Each node's runtime should be
  // given exactly its own signer.
  Signer SignerFor(NodeId node) const;

  // Checks that `sig` is a valid signature by `sig.signer` over `digest`.
  bool Verify(const Signature& sig, uint64_t digest) const;

  size_t node_count() const { return secrets_.size(); }

 private:
  uint64_t SecretFor(NodeId node) const;

  std::vector<uint64_t> secrets_;
};

}  // namespace btr

#endif  // BTR_SRC_CRYPTO_KEYS_H_
