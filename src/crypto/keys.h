// Simulated message authentication.
//
// The paper assumes nodes can sign messages so that evidence of misbehavior
// is independently verifiable. We simulate signatures that are unforgeable
// *by construction*: a Signer holds its node's secret and is handed only to
// that node's runtime (including a Byzantine one), so a compromised node can
// sign arbitrary content with its own key but can never produce another
// node's signature. Verification recomputes the tag through the KeyStore.
//
// Sign/verify consume simulated CPU time through CryptoCostModel, which is
// what the efficiency experiments (E1, E10) actually measure.

#ifndef BTR_SRC_CRYPTO_KEYS_H_
#define BTR_SRC_CRYPTO_KEYS_H_

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace btr {

namespace crypto_internal {
// Tag derivation shared by Sign and Verify. Inline: the data plane signs
// or verifies something on nearly every message event.
inline uint64_t Tag(uint64_t secret, uint64_t digest) {
  return HashCombine(HashCombine(secret, digest), 0x5174a9b1c3d5e7f9ULL);
}
}  // namespace crypto_internal

// A detached signature over a 64-bit content digest.
struct Signature {
  NodeId signer;
  uint64_t tag = 0;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.tag == b.tag;
  }
};

// Costs charged to the signing/verifying node's CPU schedule.
struct CryptoCostModel {
  SimDuration sign_cost = Microseconds(20);
  SimDuration verify_cost = Microseconds(40);
  // Verifying replay-based evidence additionally costs the replayed WCET.
};

class KeyStore;

// Capability to sign with one node's key. Handed out once per node.
class Signer {
 public:
  Signature Sign(uint64_t digest) const {
    return Signature{node_, crypto_internal::Tag(secret_, digest)};
  }
  NodeId node() const { return node_; }

 private:
  friend class KeyStore;
  Signer(NodeId node, uint64_t secret) : node_(node), secret_(secret) {}

  NodeId node_;
  uint64_t secret_;
};

class KeyStore {
 public:
  // Generates per-node secrets for nodes [0, node_count).
  KeyStore(size_t node_count, Rng* rng);

  // Returns the signing capability for `node`. Each node's runtime should be
  // given exactly its own signer.
  Signer SignerFor(NodeId node) const;

  // Checks that `sig` is a valid signature by `sig.signer` over `digest`.
  bool Verify(const Signature& sig, uint64_t digest) const {
    if (!sig.signer.valid() || sig.signer.value() >= secrets_.size()) {
      return false;
    }
    return sig.tag == crypto_internal::Tag(secrets_[sig.signer.value()], digest);
  }

  // Verifies n (signature, digest) pairs in one pass: out[i] =
  // Verify(sigs[i], digests[i]). The batched evidence-verification loop
  // uses this so a queue drain costs one call instead of one per item.
  void VerifyBatch(const Signature* sigs, const uint64_t* digests, bool* out, size_t n) const;

  size_t node_count() const { return secrets_.size(); }

 private:
  uint64_t SecretFor(NodeId node) const;

  std::vector<uint64_t> secrets_;
};

}  // namespace btr

#endif  // BTR_SRC_CRYPTO_KEYS_H_
