#include "src/crypto/keys.h"

#include <cassert>

namespace btr {
namespace {

uint64_t Tag(uint64_t secret, uint64_t digest) {
  return HashCombine(HashCombine(secret, digest), 0x5174a9b1c3d5e7f9ULL);
}

}  // namespace

Signature Signer::Sign(uint64_t digest) const {
  return Signature{node_, Tag(secret_, digest)};
}

KeyStore::KeyStore(size_t node_count, Rng* rng) {
  secrets_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    secrets_.push_back(rng->Next() | 1);  // never zero
  }
}

Signer KeyStore::SignerFor(NodeId node) const { return Signer(node, SecretFor(node)); }

bool KeyStore::Verify(const Signature& sig, uint64_t digest) const {
  if (!sig.signer.valid() || sig.signer.value() >= secrets_.size()) {
    return false;
  }
  return sig.tag == Tag(SecretFor(sig.signer), digest);
}

uint64_t KeyStore::SecretFor(NodeId node) const {
  assert(node.valid() && node.value() < secrets_.size());
  return secrets_[node.value()];
}

}  // namespace btr
