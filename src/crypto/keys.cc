#include "src/crypto/keys.h"

#include <cassert>

namespace btr {

KeyStore::KeyStore(size_t node_count, Rng* rng) {
  secrets_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    secrets_.push_back(rng->Next() | 1);  // never zero
  }
}

Signer KeyStore::SignerFor(NodeId node) const { return Signer(node, SecretFor(node)); }

void KeyStore::VerifyBatch(const Signature* sigs, const uint64_t* digests, bool* out,
                           size_t n) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Verify(sigs[i], digests[i]);
  }
}

uint64_t KeyStore::SecretFor(NodeId node) const {
  assert(node.valid() && node.value() < secrets_.size());
  return secrets_[node.value()];
}

}  // namespace btr
