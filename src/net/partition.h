// Topology-aware shard partitioner for the parallel simulator.
//
// Groups nodes by link locality: nodes joined by low-latency links carry
// the densest traffic (and the tightest event coupling), so the greedy
// grower keeps them on one shard and pushes shard boundaries onto the
// slowest links. That maximizes the conservative lookahead — the minimum
// over cut links of (propagation + fastest possible serialization) — which
// directly sets how wide a window every shard can execute without
// synchronizing.
//
// The partition is a pure function of (topology, shard count, network
// config): no RNG, no iteration-order dependence, so a given scenario
// always produces the same layout on every host. Correctness never depends
// on the partition anyway — reports are byte-identical for any layout —
// but a stable one keeps scaling numbers comparable.

#ifndef BTR_SRC_NET_PARTITION_H_
#define BTR_SRC_NET_PARTITION_H_

#include <cstdint>

#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/shard_layout.h"

namespace btr {

// Fastest time any message can occupy `link` and arrive: propagation plus
// the serialization of a minimum-size frame (config.min_frame_bytes,
// floored at 1) at the largest class fraction. Every real hop takes at
// least this long, which is what makes it a sound lookahead bound.
SimDuration MinHopLatency(const Topology& topo, const NetworkConfig& config, LinkId link);

// Partitions `topo` into at most `shards` shards (clamped to the node
// count) and computes the lookahead over the resulting cut links.
// shards <= 1 yields the degenerate single-shard layout.
ShardLayout PartitionTopology(const Topology& topo, uint32_t shards,
                              const NetworkConfig& config);

}  // namespace btr

#endif  // BTR_SRC_NET_PARTITION_H_
