#include "src/net/topology.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace btr {

NodeId Topology::AddNodes(size_t count) {
  const NodeId first(static_cast<uint32_t>(node_count_));
  node_count_ += count;
  links_at_.resize(node_count_);
  neighbors_cache_.resize(node_count_);
  return first;
}

NodeId Topology::AddNode() { return AddNodes(1); }

LinkId Topology::AddLink(std::vector<NodeId> endpoints, int64_t bandwidth_bps,
                         SimDuration propagation, std::string name) {
  assert(endpoints.size() >= 2);
  const LinkId id(static_cast<uint32_t>(links_.size()));
  for (NodeId n : endpoints) {
    assert(n.valid() && n.value() < node_count_);
    links_at_[n.value()].push_back(id);
  }
  LinkSpec spec;
  spec.id = id;
  spec.endpoints = std::move(endpoints);
  spec.bandwidth_bps = bandwidth_bps;
  spec.propagation = propagation;
  spec.name = name.empty() ? "link" + std::to_string(id.value()) : std::move(name);
  links_.push_back(std::move(spec));
  // Incremental adjacency update: splice the new link's endpoints into each
  // other's sorted, deduplicated neighbor lists (O(endpoints^2) per link,
  // not a full-graph rebuild).
  const std::vector<NodeId>& eps = links_.back().endpoints;
  for (NodeId a : eps) {
    std::vector<NodeId>& nbrs = neighbors_cache_[a.value()];
    for (NodeId b : eps) {
      if (b == a) {
        continue;
      }
      const auto pos = std::lower_bound(nbrs.begin(), nbrs.end(), b);
      if (pos == nbrs.end() || *pos != b) {
        nbrs.insert(pos, b);
      }
    }
  }
  return id;
}

void Topology::SetLinkDynamics(LinkId link, double loss, SimDuration duty_on,
                               SimDuration duty_period) {
  assert(link.valid() && link.value() < links_.size());
  assert(loss >= 0.0 && loss < 1.0);
  assert(duty_period == 0 || (duty_on > 0 && duty_on <= duty_period));
  LinkSpec& spec = links_[link.value()];
  spec.loss = loss;
  spec.duty_on = duty_on;
  spec.duty_period = duty_period;
}

LinkId Topology::FindLink(const std::string& name) const {
  for (const LinkSpec& l : links_) {
    if (l.name == name) {
      return l.id;
    }
  }
  return LinkId::Invalid();
}

const std::vector<LinkId>& Topology::LinksAt(NodeId node) const {
  assert(node.valid() && node.value() < node_count_);
  return links_at_[node.value()];
}

bool Topology::Attaches(LinkId link, NodeId node) const {
  const auto& eps = links_[link.value()].endpoints;
  return std::find(eps.begin(), eps.end(), node) != eps.end();
}

const std::vector<NodeId>& Topology::Neighbors(NodeId node) const {
  assert(node.valid() && node.value() < node_count_);
  return neighbors_cache_[node.value()];
}

Status Topology::Validate() const {
  if (node_count_ == 0) {
    return Status::InvalidArgument("topology has no nodes");
  }
  for (size_t n = 0; n < node_count_; ++n) {
    if (links_at_[n].empty()) {
      return Status::InvalidArgument("node n" + std::to_string(n) + " has no links");
    }
  }
  for (const LinkSpec& l : links_) {
    if (l.endpoints.size() < 2) {
      return Status::InvalidArgument(l.name + " has fewer than 2 endpoints");
    }
    if (l.bandwidth_bps <= 0) {
      return Status::InvalidArgument(l.name + " has non-positive bandwidth");
    }
    std::set<NodeId> uniq(l.endpoints.begin(), l.endpoints.end());
    if (uniq.size() != l.endpoints.size()) {
      return Status::InvalidArgument(l.name + " has duplicate endpoints");
    }
    if (l.loss < 0.0 || l.loss >= 1.0) {
      return Status::InvalidArgument(l.name + " has loss outside [0, 1)");
    }
    if (l.duty_period < 0 || (l.duty_period > 0 && (l.duty_on <= 0 || l.duty_on > l.duty_period))) {
      return Status::InvalidArgument(l.name + " has an invalid duty cycle");
    }
  }
  return Status::Ok();
}

Topology Topology::SharedBus(size_t nodes, int64_t bandwidth_bps, SimDuration propagation) {
  Topology t;
  t.AddNodes(nodes);
  std::vector<NodeId> all;
  all.reserve(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    all.push_back(NodeId(static_cast<uint32_t>(i)));
  }
  t.AddLink(std::move(all), bandwidth_bps, propagation, "bus");
  return t;
}

Topology Topology::Ring(size_t nodes, int64_t bandwidth_bps, SimDuration propagation) {
  Topology t;
  t.AddNodes(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    const NodeId a(static_cast<uint32_t>(i));
    const NodeId b(static_cast<uint32_t>((i + 1) % nodes));
    t.AddLink({a, b}, bandwidth_bps, propagation, "ring" + std::to_string(i));
  }
  return t;
}

Topology Topology::DualBus(size_t nodes, size_t split, int64_t bandwidth_bps,
                           SimDuration propagation) {
  assert(split >= 1 && split < nodes);
  Topology t;
  t.AddNodes(nodes);
  std::vector<NodeId> bus_a;
  std::vector<NodeId> bus_b;
  for (size_t i = 0; i < nodes; ++i) {
    if (i < split) {
      bus_a.push_back(NodeId(static_cast<uint32_t>(i)));
    } else {
      bus_b.push_back(NodeId(static_cast<uint32_t>(i)));
    }
  }
  // The last node of bus A and the first of bus B act as gateways on both.
  bus_a.push_back(bus_b.front());
  bus_b.push_back(NodeId(static_cast<uint32_t>(split - 1)));
  t.AddLink(std::move(bus_a), bandwidth_bps, propagation, "busA");
  t.AddLink(std::move(bus_b), bandwidth_bps, propagation, "busB");
  return t;
}

Topology Topology::Mesh(size_t nodes, int64_t bandwidth_bps, SimDuration propagation) {
  Topology t;
  t.AddNodes(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t j = i + 1; j < nodes; ++j) {
      t.AddLink({NodeId(static_cast<uint32_t>(i)), NodeId(static_cast<uint32_t>(j))},
                bandwidth_bps, propagation,
                "p2p" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  return t;
}

}  // namespace btr
