// Shortest-path routing over the topology.
//
// Routes are computed once (statically) per topology + down-node set, which
// matches the paper's static-plan philosophy: a plan implies fixed routes,
// and a mode change installs routes that avoid the faulty nodes.

#ifndef BTR_SRC_NET_ROUTING_H_
#define BTR_SRC_NET_ROUTING_H_

#include <vector>

#include "src/common/types.h"
#include "src/net/topology.h"

namespace btr {

struct Hop {
  NodeId sender;  // who transmits on this hop
  LinkId link;
  NodeId receiver;
};

using Route = std::vector<Hop>;

class RoutingTable {
 public:
  // Computes all-pairs routes avoiding nodes in `excluded` as relays.
  // Excluded nodes may still be route endpoints (messages to/from them).
  RoutingTable(const Topology& topo, const std::vector<NodeId>& excluded = {});

  // Route from src to dst; empty if unreachable or src == dst.
  const Route& RouteBetween(NodeId src, NodeId dst) const;

  bool Reachable(NodeId src, NodeId dst) const;

  // Number of hops (0 means unreachable or same node).
  size_t HopCount(NodeId src, NodeId dst) const;

  // Sum of propagation delays along the route.
  SimDuration PathPropagation(NodeId src, NodeId dst) const;

  // True if `relay` appears as an intermediate node on the src->dst route.
  bool RouteUsesRelay(NodeId src, NodeId dst, NodeId relay) const;

  // True if any route in the table traverses `link`. Incremental replanning
  // uses this to decide whether a re-measured link can affect a mode's
  // latency budgets at all.
  //
  // (Deliberately no operator==: raw hop comparison is wrong across any
  // topology edit that renumbers links; cross-edit route comparison needs
  // an id translation — see RoutesEquivalent in strategy_builder.cc.)
  bool UsesLink(LinkId link) const;

 private:
  size_t Index(NodeId src, NodeId dst) const { return src.value() * n_ + dst.value(); }

  size_t n_;
  std::vector<Route> routes_;          // n*n, row-major
  std::vector<SimDuration> path_propagation_;
  Route empty_;
};

}  // namespace btr

#endif  // BTR_SRC_NET_ROUTING_H_
