// Trickle-style gossip dissemination for the install plane.
//
// PR 4's rollout was one distributor unicasting N copies of the same bytes,
// paced at the first-hop serialization rate; on a shared bus that is N-1
// redundant transmissions, and the burst starves the distributor's own
// control-class heartbeats into false omission convictions (the failure mode
// convoy_staged_task.btrx used to annotate with heartbeats=0).
//
// This module holds the transport-agnostic protocol core, in the spirit of
// Trickle (Levis et al.):
//
//  - TrickleTimer: version-announcing beacons on a randomized (but
//    deterministic: hash-jittered) interval that doubles while the
//    neighborhood is consistent and resets to the minimum on inconsistency.
//    A beacon is suppressed when >= k neighbors already announced the same
//    version this interval. After `quiescent_intervals` maximum-length
//    intervals with no dissemination traffic the timer goes dormant, so a
//    converged (or isolated) fleet stops generating events and the
//    simulation drains.
//  - Chunk planning: artifact transfers are split into chunks sized so one
//    chunk's serialization time is at most `pace_fraction` of the workload
//    period, and consecutive chunks are spaced by a duty factor. A
//    heartbeat that queues behind a rollout therefore waits at most one
//    chunk time — far less than the two consecutive missed periods an
//    omission declaration requires.
//  - GossipSession: per-node protocol state — the timer, a per-peer version
//    vector (last fingerprint each neighbor announced), resumable transfer
//    reassembly (a re-request carries the contiguous chunk count already
//    held, so any server resumes from that offset), and a per-link serve
//    queue.
//
// The actual wiring — payload structs, Network::Send, simulator timers —
// lives in src/core/runtime.cc; this header deliberately has no core/
// dependencies so the protocol can be unit-tested in isolation.

#ifndef BTR_SRC_NET_DISSEMINATION_H_
#define BTR_SRC_NET_DISSEMINATION_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace btr {

enum class DissemMode : uint8_t {
  kUnicast = 0,  // PR 4 behavior: distributor ships point-to-point
  kGossip = 1,   // beacons + suppression + multi-hop relay
};

const char* DissemModeName(DissemMode mode);
// Returns true and sets *mode on "unicast" / "gossip".
bool ParseDissemMode(const std::string& text, DissemMode* mode);

struct DissemConfig {
  DissemMode mode = DissemMode::kUnicast;
  // Minimum Trickle interval. 0 means "one workload period", resolved when
  // the session starts (the natural beat of the system being edited).
  SimDuration beacon_period = 0;
  // Suppress our beacon when we heard >= k consistent announcements this
  // interval.
  uint32_t suppression_k = 1;
  // Interval doubles up to beacon_period << max_doublings.
  uint32_t max_doublings = 4;
  // One chunk's serialization time is capped at this fraction of the
  // workload period, so a queued heartbeat is delayed by less than a period.
  double pace_fraction = 0.25;
  // Fraction of the wire a transfer may occupy: the gap after a chunk is
  // tx * (1 - duty) / duty.
  double pace_duty = 0.5;
  // Dormancy after this many consecutive max-length intervals with no
  // dissemination traffic.
  uint32_t quiescent_intervals = 2;
};

// What a chunk stream carries. Relay-capable nodes receive the full artifact
// (they re-serve it); leaf nodes (single-neighbor) receive only their own
// slice, which is where gossip's bytes-on-bus win over unicast comes from.
enum class DissemContent : uint8_t {
  kPatchFull = 0,   // whole BTRPATCH (parse + carve own slice, then relay)
  kPatchSlice = 1,  // per-node BTRPATCH slice (apply only)
  kBlobFull = 2,    // whole BTRSTRATEGY blob
  kBlobSlice = 3,   // per-node BTRSLICE
};

inline bool DissemContentIsFull(DissemContent c) {
  return c == DissemContent::kPatchFull || c == DissemContent::kBlobFull;
}
inline bool DissemContentIsPatch(DissemContent c) {
  return c == DissemContent::kPatchFull || c == DissemContent::kPatchSlice;
}

// Modeled wire sizes for the small control messages.
inline constexpr uint32_t kDissemBeaconBytes = 32;
inline constexpr uint32_t kDissemRequestBytes = 24;
// Per-chunk framing added on top of the payload share.
inline constexpr uint32_t kDissemChunkHeaderBytes = 24;

class TrickleTimer {
 public:
  TrickleTimer() = default;
  // `key` seeds the jitter hash (target fingerprint works well): two nodes
  // never fire at identical offsets, and reruns are bit-reproducible.
  TrickleTimer(const DissemConfig& config, uint32_t node, uint64_t key);

  // (Re)start at the minimum interval. Also the dormancy wake-up call.
  void Start(SimTime now);
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  SimTime fire_at() const { return fire_at_; }
  SimTime end_at() const { return end_at_; }

  // A neighbor announced the same version we would: count toward
  // suppression.
  void OnConsistent() { ++consistent_; }
  // A neighbor announced a different version: classic Trickle resets the
  // interval to the minimum (if not already there). Returns true when the
  // interval restarted and the caller must reschedule its fire/end events.
  bool OnInconsistent(SimTime now);
  // Any dissemination traffic arrived; defers dormancy.
  void NoteActivity() { activity_ = true; }

  // At fire_at: should we transmit a beacon, or did suppression win?
  bool ShouldSendAtFire() const { return consistent_ < config_.suppression_k; }

  // At end_at: advance to the next interval. Returns false when the timer
  // went dormant (caller stops rescheduling; Start() revives it).
  bool OnIntervalEnd(SimTime now);

 private:
  void BeginInterval(SimTime now);

  DissemConfig config_;
  uint32_t node_ = 0;
  uint64_t key_ = 0;
  SimDuration interval_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
  uint64_t index_ = 0;  // monotonic across restarts: fresh jitter each time
  uint32_t consistent_ = 0;
  uint32_t quiet_ = 0;
  bool activity_ = false;
  bool running_ = false;
  SimTime fire_at_ = 0;
  SimTime end_at_ = 0;
};

// Chunking plan for one artifact transfer.
struct ChunkPlan {
  uint32_t chunk_bytes = 0;  // wire bytes per chunk (last may be smaller)
  uint32_t total = 0;        // number of chunks
};

// Sizes chunks so that chunk_bytes * per_byte_tx <= pace_fraction * period.
// `per_byte_tx` is the control-class serialization cost of one byte on the
// link the transfer will use.
ChunkPlan PlanChunks(uint64_t total_bytes, SimDuration per_byte_tx, SimDuration period,
                     const DissemConfig& config);

// Gap-inclusive spacing: the next chunk goes out at send_time + ChunkSpacing.
SimDuration ChunkSpacing(SimDuration chunk_tx, const DissemConfig& config);

struct DissemAgentStats {
  uint64_t beacons_sent = 0;
  uint64_t beacons_suppressed = 0;
  uint64_t requests_sent = 0;
  uint64_t chunks_sent = 0;
  uint64_t bytes_sent = 0;        // wire bytes: beacons + requests + chunks
  uint64_t patch_payload_bytes = 0;  // artifact payload served, patch family
  uint64_t full_payload_bytes = 0;   // artifact payload served, blob family
  uint64_t serves = 0;            // transfers completed as a server
  uint64_t resumes = 0;           // serves that started at a nonzero offset
  uint64_t fallbacks = 0;         // want_blob re-requests after a patch failure

  void MergeFrom(const DissemAgentStats& o);
};

// Reassembly of one inbound transfer. `received` is the contiguous prefix:
// chunks arriving out of order (a drop in the middle) are ignored and the
// progress timeout re-requests from this offset — the resume path.
struct DissemReassembly {
  bool active = false;
  DissemContent content = DissemContent::kPatchFull;
  uint64_t content_fp = 0;
  uint32_t received = 0;
  uint32_t total = 0;
};

struct PendingServe {
  NodeId to;
  DissemContent content = DissemContent::kPatchFull;
  uint32_t start_chunk = 0;
  LinkId link;  // guardian this serve occupies; one active serve per link
  uint64_t content_fp = 0;  // fingerprint of the artifact text, every chunk
};

// Per-node gossip protocol state for one rollout. Owned by NodeRuntime;
// created when the rollout is announced, torn down with the node.
struct GossipSession {
  GossipSession(const DissemConfig& config, uint32_t self, uint64_t target_fp,
                size_t node_count);

  DissemConfig config;
  TrickleTimer timer;
  // Generation guard: scheduled fire/end events capture the generation at
  // scheduling time and no-op if a reset has since replaced the interval.
  uint32_t timer_generation = 0;

  uint64_t target_fp = 0;
  // Version vector: last fingerprint each peer announced (0 = never heard).
  std::vector<uint64_t> peer_fp;

  DissemReassembly rx;
  // Outstanding request, if any.
  NodeId pending_from;
  uint32_t request_attempt = 0;  // guards the progress-timeout event
  uint32_t progress_mark = 0;    // rx.received at the last progress check
  bool want_blob = false;        // patch path failed; pull the blob artifact

  bool relay = false;      // holds the full artifact; may serve others
  bool blob_mode = false;  // rollout ships blob artifacts (kFullBlob)
  // A content-verified blob artifact refused to install (it does not chain
  // to the target): re-pulling cannot help, so the agent goes silent
  // instead of beaconing its stale version forever.
  bool gave_up = false;

  std::deque<PendingServe> serve_queue;
  std::vector<uint8_t> busy_links;  // indexed by LinkId; 1 = serve in flight
  std::vector<uint8_t> serving_to;  // indexed by NodeId; queued or in flight

  DissemAgentStats stats;
};

}  // namespace btr

#endif  // BTR_SRC_NET_DISSEMINATION_H_
