// Runtime message transport over the static topology.
//
// Bandwidth model (paper Section 2.1): each link's capacity is statically
// divided among its attached senders, and within a sender's share among
// traffic classes. The per-(link, sender, class) "guardian" is the MAC-level
// babbling-idiot protection: it is enforced by (simulated) hardware, so even
// a fully compromised node can neither exceed its share nor starve others —
// it can only waste its own allocation. Guardian queues are bounded; traffic
// beyond the bound is dropped and counted.
//
// Multi-hop routes are store-and-forward through gateway nodes; a downed or
// excluded relay drops the packet (this is exactly the "state stranded behind
// node Y" hazard the paper's planner lookahead must avoid).
//
// Packets are freelist-pooled: a hop forwards the same pooled object through
// the event queue instead of copying the packet into each hop's closure, and
// the pool recycles it on delivery or drop. Payload objects are allocated
// from a shared BlockPool (see MakePooled) by whoever builds them.

#ifndef BTR_SRC_NET_NETWORK_H_
#define BTR_SRC_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/types.h"
#include "src/net/routing.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace btr {

// Traffic classes with statically reserved bandwidth fractions.
enum class TrafficClass : int {
  kForeground = 0,  // workload dataflow messages
  kEvidence = 1,    // fault evidence distribution (paper Section 4.3)
  kControl = 2,     // mode-change coordination + state transfer
};
inline constexpr int kTrafficClassCount = 3;

const char* TrafficClassName(TrafficClass cls);

// Receiver-side dispatch tag so the delivery path is one virtual call + a
// switch instead of a chain of dynamic_pointer_casts per packet.
enum class PayloadKind : uint8_t {
  kOutputRecord,
  kEvidence,
  kHeartbeat,
  kStateRequest,
  kStateTransfer,
  kStrategyPatch,  // install plane: sliced strategy patch (delta install)
  kStrategyFull,   // install plane: full node slice (fallback install)
  kInstallNack,    // install plane: node requests the full slice
  kOther,  // test payloads, baseline protocols
};

// Base class for message payloads carried through the network.
struct Payload {
  virtual ~Payload() = default;
  virtual PayloadKind kind() const { return PayloadKind::kOther; }
};
using PayloadPtr = std::shared_ptr<const Payload>;

struct Packet {
  MessageId id;
  NodeId src;
  NodeId dst;
  uint32_t size_bytes = 0;
  TrafficClass cls = TrafficClass::kForeground;
  PayloadPtr payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

using DeliveryFn = std::function<void(const Packet&)>;

struct NetworkConfig {
  // Fraction of each sender's share reserved per class; must sum to <= 1.
  double foreground_fraction = 0.70;
  double evidence_fraction = 0.15;
  double control_fraction = 0.15;
  // Residual per-hop loss probability after FEC.
  double loss_probability = 0.0;
  // Maximum guardian backlog, expressed as transmission time; traffic that
  // would queue longer is dropped (bounded MAC queue).
  SimDuration max_guardian_backlog = Milliseconds(200);
};

struct NetworkStats {
  uint64_t packets_sent = 0;
  uint64_t packets_delivered = 0;
  uint64_t packets_dropped_loss = 0;
  uint64_t packets_dropped_down = 0;
  uint64_t packets_dropped_unreachable = 0;
  uint64_t packets_dropped_backlog = 0;
  uint64_t backlog_drops_by_class[kTrafficClassCount] = {0, 0, 0};
  uint64_t bytes_by_class[kTrafficClassCount] = {0, 0, 0};  // link-level bytes
  uint64_t total_link_bytes = 0;  // bytes * hops, i.e., actual medium usage
};

class Network {
 public:
  Network(Simulator* sim, const Topology* topo, NetworkConfig config);
  ~Network();

  // Installs the delivery callback for a node. One receiver per node.
  void SetReceiver(NodeId node, DeliveryFn fn);

  // Installs the routing table (a plan installs routes avoiding faulty nodes).
  void SetRouting(std::shared_ptr<const RoutingTable> routing);
  const RoutingTable* routing() const { return routing_.get(); }

  // Sends `payload` from src to dst; returns the message id, or an invalid id
  // if the destination is unreachable under current routing.
  MessageId Send(NodeId src, NodeId dst, uint32_t size_bytes, TrafficClass cls,
                 PayloadPtr payload);

  // Marks a node up/down. Downed nodes neither receive nor relay.
  void SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const;

  // A Byzantine relay that silently drops traffic it should forward (its own
  // sends and receives still work). Models omission faults on gateways.
  void SetRelayDrop(NodeId node, bool drop);

  // Expected serialization time of `size_bytes` for `sender` on `link` in
  // class `cls` (used by planners to budget communication).
  SimDuration SerializationTime(LinkId link, NodeId sender, TrafficClass cls,
                                uint32_t size_bytes) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  const Topology& topology() const { return *topo_; }

  // Pool occupancy diagnostics (bench counters).
  size_t packet_pool_size() const { return packet_blocks_.size(); }

 private:
  // 64-bit guardian key: 24-bit link | 24-bit sender | class.
  static uint64_t GuardianKey(LinkId link, NodeId sender, TrafficClass cls) {
    return (static_cast<uint64_t>(link.value()) << 32) |
           (static_cast<uint64_t>(sender.value()) << 8) | static_cast<uint64_t>(cls);
  }

  double ClassFraction(TrafficClass cls) const;

  // SerializationTime with the result memoized per (link, class, size):
  // the hot path sends the same few message sizes on the same links every
  // period, and the floating-point division is measurable there. Values
  // are computed by the exact public formula, so timing is unchanged.
  SimDuration CachedSerializationTime(LinkId link, NodeId sender, TrafficClass cls,
                                      uint32_t size_bytes) {
    const uint64_t key = (static_cast<uint64_t>(link.value()) << 40) |
                         (static_cast<uint64_t>(cls) << 36) | size_bytes;
    SimDuration& tx = serialization_cache_[key];
    if (tx == 0) {
      tx = SerializationTime(link, sender, cls, size_bytes);  // always >= 1
    }
    return tx;
  }

  Packet* AcquirePacket();
  void ReleasePacket(Packet* packet);

  void ForwardHop(Packet* packet, std::shared_ptr<const RoutingTable> routing,
                  size_t hop_index);
  void Deliver(Packet* packet);

  Simulator* sim_;
  const Topology* topo_;
  NetworkConfig config_;
  std::shared_ptr<const RoutingTable> routing_;
  std::vector<DeliveryFn> receivers_;
  std::vector<bool> node_down_;
  std::vector<bool> relay_drop_;
  FlatMap64<SimTime> guardian_next_free_;
  FlatMap64<SimDuration> serialization_cache_;
  NetworkStats stats_;
  uint32_t next_message_ = 0;

  // Freelist-pooled in-flight packets.
  std::vector<std::unique_ptr<Packet>> packet_blocks_;
  std::vector<Packet*> packet_free_;
};

}  // namespace btr

#endif  // BTR_SRC_NET_NETWORK_H_
