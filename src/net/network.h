// Runtime message transport over the static topology.
//
// Bandwidth model (paper Section 2.1): each link's capacity is statically
// divided among its attached senders, and within a sender's share among
// traffic classes. The per-(link, sender, class) "guardian" is the MAC-level
// babbling-idiot protection: it is enforced by (simulated) hardware, so even
// a fully compromised node can neither exceed its share nor starve others —
// it can only waste its own allocation. Guardian queues are bounded; traffic
// beyond the bound is dropped and counted.
//
// Multi-hop routes are store-and-forward through gateway nodes; a downed or
// excluded relay drops the packet (this is exactly the "state stranded behind
// node Y" hazard the paper's planner lookahead must avoid).

#ifndef BTR_SRC_NET_NETWORK_H_
#define BTR_SRC_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/net/routing.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace btr {

// Traffic classes with statically reserved bandwidth fractions.
enum class TrafficClass : int {
  kForeground = 0,  // workload dataflow messages
  kEvidence = 1,    // fault evidence distribution (paper Section 4.3)
  kControl = 2,     // mode-change coordination + state transfer
};
inline constexpr int kTrafficClassCount = 3;

const char* TrafficClassName(TrafficClass cls);

// Base class for message payloads carried through the network.
struct Payload {
  virtual ~Payload() = default;
};
using PayloadPtr = std::shared_ptr<const Payload>;

struct Packet {
  MessageId id;
  NodeId src;
  NodeId dst;
  uint32_t size_bytes = 0;
  TrafficClass cls = TrafficClass::kForeground;
  PayloadPtr payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

using DeliveryFn = std::function<void(const Packet&)>;

struct NetworkConfig {
  // Fraction of each sender's share reserved per class; must sum to <= 1.
  double foreground_fraction = 0.70;
  double evidence_fraction = 0.15;
  double control_fraction = 0.15;
  // Residual per-hop loss probability after FEC.
  double loss_probability = 0.0;
  // Maximum guardian backlog, expressed as transmission time; traffic that
  // would queue longer is dropped (bounded MAC queue).
  SimDuration max_guardian_backlog = Milliseconds(200);
};

struct NetworkStats {
  uint64_t packets_sent = 0;
  uint64_t packets_delivered = 0;
  uint64_t packets_dropped_loss = 0;
  uint64_t packets_dropped_down = 0;
  uint64_t packets_dropped_unreachable = 0;
  uint64_t packets_dropped_backlog = 0;
  uint64_t backlog_drops_by_class[kTrafficClassCount] = {0, 0, 0};
  uint64_t bytes_by_class[kTrafficClassCount] = {0, 0, 0};  // link-level bytes
  uint64_t total_link_bytes = 0;  // bytes * hops, i.e., actual medium usage
};

class Network {
 public:
  Network(Simulator* sim, const Topology* topo, NetworkConfig config);

  // Installs the delivery callback for a node. One receiver per node.
  void SetReceiver(NodeId node, DeliveryFn fn);

  // Installs the routing table (a plan installs routes avoiding faulty nodes).
  void SetRouting(std::shared_ptr<const RoutingTable> routing);
  const RoutingTable* routing() const { return routing_.get(); }

  // Sends `payload` from src to dst; returns the message id, or an invalid id
  // if the destination is unreachable under current routing.
  MessageId Send(NodeId src, NodeId dst, uint32_t size_bytes, TrafficClass cls,
                 PayloadPtr payload);

  // Marks a node up/down. Downed nodes neither receive nor relay.
  void SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const;

  // A Byzantine relay that silently drops traffic it should forward (its own
  // sends and receives still work). Models omission faults on gateways.
  void SetRelayDrop(NodeId node, bool drop);

  // Expected serialization time of `size_bytes` for `sender` on `link` in
  // class `cls` (used by planners to budget communication).
  SimDuration SerializationTime(LinkId link, NodeId sender, TrafficClass cls,
                                uint32_t size_bytes) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  const Topology& topology() const { return *topo_; }

 private:
  struct GuardianKey {
    uint32_t link;
    uint32_t sender;
    int cls;
    friend bool operator==(const GuardianKey& a, const GuardianKey& b) {
      return a.link == b.link && a.sender == b.sender && a.cls == b.cls;
    }
  };
  struct GuardianKeyHash {
    size_t operator()(const GuardianKey& k) const {
      return (static_cast<size_t>(k.link) << 24) ^ (static_cast<size_t>(k.sender) << 4) ^
             static_cast<size_t>(k.cls);
    }
  };

  double ClassFraction(TrafficClass cls) const;
  void ForwardHop(Packet packet, std::shared_ptr<const RoutingTable> routing, size_t hop_index);
  void Deliver(Packet packet);

  Simulator* sim_;
  const Topology* topo_;
  NetworkConfig config_;
  std::shared_ptr<const RoutingTable> routing_;
  std::vector<DeliveryFn> receivers_;
  std::vector<bool> node_down_;
  std::vector<bool> relay_drop_;
  std::unordered_map<GuardianKey, SimTime, GuardianKeyHash> guardian_next_free_;
  NetworkStats stats_;
  uint32_t next_message_ = 0;
};

}  // namespace btr

#endif  // BTR_SRC_NET_NETWORK_H_
