// Runtime message transport over the static topology.
//
// Bandwidth model (paper Section 2.1): each link's capacity is statically
// divided among its attached senders, and within a sender's share among
// traffic classes. The per-(link, sender, class) "guardian" is the MAC-level
// babbling-idiot protection: it is enforced by (simulated) hardware, so even
// a fully compromised node can neither exceed its share nor starve others —
// it can only waste its own allocation. Guardian queues are bounded; traffic
// beyond the bound is dropped and counted.
//
// Multi-hop routes are store-and-forward through gateway nodes; a downed or
// excluded relay drops the packet (this is exactly the "state stranded behind
// node Y" hazard the paper's planner lookahead must avoid).
//
// Packets are freelist-pooled: a hop forwards the same pooled object through
// the event queue instead of copying the packet into each hop's closure, and
// the pool recycles it on delivery or drop. Payload objects are allocated
// from a shared BlockPool (see MakePooled) by whoever builds them.
//
// Sharding: all mutable transport state is split per shard. Guardian
// timelines are partitioned by the shard of the *sender* (a hop's guardian
// is only ever touched by the shard executing that sender's events, or by
// the exclusive driver path — the same partition for every shard count,
// which is what keeps reports bit-identical). Serialization caches, stats,
// and packet pools are partitioned by the executing shard; stats aggregate
// on read. Per-sender message counters are single-writer by construction.
//
// Loss draws carry no state at all: each hop's draw is a pure hash of
// (seed, link, message id, hop index). Message ids are per-sender sequence
// numbers assigned on the sender's shard, so the draw for a given physical
// transmission is identical for every shard layout — lossy runs keep the
// any-shard-count byte-identity contract.

#ifndef BTR_SRC_NET_NETWORK_H_
#define BTR_SRC_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/types.h"
#include "src/net/routing.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace btr {

// Traffic classes with statically reserved bandwidth fractions.
enum class TrafficClass : int {
  kForeground = 0,  // workload dataflow messages
  kEvidence = 1,    // fault evidence distribution (paper Section 4.3)
  kControl = 2,     // mode-change coordination + state transfer
};
inline constexpr int kTrafficClassCount = 3;

const char* TrafficClassName(TrafficClass cls);

// Receiver-side dispatch tag so the delivery path is one virtual call + a
// switch instead of a chain of dynamic_pointer_casts per packet.
enum class PayloadKind : uint8_t {
  kOutputRecord,
  kEvidence,
  kHeartbeat,
  kStateRequest,
  kStateTransfer,
  kStrategyPatch,  // install plane: sliced strategy patch (delta install)
  kStrategyFull,   // install plane: full node slice (fallback install)
  kInstallNack,    // install plane: node requests the full slice
  kDissemBeacon,   // gossip install: version-announcing Trickle beacon
  kDissemRequest,  // gossip install: pull request (with resume offset)
  kDissemChunk,    // gossip install: one paced chunk of an artifact
  kOther,  // test payloads, baseline protocols
};

// Base class for message payloads carried through the network.
struct Payload {
  virtual ~Payload() = default;
  virtual PayloadKind kind() const { return PayloadKind::kOther; }
};
using PayloadPtr = std::shared_ptr<const Payload>;

struct Packet {
  MessageId id;
  NodeId src;
  NodeId dst;
  uint32_t size_bytes = 0;
  TrafficClass cls = TrafficClass::kForeground;
  PayloadPtr payload;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

using DeliveryFn = std::function<void(const Packet&)>;

struct NetworkConfig {
  // Fraction of each sender's share reserved per class; must sum to <= 1.
  double foreground_fraction = 0.70;
  double evidence_fraction = 0.15;
  double control_fraction = 0.15;
  // Residual per-hop loss probability after FEC.
  double loss_probability = 0.0;
  // Maximum guardian backlog, expressed as transmission time; traffic that
  // would queue longer is dropped (bounded MAC queue).
  SimDuration max_guardian_backlog = Milliseconds(200);
  // Minimum on-the-wire frame size; smaller sends are padded up. 0 keeps
  // the raw sizes (legacy behavior). The sharded engine relies on a nonzero
  // floor: the conservative lookahead is the serialization time of the
  // smallest possible frame plus propagation, so BtrSystem pins this to the
  // smallest real protocol message (kInstallNackBytes = 24) for every run
  // regardless of shard count — the floor must be layout-invariant.
  uint32_t min_frame_bytes = 0;
};

struct NetworkStats {
  uint64_t packets_sent = 0;
  uint64_t packets_delivered = 0;
  uint64_t packets_dropped_loss = 0;
  uint64_t packets_dropped_down = 0;
  uint64_t packets_dropped_unreachable = 0;
  uint64_t packets_dropped_backlog = 0;
  uint64_t packets_dropped_duty = 0;  // departure fell in a duty-cycle off phase
  uint64_t backlog_drops_by_class[kTrafficClassCount] = {0, 0, 0};
  uint64_t bytes_by_class[kTrafficClassCount] = {0, 0, 0};  // link-level bytes
  uint64_t total_link_bytes = 0;  // bytes * hops, i.e., actual medium usage
};

class Network {
 public:
  Network(Simulator* sim, const Topology* topo, NetworkConfig config);
  ~Network();

  // Installs the delivery callback for a node. One receiver per node.
  void SetReceiver(NodeId node, DeliveryFn fn);

  // Installs the routing table (a plan installs routes avoiding faulty nodes).
  void SetRouting(std::shared_ptr<const RoutingTable> routing);
  const RoutingTable* routing() const { return routing_.get(); }

  // Sends `payload` from src to dst; returns the message id, or an invalid id
  // if the destination is unreachable under current routing.
  MessageId Send(NodeId src, NodeId dst, uint32_t size_bytes, TrafficClass cls,
                 PayloadPtr payload);

  // Marks a node up/down. Downed nodes neither receive nor relay.
  void SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const;

  // A Byzantine relay that silently drops traffic it should forward (its own
  // sends and receives still work). Models omission faults on gateways.
  void SetRelayDrop(NodeId node, bool drop);

  // Expected serialization time of `size_bytes` for `sender` on `link` in
  // class `cls` (used by planners to budget communication).
  SimDuration SerializationTime(LinkId link, NodeId sender, TrafficClass cls,
                                uint32_t size_bytes) const;

  // Aggregated over all shards. Call from the exclusive path (between
  // windows or post-run).
  NetworkStats stats() const;
  void ResetStats();

  const Topology& topology() const { return *topo_; }

  // Pool occupancy diagnostics (bench counters), aggregated over shards.
  size_t packet_pool_size() const;

 private:
  // Mutable transport state owned by one shard. Padded so two shards'
  // guardians never share a cache line.
  struct alignas(64) ShardState {
    FlatMap64<SimTime> guardian_next_free;
    FlatMap64<SimDuration> serialization_cache;
    NetworkStats stats;
    // Freelist-pooled in-flight packets. A packet acquired on the sender's
    // shard is released to the shard that finishes it (the receiver's);
    // backing storage stays with the acquiring shard.
    std::vector<std::unique_ptr<Packet>> packet_blocks;
    std::vector<Packet*> packet_free;
  };
  // 64-bit guardian key: 24-bit link | 24-bit sender | class.
  static uint64_t GuardianKey(LinkId link, NodeId sender, TrafficClass cls) {
    return (static_cast<uint64_t>(link.value()) << 32) |
           (static_cast<uint64_t>(sender.value()) << 8) | static_cast<uint64_t>(cls);
  }

  double ClassFraction(TrafficClass cls) const;

  // State of the shard the calling context executes for (shard 0 on the
  // exclusive path).
  ShardState& CurrentState() { return *state_[sim_->CurrentShard()]; }
  // State of the shard owning `sender`'s guardians — the invariant
  // partition (see file comment).
  ShardState& SenderState(NodeId sender) { return *state_[sim_->ShardOf(sender.value())]; }

  // SerializationTime with the result memoized per (link, class, size):
  // the hot path sends the same few message sizes on the same links every
  // period, and the floating-point division is measurable there. Values
  // are computed by the exact public formula, so timing is unchanged.
  SimDuration CachedSerializationTime(ShardState& st, LinkId link, NodeId sender,
                                      TrafficClass cls, uint32_t size_bytes) {
    const uint64_t key = (static_cast<uint64_t>(link.value()) << 40) |
                         (static_cast<uint64_t>(cls) << 36) | size_bytes;
    SimDuration& tx = st.serialization_cache[key];
    if (tx == 0) {
      tx = SerializationTime(link, sender, cls, size_bytes);  // always >= 1
    }
    return tx;
  }

  Packet* AcquirePacket(ShardState& st);
  void ReleasePacket(ShardState& st, Packet* packet);

  void ForwardHop(Packet* packet, std::shared_ptr<const RoutingTable> routing,
                  size_t hop_index);
  void Deliver(Packet* packet);

  Simulator* sim_;
  const Topology* topo_;
  NetworkConfig config_;
  std::shared_ptr<const RoutingTable> routing_;
  std::vector<DeliveryFn> receivers_;
  std::vector<bool> node_down_;
  std::vector<bool> relay_drop_;
  std::vector<std::unique_ptr<ShardState>> state_;  // one per shard
  // Per-sender message counters, padded: each is written only by its
  // sender's shard (or the exclusive driver path).
  struct alignas(64) MessageCounter {
    uint32_t next = 0;
  };
  std::vector<MessageCounter> next_message_;
};

}  // namespace btr

#endif  // BTR_SRC_NET_NETWORK_H_
