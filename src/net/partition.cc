#include "src/net/partition.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace btr {

SimDuration MinHopLatency(const Topology& topo, const NetworkConfig& config, LinkId link) {
  const LinkSpec& spec = topo.link(link);
  const double max_fraction = std::max(
      {config.foreground_fraction, config.evidence_fraction, config.control_fraction});
  const double sender_share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps = static_cast<double>(spec.bandwidth_bps) * sender_share * max_fraction;
  const uint32_t min_bytes = std::max<uint32_t>(1, config.min_frame_bytes);
  // Mirrors Network::SerializationTime exactly (including the +1ns floor):
  // a lookahead computed from a different formula could overshoot the real
  // minimum and break conservativeness.
  const double seconds = static_cast<double>(min_bytes) * 8.0 / bps;
  const SimDuration tx = static_cast<SimDuration>(seconds * 1e9) + 1;
  return tx + spec.propagation;
}

ShardLayout PartitionTopology(const Topology& topo, uint32_t shards,
                              const NetworkConfig& config) {
  const uint32_t n = static_cast<uint32_t>(topo.node_count());
  ShardLayout layout;
  layout.shard_of.assign(n, 0);
  const uint32_t count = std::min<uint32_t>(std::max<uint32_t>(1, shards), std::max<uint32_t>(1, n));
  layout.shard_count = count;
  if (count <= 1 || n == 0) {
    return layout;
  }

  // Pairwise affinity = sum over shared links of 1 / min-hop-latency:
  // low-latency links bind hard, slow links barely at all. Precompute each
  // link's weight once; a bus contributes its weight to every endpoint pair.
  std::vector<double> link_weight(topo.link_count(), 0.0);
  for (const LinkSpec& spec : topo.links()) {
    const SimDuration latency = std::max<SimDuration>(1, MinHopLatency(topo, config, spec.id));
    link_weight[spec.id.value()] = 1.0 / static_cast<double>(latency);
  }

  constexpr uint32_t kUnassigned = 0xFFFFFFFFu;
  std::vector<uint32_t> assignment(n, kUnassigned);
  // score[v] = total affinity between v and the shard currently growing.
  std::vector<double> score(n, 0.0);
  const uint32_t target = (n + count - 1) / count;

  uint32_t assigned_total = 0;
  for (uint32_t shard = 0; shard < count && assigned_total < n; ++shard) {
    std::fill(score.begin(), score.end(), 0.0);
    uint32_t members = 0;
    // Seed with the lowest unassigned node id, then grow by max affinity to
    // the members so far (ties to the lowest id — fully deterministic).
    uint32_t next = kUnassigned;
    for (uint32_t v = 0; v < n; ++v) {
      if (assignment[v] == kUnassigned) {
        next = v;
        break;
      }
    }
    while (next != kUnassigned) {
      assignment[next] = shard;
      ++assigned_total;
      ++members;
      if (members >= target || assigned_total >= n) {
        break;
      }
      for (LinkId link : topo.LinksAt(NodeId(next))) {
        const double w = link_weight[link.value()];
        for (NodeId peer : topo.link(link).endpoints) {
          if (assignment[peer.value()] == kUnassigned) {
            score[peer.value()] += w;
          }
        }
      }
      next = kUnassigned;
      double best = -1.0;
      for (uint32_t v = 0; v < n; ++v) {
        if (assignment[v] == kUnassigned && score[v] > best) {
          best = score[v];
          next = v;
        }
      }
    }
  }
  // Any stragglers (possible when early shards absorbed whole components)
  // land on the last shard.
  for (uint32_t v = 0; v < n; ++v) {
    if (assignment[v] == kUnassigned) {
      assignment[v] = count - 1;
    }
  }
  layout.shard_of = std::move(assignment);

  // Lookahead: minimum over links whose endpoints span more than one shard.
  SimDuration lookahead = kSimTimeNever;
  for (const LinkSpec& spec : topo.links()) {
    const uint32_t first = layout.shard_of[spec.endpoints.front().value()];
    bool cut = false;
    for (NodeId endpoint : spec.endpoints) {
      if (layout.shard_of[endpoint.value()] != first) {
        cut = true;
        break;
      }
    }
    if (cut) {
      lookahead = std::min(lookahead, MinHopLatency(topo, config, spec.id));
    }
  }
  layout.lookahead = lookahead;
  return layout;
}

}  // namespace btr
