#include "src/net/routing.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace btr {

RoutingTable::RoutingTable(const Topology& topo, const std::vector<NodeId>& excluded)
    : n_(topo.node_count()), routes_(n_ * n_), path_propagation_(n_ * n_, 0) {
  std::vector<bool> is_excluded(n_, false);
  for (NodeId x : excluded) {
    if (x.valid() && x.value() < n_) {
      is_excluded[x.value()] = true;
    }
  }

  // Dijkstra from every source over (propagation + per-hop serialization
  // epsilon) edge weights; ties broken by node id for determinism.
  for (size_t s = 0; s < n_; ++s) {
    const NodeId src(static_cast<uint32_t>(s));
    constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
    std::vector<int64_t> dist(n_, kInf);
    std::vector<Hop> via(n_);  // hop taken to reach node i
    using QueueEntry = std::pair<int64_t, uint32_t>;  // (dist, node)
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
    dist[s] = 0;
    pq.push({0, static_cast<uint32_t>(s)});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) {
        continue;
      }
      const NodeId nu(u);
      // A relay (non-source intermediate) must not be excluded.
      if (u != s && is_excluded[u]) {
        continue;  // can terminate at u but not extend through it
      }
      for (LinkId l : topo.LinksAt(nu)) {
        const LinkSpec& spec = topo.link(l);
        // Cost: propagation plus a small constant per hop so that fewer hops
        // win among equal-propagation paths.
        const int64_t w = spec.propagation + 1000;
        for (NodeId v : spec.endpoints) {
          if (v == nu) {
            continue;
          }
          if (d + w < dist[v.value()]) {
            dist[v.value()] = d + w;
            via[v.value()] = Hop{nu, l, v};
            pq.push({dist[v.value()], v.value()});
          }
        }
      }
    }
    for (size_t t = 0; t < n_; ++t) {
      if (t == s || dist[t] >= kInf) {
        continue;
      }
      Route route;
      SimDuration prop = 0;
      for (uint32_t cur = static_cast<uint32_t>(t); cur != s;) {
        const Hop& h = via[cur];
        route.push_back(h);
        prop += topo.link(h.link).propagation;
        cur = h.sender.value();
      }
      std::reverse(route.begin(), route.end());
      routes_[Index(src, NodeId(static_cast<uint32_t>(t)))] = std::move(route);
      path_propagation_[Index(src, NodeId(static_cast<uint32_t>(t)))] = prop;
    }
  }
}

const Route& RoutingTable::RouteBetween(NodeId src, NodeId dst) const {
  if (!src.valid() || !dst.valid() || src.value() >= n_ || dst.value() >= n_ || src == dst) {
    return empty_;
  }
  return routes_[Index(src, dst)];
}

bool RoutingTable::Reachable(NodeId src, NodeId dst) const {
  if (src == dst) {
    return true;
  }
  return !RouteBetween(src, dst).empty();
}

size_t RoutingTable::HopCount(NodeId src, NodeId dst) const {
  return RouteBetween(src, dst).size();
}

SimDuration RoutingTable::PathPropagation(NodeId src, NodeId dst) const {
  if (src == dst || !src.valid() || !dst.valid()) {
    return 0;
  }
  return path_propagation_[Index(src, dst)];
}

bool RoutingTable::UsesLink(LinkId link) const {
  for (const Route& route : routes_) {
    for (const Hop& hop : route) {
      if (hop.link == link) {
        return true;
      }
    }
  }
  return false;
}

bool RoutingTable::RouteUsesRelay(NodeId src, NodeId dst, NodeId relay) const {
  const Route& r = RouteBetween(src, dst);
  for (size_t i = 0; i + 1 < r.size(); ++i) {
    if (r[i].receiver == relay) {
      return true;
    }
  }
  return false;
}

}  // namespace btr
