#include "src/net/dissemination.h"

#include <algorithm>

#include "src/common/hash.h"

namespace btr {

const char* DissemModeName(DissemMode mode) {
  switch (mode) {
    case DissemMode::kUnicast:
      return "unicast";
    case DissemMode::kGossip:
      return "gossip";
  }
  return "unicast";
}

bool ParseDissemMode(const std::string& text, DissemMode* mode) {
  if (text == "unicast") {
    *mode = DissemMode::kUnicast;
    return true;
  }
  if (text == "gossip") {
    *mode = DissemMode::kGossip;
    return true;
  }
  return false;
}

TrickleTimer::TrickleTimer(const DissemConfig& config, uint32_t node, uint64_t key)
    : config_(config), node_(node), key_(key) {
  min_ = std::max<SimDuration>(config.beacon_period, 1);
  max_ = min_ << std::min<uint32_t>(config.max_doublings, 24);
}

void TrickleTimer::Start(SimTime now) {
  interval_ = min_;
  quiet_ = 0;
  running_ = true;
  BeginInterval(now);
}

void TrickleTimer::BeginInterval(SimTime now) {
  consistent_ = 0;
  activity_ = false;
  const SimDuration half = std::max<SimDuration>(interval_ / 2, 1);
  const uint64_t jitter =
      Hasher().Add(node_).Add(key_).Add(index_).Digest() % static_cast<uint64_t>(half);
  ++index_;
  fire_at_ = now + half + static_cast<SimDuration>(jitter);
  end_at_ = now + interval_;
}

bool TrickleTimer::OnInconsistent(SimTime now) {
  activity_ = true;
  quiet_ = 0;
  if (!running_ || interval_ <= min_) {
    return false;
  }
  interval_ = min_;
  BeginInterval(now);
  return true;
}

bool TrickleTimer::OnIntervalEnd(SimTime now) {
  if (!running_) {
    return false;
  }
  if (interval_ >= max_ && !activity_) {
    if (++quiet_ >= config_.quiescent_intervals) {
      running_ = false;
      return false;
    }
  } else {
    quiet_ = 0;
  }
  interval_ = std::min<SimDuration>(interval_ * 2, max_);
  BeginInterval(now);
  return true;
}

ChunkPlan PlanChunks(uint64_t total_bytes, SimDuration per_byte_tx, SimDuration period,
                     const DissemConfig& config) {
  ChunkPlan plan;
  if (total_bytes == 0) {
    plan.chunk_bytes = 1;
    plan.total = 1;
    return plan;
  }
  const double budget = static_cast<double>(period) * config.pace_fraction;
  uint64_t chunk = total_bytes;
  if (per_byte_tx > 0 && budget > 0) {
    chunk = static_cast<uint64_t>(budget / static_cast<double>(per_byte_tx));
  }
  // Floors: tiny chunks waste events and frames; a transfer never needs more
  // chunks than bytes.
  chunk = std::max<uint64_t>(chunk, 128);
  chunk = std::min<uint64_t>(chunk, total_bytes);
  // Event-count backstop for pathological (huge artifact, slow link) pairs.
  constexpr uint64_t kMaxChunks = 4096;
  if ((total_bytes + chunk - 1) / chunk > kMaxChunks) {
    chunk = (total_bytes + kMaxChunks - 1) / kMaxChunks;
  }
  plan.chunk_bytes = static_cast<uint32_t>(chunk);
  plan.total = static_cast<uint32_t>((total_bytes + chunk - 1) / chunk);
  return plan;
}

SimDuration ChunkSpacing(SimDuration chunk_tx, const DissemConfig& config) {
  const double duty = std::clamp(config.pace_duty, 0.05, 1.0);
  return static_cast<SimDuration>(static_cast<double>(chunk_tx) / duty) + 1;
}

void DissemAgentStats::MergeFrom(const DissemAgentStats& o) {
  beacons_sent += o.beacons_sent;
  beacons_suppressed += o.beacons_suppressed;
  requests_sent += o.requests_sent;
  chunks_sent += o.chunks_sent;
  bytes_sent += o.bytes_sent;
  patch_payload_bytes += o.patch_payload_bytes;
  full_payload_bytes += o.full_payload_bytes;
  serves += o.serves;
  resumes += o.resumes;
  fallbacks += o.fallbacks;
}

GossipSession::GossipSession(const DissemConfig& cfg, uint32_t self, uint64_t target,
                             size_t node_count)
    : config(cfg),
      timer(cfg, self, target),
      target_fp(target),
      peer_fp(node_count, 0) {}

}  // namespace btr
