// Static network topology: nodes connected by finite-bandwidth links.
//
// Matches the paper's system model (Section 2.1): each link connects a
// subset of the nodes (buses are allowed, not just point-to-point), has a
// finite bandwidth that is statically divided among its attached senders
// (the babbling-idiot guardian), and loss is rare enough to ignore after FEC.

#ifndef BTR_SRC_NET_TOPOLOGY_H_
#define BTR_SRC_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace btr {

struct LinkSpec {
  LinkId id;
  std::vector<NodeId> endpoints;   // >= 2 attached nodes (bus if > 2)
  int64_t bandwidth_bps = 0;       // raw link capacity, bits per second
  SimDuration propagation = 0;     // one-hop propagation delay
  std::string name;
  // Radio-link dynamics (lossy/duty-cycled scenario family). `loss` is the
  // per-hop residual loss probability of this link alone, combined
  // independently with NetworkConfig::loss_probability. A nonzero
  // `duty_period` duty-cycles the radio: transmissions may only depart
  // during the first `duty_on` of each period; departures in the off phase
  // are dropped at the sender. The schedule is a pure function of simulated
  // time, so heal/wake events cannot move the window.
  double loss = 0.0;
  SimDuration duty_on = 0;
  SimDuration duty_period = 0;  // 0 = always on
};

class Topology {
 public:
  Topology() = default;

  // Adds `count` nodes; returns the id of the first one.
  NodeId AddNodes(size_t count);
  NodeId AddNode();

  // Adds a link attaching `endpoints`. Endpoints must exist and be distinct.
  LinkId AddLink(std::vector<NodeId> endpoints, int64_t bandwidth_bps, SimDuration propagation,
                 std::string name = "");

  size_t node_count() const { return node_count_; }
  size_t link_count() const { return links_.size(); }
  const LinkSpec& link(LinkId id) const { return links_[id.value()]; }
  const std::vector<LinkSpec>& links() const { return links_; }

  // First link with this name; invalid LinkId if absent. Names are the
  // stable link identity across topology edits (see strategy_delta.h).
  LinkId FindLink(const std::string& name) const;

  // Sets the radio dynamics of an existing link (see LinkSpec). `loss` must
  // be in [0, 1); a nonzero duty cycle needs 0 < duty_on <= duty_period.
  void SetLinkDynamics(LinkId link, double loss, SimDuration duty_on,
                       SimDuration duty_period);

  // Links attached to `node`.
  const std::vector<LinkId>& LinksAt(NodeId node) const;

  // True if `link` attaches `node`.
  bool Attaches(LinkId link, NodeId node) const;

  // Nodes reachable in one hop from `node` (deduplicated, sorted). The
  // adjacency cache is maintained eagerly by AddNodes/AddLink, so this
  // const accessor never mutates and is safe to call from planner worker
  // threads. The reference is invalidated by AddNodes/AddLink.
  const std::vector<NodeId>& Neighbors(NodeId node) const;

  // Validates: every node has at least one link, all links >= 2 endpoints.
  Status Validate() const;

  // --- Convenience builders ---

  // Single shared bus attaching all nodes (CAN-style).
  static Topology SharedBus(size_t nodes, int64_t bandwidth_bps, SimDuration propagation);

  // Ring of point-to-point links.
  static Topology Ring(size_t nodes, int64_t bandwidth_bps, SimDuration propagation);

  // Two buses bridged by gateway nodes (typical automotive layout):
  // nodes [0, split) on bus A, [split, n) on bus B, gateways on both.
  static Topology DualBus(size_t nodes, size_t split, int64_t bandwidth_bps,
                          SimDuration propagation);

  // Fully connected point-to-point mesh (small n only).
  static Topology Mesh(size_t nodes, int64_t bandwidth_bps, SimDuration propagation);

 private:
  size_t node_count_ = 0;
  std::vector<LinkSpec> links_;
  std::vector<std::vector<LinkId>> links_at_;  // indexed by node id
  // One-hop adjacency (indexed by node id), kept current incrementally by
  // AddNodes/AddLink (sorted, deduplicated).
  std::vector<std::vector<NodeId>> neighbors_cache_;
};

}  // namespace btr

#endif  // BTR_SRC_NET_TOPOLOGY_H_
