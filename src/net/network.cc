#include "src/net/network.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/log.h"

namespace btr {
namespace {

// Counter-free loss draw: a uniform [0,1) value hashed from the run seed
// and the transmission's layout-invariant identity (link, per-sender
// message id, hop index). No RNG stream means no per-shard state and no
// draw-order dependence, so lossy runs stay byte-identical for every shard
// count — the same contract the rest of the data plane keeps.
double LossUnit(uint64_t seed, LinkId link, MessageId id, uint32_t hop_index) {
  Hasher h(seed);
  h.Add(link.value()).Add(id.value()).Add(hop_index);
  return static_cast<double>(h.Digest() >> 11) * 0x1.0p-53;
}

}  // namespace

const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kForeground:
      return "foreground";
    case TrafficClass::kEvidence:
      return "evidence";
    case TrafficClass::kControl:
      return "control";
  }
  return "?";
}

Network::Network(Simulator* sim, const Topology* topo, NetworkConfig config)
    : sim_(sim),
      topo_(topo),
      config_(config),
      receivers_(topo->node_count()),
      node_down_(topo->node_count(), false),
      relay_drop_(topo->node_count(), false),
      next_message_(topo->node_count()) {
  assert(config_.foreground_fraction + config_.evidence_fraction + config_.control_fraction <=
         1.0 + 1e-9);
  routing_ = std::make_shared<RoutingTable>(*topo);
  const uint32_t shards = sim_->shard_count();
  state_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    state_.push_back(std::make_unique<ShardState>());
  }
}

Network::~Network() = default;

void Network::SetReceiver(NodeId node, DeliveryFn fn) {
  receivers_[node.value()] = std::move(fn);
}

void Network::SetRouting(std::shared_ptr<const RoutingTable> routing) {
  routing_ = std::move(routing);
}

double Network::ClassFraction(TrafficClass cls) const {
  switch (cls) {
    case TrafficClass::kForeground:
      return config_.foreground_fraction;
    case TrafficClass::kEvidence:
      return config_.evidence_fraction;
    case TrafficClass::kControl:
      return config_.control_fraction;
  }
  return 0.0;
}

SimDuration Network::SerializationTime(LinkId link, [[maybe_unused]] NodeId sender,
                                       TrafficClass cls, uint32_t size_bytes) const {
  const LinkSpec& spec = topo_->link(link);
  assert(topo_->Attaches(link, sender));
  // Equal static split among attached senders (MAC-enforced allocation).
  const double sender_share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps = static_cast<double>(spec.bandwidth_bps) * sender_share * ClassFraction(cls);
  assert(bps > 0.0);
  const double seconds = static_cast<double>(size_bytes) * 8.0 / bps;
  return static_cast<SimDuration>(seconds * 1e9) + 1;
}

Packet* Network::AcquirePacket(ShardState& st) {
  if (!st.packet_free.empty()) {
    Packet* p = st.packet_free.back();
    st.packet_free.pop_back();
    return p;
  }
  st.packet_blocks.push_back(std::make_unique<Packet>());
  return st.packet_blocks.back().get();
}

void Network::ReleasePacket(ShardState& st, Packet* packet) {
  packet->payload.reset();  // drop the payload reference promptly
  st.packet_free.push_back(packet);
}

MessageId Network::Send(NodeId src, NodeId dst, uint32_t size_bytes, TrafficClass cls,
                        PayloadPtr payload) {
  assert(src.valid() && dst.valid());
  ShardState& st = CurrentState();
  ++st.stats.packets_sent;
  // Message ids are per-sender (single-writer on the sender's shard) and
  // carry the sender in the top bits; they are diagnostics, never ordering.
  const MessageId id((src.value() << 20) | (next_message_[src.value()].next++ & 0xFFFFF));
  if (size_bytes < config_.min_frame_bytes) {
    size_bytes = config_.min_frame_bytes;
  }

  const bool loopback = src == dst;
  if (!loopback && !routing_->Reachable(src, dst)) {
    ++st.stats.packets_dropped_unreachable;
    return MessageId::Invalid();
  }
  // One init block for both paths: the pooled Packet is reused, so every
  // field must be (re)assigned here.
  Packet* p = AcquirePacket(st);
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->size_bytes = size_bytes;
  p->cls = cls;
  p->payload = std::move(payload);
  p->sent_at = sim_->Now();
  if (loopback) {
    // Loopback: deliver immediately (no medium usage).
    sim_->After(0, [this, p]() { Deliver(p); });
  } else {
    ForwardHop(p, routing_, 0);
  }
  return id;
}

void Network::ForwardHop(Packet* packet, std::shared_ptr<const RoutingTable> routing,
                         size_t hop_index) {
  const Route& route = routing->RouteBetween(packet->src, packet->dst);
  if (hop_index >= route.size()) {
    Deliver(packet);
    return;
  }
  const Hop& hop = route[hop_index];

  // Every hop executes either on the shard that owns hop.sender (the first
  // hop inside Send, later hops inside the relay's arrival event) or on the
  // exclusive driver path — so the sender-partitioned guardian timeline has
  // exactly one writer, and is the same partition for every shard count.
  ShardState& st = SenderState(hop.sender);

  // A downed relay cannot transmit, and a Byzantine relay may refuse to.
  if (hop_index > 0 &&
      (node_down_[hop.sender.value()] || relay_drop_[hop.sender.value()])) {
    ++st.stats.packets_dropped_down;
    ReleasePacket(st, packet);
    return;
  }

  SimTime& next_free = st.guardian_next_free[GuardianKey(hop.link, hop.sender, packet->cls)];
  const SimTime now = sim_->Now();
  const SimTime depart = std::max(now, next_free);
  if (depart - now > config_.max_guardian_backlog) {
    ++st.stats.packets_dropped_backlog;
    ++st.stats.backlog_drops_by_class[static_cast<int>(packet->cls)];
    ReleasePacket(st, packet);
    return;
  }
  const LinkSpec& lspec = topo_->link(hop.link);
  // Duty-cycled radio: departures are only legal during the first duty_on
  // of each duty_period. The gate is a pure function of the departure
  // instant (which the sender-partitioned guardian makes layout-invariant),
  // so heal or wake events elsewhere can never reopen an off window early.
  // Nothing is transmitted: the guardian does not advance and no bytes are
  // charged to the medium.
  if (lspec.duty_period > 0 && depart % lspec.duty_period >= lspec.duty_on) {
    ++st.stats.packets_dropped_duty;
    ReleasePacket(st, packet);
    return;
  }
  const SimDuration tx =
      CachedSerializationTime(st, hop.link, hop.sender, packet->cls, packet->size_bytes);
  next_free = depart + tx;

  st.stats.bytes_by_class[static_cast<int>(packet->cls)] += packet->size_bytes;
  st.stats.total_link_bytes += packet->size_bytes;

  const SimTime arrival = depart + tx + lspec.propagation;
  // Global residual loss and the link's own loss model are independent
  // processes; combine them into one per-hop probability.
  const double loss_p =
      config_.loss_probability + lspec.loss - config_.loss_probability * lspec.loss;
  const bool lost =
      loss_p > 0.0 && LossUnit(sim_->seed(), hop.link, packet->id,
                               static_cast<uint32_t>(hop_index)) < loss_p;
  // Hop state is packed so the closure fits the event queue's inline
  // buffer; the receiver is resolved now (the captured routing table is
  // immutable, so the arrival-time lookup gave the same answer). The
  // arrival event is owned by the hop receiver: a cross-shard hop rides the
  // sender's mailbox, and the lookahead bound holds because arrival is at
  // least tx(min frame) + propagation after now.
  struct HopState {
    uint32_t next_hop;
    uint32_t receiver;
    bool lost;
  };
  const HopState hs{static_cast<uint32_t>(hop_index + 1), hop.receiver.value(), lost};
  sim_->AtActor(hs.receiver, arrival, [this, packet, routing = std::move(routing), hs]() mutable {
    if (hs.lost) {
      ShardState& local = CurrentState();
      ++local.stats.packets_dropped_loss;
      ReleasePacket(local, packet);
      return;
    }
    if (node_down_[hs.receiver]) {
      ShardState& local = CurrentState();
      ++local.stats.packets_dropped_down;
      ReleasePacket(local, packet);
      return;
    }
    ForwardHop(packet, std::move(routing), hs.next_hop);
  });
}

void Network::Deliver(Packet* packet) {
  ShardState& st = CurrentState();
  if (node_down_[packet->dst.value()]) {
    ++st.stats.packets_dropped_down;
    ReleasePacket(st, packet);
    return;
  }
  packet->delivered_at = sim_->Now();
  ++st.stats.packets_delivered;
  DeliveryFn& fn = receivers_[packet->dst.value()];
  if (fn) {
    fn(*packet);
  }
  ReleasePacket(st, packet);
}

NetworkStats Network::stats() const {
  NetworkStats total;
  for (const auto& st : state_) {
    const NetworkStats& s = st->stats;
    total.packets_sent += s.packets_sent;
    total.packets_delivered += s.packets_delivered;
    total.packets_dropped_loss += s.packets_dropped_loss;
    total.packets_dropped_down += s.packets_dropped_down;
    total.packets_dropped_unreachable += s.packets_dropped_unreachable;
    total.packets_dropped_backlog += s.packets_dropped_backlog;
    total.packets_dropped_duty += s.packets_dropped_duty;
    for (int c = 0; c < kTrafficClassCount; ++c) {
      total.backlog_drops_by_class[c] += s.backlog_drops_by_class[c];
      total.bytes_by_class[c] += s.bytes_by_class[c];
    }
    total.total_link_bytes += s.total_link_bytes;
  }
  return total;
}

void Network::ResetStats() {
  for (auto& st : state_) {
    st->stats = NetworkStats();
  }
}

size_t Network::packet_pool_size() const {
  size_t total = 0;
  for (const auto& st : state_) {
    total += st->packet_blocks.size();
  }
  return total;
}

void Network::SetNodeDown(NodeId node, bool down) { node_down_[node.value()] = down; }

bool Network::IsNodeDown(NodeId node) const { return node_down_[node.value()]; }

void Network::SetRelayDrop(NodeId node, bool drop) { relay_drop_[node.value()] = drop; }

}  // namespace btr
