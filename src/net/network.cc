#include "src/net/network.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace btr {

const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kForeground:
      return "foreground";
    case TrafficClass::kEvidence:
      return "evidence";
    case TrafficClass::kControl:
      return "control";
  }
  return "?";
}

Network::Network(Simulator* sim, const Topology* topo, NetworkConfig config)
    : sim_(sim),
      topo_(topo),
      config_(config),
      receivers_(topo->node_count()),
      node_down_(topo->node_count(), false),
      relay_drop_(topo->node_count(), false) {
  assert(config_.foreground_fraction + config_.evidence_fraction + config_.control_fraction <=
         1.0 + 1e-9);
  routing_ = std::make_shared<RoutingTable>(*topo);
}

Network::~Network() = default;

void Network::SetReceiver(NodeId node, DeliveryFn fn) {
  receivers_[node.value()] = std::move(fn);
}

void Network::SetRouting(std::shared_ptr<const RoutingTable> routing) {
  routing_ = std::move(routing);
}

double Network::ClassFraction(TrafficClass cls) const {
  switch (cls) {
    case TrafficClass::kForeground:
      return config_.foreground_fraction;
    case TrafficClass::kEvidence:
      return config_.evidence_fraction;
    case TrafficClass::kControl:
      return config_.control_fraction;
  }
  return 0.0;
}

SimDuration Network::SerializationTime(LinkId link, [[maybe_unused]] NodeId sender,
                                       TrafficClass cls, uint32_t size_bytes) const {
  const LinkSpec& spec = topo_->link(link);
  assert(topo_->Attaches(link, sender));
  // Equal static split among attached senders (MAC-enforced allocation).
  const double sender_share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps = static_cast<double>(spec.bandwidth_bps) * sender_share * ClassFraction(cls);
  assert(bps > 0.0);
  const double seconds = static_cast<double>(size_bytes) * 8.0 / bps;
  return static_cast<SimDuration>(seconds * 1e9) + 1;
}

Packet* Network::AcquirePacket() {
  if (!packet_free_.empty()) {
    Packet* p = packet_free_.back();
    packet_free_.pop_back();
    return p;
  }
  packet_blocks_.push_back(std::make_unique<Packet>());
  return packet_blocks_.back().get();
}

void Network::ReleasePacket(Packet* packet) {
  packet->payload.reset();  // drop the payload reference promptly
  packet_free_.push_back(packet);
}

MessageId Network::Send(NodeId src, NodeId dst, uint32_t size_bytes, TrafficClass cls,
                        PayloadPtr payload) {
  assert(src.valid() && dst.valid());
  ++stats_.packets_sent;
  const MessageId id(next_message_++);

  const bool loopback = src == dst;
  if (!loopback && !routing_->Reachable(src, dst)) {
    ++stats_.packets_dropped_unreachable;
    return MessageId::Invalid();
  }
  // One init block for both paths: the pooled Packet is reused, so every
  // field must be (re)assigned here.
  Packet* p = AcquirePacket();
  p->id = id;
  p->src = src;
  p->dst = dst;
  p->size_bytes = size_bytes;
  p->cls = cls;
  p->payload = std::move(payload);
  p->sent_at = sim_->Now();
  if (loopback) {
    // Loopback: deliver immediately (no medium usage).
    sim_->After(0, [this, p]() { Deliver(p); });
  } else {
    ForwardHop(p, routing_, 0);
  }
  return id;
}

void Network::ForwardHop(Packet* packet, std::shared_ptr<const RoutingTable> routing,
                         size_t hop_index) {
  const Route& route = routing->RouteBetween(packet->src, packet->dst);
  if (hop_index >= route.size()) {
    Deliver(packet);
    return;
  }
  const Hop& hop = route[hop_index];

  // A downed relay cannot transmit, and a Byzantine relay may refuse to.
  if (hop_index > 0 &&
      (node_down_[hop.sender.value()] || relay_drop_[hop.sender.value()])) {
    ++stats_.packets_dropped_down;
    ReleasePacket(packet);
    return;
  }

  SimTime& next_free = guardian_next_free_[GuardianKey(hop.link, hop.sender, packet->cls)];
  const SimTime now = sim_->Now();
  const SimTime depart = std::max(now, next_free);
  if (depart - now > config_.max_guardian_backlog) {
    ++stats_.packets_dropped_backlog;
    ++stats_.backlog_drops_by_class[static_cast<int>(packet->cls)];
    ReleasePacket(packet);
    return;
  }
  const SimDuration tx =
      CachedSerializationTime(hop.link, hop.sender, packet->cls, packet->size_bytes);
  next_free = depart + tx;

  stats_.bytes_by_class[static_cast<int>(packet->cls)] += packet->size_bytes;
  stats_.total_link_bytes += packet->size_bytes;

  const SimTime arrival = depart + tx + topo_->link(hop.link).propagation;
  const bool lost = config_.loss_probability > 0.0 && sim_->rng()->NextBool(config_.loss_probability);
  // Hop state is packed so the closure fits the event queue's inline
  // buffer; the receiver is resolved now (the captured routing table is
  // immutable, so the arrival-time lookup gave the same answer).
  struct HopState {
    uint32_t next_hop;
    uint32_t receiver;
    bool lost;
  };
  const HopState st{static_cast<uint32_t>(hop_index + 1), hop.receiver.value(), lost};
  sim_->At(arrival, [this, packet, routing = std::move(routing), st]() mutable {
    if (st.lost) {
      ++stats_.packets_dropped_loss;
      ReleasePacket(packet);
      return;
    }
    if (node_down_[st.receiver]) {
      ++stats_.packets_dropped_down;
      ReleasePacket(packet);
      return;
    }
    ForwardHop(packet, std::move(routing), st.next_hop);
  });
}

void Network::Deliver(Packet* packet) {
  if (node_down_[packet->dst.value()]) {
    ++stats_.packets_dropped_down;
    ReleasePacket(packet);
    return;
  }
  packet->delivered_at = sim_->Now();
  ++stats_.packets_delivered;
  DeliveryFn& fn = receivers_[packet->dst.value()];
  if (fn) {
    fn(*packet);
  }
  ReleasePacket(packet);
}

void Network::SetNodeDown(NodeId node, bool down) { node_down_[node.value()] = down; }

bool Network::IsNodeDown(NodeId node) const { return node_down_[node.value()]; }

void Network::SetRelayDrop(NodeId node, bool drop) { relay_drop_[node.value()] = drop; }

}  // namespace btr
