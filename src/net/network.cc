#include "src/net/network.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace btr {

const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kForeground:
      return "foreground";
    case TrafficClass::kEvidence:
      return "evidence";
    case TrafficClass::kControl:
      return "control";
  }
  return "?";
}

Network::Network(Simulator* sim, const Topology* topo, NetworkConfig config)
    : sim_(sim),
      topo_(topo),
      config_(config),
      receivers_(topo->node_count()),
      node_down_(topo->node_count(), false),
      relay_drop_(topo->node_count(), false) {
  assert(config_.foreground_fraction + config_.evidence_fraction + config_.control_fraction <=
         1.0 + 1e-9);
  routing_ = std::make_shared<RoutingTable>(*topo);
}

void Network::SetReceiver(NodeId node, DeliveryFn fn) {
  receivers_[node.value()] = std::move(fn);
}

void Network::SetRouting(std::shared_ptr<const RoutingTable> routing) {
  routing_ = std::move(routing);
}

double Network::ClassFraction(TrafficClass cls) const {
  switch (cls) {
    case TrafficClass::kForeground:
      return config_.foreground_fraction;
    case TrafficClass::kEvidence:
      return config_.evidence_fraction;
    case TrafficClass::kControl:
      return config_.control_fraction;
  }
  return 0.0;
}

SimDuration Network::SerializationTime(LinkId link, NodeId sender, TrafficClass cls,
                                       uint32_t size_bytes) const {
  const LinkSpec& spec = topo_->link(link);
  assert(topo_->Attaches(link, sender));
  // Equal static split among attached senders (MAC-enforced allocation).
  const double sender_share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps = static_cast<double>(spec.bandwidth_bps) * sender_share * ClassFraction(cls);
  assert(bps > 0.0);
  const double seconds = static_cast<double>(size_bytes) * 8.0 / bps;
  return static_cast<SimDuration>(seconds * 1e9) + 1;
}

MessageId Network::Send(NodeId src, NodeId dst, uint32_t size_bytes, TrafficClass cls,
                        PayloadPtr payload) {
  assert(src.valid() && dst.valid());
  ++stats_.packets_sent;
  Packet p;
  p.id = MessageId(next_message_++);
  p.src = src;
  p.dst = dst;
  p.size_bytes = size_bytes;
  p.cls = cls;
  p.payload = std::move(payload);
  p.sent_at = sim_->Now();

  if (src == dst) {
    // Loopback: deliver immediately (no medium usage).
    sim_->After(0, [this, p]() mutable { Deliver(std::move(p)); });
    return p.id;
  }
  if (!routing_->Reachable(src, dst)) {
    ++stats_.packets_dropped_unreachable;
    return MessageId::Invalid();
  }
  ForwardHop(std::move(p), routing_, 0);
  return p.id;
}

void Network::ForwardHop(Packet packet, std::shared_ptr<const RoutingTable> routing,
                         size_t hop_index) {
  const Route& route = routing->RouteBetween(packet.src, packet.dst);
  if (hop_index >= route.size()) {
    Deliver(std::move(packet));
    return;
  }
  const Hop& hop = route[hop_index];

  // A downed relay cannot transmit, and a Byzantine relay may refuse to.
  if (hop_index > 0 &&
      (node_down_[hop.sender.value()] || relay_drop_[hop.sender.value()])) {
    ++stats_.packets_dropped_down;
    return;
  }

  const GuardianKey key{hop.link.value(), hop.sender.value(),
                        static_cast<int>(packet.cls)};
  SimTime& next_free = guardian_next_free_[key];
  const SimTime now = sim_->Now();
  const SimTime depart = std::max(now, next_free);
  if (depart - now > config_.max_guardian_backlog) {
    ++stats_.packets_dropped_backlog;
    ++stats_.backlog_drops_by_class[static_cast<int>(packet.cls)];
    return;
  }
  const SimDuration tx = SerializationTime(hop.link, hop.sender, packet.cls, packet.size_bytes);
  next_free = depart + tx;

  stats_.bytes_by_class[static_cast<int>(packet.cls)] += packet.size_bytes;
  stats_.total_link_bytes += packet.size_bytes;

  const SimTime arrival = depart + tx + topo_->link(hop.link).propagation;
  const bool lost = config_.loss_probability > 0.0 && sim_->rng()->NextBool(config_.loss_probability);
  sim_->At(arrival, [this, packet = std::move(packet), routing, hop_index, lost]() mutable {
    if (lost) {
      ++stats_.packets_dropped_loss;
      return;
    }
    const Route& r = routing->RouteBetween(packet.src, packet.dst);
    const NodeId receiver = r[hop_index].receiver;
    if (node_down_[receiver.value()]) {
      ++stats_.packets_dropped_down;
      return;
    }
    ForwardHop(std::move(packet), routing, hop_index + 1);
  });
}

void Network::Deliver(Packet packet) {
  if (node_down_[packet.dst.value()]) {
    ++stats_.packets_dropped_down;
    return;
  }
  packet.delivered_at = sim_->Now();
  ++stats_.packets_delivered;
  DeliveryFn& fn = receivers_[packet.dst.value()];
  if (fn) {
    fn(packet);
  }
}

void Network::SetNodeDown(NodeId node, bool down) { node_down_[node.value()] = down; }

bool Network::IsNodeDown(NodeId node) const { return node_down_[node.value()]; }

void Network::SetRelayDrop(NodeId node, bool drop) { relay_drop_[node.value()] = drop; }

}  // namespace btr
