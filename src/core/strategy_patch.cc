#include "src/core/strategy_patch.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/core/strategy_io.h"
#include "src/fmt/strategy_binary.h"
#include "src/core/strategy_parts_internal.h"
#include "src/core/strategy_text_internal.h"

namespace btr {

using strategy_text::BodyDims;
using strategy_text::FilterBodyForNode;
using strategy_text::Hex16;
using strategy_text::HexCanonical;
using strategy_text::LineScanner;
using strategy_text::ParseHex16;
using strategy_text::ParseHexCanonical;
using strategy_text::ParseU64;
using strategy_text::RenderModeLine;
using strategy_text::SplitFields;
using strategy_text::ValidBodyRecord;
using strategy_text::ValidFaultNodeList;

uint64_t FingerprintStrategyText(const std::string& text) { return HashString(text); }

using strategy_text::Parts;
using strategy_text::ParseParts;
using strategy_text::RenderSliceOfBlob;
using strategy_text::RenderSliceText;
using strategy_text::SplitChunk;

namespace strategy_text {
namespace {

constexpr char kBlobMagic[] = "BTRSTRATEGY v3";
constexpr char kSliceMagic[] = "BTRSLICE v1";

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated strategy text (") + what + ")");
}

// Reads the next '\n'-terminated line or fails as a truncation.
Status NextLine(LineScanner* scan, std::string_view* line, const char* what) {
  if (!strategy_text::NextTerminatedLine(scan, line)) {
    return Truncated(what);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Parts> ParseParts(const std::string& text) {
  Parts parts;
  LineScanner scan(text);
  std::string_view line;
  std::vector<std::string_view> f;

  Status st = NextLine(&scan, &line, "magic");
  if (!st.ok()) {
    return st;
  }
  if (line == kSliceMagic) {
    parts.is_slice = true;
  } else if (line != kBlobMagic) {
    return Status::InvalidArgument("not a canonical BTRSTRATEGY v3 / BTRSLICE v1 text");
  }

  if (parts.is_slice) {
    st = NextLine(&scan, &line, "NODE");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.size() != 2 || f[0] != "NODE" ||
        !ParseU64(f[1], &parts.node)) {
      return Status::InvalidArgument("malformed NODE record");
    }
  }

  st = NextLine(&scan, &line, "DIM");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.size() != 4 || f[0] != "DIM" ||
      !ParseU64(f[1], &parts.aug_count) || !ParseU64(f[2], &parts.node_count) ||
      !ParseU64(f[3], &parts.edge_count) || parts.node_count == 0) {
    return Status::InvalidArgument("malformed DIM record");
  }
  if (parts.is_slice && parts.node >= parts.node_count) {
    return Status::InvalidArgument("slice NODE outside the node universe");
  }

  st = NextLine(&scan, &line, "PLANS");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.empty()) {
    return Status::InvalidArgument("malformed header record");
  }
  if (f[0] == "PROV") {
    if (f.size() != 3 || !ParseU64(f[1], &parts.prov_max_faults) ||
        !ParseHexCanonical(f[2], &parts.prov_planner_fp)) {
      return Status::InvalidArgument("malformed PROV record");
    }
    parts.has_prov = true;
    st = NextLine(&scan, &line, "PLANS");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.empty()) {
      return Status::InvalidArgument("malformed header record");
    }
  }
  if (parts.is_slice) {
    if (f[0] != "SFP" || f.size() != 2 || !ParseHex16(f[1], &parts.slice_sfp)) {
      return Status::InvalidArgument("malformed SFP record");
    }
    st = NextLine(&scan, &line, "PLANS");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.empty()) {
      return Status::InvalidArgument("malformed header record");
    }
  }

  uint64_t plan_count = 0;
  if (f[0] != "PLANS" || f.size() != 2 || !ParseU64(f[1], &plan_count)) {
    return Status::InvalidArgument("missing PLANS header");
  }
  if (plan_count == 0 || plan_count > text.size()) {
    return Status::InvalidArgument("implausible PLANS count");
  }

  const BodyDims dims{parts.aug_count, parts.node_count, parts.edge_count};
  parts.bodies.reserve(plan_count);
  for (uint64_t id = 0; id < plan_count; ++id) {
    st = NextLine(&scan, &line, "PLAN header");
    if (!st.ok()) {
      return st;
    }
    uint64_t declared = 0;
    if (!SplitFields(line, &f) || f.size() != 2 || f[0] != "PLAN" ||
        !ParseU64(f[1], &declared) || declared != id) {
      return Status::InvalidArgument("malformed PLAN header");
    }
    std::string chunk;
    bool ended = false;
    while (!ended) {
      st = NextLine(&scan, &line, "plan body");
      if (!st.ok()) {
        return st;
      }
      uint64_t t_node = 0;
      if (!ValidBodyRecord(line, dims, &t_node, &ended)) {
        return Status::InvalidArgument("malformed plan body record");
      }
      if (parts.is_slice && t_node != UINT64_MAX && t_node != parts.node) {
        return Status::InvalidArgument("slice carries another node's table row");
      }
      chunk.append(line);
      chunk.push_back('\n');
    }
    parts.bodies.push_back(std::move(chunk));
  }

  st = NextLine(&scan, &line, "MODES header");
  if (!st.ok()) {
    return st;
  }
  uint64_t mode_count = 0;
  if (!SplitFields(line, &f) || f.size() != 2 || f[0] != "MODES" ||
      !ParseU64(f[1], &mode_count)) {
    return Status::InvalidArgument("missing MODES header");
  }
  if (mode_count == 0 || mode_count > text.size()) {
    return Status::InvalidArgument("implausible MODES count");
  }
  parts.modes.reserve(mode_count);
  for (uint64_t m = 0; m < mode_count; ++m) {
    st = NextLine(&scan, &line, "MODE");
    if (!st.ok()) {
      return st;
    }
    uint64_t k = 0;
    if (!SplitFields(line, &f) || f.size() < 4 || f[0] != "MODE" || !ParseU64(f[1], &k) ||
        f.size() != k + 4 || f[k + 2] != "REF") {
      return Status::InvalidArgument("malformed MODE record");
    }
    Parts::Mode mode;
    mode.fault_nodes.reserve(k);
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t v = 0;
      if (!ParseU64(f[2 + i], &v)) {
        return Status::InvalidArgument("malformed MODE nodes");
      }
      mode.fault_nodes.push_back(static_cast<uint32_t>(v));
    }
    if (!ValidFaultNodeList(mode.fault_nodes, parts.node_count)) {
      return Status::InvalidArgument("malformed MODE nodes");
    }
    if (!ParseU64(f[k + 3], &mode.ref) || mode.ref >= parts.bodies.size()) {
      return Status::InvalidArgument("malformed MODE body reference");
    }
    if (!parts.modes.empty() && !(parts.modes.back().fault_nodes < mode.fault_nodes)) {
      return Status::InvalidArgument("MODE records out of canonical order");
    }
    parts.modes.push_back(std::move(mode));
  }
  if (!scan.AtEnd()) {
    return Status::InvalidArgument("trailing data after MODES");
  }
  if (parts.modes.empty() || !parts.modes.front().fault_nodes.empty()) {
    return Status::InvalidArgument("strategy has no fault-free mode");
  }
  return parts;
}

// Renders a slice from components; exactly what ExtractSlice produces and
// what ApplyPatchToSlice must reproduce.
std::string RenderSliceText(uint64_t node, uint64_t aug_count, uint64_t node_count,
                            uint64_t edge_count, bool has_prov, uint64_t prov_max_faults,
                            uint64_t prov_planner_fp, uint64_t sfp,
                            const std::vector<const std::string*>& body_chunks,
                            const std::vector<Parts::Mode>& modes) {
  std::string out = std::string(kSliceMagic) + "\n";
  out += "NODE " + std::to_string(node) + "\n";
  out += "DIM " + std::to_string(aug_count) + " " + std::to_string(node_count) + " " +
         std::to_string(edge_count) + "\n";
  if (has_prov) {
    out += "PROV " + std::to_string(prov_max_faults) + " " + HexCanonical(prov_planner_fp) +
           "\n";
  }
  out += "SFP " + Hex16(sfp) + "\n";
  out += "PLANS " + std::to_string(body_chunks.size()) + "\n";
  for (size_t id = 0; id < body_chunks.size(); ++id) {
    out += "PLAN " + std::to_string(id) + "\n";
    out += *body_chunks[id];
  }
  out += "MODES " + std::to_string(modes.size()) + "\n";
  for (const Parts::Mode& mode : modes) {
    out += RenderModeLine(mode.fault_nodes, mode.ref);
  }
  return out;
}

std::string RenderSliceOfBlob(const Parts& blob, uint64_t node, uint64_t sfp) {
  std::vector<std::string> filtered;
  filtered.reserve(blob.bodies.size());
  for (const std::string& chunk : blob.bodies) {
    filtered.push_back(FilterBodyForNode(chunk, node));
  }
  std::vector<const std::string*> chunks;
  chunks.reserve(filtered.size());
  for (const std::string& chunk : filtered) {
    chunks.push_back(&chunk);
  }
  return RenderSliceText(node, blob.aug_count, blob.node_count, blob.edge_count,
                         blob.has_prov, blob.prov_max_faults, blob.prov_planner_fp, sfp,
                         chunks, blob.modes);
}

// Splits a validated body chunk into (shared prefix, own T rows, shared
// suffix); the writer's record order U, P*, S*, T*, B*, END makes the
// split well-defined even when the chunk has no T rows.
void SplitChunk(const std::string& chunk, std::string* pre, std::string* t_rows,
                std::string* post) {
  pre->clear();
  t_rows->clear();
  post->clear();
  size_t pos = 0;
  int section = 0;  // 0 = pre, 1 = T rows, 2 = post
  while (pos < chunk.size()) {
    size_t nl = chunk.find('\n', pos);
    if (nl == std::string::npos) {
      nl = chunk.size() - 1;
    }
    const std::string_view line(chunk.data() + pos, nl - pos);
    const bool is_t = line.size() > 2 && line[0] == 'T' && line[1] == ' ';
    if (section == 0 && is_t) {
      section = 1;
    } else if (section <= 1 && !is_t &&
               (line == "END" || (line.size() > 2 && line[0] == 'B' && line[1] == ' '))) {
      section = 2;
    }
    std::string* dest = section == 0 ? pre : (section == 1 && is_t ? t_rows : post);
    dest->append(chunk, pos, nl - pos + 1);
    pos = nl + 1;
  }
}

std::string RenderBlobText(const Parts& blob) {
  std::string out = std::string(kBlobMagic) + "\n";
  out += "DIM " + std::to_string(blob.aug_count) + " " + std::to_string(blob.node_count) +
         " " + std::to_string(blob.edge_count) + "\n";
  if (blob.has_prov) {
    out += "PROV " + std::to_string(blob.prov_max_faults) + " " +
           HexCanonical(blob.prov_planner_fp) + "\n";
  }
  out += "PLANS " + std::to_string(blob.bodies.size()) + "\n";
  for (size_t id = 0; id < blob.bodies.size(); ++id) {
    out += "PLAN " + std::to_string(id) + "\n";
    out += blob.bodies[id];
  }
  out += "MODES " + std::to_string(blob.modes.size()) + "\n";
  for (const Parts::Mode& mode : blob.modes) {
    out += RenderModeLine(mode.fault_nodes, mode.ref);
  }
  return out;
}

}  // namespace strategy_text

StatusOr<std::string> ExtractSlice(const std::string& blob_text, uint32_t node) {
  StatusOr<Parts> parts = ParseParts(blob_text);
  if (!parts.ok()) {
    return parts.status();
  }
  if (parts->is_slice) {
    return Status::InvalidArgument("cannot slice a slice; pass the full blob");
  }
  if (node >= parts->node_count) {
    return Status::InvalidArgument("node outside the blob's node universe");
  }
  return RenderSliceOfBlob(*parts, node, FingerprintStrategyText(blob_text));
}

StatusOr<uint64_t> ValidateSliceText(const std::string& slice_text, uint32_t node) {
  StatusOr<Parts> parts = ParseParts(slice_text);
  if (!parts.ok()) {
    return parts.status();
  }
  if (!parts->is_slice) {
    return Status::InvalidArgument("expected a BTRSLICE text");
  }
  if (parts->node != node) {
    return Status::InvalidArgument("slice belongs to node " + std::to_string(parts->node));
  }
  return parts->slice_sfp;
}

namespace {

// Splits a body chunk once into (prefix, per-node T rows, suffix) for bulk
// slicing. Returns false when the chunk is not in canonical record order
// (all T rows contiguous) — callers then fall back to FilterBodyForNode per
// node, which handles any record order. For a canonical chunk,
//   pre + buckets[node] + post == FilterBodyForNode(chunk, node)
// byte-for-byte (T lines with an unparsable node field are dropped from
// every slice, exactly as FilterBodyForNode drops them).
bool BucketChunkByNode(const std::string& chunk, std::string* pre, std::string* post,
                       std::unordered_map<uint64_t, std::string>* buckets) {
  pre->clear();
  post->clear();
  buckets->clear();
  size_t pos = 0;
  int section = 0;  // 0 = pre, 1 = T rows, 2 = post
  while (pos < chunk.size()) {
    size_t nl = chunk.find('\n', pos);
    if (nl == std::string::npos) {
      nl = chunk.size() - 1;  // defensive; validated chunks end with '\n'
    }
    const std::string_view line(chunk.data() + pos, nl - pos);
    const bool is_t = line.size() > 2 && line[0] == 'T' && line[1] == ' ';
    if (is_t) {
      if (section == 2) {
        return false;  // T row after the T section: non-canonical order
      }
      section = 1;
      uint64_t node = 0;
      const size_t sp = line.find(' ', 2);
      const std::string_view field =
          sp == std::string_view::npos ? line.substr(2) : line.substr(2, sp - 2);
      if (ParseU64(field, &node)) {
        (*buckets)[node].append(chunk, pos, nl - pos + 1);
      }
    } else {
      if (section == 1) {
        section = 2;
      }
      (section == 0 ? pre : post)->append(chunk, pos, nl - pos + 1);
    }
    pos = nl + 1;
  }
  return true;
}

// Renders every node's slice of a parsed blob in one pass: each body chunk
// is split and bucketed once, so total work is O(blob + total slice bytes)
// instead of the per-node re-filtering's O(blob x nodes).
std::vector<std::string> RenderAllSlicesOfBlob(const Parts& blob, uint64_t sfp) {
  const size_t body_count = blob.bodies.size();
  std::vector<std::string> pres(body_count);
  std::vector<std::string> posts(body_count);
  std::vector<std::unordered_map<uint64_t, std::string>> buckets(body_count);
  std::vector<char> bucketed(body_count, 0);
  for (size_t id = 0; id < body_count; ++id) {
    bucketed[id] =
        BucketChunkByNode(blob.bodies[id], &pres[id], &posts[id], &buckets[id]) ? 1 : 0;
  }
  std::vector<std::string> slices;
  slices.reserve(blob.node_count);
  std::vector<std::string> chunks(body_count);
  std::vector<const std::string*> chunk_ptrs(body_count);
  for (uint64_t node = 0; node < blob.node_count; ++node) {
    for (size_t id = 0; id < body_count; ++id) {
      if (bucketed[id] != 0) {
        const auto it = buckets[id].find(node);
        chunks[id] = pres[id];
        if (it != buckets[id].end()) {
          chunks[id] += it->second;
        }
        chunks[id] += posts[id];
      } else {
        chunks[id] = FilterBodyForNode(blob.bodies[id], node);
      }
      chunk_ptrs[id] = &chunks[id];
    }
    slices.push_back(RenderSliceText(node, blob.aug_count, blob.node_count, blob.edge_count,
                                     blob.has_prov, blob.prov_max_faults,
                                     blob.prov_planner_fp, sfp, chunk_ptrs, blob.modes));
  }
  return slices;
}

// Renders SaveStrategyPatch(MakeStrategyPatchSlice(patch, n)) for every
// node n without re-serializing the shared sections per slice: the header,
// BCOPY/BDEL/MODES tail, and each BNEW body's shared records render once,
// and only the NODE/NSLICE lines plus each node's own T rows vary.
StatusOr<std::vector<std::string>> RenderPatchSliceTexts(const StrategyPatch& patch) {
  if (patch.sliced) {
    return Status::InvalidArgument("patch is already sliced");
  }
  std::string header = "BTRPATCH v1\n";
  header += "DIM " + std::to_string(patch.aug_count) + " " + std::to_string(patch.node_count) +
            " " + std::to_string(patch.edge_count) + "\n";
  header += "BASE " + Hex16(patch.base_fp) + "\n";
  header += "TARGET " + Hex16(patch.target_fp) + "\n";
  if (patch.has_prov) {
    header += "PROV " + std::to_string(patch.prov_max_faults) + " " +
              HexCanonical(patch.prov_planner_fp) + "\n";
  }
  const std::string bodies_line = "BODIES " + std::to_string(patch.bodies.size()) + " " +
                                  std::to_string(patch.old_body_count) + "\n";

  // Per body: the BCOPY line / BNEW header plus the one-pass split of the
  // new body's records.
  const size_t body_count = patch.bodies.size();
  std::vector<std::string> heads(body_count);
  std::vector<std::string> posts(body_count);
  std::vector<std::unordered_map<uint64_t, std::string>> buckets(body_count);
  std::vector<char> bucketed(body_count, 0);
  for (size_t id = 0; id < body_count; ++id) {
    const StrategyPatch::BodyDef& def = patch.bodies[id];
    if (def.copy) {
      heads[id] =
          "BCOPY " + std::to_string(id) + " " + std::to_string(def.old_id) + "\n";
      bucketed[id] = 1;  // nothing node-dependent
      continue;
    }
    heads[id] = "BNEW " + std::to_string(id) + "\n";
    std::string pre;
    if (BucketChunkByNode(def.text, &pre, &posts[id], &buckets[id])) {
      heads[id] += pre;
      bucketed[id] = 1;
    }
  }

  std::string tail;
  for (uint32_t old_id : patch.deleted_old) {
    tail += "BDEL " + std::to_string(old_id) + "\n";
  }
  tail += "MODES " + std::to_string(patch.final_mode_count) + " " +
          std::to_string(patch.sets.size()) + " " + std::to_string(patch.dels.size()) + "\n";
  for (const StrategyPatch::ModeRef& set : patch.sets) {
    tail += "MSET " + std::to_string(set.fault_nodes.size());
    for (uint32_t n : set.fault_nodes) {
      tail += ' ';
      tail += std::to_string(n);
    }
    tail += " REF " + std::to_string(set.ref) + "\n";
  }
  for (const std::vector<uint32_t>& del : patch.dels) {
    tail += "MDEL " + std::to_string(del.size());
    for (uint32_t n : del) {
      tail += ' ';
      tail += std::to_string(n);
    }
    tail += "\n";
  }
  tail += "PATCHEND\n";

  std::vector<std::string> out;
  out.reserve(patch.node_count);
  for (uint32_t node = 0; node < patch.node_count; ++node) {
    uint64_t slice_fp = 0;
    bool have_fp = false;
    for (const auto& [n, fp] : patch.slice_fps) {
      if (n == node) {
        slice_fp = fp;
        have_fp = true;
        break;
      }
    }
    if (!have_fp) {
      return Status::InvalidArgument("patch has no slice fingerprint for the node");
    }
    std::string text = header;
    text += "NODE " + std::to_string(node) + "\n";
    text += "NSLICE " + std::to_string(node) + " " + Hex16(slice_fp) + "\n";
    text += bodies_line;
    for (size_t id = 0; id < body_count; ++id) {
      if (patch.bodies[id].copy) {
        text += heads[id];
      } else if (bucketed[id] != 0) {
        text += heads[id];
        const auto it = buckets[id].find(node);
        if (it != buckets[id].end()) {
          text += it->second;
        }
        text += posts[id];
      } else {
        text += heads[id];
        text += FilterBodyForNode(patch.bodies[id].text, node);
      }
    }
    text += tail;
    out.push_back(std::move(text));
  }
  return out;
}

// Shared core of MakeStrategyPatch and BuildStrategyUpdate: diffs two
// already-parsed blobs. When `target_slices` is non-null it receives the
// rendered full target slice of every node (the same renders that produce
// slice_fps), so callers that need both never render twice.
StatusOr<StrategyPatch> MakePatchFromParts(const Parts& base, const Parts& target,
                                           uint64_t base_fp, uint64_t target_fp,
                                           std::vector<std::string>* target_slices) {
  if (base.is_slice || target.is_slice) {
    return Status::InvalidArgument("patches diff full blobs, not slices");
  }
  if (base.node_count != target.node_count) {
    return Status::InvalidArgument(
        "node universe changed; delta install requires a fixed node set");
  }

  StrategyPatch patch;
  patch.aug_count = target.aug_count;
  patch.node_count = target.node_count;
  patch.edge_count = target.edge_count;
  patch.base_fp = base_fp;
  patch.target_fp = target_fp;
  patch.has_prov = target.has_prov;
  patch.prov_max_faults = static_cast<uint32_t>(target.prov_max_faults);
  patch.prov_planner_fp = target.prov_planner_fp;
  patch.old_body_count = base.bodies.size();
  patch.final_mode_count = target.modes.size();

  // Bodies the edit left byte-identical become references into the base.
  std::unordered_map<std::string_view, uint32_t> base_by_text;
  base_by_text.reserve(base.bodies.size());
  for (uint32_t id = 0; id < base.bodies.size(); ++id) {
    base_by_text.emplace(base.bodies[id], id);
  }
  std::vector<char> claimed(base.bodies.size(), 0);
  std::vector<uint32_t> new_from_old(base.bodies.size(), UINT32_MAX);
  patch.bodies.reserve(target.bodies.size());
  for (uint32_t id = 0; id < target.bodies.size(); ++id) {
    StrategyPatch::BodyDef def;
    auto it = base_by_text.find(target.bodies[id]);
    if (it != base_by_text.end() && claimed[it->second] == 0) {
      def.copy = true;
      def.old_id = it->second;
      claimed[it->second] = 1;
      new_from_old[it->second] = id;
    } else {
      def.text = target.bodies[id];
    }
    patch.bodies.push_back(std::move(def));
  }
  for (uint32_t id = 0; id < base.bodies.size(); ++id) {
    if (claimed[id] == 0) {
      patch.deleted_old.push_back(id);
    }
  }

  // Modes: list only re-referenced / new / removed ones; every other mode
  // keeps its base body through the copy map.
  size_t b = 0;
  size_t t = 0;
  while (b < base.modes.size() || t < target.modes.size()) {
    const bool take_base =
        t >= target.modes.size() ||
        (b < base.modes.size() &&
         base.modes[b].fault_nodes < target.modes[t].fault_nodes);
    const bool take_target =
        b >= base.modes.size() ||
        (t < target.modes.size() &&
         target.modes[t].fault_nodes < base.modes[b].fault_nodes);
    if (take_base) {
      patch.dels.push_back(base.modes[b].fault_nodes);
      ++b;
    } else if (take_target) {
      patch.sets.push_back(
          {target.modes[t].fault_nodes, static_cast<uint32_t>(target.modes[t].ref)});
      ++t;
    } else {
      // Same fault set on both sides: silent only if the body reference
      // survives the renumbering unchanged.
      if (new_from_old[base.modes[b].ref] != target.modes[t].ref) {
        patch.sets.push_back(
            {target.modes[t].fault_nodes, static_cast<uint32_t>(target.modes[t].ref)});
      }
      ++b;
      ++t;
    }
  }

  std::vector<std::string> slices = RenderAllSlicesOfBlob(target, patch.target_fp);
  for (uint32_t n = 0; n < target.node_count; ++n) {
    patch.slice_fps.emplace_back(n, FingerprintStrategyText(slices[n]));
  }
  if (target_slices != nullptr) {
    *target_slices = std::move(slices);
  }
  return patch;
}

}  // namespace

StatusOr<StrategyPatch> MakeStrategyPatch(const std::string& base_blob,
                                          const std::string& target_blob) {
  StatusOr<Parts> base = ParseParts(base_blob);
  if (!base.ok()) {
    return base.status();
  }
  StatusOr<Parts> target = ParseParts(target_blob);
  if (!target.ok()) {
    return target.status();
  }
  return MakePatchFromParts(*base, *target, FingerprintStrategyText(base_blob),
                            FingerprintStrategyText(target_blob), nullptr);
}

StatusOr<StrategyPatch> MakeStrategyPatchSlice(const StrategyPatch& patch, uint32_t node) {
  if (patch.sliced) {
    return Status::InvalidArgument("patch is already sliced");
  }
  if (node >= patch.node_count) {
    return Status::InvalidArgument("node outside the patch's node universe");
  }
  StrategyPatch sliced = patch;
  sliced.sliced = true;
  sliced.slice_node = node;
  for (StrategyPatch::BodyDef& def : sliced.bodies) {
    if (!def.copy) {
      def.text = FilterBodyForNode(def.text, node);
    }
  }
  sliced.slice_fps.clear();
  for (const auto& [n, fp] : patch.slice_fps) {
    if (n == node) {
      sliced.slice_fps.emplace_back(n, fp);
    }
  }
  if (sliced.slice_fps.empty()) {
    return Status::InvalidArgument("patch has no slice fingerprint for the node");
  }
  return sliced;
}

StatusOr<std::string> ApplyPatchToSlice(const std::string& slice_text,
                                        const StrategyPatch& patch) {
  StatusOr<Parts> base_or = ParseParts(slice_text);
  if (!base_or.ok()) {
    return base_or.status();
  }
  const Parts& base = *base_or;
  if (!base.is_slice) {
    return Status::InvalidArgument("apply target must be a node slice");
  }
  if (!patch.sliced || patch.slice_node != base.node) {
    return Status::InvalidArgument("patch is not sliced for this node");
  }
  if (patch.node_count != base.node_count) {
    return Status::InvalidArgument("patch node universe does not match the slice");
  }
  if (patch.base_fp != base.slice_sfp) {
    return Status::FailedPrecondition(
        "patch base fingerprint does not match the installed strategy; refusing to apply");
  }
  if (patch.old_body_count != base.bodies.size()) {
    return Status::InvalidArgument("patch base body count does not match the slice");
  }
  uint64_t expect_fp = 0;
  bool have_fp = false;
  for (const auto& [n, fp] : patch.slice_fps) {
    if (n == base.node) {
      expect_fp = fp;
      have_fp = true;
    }
  }
  if (!have_fp) {
    return Status::InvalidArgument("patch carries no slice fingerprint for this node");
  }

  // Assemble the target body list; BCOPY references and BDEL drops must
  // partition the base id space exactly.
  std::vector<const std::string*> chunks(patch.bodies.size(), nullptr);
  std::vector<uint32_t> new_from_old(base.bodies.size(), UINT32_MAX);
  std::vector<char> accounted(base.bodies.size(), 0);
  for (uint32_t id = 0; id < patch.bodies.size(); ++id) {
    const StrategyPatch::BodyDef& def = patch.bodies[id];
    if (def.copy) {
      if (def.old_id >= base.bodies.size() || accounted[def.old_id] != 0) {
        return Status::InvalidArgument("patch re-references an invalid base body");
      }
      accounted[def.old_id] = 1;
      new_from_old[def.old_id] = id;
      chunks[id] = &base.bodies[def.old_id];
    } else {
      chunks[id] = &def.text;
    }
  }
  for (uint32_t old_id : patch.deleted_old) {
    if (old_id >= base.bodies.size() || accounted[old_id] != 0) {
      return Status::InvalidArgument("patch deletes an invalid base body");
    }
    accounted[old_id] = 1;
  }
  for (uint32_t old_id = 0; old_id < base.bodies.size(); ++old_id) {
    if (accounted[old_id] == 0) {
      return Status::InvalidArgument("patch leaves a base body unaccounted for");
    }
  }

  // Modes: start from the installed set, remove, remap survivors through
  // the copy map, then merge the re-referenced list.
  struct ModeEntry {
    std::vector<uint32_t> fault_nodes;
    uint64_t ref = 0;
    bool final_ref = false;
  };
  std::vector<ModeEntry> modes;
  modes.reserve(base.modes.size() + patch.sets.size());
  for (const Parts::Mode& mode : base.modes) {
    modes.push_back({mode.fault_nodes, mode.ref, false});
  }
  auto lower = [&modes](const std::vector<uint32_t>& key) {
    return std::lower_bound(modes.begin(), modes.end(), key,
                            [](const ModeEntry& e, const std::vector<uint32_t>& k) {
                              return e.fault_nodes < k;
                            });
  };
  for (const std::vector<uint32_t>& del : patch.dels) {
    auto it = lower(del);
    if (it == modes.end() || it->fault_nodes != del) {
      return Status::InvalidArgument("patch removes a mode the slice does not have");
    }
    modes.erase(it);
  }
  for (const StrategyPatch::ModeRef& set : patch.sets) {
    if (set.ref >= patch.bodies.size()) {
      return Status::InvalidArgument("patch mode reference out of range");
    }
    auto it = lower(set.fault_nodes);
    if (it != modes.end() && it->fault_nodes == set.fault_nodes) {
      it->ref = set.ref;
      it->final_ref = true;
    } else {
      modes.insert(it, {set.fault_nodes, set.ref, true});
    }
  }
  for (ModeEntry& mode : modes) {
    if (mode.final_ref) {
      continue;
    }
    const uint64_t mapped =
        mode.ref < new_from_old.size() ? new_from_old[mode.ref] : UINT32_MAX;
    if (mapped == UINT32_MAX) {
      return Status::InvalidArgument(
          "a kept mode references a dropped body without a re-reference");
    }
    mode.ref = mapped;
  }
  if (modes.size() != patch.final_mode_count) {
    return Status::InvalidArgument("patched mode count does not match the declared total");
  }
  if (modes.empty() || !modes.front().fault_nodes.empty()) {
    return Status::InvalidArgument("patched strategy has no fault-free mode");
  }
  std::vector<char> referenced(patch.bodies.size(), 0);
  for (const ModeEntry& mode : modes) {
    referenced[mode.ref] = 1;
  }
  for (uint32_t id = 0; id < patch.bodies.size(); ++id) {
    if (referenced[id] == 0) {
      return Status::InvalidArgument("patch ships a body no mode references");
    }
  }

  std::vector<Parts::Mode> final_modes;
  final_modes.reserve(modes.size());
  for (ModeEntry& mode : modes) {
    final_modes.push_back({std::move(mode.fault_nodes), mode.ref});
  }
  const std::string result = RenderSliceText(
      base.node, patch.aug_count, patch.node_count, patch.edge_count, patch.has_prov,
      patch.prov_max_faults, patch.prov_planner_fp, patch.target_fp, chunks, final_modes);
  if (FingerprintStrategyText(result) != expect_fp) {
    return Status::InvalidArgument(
        "applied patch does not match the expected slice fingerprint; fall back to a "
        "full install");
  }
  return result;
}

StatusOr<std::string> ReassembleStrategy(const std::vector<std::string>& slices) {
  if (slices.empty()) {
    return Status::InvalidArgument("no slices to reassemble");
  }
  std::vector<Parts> parts;
  parts.reserve(slices.size());
  for (const std::string& slice : slices) {
    StatusOr<Parts> p = ParseParts(slice);
    if (!p.ok()) {
      return p.status();
    }
    if (!p->is_slice) {
      return Status::InvalidArgument("reassembly input must be node slices");
    }
    parts.push_back(std::move(*p));
  }
  const size_t n = parts.size();
  std::vector<const Parts*> by_node(n, nullptr);
  for (const Parts& p : parts) {
    if (p.node_count != n) {
      return Status::InvalidArgument("slice set does not cover the node universe");
    }
    if (by_node[p.node] != nullptr) {
      return Status::InvalidArgument("duplicate slice for node " + std::to_string(p.node));
    }
    by_node[p.node] = &p;
  }
  const Parts& first = *by_node[0];
  for (size_t i = 1; i < n; ++i) {
    const Parts& p = *by_node[i];
    const bool headers_equal =
        p.aug_count == first.aug_count && p.edge_count == first.edge_count &&
        p.has_prov == first.has_prov && p.prov_max_faults == first.prov_max_faults &&
        p.prov_planner_fp == first.prov_planner_fp && p.slice_sfp == first.slice_sfp &&
        p.bodies.size() == first.bodies.size() && p.modes.size() == first.modes.size();
    if (!headers_equal) {
      return Status::InvalidArgument("slices disagree on shared strategy data");
    }
    for (size_t m = 0; m < p.modes.size(); ++m) {
      if (p.modes[m].fault_nodes != first.modes[m].fault_nodes ||
          p.modes[m].ref != first.modes[m].ref) {
        return Status::InvalidArgument("slices disagree on the mode table");
      }
    }
  }

  Parts merged;
  merged.aug_count = first.aug_count;
  merged.node_count = n;
  merged.edge_count = first.edge_count;
  merged.has_prov = first.has_prov;
  merged.prov_max_faults = first.prov_max_faults;
  merged.prov_planner_fp = first.prov_planner_fp;
  merged.modes = first.modes;
  std::string pre;
  std::string t_rows;
  std::string post;
  std::string other_pre;
  std::string other_post;
  for (size_t id = 0; id < first.bodies.size(); ++id) {
    SplitChunk(first.bodies[id], &pre, &t_rows, &post);
    std::string chunk = pre;
    chunk += t_rows;  // node 0's rows come first in the writer's node order
    for (size_t i = 1; i < n; ++i) {
      SplitChunk(by_node[i]->bodies[id], &other_pre, &t_rows, &other_post);
      if (other_pre != pre || other_post != post) {
        return Status::InvalidArgument("slices disagree on shared plan records");
      }
      chunk += t_rows;
    }
    chunk += post;
    merged.bodies.push_back(std::move(chunk));
  }
  const std::string out = strategy_text::RenderBlobText(merged);
  if (FingerprintStrategyText(out) != first.slice_sfp) {
    return Status::InvalidArgument("reassembled blob does not match the recorded fingerprint");
  }
  return out;
}

StatusOr<StrategyUpdate> BuildStrategyUpdate(const std::string& base_blob,
                                             const std::string& target_blob,
                                             StrategyWireFormat format) {
  StatusOr<Parts> base = ParseParts(base_blob);
  if (!base.ok()) {
    return base.status();
  }
  StatusOr<Parts> target = ParseParts(target_blob);
  if (!target.ok()) {
    return target.status();
  }
  StrategyUpdate update;
  update.format = format;
  update.target_blob = target_blob;
  update.base_fp = FingerprintStrategyText(base_blob);
  update.target_fp = FingerprintStrategyText(target_blob);
  StatusOr<StrategyPatch> patch = MakePatchFromParts(*base, *target, update.base_fp,
                                                     update.target_fp, &update.full_slices);
  if (!patch.ok()) {
    return patch.status();
  }
  update.patch_full = SaveStrategyPatch(*patch);
  const uint32_t n = static_cast<uint32_t>(patch->node_count);
  // Base slices describe the already-installed state, so they are always
  // rendered in the text domain regardless of the wire format.
  update.base_slices = RenderAllSlicesOfBlob(*base, update.base_fp);
  StatusOr<std::vector<std::string>> patch_slices = RenderPatchSliceTexts(*patch);
  if (!patch_slices.ok()) {
    return patch_slices.status();
  }
  update.patch_slices = std::move(*patch_slices);
  if (format == StrategyWireFormat::kV4Binary) {
    StatusOr<std::string> blob_img = fmt::EncodeStrategyImage(update.target_blob);
    if (!blob_img.ok()) {
      return blob_img.status();
    }
    update.target_blob = std::move(*blob_img);
    StatusOr<std::string> patch_img = fmt::EncodePatchImage(*patch);
    if (!patch_img.ok()) {
      return patch_img.status();
    }
    update.patch_full = std::move(*patch_img);
    for (uint32_t node = 0; node < n; ++node) {
      StatusOr<std::string> slice_img = fmt::EncodeStrategyImage(update.full_slices[node]);
      if (!slice_img.ok()) {
        return slice_img.status();
      }
      update.full_slices[node] = std::move(*slice_img);
      StatusOr<StrategyPatch> sliced = MakeStrategyPatchSlice(*patch, node);
      if (!sliced.ok()) {
        return sliced.status();
      }
      StatusOr<std::string> ps_img = fmt::EncodePatchImage(*sliced);
      if (!ps_img.ok()) {
        return ps_img.status();
      }
      update.patch_slices[node] = std::move(*ps_img);
    }
  }
  update.target_blob_fp = FingerprintStrategyText(update.target_blob);
  update.patch_full_fp = FingerprintStrategyText(update.patch_full);
  update.slice_fps.reserve(n);
  for (uint32_t node = 0; node < n; ++node) {
    update.slice_fps.push_back(FingerprintStrategyText(update.full_slices[node]));
  }
  return update;
}

}  // namespace btr
