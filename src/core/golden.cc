#include "src/core/golden.h"

#include <algorithm>
#include <cassert>

namespace btr {

uint64_t SourceValue(TaskId task, uint64_t period) {
  Hasher h;
  h.Add(task.value()).Add(period).Add(uint32_t{0x5ec}); // source domain tag
  return h.Digest();
}

uint64_t ComputeOutput(TaskId task, uint64_t period, const std::vector<InputValue>& inputs) {
  assert(std::is_sorted(inputs.begin(), inputs.end(),
                        [](const InputValue& a, const InputValue& b) {
                          return a.producer < b.producer;
                        }));
  Hasher h;
  h.Add(task.value()).Add(period).Add(uint32_t{0xc09}); // compute domain tag
  for (const InputValue& in : inputs) {
    h.Add(in.producer.value()).Add(in.digest);
  }
  return h.Digest();
}

uint64_t GoldenOracle::Golden(TaskId task, uint64_t period) const {
  const uint64_t key = (static_cast<uint64_t>(task.value()) << 40) ^ period;
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    return it->second;
  }
  const TaskSpec& spec = workload_->task(task);
  uint64_t digest;
  if (spec.kind == TaskKind::kSource) {
    digest = SourceValue(task, period);
  } else {
    std::vector<InputValue> inputs;
    for (const ChannelSpec& ch : workload_->Inputs(task)) {
      inputs.push_back(InputValue{ch.from, Golden(ch.from, period)});
    }
    std::sort(inputs.begin(), inputs.end(),
              [](const InputValue& a, const InputValue& b) { return a.producer < b.producer; });
    digest = ComputeOutput(task, period, inputs);
  }
  memo_.emplace(key, digest);
  return digest;
}

}  // namespace btr
