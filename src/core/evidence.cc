#include "src/core/evidence.h"

#include <algorithm>
#include <cassert>

#include "src/core/golden.h"

namespace btr {

uint64_t InputContentDigest(TaskId producer, uint64_t period, uint64_t digest) {
  Hasher h;
  h.Add(producer.value()).Add(period).Add(digest).Add(uint32_t{0x1a9});
  return h.Digest();
}

uint64_t OutputRecord::ComputeContentDigest() const {
  Hasher h;
  h.Add(task.value()).Add(replica).Add(period).Add(digest).Add(sender.value());
  h.Add(value_sig.signer.value()).Add(value_sig.tag);
  for (const SignedInput& in : claimed_inputs) {
    h.Add(in.producer.value()).Add(in.digest).Add(in.producer_sig.signer.value())
        .Add(in.producer_sig.tag);
  }
  h.Add(gap);
  for (TaskId t : gap_missing) {
    h.Add(t.value());
  }
  return h.Digest();
}

uint64_t OutputRecord::ContentDigest() const {
  if (digest_cache_.valid()) {
    return digest_cache_.value();
  }
  return ComputeContentDigest();
}

uint64_t OutputRecord::SealDigest() const {
  if (!digest_cache_.valid()) {
    digest_cache_.Set(ComputeContentDigest());
  }
  return digest_cache_.value();
}

uint32_t OutputRecord::WireBytes() const {
  // Record header + one signature + per-input (task, digest, signature).
  return 48 + static_cast<uint32_t>(claimed_inputs.size()) * 28;
}

const char* EvidenceKindName(EvidenceKind kind) {
  switch (kind) {
    case EvidenceKind::kCommission:
      return "commission";
    case EvidenceKind::kEquivocation:
      return "equivocation";
    case EvidenceKind::kTiming:
      return "timing";
    case EvidenceKind::kPathDeclaration:
      return "path-declaration";
    case EvidenceKind::kEndorsementAbuse:
      return "endorsement-abuse";
  }
  return "?";
}

uint64_t EvidenceRecord::ComputeContentDigest() const {
  Hasher h;
  h.Add(static_cast<int>(kind)).Add(declarer.value()).Add(period);
  if (record != nullptr) {
    h.Add(record->ContentDigest()).Add(record->sender_sig.tag);
  }
  h.Add(eq_task.value());
  h.Add(eq_a.producer.value()).Add(eq_a.digest).Add(eq_a.producer_sig.tag);
  h.Add(eq_b.producer.value()).Add(eq_b.digest).Add(eq_b.producer_sig.tag);
  h.Add(observed_arrival).Add(window_lo).Add(window_hi);
  h.Add(path_a.value()).Add(path_b.value());
  if (inner != nullptr) {
    h.Add(inner->ContentDigest()).Add(endorsement_sig.signer.value()).Add(endorsement_sig.tag);
  }
  return h.Digest();
}

uint64_t EvidenceRecord::ContentDigest() const {
  if (digest_cache_.valid()) {
    return digest_cache_.value();
  }
  return ComputeContentDigest();
}

uint64_t EvidenceRecord::SealDigest() const {
  if (!digest_cache_.valid()) {
    digest_cache_.Set(ComputeContentDigest());
  }
  return digest_cache_.value();
}

uint32_t EvidenceRecord::WireBytes() const {
  uint32_t bytes = 64;
  if (record != nullptr) {
    bytes += record->WireBytes();
  }
  if (kind == EvidenceKind::kEquivocation) {
    bytes += 2 * 28;
  }
  if (inner != nullptr) {
    bytes += inner->WireBytes();
  }
  return bytes;
}

bool EvidenceValidator::ValidateRecordSignatures(const OutputRecord& rec) const {
  if (!keys_->Verify(rec.sender_sig, rec.ContentDigest())) {
    return false;
  }
  for (const SignedInput& in : rec.claimed_inputs) {
    if (!keys_->Verify(in.producer_sig, InputContentDigest(in.producer, rec.period, in.digest))) {
      return false;
    }
  }
  return true;
}

SimDuration EvidenceValidator::ReplayCost(TaskId task) const {
  return workload_->task(task).wcet;
}

EvidenceVerdict EvidenceValidator::Validate(const EvidenceRecord& ev) const {
  // The declarer's signature over the evidence itself is always checked
  // first; without it the record cannot even be attributed.
  if (!keys_->Verify(ev.declarer_sig, ev.ContentDigest())) {
    EvidenceVerdict v;
    v.cost = config_.crypto.verify_cost;
    return v;
  }
  return ValidateAttributed(ev);
}

void EvidenceValidator::ValidateBatch(const EvidenceRecord* const* batch, size_t n,
                                      EvidenceVerdict* verdicts) const {
  if (n > 64) {  // callers chunk far below this; keep the API total anyway
    for (size_t i = 0; i < n; ++i) {
      verdicts[i] = Validate(*batch[i]);
    }
    return;
  }
  // Phase 1: one KeyStore pass over all declarer signatures (content
  // digests are memoized, so each record is hashed at most once here).
  Signature sigs[64] = {};
  uint64_t digests[64] = {};
  bool attributed[64] = {};
  for (size_t i = 0; i < n; ++i) {
    sigs[i] = batch[i]->declarer_sig;
    digests[i] = batch[i]->ContentDigest();
  }
  keys_->VerifyBatch(sigs, digests, attributed, n);
  // Phase 2: finish each item. Costs match the unbatched path exactly.
  for (size_t i = 0; i < n; ++i) {
    if (attributed[i]) {
      verdicts[i] = ValidateAttributed(*batch[i]);
    } else {
      verdicts[i] = EvidenceVerdict();
      verdicts[i].cost = config_.crypto.verify_cost;
    }
  }
}

EvidenceVerdict EvidenceValidator::ValidateAttributed(const EvidenceRecord& ev) const {
  EvidenceVerdict v;
  const SimDuration sig = config_.crypto.verify_cost;
  v.cost += sig;  // the attribution check already performed by the caller

  switch (ev.kind) {
    case EvidenceKind::kCommission: {
      if (ev.record == nullptr) {
        return v;
      }
      const OutputRecord& rec = *ev.record;
      // The outer signature attributes the record to its sender; without it
      // nothing is provable, so it is always checked before anything else.
      v.cost += sig;
      if (!keys_->Verify(rec.sender_sig, rec.ContentDigest())) {
        return v;  // fabricated record: cannot convict anyone
      }
      const SimDuration inner_sigs = sig * static_cast<SimDuration>(rec.claimed_inputs.size());
      bool inner_ok = true;
      if (config_.quick_reject) {
        // Cheap checks first: claimed-input signatures before the replay.
        v.cost += inner_sigs;
        for (const SignedInput& in : rec.claimed_inputs) {
          if (!keys_->Verify(in.producer_sig,
                             InputContentDigest(in.producer, rec.period, in.digest))) {
            inner_ok = false;
            break;
          }
        }
        if (!inner_ok) {
          // The sender signed a record whose inputs it could not have
          // validated: provably faulty.
          v.valid = true;
          v.convicts = rec.sender;
          return v;
        }
        v.cost += ReplayCost(rec.task);
      } else {
        // Naive order: replay first, signatures last (DoS-prone).
        v.cost += ReplayCost(rec.task);
        v.cost += inner_sigs;
        for (const SignedInput& in : rec.claimed_inputs) {
          if (!keys_->Verify(in.producer_sig,
                             InputContentDigest(in.producer, rec.period, in.digest))) {
            v.valid = true;
            v.convicts = rec.sender;
            return v;
          }
        }
      }
      // Replay the task on the claimed inputs.
      std::vector<InputValue> inputs;
      inputs.reserve(rec.claimed_inputs.size());
      for (const SignedInput& in : rec.claimed_inputs) {
        inputs.push_back(InputValue{in.producer, in.digest});
      }
      std::sort(inputs.begin(), inputs.end(),
                [](const InputValue& a, const InputValue& b) { return a.producer < b.producer; });
      const uint64_t expected =
          workload_->task(rec.task).kind == TaskKind::kSource
              ? SourceValue(rec.task, rec.period)
              : ComputeOutput(rec.task, rec.period, inputs);
      if (expected == rec.digest) {
        return v;  // record is consistent: evidence is bogus
      }
      v.valid = true;
      v.convicts = rec.sender;
      return v;
    }

    case EvidenceKind::kEquivocation: {
      v.cost += 2 * sig;
      const Signature& sa = ev.eq_a.producer_sig;
      const Signature& sb = ev.eq_b.producer_sig;
      if (sa.signer != sb.signer || !sa.signer.valid()) {
        return v;
      }
      if (ev.eq_a.digest == ev.eq_b.digest) {
        return v;
      }
      if (!keys_->Verify(sa, InputContentDigest(ev.eq_task, ev.period, ev.eq_a.digest)) ||
          !keys_->Verify(sb, InputContentDigest(ev.eq_task, ev.period, ev.eq_b.digest))) {
        return v;
      }
      v.valid = true;
      v.convicts = sa.signer;
      return v;
    }

    case EvidenceKind::kTiming: {
      if (ev.record == nullptr) {
        return v;
      }
      v.cost += sig;
      if (!keys_->Verify(ev.record->sender_sig, ev.record->ContentDigest())) {
        return v;
      }
      if (ev.window_lo > ev.window_hi) {
        return v;
      }
      // The arrival timestamp is MAC-attested (system-model assumption), so
      // validators accept it as ground truth.
      if (ev.observed_arrival >= ev.window_lo && ev.observed_arrival <= ev.window_hi) {
        return v;  // arrival was inside the window: bogus accusation
      }
      v.valid = true;
      v.convicts = ev.record->sender;
      return v;
    }

    case EvidenceKind::kPathDeclaration: {
      if (!ev.path_a.valid() || !ev.path_b.valid() || ev.path_a == ev.path_b) {
        return v;
      }
      // The declarer must be an endpoint of the path it declares; this is
      // what prevents one faulty node from fabricating blame on arbitrary
      // disjoint paths.
      if (ev.declarer != ev.path_a && ev.declarer != ev.path_b) {
        return v;
      }
      v.valid = true;  // declaration accepted; conviction is via blame rule
      return v;
    }

    case EvidenceKind::kEndorsementAbuse: {
      if (ev.inner == nullptr) {
        return v;
      }
      v.cost += sig;
      if (!keys_->Verify(ev.endorsement_sig, ev.inner->ContentDigest())) {
        return v;
      }
      // Re-validate the inner evidence; it must be invalid for the
      // endorsement to be abusive.
      EvidenceVerdict inner_verdict = Validate(*ev.inner);
      v.cost += inner_verdict.cost;
      if (inner_verdict.valid) {
        return v;
      }
      v.valid = true;
      v.convicts = ev.endorsement_sig.signer;
      return v;
    }
  }
  return v;
}

std::optional<NodeId> PathBlameTracker::AddDeclaration(NodeId path_a, NodeId path_b,
                                                       NodeId declarer, uint64_t period,
                                                       const DiscreditedFn& discredited) {
  PathKey key{std::min(path_a, path_b), std::max(path_a, path_b)};
  uint64_t& latest = declarers_[key][declarer];
  latest = std::max(latest, period);

  auto is_discredited = [&](NodeId node) {
    return discredited != nullptr && discredited(node);
  };
  const uint64_t window_floor = period >= window_ ? period - window_ : 0;

  // Check both endpoints for conviction.
  for (NodeId candidate : {key.lo, key.hi}) {
    if (convicted_.count(candidate) > 0 || is_discredited(candidate)) {
      continue;
    }
    // Count distinct *credible, recent* paths involving the candidate: the
    // counterpart endpoint must not be discredited (a known-faulty
    // counterpart explains the path by itself), and at least one credible
    // declarer must have declared the path within the window.
    size_t path_count = 0;
    std::set<NodeId> counterparts;
    std::set<NodeId> all_declarers;
    for (const auto& [p, decls] : declarers_) {
      if (p.lo != candidate && p.hi != candidate) {
        continue;
      }
      const NodeId other = p.lo == candidate ? p.hi : p.lo;
      if (is_discredited(other)) {
        continue;
      }
      std::set<NodeId> credible;
      for (const auto& [d, last_period] : decls) {
        if (!is_discredited(d) && last_period >= window_floor) {
          credible.insert(d);
        }
      }
      if (credible.empty()) {
        continue;
      }
      ++path_count;
      counterparts.insert(other);
      all_declarers.insert(credible.begin(), credible.end());
    }
    if (path_count >= threshold_ && counterparts.size() >= threshold_ &&
        all_declarers.size() >= threshold_) {
      convicted_.insert(candidate);
      return candidate;
    }
  }
  return std::nullopt;
}

size_t PathBlameTracker::DistinctPathsInvolving(NodeId node) const {
  size_t count = 0;
  for (const auto& [p, decls] : declarers_) {
    if (p.lo == node || p.hi == node) {
      ++count;
    }
  }
  return count;
}

bool EvidencePool::Insert(const std::shared_ptr<const EvidenceRecord>& ev) {
  return by_digest_.Emplace(ev->ContentDigest(), ev);
}

bool EvidencePool::Contains(uint64_t content_digest) const {
  return by_digest_.Contains(content_digest);
}

}  // namespace btr
