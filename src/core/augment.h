// Workload augmentation (paper Section 4.1, step 1).
//
// Before planning, the dataflow graph is augmented with the tasks BTR itself
// needs, which then compete for the same resources as the workload ("there
// are no extra resources for BTR"):
//
//   1. *Replicas*: each compute task at or above the replication criticality
//      threshold gets f+1 copies (detection needs f+1, not the 2f+1 / 3f+1
//      masking would need). Replica 0 is the primary; consumers read the
//      primary's output stream without waiting for other replicas.
//   2. *Checking tasks*: one per replicated task. A checker receives the
//      signed outputs of every replica plus copies of the task's inputs, and
//      re-executes the (deterministic) task to tell which replica lied.
//      Its WCET therefore budgets a full re-execution.
//   3. *Verification tasks*: one per node, a fixed per-period CPU budget for
//      validating and endorsing incoming evidence (Section 4.3).
//
// Sources and sinks are physical (sensors/actuators); they stay pinned and
// unreplicated — a fault on their node sheds the flows that depend on them.

#ifndef BTR_SRC_CORE_AUGMENT_H_
#define BTR_SRC_CORE_AUGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/workload/dataflow.h"

namespace btr {

enum class AugKind : int {
  kWorkload = 0,      // replica of a workload task (replica 0 = primary)
  kChecker = 1,       // compares + replays one replicated task
  kVerifier = 2,      // per-node evidence verification budget
};

struct AugTask {
  uint32_t id = 0;               // dense index in the augmented graph
  AugKind kind = AugKind::kWorkload;
  TaskId workload_task;          // kWorkload/kChecker: the underlying task
  uint32_t replica = 0;          // kWorkload: replica index (0 = primary)
  NodeId verifier_node;          // kVerifier: the node this budget belongs to
  SimDuration wcet = 0;
  uint32_t state_bytes = 0;
  Criticality criticality = Criticality::kMedium;
  NodeId pinned;                 // sources/sinks/verifiers are pinned
  std::string name;
};

struct AugEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  uint32_t bytes = 0;
};

struct AugmentConfig {
  uint32_t replication = 2;  // f + 1
  // Tasks below this criticality are not replicated (and not checked).
  Criticality replicate_min_criticality = Criticality::kLow;
  // Checker WCET = compare_cost + replay_factor * checked task WCET.
  double replay_factor = 1.0;
  SimDuration compare_cost = Microseconds(20);
  // Per-node verification budget per period.
  SimDuration verifier_budget = Microseconds(200);
  // Size of a signed output digest record on the wire.
  uint32_t digest_record_bytes = 48;
};

class AugmentedGraph {
 public:
  // `node_count` is the number of physical nodes (for verifier tasks).
  AugmentedGraph(const Dataflow* workload, size_t node_count, const AugmentConfig& config);

  const Dataflow& workload() const { return *workload_; }
  const AugmentConfig& config() const { return config_; }

  size_t size() const { return tasks_.size(); }
  const AugTask& task(uint32_t id) const { return tasks_[id]; }
  const std::vector<AugTask>& tasks() const { return tasks_; }
  const std::vector<AugEdge>& edges() const { return edges_; }
  const std::vector<AugEdge>& InEdges(uint32_t id) const { return in_edges_[id]; }
  const std::vector<AugEdge>& OutEdges(uint32_t id) const { return out_edges_[id]; }

  // Replicas of a workload task, in replica order; empty if not replicated
  // (then PrimaryOf is the single instance).
  const std::vector<uint32_t>& ReplicasOf(TaskId task) const;
  // The aug id of the primary (replica 0) of a workload task.
  uint32_t PrimaryOf(TaskId task) const;
  // The checker aug id for a workload task; UINT32_MAX if unchecked.
  uint32_t CheckerOf(TaskId task) const;
  // The verifier aug id for a node.
  uint32_t VerifierOf(NodeId node) const;

  bool IsReplicated(TaskId task) const { return replicas_[task.value()].size() > 1; }

  static constexpr uint32_t kNone = UINT32_MAX;

 private:
  uint32_t AddTask(AugTask t);
  void AddEdge(uint32_t from, uint32_t to, uint32_t bytes);

  const Dataflow* workload_;
  AugmentConfig config_;
  std::vector<AugTask> tasks_;
  std::vector<AugEdge> edges_;
  std::vector<std::vector<AugEdge>> in_edges_;
  std::vector<std::vector<AugEdge>> out_edges_;
  std::vector<std::vector<uint32_t>> replicas_;  // indexed by TaskId
  std::vector<uint32_t> checker_;                // indexed by TaskId
  std::vector<uint32_t> verifier_;               // indexed by NodeId
};

}  // namespace btr

#endif  // BTR_SRC_CORE_AUGMENT_H_
