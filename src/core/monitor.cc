#include "src/core/monitor.h"

#include <algorithm>
#include <cassert>

#include "src/common/exec_context.h"

namespace btr {

Monitor::Monitor(const Dataflow* workload, const Strategy* strategy,
                 const AdversarySpec* adversary, SimDuration recovery_bound)
    : workload_(workload),
      strategy_(strategy),
      adversary_(adversary),
      recovery_bound_(recovery_bound),
      oracle_(workload) {}

void Monitor::ConfigureShards(uint32_t shards) {
  observations_.clear();
  observations_.resize(std::max<uint32_t>(1, shards));
}

void Monitor::RecordSinkOutput(TaskId sink, uint64_t period, uint64_t digest, SimTime at) {
  // Keep the first output per instance; duplicates would only arise from a
  // faulty sink node re-actuating, which the physical world would also see
  // first-command.
  const uint32_t shard = ThisThreadExec().worker ? ThisThreadExec().shard : 0;
  assert(shard < observations_.size());
  observations_[shard].map.Emplace(PackIdPeriod(sink.value(), period),
                                   SinkObservation{sink, period, digest, at});
}

const SinkObservation* Monitor::FindObservation(uint64_t key) const {
  // A sink's outputs always land in its own shard's table, so at most one
  // table holds the key; linear probing over the handful of shards is fine
  // for the post-run evaluation loops.
  for (const ObservationShard& shard : observations_) {
    if (const SinkObservation* obs = shard.map.Find(key)) {
      return obs;
    }
  }
  return nullptr;
}

bool MissPattern::SatisfiesMK(uint64_t m, uint64_t k) const {
  if (k == 0 || m > k) {
    return false;
  }
  if (correct.size() < k) {
    return misses <= correct.size() - std::min<uint64_t>(m, correct.size());
  }
  uint64_t good = 0;
  for (size_t i = 0; i < correct.size(); ++i) {
    good += correct[i] ? 1 : 0;
    if (i >= k) {
      good -= correct[i - k] ? 1 : 0;
    }
    if (i + 1 >= k && good < m) {
      return false;
    }
  }
  return true;
}

MissPattern Monitor::SinkMissPattern(TaskId sink, uint64_t periods) const {
  MissPattern pattern;
  const SimDuration period_len = workload_->period();
  const TaskSpec& spec = workload_->task(sink);
  uint64_t run = 0;
  for (uint64_t p = 0; p < periods; ++p) {
    const SimTime deadline = static_cast<SimTime>(p) * period_len + spec.relative_deadline;
    const Plan* plan = strategy_->Lookup(ManifestedBefore(deadline));
    if (plan == nullptr || !plan->ServesSink(sink)) {
      continue;  // shed: not an expected instance
    }
    const SinkObservation* obs = FindObservation(PackIdPeriod(sink.value(), p));
    const bool ok = obs != nullptr && obs->digest == oracle_.Golden(sink, p) &&
                    obs->at <= deadline;
    pattern.correct.push_back(ok);
    if (ok) {
      run = 0;
    } else {
      ++pattern.misses;
      ++run;
      pattern.longest_miss_run = std::max(pattern.longest_miss_run, run);
    }
  }
  return pattern;
}

FaultSet Monitor::ManifestedBefore(SimTime t) const {
  FaultSet set;
  for (const FaultInjection& inj : adversary_->injections()) {
    if (inj.manifest_at < t) {
      set.Add(inj.node);
    }
  }
  return set;
}

double Monitor::PlanUtility(const FaultSet& faults) const {
  const Plan* plan = strategy_->Lookup(faults);
  if (plan == nullptr) {
    return 0.0;  // beyond f: no guarantees
  }
  return plan->utility();
}

CorrectnessReport Monitor::Evaluate(uint64_t periods) const {
  CorrectnessReport report;
  const SimDuration period_len = workload_->period();

  // Manifestation timeline, sorted.
  std::vector<std::pair<SimTime, NodeId>> manifests;
  for (const FaultInjection& inj : adversary_->injections()) {
    manifests.emplace_back(inj.manifest_at, inj.node);
  }
  std::sort(manifests.begin(), manifests.end());
  // Deduplicate by node (first manifestation counts).
  {
    std::vector<std::pair<SimTime, NodeId>> uniq;
    for (const auto& m : manifests) {
      bool seen = false;
      for (const auto& u : uniq) {
        if (u.second == m.second) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        uniq.push_back(m);
      }
    }
    manifests = std::move(uniq);
  }
  for (const auto& [at, node] : manifests) {
    RecoveryMeasurement rm;
    rm.node = node;
    rm.manifested_at = at;
    rm.last_bad_output = at;
    report.recoveries.push_back(rm);
  }

  std::vector<SimTime> bad_instants;

  for (uint64_t p = 0; p < periods; ++p) {
    for (TaskId sink : workload_->SinkIds()) {
      const TaskSpec& spec = workload_->task(sink);
      const SimTime deadline = static_cast<SimTime>(p) * period_len + spec.relative_deadline;
      const FaultSet manifested = ManifestedBefore(deadline);
      const Plan* plan = strategy_->Lookup(manifested);

      // An actuator whose own node is compromised is outside the system
      // boundary: no distributed protocol can stop a faulty node from
      // driving hardware it physically owns, so its outputs are not
      // evaluated (the paper's threat model gives the adversary that node).
      if (manifested.Contains(spec.pinned_node)) {
        ++report.shed_instances;
        continue;
      }
      const bool expected = plan != nullptr && plan->ServesSink(sink);
      const SinkObservation* obs = FindObservation(PackIdPeriod(sink.value(), p));
      if (!expected) {
        // A shed sink may correctly fail *silently* (Definition 3.1's
        // mixed-criticality extension), but an actuation an honest sink node
        // does perform must still be the right command: garbage counts.
        if (obs == nullptr || obs->digest == oracle_.Golden(sink, p)) {
          ++report.shed_instances;
        } else {
          ++report.total_instances;
          ++report.incorrect_value;
          bad_instants.push_back(deadline);
        }
        continue;
      }
      ++report.total_instances;
      bool correct = false;
      if (obs == nullptr) {
        ++report.incorrect_missing;
      } else if (obs->digest != oracle_.Golden(sink, p)) {
        ++report.incorrect_value;
      } else if (obs->at > deadline) {
        ++report.incorrect_late;
      } else {
        correct = true;
        ++report.correct_instances;
        report.sink_latency.Add(
            static_cast<double>(obs->at - static_cast<SimTime>(p) * period_len));
      }
      if (!correct) {
        bad_instants.push_back(deadline);
      }
    }
  }

  // Attribute each bad instant to the most recent manifestation before it
  // and check Definition 3.1.
  for (SimTime bad : bad_instants) {
    RecoveryMeasurement* owner = nullptr;
    for (RecoveryMeasurement& rm : report.recoveries) {
      if (rm.manifested_at <= bad) {
        owner = &rm;  // manifests are sorted ascending
      }
    }
    if (owner == nullptr) {
      // Incorrect output with no prior fault at all: unconditional violation.
      report.btr_violated = true;
      continue;
    }
    ++owner->bad_instances;
    owner->last_bad_output = std::max(owner->last_bad_output, bad);
    if (bad - owner->manifested_at > recovery_bound_) {
      report.btr_violated = true;
    }
  }
  for (RecoveryMeasurement& rm : report.recoveries) {
    rm.recovery_time = rm.last_bad_output - rm.manifested_at;
    report.max_recovery = std::max(report.max_recovery, rm.recovery_time);
    report.total_bad_time += rm.recovery_time;
  }
  return report;
}

}  // namespace btr
