// The offline planner (paper Section 4.1).
//
// Given the topology, the workload, the fault bound f, and the recovery
// bound R, the planner computes a *strategy*: one plan per fault set of size
// <= f. Planning happens offline because (a) a runtime scheduler would be a
// single target for the adversary and (b) bounding rescheduling time online
// is hard; a table lookup is trivially bounded.
//
// Per-mode pipeline:
//   1. Augment the dataflow with replicas, checkers, and verifier budgets.
//      In a mode with k manifested faults only (f - k + 1) replicas are kept
//      per task: that is what detection of the *remaining* possible faults
//      needs, and it frees resources for degraded modes.
//   2. Decide which sinks can be served at all (a faulty sensor/actuator
//      node sheds the flows pinned to it).
//   3. Place tasks on the surviving nodes: hard constraints (replica
//      dispersion, checker independence, pinning) plus scored heuristics —
//      load balance, communication locality, parent-plan stickiness
//      (minimize the reassignment delta that dominates recovery time), and
//      strategic lookahead (avoid parking stateful tasks where one more
//      fault would strand them, the paper's chess/game-tree concern).
//   4. List-schedule the placed tasks with communication-delay budgets; if
//      infeasible, shed the least-critical served sink and retry (the
//      paper's criticality-aware degradation).

#ifndef BTR_SRC_CORE_PLANNER_H_
#define BTR_SRC_CORE_PLANNER_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/augment.h"
#include "src/core/plan.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/workload/dataflow.h"

namespace btr {

struct PlannerConfig {
  uint32_t max_faults = 1;                  // f
  SimDuration recovery_bound = Seconds(1);  // R (reporting / runtime budget)
  AugmentConfig augment;                    // replication defaults to f + 1
  NetworkConfig network;                    // for serialization-time budgets

  bool locality_heuristic = true;   // prefer placements near communicating peers
  bool parent_stickiness = true;    // prefer parent-mode placements
  bool lookahead = true;            // penalize strandable stateful placements
  bool shed_by_criticality = true;  // degrade lowest criticality first
  double comm_budget_factor = 1.5;  // headroom on per-message serialization
  SimDuration epsilon = Microseconds(100);  // clock-skew bound for windows

  // Scoring weights (unitless; relative).
  double weight_load = 1.0;
  double weight_locality = 0.5;
  double weight_parent = 2.0;
  double weight_lookahead = 1.0;
};

struct PlannerMetrics {
  size_t modes_planned = 0;
  size_t modes_degraded = 0;   // at least one sink shed
  size_t schedule_attempts = 0;
};

class Planner {
 public:
  Planner(const Topology* topo, const Dataflow* workload, PlannerConfig config);

  const AugmentedGraph& graph() const { return *graph_; }
  const PlannerConfig& config() const { return config_; }

  // Plans a single mode. `parents` are the plans for the immediate subsets
  // (|S| - 1); may be empty for the root mode.
  StatusOr<Plan> PlanForMode(const FaultSet& faults,
                             const std::vector<const Plan*>& parents) const;

  // Enumerates every fault set up to max_faults and plans it.
  StatusOr<Strategy> BuildStrategy() const;

  // Budgeted one-way latency for `bytes` from `from` to `to` under `routing`
  // (foreground class): serialization on every hop with contention headroom,
  // plus propagation, plus the clock-skew bound.
  SimDuration EdgeLatencyBudget(NodeId from, NodeId to, uint32_t bytes,
                                const RoutingTable& routing) const;

  // As above, additionally bounding queueing by the per-node foreground
  // traffic totals (what TryPlan uses once placement is known).
  SimDuration EdgeLatencyBudgetLoaded(NodeId from, NodeId to, uint32_t bytes,
                                      const RoutingTable& routing,
                                      const std::vector<uint64_t>* node_fg_bytes) const;

  const PlannerMetrics& metrics() const { return metrics_; }

 private:
  struct ModeContext;

  // Replicas kept per replicated task when k faults have manifested.
  uint32_t ReplicasInMode(size_t manifested) const;

  SimDuration SerializationOnHop(const Hop& hop, uint32_t bytes) const;

  StatusOr<Plan> TryPlan(const FaultSet& faults, const std::vector<const Plan*>& parents,
                         const std::vector<TaskId>& served_sinks,
                         const std::shared_ptr<const RoutingTable>& routing) const;

  double PlacementScore(const ModeContext& ctx, uint32_t aug_id, NodeId candidate,
                        const std::vector<const Plan*>& parents) const;

  const Topology* topo_;
  const Dataflow* workload_;
  PlannerConfig config_;
  std::unique_ptr<AugmentedGraph> graph_;
  mutable PlannerMetrics metrics_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_PLANNER_H_
