// The offline planner (paper Section 4.1).
//
// Given the topology, the workload, the fault bound f, and the recovery
// bound R, the planner computes a *strategy*: one plan per fault set of size
// <= f. Planning happens offline because (a) a runtime scheduler would be a
// single target for the adversary and (b) bounding rescheduling time online
// is hard; a table lookup is trivially bounded.
//
// The planner is a thin orchestrator over the composable pipeline stages in
// planner_stages.h:
//
//   1. SinkAdmission decides which sinks can be served at all (a faulty
//      sensor/actuator node sheds the flows pinned to it).
//   2. PlacementStage augments availability with the lookahead
//      vulnerability context, thins replicas to what detection of the
//      *remaining* possible faults needs, and greedily places tasks under
//      hard constraints (replica dispersion, checker independence, pinning)
//      plus scored heuristics — load balance, communication locality,
//      parent-plan stickiness, and strategic lookahead.
//   3. ScheduleStage list-schedules the placed tasks with
//      communication-delay budgets; if infeasible, the planner sheds the
//      least-critical served sink and retries (criticality-aware
//      degradation).
//
// Whole strategies are compiled by the wave-parallel StrategyBuilder
// (strategy_builder.h); Planner::BuildStrategy is a convenience wrapper.
// PlanForMode is thread-safe: all per-mode state lives on the stack, and
// the shared metrics are mutex-guarded.

#ifndef BTR_SRC_CORE_PLANNER_H_
#define BTR_SRC_CORE_PLANNER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/core/augment.h"
#include "src/core/plan.h"
#include "src/core/planner_config.h"
#include "src/core/planner_stages.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/workload/dataflow.h"

namespace btr {

// Content fingerprint of the *system under management* alone — topology
// links and workload tasks/channels, no planner configuration. Stamped into
// StrategyProvenance next to the planner fingerprint and used (with it) as
// the strategy-cache key, so sweep jobs that differ only in seed share one
// compiled strategy. Planner::Fingerprint composes this with the config.
uint64_t FingerprintScenario(const Topology& topo, const Dataflow& workload);

class Planner {
 public:
  Planner(const Topology* topo, const Dataflow* workload, PlannerConfig config);

  const AugmentedGraph& graph() const { return *graph_; }
  const PlannerConfig& config() const { return config_; }
  const Topology& topology() const { return *topo_; }
  const Dataflow& workload() const { return *workload_; }

  // Content fingerprint of every planning input (config, topology links,
  // workload tasks and channels). Two planners with equal fingerprints
  // produce bit-identical strategies; StrategyBuilder stamps it into the
  // strategy's provenance so Rebuild can refuse a mismatched resume.
  uint64_t Fingerprint() const;

  // Plans a single mode. `parents` are the plans for the immediate subsets
  // (|S| - 1); may be empty for the root mode. Safe to call concurrently.
  // `routing` may carry a pre-built table for this topology and fault set
  // (the incremental rebuilder often has one from its equivalence check);
  // when null, the routing is built here.
  StatusOr<Plan> PlanForMode(const FaultSet& faults, const std::vector<const Plan*>& parents,
                             std::shared_ptr<const RoutingTable> routing = nullptr) const;

  // Enumerates every fault set up to max_faults and plans it. Convenience
  // wrapper over StrategyBuilder with config().planner_threads workers.
  StatusOr<Strategy> BuildStrategy() const;

  // Budgeted one-way latency for `bytes` from `from` to `to` under `routing`
  // (foreground class); see LatencyModel::EdgeBudget.
  SimDuration EdgeLatencyBudget(NodeId from, NodeId to, uint32_t bytes,
                                const RoutingTable& routing) const;

  // As above, additionally bounding queueing by the per-node foreground
  // traffic totals.
  SimDuration EdgeLatencyBudgetLoaded(NodeId from, NodeId to, uint32_t bytes,
                                      const RoutingTable& routing,
                                      const std::vector<uint64_t>* node_fg_bytes) const;

  // Stage access (StrategyBuilder, ablation benches, tests).
  const SinkAdmission& sink_admission() const { return *admission_; }
  const PlacementStage& placement_stage() const { return *placement_; }
  const ScheduleStage& schedule_stage() const { return *schedule_; }
  const LatencyModel& latency_model() const { return *latency_; }

  // Snapshot of the counters (copy: the live struct is updated under a lock
  // by concurrent planning threads).
  PlannerMetrics metrics() const;

  // Merges strategy-compilation counters into the metrics (called by
  // StrategyBuilder once per build).
  void RecordBuildMetrics(size_t modes_deduped, size_t unique_plans, size_t waves,
                          size_t max_wave_modes, size_t threads_used) const;

  // Merges incremental-rebuild counters (called by StrategyBuilder::Rebuild
  // once per rebuild).
  void RecordRebuildMetrics(size_t dirty_modes, size_t clean_modes,
                            size_t migrated_bodies) const;

 private:
  StatusOr<Plan> TryPlan(const FaultSet& faults, const std::vector<const Plan*>& parents,
                         const std::vector<TaskId>& served_sinks,
                         const std::shared_ptr<const RoutingTable>& routing) const;

  const Topology* topo_;
  const Dataflow* workload_;
  PlannerConfig config_;
  std::unique_ptr<AugmentedGraph> graph_;
  std::unique_ptr<SinkAdmission> admission_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<PlacementStage> placement_;
  std::unique_ptr<ScheduleStage> schedule_;
  mutable std::mutex metrics_mu_;
  mutable PlannerMetrics metrics_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_PLANNER_H_
