// The correctness monitor: the experiment's ground-truth observer.
//
// The monitor sits outside the system (it is the experimenter, not a node).
// It records every sink output, knows the adversary's manifestation times,
// and — after the run — evaluates Definition 3.1: the system offers
// recovery with bound R iff outputs are correct in every interval [t1, t2]
// such that no fault manifested in [t1 - R, t2).
//
// "Correct" for a sink instance with deadline d means: the plan for the set
// of faults manifested before d either sheds the sink (then absence is the
// correct output — the paper's mixed-criticality extension of Definition
// 3.1), or serves it and the sink emitted the golden digest by d.

#ifndef BTR_SRC_CORE_MONITOR_H_
#define BTR_SRC_CORE_MONITOR_H_

#include <optional>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/packed_key.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/core/adversary.h"
#include "src/core/golden.h"
#include "src/core/plan.h"
#include "src/workload/dataflow.h"

namespace btr {

struct SinkObservation {
  TaskId sink;
  uint64_t period = 0;
  uint64_t digest = 0;
  SimTime at = 0;
};

// Per-manifestation recovery measurement.
struct RecoveryMeasurement {
  NodeId node;
  SimTime manifested_at = 0;
  // Latest incorrect sink deadline attributable to this fault; equal to
  // manifested_at when no incorrect output was observed at all.
  SimTime last_bad_output = 0;
  SimDuration recovery_time = 0;  // last_bad_output - manifested_at
  size_t bad_instances = 0;       // incorrect sink instances in the window
};

struct CorrectnessReport {
  uint64_t total_instances = 0;     // expected sink instances overall
  uint64_t correct_instances = 0;
  uint64_t incorrect_value = 0;     // wrong digest
  uint64_t incorrect_late = 0;      // right digest, after the deadline
  uint64_t incorrect_missing = 0;   // no output at all
  uint64_t shed_instances = 0;      // correctly absent (plan shed the sink)
  std::vector<RecoveryMeasurement> recoveries;
  bool btr_violated = false;        // Definition 3.1 violated for the given R
  SimDuration max_recovery = 0;
  SimDuration total_bad_time = 0;   // sum of per-fault recovery intervals
  // Actuation latency (ns from period start) of correct sink outputs.
  Samples sink_latency;
};

// Per-sink output pattern for weakly-hard ((m,k)-firm) analysis: control
// loops typically tolerate missed or wrong commands as long as any k
// consecutive instances contain at least m good ones (Ramanathan & Hamdaoui,
// cited by the paper as the control-theoretic basis for tolerating bounded
// disturbances).
struct MissPattern {
  std::vector<bool> correct;  // per expected instance, period order
  uint64_t misses = 0;
  uint64_t longest_miss_run = 0;

  // True iff every window of k consecutive instances has >= m correct.
  bool SatisfiesMK(uint64_t m, uint64_t k) const;
};

class Monitor {
 public:
  Monitor(const Dataflow* workload, const Strategy* strategy, const AdversarySpec* adversary,
          SimDuration recovery_bound);

  // Runtime hooks.
  void RecordSinkOutput(TaskId sink, uint64_t period, uint64_t digest, SimTime at);

  // Splits the observation table per shard so concurrent shard workers never
  // share a map. A given sink always actuates on its pinned node's shard, so
  // each (sink, period) key still has exactly one writer and lands in exactly
  // one table. Call before the run starts.
  void ConfigureShards(uint32_t shards);

  // Pre-sizes the observation tables for the expected number of sink
  // instances, so a long run does not rehash them dozens of times.
  void ReserveObservations(size_t expected) {
    for (auto& shard : observations_) {
      shard.map.reserve(expected / observations_.size() + 1);
    }
  }

  // Evaluates the run over periods [0, periods).
  CorrectnessReport Evaluate(uint64_t periods) const;

  // The correct/incorrect pattern of one sink's expected instances (shed
  // instances are excluded — absence there is by design).
  MissPattern SinkMissPattern(TaskId sink, uint64_t periods) const;

  // The fault set manifested strictly before `t` (adversary ground truth).
  FaultSet ManifestedBefore(SimTime t) const;

  // Utility (criticality-weighted served sinks) of the plan in force at the
  // given manifested fault set; used by the degradation experiment.
  double PlanUtility(const FaultSet& faults) const;

  const GoldenOracle& oracle() const { return oracle_; }

 private:
  const Dataflow* workload_;
  const Strategy* strategy_;
  const AdversarySpec* adversary_;
  SimDuration recovery_bound_;
  GoldenOracle oracle_;
  // PackIdPeriod(sink, period) -> first observation, one table per shard
  // (padded: adjacent shards' tables must not share a cache line). Only
  // probed by key (evaluation loops run over (sink, period) explicitly), so
  // hash order never reaches the report.
  struct alignas(64) ObservationShard {
    FlatMap64<SinkObservation> map;
  };
  const SinkObservation* FindObservation(uint64_t key) const;
  std::vector<ObservationShard> observations_{1};
};

}  // namespace btr

#endif  // BTR_SRC_CORE_MONITOR_H_
