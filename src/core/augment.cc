#include "src/core/augment.h"

#include <cassert>

namespace btr {

AugmentedGraph::AugmentedGraph(const Dataflow* workload, size_t node_count,
                               const AugmentConfig& config)
    : workload_(workload), config_(config) {
  assert(config_.replication >= 1);
  const size_t n_tasks = workload->task_count();
  replicas_.assign(n_tasks, {});
  checker_.assign(n_tasks, kNone);
  verifier_.assign(node_count, kNone);

  // 1. Workload tasks and their replicas.
  for (const TaskSpec& spec : workload->tasks()) {
    const bool replicable = spec.kind == TaskKind::kCompute &&
                            spec.criticality >= config_.replicate_min_criticality;
    const uint32_t copies = replicable ? config_.replication : 1;
    for (uint32_t r = 0; r < copies; ++r) {
      AugTask t;
      t.kind = AugKind::kWorkload;
      t.workload_task = spec.id;
      t.replica = r;
      t.wcet = spec.wcet;
      t.state_bytes = spec.state_bytes;
      t.criticality = spec.criticality;
      t.pinned = spec.pinned_node;
      t.name = spec.name + (copies > 1 ? "#" + std::to_string(r) : "");
      replicas_[spec.id.value()].push_back(AddTask(std::move(t)));
    }
  }

  // 2. Checking tasks for replicated workload tasks.
  for (const TaskSpec& spec : workload->tasks()) {
    if (replicas_[spec.id.value()].size() <= 1) {
      continue;
    }
    AugTask t;
    t.kind = AugKind::kChecker;
    t.workload_task = spec.id;
    t.wcet = config_.compare_cost +
             static_cast<SimDuration>(config_.replay_factor * static_cast<double>(spec.wcet));
    t.criticality = spec.criticality;
    t.name = "chk(" + spec.name + ")";
    checker_[spec.id.value()] = AddTask(std::move(t));
  }

  // 3. Per-node verification tasks (evidence validation budget).
  for (size_t n = 0; n < node_count; ++n) {
    AugTask t;
    t.kind = AugKind::kVerifier;
    t.verifier_node = NodeId(static_cast<uint32_t>(n));
    t.wcet = config_.verifier_budget;
    t.criticality = Criticality::kHigh;  // evidence handling must not be shed
    t.pinned = t.verifier_node;
    t.name = "verify@n" + std::to_string(n);
    verifier_[n] = AddTask(std::move(t));
  }

  // Edges.
  in_edges_.assign(tasks_.size(), {});
  out_edges_.assign(tasks_.size(), {});
  for (const ChannelSpec& ch : workload->channels()) {
    const uint32_t producer_primary = PrimaryOf(ch.from);
    // Producer primary feeds every replica of the consumer.
    for (uint32_t consumer : replicas_[ch.to.value()]) {
      AddEdge(producer_primary, consumer, ch.message_bytes);
    }
    // Producer primary also feeds the consumer's checker (replay inputs).
    const uint32_t chk = checker_[ch.to.value()];
    if (chk != kNone) {
      AddEdge(producer_primary, chk, ch.message_bytes);
    }
  }
  // Every replica reports its signed output digest to the task's checker.
  for (const TaskSpec& spec : workload->tasks()) {
    const uint32_t chk = checker_[spec.id.value()];
    if (chk == kNone) {
      continue;
    }
    for (uint32_t rep : replicas_[spec.id.value()]) {
      AddEdge(rep, chk, config_.digest_record_bytes);
    }
  }
}

uint32_t AugmentedGraph::AddTask(AugTask t) {
  t.id = static_cast<uint32_t>(tasks_.size());
  tasks_.push_back(std::move(t));
  return tasks_.back().id;
}

void AugmentedGraph::AddEdge(uint32_t from, uint32_t to, uint32_t bytes) {
  assert(from < tasks_.size() && to < tasks_.size());
  const AugEdge e{from, to, bytes};
  edges_.push_back(e);
  out_edges_[from].push_back(e);
  in_edges_[to].push_back(e);
}

const std::vector<uint32_t>& AugmentedGraph::ReplicasOf(TaskId task) const {
  return replicas_[task.value()];
}

uint32_t AugmentedGraph::PrimaryOf(TaskId task) const {
  assert(!replicas_[task.value()].empty());
  return replicas_[task.value()].front();
}

uint32_t AugmentedGraph::CheckerOf(TaskId task) const { return checker_[task.value()]; }

uint32_t AugmentedGraph::VerifierOf(NodeId node) const { return verifier_[node.value()]; }

}  // namespace btr
