// Network payloads exchanged by BTR node runtimes (besides OutputRecord and
// EvidenceRecord, which live in evidence.h).

#ifndef BTR_SRC_CORE_MESSAGES_H_
#define BTR_SRC_CORE_MESSAGES_H_

#include <memory>
#include <string>

#include "src/core/evidence.h"
#include "src/crypto/keys.h"
#include "src/net/dissemination.h"
#include "src/net/network.h"

namespace btr {

// Evidence in transit: the record plus the endorsement of whoever forwarded
// it. Invalid evidence convicts the endorser (Section 4.3).
struct EvidenceMessage : Payload {
  std::shared_ptr<const EvidenceRecord> evidence;
  NodeId forwarder;
  Signature endorsement;  // forwarder's signature over evidence->ContentDigest()

  PayloadKind kind() const override { return PayloadKind::kEvidence; }
};

// Periodic liveness beacon between one-hop neighbors. Missing heartbeats
// produce path declarations, which is how crashes of nodes that host few
// observable tasks still accumulate blame quickly.
struct Heartbeat : Payload {
  NodeId from;
  uint64_t period = 0;
  Signature sig;  // over HeartbeatDigest(from, period)

  PayloadKind kind() const override { return PayloadKind::kHeartbeat; }
};

uint64_t HeartbeatDigest(NodeId from, uint64_t period);

// Request for the migration state of a task, sent during a mode transition
// by the task's new host to the chosen donor.
struct StateRequest : Payload {
  TaskId task;
  uint32_t new_replica = 0;  // replica slot being (re)started
  NodeId requester;

  PayloadKind kind() const override { return PayloadKind::kStateRequest; }
};

// The state payload itself; size dominates transition time for stateful
// tasks, which is what experiment E8 measures.
struct StateTransfer : Payload {
  TaskId task;
  uint32_t new_replica = 0;
  NodeId donor;

  PayloadKind kind() const override { return PayloadKind::kStateTransfer; }
};

// --- strategy install plane (see strategy_patch.h) -------------------------

// A node's sliced strategy patch, shipped by the distributor during a
// rollout. The wire size is the patch text itself, so dissemination cost
// shows up in the network stats like any other control traffic.
struct StrategyPatchMessage : Payload {
  std::string patch;  // BTRPATCH text sliced for the destination node
  uint64_t base_fp = 0;
  uint64_t target_fp = 0;
  NodeId distributor;

  PayloadKind kind() const override { return PayloadKind::kStrategyPatch; }
};

// Fallback shipment after a failed patch apply: the node's complete target
// slice (still table-granular — only this node's schedule rows). The naive
// blob-per-node baseline reuses this message with the whole BTRSTRATEGY
// blob in `slice`.
struct StrategyFullMessage : Payload {
  std::string slice;  // BTRSLICE text for the destination node (or the blob)
  uint64_t target_fp = 0;
  // Fingerprint of `slice` itself, computed by the distributor. The text's
  // own SFP record chains to the parent blob, not to its own bytes, so the
  // receiver needs this to detect in-transit corruption before installing.
  uint64_t content_fp = 0;
  NodeId distributor;

  PayloadKind kind() const override { return PayloadKind::kStrategyFull; }
};

// A node telling the distributor its patch did not verify (wrong base,
// corruption in transit, ...); the distributor answers with the full slice.
struct InstallNackMessage : Payload {
  NodeId from;
  uint64_t target_fp = 0;

  PayloadKind kind() const override { return PayloadKind::kInstallNack; }
};

// --- gossip dissemination (see src/net/dissemination.h) --------------------

// Trickle beacon: "I currently run `announced_fp`; the rollout I know of
// targets `target_fp`". A neighbor behind the announcer pulls; a neighbor
// ahead of it resets its Trickle interval and re-offers.
struct DissemBeaconMessage : Payload {
  NodeId from;
  uint64_t announced_fp = 0;
  uint64_t target_fp = 0;

  PayloadKind kind() const override { return PayloadKind::kDissemBeacon; }
};

// Pull request to a neighbor that announced the target version.
// `have_chunks` is the contiguous chunk prefix the requester already holds
// (resume offset); `want_blob` asks for the blob artifact after a patch
// failed to apply.
struct DissemRequestMessage : Payload {
  NodeId from;
  uint64_t target_fp = 0;
  uint32_t have_chunks = 0;
  bool want_blob = false;

  PayloadKind kind() const override { return PayloadKind::kDissemRequest; }
};

// One paced chunk of an artifact transfer. Only the final chunk (seq ==
// total - 1) carries the artifact text; earlier chunks model wire bytes.
struct DissemChunkMessage : Payload {
  NodeId from;  // the serving node
  uint64_t target_fp = 0;
  DissemContent content = DissemContent::kPatchFull;
  uint32_t seq = 0;
  uint32_t total = 0;
  uint64_t content_fp = 0;  // fingerprint of the complete artifact text
  std::string text;         // set on the final chunk only

  PayloadKind kind() const override { return PayloadKind::kDissemChunk; }
};

}  // namespace btr

#endif  // BTR_SRC_CORE_MESSAGES_H_
