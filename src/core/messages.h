// Network payloads exchanged by BTR node runtimes (besides OutputRecord and
// EvidenceRecord, which live in evidence.h).

#ifndef BTR_SRC_CORE_MESSAGES_H_
#define BTR_SRC_CORE_MESSAGES_H_

#include <memory>

#include "src/core/evidence.h"
#include "src/crypto/keys.h"
#include "src/net/network.h"

namespace btr {

// Evidence in transit: the record plus the endorsement of whoever forwarded
// it. Invalid evidence convicts the endorser (Section 4.3).
struct EvidenceMessage : Payload {
  std::shared_ptr<const EvidenceRecord> evidence;
  NodeId forwarder;
  Signature endorsement;  // forwarder's signature over evidence->ContentDigest()

  PayloadKind kind() const override { return PayloadKind::kEvidence; }
};

// Periodic liveness beacon between one-hop neighbors. Missing heartbeats
// produce path declarations, which is how crashes of nodes that host few
// observable tasks still accumulate blame quickly.
struct Heartbeat : Payload {
  NodeId from;
  uint64_t period = 0;
  Signature sig;  // over HeartbeatDigest(from, period)

  PayloadKind kind() const override { return PayloadKind::kHeartbeat; }
};

uint64_t HeartbeatDigest(NodeId from, uint64_t period);

// Request for the migration state of a task, sent during a mode transition
// by the task's new host to the chosen donor.
struct StateRequest : Payload {
  TaskId task;
  uint32_t new_replica = 0;  // replica slot being (re)started
  NodeId requester;

  PayloadKind kind() const override { return PayloadKind::kStateRequest; }
};

// The state payload itself; size dominates transition time for stateful
// tasks, which is what experiment E8 measures.
struct StateTransfer : Payload {
  TaskId task;
  uint32_t new_replica = 0;
  NodeId donor;

  PayloadKind kind() const override { return PayloadKind::kStateTransfer; }
};

}  // namespace btr

#endif  // BTR_SRC_CORE_MESSAGES_H_
