#include "src/core/strategy_delta.h"

#include <unordered_map>
#include <unordered_set>

namespace btr {

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kLinkAdd:
      return "link-add";
    case DeltaKind::kLinkRemove:
      return "link-remove";
    case DeltaKind::kLinkLatencyChange:
      return "link-latency";
    case DeltaKind::kTaskAdd:
      return "task-add";
    case DeltaKind::kTaskRemove:
      return "task-remove";
    case DeltaKind::kTaskReweight:
      return "task-reweight";
  }
  return "unknown";
}

DeltaEdit DeltaEdit::LinkAdd(std::string name, std::vector<NodeId> endpoints,
                             int64_t bandwidth_bps, SimDuration propagation) {
  DeltaEdit e;
  e.kind = DeltaKind::kLinkAdd;
  e.link_name = std::move(name);
  e.endpoints = std::move(endpoints);
  e.bandwidth_bps = bandwidth_bps;
  e.propagation = propagation;
  return e;
}

DeltaEdit DeltaEdit::LinkRemove(std::string name) {
  DeltaEdit e;
  e.kind = DeltaKind::kLinkRemove;
  e.link_name = std::move(name);
  return e;
}

DeltaEdit DeltaEdit::LinkLatencyChange(std::string name, int64_t bandwidth_bps,
                                       SimDuration propagation) {
  DeltaEdit e;
  e.kind = DeltaKind::kLinkLatencyChange;
  e.link_name = std::move(name);
  e.bandwidth_bps = bandwidth_bps;
  e.propagation = propagation;
  return e;
}

DeltaEdit DeltaEdit::TaskAdd(TaskSpec task, std::vector<DeltaChannel> channels) {
  DeltaEdit e;
  e.kind = DeltaKind::kTaskAdd;
  e.task_name = task.name;
  e.task = std::move(task);
  e.channels = std::move(channels);
  return e;
}

DeltaEdit DeltaEdit::TaskRemove(std::string name) {
  DeltaEdit e;
  e.kind = DeltaKind::kTaskRemove;
  e.task_name = std::move(name);
  return e;
}

DeltaEdit DeltaEdit::TaskReweight(std::string name, Criticality criticality) {
  DeltaEdit e;
  e.kind = DeltaKind::kTaskReweight;
  e.task_name = std::move(name);
  e.criticality = criticality;
  return e;
}

bool StrategyDelta::Has(DeltaKind kind) const {
  for (const DeltaEdit& e : edits) {
    if (e.kind == kind) {
      return true;
    }
  }
  return false;
}

std::string StrategyDelta::ToString() const {
  std::string s = "[";
  for (size_t i = 0; i < edits.size(); ++i) {
    if (i > 0) {
      s += ", ";
    }
    s += DeltaKindName(edits[i].kind);
    s += "(";
    s += edits[i].kind == DeltaKind::kLinkAdd || edits[i].kind == DeltaKind::kLinkRemove ||
                 edits[i].kind == DeltaKind::kLinkLatencyChange
             ? edits[i].link_name
             : edits[i].task_name;
    s += ")";
  }
  return s + "]";
}

namespace {

Status CheckLinkEdits(const Topology& topo, const StrategyDelta& delta) {
  // Names must identify at most one link to be usable as edit identity.
  std::unordered_map<std::string, size_t> name_count;
  for (const LinkSpec& l : topo.links()) {
    ++name_count[l.name];
  }
  std::unordered_set<std::string> added;
  for (const DeltaEdit& e : delta.edits) {
    switch (e.kind) {
      case DeltaKind::kLinkAdd: {
        if (e.link_name.empty()) {
          return Status::InvalidArgument("link-add requires a name");
        }
        if (name_count.count(e.link_name) != 0 || !added.insert(e.link_name).second) {
          return Status::InvalidArgument("link-add duplicates name " + e.link_name);
        }
        if (e.endpoints.size() < 2) {
          return Status::InvalidArgument("link-add " + e.link_name + " needs >= 2 endpoints");
        }
        for (NodeId n : e.endpoints) {
          if (!n.valid() || n.value() >= topo.node_count()) {
            return Status::InvalidArgument("link-add " + e.link_name + " has unknown endpoint");
          }
        }
        if (e.bandwidth_bps <= 0) {
          return Status::InvalidArgument("link-add " + e.link_name +
                                         " needs positive bandwidth");
        }
        if (e.propagation < 0) {
          return Status::InvalidArgument("link-add " + e.link_name +
                                         " needs non-negative propagation");
        }
        break;
      }
      case DeltaKind::kLinkRemove:
      case DeltaKind::kLinkLatencyChange: {
        auto it = name_count.find(e.link_name);
        if (it == name_count.end()) {
          return Status::NotFound("no link named " + e.link_name);
        }
        if (it->second > 1) {
          return Status::InvalidArgument("link name " + e.link_name + " is ambiguous");
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::Ok();
}

Status CheckTaskEdits(const Topology& topo, const Dataflow& workload,
                      const StrategyDelta& delta) {
  std::unordered_map<std::string, size_t> name_count;
  for (const TaskSpec& t : workload.tasks()) {
    ++name_count[t.name];
  }
  std::unordered_set<std::string> added;
  std::unordered_set<std::string> removed;
  // Removal filtering in ApplyDelta is batch-wide, so wiring is validated
  // against every removal in the batch, not just those listed earlier —
  // otherwise a TaskAdd could wire a channel to a task a later edit drops.
  std::unordered_set<std::string> removed_anywhere;
  for (const DeltaEdit& e : delta.edits) {
    if (e.kind == DeltaKind::kTaskRemove) {
      removed_anywhere.insert(e.task_name);
    }
  }
  auto resolvable = [&](const std::string& name) {
    return (name_count.count(name) != 0 && removed_anywhere.count(name) == 0) ||
           added.count(name) != 0;
  };
  for (const DeltaEdit& e : delta.edits) {
    switch (e.kind) {
      case DeltaKind::kTaskAdd: {
        if (e.task.name.empty()) {
          return Status::InvalidArgument("task-add requires a name");
        }
        if (name_count.count(e.task.name) != 0 || !added.insert(e.task.name).second) {
          return Status::InvalidArgument("task-add duplicates name " + e.task.name);
        }
        if (e.task.wcet <= 0) {
          return Status::InvalidArgument("task-add " + e.task.name + " needs positive wcet");
        }
        const bool pinned_kind =
            e.task.kind == TaskKind::kSource || e.task.kind == TaskKind::kSink;
        if (pinned_kind && (!e.task.pinned_node.valid() ||
                            e.task.pinned_node.value() >= topo.node_count())) {
          return Status::InvalidArgument("task-add " + e.task.name +
                                         " needs a valid pinned node");
        }
        for (const DeltaChannel& ch : e.channels) {
          if (!resolvable(ch.from) || !resolvable(ch.to)) {
            return Status::NotFound("task-add " + e.task.name + " wires unknown task " +
                                    (resolvable(ch.from) ? ch.to : ch.from));
          }
        }
        break;
      }
      case DeltaKind::kTaskRemove: {
        if (name_count.count(e.task_name) == 0 || !removed.insert(e.task_name).second) {
          return Status::NotFound("no task named " + e.task_name);
        }
        if (name_count[e.task_name] > 1) {
          return Status::InvalidArgument("task name " + e.task_name + " is ambiguous");
        }
        break;
      }
      case DeltaKind::kTaskReweight: {
        if (name_count.count(e.task_name) == 0 || removed.count(e.task_name) != 0) {
          return Status::NotFound("no task named " + e.task_name);
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::Ok();
}

}  // namespace

Status ApplyDelta(const Topology& topo, const Dataflow& workload, const StrategyDelta& delta,
                  Topology* new_topo, Dataflow* new_workload) {
  Status ok = CheckLinkEdits(topo, delta);
  if (!ok.ok()) {
    return ok;
  }
  ok = CheckTaskEdits(topo, workload, delta);
  if (!ok.ok()) {
    return ok;
  }

  // --- Topology: surviving links in original order, added links appended. ---
  std::unordered_set<std::string> removed_links;
  std::unordered_map<std::string, const DeltaEdit*> latency_edits;
  for (const DeltaEdit& e : delta.edits) {
    if (e.kind == DeltaKind::kLinkRemove) {
      removed_links.insert(e.link_name);
    } else if (e.kind == DeltaKind::kLinkLatencyChange) {
      latency_edits[e.link_name] = &e;
    }
  }
  Topology t;
  t.AddNodes(topo.node_count());
  for (const LinkSpec& l : topo.links()) {
    if (removed_links.count(l.name) != 0) {
      continue;
    }
    int64_t bandwidth = l.bandwidth_bps;
    SimDuration propagation = l.propagation;
    auto it = latency_edits.find(l.name);
    if (it != latency_edits.end()) {
      if (it->second->bandwidth_bps > 0) {
        bandwidth = it->second->bandwidth_bps;
      }
      if (it->second->propagation >= 0) {
        propagation = it->second->propagation;
      }
    }
    t.AddLink(l.endpoints, bandwidth, propagation, l.name);
  }
  for (const DeltaEdit& e : delta.edits) {
    if (e.kind == DeltaKind::kLinkAdd) {
      t.AddLink(e.endpoints, e.bandwidth_bps, e.propagation, e.link_name);
    }
  }

  // --- Workload: surviving tasks in original order, added tasks appended;
  // channels among survivors keep their order, added wiring appended. ---
  std::unordered_set<std::string> removed_tasks;
  std::unordered_map<std::string, const DeltaEdit*> reweights;
  for (const DeltaEdit& e : delta.edits) {
    if (e.kind == DeltaKind::kTaskRemove) {
      removed_tasks.insert(e.task_name);
    } else if (e.kind == DeltaKind::kTaskReweight) {
      reweights[e.task_name] = &e;  // last reweight of a name wins
    }
  }
  Dataflow w(workload.period());
  std::unordered_map<std::string, TaskId> new_ids;
  auto add_task = [&](const TaskSpec& spec, Criticality criticality) {
    TaskId id;
    switch (spec.kind) {
      case TaskKind::kSource:
        id = w.AddSource(spec.name, spec.wcet, spec.pinned_node, criticality);
        break;
      case TaskKind::kSink:
        id = w.AddSink(spec.name, spec.wcet, spec.pinned_node, criticality,
                       spec.relative_deadline);
        break;
      case TaskKind::kCompute:
        id = w.AddCompute(spec.name, spec.wcet, spec.state_bytes, criticality);
        break;
    }
    new_ids.emplace(spec.name, id);
  };
  for (const TaskSpec& spec : workload.tasks()) {
    if (removed_tasks.count(spec.name) != 0) {
      continue;
    }
    auto it = reweights.find(spec.name);
    add_task(spec, it != reweights.end() ? it->second->criticality : spec.criticality);
  }
  for (const DeltaEdit& e : delta.edits) {
    if (e.kind == DeltaKind::kTaskAdd) {
      add_task(e.task, e.task.criticality);
    }
  }
  for (const ChannelSpec& ch : workload.channels()) {
    const std::string& from = workload.task(ch.from).name;
    const std::string& to = workload.task(ch.to).name;
    if (removed_tasks.count(from) != 0 || removed_tasks.count(to) != 0) {
      continue;
    }
    w.Connect(new_ids.at(from), new_ids.at(to), ch.message_bytes);
  }
  for (const DeltaEdit& e : delta.edits) {
    if (e.kind == DeltaKind::kTaskAdd) {
      for (const DeltaChannel& ch : e.channels) {
        w.Connect(new_ids.at(ch.from), new_ids.at(ch.to), ch.message_bytes);
      }
    }
  }

  *new_topo = std::move(t);
  *new_workload = std::move(w);
  return Status::Ok();
}

}  // namespace btr
