#include "src/core/strategy_builder.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/planner.h"
#include "src/core/planner_stages.h"

namespace btr {

StrategyBuilder::StrategyBuilder(const Planner* planner, size_t threads)
    : planner_(planner), threads_(threads) {}

StatusOr<Strategy> StrategyBuilder::Build() {
  const size_t node_count = planner_->topology().node_count();
  const uint32_t max_faults = planner_->config().max_faults;

  Strategy strategy;
  ThreadPool pool(threads_);
  size_t max_wave_modes = 0;

  for (size_t k = 0; k <= max_faults; ++k) {
    const std::vector<FaultSet> wave = ModeEnumerator::Level(node_count, k);
    max_wave_modes = std::max(max_wave_modes, wave.size());
    std::vector<std::optional<StatusOr<Plan>>> results(wave.size());

    // All of wave k's parents sit in level k - 1, fully inserted by now, so
    // the workers only ever read the strategy — no synchronization needed.
    // One infeasible mode fails the whole build, so later jobs bail out
    // early instead of planning modes whose result will be discarded.
    std::atomic<bool> failed{false};
    pool.ParallelFor(wave.size(), [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      const FaultSet& faults = wave[i];
      std::vector<const Plan*> parents;
      parents.reserve(faults.size());
      for (NodeId x : faults.nodes()) {
        const Plan* parent = strategy.Lookup(faults.Without(x));
        if (parent != nullptr) {
          parents.push_back(parent);
        }
      }
      results[i] = planner_->PlanForMode(faults, parents);
      if (!results[i]->ok()) {
        failed.store(true, std::memory_order_relaxed);
      }
    });

    // A cancelled wave leaves the jobs after the failure unplanned; report
    // the failure that triggered it.
    if (failed.load(std::memory_order_relaxed)) {
      for (std::optional<StatusOr<Plan>>& result : results) {
        if (result.has_value() && !result->ok()) {
          return result->status();
        }
      }
      return Status::Internal("wave cancelled without a failure status");
    }
    // Insert in enumeration order (determinism: body ids and dedup choices
    // are independent of which worker finished first).
    for (std::optional<StatusOr<Plan>>& result : results) {
      strategy.Insert(std::move(*result).value());
    }
  }

  planner_->RecordBuildMetrics(strategy.dedup_hits(), strategy.unique_plan_count(),
                               static_cast<size_t>(max_faults) + 1, max_wave_modes,
                               pool.thread_count());
  return strategy;
}

}  // namespace btr
