#include "src/core/strategy_builder.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/planner.h"
#include "src/core/planner_stages.h"

namespace btr {

StrategyBuilder::StrategyBuilder(const Planner* planner, size_t threads)
    : planner_(planner), threads_(threads) {}

StatusOr<Strategy> StrategyBuilder::Build() {
  const size_t node_count = planner_->topology().node_count();
  const uint32_t max_faults = planner_->config().max_faults;

  Strategy strategy;
  // Planning runs on the process-wide shared worker pool (the same pool the
  // sharded simulator parks its shard loops on — batches are tracked
  // independently, so the two never wait on each other); threads_ == 1
  // keeps the fully serial inline path.
  ThreadPool serial_pool(1);
  ThreadPool& pool = threads_ == 1 ? serial_pool : ThreadPool::Shared();
  const size_t threads_used =
      threads_ != 0 ? threads_
                    : std::max<size_t>(1, std::thread::hardware_concurrency());
  if (&pool != &serial_pool) {
    // The shared pool is sized to the host; an explicit thread request may
    // exceed it (oversubscription is the caller's call), so grow to match.
    pool.EnsureWorkers(threads_used);
  }
  size_t max_wave_modes = 0;

  for (size_t k = 0; k <= max_faults; ++k) {
    const std::vector<FaultSet> wave = ModeEnumerator::Level(node_count, k);
    max_wave_modes = std::max(max_wave_modes, wave.size());
    std::vector<std::optional<StatusOr<Plan>>> results(wave.size());

    // All of wave k's parents sit in level k - 1, fully inserted by now, so
    // the workers only ever read the strategy — no synchronization needed.
    // One infeasible mode fails the whole build, so later jobs bail out
    // early instead of planning modes whose result will be discarded.
    std::atomic<bool> failed{false};
    pool.ParallelFor(wave.size(), [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      const FaultSet& faults = wave[i];
      std::vector<const Plan*> parents;
      parents.reserve(faults.size());
      for (NodeId x : faults.nodes()) {
        const Plan* parent = strategy.Lookup(faults.Without(x));
        if (parent != nullptr) {
          parents.push_back(parent);
        }
      }
      results[i] = planner_->PlanForMode(faults, parents);
      if (!results[i]->ok()) {
        failed.store(true, std::memory_order_relaxed);
      }
    });

    // A cancelled wave leaves the jobs after the failure unplanned; report
    // the failure that triggered it.
    if (failed.load(std::memory_order_relaxed)) {
      for (std::optional<StatusOr<Plan>>& result : results) {
        if (result.has_value() && !result->ok()) {
          return result->status();
        }
      }
      return Status::Internal("wave cancelled without a failure status");
    }
    // Insert in enumeration order (determinism: body ids and dedup choices
    // are independent of which worker finished first).
    for (std::optional<StatusOr<Plan>>& result : results) {
      strategy.Insert(std::move(*result).value());
    }
  }

  planner_->RecordBuildMetrics(strategy.dedup_hits(), strategy.unique_plan_count(),
                               static_cast<size_t>(max_faults) + 1, max_wave_modes,
                               threads_used);
  strategy.set_provenance(max_faults, planner_->Fingerprint(),
                          FingerprintScenario(planner_->topology(), planner_->workload()));
  return strategy;
}

namespace {

constexpr uint32_t kNoAug = AugmentedGraph::kNone;
constexpr uint32_t kNoLink = UINT32_MAX;

// Hop-for-hop route equality with the old table's link ids translated into
// the new id space: a hop matches only if it rides the same *physical*
// link, not merely the same numeric id.
bool RoutesEquivalent(const RoutingTable& old_routing, const RoutingTable& new_routing,
                      size_t node_count, const std::vector<uint32_t>& new_link_from_old) {
  for (uint32_t src = 0; src < node_count; ++src) {
    for (uint32_t dst = 0; dst < node_count; ++dst) {
      const Route& old_route = old_routing.RouteBetween(NodeId(src), NodeId(dst));
      const Route& new_route = new_routing.RouteBetween(NodeId(src), NodeId(dst));
      if (old_route.size() != new_route.size()) {
        return false;
      }
      for (size_t h = 0; h < old_route.size(); ++h) {
        const uint32_t translated = new_link_from_old[old_route[h].link.value()];
        if (old_route[h].sender != new_route[h].sender ||
            old_route[h].receiver != new_route[h].receiver || translated == kNoLink ||
            translated != new_route[h].link.value()) {
          return false;
        }
      }
    }
  }
  return true;
}

// Maps augmented-task and augmented-edge indices between the old and new
// planning universes. Identity across the edit is semantic: an augmented
// task is "the same" if it plays the same role (kind, underlying workload
// task *name*, replica index / verifier node) on both sides; an edge is the
// k-th occurrence of the same (from, to, bytes) triple in construction
// order on both sides (AugmentedGraph builds edges in a deterministic
// order, and ApplyDelta preserves the relative order of survivors).
struct UniverseRemap {
  bool identical = true;                // every index maps to itself
  std::vector<uint32_t> old_from_new;   // new aug id -> old aug id or kNoAug
  std::vector<uint32_t> new_from_old;   // old aug id -> new aug id or kNoAug
  std::vector<int64_t> old_edge_from_new;  // new edge idx -> old edge idx or -1
};

std::string AugSignature(const AugmentedGraph& graph, const AugTask& task) {
  switch (task.kind) {
    case AugKind::kWorkload:
      return "w:" + graph.workload().task(task.workload_task).name + "#" +
             std::to_string(task.replica);
    case AugKind::kChecker:
      return "c:" + graph.workload().task(task.workload_task).name;
    case AugKind::kVerifier:
      return "v:" + std::to_string(task.verifier_node.value());
  }
  return "?";
}

UniverseRemap BuildUniverseRemap(const AugmentedGraph& old_graph,
                                 const AugmentedGraph& new_graph) {
  UniverseRemap remap;
  remap.identical = old_graph.size() == new_graph.size();
  remap.old_from_new.assign(new_graph.size(), kNoAug);
  remap.new_from_old.assign(old_graph.size(), kNoAug);
  std::unordered_map<std::string, uint32_t> old_by_sig;
  old_by_sig.reserve(old_graph.size());
  for (const AugTask& t : old_graph.tasks()) {
    old_by_sig.emplace(AugSignature(old_graph, t), t.id);
  }
  for (const AugTask& t : new_graph.tasks()) {
    auto it = old_by_sig.find(AugSignature(new_graph, t));
    if (it == old_by_sig.end()) {
      remap.identical = false;
      continue;
    }
    remap.old_from_new[t.id] = it->second;
    remap.new_from_old[it->second] = t.id;
    if (it->second != t.id) {
      remap.identical = false;
    }
  }

  auto edge_key = [](uint32_t from, uint32_t to, uint32_t bytes) {
    return std::to_string(from) + "," + std::to_string(to) + "," + std::to_string(bytes);
  };
  std::unordered_map<std::string, std::deque<size_t>> old_edges;
  for (size_t i = 0; i < old_graph.edges().size(); ++i) {
    const AugEdge& e = old_graph.edges()[i];
    old_edges[edge_key(e.from, e.to, e.bytes)].push_back(i);
  }
  remap.old_edge_from_new.assign(new_graph.edges().size(), -1);
  if (old_graph.edges().size() != new_graph.edges().size()) {
    remap.identical = false;
  }
  for (size_t i = 0; i < new_graph.edges().size(); ++i) {
    const AugEdge& e = new_graph.edges()[i];
    const uint32_t from_old = remap.old_from_new[e.from];
    const uint32_t to_old = remap.old_from_new[e.to];
    if (from_old == kNoAug || to_old == kNoAug) {
      remap.identical = false;
      continue;
    }
    auto it = old_edges.find(edge_key(from_old, to_old, e.bytes));
    if (it == old_edges.end() || it->second.empty()) {
      remap.identical = false;
      continue;
    }
    remap.old_edge_from_new[i] = static_cast<int64_t>(it->second.front());
    it->second.pop_front();
    if (remap.old_edge_from_new[i] != static_cast<int64_t>(i)) {
      remap.identical = false;
    }
  }
  return remap;
}

// Re-expresses a clean mode's body in the new universe's index space. The
// result must equal what a fresh BuildBody would produce for the same
// (unchanged) active set: placements/starts/table jobs are remapped
// id-for-id, tasks and edges with no old counterpart come out shed /
// unbudgeted, and shedding info is re-derived against the new sink
// universe from the names the old mode finally served. Returns nullptr if
// some *running* old task or scheduled job has no new identity — such a
// mode was misclassified and must be replanned.
std::shared_ptr<const PlanBody> TryMigrateBody(const PlanBody& old_body,
                                               const UniverseRemap& remap,
                                               const AugmentedGraph& new_graph,
                                               const Dataflow& old_workload,
                                               const Dataflow& new_workload) {
  for (uint32_t old_id = 0; old_id < old_body.placement.size(); ++old_id) {
    if (old_body.placement[old_id].valid() && remap.new_from_old[old_id] == kNoAug) {
      return nullptr;
    }
  }
  PlanBody body;
  body.placement.assign(new_graph.size(), NodeId::Invalid());
  body.start.assign(new_graph.size(), -1);
  for (uint32_t new_id = 0; new_id < new_graph.size(); ++new_id) {
    const uint32_t old_id = remap.old_from_new[new_id];
    if (old_id != kNoAug) {
      body.placement[new_id] = old_body.placement[old_id];
      body.start[new_id] = old_body.start[old_id];
    }
  }
  body.tables.assign(old_body.tables.size(), ScheduleTable());
  for (size_t n = 0; n < old_body.tables.size(); ++n) {
    for (const ScheduleEntry& e : old_body.tables[n].entries()) {
      const uint32_t new_job = remap.new_from_old[e.job];
      if (new_job == kNoAug) {
        return nullptr;
      }
      body.tables[n].Add(new_job, e.start, e.duration);
    }
    body.tables[n].SortByStart();
  }
  std::vector<SimDuration> budgets(new_graph.edges().size(), -1);
  const std::vector<SimDuration>& old_budgets = old_body.edge_budget();
  for (size_t i = 0; i < budgets.size(); ++i) {
    const int64_t old_idx = remap.old_edge_from_new[i];
    if (old_idx >= 0 && static_cast<size_t>(old_idx) < old_budgets.size()) {
      budgets[i] = old_budgets[old_idx];
    }
  }
  body.set_edge_budget(std::move(budgets));

  std::unordered_set<uint32_t> old_shed;
  for (TaskId sink : old_body.shed_sinks) {
    old_shed.insert(sink.value());
  }
  std::unordered_set<std::string> served_names;
  for (TaskId sink : old_workload.SinkIds()) {
    if (old_shed.count(sink.value()) == 0) {
      served_names.insert(old_workload.task(sink).name);
    }
  }
  // Same iteration order as ScheduleStage::BuildBody, so the shed list and
  // the floating-point utility sum come out bit-identical.
  for (TaskId sink : new_workload.SinkIds()) {
    if (served_names.count(new_workload.task(sink).name) != 0) {
      body.utility += CriticalityWeight(new_workload.task(sink).criticality);
    } else {
      body.shed_sinks.push_back(sink);
    }
  }
  return std::make_shared<const PlanBody>(std::move(body));
}

// Everything the per-mode dirty classifier needs, computed once per
// rebuild on the host thread.
struct RebuildContext {
  bool workload_edits = false;      // any task add/remove/reweight
  // Per-mode admission / reachability checks are skippable when the
  // workload edits are provably invisible to every mode's active set
  // (disconnected compute tasks staged in or out, no reweights).
  bool workload_per_mode_checks = false;
  bool topo_structure_changed = false;  // any link add/remove
  bool routing_recompute = false;   // per-mode routing must be rebuilt
  bool adjacency_changed = false;   // neighbor sets differ -> vulnerability
  bool topo_order_changed = false;  // common-task placement order shifted
  bool io_pins_changed = false;     // pinned-node multiset differ -> lookahead
  bool universe_changed = false;    // augmented id spaces differ -> migrate
  bool any_changed_link = false;
  std::vector<char> changed_new_link;  // by new link id: re-measured links
  // Old link ids of removed links (valid only when !routing_recompute): a
  // mode whose old routing uses none of them keeps its routing verbatim.
  std::vector<LinkId> removed_old_links;

  // Old link id -> new link id for surviving links (kNoLink if removed),
  // following ApplyDelta's order-preserving reconstruction. Route equality
  // across the edit must translate link ids through this map: a survivor
  // can slide into a removed link's numeric id, and two routes that agree
  // on raw ids may reference physically different links.
  std::vector<uint32_t> new_link_from_old;

  UniverseRemap remap;
  // Common tasks by name: (old TaskId, new TaskId).
  std::vector<std::pair<TaskId, TaskId>> common_tasks;
  // Workload tasks whose planning-visible spec or wiring the delta touched
  // (added, removed, reweighted, or channel-endpoint of an edit).
  std::vector<TaskId> affected_old;
  std::vector<TaskId> affected_new;
};

StatusOr<RebuildContext> PrepareRebuild(const Planner& new_planner,
                                        const Planner& old_planner,
                                        const StrategyDelta& delta) {
  const Topology& new_topo = new_planner.topology();
  const Topology& old_topo = old_planner.topology();
  const Dataflow& new_workload = new_planner.workload();
  const Dataflow& old_workload = old_planner.workload();

  RebuildContext ctx;
  // The stages declare which delta kinds can invalidate them; the
  // classifier only runs the checks a present kind can actually reach.
  ctx.workload_edits = delta.Any(SinkAdmission::InvalidatedBy);
  const bool link_edits = delta.Any(LatencyModel::InvalidatedBy);
  const bool topo_structure_changed =
      delta.Has(DeltaKind::kLinkAdd) || delta.Has(DeltaKind::kLinkRemove);

  if (link_edits) {
    ctx.topo_structure_changed = topo_structure_changed;
    ctx.changed_new_link.assign(new_topo.link_count(), 0);
    bool propagation_changed = false;
    for (const DeltaEdit& e : delta.edits) {
      if (e.kind != DeltaKind::kLinkLatencyChange) {
        continue;
      }
      const LinkId old_link = old_topo.FindLink(e.link_name);
      const LinkId new_link = new_topo.FindLink(e.link_name);
      if (!old_link.valid()) {
        return Status::InvalidArgument("delta re-measures unknown link " + e.link_name);
      }
      if (!new_link.valid()) {
        continue;  // re-measured and removed in the same batch: removal wins
      }
      const LinkSpec& old_spec = old_topo.link(old_link);
      const LinkSpec& new_spec = new_topo.link(new_link);
      if (old_spec.propagation != new_spec.propagation) {
        propagation_changed = true;  // Dijkstra weights shifted
      }
      if (old_spec.propagation != new_spec.propagation ||
          old_spec.bandwidth_bps != new_spec.bandwidth_bps) {
        ctx.changed_new_link[new_link.value()] = 1;
        ctx.any_changed_link = true;
      }
    }

    // Structural edits usually force a per-mode routing rebuild + compare,
    // but two common cases provably cannot move any route, mode by mode:
    //   - removing links no old route uses (checked per mode): a link that
    //     never won a Dijkstra relaxation leaves every distance unchanged;
    //   - adding a link that is "parallel-covered": for each endpoint pair
    //     some existing link already connects the pair directly with no
    //     higher propagation, so the newcomer (relaxed last, strict-less
    //     wins) can never improve a distance or steal a tie.
    // Both require surviving link ids to be order-stable so reused hop
    // records stay valid.
    if (topo_structure_changed) {
      bool ids_stable = true;
      std::unordered_set<std::string> removed_names;
      for (const DeltaEdit& e : delta.edits) {
        if (e.kind == DeltaKind::kLinkRemove) {
          removed_names.insert(e.link_name);
        }
      }
      uint32_t surviving = 0;
      ctx.new_link_from_old.assign(old_topo.link_count(), kNoLink);
      for (const LinkSpec& l : old_topo.links()) {
        if (removed_names.count(l.name) != 0) {
          ctx.removed_old_links.push_back(l.id);
        } else {
          ctx.new_link_from_old[l.id.value()] = surviving;
          if (l.id.value() != surviving) {
            ids_stable = false;  // a removed link preceded a survivor
          }
          ++surviving;
        }
      }
      bool adds_covered = true;
      for (const DeltaEdit& e : delta.edits) {
        if (e.kind != DeltaKind::kLinkAdd || !adds_covered) {
          continue;
        }
        for (size_t i = 0; i < e.endpoints.size() && adds_covered; ++i) {
          for (size_t j = i + 1; j < e.endpoints.size() && adds_covered; ++j) {
            bool covered = false;
            for (const LinkSpec& l : old_topo.links()) {
              if (removed_names.count(l.name) == 0 &&
                  l.propagation <= e.propagation &&
                  std::find(l.endpoints.begin(), l.endpoints.end(), e.endpoints[i]) !=
                      l.endpoints.end() &&
                  std::find(l.endpoints.begin(), l.endpoints.end(), e.endpoints[j]) !=
                      l.endpoints.end()) {
                covered = true;
                break;
              }
            }
            adds_covered = covered;
          }
        }
      }
      ctx.routing_recompute = propagation_changed || !ids_stable || !adds_covered;
      if (ctx.routing_recompute) {
        ctx.removed_old_links.clear();  // the rebuilt-table compare decides
      }
    } else {
      // No structural edit: every old link survives with its id.
      ctx.new_link_from_old.resize(old_topo.link_count());
      for (uint32_t l = 0; l < old_topo.link_count(); ++l) {
        ctx.new_link_from_old[l] = l;
      }
      ctx.routing_recompute = propagation_changed;
    }
  }

  if (topo_structure_changed) {
    for (size_t n = 0; n < new_topo.node_count(); ++n) {
      const NodeId node(static_cast<uint32_t>(n));
      if (old_topo.Neighbors(node) != new_topo.Neighbors(node)) {
        ctx.adjacency_changed = true;
        break;
      }
    }
  }

  if (ctx.workload_edits) {
    // Pinned-node multiset feeds the vulnerability heuristic.
    std::vector<uint32_t> old_pins;
    std::vector<uint32_t> new_pins;
    for (const TaskSpec& t : old_workload.tasks()) {
      if (t.pinned_node.valid()) {
        old_pins.push_back(t.pinned_node.value());
      }
    }
    for (const TaskSpec& t : new_workload.tasks()) {
      if (t.pinned_node.valid()) {
        new_pins.push_back(t.pinned_node.value());
      }
    }
    std::sort(old_pins.begin(), old_pins.end());
    std::sort(new_pins.begin(), new_pins.end());
    ctx.io_pins_changed = old_pins != new_pins;

    ctx.remap = BuildUniverseRemap(old_planner.graph(), new_planner.graph());
    ctx.universe_changed = !ctx.remap.identical;

    // Staged rollout fast path: disconnected compute tasks (no channels on
    // either side, nothing pinned, no reweights) can never be activated,
    // admitted, or reordered in any mode, so the per-mode admission and
    // reachability checks are skippable wholesale.
    bool quiet = true;
    for (const DeltaEdit& e : delta.edits) {
      if (e.kind == DeltaKind::kTaskAdd) {
        quiet = quiet && e.task.kind == TaskKind::kCompute && e.channels.empty();
      } else if (e.kind == DeltaKind::kTaskRemove) {
        const TaskId removed = old_workload.FindTask(e.task_name);
        quiet = quiet && removed.valid() &&
                old_workload.task(removed).kind == TaskKind::kCompute;
        if (quiet) {
          for (const ChannelSpec& ch : old_workload.channels()) {
            if (ch.from == removed || ch.to == removed) {
              quiet = false;
              break;
            }
          }
        }
      } else if (e.kind == DeltaKind::kTaskReweight) {
        quiet = false;
      }
    }
    ctx.workload_per_mode_checks = !quiet;

    // Placement iterates active tasks in workload-topological order; if the
    // surviving tasks' relative order shifted, every mode's greedy
    // load-accumulation sequence may shift with it.
    {
      std::vector<std::string> old_seq;
      for (TaskId t : old_workload.TopologicalOrder()) {
        if (new_workload.FindTask(old_workload.task(t).name).valid()) {
          old_seq.push_back(old_workload.task(t).name);
        }
      }
      size_t at = 0;
      for (TaskId t : new_workload.TopologicalOrder()) {
        const std::string& name = new_workload.task(t).name;
        if (!old_workload.FindTask(name).valid()) {
          continue;
        }
        if (at >= old_seq.size() || old_seq[at] != name) {
          ctx.topo_order_changed = true;
          break;
        }
        ++at;
      }
      if (at != old_seq.size() && !ctx.topo_order_changed) {
        ctx.topo_order_changed = true;
      }
    }

    // Affected names: the edited tasks themselves plus every channel
    // endpoint the delta rewires (an added channel into an existing task
    // changes that task's input count, which is planning-visible through
    // the wire-size model).
    std::unordered_set<std::string> affected;
    for (const DeltaEdit& e : delta.edits) {
      switch (e.kind) {
        case DeltaKind::kTaskAdd:
          affected.insert(e.task.name);
          for (const DeltaChannel& ch : e.channels) {
            affected.insert(ch.from);
            affected.insert(ch.to);
          }
          break;
        case DeltaKind::kTaskRemove: {
          affected.insert(e.task_name);
          const TaskId removed = old_workload.FindTask(e.task_name);
          if (removed.valid()) {
            for (const ChannelSpec& ch : old_workload.channels()) {
              if (ch.from == removed) {
                affected.insert(old_workload.task(ch.to).name);
              }
              if (ch.to == removed) {
                affected.insert(old_workload.task(ch.from).name);
              }
            }
          }
          break;
        }
        case DeltaKind::kTaskReweight:
          affected.insert(e.task_name);
          break;
        default:
          break;
      }
    }
    for (const TaskSpec& t : old_workload.tasks()) {
      const TaskId new_id = new_workload.FindTask(t.name);
      if (new_id.valid()) {
        ctx.common_tasks.emplace_back(t.id, new_id);
      }
      if (affected.count(t.name) != 0) {
        ctx.affected_old.push_back(t.id);
      }
    }
    for (const TaskSpec& t : new_workload.tasks()) {
      if (affected.count(t.name) != 0) {
        ctx.affected_new.push_back(t.id);
      }
    }
  }
  return ctx;
}

}  // namespace

StatusOr<Strategy> StrategyBuilder::Rebuild(const Strategy& old_strategy,
                                            const Planner& old_planner,
                                            const StrategyDelta& delta) {
  const Planner& new_planner = *planner_;
  const Topology& new_topo = new_planner.topology();
  const Dataflow& new_workload = new_planner.workload();
  const Dataflow& old_workload = old_planner.workload();
  const uint32_t max_faults = new_planner.config().max_faults;

  if (new_topo.node_count() != old_planner.topology().node_count()) {
    return Status::InvalidArgument("node set changed; incremental rebuild requires a "
                                   "fixed node universe");
  }
  if (max_faults != old_planner.config().max_faults) {
    return Status::InvalidArgument("max_faults changed; run a full build");
  }
  if (old_strategy.provenance().present &&
      (old_strategy.provenance().max_faults != old_planner.config().max_faults ||
       old_strategy.provenance().planner_fingerprint != old_planner.Fingerprint())) {
    return Status::FailedPrecondition(
        "old strategy provenance does not match the old planner; refusing to resume");
  }

  StatusOr<RebuildContext> prepared = PrepareRebuild(new_planner, old_planner, delta);
  if (!prepared.ok()) {
    return prepared.status();
  }
  const RebuildContext& ctx = prepared.value();

  Strategy strategy;
  // Same shared-pool arrangement as Build().
  ThreadPool serial_pool(1);
  ThreadPool& pool = threads_ == 1 ? serial_pool : ThreadPool::Shared();
  const size_t threads_used =
      threads_ != 0 ? threads_
                    : std::max<size_t>(1, std::thread::hardware_concurrency());
  if (&pool != &serial_pool) {
    pool.EnsureWorkers(threads_used);
  }
  size_t max_wave_modes = 0;
  size_t dirty_modes = 0;
  size_t clean_modes = 0;

  // Migration cache: one migrated body per distinct old body, so modes that
  // shared storage before the edit share it after (nullptr = unmigratable).
  std::unordered_map<const PlanBody*, std::shared_ptr<const PlanBody>> migrated;
  auto migrate = [&](const std::shared_ptr<const PlanBody>& old_body) {
    auto it = migrated.find(old_body.get());
    if (it == migrated.end()) {
      it = migrated
               .emplace(old_body.get(),
                        TryMigrateBody(*old_body, ctx.remap, new_planner.graph(),
                                       old_workload, new_workload))
               .first;
    }
    return it->second;
  };

  // Per-mode classification outcome for one wave.
  struct ModeOutcome {
    bool dirty = false;
    std::optional<StatusOr<Plan>> planned;         // dirty modes only
    std::shared_ptr<const RoutingTable> routing;   // clean modes only
  };
  // Did level k-1's body content change relative to a clean reuse? A child
  // is clean only if every parent's placements are byte-for-byte what its
  // old plan saw (parent stickiness reads them), so a replanned parent that
  // converged back to its old body keeps its children clean.
  std::unordered_map<FaultSet, bool, FaultSetHasher> parent_changed;

  for (size_t k = 0; k <= max_faults; ++k) {
    const std::vector<FaultSet> wave = ModeEnumerator::Level(new_topo.node_count(), k);
    max_wave_modes = std::max(max_wave_modes, wave.size());
    std::vector<ModeOutcome> results(wave.size());

    // Level 0 is the single fault-free mode: its lone job warms the lazy
    // Dataflow caches (topological order, reachability) of both workloads
    // before any wave runs wider than one thread.
    std::atomic<bool> failed{false};
    pool.ParallelFor(wave.size(), [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      const FaultSet& faults = wave[i];
      ModeOutcome& out = results[i];
      const Plan* old_plan = old_strategy.Lookup(faults);

      bool dirty = old_plan == nullptr || ctx.adjacency_changed || ctx.topo_order_changed;
      if (!dirty && ctx.io_pins_changed && new_planner.config().lookahead &&
          faults.size() < max_faults) {
        dirty = true;  // the lookahead vulnerability context shifted
      }
      if (!dirty) {
        for (NodeId x : faults.nodes()) {
          auto it = parent_changed.find(faults.Without(x));
          if (it == parent_changed.end() || it->second) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty && ctx.workload_per_mode_checks) {
        // Admission: membership *and* criticality (shedding) order.
        const std::vector<TaskId> served_old = old_planner.sink_admission().Admit(faults);
        const std::vector<TaskId> served_new = new_planner.sink_admission().Admit(faults);
        if (served_old.size() != served_new.size()) {
          dirty = true;
        } else {
          for (size_t j = 0; j < served_old.size(); ++j) {
            if (old_workload.task(served_old[j]).name !=
                new_workload.task(served_new[j]).name) {
              dirty = true;
              break;
            }
          }
        }
        if (!dirty) {
          // Active-task universe: the reaches-served mask must agree on
          // every surviving task and edited tasks must be idle on both
          // sides. (The placement order of active survivors is covered by
          // the global topo_order_changed precheck: equal global common
          // order + equal masks implies equal filtered order.)
          const std::vector<bool> old_needed = old_workload.ReachesSinkMask(served_old);
          const std::vector<bool> new_needed = new_workload.ReachesSinkMask(served_new);
          for (const auto& [old_id, new_id] : ctx.common_tasks) {
            if (old_needed[old_id.value()] != new_needed[new_id.value()]) {
              dirty = true;
              break;
            }
          }
          for (size_t j = 0; !dirty && j < ctx.affected_old.size(); ++j) {
            dirty = old_needed[ctx.affected_old[j].value()];
          }
          for (size_t j = 0; !dirty && j < ctx.affected_new.size(); ++j) {
            dirty = new_needed[ctx.affected_new[j].value()];
          }
        }
      }
      // A table built for the equivalence check is handed to PlanForMode if
      // the mode turns out dirty, so no mode pays for Dijkstra twice.
      std::shared_ptr<const RoutingTable> prebuilt;
      if (!dirty) {
        if (ctx.routing_recompute) {
          prebuilt = std::make_shared<RoutingTable>(new_topo, faults.nodes());
          if (RoutesEquivalent(*old_plan->routing, *prebuilt, new_topo.node_count(),
                               ctx.new_link_from_old)) {
            out.routing = prebuilt;
          } else {
            dirty = true;
          }
        } else if (ctx.topo_structure_changed) {
          // Ids stable and added links parallel-covered: routes can only
          // have moved if this mode actually routed over a removed link.
          for (LinkId removed : ctx.removed_old_links) {
            if (old_plan->routing->UsesLink(removed)) {
              dirty = true;
              break;
            }
          }
          if (!dirty) {
            out.routing = old_plan->routing;
          }
        } else {
          // Link structure and Dijkstra weights unchanged: the old table is
          // the new table (link ids are order-stable under ApplyDelta).
          out.routing = old_plan->routing;
        }
      }
      if (!dirty && ctx.any_changed_link) {
        for (size_t l = 0; l < ctx.changed_new_link.size(); ++l) {
          if (ctx.changed_new_link[l] != 0 &&
              out.routing->UsesLink(LinkId(static_cast<uint32_t>(l)))) {
            dirty = true;  // a re-measured link sits on some route
            break;
          }
        }
      }

      out.dirty = dirty;
      if (dirty) {
        std::vector<const Plan*> parents;
        parents.reserve(faults.size());
        for (NodeId x : faults.nodes()) {
          const Plan* parent = strategy.Lookup(faults.Without(x));
          if (parent != nullptr) {
            parents.push_back(parent);
          }
        }
        out.planned = new_planner.PlanForMode(faults, parents, std::move(prebuilt));
        if (!out.planned->ok()) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });

    if (failed.load(std::memory_order_relaxed)) {
      for (ModeOutcome& out : results) {
        if (out.planned.has_value() && !out.planned->ok()) {
          return out.planned->status();
        }
      }
      return Status::Internal("rebuild wave cancelled without a failure status");
    }

    std::unordered_map<FaultSet, bool, FaultSetHasher> changed_now;
    changed_now.reserve(wave.size());
    for (size_t i = 0; i < wave.size(); ++i) {
      ModeOutcome& out = results[i];
      const Plan* old_plan = old_strategy.Lookup(wave[i]);
      const Plan* inserted = nullptr;
      if (out.dirty) {
        ++dirty_modes;
        inserted = strategy.Insert(std::move(*out.planned).value());
      } else {
        ++clean_modes;
        Plan plan;
        plan.faults = wave[i];
        plan.routing = out.routing;
        plan.body = ctx.universe_changed ? migrate(old_plan->body) : old_plan->body;
        if (plan.body == nullptr) {
          return Status::Internal("clean mode " + wave[i].ToString() +
                                  " has no identity in the edited universe");
        }
        inserted = strategy.Insert(std::move(plan));
      }

      bool changed = true;
      if (!out.dirty) {
        changed = false;
      } else if (old_plan != nullptr) {
        if (!ctx.universe_changed) {
          changed = !(inserted->body == old_plan->body ||
                      *inserted->body == *old_plan->body);
        } else {
          const std::shared_ptr<const PlanBody> expected = migrate(old_plan->body);
          changed = expected == nullptr || !(*inserted->body == *expected);
        }
      }
      changed_now.emplace(wave[i], changed);
    }
    parent_changed = std::move(changed_now);
  }

  size_t migrated_bodies = 0;
  for (const auto& [old_body, new_body] : migrated) {
    (void)old_body;
    if (new_body != nullptr) {
      ++migrated_bodies;
    }
  }
  planner_->RecordBuildMetrics(strategy.dedup_hits(), strategy.unique_plan_count(),
                               static_cast<size_t>(max_faults) + 1, max_wave_modes,
                               threads_used);
  planner_->RecordRebuildMetrics(dirty_modes, clean_modes, migrated_bodies);
  strategy.set_provenance(
      max_faults, new_planner.Fingerprint(),
      FingerprintScenario(new_planner.topology(), new_planner.workload()));
  return strategy;
}

}  // namespace btr
