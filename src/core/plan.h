// Plans and strategies (paper Section 4).
//
// A *plan* is a distributed schedule: it maps augmented tasks to nodes and
// prescribes a time-triggered table per node plus the routes messages take.
// A *strategy* is the full response map: one plan per anticipated fault set
// (up to f faulty nodes), installed on every node before the system starts.
// At runtime a node's fault set is append-only, so plan lookup is a pure
// function of that set and correct nodes converge without global agreement.
//
// Storage layering: the schedule *content* of a plan (placement, start
// offsets, tables, edge budgets, shedding, utility) lives in an immutable,
// shareable PlanBody, and the Strategy deduplicates that content by
// structural hash at two granularities — whole bodies, and within distinct
// bodies the per-node schedule tables and edge-budget vectors (sibling
// fault modes leave most nodes' tables untouched, so those are stored
// once). What stays per-mode is only what genuinely depends on the fault
// set: the set itself and the routing table that avoids the faulty nodes.

#ifndef BTR_SRC_CORE_PLAN_H_
#define BTR_SRC_CORE_PLAN_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/core/augment.h"
#include "src/net/routing.h"
#include "src/rt/schedule.h"

namespace btr {

// Sorted, duplicate-free set of faulty nodes. The sorted order is the
// canonical form: two FaultSets built from the same nodes in any order
// compare equal and hash equal.
class FaultSet {
 public:
  FaultSet() = default;
  explicit FaultSet(std::vector<NodeId> nodes);

  // Returns a copy with `node` added (no-op copy if already present).
  FaultSet With(NodeId node) const;
  // Returns a copy with `node` removed (no-op copy if absent).
  FaultSet Without(NodeId node) const;

  bool Contains(NodeId node) const;
  bool Add(NodeId node);  // returns false if already present
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  // True if `other` ⊆ this.
  bool Covers(const FaultSet& other) const;

  // Content hash of the canonical (sorted) form.
  uint64_t Hash() const;

  std::string ToString() const;

  friend bool operator==(const FaultSet& a, const FaultSet& b) { return a.nodes_ == b.nodes_; }
  friend bool operator!=(const FaultSet& a, const FaultSet& b) { return !(a == b); }
  friend bool operator<(const FaultSet& a, const FaultSet& b) { return a.nodes_ < b.nodes_; }

 private:
  std::vector<NodeId> nodes_;
};

struct FaultSetHasher {
  size_t operator()(const FaultSet& faults) const { return static_cast<size_t>(faults.Hash()); }
};

// The deduplicable content of a plan: everything that is a pure function of
// which tasks run where and when. Immutable once handed to a Strategy.
//
// The two bulky members have shareable storage: schedule tables are
// copy-on-write (see ScheduleTable), and the edge-budget vector sits behind
// a shared handle. Strategy::Insert canonicalizes both against pools, so
// fault modes that prescribe the same table for a node — or the same
// budgets — reference one physical copy.
struct PlanBody {
  // Aug task id -> node; invalid NodeId means the task is shed in this mode.
  std::vector<NodeId> placement;
  // Aug task id -> start offset within the period (-1 if shed).
  std::vector<SimDuration> start;
  // Per node schedule tables; job ids are aug task ids.
  std::vector<ScheduleTable> tables;
  // Workload sinks intentionally not served in this mode (degradation).
  std::vector<TaskId> shed_sinks;
  // Criticality-weighted utility of the sinks that are served.
  double utility = 0.0;

  // Budgeted one-way latency per augmented edge (index parallel to
  // AugmentedGraph::edges()); -1 for edges inactive in this mode. The
  // runtime's timing windows use exactly these budgets.
  const std::vector<SimDuration>& edge_budget() const {
    return edge_budget_ != nullptr ? *edge_budget_ : EmptyBudgets();
  }
  void set_edge_budget(std::vector<SimDuration> budgets);
  const std::shared_ptr<const std::vector<SimDuration>>& shared_edge_budget() const {
    return edge_budget_;
  }
  void adopt_edge_budget(std::shared_ptr<const std::vector<SimDuration>> budgets) {
    edge_budget_ = std::move(budgets);
  }

  // Structural content hash over every field above.
  uint64_t ContentHash() const;

  // Approximate serialized size (what a node would store on flash),
  // counting shared storage as if it were private.
  size_t FootprintBytes() const;

  friend bool operator==(const PlanBody& a, const PlanBody& b);

 private:
  static const std::vector<SimDuration>& EmptyBudgets();
  std::shared_ptr<const std::vector<SimDuration>> edge_budget_;
};

// A per-mode view: the fault set, the routing that avoids it, and a shared
// handle to the (possibly deduplicated) schedule content.
struct Plan {
  Plan() = default;
  Plan(FaultSet fault_set, std::shared_ptr<const RoutingTable> routing_table, PlanBody content)
      : faults(std::move(fault_set)),
        routing(std::move(routing_table)),
        body(std::make_shared<const PlanBody>(std::move(content))) {}

  FaultSet faults;
  // Routes avoiding the faulty nodes as relays. Never shared across distinct
  // fault sets: routing is a function of the fault set, not of the schedule.
  std::shared_ptr<const RoutingTable> routing;
  // Shared schedule content (one physical copy per distinct schedule).
  std::shared_ptr<const PlanBody> body;

  const std::vector<NodeId>& placement() const { return body->placement; }
  const std::vector<SimDuration>& start() const { return body->start; }
  const std::vector<ScheduleTable>& tables() const { return body->tables; }
  const std::vector<SimDuration>& edge_budget() const { return body->edge_budget(); }
  const std::vector<TaskId>& shed_sinks() const { return body->shed_sinks; }
  double utility() const { return body->utility; }

  bool IsShed(uint32_t aug_id) const { return !body->placement[aug_id].valid(); }
  bool ServesSink(TaskId sink) const;

  // Largest budget among active edges from `from_aug` to a task placed on
  // `to_node`; -1 if there is none.
  SimDuration ArrivalBudget(const AugmentedGraph& graph, uint32_t from_aug, NodeId to_node) const;
};

// Transition cost between two plans.
struct PlanDelta {
  size_t tasks_moved = 0;     // placed in both, on different nodes
  size_t tasks_started = 0;   // shed before, placed now
  size_t tasks_stopped = 0;   // placed before, shed now
  uint64_t state_bytes_moved = 0;  // state of moved/started stateful tasks
};

PlanDelta ComputeDelta(const Plan& from, const Plan& to, const AugmentedGraph& graph);

// Where a strategy came from: the fault bound it was compiled for and a
// fingerprint of the planner inputs (config + topology + workload). Set by
// StrategyBuilder, persisted by strategy_io, and checked by
// StrategyBuilder::Rebuild so an incremental rebuild cannot silently resume
// from a strategy compiled for a different system.
struct StrategyProvenance {
  bool present = false;
  uint32_t max_faults = 0;
  uint64_t planner_fingerprint = 0;
  // FingerprintScenario of the topology/workload this strategy was compiled
  // for. In-memory only (stamped by StrategyBuilder, not persisted in the
  // PROV record — the planner fingerprint already covers the content on
  // disk); 0 on strategies loaded from a blob. The strategy cache keys on
  // it, and BtrSystem::AdoptStrategy cross-checks it when nonzero.
  uint64_t scenario_fingerprint = 0;
  // Serialization the strategy came from: 0 = planned in-process, 2 = v2/v3
  // text blob, 4 = v4 binary image. In-memory only; recorded into results
  // provenance so a sweep row shows which format fed the run.
  uint32_t source_format = 0;
};

// The offline-computed strategy: fault set -> plan, deduplicated at two
// granularities. Whole plan bodies are content-hashed, so byte-identical
// modes share one body; within distinct bodies, per-node schedule tables
// and edge-budget vectors are canonicalized against pools, so the parts a
// fault left untouched are stored once across the whole strategy. Lookup is
// O(1). Returned Plan pointers stay valid for the lifetime of the Strategy
// (the mode store is a deque for stability).
class Strategy {
 public:
  Strategy() = default;
  // Not copyable: the fault-set index holds pointers into the mode store,
  // and a member-wise copy would alias (then dangle into) the source.
  // Moves are safe — deque moves preserve element addresses.
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;
  Strategy(Strategy&&) = default;
  Strategy& operator=(Strategy&&) = default;

  // Canonicalizes the plan's body (whole-body, per-table, and edge-budget
  // dedup) and stores the mode. Returns the stored per-mode plan.
  // Each fault set should be inserted once: re-inserting replaces the
  // mode's plan, but the superseded body stays in the pool (and in the
  // dedup metrics), since other modes may share it.
  const Plan* Insert(Plan plan);

  // Exact-match O(1) lookup; nullptr if this fault set was not planned for
  // (e.g., more than f faults).
  const Plan* Lookup(const FaultSet& faults) const;

  // Nearest covered mode for a (possibly beyond-f) fault set: the plan of
  // the largest planned subset of `faults`, ties broken by taking the
  // lexicographically first subset of the sorted node list. A pure function
  // of the fault set, so every honest node degrades to the same mode
  // without agreement. Equals Lookup(faults) when that set is planned;
  // nullptr only if not even the empty set is.
  const Plan* LookupNearestCovered(const FaultSet& faults) const;

  size_t mode_count() const { return by_faults_.size(); }

  // Number of physically distinct plan bodies backing the modes.
  size_t unique_plan_count() const { return bodies_.size(); }

  // How many Insert calls were satisfied by an existing whole body.
  size_t dedup_hits() const { return dedup_hits_; }

  // Deduplicated storage / what the same modes would occupy with every
  // plan stored verbatim (the pre-dedup layout); < 1.0 whenever any
  // sharing was found.
  double DedupRatio() const;

  // Rough serialized size: what each node would store on flash. Shared
  // bodies, tables, and budget vectors are counted once, plus the per-mode
  // index entries.
  size_t MemoryFootprintBytes() const;

  // The same modes with all sharing expanded (one verbatim plan per mode).
  size_t ExpandedFootprintBytes() const;

  // All planned fault sets, in canonical (sorted) order.
  std::vector<FaultSet> PlannedSets() const;

  // Unique bodies in first-insertion order.
  const std::vector<std::shared_ptr<const PlanBody>>& bodies() const { return bodies_; }

  const StrategyProvenance& provenance() const { return provenance_; }
  void set_provenance(uint32_t max_faults, uint64_t planner_fingerprint,
                      uint64_t scenario_fingerprint = 0, uint32_t source_format = 0) {
    provenance_ = StrategyProvenance{true, max_faults, planner_fingerprint,
                                     scenario_fingerprint, source_format};
  }
  // Records where the strategy was deserialized from without claiming PROV
  // data the blob did not carry.
  void set_source_format(uint32_t source_format) { provenance_.source_format = source_format; }

 private:
  // Replaces equal sub-structures with pool representatives so equal
  // content shares physical storage.
  void CanonicalizeTables(PlanBody* body);
  void CanonicalizeEdgeBudgets(PlanBody* body);

  std::deque<Plan> modes_;  // deque: stable pointers across Insert
  std::unordered_map<FaultSet, Plan*, FaultSetHasher> by_faults_;
  std::vector<std::shared_ptr<const PlanBody>> bodies_;
  // Content hash -> body ids with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<uint32_t>> body_pool_;
  // Content hash -> representative tables / budget vectors.
  std::unordered_map<uint64_t, std::vector<ScheduleTable>> table_pool_;
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<const std::vector<SimDuration>>>>
      edge_pool_;
  size_t dedup_hits_ = 0;
  StrategyProvenance provenance_;
};

// Immutable O(1) fault-set -> plan index for the runtime's recovery hot
// path: a flat, open-addressed probe table with no per-lookup allocation.
// Built once from a finished Strategy, which must outlive the index.
class StrategyIndex {
 public:
  StrategyIndex() = default;
  explicit StrategyIndex(const Strategy& strategy);

  // O(1) expected; nullptr if the fault set was not planned for.
  const Plan* Find(const FaultSet& faults) const;

  // Nearest covered mode (same contract as Strategy::LookupNearestCovered):
  // largest planned subset, lexicographic-first tie-break.
  const Plan* FindNearestCovered(const FaultSet& faults) const;

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  struct Slot {
    uint64_t hash = 0;
    const Plan* plan = nullptr;
  };
  std::vector<Slot> slots_;  // power-of-two capacity, linear probing
  size_t count_ = 0;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_PLAN_H_
