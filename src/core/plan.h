// Plans and strategies (paper Section 4).
//
// A *plan* is a distributed schedule: it maps augmented tasks to nodes and
// prescribes a time-triggered table per node plus the routes messages take.
// A *strategy* is the full response map: one plan per anticipated fault set
// (up to f faulty nodes), installed on every node before the system starts.
// At runtime a node's fault set is append-only, so plan lookup is a pure
// function of that set and correct nodes converge without global agreement.

#ifndef BTR_SRC_CORE_PLAN_H_
#define BTR_SRC_CORE_PLAN_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/core/augment.h"
#include "src/net/routing.h"
#include "src/rt/schedule.h"

namespace btr {

// Sorted, duplicate-free set of faulty nodes.
class FaultSet {
 public:
  FaultSet() = default;
  explicit FaultSet(std::vector<NodeId> nodes);

  // Returns a copy with `node` added (no-op copy if already present).
  FaultSet With(NodeId node) const;

  bool Contains(NodeId node) const;
  bool Add(NodeId node);  // returns false if already present
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  // True if `other` ⊆ this.
  bool Covers(const FaultSet& other) const;

  std::string ToString() const;

  friend bool operator==(const FaultSet& a, const FaultSet& b) { return a.nodes_ == b.nodes_; }
  friend bool operator<(const FaultSet& a, const FaultSet& b) { return a.nodes_ < b.nodes_; }

 private:
  std::vector<NodeId> nodes_;
};

struct Plan {
  FaultSet faults;
  // Aug task id -> node; invalid NodeId means the task is shed in this mode.
  std::vector<NodeId> placement;
  // Aug task id -> start offset within the period (-1 if shed).
  std::vector<SimDuration> start;
  // Per node schedule tables; job ids are aug task ids.
  std::vector<ScheduleTable> tables;
  // Routes avoiding the faulty nodes as relays.
  std::shared_ptr<const RoutingTable> routing;
  // Budgeted one-way latency per augmented edge (index parallel to
  // AugmentedGraph::edges()); -1 for edges inactive in this mode. The
  // runtime's timing windows use exactly these budgets.
  std::vector<SimDuration> edge_budget;
  // Workload sinks intentionally not served in this mode (degradation).
  std::vector<TaskId> shed_sinks;
  // Criticality-weighted utility of the sinks that are served.
  double utility = 0.0;

  bool IsShed(uint32_t aug_id) const { return !placement[aug_id].valid(); }
  bool ServesSink(TaskId sink) const;

  // Largest budget among active edges from `from_aug` to a task placed on
  // `to_node`; -1 if there is none.
  SimDuration ArrivalBudget(const AugmentedGraph& graph, uint32_t from_aug, NodeId to_node) const;
};

// Transition cost between two plans.
struct PlanDelta {
  size_t tasks_moved = 0;     // placed in both, on different nodes
  size_t tasks_started = 0;   // shed before, placed now
  size_t tasks_stopped = 0;   // placed before, shed now
  uint64_t state_bytes_moved = 0;  // state of moved/started stateful tasks
};

PlanDelta ComputeDelta(const Plan& from, const Plan& to, const AugmentedGraph& graph);

// The offline-computed strategy: fault set -> plan.
class Strategy {
 public:
  void Insert(Plan plan);

  // Exact-match lookup; nullptr if this fault set was not planned for
  // (e.g., more than f faults).
  const Plan* Lookup(const FaultSet& faults) const;

  size_t mode_count() const { return plans_.size(); }

  // Rough serialized size: what each node would store on flash.
  size_t MemoryFootprintBytes() const;

  // All planned fault sets, in enumeration order.
  std::vector<FaultSet> PlannedSets() const;

 private:
  std::map<FaultSet, Plan> plans_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_PLAN_H_
