#include "src/core/transition_analysis.h"

#include <algorithm>
#include <map>

namespace btr {
namespace {

// Serialization time of `bytes` on `hop` in the control class.
SimDuration ControlSerialization(const Topology& topo, const NetworkConfig& config,
                                 const Hop& hop, uint64_t bytes) {
  const LinkSpec& spec = topo.link(hop.link);
  const double share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps =
      static_cast<double>(spec.bandwidth_bps) * share * config.control_fraction;
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / bps * 1e9) + 1;
}

// Worst-case one-way control-class latency for `bytes` from a to b.
SimDuration ControlLatency(const Topology& topo, const NetworkConfig& config,
                           const RoutingTable& routing, NodeId a, NodeId b, uint64_t bytes) {
  if (a == b) {
    return 0;
  }
  const Route& route = routing.RouteBetween(a, b);
  SimDuration total = 0;
  for (const Hop& hop : route) {
    total += ControlSerialization(topo, config, hop, bytes);
    total += topo.link(hop.link).propagation;
  }
  return total;
}

// Hop diameter of the surviving topology under `routing`.
size_t Diameter(const Topology& topo, const RoutingTable& routing, const FaultSet& faults) {
  size_t diameter = 1;
  for (size_t a = 0; a < topo.node_count(); ++a) {
    const NodeId na(static_cast<uint32_t>(a));
    if (faults.Contains(na)) {
      continue;
    }
    for (size_t b = 0; b < topo.node_count(); ++b) {
      const NodeId nb(static_cast<uint32_t>(b));
      if (a == b || faults.Contains(nb) || !routing.Reachable(na, nb)) {
        continue;
      }
      diameter = std::max(diameter, routing.HopCount(na, nb));
    }
  }
  return diameter;
}

TransitionBound AnalyzeOne(const Plan& from, const Plan& to, const AugmentedGraph& graph,
                           const Topology& topo, const TransitionAnalysisConfig& config) {
  TransitionBound bound;
  bound.from = from.faults;
  bound.to = to.faults;
  bound.delta = ComputeDelta(from, to, graph);

  // Evidence spread: one forwarding round per period, at most diameter rounds.
  bound.evidence_spread =
      static_cast<SimDuration>(Diameter(topo, *to.routing, to.faults)) * config.period;
  // Tables swap at the next boundary after the last node learns.
  bound.boundary_wait = config.period;

  // State transfer: per receiving node, its migrated-state bytes are pulled
  // from donors serially over the control class (requests are 32 bytes).
  std::map<uint32_t, SimDuration> per_receiver;
  for (uint32_t aug = 0; aug < graph.size(); ++aug) {
    const AugTask& task = graph.task(aug);
    if (task.kind != AugKind::kWorkload || task.state_bytes == 0) {
      continue;
    }
    const NodeId new_host = to.placement()[aug];
    if (!new_host.valid()) {
      continue;
    }
    // Local copy already present?
    bool local = false;
    NodeId donor;
    SimDuration donor_cost = 0;
    for (uint32_t rep : graph.ReplicasOf(task.workload_task)) {
      const NodeId old_host = from.placement()[rep];
      if (!old_host.valid() || to.faults.Contains(old_host)) {
        continue;
      }
      if (old_host == new_host) {
        local = true;
        break;
      }
      if (!to.routing->Reachable(old_host, new_host)) {
        continue;
      }
      const SimDuration cost =
          ControlLatency(topo, config.network, *to.routing, new_host, old_host, 32) +
          ControlLatency(topo, config.network, *to.routing, old_host, new_host,
                         task.state_bytes);
      if (!donor.valid() || cost < donor_cost) {
        donor = old_host;
        donor_cost = cost;
      }
    }
    if (local || !donor.valid()) {
      continue;  // state already local, or cold start (no transfer to wait for)
    }
    per_receiver[new_host.value()] += donor_cost;
  }
  for (const auto& [node, cost] : per_receiver) {
    bound.state_transfer = std::max(bound.state_transfer, cost);
  }

  // One more period until the new mode's pipeline reaches the sinks.
  bound.settle = config.period;

  bound.total = config.detection_bound + bound.evidence_spread + bound.boundary_wait +
                bound.state_transfer + bound.settle;
  return bound;
}

}  // namespace

const TransitionBound* TransitionAnalysis::Worst() const {
  const TransitionBound* worst = nullptr;
  for (const TransitionBound& t : transitions) {
    if (worst == nullptr || t.total > worst->total) {
      worst = &t;
    }
  }
  return worst;
}

TransitionAnalysis AnalyzeTransitions(const Strategy& strategy, const AugmentedGraph& graph,
                                      const Topology& topo,
                                      const TransitionAnalysisConfig& config) {
  TransitionAnalysis analysis;
  analysis.detection_bound =
      config.detection_bound > 0 ? config.detection_bound : 4 * config.period;

  TransitionAnalysisConfig effective = config;
  effective.detection_bound = analysis.detection_bound;

  for (const FaultSet& to_set : strategy.PlannedSets()) {
    if (to_set.empty()) {
      continue;
    }
    const Plan* to = strategy.Lookup(to_set);
    for (NodeId y : to_set.nodes()) {
      std::vector<NodeId> reduced;
      for (NodeId z : to_set.nodes()) {
        if (z != y) {
          reduced.push_back(z);
        }
      }
      const Plan* from = strategy.Lookup(FaultSet(std::move(reduced)));
      if (from == nullptr) {
        continue;
      }
      analysis.transitions.push_back(AnalyzeOne(*from, *to, graph, topo, effective));
      analysis.worst_total =
          std::max(analysis.worst_total, analysis.transitions.back().total);
    }
  }
  analysis.fits_recovery_bound = analysis.worst_total <= config.recovery_bound;
  return analysis;
}

}  // namespace btr
