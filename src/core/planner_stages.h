// The offline planner's composable pipeline stages (paper Section 4.1).
//
// Planning one mode is a fixed pipeline; each stage is its own component so
// it can be tested, swapped, and profiled independently:
//
//   ModeEnumerator  — enumerates the fault-set levels 0..f (the modes).
//   SinkAdmission   — decides which sinks are servable at all under a fault
//                     set and orders them for criticality-aware shedding.
//   PlacementStage  — availability/vulnerability context, active-task
//                     selection, and greedy scored placement (load balance,
//                     locality, parent stickiness, strategic lookahead).
//   ScheduleStage   — list-schedules the placed tasks under communication
//                     budgets and assembles the immutable PlanBody.
//
// The stages are stateless between calls (all per-mode state lives in the
// ModeContext), so one instance of each can serve many planner threads.

#ifndef BTR_SRC_CORE_PLANNER_STAGES_H_
#define BTR_SRC_CORE_PLANNER_STAGES_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/augment.h"
#include "src/core/plan.h"
#include "src/core/planner_config.h"
#include "src/core/strategy_delta.h"
#include "src/net/topology.h"
#include "src/workload/dataflow.h"

namespace btr {

// Per-mode planning state threaded through the stages.
struct ModeContext {
  FaultSet faults;
  std::vector<bool> available;                       // per node
  std::vector<NodeId> available_list;
  std::shared_ptr<const RoutingTable> routing;
  std::vector<bool> active;                          // per aug id
  std::vector<NodeId> placement;                     // per aug id
  std::vector<SimDuration> node_load;                // accumulated busy time
  std::vector<int> vulnerability;                    // per node: isolation risk
};

// Stage 1: mode enumeration. Fault sets of size k over [0, node_count), in
// lexicographic (canonical) order — the order doubles as the deterministic
// wave order the StrategyBuilder plans and inserts in.
class ModeEnumerator {
 public:
  static std::vector<FaultSet> Level(size_t node_count, size_t k);

  // The mode universe is a pure function of the (fixed) node set, so no
  // supported delta kind invalidates it.
  static bool InvalidatedBy(DeltaKind /*kind*/) { return false; }
};

// Stage 2: sink admission / shedding order. A sink is servable iff neither
// it nor any of its sources sits on a faulty node. The returned vector is
// sorted highest criticality first so the degradation loop sheds from the
// back (lowest criticality first).
class SinkAdmission {
 public:
  explicit SinkAdmission(const Dataflow* workload) : workload_(workload) {}

  std::vector<TaskId> Admit(const FaultSet& faults) const;

  // Admission reads sink/source pinning and criticality (shedding order),
  // so only workload edits can invalidate it.
  static bool InvalidatedBy(DeltaKind kind) {
    return kind == DeltaKind::kTaskAdd || kind == DeltaKind::kTaskRemove ||
           kind == DeltaKind::kTaskReweight;
  }

 private:
  const Dataflow* workload_;
};

// Communication-latency budgets shared by placement and scheduling.
class LatencyModel {
 public:
  LatencyModel(const Topology* topo, const PlannerConfig* config)
      : topo_(topo), config_(config) {}

  SimDuration SerializationOnHop(const Hop& hop, uint32_t bytes) const;

  // Budgeted one-way latency for `bytes` from `from` to `to` under `routing`
  // (foreground class): serialization on every hop with contention headroom,
  // plus propagation, plus the clock-skew bound. When `node_fg_bytes` is
  // non-null, queueing is additionally bounded by the per-node foreground
  // traffic totals. Returns -1 if unreachable under this routing.
  SimDuration EdgeBudget(NodeId from, NodeId to, uint32_t bytes, const RoutingTable& routing,
                         const std::vector<uint64_t>* node_fg_bytes) const;

  // Budgets walk routes over link specs, so any link edit can invalidate
  // them; workload edits cannot (bytes are a per-query input).
  static bool InvalidatedBy(DeltaKind kind) {
    return kind == DeltaKind::kLinkAdd || kind == DeltaKind::kLinkRemove ||
           kind == DeltaKind::kLinkLatencyChange;
  }

 private:
  const Topology* topo_;
  const PlannerConfig* config_;
};

// Stage 3: placement. Builds the mode context, selects the active augmented
// tasks (replica thinning by manifested-fault count), and greedily places
// them by score under the hard constraints (pinning, replica dispersion,
// peer reachability).
class PlacementStage {
 public:
  PlacementStage(const Topology* topo, const Dataflow* workload, const AugmentedGraph* graph,
                 const PlannerConfig* config)
      : topo_(topo), workload_(workload), graph_(graph), config_(config) {}

  // Replicas kept per replicated task when k faults have manifested: with k
  // faults down at most f - k more can appear, and detecting each of those
  // needs one spare comparison point.
  uint32_t ReplicasInMode(size_t manifested) const;

  // Availability, routing handle, and the lookahead vulnerability score.
  ModeContext PrepareContext(const FaultSet& faults,
                             std::shared_ptr<const RoutingTable> routing) const;

  // Marks the augmented tasks that run in this mode (replicas of tasks
  // reaching a served sink, their checkers, and every surviving verifier).
  void ActivateTasks(ModeContext* ctx, const std::vector<TaskId>& served_sinks) const;

  // Greedy scored placement of every active task; fills ctx->placement.
  Status Place(ModeContext* ctx, const std::vector<const Plan*>& parents) const;

  double Score(const ModeContext& ctx, uint32_t aug_id, NodeId candidate,
               const std::vector<const Plan*>& parents) const;

  // Placement reads topology structure (hop counts, reachability,
  // adjacency-based vulnerability) and the active-task universe, but not
  // link latencies: scores count hops, not nanoseconds. A reweight can
  // still reach placement by crossing the replication criticality
  // threshold, which changes the replica universe.
  static bool InvalidatedBy(DeltaKind kind) {
    return kind != DeltaKind::kLinkLatencyChange;
  }

 private:
  const Topology* topo_;
  const Dataflow* workload_;
  const AugmentedGraph* graph_;
  const PlannerConfig* config_;
};

// Stage 4: schedule validation. List-schedules the placed tasks with
// communication-delay budgets and assembles the immutable PlanBody
// (placement, start offsets, per-node tables, edge budgets, shedding,
// utility). Infeasibility propagates to the caller, which sheds and
// retries.
class ScheduleStage {
 public:
  ScheduleStage(const Topology* topo, const Dataflow* workload, const AugmentedGraph* graph,
                const LatencyModel* latency)
      : topo_(topo), workload_(workload), graph_(graph), latency_(latency) {}

  StatusOr<PlanBody> BuildBody(const ModeContext& ctx,
                               const std::vector<TaskId>& served_sinks) const;

  // Scheduling consumes everything upstream (placements, latency budgets,
  // wcets, deadlines, criticality priorities), so every delta kind can
  // invalidate it.
  static bool InvalidatedBy(DeltaKind /*kind*/) { return true; }

 private:
  const Topology* topo_;
  const Dataflow* workload_;
  const AugmentedGraph* graph_;
  const LatencyModel* latency_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_PLANNER_STAGES_H_
