// Delta-aware, table-granular strategy distribution (install plane).
//
// The paper installs the compiled strategy on every node before the system
// starts; after an edit, the naive re-install ships the whole serialized
// blob to every node, so install traffic scales with C(n, f) instead of
// with the edit. This module cuts that two ways, composable:
//
//   table-granular — schedule tables are per-node already, so node n only
//     needs its own T rows of each plan body plus the shared placement /
//     budget / shedding data it references. ExtractSlice carves a per-node
//     *slice* out of the canonical blob.
//   delta-aware — MakeStrategyPatch diffs two canonical blobs into a
//     StrategyPatch: bodies the edit left byte-identical become references
//     into the installed base (BCOPY), only new/changed bodies ship in
//     full (BNEW), dropped bodies and re-referenced / removed modes are
//     listed explicitly. Slicing a patch ships each node only its own rows
//     of the new bodies.
//
// Everything operates on the *canonical serialized text* (strategy_io's
// save-load-save-stable form), so "equal" always means byte-for-byte and
// the apply path can be proven against a full install by string equality —
// the same oracle discipline as the incremental-replan suite.
//
// Integrity is provenance-chained: a slice records the fingerprint of the
// full blob it was carved from (SFP); a patch records the base blob it
// diffs against (BASE), the target blob it produces (TARGET), and the
// per-node fingerprint of every target slice (NSLICE). Apply refuses a
// patch whose BASE is not the installed slice's SFP, and refuses its own
// output unless it hashes to the expected NSLICE value — so truncation,
// forged counts, out-of-range references, and bit flips are all rejected
// without mutating the installed state (see InstallEngine in runtime.h).
// Fingerprints are 64-bit content hashes, not signatures: they defend
// against corruption and version skew, not against an adversary who can
// forge a self-consistent patch (key-based authentication is the
// simulator's crypto layer's job and out of scope here).

#ifndef BTR_SRC_CORE_STRATEGY_PATCH_H_
#define BTR_SRC_CORE_STRATEGY_PATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace btr {

// Content fingerprint of a canonical strategy / slice / patch text.
uint64_t FingerprintStrategyText(const std::string& text);

// A parsed strategy diff. Produced by MakeStrategyPatch (never hand-built),
// serialized by SaveStrategyPatch / SaveStrategyPatchSlice and re-parsed by
// ParseStrategyPatch (see strategy_io.h). Body payloads are kept as
// verbatim canonical record text so copy/apply never re-encodes them.
struct StrategyPatch {
  // Set when this patch was sliced for one node: BNEW bodies carry only
  // that node's table rows and slice_fps has that node's entry only.
  bool sliced = false;
  uint32_t slice_node = 0;

  // Target universe dimensions (augmented tasks, nodes, augmented edges).
  uint64_t aug_count = 0;
  uint64_t node_count = 0;
  uint64_t edge_count = 0;

  // Provenance chain: fingerprint of the base blob this patch applies to
  // and of the full target blob it produces.
  uint64_t base_fp = 0;
  uint64_t target_fp = 0;

  // Target strategy provenance (mirrors the blob's PROV record).
  bool has_prov = false;
  uint32_t prov_max_faults = 0;
  uint64_t prov_planner_fp = 0;

  // Per-node fingerprint of the target slice (node, fingerprint), node-
  // ascending. The apply path verifies its output against this.
  std::vector<std::pair<uint32_t, uint64_t>> slice_fps;

  // Body section: one entry per target body id (in target file-id order).
  // copy=true re-references base body old_id; copy=false ships `text`,
  // the verbatim record chunk up to and including its END line.
  struct BodyDef {
    bool copy = false;
    uint32_t old_id = 0;
    std::string text;
  };
  uint64_t old_body_count = 0;
  std::vector<BodyDef> bodies;
  // Base body ids dropped by the edit (ascending). Together with the
  // BCOPY references these must partition the base id space exactly.
  std::vector<uint32_t> deleted_old;

  // Mode section. A mode is its canonical (sorted) fault-node list.
  // `sets` lists modes that are new or whose body reference changed;
  // `dels` lists modes removed outright. Modes in neither list keep their
  // base body, re-referenced through the BCOPY map.
  struct ModeRef {
    std::vector<uint32_t> fault_nodes;
    uint32_t ref = 0;
  };
  std::vector<ModeRef> sets;
  std::vector<std::vector<uint32_t>> dels;
  uint64_t final_mode_count = 0;
};

// Validates a node slice's structure and ownership (it must belong to
// `node`); returns the SFP fingerprint of the blob it was carved from.
StatusOr<uint64_t> ValidateSliceText(const std::string& slice_text, uint32_t node);

// Carves node `node`'s slice out of a canonical strategy blob: same header
// data plus NODE and SFP records, bodies keep every shared record but only
// this node's T rows. Slices of the same blob reassemble to it exactly.
StatusOr<std::string> ExtractSlice(const std::string& blob_text, uint32_t node);

// Diffs two canonical blobs (same node universe) into a patch such that
// applying the patch's node slice to the base's node slice reproduces the
// target's node slice byte-for-byte, for every node.
StatusOr<StrategyPatch> MakeStrategyPatch(const std::string& base_blob,
                                          const std::string& target_blob);

// Restricts a full patch to one node: BNEW bodies keep only that node's T
// rows, slice_fps keeps that node's entry. The patch must be unsliced.
StatusOr<StrategyPatch> MakeStrategyPatchSlice(const StrategyPatch& patch, uint32_t node);

// Applies a sliced patch to the matching node slice. Pure function: either
// returns the complete new slice text (verified against the patch's NSLICE
// fingerprint) or fails without partial effects. Rejects wrong-node and
// wrong-base patches, forged counts, out-of-range references, and any
// corruption that survives parsing (via the final fingerprint check).
StatusOr<std::string> ApplyPatchToSlice(const std::string& slice_text,
                                        const StrategyPatch& patch);

// Merges one slice per node (any order, exactly nodes 0..N-1 once) back
// into the full canonical blob, verifying that every shared record agrees
// and that the result hashes to the SFP the slices claim.
StatusOr<std::string> ReassembleStrategy(const std::vector<std::string>& slices);

// Serialization the install plane ships strategy artifacts in. The
// fingerprint CHAIN (SFP / BASE / TARGET / NSLICE) always lives in the
// canonical text domain, so reports and provenance are format-invariant;
// the wire format only changes the bytes a shipment carries.
enum class StrategyWireFormat {
  kV2Text = 0,   // canonical BTRSTRATEGY/BTRSLICE/BTRPATCH text
  kV4Binary = 4, // v4 binary images (see src/fmt/strategy_binary.h)
};

// Everything a distributor needs to roll a strategy edit out to the nodes
// (see BtrRuntime::ScheduleStrategyInstall): per-node base slices (the
// pre-deployed install), per-node patch slices (the delta shipment), and
// per-node full target slices (the fallback a node requests when a patch
// fails to apply).
struct StrategyUpdate {
  StrategyWireFormat format = StrategyWireFormat::kV2Text;
  uint64_t base_fp = 0;
  uint64_t target_fp = 0;
  std::string target_blob;               // what the naive path would ship
  // Fingerprint of target_blob's shipped bytes (== target_fp under v2 text;
  // the image hash under v4). Shipments content-verify against this; the
  // text-domain target_fp stays the install chain's identity.
  uint64_t target_blob_fp = 0;
  std::vector<std::string> base_slices;  // per node: installed-before state (always text)
  std::vector<std::string> patch_slices; // per node: sliced patch, wire format
  std::vector<std::string> full_slices;  // per node: full target slice, wire format
  // Per node: fingerprint of full_slices[n]'s shipped bytes. Travels with a
  // fallback shipment so the receiver can content-verify the artifact —
  // the slice's own SFP record chains to the parent blob, not to its own
  // bytes, so it cannot detect in-transit corruption of a table row.
  std::vector<uint64_t> slice_fps;
  // Unsliced patch in the wire format. Gossip relays receive this (instead
  // of N per-node slices), carve their own slice locally, and re-serve it
  // to the next hop.
  std::string patch_full;
  uint64_t patch_full_fp = 0;
};

StatusOr<StrategyUpdate> BuildStrategyUpdate(
    const std::string& base_blob, const std::string& target_blob,
    StrategyWireFormat format = StrategyWireFormat::kV2Text);

}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_PATCH_H_
