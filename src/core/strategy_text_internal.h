// Internal line-level utilities shared by the strategy text toolchain
// (strategy_patch.cc and the PATCH record serialization in strategy_io.cc).
// Not part of the public API.
//
// The install plane operates on canonical serialized text, so these
// helpers are deliberately strict: lines are single-space separated,
// integers are canonical decimal (no signs, no leading zeros), our
// fingerprint records are fixed-width lowercase hex, and every text must
// end with a newline. Anything else is treated as corruption.

#ifndef BTR_SRC_CORE_STRATEGY_TEXT_INTERNAL_H_
#define BTR_SRC_CORE_STRATEGY_TEXT_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace btr {
namespace strategy_text {

// Iterates '\n'-terminated lines. A text whose last line is unterminated
// yields that fragment with `terminated=false`; callers treat it as a
// truncation.
class LineScanner {
 public:
  explicit LineScanner(const std::string& text) : text_(text) {}

  // Returns false at end of text. `*line` excludes the newline.
  bool Next(std::string_view* line, bool* terminated) {
    if (pos_ >= text_.size()) {
      return false;
    }
    const size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      *line = std::string_view(text_).substr(pos_);
      *terminated = false;
      pos_ = text_.size();
      return true;
    }
    *line = std::string_view(text_).substr(pos_, nl - pos_);
    *terminated = true;
    pos_ = nl + 1;
    return true;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

// Reads the next '\n'-terminated line; false at end of text or on an
// unterminated tail. Callers turn false into their format's truncation
// error (BTRSTRATEGY/BTRSLICE vs BTRPATCH wording differs).
inline bool NextTerminatedLine(LineScanner* scan, std::string_view* line) {
  bool terminated = false;
  return scan->Next(line, &terminated) && terminated;
}

// Splits on single spaces; rejects empty fields (doubled, leading, or
// trailing spaces are non-canonical).
inline bool SplitFields(std::string_view line, std::vector<std::string_view>* fields) {
  fields->clear();
  if (line.empty()) {
    return false;
  }
  size_t start = 0;
  while (true) {
    const size_t sp = line.find(' ', start);
    const std::string_view field =
        sp == std::string_view::npos ? line.substr(start) : line.substr(start, sp - start);
    if (field.empty()) {
      return false;
    }
    fields->push_back(field);
    if (sp == std::string_view::npos) {
      return true;
    }
    start = sp + 1;
  }
}

// Canonical decimal: "0" or [1-9][0-9]*, fitting in uint64.
inline bool ParseU64(std::string_view s, uint64_t* value) {
  if (s.empty() || s.size() > 20 || (s.size() > 1 && s[0] == '0')) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return false;
    }
    v = v * 10 + digit;
  }
  *value = v;
  return true;
}

inline int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

// Canonical variable-width lowercase hex (what `ostream << std::hex`
// emits): "0" or [1-9a-f][0-9a-f]*.
inline bool ParseHexCanonical(std::string_view s, uint64_t* value) {
  if (s.empty() || s.size() > 16 || (s.size() > 1 && s[0] == '0')) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    const int d = HexDigit(c);
    if (d < 0) {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *value = v;
  return true;
}

// Exactly 16 lowercase hex digits (fingerprint records).
inline bool ParseHex16(std::string_view s, uint64_t* value) {
  if (s.size() != 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    const int d = HexDigit(c);
    if (d < 0) {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *value = v;
  return true;
}

inline std::string Hex16(uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

inline std::string HexCanonical(uint64_t value) {
  if (value == 0) {
    return "0";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  while (value != 0) {
    out.push_back(kDigits[value & 0xF]);
    value >>= 4;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

// Target-universe dimensions a body record indexes into.
struct BodyDims {
  uint64_t aug_count = 0;
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
};

// Lax float field (the U record's utility: ostream double output).
inline bool PlausibleFloatField(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    const bool ok = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == '+' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

// Validates one line of a plan-body chunk (U/P/S/T/B/END). On success,
// `*is_end` marks the END line and `*t_node` is the node of a T record
// (UINT64_MAX otherwise). All id fields must be canonical decimal and
// in range for `dims`.
inline bool ValidBodyRecord(std::string_view line, const BodyDims& dims, uint64_t* t_node,
                            bool* is_end) {
  *t_node = UINT64_MAX;
  *is_end = false;
  if (line == "END") {
    *is_end = true;
    return true;
  }
  std::vector<std::string_view> f;
  if (!SplitFields(line, &f)) {
    return false;
  }
  uint64_t v0 = 0;
  uint64_t v1 = 0;
  uint64_t v2 = 0;
  uint64_t v3 = 0;
  if (f[0] == "U") {
    return f.size() == 2 && PlausibleFloatField(f[1]);
  }
  if (f[0] == "P") {
    return f.size() == 4 && ParseU64(f[1], &v0) && v0 < dims.aug_count &&
           ParseU64(f[2], &v1) && v1 < dims.node_count && ParseU64(f[3], &v2);
  }
  if (f[0] == "S") {
    return f.size() == 2 && ParseU64(f[1], &v0);
  }
  if (f[0] == "T") {
    if (f.size() != 5 || !ParseU64(f[1], &v0) || v0 >= dims.node_count ||
        !ParseU64(f[2], &v1) || v1 >= dims.aug_count || !ParseU64(f[3], &v2) ||
        !ParseU64(f[4], &v3)) {
      return false;
    }
    *t_node = v0;
    return true;
  }
  if (f[0] == "B") {
    return f.size() == 3 && ParseU64(f[1], &v0) && v0 < dims.edge_count &&
           ParseU64(f[2], &v1);
  }
  return false;
}

// Drops T records of other nodes from a body chunk (verbatim otherwise).
// The chunk must already have passed ValidBodyRecord line by line.
inline std::string FilterBodyForNode(const std::string& chunk, uint64_t node) {
  std::string out;
  out.reserve(chunk.size());
  size_t pos = 0;
  while (pos < chunk.size()) {
    size_t nl = chunk.find('\n', pos);
    if (nl == std::string::npos) {
      nl = chunk.size() - 1;  // defensive; validated chunks end with '\n'
    }
    const std::string_view line(chunk.data() + pos, nl - pos);
    bool keep = true;
    if (line.size() > 2 && line[0] == 'T' && line[1] == ' ') {
      uint64_t t = 0;
      const size_t sp = line.find(' ', 2);
      const std::string_view field =
          sp == std::string_view::npos ? line.substr(2) : line.substr(2, sp - 2);
      keep = ParseU64(field, &t) && t == node;
    }
    if (keep) {
      out.append(chunk, pos, nl - pos + 1);
    }
    pos = nl + 1;
  }
  return out;
}

// Renders a canonical mode line ("MODE <k> <nodes...> REF <r>\n"), exactly
// matching SaveStrategy's format.
inline std::string RenderModeLine(const std::vector<uint32_t>& fault_nodes, uint64_t ref) {
  std::string out = "MODE ";
  out += std::to_string(fault_nodes.size());
  for (uint32_t n : fault_nodes) {
    out += ' ';
    out += std::to_string(n);
  }
  out += " REF ";
  out += std::to_string(ref);
  out += '\n';
  return out;
}

// Strictly ascending node list, all below node_count.
inline bool ValidFaultNodeList(const std::vector<uint32_t>& nodes, uint64_t node_count) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= node_count || (i > 0 && nodes[i] <= nodes[i - 1])) {
      return false;
    }
  }
  return true;
}

}  // namespace strategy_text
}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_TEXT_INTERNAL_H_
