// Strategy serialization.
//
// The paper installs "some representation of the strategy... in each node,
// so that correct nodes will have a consistent view of it at runtime". This
// module provides that representation: a line-oriented text format that
// round-trips a Strategy exactly (placements, start offsets, tables, edge
// budgets, shed sinks, utility). The v2 format mirrors the deduplicated
// in-memory layout: each unique plan body is written once (PLAN blocks),
// and every mode is a one-line fault set + body reference (MODE ... REF n),
// so the blob shrinks with the same dedup ratio as the strategy. Routing
// tables are not stored — they are a pure function of (topology, fault set)
// and are rebuilt on load; body sharing survives the round trip. The v3
// revision adds an optional PROV record persisting the strategy's
// provenance (fault bound + planner-input fingerprint) so
// StrategyBuilder::Rebuild can resume from a loaded blob and refuse a
// mismatched planner; the loader accepts v2 and v3.

#ifndef BTR_SRC_CORE_STRATEGY_IO_H_
#define BTR_SRC_CORE_STRATEGY_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/core/augment.h"
#include "src/core/plan.h"
#include "src/core/strategy_patch.h"
#include "src/net/topology.h"

namespace btr {

// Serializes the strategy. `graph` supplies the augmented-task universe the
// plans index into (its size is written into the header for validation).
std::string SaveStrategy(const Strategy& strategy, const AugmentedGraph& graph,
                         const Topology& topo);

// Parses a serialized strategy and rebuilds per-mode routing from `topo`.
// Fails if the header's dimensions do not match `graph`/`topo`. Accepts
// both the v2/v3 text blob and the v4 binary image (auto-detected by
// magic); the loaded strategy records which format it came from in its
// provenance (`source_format`).
StatusOr<Strategy> LoadStrategy(const std::string& text, const AugmentedGraph& graph,
                                const Topology& topo);

// Serializes to the v4 binary image (see src/fmt/strategy_binary.h): the
// canonical v3 text, delta-encoded against the wave DAG, dictionary-packed,
// and sealed into an mmap-able sectioned image. LoadStrategy auto-detects
// the magic, so the two formats interchange freely on disk and on the wire.
StatusOr<std::string> SaveStrategyV4(const Strategy& strategy, const AugmentedGraph& graph,
                                     const Topology& topo);

// --- install-plane records (see strategy_patch.h for the semantics) ------

// Node `node`'s installable slice of the strategy: the blob's shared data
// plus only that node's schedule-table rows, chained to the full blob by
// its SFP fingerprint record.
StatusOr<std::string> SaveStrategySlice(const Strategy& strategy, const AugmentedGraph& graph,
                                        const Topology& topo, uint32_t node);

// The PATCH record type: a versioned BTRPATCH text. BCOPY lines
// re-reference installed plan bodies by id, BNEW blocks carry new/changed
// bodies verbatim, BDEL/MSET/MDEL records retire bodies and rewire modes,
// and the BASE/TARGET/NSLICE fingerprints chain the patch to the exact
// base it applies to and the exact result it must produce.
std::string SaveStrategyPatch(const StrategyPatch& patch);

// Serializes the per-node restriction of a full patch (convenience for
// MakeStrategyPatchSlice + SaveStrategyPatch).
StatusOr<std::string> SaveStrategyPatchSlice(const StrategyPatch& patch, uint32_t node);

// Strict parser for BTRPATCH texts. Rejects truncation, forged counts,
// out-of-range ids/references, and any non-canonical encoding (the parsed
// patch must re-serialize byte-identically, so every surviving bit flip is
// caught here or by the apply-time fingerprint check).
StatusOr<StrategyPatch> ParseStrategyPatch(const std::string& text);

}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_IO_H_
