#include "src/core/messages.h"

#include "src/common/hash.h"

namespace btr {

uint64_t HeartbeatDigest(NodeId from, uint64_t period) {
  Hasher h;
  h.Add(from.value()).Add(period).Add(uint32_t{0xbea7});
  return h.Digest();
}

}  // namespace btr
