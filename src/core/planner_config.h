// Configuration and metrics for the offline planning pipeline.
//
// Split out of planner.h so the individual pipeline stages
// (planner_stages.h) and the wave-parallel StrategyBuilder
// (strategy_builder.h) can share them without circular includes.

#ifndef BTR_SRC_CORE_PLANNER_CONFIG_H_
#define BTR_SRC_CORE_PLANNER_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/core/augment.h"
#include "src/net/network.h"

namespace btr {

struct PlannerConfig {
  uint32_t max_faults = 1;                  // f
  SimDuration recovery_bound = Seconds(1);  // R (reporting / runtime budget)
  AugmentConfig augment;                    // replication defaults to f + 1
  NetworkConfig network;                    // for serialization-time budgets

  bool locality_heuristic = true;   // prefer placements near communicating peers
  bool parent_stickiness = true;    // prefer parent-mode placements
  bool lookahead = true;            // penalize strandable stateful placements
  bool shed_by_criticality = true;  // degrade lowest criticality first
  double comm_budget_factor = 1.5;  // headroom on per-message serialization
  SimDuration epsilon = Microseconds(100);  // clock-skew bound for windows

  // Scoring weights (unitless; relative).
  double weight_load = 1.0;
  double weight_locality = 0.5;
  double weight_parent = 2.0;
  double weight_lookahead = 1.0;

  // Worker threads for wave-parallel strategy building. 0 = one per
  // hardware thread; 1 = fully serial (the pre-pipeline behavior). Modes
  // within one fault-set level are planned concurrently; results are
  // identical regardless of thread count.
  size_t planner_threads = 0;
};

struct PlannerMetrics {
  // Per-mode pipeline counters.
  size_t modes_planned = 0;
  size_t modes_degraded = 0;   // at least one sink shed
  size_t schedule_attempts = 0;

  // Strategy-compilation counters (filled by StrategyBuilder).
  size_t modes_deduped = 0;    // modes whose body matched an existing plan
  size_t unique_plans = 0;     // physically distinct plan bodies
  size_t waves = 0;            // fault-set levels planned (f + 1)
  size_t max_wave_modes = 0;   // widest wave (peak available parallelism)
  size_t threads_used = 1;     // pool size the build ran with

  // Incremental-rebuild counters (filled by StrategyBuilder::Rebuild).
  size_t rebuild_dirty_modes = 0;     // replanned: some stage input changed
  size_t rebuild_clean_modes = 0;     // reused: every stage input unchanged
  size_t rebuild_migrated_bodies = 0; // distinct bodies remapped to a new universe
};

}  // namespace btr

#endif  // BTR_SRC_CORE_PLANNER_CONFIG_H_
