// The Byzantine adversary (paper Section 2.1 threat model).
//
// The adversary fully controls up to f nodes. Control is modeled as a
// per-node behavior that the compromised node's runtime consults at every
// action. The adversary cannot forge other nodes' signatures (crypto
// assumption) and cannot exceed its MAC-enforced bandwidth allocation
// (babbling-idiot guardian) — everything else is fair game.

#ifndef BTR_SRC_CORE_ADVERSARY_H_
#define BTR_SRC_CORE_ADVERSARY_H_

#include <optional>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace btr {

enum class FaultBehavior : int {
  kCrash = 0,            // stop executing, receiving, and relaying
  kValueCorruption = 1,  // sign and send wrong output digests
  kOmission = 2,         // execute but send nothing (also drop relayed traffic)
  kSelectiveOmission = 3,  // omit only messages to `target`
  kDelay = 4,            // send outputs late by `delay`
  kEquivocate = 5,       // send different values to different receivers
  kEvidenceFlood = 6,    // spam bogus evidence records (DoS on verification)
};
inline constexpr int kFaultBehaviorCount = 7;

const char* FaultBehaviorName(FaultBehavior b);
// Inverse of FaultBehaviorName; nullopt for an unknown name. The round-trip
// over all kFaultBehaviorCount values is pinned by tests/adversary_test.cc.
std::optional<FaultBehavior> ParseFaultBehavior(std::string_view name);

struct FaultInjection {
  NodeId node;
  SimTime manifest_at = 0;
  FaultBehavior behavior = FaultBehavior::kCrash;
  // kDelay: how late outputs are sent.
  SimDuration delay = 0;
  // kSelectiveOmission: the receiver to starve.
  NodeId target;
  // kEvidenceFlood: bogus records per period.
  uint32_t flood_rate = 8;
  // The injection is active on [manifest_at, until); kSimTimeNever = the
  // node never heals (the default, and the only behavior before transient
  // faults existed). A healed node resumes honest execution, but any
  // conviction it already drew is permanent (fault sets are append-only).
  SimTime until = kSimTimeNever;
};

// Per-run adversary script: which nodes fall when, and how they misbehave.
class AdversarySpec {
 public:
  AdversarySpec() = default;

  void Add(FaultInjection injection) { injections_.push_back(injection); }

  const std::vector<FaultInjection>& injections() const { return injections_; }

  // The injection active on `node` at time `now`, or nullptr. Inline: the
  // runtime consults the adversary before every dispatch and delivery.
  const FaultInjection* ActiveOn(NodeId node, SimTime now) const {
    const FaultInjection* best = nullptr;
    for (const FaultInjection& inj : injections_) {
      if (inj.node != node || inj.manifest_at > now || inj.until <= now) {
        continue;
      }
      // Latest manifested injection wins (allows escalation scripts).
      if (best == nullptr || inj.manifest_at > best->manifest_at) {
        best = &inj;
      }
    }
    return best;
  }

  // Earliest manifestation on `node`; kSimTimeNever if the node stays honest.
  SimTime ManifestTime(NodeId node) const;

 private:
  std::vector<FaultInjection> injections_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_ADVERSARY_H_
