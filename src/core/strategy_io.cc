#include "src/core/strategy_io.h"

#include <iomanip>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/strategy_text_internal.h"
#include "src/fmt/strategy_binary.h"

namespace btr {
namespace {

constexpr char kMagic[] = "BTRSTRATEGY";
// v3 = v2 plus the optional PROV provenance record. The loader accepts
// both; bumping the header keeps pre-PROV readers failing with a clear
// version error instead of a misleading parse error.
constexpr int kVersion = 3;

void WriteBody(std::ostringstream& out, const PlanBody& body) {
  out << "U " << body.utility << "\n";
  for (uint32_t aug = 0; aug < body.placement.size(); ++aug) {
    if (body.placement[aug].valid()) {
      out << "P " << aug << " " << body.placement[aug].value() << " " << body.start[aug]
          << "\n";
    }
  }
  for (TaskId sink : body.shed_sinks) {
    out << "S " << sink.value() << "\n";
  }
  for (size_t node = 0; node < body.tables.size(); ++node) {
    for (const ScheduleEntry& e : body.tables[node].entries()) {
      out << "T " << node << " " << e.job << " " << e.start << " " << e.duration << "\n";
    }
  }
  for (size_t i = 0; i < body.edge_budget().size(); ++i) {
    if (body.edge_budget()[i] >= 0) {
      out << "B " << i << " " << body.edge_budget()[i] << "\n";
    }
  }
  out << "END\n";
}

}  // namespace

std::string SaveStrategy(const Strategy& strategy, const AugmentedGraph& graph,
                         const Topology& topo) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";
  out << "DIM " << graph.size() << " " << topo.node_count() << " " << graph.edges().size()
      << "\n";
  // Provenance (optional record): the fault bound and planner-input
  // fingerprint the strategy was compiled with, so an incremental rebuild
  // can resume from this blob and refuse a mismatched planner.
  if (strategy.provenance().present) {
    out << "PROV " << strategy.provenance().max_faults << " " << std::hex
        << strategy.provenance().planner_fingerprint << std::dec << "\n";
  }
  // File-local body ids by first use in canonical mode order, so the blob
  // is a pure function of the strategy's content (save-load-save is
  // byte-stable regardless of in-memory insertion order).
  const std::vector<FaultSet> sets = strategy.PlannedSets();
  std::unordered_map<const PlanBody*, size_t> file_ids;
  std::vector<const PlanBody*> file_bodies;
  std::vector<size_t> mode_refs;
  mode_refs.reserve(sets.size());
  for (const FaultSet& faults : sets) {
    const PlanBody* body = strategy.Lookup(faults)->body.get();
    auto [it, inserted] = file_ids.emplace(body, file_bodies.size());
    if (inserted) {
      file_bodies.push_back(body);
    }
    mode_refs.push_back(it->second);
  }
  out << "PLANS " << file_bodies.size() << "\n";
  for (size_t id = 0; id < file_bodies.size(); ++id) {
    out << "PLAN " << id << "\n";
    WriteBody(out, *file_bodies[id]);
  }
  // Modes reference their body by id; routing is rebuilt on load.
  out << "MODES " << sets.size() << "\n";
  for (size_t m = 0; m < sets.size(); ++m) {
    out << "MODE " << sets[m].size();
    for (NodeId n : sets[m].nodes()) {
      out << " " << n.value();
    }
    out << " REF " << mode_refs[m] << "\n";
  }
  return out.str();
}

StatusOr<Strategy> LoadStrategy(const std::string& text, const AugmentedGraph& graph,
                                const Topology& topo) {
  // v4 binary images auto-detect by magic and funnel through the text
  // loader, so every caller accepts both formats transparently.
  if (fmt::IsV4Image(text)) {
    const StatusOr<std::string> decoded = fmt::DecodeStrategyImage(text);
    if (!decoded.ok()) {
      return decoded.status();
    }
    StatusOr<Strategy> loaded = LoadStrategy(*decoded, graph, topo);
    if (loaded.ok()) {
      loaded->set_source_format(4);
    }
    return loaded;
  }
  // The writer always terminates the blob with a newline; a blob whose last
  // line is cut short would otherwise parse successfully because the token
  // reader below is newline-insensitive (found by the zero-degraded-modes
  // round-trip's exhaustive truncation sweep).
  if (text.empty() || text.back() != '\n') {
    return Status::InvalidArgument("truncated blob (missing final newline)");
  }
  std::istringstream in(text);
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != kMagic || (version != "v2" && version != "v3")) {
    return Status::InvalidArgument("not a BTRSTRATEGY v2/v3 blob");
  }
  std::string tag;
  in >> tag;
  size_t aug_count = 0;
  size_t node_count = 0;
  size_t edge_count = 0;
  if (tag != "DIM" || !(in >> aug_count >> node_count >> edge_count)) {
    return Status::InvalidArgument("missing DIM header");
  }
  if (aug_count != graph.size() || node_count != topo.node_count() ||
      edge_count != graph.edges().size()) {
    return Status::InvalidArgument("strategy dimensions do not match graph/topology");
  }

  StrategyProvenance provenance;
  if (!(in >> tag)) {
    return Status::InvalidArgument("missing PLANS header");
  }
  if (tag == "PROV") {
    if (!(in >> provenance.max_faults >> std::hex >> provenance.planner_fingerprint >>
          std::dec)) {
      return Status::InvalidArgument("malformed PROV record");
    }
    provenance.present = true;
    if (!(in >> tag)) {
      return Status::InvalidArgument("missing PLANS header");
    }
  }
  size_t plan_count = 0;
  if (tag != "PLANS" || !(in >> plan_count)) {
    return Status::InvalidArgument("missing PLANS header");
  }
  // Every body occupies at least a "PLAN n\nEND\n" line pair, so a count
  // beyond the blob size is a forged header — reject before reserving.
  if (plan_count > text.size()) {
    return Status::InvalidArgument("implausible PLANS count");
  }

  std::vector<std::shared_ptr<const PlanBody>> bodies;
  bodies.reserve(plan_count);
  for (size_t id = 0; id < plan_count; ++id) {
    size_t declared_id = 0;
    if (!(in >> tag >> declared_id) || tag != "PLAN" || declared_id != id) {
      return Status::InvalidArgument("malformed PLAN header");
    }
    PlanBody body;
    body.placement.assign(aug_count, NodeId::Invalid());
    body.start.assign(aug_count, -1);
    body.tables.assign(node_count, ScheduleTable());
    std::vector<SimDuration> edge_budget(edge_count, -1);
    bool ended = false;
    while (!ended && (in >> tag)) {
      if (tag == "U") {
        if (!(in >> body.utility)) {
          return Status::InvalidArgument("malformed U record");
        }
      } else if (tag == "P") {
        uint32_t aug = 0;
        uint32_t node = 0;
        SimDuration start = 0;
        if (!(in >> aug >> node >> start) || aug >= aug_count || node >= node_count) {
          return Status::InvalidArgument("malformed P record");
        }
        body.placement[aug] = NodeId(node);
        body.start[aug] = start;
      } else if (tag == "S") {
        uint32_t sink = 0;
        if (!(in >> sink)) {
          return Status::InvalidArgument("malformed S record");
        }
        body.shed_sinks.push_back(TaskId(sink));
      } else if (tag == "T") {
        size_t node = 0;
        uint32_t job = 0;
        SimDuration start = 0;
        SimDuration duration = 0;
        if (!(in >> node >> job >> start >> duration) || node >= node_count ||
            job >= aug_count) {
          return Status::InvalidArgument("malformed T record");
        }
        body.tables[node].Add(job, start, duration);
      } else if (tag == "B") {
        size_t idx = 0;
        SimDuration budget = 0;
        if (!(in >> idx >> budget) || idx >= edge_count) {
          return Status::InvalidArgument("malformed B record");
        }
        edge_budget[idx] = budget;
      } else if (tag == "END") {
        ended = true;
      } else {
        return Status::InvalidArgument("unknown record: " + tag);
      }
    }
    if (!ended) {
      return Status::InvalidArgument("truncated plan body (missing END)");
    }
    for (ScheduleTable& t : body.tables) {
      t.SortByStart();
    }
    body.set_edge_budget(std::move(edge_budget));
    bodies.push_back(std::make_shared<const PlanBody>(std::move(body)));
  }

  size_t mode_count = 0;
  if (!(in >> tag >> mode_count) || tag != "MODES") {
    return Status::InvalidArgument("missing MODES header");
  }
  if (mode_count > text.size()) {
    return Status::InvalidArgument("implausible MODES count");
  }
  Strategy strategy;
  for (size_t m = 0; m < mode_count; ++m) {
    size_t k = 0;
    if (!(in >> tag >> k) || tag != "MODE") {
      return Status::InvalidArgument("malformed MODE");
    }
    std::vector<NodeId> nodes;
    for (size_t i = 0; i < k; ++i) {
      uint32_t v = 0;
      if (!(in >> v) || v >= node_count) {
        return Status::InvalidArgument("malformed MODE nodes");
      }
      nodes.push_back(NodeId(v));
    }
    size_t ref = 0;
    if (!(in >> tag >> ref) || tag != "REF" || ref >= bodies.size()) {
      return Status::InvalidArgument("malformed MODE body reference");
    }
    Plan plan;
    plan.faults = FaultSet(std::move(nodes));
    if (strategy.Lookup(plan.faults) != nullptr) {
      return Status::InvalidArgument("duplicate MODE for " + plan.faults.ToString());
    }
    plan.body = bodies[ref];
    // Routing is a pure function of (topology, fault set); rebuild it.
    plan.routing = std::make_shared<RoutingTable>(topo, plan.faults.nodes());
    strategy.Insert(std::move(plan));
  }
  if (in >> tag) {
    return Status::InvalidArgument("trailing data after MODES: " + tag);
  }
  if (strategy.Lookup(FaultSet()) == nullptr) {
    return Status::InvalidArgument("strategy has no fault-free mode");
  }
  if (provenance.present) {
    strategy.set_provenance(provenance.max_faults, provenance.planner_fingerprint);
  }
  strategy.set_source_format(2);
  return strategy;
}

StatusOr<std::string> SaveStrategyV4(const Strategy& strategy, const AugmentedGraph& graph,
                                     const Topology& topo) {
  return fmt::EncodeStrategyImage(SaveStrategy(strategy, graph, topo));
}

// --- install-plane records -------------------------------------------------

namespace {

using strategy_text::BodyDims;
using strategy_text::Hex16;
using strategy_text::HexCanonical;
using strategy_text::LineScanner;
using strategy_text::ParseHex16;
using strategy_text::ParseHexCanonical;
using strategy_text::ParseU64;
using strategy_text::SplitFields;
using strategy_text::ValidBodyRecord;
using strategy_text::ValidFaultNodeList;

constexpr char kPatchMagic[] = "BTRPATCH v1";

Status PatchError(const std::string& what) {
  return Status::InvalidArgument("malformed BTRPATCH: " + what);
}

// Reads the next '\n'-terminated line or fails as a truncation.
Status NextPatchLine(LineScanner* scan, std::string_view* line, const char* what) {
  if (!strategy_text::NextTerminatedLine(scan, line)) {
    return PatchError(std::string("truncated at ") + what);
  }
  return Status::Ok();
}

std::string RenderFaultNodes(const std::vector<uint32_t>& nodes) {
  std::string out = std::to_string(nodes.size());
  for (uint32_t n : nodes) {
    out += ' ';
    out += std::to_string(n);
  }
  return out;
}

}  // namespace

StatusOr<std::string> SaveStrategySlice(const Strategy& strategy, const AugmentedGraph& graph,
                                        const Topology& topo, uint32_t node) {
  return ExtractSlice(SaveStrategy(strategy, graph, topo), node);
}

std::string SaveStrategyPatch(const StrategyPatch& patch) {
  std::string out = std::string(kPatchMagic) + "\n";
  out += "DIM " + std::to_string(patch.aug_count) + " " + std::to_string(patch.node_count) +
         " " + std::to_string(patch.edge_count) + "\n";
  out += "BASE " + Hex16(patch.base_fp) + "\n";
  out += "TARGET " + Hex16(patch.target_fp) + "\n";
  if (patch.has_prov) {
    out += "PROV " + std::to_string(patch.prov_max_faults) + " " +
           HexCanonical(patch.prov_planner_fp) + "\n";
  }
  if (patch.sliced) {
    out += "NODE " + std::to_string(patch.slice_node) + "\n";
  }
  for (const auto& [n, fp] : patch.slice_fps) {
    out += "NSLICE " + std::to_string(n) + " " + Hex16(fp) + "\n";
  }
  out += "BODIES " + std::to_string(patch.bodies.size()) + " " +
         std::to_string(patch.old_body_count) + "\n";
  for (uint32_t id = 0; id < patch.bodies.size(); ++id) {
    const StrategyPatch::BodyDef& def = patch.bodies[id];
    if (def.copy) {
      out += "BCOPY " + std::to_string(id) + " " + std::to_string(def.old_id) + "\n";
    } else {
      out += "BNEW " + std::to_string(id) + "\n";
      out += def.text;  // verbatim records up to and including END
    }
  }
  for (uint32_t old_id : patch.deleted_old) {
    out += "BDEL " + std::to_string(old_id) + "\n";
  }
  out += "MODES " + std::to_string(patch.final_mode_count) + " " +
         std::to_string(patch.sets.size()) + " " + std::to_string(patch.dels.size()) + "\n";
  for (const StrategyPatch::ModeRef& set : patch.sets) {
    out += "MSET " + RenderFaultNodes(set.fault_nodes) + " REF " + std::to_string(set.ref) +
           "\n";
  }
  for (const std::vector<uint32_t>& del : patch.dels) {
    out += "MDEL " + RenderFaultNodes(del) + "\n";
  }
  out += "PATCHEND\n";
  return out;
}

StatusOr<std::string> SaveStrategyPatchSlice(const StrategyPatch& patch, uint32_t node) {
  StatusOr<StrategyPatch> sliced = MakeStrategyPatchSlice(patch, node);
  if (!sliced.ok()) {
    return sliced.status();
  }
  return SaveStrategyPatch(*sliced);
}

StatusOr<StrategyPatch> ParseStrategyPatch(const std::string& text) {
  StrategyPatch patch;
  LineScanner scan(text);
  std::string_view line;
  std::vector<std::string_view> f;

  Status st = NextPatchLine(&scan, &line, "magic");
  if (!st.ok()) {
    return st;
  }
  if (line != kPatchMagic) {
    return PatchError("not a BTRPATCH v1 text");
  }
  st = NextPatchLine(&scan, &line, "DIM");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.size() != 4 || f[0] != "DIM" ||
      !ParseU64(f[1], &patch.aug_count) || !ParseU64(f[2], &patch.node_count) ||
      !ParseU64(f[3], &patch.edge_count) || patch.node_count == 0) {
    return PatchError("bad DIM record");
  }
  st = NextPatchLine(&scan, &line, "BASE");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.size() != 2 || f[0] != "BASE" ||
      !ParseHex16(f[1], &patch.base_fp)) {
    return PatchError("bad BASE record");
  }
  st = NextPatchLine(&scan, &line, "TARGET");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.size() != 2 || f[0] != "TARGET" ||
      !ParseHex16(f[1], &patch.target_fp)) {
    return PatchError("bad TARGET record");
  }

  st = NextPatchLine(&scan, &line, "NSLICE");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.empty()) {
    return PatchError("bad header record");
  }
  if (f[0] == "PROV") {
    uint64_t max_faults = 0;
    if (f.size() != 3 || !ParseU64(f[1], &max_faults) || max_faults > UINT32_MAX ||
        !ParseHexCanonical(f[2], &patch.prov_planner_fp)) {
      return PatchError("bad PROV record");
    }
    patch.has_prov = true;
    patch.prov_max_faults = static_cast<uint32_t>(max_faults);
    st = NextPatchLine(&scan, &line, "NSLICE");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.empty()) {
      return PatchError("bad header record");
    }
  }
  if (f[0] == "NODE") {
    uint64_t node = 0;
    if (f.size() != 2 || !ParseU64(f[1], &node) || node >= patch.node_count) {
      return PatchError("bad NODE record");
    }
    patch.sliced = true;
    patch.slice_node = static_cast<uint32_t>(node);
    st = NextPatchLine(&scan, &line, "NSLICE");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.empty()) {
      return PatchError("bad header record");
    }
  }
  while (f[0] == "NSLICE") {
    uint64_t node = 0;
    uint64_t fp = 0;
    if (f.size() != 3 || !ParseU64(f[1], &node) || node >= patch.node_count ||
        !ParseHex16(f[2], &fp)) {
      return PatchError("bad NSLICE record");
    }
    if (!patch.slice_fps.empty() && node <= patch.slice_fps.back().first) {
      return PatchError("NSLICE records out of order");
    }
    patch.slice_fps.emplace_back(static_cast<uint32_t>(node), fp);
    st = NextPatchLine(&scan, &line, "BODIES");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.empty()) {
      return PatchError("bad header record");
    }
  }
  if (patch.sliced) {
    if (patch.slice_fps.size() != 1 || patch.slice_fps[0].first != patch.slice_node) {
      return PatchError("a sliced patch must carry exactly its own NSLICE record");
    }
  } else if (patch.slice_fps.size() != patch.node_count) {
    return PatchError("a full patch must carry one NSLICE record per node");
  }

  uint64_t new_count = 0;
  if (f[0] != "BODIES" || f.size() != 3 || !ParseU64(f[1], &new_count) ||
      !ParseU64(f[2], &patch.old_body_count)) {
    return PatchError("bad BODIES header");
  }
  if (new_count == 0 || new_count > text.size() || patch.old_body_count > text.size()) {
    return PatchError("implausible BODIES counts");
  }

  const BodyDims dims{patch.aug_count, patch.node_count, patch.edge_count};
  std::vector<char> claimed(patch.old_body_count, 0);
  patch.bodies.reserve(new_count);
  for (uint64_t id = 0; id < new_count; ++id) {
    st = NextPatchLine(&scan, &line, "body entry");
    if (!st.ok()) {
      return st;
    }
    uint64_t declared = 0;
    if (!SplitFields(line, &f) || f.size() < 2 || !ParseU64(f[1], &declared) ||
        declared != id) {
      return PatchError("body entries out of order");
    }
    StrategyPatch::BodyDef def;
    if (f[0] == "BCOPY") {
      uint64_t old_id = 0;
      if (f.size() != 3 || !ParseU64(f[2], &old_id) || old_id >= patch.old_body_count) {
        return PatchError("BCOPY references an invalid base body");
      }
      if (claimed[old_id] != 0) {
        return PatchError("BCOPY re-references a base body twice");
      }
      claimed[old_id] = 1;
      def.copy = true;
      def.old_id = static_cast<uint32_t>(old_id);
    } else if (f[0] == "BNEW") {
      if (f.size() != 2) {
        return PatchError("bad BNEW header");
      }
      bool ended = false;
      while (!ended) {
        st = NextPatchLine(&scan, &line, "BNEW body");
        if (!st.ok()) {
          return st;
        }
        uint64_t t_node = 0;
        if (!ValidBodyRecord(line, dims, &t_node, &ended)) {
          return PatchError("bad BNEW body record");
        }
        if (patch.sliced && t_node != UINT64_MAX && t_node != patch.slice_node) {
          return PatchError("sliced BNEW body carries another node's table row");
        }
        def.text.append(line);
        def.text.push_back('\n');
      }
    } else {
      return PatchError("unknown body entry: " + std::string(f[0]));
    }
    patch.bodies.push_back(std::move(def));
  }

  st = NextPatchLine(&scan, &line, "MODES header");
  if (!st.ok()) {
    return st;
  }
  if (!SplitFields(line, &f) || f.empty()) {
    return PatchError("bad MODES header");
  }
  while (f[0] == "BDEL") {
    uint64_t old_id = 0;
    if (f.size() != 2 || !ParseU64(f[1], &old_id) || old_id >= patch.old_body_count) {
      return PatchError("BDEL drops an invalid base body");
    }
    if (claimed[old_id] != 0 ||
        (!patch.deleted_old.empty() && old_id <= patch.deleted_old.back())) {
      return PatchError("BDEL conflicts with another body entry");
    }
    patch.deleted_old.push_back(static_cast<uint32_t>(old_id));
    st = NextPatchLine(&scan, &line, "MODES header");
    if (!st.ok()) {
      return st;
    }
    if (!SplitFields(line, &f) || f.empty()) {
      return PatchError("bad MODES header");
    }
  }

  uint64_t set_count = 0;
  uint64_t del_count = 0;
  if (f[0] != "MODES" || f.size() != 4 || !ParseU64(f[1], &patch.final_mode_count) ||
      !ParseU64(f[2], &set_count) || !ParseU64(f[3], &del_count)) {
    return PatchError("bad MODES header");
  }
  if (patch.final_mode_count == 0 || patch.final_mode_count > text.size() ||
      set_count > text.size() || del_count > text.size()) {
    return PatchError("implausible MODES counts");
  }
  auto parse_fault_nodes = [&](size_t offset, std::vector<uint32_t>* nodes,
                               size_t* consumed) {
    uint64_t k = 0;
    if (f.size() <= offset || !ParseU64(f[offset], &k) || f.size() < offset + 1 + k) {
      return false;
    }
    nodes->clear();
    nodes->reserve(k);
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t v = 0;
      if (!ParseU64(f[offset + 1 + i], &v)) {
        return false;
      }
      nodes->push_back(static_cast<uint32_t>(v));
    }
    *consumed = offset + 1 + k;
    return ValidFaultNodeList(*nodes, patch.node_count);
  };
  for (uint64_t i = 0; i < set_count; ++i) {
    st = NextPatchLine(&scan, &line, "MSET");
    if (!st.ok()) {
      return st;
    }
    StrategyPatch::ModeRef set;
    size_t consumed = 0;
    uint64_t ref = 0;
    if (!SplitFields(line, &f) || f.empty() || f[0] != "MSET" ||
        !parse_fault_nodes(1, &set.fault_nodes, &consumed) || f.size() != consumed + 2 ||
        f[consumed] != "REF" || !ParseU64(f[consumed + 1], &ref) ||
        ref >= patch.bodies.size()) {
      return PatchError("bad MSET record");
    }
    set.ref = static_cast<uint32_t>(ref);
    if (!patch.sets.empty() && !(patch.sets.back().fault_nodes < set.fault_nodes)) {
      return PatchError("MSET records out of canonical order");
    }
    patch.sets.push_back(std::move(set));
  }
  for (uint64_t i = 0; i < del_count; ++i) {
    st = NextPatchLine(&scan, &line, "MDEL");
    if (!st.ok()) {
      return st;
    }
    std::vector<uint32_t> nodes;
    size_t consumed = 0;
    if (!SplitFields(line, &f) || f.empty() || f[0] != "MDEL" ||
        !parse_fault_nodes(1, &nodes, &consumed) || f.size() != consumed) {
      return PatchError("bad MDEL record");
    }
    if (!patch.dels.empty() && !(patch.dels.back() < nodes)) {
      return PatchError("MDEL records out of canonical order");
    }
    patch.dels.push_back(std::move(nodes));
  }

  st = NextPatchLine(&scan, &line, "PATCHEND");
  if (!st.ok()) {
    return st;
  }
  if (line != "PATCHEND") {
    return PatchError("missing PATCHEND trailer");
  }
  if (!scan.AtEnd()) {
    return PatchError("trailing data after PATCHEND");
  }
  // Canonical-encoding seal: the parsed patch must re-serialize to the
  // exact input bytes. Combined with the strict field grammar above, every
  // bit flip either fails a structural check, changes a value that the
  // BASE / NSLICE fingerprints catch, or lands here.
  if (SaveStrategyPatch(patch) != text) {
    return PatchError("non-canonical patch encoding");
  }
  return patch;
}

}  // namespace btr
