#include "src/core/strategy_io.h"

#include <sstream>

namespace btr {
namespace {

constexpr char kMagic[] = "BTRSTRATEGY";
constexpr int kVersion = 1;

}  // namespace

std::string SaveStrategy(const Strategy& strategy, const AugmentedGraph& graph,
                         const Topology& topo) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";
  out << "DIM " << graph.size() << " " << topo.node_count() << " " << graph.edges().size()
      << "\n";
  for (const FaultSet& faults : strategy.PlannedSets()) {
    const Plan* plan = strategy.Lookup(faults);
    out << "MODE " << faults.size();
    for (NodeId n : faults.nodes()) {
      out << " " << n.value();
    }
    out << "\n";
    out << "U " << plan->utility << "\n";
    for (uint32_t aug = 0; aug < plan->placement.size(); ++aug) {
      if (plan->placement[aug].valid()) {
        out << "P " << aug << " " << plan->placement[aug].value() << " " << plan->start[aug]
            << "\n";
      }
    }
    for (TaskId sink : plan->shed_sinks) {
      out << "S " << sink.value() << "\n";
    }
    for (size_t node = 0; node < plan->tables.size(); ++node) {
      for (const ScheduleEntry& e : plan->tables[node].entries()) {
        out << "T " << node << " " << e.job << " " << e.start << " " << e.duration << "\n";
      }
    }
    for (size_t i = 0; i < plan->edge_budget.size(); ++i) {
      if (plan->edge_budget[i] >= 0) {
        out << "B " << i << " " << plan->edge_budget[i] << "\n";
      }
    }
    out << "END\n";
  }
  return out.str();
}

StatusOr<Strategy> LoadStrategy(const std::string& text, const AugmentedGraph& graph,
                                const Topology& topo) {
  std::istringstream in(text);
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != kMagic || version != "v1") {
    return Status::InvalidArgument("not a BTRSTRATEGY v1 blob");
  }
  std::string tag;
  in >> tag;
  size_t aug_count = 0;
  size_t node_count = 0;
  size_t edge_count = 0;
  if (tag != "DIM" || !(in >> aug_count >> node_count >> edge_count)) {
    return Status::InvalidArgument("missing DIM header");
  }
  if (aug_count != graph.size() || node_count != topo.node_count() ||
      edge_count != graph.edges().size()) {
    return Status::InvalidArgument("strategy dimensions do not match graph/topology");
  }

  Strategy strategy;
  Plan plan;
  bool in_mode = false;
  while (in >> tag) {
    if (tag == "MODE") {
      size_t k = 0;
      if (!(in >> k)) {
        return Status::InvalidArgument("malformed MODE");
      }
      std::vector<NodeId> nodes;
      for (size_t i = 0; i < k; ++i) {
        uint32_t v = 0;
        if (!(in >> v) || v >= node_count) {
          return Status::InvalidArgument("malformed MODE nodes");
        }
        nodes.push_back(NodeId(v));
      }
      plan = Plan();
      plan.faults = FaultSet(std::move(nodes));
      plan.placement.assign(aug_count, NodeId::Invalid());
      plan.start.assign(aug_count, -1);
      plan.tables.assign(node_count, ScheduleTable());
      plan.edge_budget.assign(edge_count, -1);
      plan.routing = std::make_shared<RoutingTable>(topo, plan.faults.nodes());
      in_mode = true;
    } else if (!in_mode) {
      return Status::InvalidArgument("record outside MODE block: " + tag);
    } else if (tag == "U") {
      in >> plan.utility;
    } else if (tag == "P") {
      uint32_t aug = 0;
      uint32_t node = 0;
      SimDuration start = 0;
      if (!(in >> aug >> node >> start) || aug >= aug_count || node >= node_count) {
        return Status::InvalidArgument("malformed P record");
      }
      plan.placement[aug] = NodeId(node);
      plan.start[aug] = start;
    } else if (tag == "S") {
      uint32_t sink = 0;
      if (!(in >> sink)) {
        return Status::InvalidArgument("malformed S record");
      }
      plan.shed_sinks.push_back(TaskId(sink));
    } else if (tag == "T") {
      size_t node = 0;
      uint32_t job = 0;
      SimDuration start = 0;
      SimDuration duration = 0;
      if (!(in >> node >> job >> start >> duration) || node >= node_count ||
          job >= aug_count) {
        return Status::InvalidArgument("malformed T record");
      }
      plan.tables[node].Add(job, start, duration);
    } else if (tag == "B") {
      size_t idx = 0;
      SimDuration budget = 0;
      if (!(in >> idx >> budget) || idx >= edge_count) {
        return Status::InvalidArgument("malformed B record");
      }
      plan.edge_budget[idx] = budget;
    } else if (tag == "END") {
      for (ScheduleTable& t : plan.tables) {
        t.SortByStart();
      }
      strategy.Insert(std::move(plan));
      plan = Plan();
      in_mode = false;
    } else {
      return Status::InvalidArgument("unknown record: " + tag);
    }
  }
  if (in_mode) {
    return Status::InvalidArgument("truncated strategy (missing END)");
  }
  if (strategy.Lookup(FaultSet()) == nullptr) {
    return Status::InvalidArgument("strategy has no fault-free mode");
  }
  return strategy;
}

}  // namespace btr
