#include "src/core/strategy_io.h"

#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace btr {
namespace {

constexpr char kMagic[] = "BTRSTRATEGY";
// v3 = v2 plus the optional PROV provenance record. The loader accepts
// both; bumping the header keeps pre-PROV readers failing with a clear
// version error instead of a misleading parse error.
constexpr int kVersion = 3;

void WriteBody(std::ostringstream& out, const PlanBody& body) {
  out << "U " << body.utility << "\n";
  for (uint32_t aug = 0; aug < body.placement.size(); ++aug) {
    if (body.placement[aug].valid()) {
      out << "P " << aug << " " << body.placement[aug].value() << " " << body.start[aug]
          << "\n";
    }
  }
  for (TaskId sink : body.shed_sinks) {
    out << "S " << sink.value() << "\n";
  }
  for (size_t node = 0; node < body.tables.size(); ++node) {
    for (const ScheduleEntry& e : body.tables[node].entries()) {
      out << "T " << node << " " << e.job << " " << e.start << " " << e.duration << "\n";
    }
  }
  for (size_t i = 0; i < body.edge_budget().size(); ++i) {
    if (body.edge_budget()[i] >= 0) {
      out << "B " << i << " " << body.edge_budget()[i] << "\n";
    }
  }
  out << "END\n";
}

}  // namespace

std::string SaveStrategy(const Strategy& strategy, const AugmentedGraph& graph,
                         const Topology& topo) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";
  out << "DIM " << graph.size() << " " << topo.node_count() << " " << graph.edges().size()
      << "\n";
  // Provenance (optional record): the fault bound and planner-input
  // fingerprint the strategy was compiled with, so an incremental rebuild
  // can resume from this blob and refuse a mismatched planner.
  if (strategy.provenance().present) {
    out << "PROV " << strategy.provenance().max_faults << " " << std::hex
        << strategy.provenance().planner_fingerprint << std::dec << "\n";
  }
  // File-local body ids by first use in canonical mode order, so the blob
  // is a pure function of the strategy's content (save-load-save is
  // byte-stable regardless of in-memory insertion order).
  const std::vector<FaultSet> sets = strategy.PlannedSets();
  std::unordered_map<const PlanBody*, size_t> file_ids;
  std::vector<const PlanBody*> file_bodies;
  std::vector<size_t> mode_refs;
  mode_refs.reserve(sets.size());
  for (const FaultSet& faults : sets) {
    const PlanBody* body = strategy.Lookup(faults)->body.get();
    auto [it, inserted] = file_ids.emplace(body, file_bodies.size());
    if (inserted) {
      file_bodies.push_back(body);
    }
    mode_refs.push_back(it->second);
  }
  out << "PLANS " << file_bodies.size() << "\n";
  for (size_t id = 0; id < file_bodies.size(); ++id) {
    out << "PLAN " << id << "\n";
    WriteBody(out, *file_bodies[id]);
  }
  // Modes reference their body by id; routing is rebuilt on load.
  out << "MODES " << sets.size() << "\n";
  for (size_t m = 0; m < sets.size(); ++m) {
    out << "MODE " << sets[m].size();
    for (NodeId n : sets[m].nodes()) {
      out << " " << n.value();
    }
    out << " REF " << mode_refs[m] << "\n";
  }
  return out.str();
}

StatusOr<Strategy> LoadStrategy(const std::string& text, const AugmentedGraph& graph,
                                const Topology& topo) {
  std::istringstream in(text);
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != kMagic || (version != "v2" && version != "v3")) {
    return Status::InvalidArgument("not a BTRSTRATEGY v2/v3 blob");
  }
  std::string tag;
  in >> tag;
  size_t aug_count = 0;
  size_t node_count = 0;
  size_t edge_count = 0;
  if (tag != "DIM" || !(in >> aug_count >> node_count >> edge_count)) {
    return Status::InvalidArgument("missing DIM header");
  }
  if (aug_count != graph.size() || node_count != topo.node_count() ||
      edge_count != graph.edges().size()) {
    return Status::InvalidArgument("strategy dimensions do not match graph/topology");
  }

  StrategyProvenance provenance;
  if (!(in >> tag)) {
    return Status::InvalidArgument("missing PLANS header");
  }
  if (tag == "PROV") {
    if (!(in >> provenance.max_faults >> std::hex >> provenance.planner_fingerprint >>
          std::dec)) {
      return Status::InvalidArgument("malformed PROV record");
    }
    provenance.present = true;
    if (!(in >> tag)) {
      return Status::InvalidArgument("missing PLANS header");
    }
  }
  size_t plan_count = 0;
  if (tag != "PLANS" || !(in >> plan_count)) {
    return Status::InvalidArgument("missing PLANS header");
  }
  // Every body occupies at least a "PLAN n\nEND\n" line pair, so a count
  // beyond the blob size is a forged header — reject before reserving.
  if (plan_count > text.size()) {
    return Status::InvalidArgument("implausible PLANS count");
  }

  std::vector<std::shared_ptr<const PlanBody>> bodies;
  bodies.reserve(plan_count);
  for (size_t id = 0; id < plan_count; ++id) {
    size_t declared_id = 0;
    if (!(in >> tag >> declared_id) || tag != "PLAN" || declared_id != id) {
      return Status::InvalidArgument("malformed PLAN header");
    }
    PlanBody body;
    body.placement.assign(aug_count, NodeId::Invalid());
    body.start.assign(aug_count, -1);
    body.tables.assign(node_count, ScheduleTable());
    std::vector<SimDuration> edge_budget(edge_count, -1);
    bool ended = false;
    while (!ended && (in >> tag)) {
      if (tag == "U") {
        if (!(in >> body.utility)) {
          return Status::InvalidArgument("malformed U record");
        }
      } else if (tag == "P") {
        uint32_t aug = 0;
        uint32_t node = 0;
        SimDuration start = 0;
        if (!(in >> aug >> node >> start) || aug >= aug_count || node >= node_count) {
          return Status::InvalidArgument("malformed P record");
        }
        body.placement[aug] = NodeId(node);
        body.start[aug] = start;
      } else if (tag == "S") {
        uint32_t sink = 0;
        if (!(in >> sink)) {
          return Status::InvalidArgument("malformed S record");
        }
        body.shed_sinks.push_back(TaskId(sink));
      } else if (tag == "T") {
        size_t node = 0;
        uint32_t job = 0;
        SimDuration start = 0;
        SimDuration duration = 0;
        if (!(in >> node >> job >> start >> duration) || node >= node_count ||
            job >= aug_count) {
          return Status::InvalidArgument("malformed T record");
        }
        body.tables[node].Add(job, start, duration);
      } else if (tag == "B") {
        size_t idx = 0;
        SimDuration budget = 0;
        if (!(in >> idx >> budget) || idx >= edge_count) {
          return Status::InvalidArgument("malformed B record");
        }
        edge_budget[idx] = budget;
      } else if (tag == "END") {
        ended = true;
      } else {
        return Status::InvalidArgument("unknown record: " + tag);
      }
    }
    if (!ended) {
      return Status::InvalidArgument("truncated plan body (missing END)");
    }
    for (ScheduleTable& t : body.tables) {
      t.SortByStart();
    }
    body.set_edge_budget(std::move(edge_budget));
    bodies.push_back(std::make_shared<const PlanBody>(std::move(body)));
  }

  size_t mode_count = 0;
  if (!(in >> tag >> mode_count) || tag != "MODES") {
    return Status::InvalidArgument("missing MODES header");
  }
  if (mode_count > text.size()) {
    return Status::InvalidArgument("implausible MODES count");
  }
  Strategy strategy;
  for (size_t m = 0; m < mode_count; ++m) {
    size_t k = 0;
    if (!(in >> tag >> k) || tag != "MODE") {
      return Status::InvalidArgument("malformed MODE");
    }
    std::vector<NodeId> nodes;
    for (size_t i = 0; i < k; ++i) {
      uint32_t v = 0;
      if (!(in >> v) || v >= node_count) {
        return Status::InvalidArgument("malformed MODE nodes");
      }
      nodes.push_back(NodeId(v));
    }
    size_t ref = 0;
    if (!(in >> tag >> ref) || tag != "REF" || ref >= bodies.size()) {
      return Status::InvalidArgument("malformed MODE body reference");
    }
    Plan plan;
    plan.faults = FaultSet(std::move(nodes));
    if (strategy.Lookup(plan.faults) != nullptr) {
      return Status::InvalidArgument("duplicate MODE for " + plan.faults.ToString());
    }
    plan.body = bodies[ref];
    // Routing is a pure function of (topology, fault set); rebuild it.
    plan.routing = std::make_shared<RoutingTable>(topo, plan.faults.nodes());
    strategy.Insert(std::move(plan));
  }
  if (in >> tag) {
    return Status::InvalidArgument("trailing data after MODES: " + tag);
  }
  if (strategy.Lookup(FaultSet()) == nullptr) {
    return Status::InvalidArgument("strategy has no fault-free mode");
  }
  if (provenance.present) {
    strategy.set_provenance(provenance.max_faults, provenance.planner_fingerprint);
  }
  return strategy;
}

}  // namespace btr
