#include "src/core/planner_stages.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/rt/list_scheduler.h"

namespace btr {

std::vector<FaultSet> ModeEnumerator::Level(size_t node_count, size_t k) {
  std::vector<FaultSet> out;
  if (k > node_count) {
    return out;
  }
  std::vector<uint32_t> subset(k);
  for (size_t i = 0; i < k; ++i) {
    subset[i] = static_cast<uint32_t>(i);
  }
  for (;;) {
    std::vector<NodeId> nodes;
    nodes.reserve(k);
    for (uint32_t v : subset) {
      nodes.push_back(NodeId(v));
    }
    out.push_back(FaultSet(std::move(nodes)));
    // Advance to the next lexicographic k-subset of [0, node_count).
    size_t i = k;
    while (i > 0 && subset[i - 1] == node_count - (k - (i - 1))) {
      --i;
    }
    if (i == 0) {
      break;
    }
    ++subset[i - 1];
    for (size_t j = i; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
  return out;
}

std::vector<TaskId> SinkAdmission::Admit(const FaultSet& faults) const {
  std::vector<TaskId> served;
  for (TaskId sink : workload_->SinkIds()) {
    const TaskSpec& spec = workload_->task(sink);
    if (faults.Contains(spec.pinned_node)) {
      continue;
    }
    bool sources_ok = true;
    for (TaskId anc : workload_->AncestorsOf(sink)) {
      const TaskSpec& a = workload_->task(anc);
      if (a.kind == TaskKind::kSource && faults.Contains(a.pinned_node)) {
        sources_ok = false;
        break;
      }
    }
    if (sources_ok) {
      served.push_back(sink);
    }
  }
  // Shedding order: lowest criticality last in the vector.
  std::stable_sort(served.begin(), served.end(), [this](TaskId a, TaskId b) {
    return workload_->task(a).criticality > workload_->task(b).criticality;
  });
  return served;
}

SimDuration LatencyModel::SerializationOnHop(const Hop& hop, uint32_t bytes) const {
  const LinkSpec& spec = topo_->link(hop.link);
  const double share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps =
      static_cast<double>(spec.bandwidth_bps) * share * config_->network.foreground_fraction;
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / bps * 1e9) + 1;
}

SimDuration LatencyModel::EdgeBudget(NodeId from, NodeId to, uint32_t bytes,
                                     const RoutingTable& routing,
                                     const std::vector<uint64_t>* node_fg_bytes) const {
  if (from == to) {
    return 0;
  }
  const Route& route = routing.RouteBetween(from, to);
  if (route.empty()) {
    return -1;  // unreachable under this mode's routing
  }
  SimDuration budget = 0;
  for (const Hop& hop : route) {
    // The message's own serialization gets the contention headroom factor;
    // queueing is bounded separately: in the worst case every other
    // foreground byte the transmitting node sends this period is ahead of
    // this message in the same guardian queue.
    budget += static_cast<SimDuration>(config_->comm_budget_factor *
                                       static_cast<double>(SerializationOnHop(hop, bytes)));
    if (node_fg_bytes != nullptr) {
      const uint64_t queued = (*node_fg_bytes)[hop.sender.value()];
      const uint32_t clamped =
          static_cast<uint32_t>(std::min<uint64_t>(queued, 0xFFFFFFFFull));
      budget += SerializationOnHop(hop, clamped);
    }
    budget += topo_->link(hop.link).propagation;
  }
  return budget + config_->epsilon;
}

namespace {

// Connected components of the available-node graph with one more node
// removed; used for the lookahead vulnerability score.
std::vector<int> ComponentsWithout(const Topology& topo, const std::vector<bool>& available,
                                   NodeId removed) {
  const size_t n = topo.node_count();
  std::vector<int> comp(n, -1);
  int next = 0;
  for (size_t start = 0; start < n; ++start) {
    if (!available[start] || NodeId(static_cast<uint32_t>(start)) == removed ||
        comp[start] != -1) {
      continue;
    }
    const int c = next++;
    std::deque<size_t> frontier{start};
    comp[start] = c;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop_front();
      for (NodeId v : topo.Neighbors(NodeId(static_cast<uint32_t>(u)))) {
        if (!available[v.value()] || v == removed || comp[v.value()] != -1) {
          continue;
        }
        comp[v.value()] = c;
        frontier.push_back(v.value());
      }
    }
  }
  return comp;
}

}  // namespace

uint32_t PlacementStage::ReplicasInMode(size_t manifested) const {
  const uint32_t f = config_->max_faults;
  const uint32_t k = static_cast<uint32_t>(manifested);
  return k >= f ? 1 : f - k + 1;
}

ModeContext PlacementStage::PrepareContext(const FaultSet& faults,
                                           std::shared_ptr<const RoutingTable> routing) const {
  const size_t node_count = topo_->node_count();

  ModeContext ctx;
  ctx.faults = faults;
  ctx.available.assign(node_count, true);
  for (NodeId x : faults.nodes()) {
    ctx.available[x.value()] = false;
  }
  for (size_t n = 0; n < node_count; ++n) {
    if (ctx.available[n]) {
      ctx.available_list.push_back(NodeId(static_cast<uint32_t>(n)));
    }
  }
  ctx.routing = std::move(routing);
  ctx.active.assign(graph_->size(), false);
  ctx.placement.assign(graph_->size(), NodeId::Invalid());
  ctx.node_load.assign(node_count, 0);

  // Lookahead vulnerability: for each available node v, in how many
  // single-further-fault scenarios does v end up cut off from the part of
  // the system that holds the sensors and actuators? A task stranded away
  // from the I/O cannot serve any flow, and its state cannot be fetched.
  ctx.vulnerability.assign(node_count, 0);
  if (config_->lookahead && faults.size() < config_->max_faults) {
    std::vector<NodeId> io_nodes;
    for (const TaskSpec& spec : workload_->tasks()) {
      if (spec.pinned_node.valid() && ctx.available[spec.pinned_node.value()]) {
        io_nodes.push_back(spec.pinned_node);
      }
    }
    for (NodeId y : ctx.available_list) {
      const std::vector<int> comp = ComponentsWithout(*topo_, ctx.available, y);
      // The component that matters: the one holding the most I/O nodes
      // (ties broken toward the lower component id, deterministically).
      std::map<int, size_t> io_per_comp;
      for (NodeId io : io_nodes) {
        if (io != y && comp[io.value()] >= 0) {
          ++io_per_comp[comp[io.value()]];
        }
      }
      int io_comp = -1;
      size_t best = 0;
      for (const auto& [c, count] : io_per_comp) {
        if (count > best) {
          best = count;
          io_comp = c;
        }
      }
      if (io_comp < 0) {
        continue;
      }
      for (NodeId v : ctx.available_list) {
        if (v != y && comp[v.value()] != io_comp) {
          ++ctx.vulnerability[v.value()];
        }
      }
    }
  }
  return ctx;
}

void PlacementStage::ActivateTasks(ModeContext* ctx,
                                   const std::vector<TaskId>& served_sinks) const {
  const uint32_t replicas_kept = ReplicasInMode(ctx->faults.size());
  const std::vector<bool> needed = workload_->ReachesSinkMask(served_sinks);
  for (const TaskSpec& spec : workload_->tasks()) {
    if (!needed[spec.id.value()]) {
      continue;
    }
    const std::vector<uint32_t>& reps = graph_->ReplicasOf(spec.id);
    const uint32_t keep = std::min<uint32_t>(replicas_kept, static_cast<uint32_t>(reps.size()));
    for (uint32_t r = 0; r < keep; ++r) {
      ctx->active[reps[r]] = true;
    }
    const uint32_t chk = graph_->CheckerOf(spec.id);
    if (chk != AugmentedGraph::kNone) {
      ctx->active[chk] = true;
    }
  }
  for (NodeId n : ctx->available_list) {
    ctx->active[graph_->VerifierOf(n)] = true;
  }
}

double PlacementStage::Score(const ModeContext& ctx, uint32_t aug_id, NodeId candidate,
                             const std::vector<const Plan*>& parents) const {
  const AugTask& task = graph_->task(aug_id);
  const SimDuration period = workload_->period();

  double score = config_->weight_load *
                 static_cast<double>(ctx.node_load[candidate.value()] + task.wcet) /
                 static_cast<double>(period);

  if (config_->locality_heuristic) {
    double comm = 0.0;
    auto add_peer = [&](uint32_t peer, uint32_t bytes) {
      if (!ctx.active[peer] || !ctx.placement[peer].valid()) {
        return;
      }
      const size_t hops = ctx.routing->HopCount(candidate, ctx.placement[peer]);
      comm += static_cast<double>(hops) * static_cast<double>(bytes);
    };
    for (const AugEdge& e : graph_->InEdges(aug_id)) {
      add_peer(e.from, e.bytes);
    }
    for (const AugEdge& e : graph_->OutEdges(aug_id)) {
      add_peer(e.to, e.bytes);
    }
    score += config_->weight_locality * comm / 10000.0;
  }

  if (config_->parent_stickiness && !parents.empty()) {
    bool same_slot = false;   // candidate held this very replica before
    bool has_state = false;   // candidate held *some* replica of the task
    for (const Plan* parent : parents) {
      if (parent == nullptr) {
        continue;
      }
      if (parent->placement()[aug_id] == candidate) {
        same_slot = true;
      }
      if (task.kind == AugKind::kWorkload) {
        for (uint32_t sibling : graph_->ReplicasOf(task.workload_task)) {
          if (parent->placement()[sibling] == candidate) {
            has_state = true;
          }
        }
      }
    }
    if (!same_slot) {
      // Moving is expensive; moving somewhere that already has the task's
      // state (a sibling replica) costs half as much.
      score += config_->weight_parent * (has_state ? 0.5 : 1.0);
    }
  }

  if (config_->lookahead && task.state_bytes > 0) {
    const double state_scale = 1.0 + static_cast<double>(task.state_bytes) / 4096.0;
    score += config_->weight_lookahead *
             static_cast<double>(ctx.vulnerability[candidate.value()]) * state_scale / 10.0;
  }
  return score;
}

Status PlacementStage::Place(ModeContext* ctx, const std::vector<const Plan*>& parents) const {
  const size_t node_count = topo_->node_count();

  // Deterministic order: workload topological order, replicas ascending,
  // then the task's checker; verifiers are pinned anyway.
  std::vector<uint32_t> order;
  for (TaskId t : workload_->TopologicalOrder()) {
    for (uint32_t rep : graph_->ReplicasOf(t)) {
      if (ctx->active[rep]) {
        order.push_back(rep);
      }
    }
    const uint32_t chk = graph_->CheckerOf(t);
    if (chk != AugmentedGraph::kNone && ctx->active[chk]) {
      order.push_back(chk);
    }
  }
  for (NodeId n : ctx->available_list) {
    order.push_back(graph_->VerifierOf(n));
  }

  for (uint32_t aug_id : order) {
    const AugTask& task = graph_->task(aug_id);
    if (task.pinned.valid()) {
      if (!ctx->available[task.pinned.value()]) {
        return Status::Infeasible("pinned task " + task.name + " on faulty node");
      }
      ctx->placement[aug_id] = task.pinned;
      ctx->node_load[task.pinned.value()] += task.wcet;
      continue;
    }
    // Hard constraints.
    std::vector<bool> banned(node_count, false);
    if (task.kind == AugKind::kWorkload || task.kind == AugKind::kChecker) {
      for (uint32_t sibling : graph_->ReplicasOf(task.workload_task)) {
        if (sibling != aug_id && ctx->active[sibling] && ctx->placement[sibling].valid()) {
          banned[ctx->placement[sibling].value()] = true;
        }
      }
    }
    // Connectivity constraint: the candidate must be able to exchange
    // messages with every already-placed communication peer (a fault can
    // disconnect part of the topology).
    auto reachable_to_peers = [&](NodeId cand) {
      for (const AugEdge& e : graph_->InEdges(aug_id)) {
        if (ctx->active[e.from] && ctx->placement[e.from].valid() &&
            !ctx->routing->Reachable(ctx->placement[e.from], cand)) {
          return false;
        }
      }
      for (const AugEdge& e : graph_->OutEdges(aug_id)) {
        if (ctx->active[e.to] && ctx->placement[e.to].valid() &&
            !ctx->routing->Reachable(cand, ctx->placement[e.to])) {
          return false;
        }
      }
      return true;
    };
    NodeId best;
    double best_score = 0.0;
    for (NodeId cand : ctx->available_list) {
      if (banned[cand.value()]) {
        continue;
      }
      if (!reachable_to_peers(cand)) {
        continue;
      }
      const double score = Score(*ctx, aug_id, cand, parents);
      if (!best.valid() || score < best_score) {
        best = cand;
        best_score = score;
      }
    }
    if (!best.valid()) {
      return Status::Infeasible("no feasible node for " + task.name);
    }
    ctx->placement[aug_id] = best;
    ctx->node_load[best.value()] += task.wcet;
  }
  return Status::Ok();
}

StatusOr<PlanBody> ScheduleStage::BuildBody(const ModeContext& ctx,
                                            const std::vector<TaskId>& served_sinks) const {
  const size_t node_count = topo_->node_count();
  const SimDuration period = workload_->period();

  std::vector<uint32_t> dense_to_aug;
  std::vector<uint32_t> aug_to_dense(graph_->size(), AugmentedGraph::kNone);
  for (uint32_t id = 0; id < graph_->size(); ++id) {
    if (ctx.active[id]) {
      aug_to_dense[id] = static_cast<uint32_t>(dense_to_aug.size());
      dense_to_aug.push_back(id);
    }
  }
  std::vector<SchedJob> jobs;
  jobs.reserve(dense_to_aug.size());
  for (uint32_t dense = 0; dense < dense_to_aug.size(); ++dense) {
    const AugTask& task = graph_->task(dense_to_aug[dense]);
    SchedJob job;
    job.id = dense;
    job.node = ctx.placement[task.id].value();
    job.wcet = task.wcet;
    job.release = 0;
    job.deadline = period;
    if (task.kind == AugKind::kWorkload && task.replica == 0 &&
        workload_->task(task.workload_task).kind == TaskKind::kSink) {
      job.deadline = workload_->task(task.workload_task).relative_deadline;
    }
    job.priority_rank = -static_cast<int>(task.criticality);
    jobs.push_back(job);
  }
  // Effective wire size of an augmented edge: the runtime sends the larger
  // of the channel payload and the signed record itself.
  auto effective_bytes = [this](const AugEdge& e) -> uint32_t {
    const AugTask& from = graph_->task(e.from);
    uint32_t wire = 48;
    if (from.kind == AugKind::kWorkload) {
      wire += 28 * static_cast<uint32_t>(workload_->Inputs(from.workload_task).size());
    }
    return std::max(e.bytes, wire);
  };

  // Worst-case queueing context: total foreground bytes each node puts on
  // the wire per period under this placement.
  std::vector<uint64_t> node_fg_bytes(node_count, 0);
  for (const AugEdge& e : graph_->edges()) {
    if (!ctx.active[e.from] || !ctx.active[e.to]) {
      continue;
    }
    if (ctx.placement[e.from] == ctx.placement[e.to]) {
      continue;  // loopback does not touch the medium
    }
    node_fg_bytes[ctx.placement[e.from].value()] += effective_bytes(e);
  }

  std::vector<SchedEdge> edges;
  std::vector<SimDuration> edge_budget(graph_->edges().size(), -1);
  for (size_t i = 0; i < graph_->edges().size(); ++i) {
    const AugEdge& e = graph_->edges()[i];
    if (!ctx.active[e.from] || !ctx.active[e.to]) {
      continue;
    }
    SchedEdge se;
    se.from = aug_to_dense[e.from];
    se.to = aug_to_dense[e.to];
    se.comm_delay = latency_->EdgeBudget(ctx.placement[e.from], ctx.placement[e.to],
                                         effective_bytes(e), *ctx.routing, &node_fg_bytes);
    if (se.comm_delay < 0) {
      // A pinned endpoint ended up unreachable in this mode; the caller
      // sheds the affected flow and retries.
      return Status::Infeasible(graph_->task(e.from).name + " cannot reach " +
                                graph_->task(e.to).name);
    }
    edge_budget[i] = se.comm_delay;
    edges.push_back(se);
  }

  ListScheduler scheduler(node_count, period);
  StatusOr<SchedResult> sched = scheduler.Schedule(jobs, edges);
  if (!sched.ok()) {
    return sched.status();
  }

  // --- Assemble the plan body ---
  PlanBody body;
  body.set_edge_budget(std::move(edge_budget));
  body.placement = ctx.placement;
  // Inactive tasks are shed: clear their placement.
  for (uint32_t id = 0; id < graph_->size(); ++id) {
    if (!ctx.active[id]) {
      body.placement[id] = NodeId::Invalid();
    }
  }
  body.start.assign(graph_->size(), -1);
  for (uint32_t dense = 0; dense < dense_to_aug.size(); ++dense) {
    body.start[dense_to_aug[dense]] = sched->start[dense];
  }
  body.tables.assign(node_count, ScheduleTable());
  for (size_t n = 0; n < node_count; ++n) {
    for (const ScheduleEntry& e : sched->tables[n].entries()) {
      body.tables[n].Add(dense_to_aug[e.job], e.start, e.duration);
    }
    body.tables[n].SortByStart();
  }
  for (TaskId sink : workload_->SinkIds()) {
    if (std::find(served_sinks.begin(), served_sinks.end(), sink) == served_sinks.end()) {
      body.shed_sinks.push_back(sink);
    } else {
      body.utility += CriticalityWeight(workload_->task(sink).criticality);
    }
  }
  return body;
}

}  // namespace btr
