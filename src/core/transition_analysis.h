// Offline worst-case recovery-time analysis (paper Sections 3 and 4.4).
//
// The paper argues strategies must be computed offline precisely because
// "to guarantee BTR, we would need a time bound on rescheduling, which seems
// difficult to obtain" online. With the full strategy in hand, that bound
// *can* be computed ahead of time: for every reachable mode transition
// (S -> S ∪ {y}) the worst-case recovery decomposes into
//
//   detection  — fault manifestation to first valid evidence (caller-supplied
//                bound; commission ~2 periods, blame-based ~3-4 periods),
//   spread     — evidence flooding to every honest node: verifiers forward
//                once per period, so at most (topology diameter) periods,
//   boundary   — waiting for the next period boundary to swap tables,
//   transfer   — migrated task state over the control-class reservation,
//   settle     — one full period until the new mode's outputs reach sinks.
//
// AnalyzeTransitions computes this for an entire strategy and checks it
// against the configured R — turning Definition 3.1 from a runtime
// observation into a design-time guarantee (and E13's subject).

#ifndef BTR_SRC_CORE_TRANSITION_ANALYSIS_H_
#define BTR_SRC_CORE_TRANSITION_ANALYSIS_H_

#include <vector>

#include "src/core/augment.h"
#include "src/core/plan.h"
#include "src/net/network.h"
#include "src/net/topology.h"

namespace btr {

struct TransitionBound {
  FaultSet from;
  FaultSet to;
  PlanDelta delta;
  SimDuration evidence_spread = 0;
  SimDuration boundary_wait = 0;
  SimDuration state_transfer = 0;
  SimDuration settle = 0;
  // detection + spread + boundary + transfer + settle.
  SimDuration total = 0;
};

struct TransitionAnalysis {
  // The detection bound that was assumed (input, echoed for reporting).
  SimDuration detection_bound = 0;
  SimDuration worst_total = 0;
  bool fits_recovery_bound = false;
  std::vector<TransitionBound> transitions;

  const TransitionBound* Worst() const;
};

struct TransitionAnalysisConfig {
  NetworkConfig network;
  SimDuration period = 0;
  SimDuration recovery_bound = 0;
  // Upper bound on manifestation -> first conviction. Defaults to 4 periods
  // (2 consecutive missed heartbeats + checker latency) when zero.
  SimDuration detection_bound = 0;
};

// Analyzes every (parent, parent + {y}) pair present in the strategy.
TransitionAnalysis AnalyzeTransitions(const Strategy& strategy, const AugmentedGraph& graph,
                                      const Topology& topo,
                                      const TransitionAnalysisConfig& config);

}  // namespace btr

#endif  // BTR_SRC_CORE_TRANSITION_ANALYSIS_H_
