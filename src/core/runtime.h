// The BTR runtime: per-node dispatch, fault detection, evidence
// distribution, and mode switching (paper Sections 4.2 - 4.4).
//
// Each physical node runs a NodeRuntime that:
//  * dispatches the tasks its current plan's table prescribes, producing
//    signed output records and consuming received ones;
//  * runs checking tasks that compare + replay replica outputs and turn
//    mismatches into self-contained evidence;
//  * declares problematic paths when expected messages (or neighbor
//    heartbeats) are missing — omissions are not directly provable;
//  * runs its verification task, a fixed per-period CPU budget that
//    validates incoming evidence, forwards endorsed copies to neighbors,
//    and turns invalid evidence into evidence against its endorser;
//  * maintains an append-only local fault set; any valid conviction moves
//    the node to the strategy's plan for the enlarged set at the next
//    period boundary, requesting migrated task state from a donor replica.
//
// Compromised nodes run the same code but consult the AdversarySpec before
// every externally visible action.

#ifndef BTR_SRC_CORE_RUNTIME_H_
#define BTR_SRC_CORE_RUNTIME_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/common/block_pool.h"
#include "src/common/flat_map.h"
#include "src/common/packed_key.h"
#include "src/core/adversary.h"
#include "src/core/augment.h"
#include "src/core/evidence.h"
#include "src/core/messages.h"
#include "src/core/monitor.h"
#include "src/core/plan.h"
#include "src/core/planner.h"
#include "src/core/strategy_patch.h"
#include "src/crypto/keys.h"
#include "src/net/dissemination.h"
#include "src/net/network.h"
#include "src/sim/clock.h"
#include "src/sim/simulator.h"

namespace btr {

struct RuntimeConfig {
  CryptoCostModel crypto;
  EvidenceValidationConfig validation;
  size_t blame_threshold = 2;
  // Only path declarations within this many periods of each other combine
  // toward a blame conviction (stale transition blips must not pair with a
  // later fault's burst).
  uint64_t blame_window_periods = 8;
  bool heartbeats = true;
  bool timing_checks = true;
  // Turn invalid evidence into evidence against its endorser (the paper's
  // countermeasure to evidence-flooding DoS). Off = naive distributor.
  bool endorsement_abuse = true;
  // Suppress timing accusations and dataflow-driven path declarations for
  // this many periods after a mode switch: stale windows and in-flight state
  // transfers would otherwise cause false accusations against honest nodes.
  // Must cover the worst-case state-transfer time in periods.
  uint64_t timing_quiet_periods = 4;
  // Bound on the per-node pending-evidence queue (DoS containment).
  size_t evidence_queue_limit = 256;
  // Maximum clock error the detector tolerates (>= actual clock bounds).
  SimDuration epsilon = Microseconds(100);
  // Bound on each node's residual clock offset after (hardware-assisted)
  // resynchronization; must stay below epsilon or timing checks would
  // falsely accuse honest senders. 0 = perfect clocks.
  SimDuration max_clock_offset = Microseconds(30);
  uint32_t heartbeat_bytes = 32;
  // Install-plane dissemination: unicast (PR 4 point-to-point) or
  // Trickle-style gossip with heartbeat-aware pacing.
  DissemConfig dissem;
};

struct NodeStats {
  SimDuration busy = 0;          // task execution time
  SimDuration crypto = 0;        // signing/verifying outside the verifier job
  SimDuration verify_used = 0;   // verifier-job budget actually consumed
  uint64_t evidence_generated = 0;
  uint64_t evidence_validated = 0;
  uint64_t evidence_rejected = 0;
  uint64_t evidence_dropped_queue = 0;
  uint64_t path_declarations = 0;
  uint64_t mode_switches = 0;
  size_t evidence_queue_peak = 0;
};

// Conviction observed by some honest node (for detection-latency metrics).
struct ConvictionEvent {
  NodeId convicted;
  NodeId by;
  SimTime at = 0;
  EvidenceKind kind = EvidenceKind::kCommission;
};

class NodeRuntime;

// --- strategy install plane ------------------------------------------------

struct InstallEngineStats {
  uint64_t full_installs = 0;
  uint64_t patches_applied = 0;
  uint64_t patches_rejected = 0;
  uint64_t image_installs = 0;  // successful installs shipped as v4 images
  uint64_t bytes_received = 0;  // wire bytes of install payloads delivered
};

// Node-side installed-strategy state: the node's slice of the canonical
// strategy text plus the fingerprint chain that pins which full blob it
// belongs to. Every install is transactional (verify-then-swap): the new
// slice is assembled and fingerprint-verified off to the side, and the
// installed state is replaced only on success — any rejection leaves the
// engine bit-identical (see StateFingerprint), so a corrupted or
// wrong-base shipment can never strand a node on a half-applied strategy.
//
// Shipments arrive in either wire format (auto-detected by magic). A v4
// slice image installs by verify → map → swap with zero text parsing: the
// sealed image is structurally validated (src/fmt/strategy_binary.h) and
// stored as-is; the canonical text is materialized lazily only when a
// later patch needs the base text, at which point the engine transitions
// back to text mode. Exactly one of slice()/image() is non-empty while
// installed.
class InstallEngine {
 public:
  InstallEngine() = default;
  explicit InstallEngine(NodeId node) : node_(node) {}

  bool installed() const { return !slice_.empty() || !image_.empty(); }
  // Fingerprint of the full strategy blob the installed slice was carved
  // from (the provenance chain's link to the next patch's BASE).
  uint64_t strategy_fingerprint() const { return strategy_fp_; }
  // Monotonic install counter (full installs + applied patches).
  uint64_t version() const { return version_; }
  const std::string& slice() const { return slice_; }
  // Installed v4 slice image (empty when the install state is text).
  const std::string& image() const { return image_; }
  const InstallEngineStats& stats() const { return stats_; }

  // Fingerprint over the installed-strategy state only (slice bytes, chain
  // fingerprint, version); rejection diagnostics are excluded, so a
  // refused install leaves it unchanged — the corruption tests assert
  // exactly that.
  uint64_t StateFingerprint() const;

  // Replaces the installed slice wholesale (initial install or fallback).
  // Verify-then-swap: the slice must validate structurally AND chain to
  // `expected_sfp` (the fingerprint of the blob it claims to come from)
  // before any state changes; a mismatch rejects with the engine
  // bit-identical. Accepts the canonical text slice or a v4 slice image
  // (auto-detected). Callers shipping the slice over the wire must
  // content-verify the bytes first (see StrategyFullMessage::content_fp) —
  // the SFP chain alone cannot detect a flipped table-row byte.
  Status InstallFull(const std::string& slice_text, uint64_t expected_sfp);

  // Applies a sliced patch (BTRPATCH text or v4 patch image) against the
  // installed slice. Fails without side effects unless the patch parses,
  // chains to the installed fingerprint, and its applied result verifies
  // against the patch's NSLICE fingerprint.
  Status ApplyPatch(const std::string& patch_text);

  void CountReceivedBytes(uint64_t bytes) { stats_.bytes_received += bytes; }

 private:
  NodeId node_;
  std::string slice_;  // canonical text slice (text mode)
  std::string image_;  // sealed v4 slice image (image mode)
  uint64_t strategy_fp_ = 0;
  uint64_t version_ = 0;
  InstallEngineStats stats_;
};

// What a strategy rollout cost and achieved, aggregated by BtrRuntime.
struct InstallRunReport {
  SimTime started_at = kSimTimeNever;
  SimTime completed_at = kSimTimeNever;  // when the last node reached the target
  size_t nodes_installed = 0;            // nodes whose engine reached the target
  size_t fallbacks = 0;                  // full-slice installs after a failed patch
  uint64_t patch_bytes_sent = 0;         // wire bytes of patch shipments
  uint64_t full_bytes_sent = 0;          // wire bytes of fallback shipments
  // Gossip-mode counters (sums of the per-node agent stats, so the values
  // are shard-layout invariant). `gossip` gates the extra report line so
  // unicast reports stay byte-identical to the pre-gossip format.
  bool gossip = false;
  DissemAgentStats dissem;
};

// A nacking node gets at most this many full-slice re-shipments per
// rollout; past that the distributor gives up on it (the node keeps its
// base slice, nodes_installed stays short) instead of ping-ponging nacks
// forever with a peer whose shipments are persistently corrupted.
inline constexpr uint32_t kMaxInstallFallbacksPerNode = 3;

// Wire size of an InstallNackMessage (a node id, a fingerprint, framing) —
// the smallest real protocol message, and therefore the wire-frame floor
// BtrSystem pins into NetworkConfig::min_frame_bytes.
inline constexpr uint32_t kInstallNackBytes = 24;

// Shared, immutable-during-run context.
struct RuntimeContext {
  Simulator* sim = nullptr;
  Network* network = nullptr;
  const Topology* topo = nullptr;
  const Dataflow* workload = nullptr;
  const AugmentedGraph* graph = nullptr;
  const Strategy* strategy = nullptr;
  // O(1) lookup over `strategy` for the recovery hot path (mode switches).
  const StrategyIndex* strategy_index = nullptr;
  const Planner* planner = nullptr;
  const KeyStore* keys = nullptr;
  const AdversarySpec* adversary = nullptr;
  Monitor* monitor = nullptr;
  RuntimeConfig config;
};

class BtrRuntime {
 public:
  explicit BtrRuntime(const RuntimeContext& ctx);
  ~BtrRuntime();
  BtrRuntime(const BtrRuntime&) = delete;
  BtrRuntime& operator=(const BtrRuntime&) = delete;

  // Schedules the whole run: `periods` workload periods plus adversary
  // manifestations. Call Simulator::RunToCompletion afterwards.
  void Start(uint64_t periods);

  // How a rollout ships the target strategy: sliced patches (the delta
  // path this subsystem exists for), or the entire target blob to every
  // node (the naive pre-delta baseline, kept for cost comparisons).
  enum class InstallShipMode { kPatchSlices, kFullBlob };

  // Schedules a strategy rollout at simulated time `at`: every node's
  // engine is seeded with its base slice (the pre-deployment install, no
  // traffic), then `distributor` ships each other node its sliced patch
  // over the network as control traffic; a node whose patch fails to
  // verify nacks and receives its full slice instead. Shipments are paced
  // at the first-hop serialization rate so a rollout queues at most one
  // shipment deep in the distributor's control-class guardian instead of
  // overflowing its bounded backlog. Dissemination cost and latency land
  // in install_report() and the network stats.
  void ScheduleStrategyInstall(SimTime at, std::shared_ptr<const StrategyUpdate> update,
                               NodeId distributor,
                               InstallShipMode mode = InstallShipMode::kPatchSlices);
  // Finalized from the per-shard completion tallies on every call.
  const InstallRunReport& install_report() const;

  const NodeStats& node_stats(NodeId node) const;
  NodeStats TotalStats() const;
  // Convictions in canonical (at, convicted, by, kind) order — merged from
  // the per-shard buffers, so the order (and every report built from it) is
  // independent of the shard layout.
  const std::vector<ConvictionEvent>& convictions() const;

  // Earliest honest conviction of `node`; kSimTimeNever if never convicted.
  SimTime FirstConvictionOf(NodeId node) const;
  // Latest honest conviction of `node` (evidence fully distributed).
  SimTime LastConvictionOf(NodeId node) const;

  NodeRuntime* node(NodeId id);

 private:
  friend class NodeRuntime;
  void RecordConviction(const ConvictionEvent& event);
  // Install plane: node -> distributor escalation and completion tracking.
  void HandleInstallNack(NodeId from);
  void NotifyInstalled(NodeId node);
  // Ships the rollout payload for node `index` (skipping the distributor)
  // and chains the next shipment one serialization time later.
  void ShipNextInstall(uint32_t index, InstallShipMode mode);
  // First-hop serialization time of `bytes` from the distributor to `dst`
  // under the current routing. With no routing or no route, falls back to
  // the frame-floor serialization time on the distributor's first attached
  // link, so shipments are always spaced (never a same-instant burst).
  SimDuration EstimateInstallTx(NodeId dst, uint32_t bytes) const;

  RuntimeContext ctx_;
  // Freelist arenas for message payloads, one per shard: a node's payloads
  // come from its shard's arena, and a payload whose last reference dies on
  // another shard rides the arena's lock-free foreign-return stack home.
  // shared_ptr: pooled payloads embed a handle, so in-flight messages keep
  // the arena alive past the runtime if needed.
  std::vector<std::shared_ptr<BlockPool>> arenas_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  // Per-shard conviction buffers (single-writer: a conviction is recorded by
  // the shard executing the convicting node), merged canonically on read.
  struct alignas(64) ConvictionShard {
    std::vector<ConvictionEvent> items;
  };
  std::vector<ConvictionShard> conviction_shards_;
  mutable std::vector<ConvictionEvent> convictions_merged_;
  // Per-shard install-completion tallies (NotifyInstalled runs on the
  // installing node's shard); summed/maxed into the report on read.
  struct alignas(64) InstallShard {
    size_t installed = 0;
    SimTime last_at = -1;
  };
  std::vector<InstallShard> install_shards_;
  mutable InstallRunReport install_report_final_;
  uint64_t periods_ = 0;
  // Active strategy rollout (install plane), if any.
  std::shared_ptr<const StrategyUpdate> update_;
  NodeId install_distributor_;
  InstallRunReport install_report_;
  // Per-node fallback shipments this rollout, capped at
  // kMaxInstallFallbacksPerNode.
  std::vector<uint32_t> fallbacks_sent_;
};

class NodeRuntime {
 public:
  NodeRuntime(BtrRuntime* owner, const RuntimeContext& ctx, NodeId id, Signer signer,
              std::shared_ptr<BlockPool> arena);

  NodeId id() const { return id_; }
  const NodeStats& stats() const { return stats_; }
  const FaultSet& fault_set() const { return fault_set_; }
  const Plan* current_plan() const { return plan_; }
  const InstallEngine& install_engine() const { return install_; }

  // Graceful-degradation tallies: what happened when this node's observed
  // fault set exceeded the planned-for f (see Convict). Node-local and
  // written only by the node's own shard, so the per-run aggregates built
  // from them are shard-layout invariant.
  struct DegradationStats {
    uint64_t beyond_f_lookups = 0;   // exact plan lookups that missed
    uint64_t fallback_switches = 0;  // switches onto a nearest-covered mode
    SimTime degraded_since = kSimTimeNever;  // first beyond-f observation
  };
  const DegradationStats& degradation() const { return degradation_; }

  // Called by BtrRuntime at every period boundary.
  void BeginPeriod(uint64_t period);

  // Network delivery callback.
  void OnPacket(const Packet& packet);

  // Install plane, called by BtrRuntime when a rollout starts: seeds the
  // engine with this node's base slice (pre-deployment install), and runs
  // the distributor's own install locally (no network hop for itself).
  void EnsureBaseInstalled(const StrategyUpdate& update);
  void ApplyLocalInstall(const StrategyUpdate& update);
  // Direct full-slice install (distributor-local path of the full-blob
  // baseline mode).
  void InstallTargetSlice(const StrategyUpdate& update);

  // Gossip dissemination (config.dissem.mode == kGossip): starts this
  // node's Trickle agent for the active rollout. WakeDissem revives a
  // dormant agent — the driver's heal events poke a healed node back into
  // the conversation, which is what makes catch-up resumable.
  void StartGossip(NodeId distributor, BtrRuntime::InstallShipMode mode);
  void WakeDissem();
  // Agent stats for report aggregation; null when no gossip session ran.
  const DissemAgentStats* gossip_stats() const;

 private:
  struct ReceivedInput {
    uint64_t digest = 0;
    Signature value_sig;
    SimTime arrived_at = 0;
  };
  struct PendingEvidence {
    std::shared_ptr<const EvidenceRecord> evidence;
    NodeId forwarder;
    Signature endorsement;
  };

  const FaultInjection* ActiveFault() const;
  bool Crashed() const;

  // Pooled payload construction (freelist arena shared across nodes).
  template <typename T, typename... Args>
  std::shared_ptr<T> NewPayload(Args&&... args) {
    return MakePooled<T>(arena_, std::forward<Args>(args)...);
  }

  // --- dispatch ---
  void ExecuteJob(uint32_t aug_id, uint64_t period);
  void ExecuteWorkload(const AugTask& task, uint64_t period);
  void ExecuteChecker(const AugTask& task, uint64_t period);
  void ExecuteVerifier(const AugTask& task, uint64_t period);

  // --- output handling ---
  void SendRecord(const std::shared_ptr<const OutputRecord>& record, NodeId to,
                  uint32_t wire_bytes, uint64_t period);
  // Broadcasts a signed "no output this period, inputs missing" notice to
  // the task's consumers and checkers (excuses this node from omission
  // blame while the real culprit upstream accumulates it).
  void SendGapNotice(const AugTask& task, uint64_t period, std::vector<TaskId> missing);
  void HandleOutputRecord(const Packet& packet, const OutputRecord& record);
  void CheckArrivalWindow(const Packet& packet, const OutputRecord& record);

  // --- evidence ---
  void DeclarePath(NodeId a, NodeId b, uint64_t period);
  void EmitEvidence(std::shared_ptr<EvidenceRecord> evidence);
  void BroadcastEvidence(const std::shared_ptr<const EvidenceRecord>& evidence,
                         NodeId skip_neighbor);
  void ApplyValidEvidence(const EvidenceRecord& evidence, const EvidenceVerdict& verdict);
  void Convict(NodeId node, EvidenceKind kind);

  // --- mode change ---
  void AdoptPlan(const Plan* plan, uint64_t at_period);
  void RequestMigrationState(const Plan* old_plan, const Plan* new_plan);

  // --- strategy install plane ---
  void HandleStrategyPatch(const Packet& packet, const StrategyPatchMessage& msg);
  void HandleStrategyFull(const Packet& packet, const StrategyFullMessage& msg);
  // Escalates a failed install shipment back to the distributor.
  void SendInstallNack(NodeId distributor, uint64_t target_fp);

  // --- gossip dissemination ---
  // An active fault (other than delay / value corruption) silences this
  // node's dissemination sends, mirroring the heartbeat discipline.
  bool DissemSilenced() const;
  uint64_t DissemAnnounceFp() const;  // what our beacon would announce
  bool DissemInstalled() const;
  void ScheduleTrickle();
  void OnTrickleFire(uint32_t generation);
  void OnTrickleEnd(uint32_t generation);
  // Inconsistency observed (or a wake-up): restart the Trickle interval.
  void ResetTrickle();
  void SendDissemBeacon();
  void HandleDissemBeacon(const Packet& packet, const DissemBeaconMessage& msg);
  void HandleDissemRequest(const Packet& packet, const DissemRequestMessage& msg);
  void HandleDissemChunk(const Packet& packet, const DissemChunkMessage& msg);
  void SendDissemRequest(NodeId to);
  void CheckDissemProgress(uint32_t attempt);
  // Serving: one active transfer per link; a completed serve re-scans the
  // queue.
  void MaybeServeNext();
  void SendDissemChunk(PendingServe serve, uint32_t seq, ChunkPlan plan);
  // Resolves the artifact a serve ships. Returns null if unavailable.
  const std::string* DissemArtifact(DissemContent content, NodeId to) const;
  void ApplyDissemArtifact(DissemContent content, const std::string& text, NodeId server);
  LinkId LinkToNeighbor(NodeId peer) const;

  bool StateReady(TaskId task) const;

  BtrRuntime* owner_;
  const RuntimeContext& ctx_;
  NodeId id_;
  Signer signer_;
  EvidenceValidator validator_;
  LocalClock clock_;
  std::shared_ptr<BlockPool> arena_;  // payload freelist (shared, see owner)

  InstallEngine install_;               // installed-strategy state (install plane)
  std::unique_ptr<GossipSession> gossip_;  // per-rollout Trickle agent (gossip mode)
  const Plan* plan_ = nullptr;          // active plan
  const Plan* pending_plan_ = nullptr;  // adopted at next period boundary
  FaultSet fault_set_;
  uint64_t current_period_ = 0;
  uint64_t quiet_until_period_ = 0;     // timing checks suppressed before this

  // Per-period runtime state, flat-hashed by packed 64-bit keys (see
  // packed_key.h). Iteration order never reaches behavior: these are only
  // probed by key and garbage-collected with order-independent predicates.
  // Input buffers: PackIdPeriod(producer task, period) -> first received.
  FlatMap64<ReceivedInput> inputs_;
  // Replica records for checkers: PackTaskReplicaPeriod(task, replica,
  // period) -> record.
  FlatMap64<std::shared_ptr<const OutputRecord>> replica_records_;
  // Heartbeats seen: PackIdPeriod(node, period).
  FlatSet64 heartbeats_seen_;
  // Path declarations already made: PackNodePairPeriod(lo, hi, period).
  FlatSet64 declared_;
  // Workload task ids whose migration state has not arrived yet.
  FlatSet64 awaiting_state_;
  // Fault-set hashes already warned about as beyond-f (warn once per
  // (node, fault set) — the set only grows, so this stays tiny).
  FlatSet64 beyond_f_warned_;
  DegradationStats degradation_;

  std::deque<PendingEvidence> evidence_queue_;
  EvidencePool pool_;
  PathBlameTracker blame_;

  // Reused per-dispatch scratch (ExecuteWorkload/ExecuteChecker run once
  // per job event and never reenter): avoids a vector allocation per job.
  struct Dest {
    NodeId node;
    uint32_t bytes;
  };
  std::vector<Dest> dests_scratch_;
  std::vector<InputValue> values_scratch_;

  NodeStats stats_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_RUNTIME_H_
