// Internal decomposition of canonical strategy texts (blob / slice) into
// verbatim body chunks and parsed mode lines. Shared by the install plane
// (strategy_patch.cc) and the v4 binary image codec (src/fmt) — both need
// the same lossless split: the matching renderers reproduce the input
// byte-for-byte, which is what lets every higher layer prove itself by
// string equality. Not part of the public API.

#ifndef BTR_SRC_CORE_STRATEGY_PARTS_INTERNAL_H_
#define BTR_SRC_CORE_STRATEGY_PARTS_INTERNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace btr {
namespace strategy_text {

// A canonical strategy blob or per-node slice, decomposed into verbatim
// body chunks and parsed mode lines. The decomposition is lossless: the
// matching renderer reproduces the input byte-for-byte.
struct Parts {
  bool is_slice = false;
  uint64_t node = 0;        // slices only
  uint64_t slice_sfp = 0;   // slices only: fingerprint of the source blob
  uint64_t aug_count = 0;
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  bool has_prov = false;
  uint64_t prov_max_faults = 0;
  uint64_t prov_planner_fp = 0;
  // Verbatim record chunks, one per body, up to and including "END\n".
  std::vector<std::string> bodies;
  struct Mode {
    std::vector<uint32_t> fault_nodes;
    uint64_t ref = 0;
  };
  std::vector<Mode> modes;
};

// Strict parser for canonical BTRSTRATEGY v3 / BTRSLICE v1 texts.
StatusOr<Parts> ParseParts(const std::string& text);

// Renders a slice from components; exactly what ExtractSlice produces and
// what ApplyPatchToSlice must reproduce.
std::string RenderSliceText(uint64_t node, uint64_t aug_count, uint64_t node_count,
                            uint64_t edge_count, bool has_prov, uint64_t prov_max_faults,
                            uint64_t prov_planner_fp, uint64_t sfp,
                            const std::vector<const std::string*>& body_chunks,
                            const std::vector<Parts::Mode>& modes);

// Renders a per-node slice of a parsed full blob.
std::string RenderSliceOfBlob(const Parts& blob, uint64_t node, uint64_t sfp);

// Renders a full blob back from its decomposition — the exact inverse of
// ParseParts over SaveStrategy output (byte-identical re-serialization).
std::string RenderBlobText(const Parts& blob);

// Splits a validated body chunk into (shared prefix, own T rows, shared
// suffix); the writer's record order U, P*, S*, T*, B*, END makes the
// split well-defined even when the chunk has no T rows.
void SplitChunk(const std::string& chunk, std::string* pre, std::string* t_rows,
                std::string* post);

}  // namespace strategy_text
}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_PARTS_INTERNAL_H_
