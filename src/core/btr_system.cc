#include "src/core/btr_system.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/common/hash.h"
#include "src/crypto/keys.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace btr {

std::string SerializeRunReport(const RunReport& report) {
  std::string out;
  out.reserve(4096);
  char buf[256];
  auto line = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out += '\n';
  };

  const CorrectnessReport& c = report.correctness;
  line("periods=%" PRIu64 " simulated_time=%" PRId64, report.periods, report.simulated_time);
  line("correctness total=%" PRIu64 " correct=%" PRIu64 " bad_value=%" PRIu64
       " late=%" PRIu64 " missing=%" PRIu64 " shed=%" PRIu64 " violated=%d",
       c.total_instances, c.correct_instances, c.incorrect_value, c.incorrect_late,
       c.incorrect_missing, c.shed_instances, c.btr_violated ? 1 : 0);
  line("recovery max=%" PRId64 " total_bad=%" PRId64, c.max_recovery, c.total_bad_time);
  for (const RecoveryMeasurement& rm : c.recoveries) {
    line("recovery node=%u manifested=%" PRId64 " last_bad=%" PRId64 " time=%" PRId64
         " bad_instances=%zu",
         rm.node.value(), rm.manifested_at, rm.last_bad_output, rm.recovery_time,
         rm.bad_instances);
  }
  line("sink_latency count=%zu sum=%.3f", c.sink_latency.count(),
       c.sink_latency.empty() ? 0.0 : c.sink_latency.Sum());

  const NetworkStats& n = report.network;
  line("network sent=%" PRIu64 " delivered=%" PRIu64 " loss=%" PRIu64 " down=%" PRIu64
       " unreachable=%" PRIu64 " backlog=%" PRIu64 " link_bytes=%" PRIu64,
       n.packets_sent, n.packets_delivered, n.packets_dropped_loss, n.packets_dropped_down,
       n.packets_dropped_unreachable, n.packets_dropped_backlog, n.total_link_bytes);

  for (size_t i = 0; i < report.per_node.size(); ++i) {
    const NodeStats& s = report.per_node[i];
    line("node=%zu busy=%" PRId64 " crypto=%" PRId64 " verify=%" PRId64 " ev_gen=%" PRIu64
         " ev_val=%" PRIu64 " ev_rej=%" PRIu64 " ev_drop=%" PRIu64 " paths=%" PRIu64
         " switches=%" PRIu64 " queue_peak=%zu",
         i, s.busy, s.crypto, s.verify_used, s.evidence_generated, s.evidence_validated,
         s.evidence_rejected, s.evidence_dropped_queue, s.path_declarations, s.mode_switches,
         s.evidence_queue_peak);
  }
  for (const RunReport::FaultOutcome& f : report.faults) {
    line("fault node=%u behavior=%d first=%" PRId64 " last=%" PRId64 " detect=%" PRId64
         " distribute=%" PRId64 " recover=%" PRId64,
         f.node.value(), static_cast<int>(f.behavior), f.first_conviction, f.last_conviction,
         f.detection_latency, f.distribution_latency, f.recovery_time);
  }
  return out;
}

uint64_t FingerprintRunReport(const RunReport& report) {
  return HashString(SerializeRunReport(report));
}

BtrSystem::BtrSystem(Scenario scenario, BtrConfig config)
    : scenario_(std::move(scenario)), config_(config) {
  planner_ = std::make_unique<Planner>(&scenario_.topology, &scenario_.workload,
                                       config_.planner);
}

Status BtrSystem::Plan() {
  Status topo_ok = scenario_.topology.Validate();
  if (!topo_ok.ok()) {
    return topo_ok;
  }
  Status workload_ok = scenario_.workload.Validate();
  if (!workload_ok.ok()) {
    return workload_ok;
  }
  StatusOr<Strategy> strategy = planner_->BuildStrategy();
  if (!strategy.ok()) {
    return strategy.status();
  }
  strategy_ = std::move(strategy).value();
  strategy_index_ = StrategyIndex(strategy_);
  planned_ = true;
  return Status::Ok();
}

void BtrSystem::AddFault(const FaultInjection& injection) { adversary_.Add(injection); }

TransitionAnalysis BtrSystem::AnalyzeRecoveryBound() const {
  TransitionAnalysisConfig config;
  config.network = config_.planner.network;
  config.period = scenario_.workload.period();
  config.recovery_bound = config_.planner.recovery_bound;
  return AnalyzeTransitions(strategy_, planner_->graph(), scenario_.topology, config);
}

StatusOr<RunReport> BtrSystem::Run(uint64_t periods) {
  if (!planned_) {
    return Status::FailedPrecondition("call Plan() before Run()");
  }
  for (const FaultInjection& inj : adversary_.injections()) {
    if (!inj.node.valid() || inj.node.value() >= scenario_.topology.node_count()) {
      return Status::InvalidArgument("fault injection on unknown node");
    }
  }

  Simulator sim(config_.seed);
  Network network(&sim, &scenario_.topology, config_.planner.network);
  Rng key_rng(config_.seed ^ 0x5eedc0deULL);
  KeyStore keys(scenario_.topology.node_count(), &key_rng);
  Monitor monitor(&scenario_.workload, &strategy_, &adversary_,
                  config_.planner.recovery_bound);
  monitor.ReserveObservations(periods * scenario_.workload.SinkIds().size());

  RuntimeContext ctx;
  ctx.sim = &sim;
  ctx.network = &network;
  ctx.topo = &scenario_.topology;
  ctx.workload = &scenario_.workload;
  ctx.graph = &planner_->graph();
  ctx.strategy = &strategy_;
  ctx.strategy_index = &strategy_index_;
  ctx.planner = planner_.get();
  ctx.keys = &keys;
  ctx.adversary = &adversary_;
  ctx.monitor = &monitor;
  ctx.config = config_.runtime;

  BtrRuntime runtime(ctx);
  runtime.Start(periods);
  sim.RunToCompletion();

  RunReport report;
  report.periods = periods;
  report.simulated_time = sim.Now();
  report.events_executed = sim.events_executed();
  report.correctness = monitor.Evaluate(periods);
  report.network = network.stats();
  report.total_node_stats = runtime.TotalStats();
  for (size_t n = 0; n < scenario_.topology.node_count(); ++n) {
    report.per_node.push_back(runtime.node_stats(NodeId(static_cast<uint32_t>(n))));
  }

  // One outcome per first manifestation per node.
  std::vector<NodeId> seen;
  for (const FaultInjection& inj : adversary_.injections()) {
    if (std::find(seen.begin(), seen.end(), inj.node) != seen.end()) {
      continue;
    }
    seen.push_back(inj.node);
    RunReport::FaultOutcome outcome;
    outcome.node = inj.node;
    outcome.behavior = inj.behavior;
    outcome.manifested_at = adversary_.ManifestTime(inj.node);
    outcome.first_conviction = runtime.FirstConvictionOf(inj.node);
    outcome.last_conviction = runtime.LastConvictionOf(inj.node);
    if (outcome.first_conviction != kSimTimeNever) {
      outcome.detection_latency = outcome.first_conviction - outcome.manifested_at;
    }
    if (outcome.first_conviction != kSimTimeNever && outcome.last_conviction != kSimTimeNever) {
      outcome.distribution_latency = outcome.last_conviction - outcome.first_conviction;
    }
    for (const RecoveryMeasurement& rm : report.correctness.recoveries) {
      if (rm.node == inj.node) {
        outcome.recovery_time = rm.recovery_time;
        break;
      }
    }
    report.faults.push_back(outcome);
  }
  return report;
}

}  // namespace btr
