#include "src/core/btr_system.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/common/hash.h"
#include "src/core/strategy_builder.h"
#include "src/core/strategy_io.h"
#include "src/crypto/keys.h"
#include "src/net/network.h"
#include "src/net/partition.h"
#include "src/sim/shard_layout.h"
#include "src/sim/simulator.h"

namespace btr {

std::string SerializeRunReport(const RunReport& report) {
  std::string out;
  out.reserve(4096);
  char buf[256];
  auto line = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out += '\n';
  };

  const CorrectnessReport& c = report.correctness;
  line("periods=%" PRIu64 " simulated_time=%" PRId64, report.periods, report.simulated_time);
  line("correctness total=%" PRIu64 " correct=%" PRIu64 " bad_value=%" PRIu64
       " late=%" PRIu64 " missing=%" PRIu64 " shed=%" PRIu64 " violated=%d",
       c.total_instances, c.correct_instances, c.incorrect_value, c.incorrect_late,
       c.incorrect_missing, c.shed_instances, c.btr_violated ? 1 : 0);
  line("recovery max=%" PRId64 " total_bad=%" PRId64, c.max_recovery, c.total_bad_time);
  for (const RecoveryMeasurement& rm : c.recoveries) {
    line("recovery node=%u manifested=%" PRId64 " last_bad=%" PRId64 " time=%" PRId64
         " bad_instances=%zu",
         rm.node.value(), rm.manifested_at, rm.last_bad_output, rm.recovery_time,
         rm.bad_instances);
  }
  line("sink_latency count=%zu sum=%.3f", c.sink_latency.count(),
       c.sink_latency.empty() ? 0.0 : c.sink_latency.Sum());

  const NetworkStats& n = report.network;
  line("network sent=%" PRIu64 " delivered=%" PRIu64 " loss=%" PRIu64 " down=%" PRIu64
       " unreachable=%" PRIu64 " backlog=%" PRIu64 " link_bytes=%" PRIu64,
       n.packets_sent, n.packets_delivered, n.packets_dropped_loss, n.packets_dropped_down,
       n.packets_dropped_unreachable, n.packets_dropped_backlog, n.total_link_bytes);
  // Gated on activity so runs without duty-cycled links keep their
  // pre-existing report bytes (and fingerprints).
  if (n.packets_dropped_duty != 0) {
    line("network_duty drops=%" PRIu64, n.packets_dropped_duty);
  }

  for (size_t i = 0; i < report.per_node.size(); ++i) {
    const NodeStats& s = report.per_node[i];
    line("node=%zu busy=%" PRId64 " crypto=%" PRId64 " verify=%" PRId64 " ev_gen=%" PRIu64
         " ev_val=%" PRIu64 " ev_rej=%" PRIu64 " ev_drop=%" PRIu64 " paths=%" PRIu64
         " switches=%" PRIu64 " queue_peak=%zu",
         i, s.busy, s.crypto, s.verify_used, s.evidence_generated, s.evidence_validated,
         s.evidence_rejected, s.evidence_dropped_queue, s.path_declarations, s.mode_switches,
         s.evidence_queue_peak);
  }
  for (const RunReport::FaultOutcome& f : report.faults) {
    line("fault node=%u behavior=%d first=%" PRId64 " last=%" PRId64 " detect=%" PRId64
         " distribute=%" PRId64 " recover=%" PRId64,
         f.node.value(), static_cast<int>(f.behavior), f.first_conviction, f.last_conviction,
         f.detection_latency, f.distribution_latency, f.recovery_time);
  }
  // Gated on beyond-f activity so every in-contract run keeps its
  // pre-existing report bytes.
  if (report.degradation.active()) {
    line("degradation beyond_f=%" PRIu64 " fallback_switches=%" PRIu64
         " degraded_time=%" PRId64 " coverage=%.6f",
         report.degradation.beyond_f_lookups, report.degradation.fallback_switches,
         report.degradation.degraded_time, report.degradation.coverage);
  }
  // Only rollout runs carry an install section, so pre-lifecycle
  // fingerprints of plain runs are unchanged.
  if (report.install.started_at != kSimTimeNever) {
    const InstallRunReport& ir = report.install;
    line("install started=%" PRId64 " completed=%" PRId64 " installed=%zu fallbacks=%zu"
         " patch_bytes=%" PRIu64 " full_bytes=%" PRIu64,
         ir.started_at, ir.completed_at, ir.nodes_installed, ir.fallbacks,
         ir.patch_bytes_sent, ir.full_bytes_sent);
    // Gated on the gossip flag so unicast reports stay byte-identical to
    // what they were before dissemination existed.
    if (ir.gossip) {
      line("dissem beacons=%" PRIu64 " suppressed=%" PRIu64 " requests=%" PRIu64
           " chunks=%" PRIu64 " bytes=%" PRIu64 " serves=%" PRIu64 " resumes=%" PRIu64,
           ir.dissem.beacons_sent, ir.dissem.beacons_suppressed, ir.dissem.requests_sent,
           ir.dissem.chunks_sent, ir.dissem.bytes_sent, ir.dissem.serves,
           ir.dissem.resumes);
    }
  }
  return out;
}

uint64_t FingerprintRunReport(const RunReport& report) {
  return HashString(SerializeRunReport(report));
}

BtrSystem::BtrSystem(Scenario scenario, BtrConfig config)
    : scenario_(std::make_unique<Scenario>(std::move(scenario))), config_(config) {
  planner_ = std::make_unique<Planner>(&scenario_->topology, &scenario_->workload,
                                       config_.planner);
}

Status BtrSystem::Plan() {
  Status topo_ok = scenario_->topology.Validate();
  if (!topo_ok.ok()) {
    return topo_ok;
  }
  Status workload_ok = scenario_->workload.Validate();
  if (!workload_ok.ok()) {
    return workload_ok;
  }
  StatusOr<Strategy> strategy = planner_->BuildStrategy();
  if (!strategy.ok()) {
    return strategy.status();
  }
  strategy_ = std::make_shared<const Strategy>(std::move(strategy).value());
  strategy_index_ = StrategyIndex(*strategy_);
  planned_ = true;
  return Status::Ok();
}

Status BtrSystem::AdoptStrategy(std::shared_ptr<const Strategy> strategy) {
  if (strategy == nullptr || strategy->mode_count() == 0) {
    return Status::InvalidArgument("AdoptStrategy: empty strategy");
  }
  const StrategyProvenance& prov = strategy->provenance();
  if (!prov.present) {
    return Status::InvalidArgument("AdoptStrategy: strategy carries no provenance");
  }
  if (prov.max_faults != config_.planner.max_faults) {
    return Status::InvalidArgument(
        "AdoptStrategy: strategy was compiled for f=" + std::to_string(prov.max_faults) +
        ", this system is configured for f=" +
        std::to_string(config_.planner.max_faults));
  }
  if (prov.planner_fingerprint != planner_->Fingerprint()) {
    return Status::InvalidArgument(
        "AdoptStrategy: planner fingerprint mismatch (different config, topology, "
        "or workload)");
  }
  if (prov.scenario_fingerprint != 0 &&
      prov.scenario_fingerprint !=
          FingerprintScenario(scenario_->topology, scenario_->workload)) {
    return Status::InvalidArgument("AdoptStrategy: scenario fingerprint mismatch");
  }
  strategy_ = std::move(strategy);
  strategy_index_ = StrategyIndex(*strategy_);
  planned_ = true;
  return Status::Ok();
}

void BtrSystem::AddFault(const FaultInjection& injection) { adversary_.Add(injection); }

Status BtrSystem::ApplyDelta(const StrategyDelta& delta, SimTime rollout_at,
                             BtrRuntime::InstallShipMode ship_mode) {
  if (!planned_) {
    return Status::FailedPrecondition("call Plan() before ApplyDelta()");
  }
  if (delta.empty()) {
    return Status::InvalidArgument("ApplyDelta: delta has no edits");
  }
  if (staged_ != nullptr) {
    CommitStaged();
  }

  auto next = std::make_unique<Scenario>();
  next->name = scenario_->name;
  Status applied = ::btr::ApplyDelta(scenario_->topology, scenario_->workload, delta,
                                     &next->topology, &next->workload);
  if (!applied.ok()) {
    return applied;
  }
  auto next_planner =
      std::make_unique<Planner>(&next->topology, &next->workload, config_.planner);
  StrategyBuilder builder(next_planner.get(), config_.planner.planner_threads);
  StatusOr<Strategy> rebuilt = builder.Rebuild(*strategy_, *planner_, delta);
  if (!rebuilt.ok()) {
    return rebuilt.status();
  }

  auto staged = std::make_unique<StagedDelta>();
  staged->rollout_at = rollout_at;
  staged->ship_mode = ship_mode;
  if (rollout_at != kNoRollout) {
    // Diff deployed vs rebuilt into the rollout's shipment set. The blobs
    // are canonical serialized text, so the patches are provably minimal
    // and chained by content fingerprint (see strategy_patch.h).
    const std::string base_blob = SaveStrategy(*strategy_, planner_->graph(),
                                               scenario_->topology);
    const std::string target_blob =
        SaveStrategy(*rebuilt, next_planner->graph(), next->topology);
    StatusOr<StrategyUpdate> update =
        BuildStrategyUpdate(base_blob, target_blob, config_.wire_format);
    if (!update.ok()) {
      return update.status();
    }
    staged->update = std::make_shared<const StrategyUpdate>(std::move(*update));
  }
  staged->scenario = std::move(next);
  staged->planner = std::move(next_planner);
  staged->strategy = std::move(rebuilt).value();
  staged_ = std::move(staged);
  if (rollout_at == kNoRollout) {
    CommitStaged();
  }
  return Status::Ok();
}

const StrategyUpdate* BtrSystem::staged_update() const {
  return staged_ != nullptr ? staged_->update.get() : nullptr;
}

void BtrSystem::CommitStaged() {
  scenario_ = std::move(staged_->scenario);
  planner_ = std::move(staged_->planner);
  strategy_ = std::make_shared<const Strategy>(std::move(staged_->strategy));
  strategy_index_ = StrategyIndex(*strategy_);
  staged_.reset();
}

TransitionAnalysis BtrSystem::AnalyzeRecoveryBound() const {
  TransitionAnalysisConfig config;
  config.network = config_.planner.network;
  config.period = scenario_->workload.period();
  config.recovery_bound = config_.planner.recovery_bound;
  return AnalyzeTransitions(*strategy_, planner_->graph(), scenario_->topology, config);
}

StatusOr<RunReport> BtrSystem::Run(uint64_t periods) {
  if (!planned_) {
    return Status::FailedPrecondition("call Plan() before Run()");
  }
  for (const FaultInjection& inj : adversary_.injections()) {
    if (!inj.node.valid() || inj.node.value() >= scenario_->topology.node_count()) {
      return Status::InvalidArgument("fault injection on unknown node");
    }
  }

  // Pin the wire-frame floor to the smallest real protocol message for
  // EVERY run, sharded or not: the conservative lookahead is derived from
  // it, and the floor must be identical across shard counts for reports to
  // be too.
  NetworkConfig netcfg = config_.planner.network;
  netcfg.min_frame_bytes = std::max(netcfg.min_frame_bytes, kInstallNackBytes);
  const uint32_t shards =
      config_.shards != 0 ? config_.shards
                          : (scenario_->topology.node_count() < 16 ? 1 : 8);
  const ShardLayout layout = PartitionTopology(scenario_->topology, shards, netcfg);

  Simulator sim(config_.seed, layout);
  Network network(&sim, &scenario_->topology, netcfg);
  Rng key_rng(config_.seed ^ 0x5eedc0deULL);
  KeyStore keys(scenario_->topology.node_count(), &key_rng);
  Monitor monitor(&scenario_->workload, strategy_.get(), &adversary_,
                  config_.planner.recovery_bound);
  monitor.ConfigureShards(sim.shard_count());
  monitor.ReserveObservations(periods * scenario_->workload.SinkIds().size());

  RuntimeContext ctx;
  ctx.sim = &sim;
  ctx.network = &network;
  ctx.topo = &scenario_->topology;
  ctx.workload = &scenario_->workload;
  ctx.graph = &planner_->graph();
  ctx.strategy = strategy_.get();
  ctx.strategy_index = &strategy_index_;
  ctx.planner = planner_.get();
  ctx.keys = &keys;
  ctx.adversary = &adversary_;
  ctx.monitor = &monitor;
  ctx.config = config_.runtime;

  BtrRuntime runtime(ctx);
  runtime.Start(periods);
  if (staged_ != nullptr && staged_->update != nullptr) {
    // Replay the staged edit's dissemination over the control class while
    // the data plane keeps executing the deployed (pre-edit) strategy.
    // Distributor: the lowest-id node honest *at rollout time* — a
    // compromised distributor's shipments would be discarded by every node
    // that convicted it, so a rollout with no honest candidate is refused
    // rather than silently shipped into the void. A node whose transient
    // injection has healed before rollout_at is a legitimate candidate;
    // disqualifying on any registered injection would permanently ban it.
    NodeId distributor;
    for (uint32_t n = 0; n < scenario_->topology.node_count(); ++n) {
      if (adversary_.ActiveOn(NodeId(n), staged_->rollout_at) == nullptr) {
        distributor = NodeId(n);
        break;
      }
    }
    if (!distributor.valid()) {
      return Status::FailedPrecondition(
          "staged rollout needs a distributor that is honest at rollout time");
    }
    runtime.ScheduleStrategyInstall(staged_->rollout_at, staged_->update, distributor,
                                    staged_->ship_mode);
  }
  sim.RunToCompletion();

  RunReport report;
  report.periods = periods;
  report.simulated_time = sim.Now();
  report.events_executed = sim.events_executed();
  report.correctness = monitor.Evaluate(periods);
  report.network = network.stats();
  report.total_node_stats = runtime.TotalStats();
  report.install = runtime.install_report();
  for (size_t n = 0; n < scenario_->topology.node_count(); ++n) {
    report.per_node.push_back(runtime.node_stats(NodeId(static_cast<uint32_t>(n))));
  }

  // Degradation tallies, summed over nodes in id order. A node that went
  // beyond f stays degraded until the run ends (fault sets are
  // append-only), so its degraded window is [degraded_since, now).
  for (size_t n = 0; n < scenario_->topology.node_count(); ++n) {
    const NodeRuntime::DegradationStats& d =
        runtime.node(NodeId(static_cast<uint32_t>(n)))->degradation();
    report.degradation.beyond_f_lookups += d.beyond_f_lookups;
    report.degradation.fallback_switches += d.fallback_switches;
    if (d.degraded_since != kSimTimeNever) {
      report.degradation.degraded_time += report.simulated_time - d.degraded_since;
    }
  }
  const double node_time = static_cast<double>(report.simulated_time) *
                           static_cast<double>(scenario_->topology.node_count());
  if (node_time > 0.0) {
    report.degradation.coverage =
        1.0 - static_cast<double>(report.degradation.degraded_time) / node_time;
  }

  // One outcome per first manifestation per node.
  std::vector<NodeId> seen;
  for (const FaultInjection& inj : adversary_.injections()) {
    if (std::find(seen.begin(), seen.end(), inj.node) != seen.end()) {
      continue;
    }
    seen.push_back(inj.node);
    RunReport::FaultOutcome outcome;
    outcome.node = inj.node;
    outcome.behavior = inj.behavior;
    outcome.manifested_at = adversary_.ManifestTime(inj.node);
    outcome.first_conviction = runtime.FirstConvictionOf(inj.node);
    outcome.last_conviction = runtime.LastConvictionOf(inj.node);
    if (outcome.first_conviction != kSimTimeNever) {
      outcome.detection_latency = outcome.first_conviction - outcome.manifested_at;
    }
    if (outcome.first_conviction != kSimTimeNever && outcome.last_conviction != kSimTimeNever) {
      outcome.distribution_latency = outcome.last_conviction - outcome.first_conviction;
    }
    for (const RecoveryMeasurement& rm : report.correctness.recoveries) {
      if (rm.node == inj.node) {
        outcome.recovery_time = rm.recovery_time;
        break;
      }
    }
    report.faults.push_back(outcome);
  }
  if (staged_ != nullptr) {
    // The rollout has been disseminated; the edited system takes over at
    // the deployment boundary this run's end represents.
    CommitStaged();
  }
  return report;
}

}  // namespace btr
