#include "src/core/runtime.h"

#include <algorithm>
#include <cassert>

#include "src/common/exec_context.h"
#include "src/common/hash.h"
#include "src/common/log.h"
#include "src/core/golden.h"
#include "src/core/strategy_io.h"
#include "src/fmt/strategy_binary.h"

namespace btr {
namespace {

// XOR mask a value-corrupting adversary applies to its outputs.
constexpr uint64_t kCorruptionMask = 0xBAD0BAD0BAD0BAD0ULL;

// Buffer retention horizon, in periods.
constexpr uint64_t kBufferHorizon = 4;

// Evidence items batch-verified per verifier-loop chunk (signature checks
// for a chunk go through the KeyStore in one pass).
constexpr size_t kVerifyChunk = 8;

// Plan lookup on the recovery path: the flat O(1) index when the caller
// provided one, the strategy's own (hashed) lookup otherwise.
const Plan* LookupPlan(const RuntimeContext& ctx, const FaultSet& faults) {
  if (ctx.strategy_index != nullptr) {
    return ctx.strategy_index->Find(faults);
  }
  return ctx.strategy->Lookup(faults);
}

// Beyond-f fallback: the nearest covered mode (largest planned subset of
// `faults`, lexicographic-first tie-break — see plan.h).
const Plan* LookupNearestCoveredPlan(const RuntimeContext& ctx, const FaultSet& faults) {
  if (ctx.strategy_index != nullptr) {
    return ctx.strategy_index->FindNearestCovered(faults);
  }
  return ctx.strategy->LookupNearestCovered(faults);
}

}  // namespace

// ---------------------------------------------------------------------------
// InstallEngine
// ---------------------------------------------------------------------------

uint64_t InstallEngine::StateFingerprint() const {
  Hasher hasher;
  hasher.AddString(slice_);
  hasher.AddString(image_);
  hasher.Add(strategy_fp_);
  hasher.Add(version_);
  hasher.Add(node_.value());
  return hasher.Digest();
}

Status InstallEngine::InstallFull(const std::string& slice_text, uint64_t expected_sfp) {
  if (fmt::IsV4Image(slice_text)) {
    // Image path: verify → map → swap, no text is parsed or rendered. The
    // deep validation walks every section and body payload off to the
    // side, so a forged-count / out-of-range-reference image is rejected
    // here with the engine bit-identical (bit flips never get this far —
    // the image seal catches them at Map).
    StatusOr<fmt::BinaryStrategyView> view = fmt::BinaryStrategyView::Map(slice_text);
    if (!view.ok()) {
      ++stats_.patches_rejected;
      return view.status();
    }
    if (!view->is_slice() || view->node() != node_.value()) {
      ++stats_.patches_rejected;
      return Status::InvalidArgument("image is not this node's strategy slice");
    }
    if (view->slice_sfp() != expected_sfp) {
      ++stats_.patches_rejected;
      return Status::FailedPrecondition(
          "slice image does not chain to the expected strategy fingerprint");
    }
    const Status deep = fmt::ValidateStrategyImage(slice_text);
    if (!deep.ok()) {
      ++stats_.patches_rejected;
      return deep;
    }
    image_ = slice_text;
    slice_.clear();
    strategy_fp_ = expected_sfp;
    ++version_;
    ++stats_.full_installs;
    ++stats_.image_installs;
    return Status::Ok();
  }
  StatusOr<uint64_t> sfp = ValidateSliceText(slice_text, node_.value());
  if (!sfp.ok()) {
    ++stats_.patches_rejected;
    return sfp.status();
  }
  if (*sfp != expected_sfp) {
    ++stats_.patches_rejected;
    return Status::FailedPrecondition(
        "slice does not chain to the expected strategy fingerprint; refusing to install");
  }
  slice_ = slice_text;
  image_.clear();
  strategy_fp_ = *sfp;
  ++version_;
  ++stats_.full_installs;
  return Status::Ok();
}

Status InstallEngine::ApplyPatch(const std::string& patch_text) {
  if (!installed()) {
    ++stats_.patches_rejected;
    return Status::FailedPrecondition("no base slice installed; patch has nothing to apply to");
  }
  const bool patch_is_image = fmt::IsV4Image(patch_text);
  StatusOr<StrategyPatch> patch =
      patch_is_image ? fmt::DecodePatchImage(patch_text) : ParseStrategyPatch(patch_text);
  if (!patch.ok()) {
    ++stats_.patches_rejected;
    return patch.status();
  }
  // An image-mode base materializes its canonical text off to the side;
  // the installed image stays untouched until the patch fully verifies.
  const std::string* base = &slice_;
  std::string materialized;
  if (!image_.empty()) {
    StatusOr<std::string> text = fmt::DecodeStrategyImage(image_);
    if (!text.ok()) {
      ++stats_.patches_rejected;
      return text.status();
    }
    materialized = std::move(*text);
    base = &materialized;
  }
  // Verify-then-swap: the new slice is fully assembled and fingerprint-
  // checked before the installed state changes.
  StatusOr<std::string> applied = ApplyPatchToSlice(*base, *patch);
  if (!applied.ok()) {
    ++stats_.patches_rejected;
    return applied.status();
  }
  slice_ = std::move(*applied);
  image_.clear();
  strategy_fp_ = patch->target_fp;
  ++version_;
  ++stats_.patches_applied;
  if (patch_is_image) {
    ++stats_.image_installs;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BtrRuntime
// ---------------------------------------------------------------------------

BtrRuntime::BtrRuntime(const RuntimeContext& ctx) : ctx_(ctx) {
  assert(ctx_.sim != nullptr && ctx_.network != nullptr && ctx_.strategy != nullptr);
  const uint32_t shards = ctx_.sim->shard_count();
  arenas_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    arenas_.push_back(std::make_shared<BlockPool>());
    if (shards > 1) {
      arenas_.back()->BindOwnerShard(s);
    }
  }
  conviction_shards_.resize(shards);
  install_shards_.resize(shards);
  const size_t n = ctx_.topo->node_count();
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const NodeId id(static_cast<uint32_t>(i));
    nodes_.push_back(std::make_unique<NodeRuntime>(
        this, ctx_, id, ctx_.keys->SignerFor(id),
        arenas_[ctx_.sim->ShardOf(static_cast<uint32_t>(i))]));
    NodeRuntime* node = nodes_.back().get();
    ctx_.network->SetReceiver(id, [node](const Packet& packet) { node->OnPacket(packet); });
  }
}

BtrRuntime::~BtrRuntime() = default;

void BtrRuntime::Start(uint64_t periods) {
  periods_ = periods;
  const Plan* root = LookupPlan(ctx_, FaultSet());
  assert(root != nullptr && "strategy must contain the fault-free plan");
  ctx_.network->SetRouting(root->routing);

  const SimDuration period_len = ctx_.workload->period();
  for (uint64_t p = 0; p < periods; ++p) {
    ctx_.sim->At(static_cast<SimTime>(p) * period_len, [this, p]() {
      for (auto& node : nodes_) {
        node->BeginPeriod(p);
      }
    });
  }

  // Adversary side effects visible to the network layer. A transient
  // injection (finite `until`) undoes its side effect when it heals; the
  // heal consults ActiveOn so an overlapping still-active injection of the
  // same behavior keeps the node down.
  for (const FaultInjection& inj : ctx_.adversary->injections()) {
    ctx_.sim->At(inj.manifest_at, [this, inj]() {
      switch (inj.behavior) {
        case FaultBehavior::kCrash:
          ctx_.network->SetNodeDown(inj.node, true);
          break;
        case FaultBehavior::kOmission:
          ctx_.network->SetRelayDrop(inj.node, true);
          break;
        default:
          break;
      }
    });
    if (inj.until == kSimTimeNever || (inj.behavior != FaultBehavior::kCrash &&
                                       inj.behavior != FaultBehavior::kOmission)) {
      continue;
    }
    ctx_.sim->At(inj.until, [this, inj]() {
      const FaultInjection* still = ctx_.adversary->ActiveOn(inj.node, ctx_.sim->Now());
      if (inj.behavior == FaultBehavior::kCrash &&
          (still == nullptr || still->behavior != FaultBehavior::kCrash)) {
        ctx_.network->SetNodeDown(inj.node, false);
      }
      if (inj.behavior == FaultBehavior::kOmission &&
          (still == nullptr || still->behavior != FaultBehavior::kOmission)) {
        ctx_.network->SetRelayDrop(inj.node, false);
      }
      if (still == nullptr) {
        // A healed node rejoins the dissemination conversation: its stale
        // beacon makes neighbors reset their Trickle intervals and re-offer,
        // and its resume request picks the transfer up where it stopped.
        nodes_[inj.node.value()]->WakeDissem();
      }
    });
  }
}

void BtrRuntime::ScheduleStrategyInstall(SimTime at,
                                         std::shared_ptr<const StrategyUpdate> update,
                                         NodeId distributor, InstallShipMode mode) {
  assert(update != nullptr && update->base_slices.size() == nodes_.size() &&
         update->slice_fps.size() == nodes_.size());
  update_ = std::move(update);
  install_distributor_ = distributor;
  fallbacks_sent_.assign(nodes_.size(), 0);
  ctx_.sim->At(at, [this, mode]() {
    install_report_.started_at = ctx_.sim->Now();
    // The base strategy was installed out of band before deployment (the
    // paper's nodes boot with it on flash); seed the engines, no traffic.
    for (auto& node : nodes_) {
      node->EnsureBaseInstalled(*update_);
    }
    const size_t d = install_distributor_.value();
    if (mode == InstallShipMode::kPatchSlices) {
      nodes_[d]->ApplyLocalInstall(*update_);
    } else {
      nodes_[d]->InstallTargetSlice(*update_);
    }
    if (ctx_.config.dissem.mode == DissemMode::kGossip) {
      // Gossip: no shipments yet — every node starts a Trickle agent; the
      // distributor's beacons announce the target and neighbors pull,
      // hop by hop.
      for (auto& node : nodes_) {
        node->StartGossip(install_distributor_, mode);
      }
      return;
    }
    ShipNextInstall(0, mode);
  });
}

SimDuration BtrRuntime::EstimateInstallTx(NodeId dst, uint32_t bytes) const {
  const RoutingTable* routing = ctx_.network->routing();
  if (routing != nullptr) {
    const Route& route = routing->RouteBetween(install_distributor_, dst);
    if (!route.empty()) {
      return ctx_.network->SerializationTime(route[0].link, install_distributor_,
                                             TrafficClass::kControl, bytes);
    }
  }
  // No routing yet (or dst unreachable): a 0 here would collapse the whole
  // rollout into a same-instant burst that overflows the control guardian.
  // Fall back to the serialization time (frame floor included) on the
  // distributor's first attached link so shipments stay spaced.
  const std::vector<LinkId>& links = ctx_.topo->LinksAt(install_distributor_);
  if (links.empty()) {
    return 1;
  }
  return ctx_.network->SerializationTime(links[0], install_distributor_,
                                         TrafficClass::kControl,
                                         std::max(bytes, kInstallNackBytes));
}

void BtrRuntime::ShipNextInstall(uint32_t index, InstallShipMode mode) {
  if (update_ == nullptr) {
    return;
  }
  while (index < nodes_.size() && NodeId(index) == install_distributor_) {
    ++index;
  }
  if (index >= nodes_.size()) {
    return;
  }
  const NodeId dst(index);
  uint32_t bytes = 0;
  if (mode == InstallShipMode::kPatchSlices) {
    auto msg = std::make_shared<StrategyPatchMessage>();
    msg->patch = update_->patch_slices[index];
    msg->base_fp = update_->base_fp;
    msg->target_fp = update_->target_fp;
    msg->distributor = install_distributor_;
    bytes = static_cast<uint32_t>(msg->patch.size());
    install_report_.patch_bytes_sent += bytes;
    ctx_.network->Send(install_distributor_, dst, bytes, TrafficClass::kControl,
                       std::move(msg));
  } else {
    // Naive baseline: the entire target blob to every node; the receiver
    // carves out its own slice on arrival.
    auto msg = std::make_shared<StrategyFullMessage>();
    msg->slice = update_->target_blob;
    msg->target_fp = update_->target_fp;
    // Fingerprint of the shipped bytes: the target fingerprint itself for
    // a text blob, the image hash when the wire format is v4.
    msg->content_fp = update_->target_blob_fp;
    msg->distributor = install_distributor_;
    bytes = static_cast<uint32_t>(msg->slice.size());
    install_report_.full_bytes_sent += bytes;
    ctx_.network->Send(install_distributor_, dst, bytes, TrafficClass::kControl,
                       std::move(msg));
  }
  ctx_.sim->At(ctx_.sim->Now() + EstimateInstallTx(dst, bytes),
               [this, index, mode]() { ShipNextInstall(index + 1, mode); });
}

void BtrRuntime::HandleInstallNack(NodeId from) {
  if (update_ == nullptr || from.value() >= update_->full_slices.size()) {
    return;
  }
  if (fallbacks_sent_[from.value()] >= kMaxInstallFallbacksPerNode) {
    // Warn exactly once per node per rollout: the counter keeps advancing
    // past the cap so later nacks from the same node stay silent instead of
    // re-logging "giving up" on every retry.
    if (fallbacks_sent_[from.value()] == kMaxInstallFallbacksPerNode) {
      ++fallbacks_sent_[from.value()];
      BTR_LOG(kWarning, "install")
          << "node " << from.value() << " still nacking after "
          << kMaxInstallFallbacksPerNode << " full-slice shipments; giving up on it";
    }
    return;
  }
  ++fallbacks_sent_[from.value()];
  ++install_report_.fallbacks;
  auto msg = std::make_shared<StrategyFullMessage>();
  msg->slice = update_->full_slices[from.value()];
  msg->target_fp = update_->target_fp;
  msg->content_fp = update_->slice_fps[from.value()];
  msg->distributor = install_distributor_;
  const uint32_t bytes = static_cast<uint32_t>(msg->slice.size());
  install_report_.full_bytes_sent += bytes;
  ctx_.network->Send(install_distributor_, from, bytes, TrafficClass::kControl,
                     std::move(msg));
}

void BtrRuntime::NotifyInstalled(NodeId node) {
  (void)node;
  const ExecContext& exec = ThisThreadExec();
  InstallShard& sh = install_shards_[exec.worker ? exec.shard : 0];
  ++sh.installed;
  sh.last_at = std::max(sh.last_at, ctx_.sim->Now());
}

const InstallRunReport& BtrRuntime::install_report() const {
  install_report_final_ = install_report_;
  size_t installed = 0;
  SimTime last = -1;
  for (const InstallShard& sh : install_shards_) {
    installed += sh.installed;
    last = std::max(last, sh.last_at);
  }
  // Gossip counters: sums over the per-node agents, in node order — shard-
  // layout invariant by construction.
  if (ctx_.config.dissem.mode == DissemMode::kGossip && update_ != nullptr) {
    install_report_final_.gossip = true;
    for (const auto& node : nodes_) {
      if (const DissemAgentStats* stats = node->gossip_stats()) {
        install_report_final_.dissem.MergeFrom(*stats);
      }
    }
    install_report_final_.fallbacks += install_report_final_.dissem.fallbacks;
    install_report_final_.patch_bytes_sent += install_report_final_.dissem.patch_payload_bytes;
    install_report_final_.full_bytes_sent += install_report_final_.dissem.full_payload_bytes;
  }
  install_report_final_.nodes_installed = installed;
  // Completion time is the moment the last node reached the target — a
  // property of the event set, so the max over shards is layout-invariant.
  install_report_final_.completed_at =
      installed == nodes_.size() && installed > 0 ? last : kSimTimeNever;
  return install_report_final_;
}

const NodeStats& BtrRuntime::node_stats(NodeId node) const {
  return nodes_[node.value()]->stats();
}

NodeStats BtrRuntime::TotalStats() const {
  NodeStats total;
  for (const auto& node : nodes_) {
    const NodeStats& s = node->stats();
    total.busy += s.busy;
    total.crypto += s.crypto;
    total.verify_used += s.verify_used;
    total.evidence_generated += s.evidence_generated;
    total.evidence_validated += s.evidence_validated;
    total.evidence_rejected += s.evidence_rejected;
    total.evidence_dropped_queue += s.evidence_dropped_queue;
    total.path_declarations += s.path_declarations;
    total.mode_switches += s.mode_switches;
    total.evidence_queue_peak = std::max(total.evidence_queue_peak, s.evidence_queue_peak);
  }
  return total;
}

void BtrRuntime::RecordConviction(const ConvictionEvent& event) {
  const ExecContext& exec = ThisThreadExec();
  conviction_shards_[exec.worker ? exec.shard : 0].items.push_back(event);
}

const std::vector<ConvictionEvent>& BtrRuntime::convictions() const {
  size_t total = 0;
  for (const ConvictionShard& sh : conviction_shards_) {
    total += sh.items.size();
  }
  // Buffers only grow, so a size mismatch is an exact staleness test.
  if (convictions_merged_.size() != total) {
    convictions_merged_.clear();
    convictions_merged_.reserve(total);
    for (const ConvictionShard& sh : conviction_shards_) {
      convictions_merged_.insert(convictions_merged_.end(), sh.items.begin(), sh.items.end());
    }
    // Canonical order. (convicted, by) pairs are unique — Convict() records
    // at most once per observer — so the order is total and layout-invariant.
    std::sort(convictions_merged_.begin(), convictions_merged_.end(),
              [](const ConvictionEvent& a, const ConvictionEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.convicted != b.convicted) return a.convicted < b.convicted;
                if (a.by != b.by) return a.by < b.by;
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
  }
  return convictions_merged_;
}

SimTime BtrRuntime::FirstConvictionOf(NodeId node) const {
  SimTime first = kSimTimeNever;
  for (const ConvictionEvent& ev : convictions()) {
    if (ev.convicted != node) {
      continue;
    }
    if (ctx_.adversary->ManifestTime(ev.by) != kSimTimeNever) {
      continue;  // only honest observers count
    }
    first = std::min(first, ev.at);
  }
  return first;
}

SimTime BtrRuntime::LastConvictionOf(NodeId node) const {
  SimTime last = kSimTimeNever;
  SimTime max_seen = -1;
  size_t honest_total = 0;
  size_t honest_convinced = 0;
  for (const auto& nr : nodes_) {
    if (ctx_.adversary->ManifestTime(nr->id()) != kSimTimeNever) {
      continue;
    }
    ++honest_total;
    if (nr->fault_set().Contains(node)) {
      ++honest_convinced;
    }
  }
  for (const ConvictionEvent& ev : convictions()) {
    if (ev.convicted != node || ctx_.adversary->ManifestTime(ev.by) != kSimTimeNever) {
      continue;
    }
    max_seen = std::max(max_seen, ev.at);
  }
  if (honest_total > 0 && honest_convinced == honest_total && max_seen >= 0) {
    last = max_seen;
  }
  return last;
}

NodeRuntime* BtrRuntime::node(NodeId id) { return nodes_[id.value()].get(); }

// ---------------------------------------------------------------------------
// NodeRuntime
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(BtrRuntime* owner, const RuntimeContext& ctx, NodeId id, Signer signer,
                         std::shared_ptr<BlockPool> arena)
    : owner_(owner),
      ctx_(ctx),
      id_(id),
      signer_(signer),
      validator_(ctx.keys, ctx.workload, ctx.config.validation),
      arena_(std::move(arena)),
      install_(id),
      blame_(ctx.config.blame_threshold, ctx.config.blame_window_periods) {
  plan_ = LookupPlan(ctx_, FaultSet());
  // Each node reads time through its own (periodically resynchronized)
  // clock: a deterministic per-node residual offset bounded by
  // max_clock_offset. The detector's epsilon must cover it.
  if (ctx_.config.max_clock_offset > 0) {
    Hasher h;
    h.Add(id.value()).Add(uint32_t{0xc1c});
    const SimDuration span = 2 * ctx_.config.max_clock_offset + 1;
    const SimDuration offset =
        static_cast<SimDuration>(h.Digest() % static_cast<uint64_t>(span)) -
        ctx_.config.max_clock_offset;
    clock_ = LocalClock(offset, 0.0);
  }
}

const FaultInjection* NodeRuntime::ActiveFault() const {
  return ctx_.adversary->ActiveOn(id_, ctx_.sim->Now());
}

bool NodeRuntime::Crashed() const {
  const FaultInjection* f = ActiveFault();
  return f != nullptr && f->behavior == FaultBehavior::kCrash;
}

void NodeRuntime::BeginPeriod(uint64_t period) {
  current_period_ = period;
  if (pending_plan_ != nullptr) {
    plan_ = pending_plan_;
    pending_plan_ = nullptr;
    ++stats_.mode_switches;
    quiet_until_period_ = period + ctx_.config.timing_quiet_periods;
    // Routing is a property of the plan; whoever switches installs it (all
    // honest nodes converge to the same plan, so this is idempotent).
    ctx_.network->SetRouting(plan_->routing);
  }
  if (plan_ == nullptr || Crashed()) {
    return;
  }

  // Garbage-collect stale buffers. Every container keys the period in the
  // packed key's low bits, so one predicate covers them all. The sweep is
  // O(table capacity), so it runs once per horizon rather than per period:
  // stale keys are never probed again (all lookups are exact (id, period)
  // keys for recent periods), so later deletion is behaviorally invisible
  // and memory stays bounded by ~2x the horizon.
  if (period >= kBufferHorizon && period % kBufferHorizon == 0) {
    const uint64_t floor = period - kBufferHorizon;
    const auto stale = [floor](uint64_t key) { return PeriodOfPackedKey(key) < floor; };
    inputs_.EraseIf([&stale](uint64_t key, const ReceivedInput&) { return stale(key); });
    replica_records_.EraseIf(
        [&stale](uint64_t key, const std::shared_ptr<const OutputRecord>&) {
          return stale(key);
        });
    heartbeats_seen_.EraseIf(stale);
    declared_.EraseIf(stale);
  }

  const SimDuration period_len = ctx_.workload->period();
  const SimTime base = static_cast<SimTime>(period) * period_len;
  for (const ScheduleEntry& entry : plan_->tables()[id_.value()].entries()) {
    // Jobs take effect at completion time: outputs are sent when the WCET
    // window closes. The event is owned by this node (BeginPeriod runs on
    // the exclusive driver path, so the schedule lands directly on the
    // node's shard queue).
    ctx_.sim->AtActor(id_.value(), base + entry.start + entry.duration,
                      [this, job = entry.job, period]() { ExecuteJob(job, period); });
  }
}

void NodeRuntime::ExecuteJob(uint32_t aug_id, uint64_t period) {
  if (Crashed() || plan_ == nullptr) {
    return;
  }
  // A mode switch between scheduling and execution invalidates the job.
  if (!plan_->placement()[aug_id].valid() || plan_->placement()[aug_id] != id_) {
    return;
  }
  const AugTask& task = ctx_.graph->task(aug_id);
  stats_.busy += task.wcet;
  switch (task.kind) {
    case AugKind::kWorkload:
      ExecuteWorkload(task, period);
      break;
    case AugKind::kChecker:
      ExecuteChecker(task, period);
      break;
    case AugKind::kVerifier:
      ExecuteVerifier(task, period);
      break;
  }
}

void NodeRuntime::ExecuteWorkload(const AugTask& task, uint64_t period) {
  const TaskSpec& spec = ctx_.workload->task(task.workload_task);
  const FaultInjection* fault = ActiveFault();

  // Migration state must have arrived before a stateful task can run.
  if (spec.state_bytes > 0 && !StateReady(spec.id)) {
    return;
  }

  // Gather inputs (sources have none). `claimed` is moved into the record
  // it signs (inline storage, no allocation); `values` is reused scratch.
  OutputRecord::SignedInputs claimed;
  std::vector<InputValue>& values = values_scratch_;
  values.clear();
  std::vector<TaskId> missing;
  uint64_t digest = 0;
  if (spec.kind == TaskKind::kSource) {
    digest = SourceValue(spec.id, period);
  } else {
    for (const ChannelSpec& ch : ctx_.workload->Inputs(spec.id)) {
      const ReceivedInput* in = inputs_.Find(PackIdPeriod(ch.from.value(), period));
      if (in == nullptr) {
        missing.push_back(ch.from);
        // Producer output missing: declare the path to the producer's host —
        // unless the producer sent a gap notice (it is alive but starved
        // upstream; blaming it would cascade omission blame down the whole
        // dataflow), or we are inside a mode-switch quiet window (a migrated
        // producer may legitimately be waiting for its state transfer).
        const uint32_t producer_primary = ctx_.graph->PrimaryOf(ch.from);
        const NodeId producer_node = plan_->placement()[producer_primary];
        const std::shared_ptr<const OutputRecord>* gap_rec =
            replica_records_.Find(PackTaskReplicaPeriod(ch.from.value(), 0, period));
        const bool excused_by_gap = gap_rec != nullptr && (*gap_rec)->gap;
        if (producer_node.valid() && producer_node != id_ && !excused_by_gap &&
            period >= quiet_until_period_ && pending_plan_ == nullptr) {
          DeclarePath(producer_node, id_, period);
        }
        continue;
      }
      claimed.push_back(SignedInput{ch.from, in->digest, in->value_sig});
      values.push_back(InputValue{ch.from, in->digest});
    }
    if (!missing.empty()) {
      SendGapNotice(task, period, std::move(missing));
      return;  // cannot produce this period's output
    }
    std::sort(claimed.begin(), claimed.end(),
              [](const SignedInput& a, const SignedInput& b) { return a.producer < b.producer; });
    std::sort(values.begin(), values.end(),
              [](const InputValue& a, const InputValue& b) { return a.producer < b.producer; });
    digest = ComputeOutput(spec.id, period, values);
  }

  const bool corrupt = fault != nullptr && fault->behavior == FaultBehavior::kValueCorruption;
  if (corrupt) {
    digest ^= kCorruptionMask;
  }

  if (spec.kind == TaskKind::kSink) {
    // Actuation: hand the command to the physical world (the monitor).
    ctx_.monitor->RecordSinkOutput(spec.id, period, digest, ctx_.sim->Now());
    return;
  }

  // Build and sign the output record.
  auto record = NewPayload<OutputRecord>();
  record->task = spec.id;
  record->replica = task.replica;
  record->period = period;
  record->digest = digest;
  record->claimed_inputs = std::move(claimed);
  record->sender = id_;
  record->value_sig = signer_.Sign(InputContentDigest(spec.id, period, digest));
  record->sender_sig = signer_.Sign(record->SealDigest());
  stats_.crypto += 2 * ctx_.config.crypto.sign_cost;

  // Destination set.
  std::vector<Dest>& dests = dests_scratch_;
  dests.clear();
  const uint32_t record_bytes = record->WireBytes();
  if (task.replica == 0) {
    for (const ChannelSpec& ch : ctx_.workload->Outputs(spec.id)) {
      const uint32_t bytes = std::max(ch.message_bytes, record_bytes);
      for (uint32_t consumer : ctx_.graph->ReplicasOf(ch.to)) {
        const NodeId to = plan_->placement()[consumer];
        if (to.valid()) {
          dests.push_back(Dest{to, bytes});
        }
      }
      const uint32_t consumer_chk = ctx_.graph->CheckerOf(ch.to);
      if (consumer_chk != AugmentedGraph::kNone && plan_->placement()[consumer_chk].valid()) {
        dests.push_back(Dest{plan_->placement()[consumer_chk], bytes});
      }
    }
  }
  const uint32_t own_chk = ctx_.graph->CheckerOf(spec.id);
  if (own_chk != AugmentedGraph::kNone && plan_->placement()[own_chk].valid()) {
    dests.push_back(Dest{plan_->placement()[own_chk], record_bytes});
  }

  // Adversarial send behavior.
  if (fault != nullptr && fault->behavior == FaultBehavior::kOmission) {
    return;  // executes but stays silent
  }
  std::shared_ptr<OutputRecord> equivocal;
  if (fault != nullptr && fault->behavior == FaultBehavior::kEquivocate) {
    // The copy starts with an unsealed digest cache, so mutating it below
    // cannot leak the original's digest.
    equivocal = NewPayload<OutputRecord>(*record);
    equivocal->digest = digest ^ kCorruptionMask;
    equivocal->value_sig =
        signer_.Sign(InputContentDigest(spec.id, period, equivocal->digest));
    equivocal->sender_sig = signer_.Sign(equivocal->SealDigest());
    stats_.crypto += 2 * ctx_.config.crypto.sign_cost;
  }
  size_t index = 0;
  for (const Dest& dest : dests) {
    if (fault != nullptr && fault->behavior == FaultBehavior::kSelectiveOmission &&
        dest.node == fault->target) {
      continue;
    }
    std::shared_ptr<const OutputRecord> to_send = record;
    if (equivocal != nullptr && index % 2 == 1) {
      to_send = equivocal;
    }
    ++index;
    if (fault != nullptr && fault->behavior == FaultBehavior::kDelay) {
      ctx_.sim->After(fault->delay, [this, to_send, dest, period]() {
        SendRecord(to_send, dest.node, dest.bytes, period);
      });
    } else {
      SendRecord(to_send, dest.node, dest.bytes, period);
    }
  }
}

void NodeRuntime::SendRecord(const std::shared_ptr<const OutputRecord>& record, NodeId to,
                             uint32_t wire_bytes, uint64_t /*period*/) {
  if (Crashed()) {
    return;
  }
  ctx_.network->Send(id_, to, wire_bytes, TrafficClass::kForeground, record);
}

void NodeRuntime::SendGapNotice(const AugTask& task, uint64_t period,
                                std::vector<TaskId> missing) {
  const FaultInjection* fault = ActiveFault();
  if (fault != nullptr && (fault->behavior == FaultBehavior::kCrash ||
                           fault->behavior == FaultBehavior::kOmission)) {
    return;  // a silent adversary stays silent
  }
  const TaskSpec& spec = ctx_.workload->task(task.workload_task);
  auto record = NewPayload<OutputRecord>();
  record->task = spec.id;
  record->replica = task.replica;
  record->period = period;
  record->sender = id_;
  record->gap = true;
  record->gap_missing.assign(missing.begin(), missing.end());
  record->sender_sig = signer_.Sign(record->SealDigest());
  stats_.crypto += ctx_.config.crypto.sign_cost;

  const uint32_t bytes = record->WireBytes();
  std::vector<NodeId> dests;
  if (task.replica == 0) {
    for (const ChannelSpec& ch : ctx_.workload->Outputs(spec.id)) {
      for (uint32_t consumer : ctx_.graph->ReplicasOf(ch.to)) {
        if (plan_->placement()[consumer].valid()) {
          dests.push_back(plan_->placement()[consumer]);
        }
      }
      const uint32_t consumer_chk = ctx_.graph->CheckerOf(ch.to);
      if (consumer_chk != AugmentedGraph::kNone && plan_->placement()[consumer_chk].valid()) {
        dests.push_back(plan_->placement()[consumer_chk]);
      }
    }
  }
  const uint32_t own_chk = ctx_.graph->CheckerOf(spec.id);
  if (own_chk != AugmentedGraph::kNone && plan_->placement()[own_chk].valid()) {
    dests.push_back(plan_->placement()[own_chk]);
  }
  for (NodeId to : dests) {
    if (fault != nullptr && fault->behavior == FaultBehavior::kSelectiveOmission &&
        to == fault->target) {
      continue;
    }
    ctx_.network->Send(id_, to, bytes, TrafficClass::kForeground, record);
  }
}

void NodeRuntime::ExecuteChecker(const AugTask& task, uint64_t period) {
  const TaskSpec& spec = ctx_.workload->task(task.workload_task);
  const FaultInjection* fault = ActiveFault();
  if (fault != nullptr) {
    // A compromised checker gains nothing by honest checking; evidence
    // fabrication is handled by the kEvidenceFlood verifier behavior.
    return;
  }

  // Source inputs are replayable by anyone (a source's output is a pure
  // function of (task, period)), so the checker validates its own copies of
  // them first; a corrupted sensor node is convicted directly.
  for (const ChannelSpec& ch : ctx_.workload->Inputs(spec.id)) {
    if (ctx_.workload->task(ch.from).kind != TaskKind::kSource) {
      continue;
    }
    const std::shared_ptr<const OutputRecord>* src_found =
        replica_records_.Find(PackTaskReplicaPeriod(ch.from.value(), 0, period));
    if (src_found == nullptr) {
      continue;
    }
    const std::shared_ptr<const OutputRecord>& src_rec = *src_found;
    stats_.crypto += ctx_.config.crypto.verify_cost;
    if (!ctx_.keys->Verify(src_rec->sender_sig, src_rec->ContentDigest())) {
      continue;
    }
    if (src_rec->digest != SourceValue(ch.from, period)) {
      auto ev = NewPayload<EvidenceRecord>();
      ev->kind = EvidenceKind::kCommission;
      ev->declarer = id_;
      ev->period = period;
      ev->record = src_rec;
      ev->declarer_sig = signer_.Sign(ev->SealDigest());
      EmitEvidence(std::move(ev));
    }
  }

  for (uint32_t replica_aug : ctx_.graph->ReplicasOf(spec.id)) {
    const AugTask& rep = ctx_.graph->task(replica_aug);
    const NodeId rep_node = plan_->placement()[replica_aug];
    if (!rep_node.valid()) {
      continue;  // replica shed in this mode
    }
    const std::shared_ptr<const OutputRecord>* found =
        replica_records_.Find(PackTaskReplicaPeriod(spec.id.value(), rep.replica, period));
    if (found == nullptr) {
      // Same quiet-window rule as for missing inputs: a migrated replica may
      // still be waiting for state right after a mode switch.
      if (rep_node != id_ && period >= quiet_until_period_ && pending_plan_ == nullptr) {
        DeclarePath(rep_node, id_, period);
      }
      continue;
    }
    const std::shared_ptr<const OutputRecord>& rec = *found;

    // Attribution first: unattributable records are treated as missing.
    stats_.crypto += ctx_.config.crypto.verify_cost;
    if (!ctx_.keys->Verify(rec->sender_sig, rec->ContentDigest())) {
      DeclarePath(rep_node, id_, period);
      continue;
    }

    if (rec->gap) {
      // The replica claims starvation. Plausible iff at least one of the
      // inputs it names is also missing (or gapped) in our own copies — we
      // receive the same producer primaries it does. An implausible gap is
      // treated as a missing record (path blame), which is as far as the
      // paper's omission attribution goes.
      bool plausible = false;
      for (TaskId producer : rec->gap_missing) {
        if (!inputs_.Contains(PackIdPeriod(producer.value(), period))) {
          plausible = true;
          break;
        }
      }
      if (!plausible && rep_node != id_ && period >= quiet_until_period_ &&
          pending_plan_ == nullptr) {
        DeclarePath(rep_node, id_, period);
      }
      continue;
    }

    // Claimed-input signatures: a record whose inputs do not verify is
    // itself commission evidence.
    bool inner_ok = true;
    for (const SignedInput& in : rec->claimed_inputs) {
      stats_.crypto += ctx_.config.crypto.verify_cost;
      if (!ctx_.keys->Verify(in.producer_sig,
                             InputContentDigest(in.producer, period, in.digest))) {
        inner_ok = false;
        break;
      }
    }
    if (!inner_ok) {
      auto ev = NewPayload<EvidenceRecord>();
      ev->kind = EvidenceKind::kCommission;
      ev->declarer = id_;
      ev->period = period;
      ev->record = rec;
      ev->declarer_sig = signer_.Sign(ev->SealDigest());
      EmitEvidence(std::move(ev));
      continue;
    }

    // Equivocation: the replica's claimed inputs vs my own copies.
    for (const SignedInput& in : rec->claimed_inputs) {
      const ReceivedInput* mine = inputs_.Find(PackIdPeriod(in.producer.value(), period));
      if (mine == nullptr || mine->digest == in.digest) {
        continue;
      }
      auto ev = NewPayload<EvidenceRecord>();
      ev->kind = EvidenceKind::kEquivocation;
      ev->declarer = id_;
      ev->period = period;
      ev->eq_task = in.producer;
      ev->eq_a = SignedInput{in.producer, mine->digest, mine->value_sig};
      ev->eq_b = in;
      ev->declarer_sig = signer_.Sign(ev->SealDigest());
      EmitEvidence(std::move(ev));
    }

    // Replay on the record's own claimed inputs.
    uint64_t expected;
    if (spec.kind == TaskKind::kSource) {
      expected = SourceValue(spec.id, period);
    } else {
      std::vector<InputValue>& values = values_scratch_;
      values.clear();
      values.reserve(rec->claimed_inputs.size());
      for (const SignedInput& in : rec->claimed_inputs) {
        values.push_back(InputValue{in.producer, in.digest});
      }
      std::sort(values.begin(), values.end(),
                [](const InputValue& a, const InputValue& b) { return a.producer < b.producer; });
      expected = ComputeOutput(spec.id, period, values);
    }
    if (expected != rec->digest) {
      auto ev = NewPayload<EvidenceRecord>();
      ev->kind = EvidenceKind::kCommission;
      ev->declarer = id_;
      ev->period = period;
      ev->record = rec;
      ev->declarer_sig = signer_.Sign(ev->SealDigest());
      EmitEvidence(std::move(ev));
    }
  }
}

void NodeRuntime::ExecuteVerifier(const AugTask& task, uint64_t period) {
  const FaultInjection* fault = ActiveFault();
  if (fault != nullptr && fault->behavior == FaultBehavior::kEvidenceFlood) {
    // A smart flooder keeps up appearances: it still heartbeats so that
    // path-blame cannot convict it for going silent.
    if (ctx_.config.heartbeats) {
      // One immutable heartbeat payload, shared across all neighbor sends.
      auto hb = NewPayload<Heartbeat>();
      hb->from = id_;
      hb->period = period;
      hb->sig = signer_.Sign(HeartbeatDigest(id_, period));
      for (NodeId n : ctx_.topo->Neighbors(id_)) {
        ctx_.network->Send(id_, n, ctx_.config.heartbeat_bytes, TrafficClass::kControl, hb);
      }
    }
    // DoS: craft expensive-to-validate but ultimately invalid evidence.
    // The record is internally consistent (replay matches), so a validator
    // must pay the full replay cost before discovering there is nothing to
    // convict. Endorsement-abuse (if enabled) convicts us after the first.
    TaskId heavy;
    SimDuration heavy_wcet = -1;
    for (const TaskSpec& spec : ctx_.workload->tasks()) {
      if (spec.kind != TaskKind::kSource && spec.wcet > heavy_wcet) {
        heavy_wcet = spec.wcet;
        heavy = spec.id;
      }
    }
    if (!heavy.valid()) {
      return;
    }
    for (uint32_t i = 0; i < fault->flood_rate; ++i) {
      auto rec = NewPayload<OutputRecord>();
      rec->task = heavy;
      rec->replica = 0;
      rec->period = period;
      rec->sender = id_;
      std::vector<InputValue> values;
      for (const ChannelSpec& ch : ctx_.workload->Inputs(heavy)) {
        const uint64_t junk = HashCombine(period, ch.from.value() * 7919 + i);
        rec->claimed_inputs.push_back(SignedInput{
            ch.from, junk, signer_.Sign(InputContentDigest(ch.from, period, junk))});
        values.push_back(InputValue{ch.from, junk});
      }
      std::sort(values.begin(), values.end(),
                [](const InputValue& a, const InputValue& b) { return a.producer < b.producer; });
      rec->digest = ComputeOutput(heavy, period, values);
      rec->value_sig = signer_.Sign(InputContentDigest(heavy, period, rec->digest));
      rec->sender_sig = signer_.Sign(rec->SealDigest());

      auto ev = NewPayload<EvidenceRecord>();
      ev->kind = EvidenceKind::kCommission;
      ev->declarer = id_;
      ev->period = period;
      ev->record = std::move(rec);
      ev->declarer_sig = signer_.Sign(ev->SealDigest());
      BroadcastEvidence(std::move(ev), NodeId::Invalid());
    }
    return;
  }
  if (fault != nullptr && fault->behavior != FaultBehavior::kDelay &&
      fault->behavior != FaultBehavior::kValueCorruption) {
    return;  // other behaviors do not run the honest verifier
  }

  // Heartbeats to one-hop neighbors: one immutable payload, signed once,
  // shared across every neighbor send.
  if (ctx_.config.heartbeats) {
    std::shared_ptr<const Heartbeat> hb;
    for (NodeId n : ctx_.topo->Neighbors(id_)) {
      if (fault_set_.Contains(n)) {
        continue;
      }
      if (hb == nullptr) {
        auto fresh = NewPayload<Heartbeat>();
        fresh->from = id_;
        fresh->period = period;
        fresh->sig = signer_.Sign(HeartbeatDigest(id_, period));
        hb = std::move(fresh);
      }
      ctx_.network->Send(id_, n, ctx_.config.heartbeat_bytes, TrafficClass::kControl, hb);
    }
    // Check heartbeats: declare a path only after two *consecutive* missing
    // beats (transient congestion — e.g. a state transfer sharing the
    // control class right after a mode switch — must not accumulate blame),
    // and never during the post-switch quiet window.
    if (period >= 2 && period >= quiet_until_period_) {
      for (NodeId n : ctx_.topo->Neighbors(id_)) {
        if (fault_set_.Contains(n)) {
          continue;
        }
        // Short-circuit: in the common case the last beat arrived and the
        // period-2 probe never runs.
        if (!heartbeats_seen_.Contains(PackIdPeriod(n.value(), period - 1)) &&
            !heartbeats_seen_.Contains(PackIdPeriod(n.value(), period - 2))) {
          DeclarePath(n, id_, period - 1);
        }
      }
    }
  }

  // Drain the evidence queue within the verification budget, a batch at a
  // time: the declarer-signature checks of each chunk go through the
  // validator in one pass (one KeyStore call, memoized digests), which
  // amortizes the host-side crypto work. The *modeled* costs charged per
  // item are identical to per-item validation — the budget semantics
  // (the item that exhausts the budget still completes; later items and
  // pool duplicates carry over exactly as before) are bit-for-bit stable.
  SimDuration used = 0;
  const SimDuration budget = task.wcet;
  while (!evidence_queue_.empty() && used <= budget) {
    PendingEvidence items[kVerifyChunk];
    size_t m = 0;
    while (m < kVerifyChunk && !evidence_queue_.empty()) {
      items[m] = std::move(evidence_queue_.front());
      evidence_queue_.pop_front();
      ++m;
    }
    // Batch the validations of items not already pool-deduplicated.
    // Validation is pure, so pre-validating a chunk cannot reorder any
    // observable state change.
    const EvidenceRecord* batch[kVerifyChunk];
    EvidenceVerdict verdicts[kVerifyChunk];
    size_t verdict_of[kVerifyChunk];
    size_t n_batch = 0;
    for (size_t i = 0; i < m; ++i) {
      if (pool_.Contains(items[i].evidence->ContentDigest())) {
        verdict_of[i] = kVerifyChunk;  // known duplicate: skip for free below
      } else {
        batch[n_batch] = items[i].evidence.get();
        verdict_of[i] = n_batch++;
      }
    }
    validator_.ValidateBatch(batch, n_batch, verdicts);

    // Apply sequentially, with the exact per-item budget/dedup rules.
    size_t next = 0;
    for (; next < m; ++next) {
      if (used > budget) {
        break;
      }
      PendingEvidence& item = items[next];
      // Re-check the pool: an earlier item in this chunk may have inserted
      // the same content.
      if (pool_.Contains(item.evidence->ContentDigest())) {
        continue;  // duplicate: dedup is (modeled as) free
      }
      assert(verdict_of[next] < kVerifyChunk);
      const EvidenceVerdict& verdict = verdicts[verdict_of[next]];
      used += verdict.cost;
      pool_.Insert(item.evidence);
      if (verdict.valid) {
        ++stats_.evidence_validated;
        ApplyValidEvidence(*item.evidence, verdict);
        BroadcastEvidence(item.evidence, item.forwarder);
      } else {
        ++stats_.evidence_rejected;
        if (ctx_.config.endorsement_abuse && item.endorsement.signer.valid() &&
            item.endorsement.signer != id_) {
          // The forwarder vouched for garbage: that endorsement is itself
          // evidence (the paper's flooding countermeasure).
          auto abuse = NewPayload<EvidenceRecord>();
          abuse->kind = EvidenceKind::kEndorsementAbuse;
          abuse->declarer = id_;
          abuse->period = period;
          abuse->inner = item.evidence;
          abuse->endorsement_sig = item.endorsement;
          abuse->declarer_sig = signer_.Sign(abuse->SealDigest());
          EmitEvidence(std::move(abuse));
        }
      }
    }
    if (next < m) {
      // Budget exhausted mid-chunk: the unapplied tail returns to the queue
      // front, in order, exactly as if it had never been popped.
      for (size_t i = m; i > next; --i) {
        evidence_queue_.push_front(std::move(items[i - 1]));
      }
      break;
    }
  }
  stats_.verify_used += used;
  stats_.evidence_queue_peak = std::max(stats_.evidence_queue_peak, evidence_queue_.size());
}

void NodeRuntime::OnPacket(const Packet& packet) {
  if (Crashed() || plan_ == nullptr) {
    return;
  }
  // Isolation: a convicted node is excluded from the current plan but (being
  // Byzantine) may well keep executing its stale one. Nothing it originates
  // may enter our buffers — its old-plan records would otherwise win the
  // first-value-wins input race against the honest replacement primary.
  if (fault_set_.Contains(packet.src)) {
    return;
  }
  // Dispatch on the payload's kind tag (one virtual call) instead of
  // probing RTTI once per candidate type per packet.
  switch (packet.payload->kind()) {
    case PayloadKind::kOutputRecord: {
      auto record = std::static_pointer_cast<const OutputRecord>(packet.payload);
      if (fault_set_.Contains(record->sender)) {
        return;
      }
      HandleOutputRecord(packet, *record);
      const uint64_t key =
          PackTaskReplicaPeriod(record->task.value(), record->replica, record->period);
      replica_records_.InsertOrAssign(key, std::move(record));
      return;
    }
    case PayloadKind::kEvidence: {
      const auto& msg = static_cast<const EvidenceMessage&>(*packet.payload);
      // Isolation: once a node is convicted, nothing it forwards is worth
      // validating (this is what actually ends an evidence-flood DoS).
      if (fault_set_.Contains(msg.forwarder)) {
        return;
      }
      if (evidence_queue_.size() >= ctx_.config.evidence_queue_limit) {
        ++stats_.evidence_dropped_queue;
        return;
      }
      evidence_queue_.push_back(PendingEvidence{msg.evidence, msg.forwarder, msg.endorsement});
      stats_.evidence_queue_peak = std::max(stats_.evidence_queue_peak, evidence_queue_.size());
      return;
    }
    case PayloadKind::kHeartbeat: {
      const auto& hb = static_cast<const Heartbeat&>(*packet.payload);
      if (ctx_.keys->Verify(hb.sig, HeartbeatDigest(hb.from, hb.period))) {
        heartbeats_seen_.Insert(PackIdPeriod(hb.from.value(), hb.period));
      }
      return;
    }
    case PayloadKind::kStateRequest: {
      const auto& req = static_cast<const StateRequest&>(*packet.payload);
      // Serve state if this node hosts any replica of the task.
      const FaultInjection* fault = ActiveFault();
      if (fault != nullptr && fault->behavior != FaultBehavior::kDelay) {
        return;  // compromised donors do not help
      }
      const TaskSpec& spec = ctx_.workload->task(req.task);
      bool hosting = false;
      for (uint32_t rep : ctx_.graph->ReplicasOf(req.task)) {
        if (plan_->placement()[rep] == id_) {
          hosting = true;
          break;
        }
      }
      if (!hosting || spec.state_bytes == 0) {
        return;
      }
      auto transfer = NewPayload<StateTransfer>();
      transfer->task = req.task;
      transfer->new_replica = req.new_replica;
      transfer->donor = id_;
      ctx_.network->Send(id_, req.requester, spec.state_bytes, TrafficClass::kControl,
                         std::move(transfer));
      return;
    }
    case PayloadKind::kStateTransfer: {
      const auto& transfer = static_cast<const StateTransfer&>(*packet.payload);
      awaiting_state_.Erase(transfer.task.value());
      return;
    }
    case PayloadKind::kStrategyPatch: {
      HandleStrategyPatch(packet, static_cast<const StrategyPatchMessage&>(*packet.payload));
      return;
    }
    case PayloadKind::kStrategyFull: {
      HandleStrategyFull(packet, static_cast<const StrategyFullMessage&>(*packet.payload));
      return;
    }
    case PayloadKind::kInstallNack: {
      const auto& nack = static_cast<const InstallNackMessage&>(*packet.payload);
      owner_->HandleInstallNack(nack.from);
      return;
    }
    case PayloadKind::kDissemBeacon: {
      HandleDissemBeacon(packet, static_cast<const DissemBeaconMessage&>(*packet.payload));
      return;
    }
    case PayloadKind::kDissemRequest: {
      HandleDissemRequest(packet, static_cast<const DissemRequestMessage&>(*packet.payload));
      return;
    }
    case PayloadKind::kDissemChunk: {
      HandleDissemChunk(packet, static_cast<const DissemChunkMessage&>(*packet.payload));
      return;
    }
    case PayloadKind::kOther:
      return;  // foreign payload (baseline protocols, tests): not ours
  }
}

void NodeRuntime::EnsureBaseInstalled(const StrategyUpdate& update) {
  if (install_.installed()) {
    return;
  }
  const Status st = install_.InstallFull(update.base_slices[id_.value()], update.base_fp);
  if (!st.ok()) {
    BTR_LOG(kWarning, "install") << "node " << id_.value()
                              << ": base slice install failed: " << st.ToString();
  }
}

void NodeRuntime::ApplyLocalInstall(const StrategyUpdate& update) {
  if (install_.strategy_fingerprint() == update.target_fp) {
    return;
  }
  if (install_.ApplyPatch(update.patch_slices[id_.value()]).ok()) {
    owner_->NotifyInstalled(id_);
    return;
  }
  // Local fallback: the distributor holds the full slices already.
  ++owner_->install_report_.fallbacks;
  if (install_.InstallFull(update.full_slices[id_.value()], update.target_fp).ok()) {
    owner_->NotifyInstalled(id_);
  }
}

void NodeRuntime::HandleStrategyPatch(const Packet& packet, const StrategyPatchMessage& msg) {
  install_.CountReceivedBytes(packet.size_bytes);
  if (install_.strategy_fingerprint() == msg.target_fp) {
    return;  // duplicate shipment; already on the target strategy
  }
  if (install_.ApplyPatch(msg.patch).ok()) {
    owner_->NotifyInstalled(id_);
    return;
  }
  // Verify-then-swap left the installed slice untouched; escalate to a
  // full (non-delta) slice from the distributor.
  SendInstallNack(msg.distributor, msg.target_fp);
}

void NodeRuntime::InstallTargetSlice(const StrategyUpdate& update) {
  if (install_.strategy_fingerprint() == update.target_fp) {
    return;
  }
  if (install_.InstallFull(update.full_slices[id_.value()], update.target_fp).ok()) {
    owner_->NotifyInstalled(id_);
  }
}

void NodeRuntime::HandleStrategyFull(const Packet& packet, const StrategyFullMessage& msg) {
  install_.CountReceivedBytes(packet.size_bytes);
  if (install_.strategy_fingerprint() == msg.target_fp) {
    return;
  }
  // Content-verify the shipment before touching anything: the text's own
  // SFP record chains to the parent blob, not to its own bytes, so a
  // flipped table-row byte would otherwise survive structural validation.
  if (FingerprintStrategyText(msg.slice) != msg.content_fp) {
    SendInstallNack(msg.distributor, msg.target_fp);
    return;
  }
  // The fallback path ships this node's slice; the naive full-blob
  // baseline ships the whole strategy and the node carves its own slice.
  // A v4 full-blob image decodes to its canonical text first (a slice
  // image passes straight through to the engine's zero-parse path).
  const std::string* slice_text = &msg.slice;
  std::string carved;
  std::string decoded;
  const std::string* blob = nullptr;
  if (msg.slice.rfind("BTRSTRATEGY", 0) == 0) {
    blob = &msg.slice;
  } else if (fmt::IsV4Image(msg.slice)) {
    StatusOr<fmt::BinaryStrategyView> view = fmt::BinaryStrategyView::Map(msg.slice);
    if (!view.ok()) {
      SendInstallNack(msg.distributor, msg.target_fp);
      return;
    }
    if (!view->is_slice()) {
      StatusOr<std::string> text = view->DecodeText();
      if (!text.ok()) {
        SendInstallNack(msg.distributor, msg.target_fp);
        return;
      }
      decoded = std::move(*text);
      blob = &decoded;
    }
  }
  if (blob != nullptr) {
    StatusOr<std::string> extracted = ExtractSlice(*blob, id_.value());
    if (!extracted.ok()) {
      SendInstallNack(msg.distributor, msg.target_fp);
      return;
    }
    carved = std::move(*extracted);
    slice_text = &carved;
  }
  const Status st = install_.InstallFull(*slice_text, msg.target_fp);
  if (!st.ok()) {
    // Content-verified, so this is not transit damage: the distributor's
    // own slice does not chain to the target. Re-requesting cannot help.
    BTR_LOG(kWarning, "install") << "node " << id_.value()
                              << ": full-slice install refused: " << st.ToString();
    return;
  }
  owner_->NotifyInstalled(id_);
}

void NodeRuntime::SendInstallNack(NodeId distributor, uint64_t target_fp) {
  auto nack = NewPayload<InstallNackMessage>();
  nack->from = id_;
  nack->target_fp = target_fp;
  ctx_.network->Send(id_, distributor, kInstallNackBytes, TrafficClass::kControl,
                     std::move(nack));
}

// ---------------------------------------------------------------------------
// Gossip dissemination (Trickle agents; see src/net/dissemination.h)
// ---------------------------------------------------------------------------

void NodeRuntime::StartGossip(NodeId distributor, BtrRuntime::InstallShipMode mode) {
  DissemConfig config = ctx_.config.dissem;
  if (config.beacon_period <= 0) {
    // Default beat: one workload period — beacons ride the same cadence the
    // omission detector already tolerates.
    config.beacon_period = ctx_.workload->period();
  }
  gossip_ = std::make_unique<GossipSession>(config, id_.value(), owner_->update_->target_fp,
                                            ctx_.topo->node_count());
  gossip_->blob_mode = mode == BtrRuntime::InstallShipMode::kFullBlob;
  gossip_->relay = id_ == distributor;
  gossip_->busy_links.assign(ctx_.topo->link_count(), 0);
  gossip_->serving_to.assign(ctx_.topo->node_count(), 0);
  if (Crashed()) {
    return;  // the agent starts dormant; the heal event wakes it
  }
  gossip_->timer.Start(ctx_.sim->Now());
  ScheduleTrickle();
}

void NodeRuntime::WakeDissem() {
  if (gossip_ == nullptr || gossip_->gave_up || Crashed()) {
    return;
  }
  // Any transfer that was in flight when we went down is stale; the next
  // target beacon re-requests with the resume offset (rx keeps the
  // contiguous prefix already received).
  gossip_->pending_from = NodeId::Invalid();
  ResetTrickle();
}

const DissemAgentStats* NodeRuntime::gossip_stats() const {
  return gossip_ != nullptr ? &gossip_->stats : nullptr;
}

bool NodeRuntime::DissemSilenced() const {
  const FaultInjection* fault = ActiveFault();
  return fault != nullptr && fault->behavior != FaultBehavior::kDelay &&
         fault->behavior != FaultBehavior::kValueCorruption;
}

uint64_t NodeRuntime::DissemAnnounceFp() const { return install_.strategy_fingerprint(); }

bool NodeRuntime::DissemInstalled() const {
  return gossip_ != nullptr && install_.strategy_fingerprint() == gossip_->target_fp;
}

void NodeRuntime::ScheduleTrickle() {
  const uint32_t gen = ++gossip_->timer_generation;
  ctx_.sim->AtActor(id_.value(), gossip_->timer.fire_at(),
                    [this, gen]() { OnTrickleFire(gen); });
  ctx_.sim->AtActor(id_.value(), gossip_->timer.end_at(),
                    [this, gen]() { OnTrickleEnd(gen); });
}

void NodeRuntime::OnTrickleFire(uint32_t generation) {
  if (gossip_ == nullptr || generation != gossip_->timer_generation ||
      !gossip_->timer.running()) {
    return;
  }
  if (Crashed()) {
    gossip_->timer.Stop();  // dormant until the heal event pokes us
    return;
  }
  if (!gossip_->timer.ShouldSendAtFire()) {
    ++gossip_->stats.beacons_suppressed;
    return;
  }
  if (!DissemSilenced()) {
    SendDissemBeacon();
  }
}

void NodeRuntime::OnTrickleEnd(uint32_t generation) {
  if (gossip_ == nullptr || generation != gossip_->timer_generation ||
      !gossip_->timer.running()) {
    return;
  }
  if (Crashed()) {
    gossip_->timer.Stop();
    return;
  }
  if (gossip_->timer.OnIntervalEnd(ctx_.sim->Now())) {
    ScheduleTrickle();
  }
  // else: dormant — the event stream for this agent stops here, which is
  // what lets the simulation drain after convergence.
}

void NodeRuntime::ResetTrickle() {
  if (gossip_ == nullptr || gossip_->gave_up) {
    return;
  }
  const SimTime now = ctx_.sim->Now();
  if (!gossip_->timer.running()) {
    gossip_->timer.Start(now);
    ScheduleTrickle();
  } else if (gossip_->timer.OnInconsistent(now)) {
    ScheduleTrickle();
  }
}

void NodeRuntime::SendDissemBeacon() {
  std::shared_ptr<const DissemBeaconMessage> beacon;
  for (NodeId n : ctx_.topo->Neighbors(id_)) {
    if (fault_set_.Contains(n)) {
      continue;
    }
    if (beacon == nullptr) {
      auto fresh = NewPayload<DissemBeaconMessage>();
      fresh->from = id_;
      fresh->announced_fp = DissemAnnounceFp();
      fresh->target_fp = gossip_->target_fp;
      beacon = std::move(fresh);
    }
    ctx_.network->Send(id_, n, kDissemBeaconBytes, TrafficClass::kControl, beacon);
    ++gossip_->stats.beacons_sent;
    gossip_->stats.bytes_sent += kDissemBeaconBytes;
  }
}

void NodeRuntime::HandleDissemBeacon(const Packet& packet, const DissemBeaconMessage& msg) {
  (void)packet;
  if (gossip_ == nullptr || msg.target_fp != gossip_->target_fp) {
    return;
  }
  GossipSession& g = *gossip_;
  g.peer_fp[msg.from.value()] = msg.announced_fp;
  if (msg.announced_fp == DissemAnnounceFp()) {
    g.timer.OnConsistent();
    return;
  }
  // Inconsistent neighborhood: whichever side is fresher should talk soon.
  ResetTrickle();
  g.timer.NoteActivity();
  if (msg.announced_fp == g.target_fp && !DissemInstalled() && !g.gave_up &&
      !g.pending_from.valid() && !DissemSilenced()) {
    SendDissemRequest(msg.from);
  }
}

void NodeRuntime::SendDissemRequest(NodeId to) {
  GossipSession& g = *gossip_;
  // Resume only when the partial transfer matches the artifact family we
  // would request now; otherwise restart from chunk 0.
  const bool blob_family = g.want_blob || g.blob_mode;
  if (g.rx.active && DissemContentIsPatch(g.rx.content) == blob_family) {
    g.rx = DissemReassembly{};
  }
  auto req = NewPayload<DissemRequestMessage>();
  req->from = id_;
  req->target_fp = g.target_fp;
  req->have_chunks = g.rx.active ? g.rx.received : 0;
  req->want_blob = g.want_blob;
  ctx_.network->Send(id_, to, kDissemRequestBytes, TrafficClass::kControl, std::move(req));
  ++g.stats.requests_sent;
  g.stats.bytes_sent += kDissemRequestBytes;
  g.pending_from = to;
  g.progress_mark = g.rx.active ? g.rx.received : 0;
  const uint32_t attempt = ++g.request_attempt;
  ctx_.sim->AtActor(id_.value(), ctx_.sim->Now() + 4 * ctx_.workload->period(),
                    [this, attempt]() { CheckDissemProgress(attempt); });
}

void NodeRuntime::CheckDissemProgress(uint32_t attempt) {
  if (gossip_ == nullptr || attempt != gossip_->request_attempt) {
    return;  // superseded by a newer request
  }
  GossipSession& g = *gossip_;
  if (DissemInstalled() || !g.pending_from.valid()) {
    return;
  }
  const uint32_t received = g.rx.active ? g.rx.received : 0;
  if (received > g.progress_mark) {
    g.progress_mark = received;
    ctx_.sim->AtActor(id_.value(), ctx_.sim->Now() + 4 * ctx_.workload->period(),
                      [this, attempt]() { CheckDissemProgress(attempt); });
    return;
  }
  // Stalled (server down, chunks dropped): release the slot and rejoin the
  // conversation; the next target beacon re-requests from the resume offset.
  g.pending_from = NodeId::Invalid();
  ResetTrickle();
}

void NodeRuntime::HandleDissemRequest(const Packet& packet, const DissemRequestMessage& msg) {
  (void)packet;
  if (gossip_ == nullptr || msg.target_fp != gossip_->target_fp) {
    return;
  }
  GossipSession& g = *gossip_;
  g.timer.NoteActivity();
  if (!g.relay || !DissemInstalled() || DissemSilenced()) {
    return;  // nothing servable (or not allowed to transmit)
  }
  const uint32_t to = msg.from.value();
  if (to >= g.serving_to.size() || g.serving_to[to] != 0) {
    return;  // a transfer to this node is already queued or in flight
  }
  const LinkId link = LinkToNeighbor(msg.from);
  if (!link.valid()) {
    return;  // gossip serves one-hop neighbors only
  }
  const bool blob = msg.want_blob || g.blob_mode;
  // Leaf optimization: a single-neighbor requester can never relay, so it
  // gets only its own slice; everyone else receives the full artifact and
  // becomes a relay. This is where gossip undercuts unicast on bus bytes.
  const bool leaf = ctx_.topo->Neighbors(msg.from).size() <= 1;
  const DissemContent content =
      blob ? (leaf ? DissemContent::kBlobSlice : DissemContent::kBlobFull)
           : (leaf ? DissemContent::kPatchSlice : DissemContent::kPatchFull);
  g.serving_to[to] = 1;
  g.serve_queue.push_back(PendingServe{msg.from, content, msg.have_chunks, link, 0});
  MaybeServeNext();
}

LinkId NodeRuntime::LinkToNeighbor(NodeId peer) const {
  for (LinkId link : ctx_.topo->LinksAt(id_)) {
    if (ctx_.topo->Attaches(link, peer)) {
      return link;
    }
  }
  return LinkId();
}

// The relay protocol ships one full artifact per hop; what a relay serves a
// leaf is the slice it can carve deterministically from its own verified
// copy (SaveStrategyPatchSlice / ExtractSlice). Reading the carved texts off
// the shared StrategyUpdate models exactly that without holding N copies of
// identical bytes per node.
const std::string* NodeRuntime::DissemArtifact(DissemContent content, NodeId to) const {
  const StrategyUpdate* update = owner_->update_.get();
  if (update == nullptr) {
    return nullptr;
  }
  switch (content) {
    case DissemContent::kPatchFull:
      return &update->patch_full;
    case DissemContent::kBlobFull:
      return &update->target_blob;
    case DissemContent::kPatchSlice:
      return to.value() < update->patch_slices.size() ? &update->patch_slices[to.value()]
                                                      : nullptr;
    case DissemContent::kBlobSlice:
      return to.value() < update->full_slices.size() ? &update->full_slices[to.value()]
                                                     : nullptr;
  }
  return nullptr;
}

void NodeRuntime::MaybeServeNext() {
  if (gossip_ == nullptr) {
    return;
  }
  GossipSession& g = *gossip_;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < g.serve_queue.size(); ++i) {
      if (g.busy_links[g.serve_queue[i].link.value()] != 0) {
        continue;
      }
      PendingServe serve = g.serve_queue[i];
      g.serve_queue.erase(g.serve_queue.begin() + static_cast<ptrdiff_t>(i));
      progress = true;
      const std::string* artifact = DissemArtifact(serve.content, serve.to);
      if ((artifact == nullptr || artifact->empty()) &&
          serve.content == DissemContent::kPatchFull) {
        // A hand-built update without the unsliced patch text: downgrade to
        // the per-node slice (the requester installs but cannot relay).
        serve.content = DissemContent::kPatchSlice;
        artifact = DissemArtifact(serve.content, serve.to);
      }
      if (artifact == nullptr || artifact->empty()) {
        g.serving_to[serve.to.value()] = 0;
        break;  // rollout torn down; drop the serve
      }
      switch (serve.content) {
        case DissemContent::kPatchFull:
          serve.content_fp = owner_->update_->patch_full_fp;
          break;
        case DissemContent::kBlobFull:
          serve.content_fp = owner_->update_->target_blob_fp;
          break;
        case DissemContent::kBlobSlice:
          serve.content_fp = owner_->update_->slice_fps[serve.to.value()];
          break;
        case DissemContent::kPatchSlice:
          serve.content_fp = FingerprintStrategyText(*artifact);
          break;
      }
      // Pace: one chunk's serialization time fits in pace_fraction of a
      // period, so a heartbeat queued behind the transfer waits far less
      // than the two consecutive periods an omission declaration needs.
      const SimDuration tx4k =
          ctx_.network->SerializationTime(serve.link, id_, TrafficClass::kControl, 4096);
      const SimDuration per_byte = std::max<SimDuration>(tx4k / 4096, 1);
      const ChunkPlan plan =
          PlanChunks(artifact->size(), per_byte, ctx_.workload->period(), g.config);
      if (serve.start_chunk >= plan.total) {
        serve.start_chunk = 0;  // the requester's resume claim predates this plan
      }
      if (serve.start_chunk > 0) {
        ++g.stats.resumes;
      }
      g.busy_links[serve.link.value()] = 1;
      SendDissemChunk(serve, serve.start_chunk, plan);
      break;  // rescan: the next queued serve may use a different link
    }
  }
}

void NodeRuntime::SendDissemChunk(PendingServe serve, uint32_t seq, ChunkPlan plan) {
  if (gossip_ == nullptr) {
    return;
  }
  GossipSession& g = *gossip_;
  const std::string* artifact = DissemArtifact(serve.content, serve.to);
  const bool done = artifact == nullptr || seq >= plan.total;
  const bool aborted = Crashed() || DissemSilenced() || fault_set_.Contains(serve.to);
  if (done || aborted) {
    g.busy_links[serve.link.value()] = 0;
    g.serving_to[serve.to.value()] = 0;
    if (done && !aborted && artifact != nullptr) {
      ++g.stats.serves;
      if (DissemContentIsPatch(serve.content)) {
        g.stats.patch_payload_bytes += artifact->size();
      } else {
        g.stats.full_payload_bytes += artifact->size();
      }
    }
    if (!Crashed()) {
      MaybeServeNext();
    }
    return;
  }
  const uint64_t total_bytes = artifact->size();
  const uint64_t offset = static_cast<uint64_t>(seq) * plan.chunk_bytes;
  const uint32_t payload =
      static_cast<uint32_t>(std::min<uint64_t>(plan.chunk_bytes, total_bytes - offset));
  const uint32_t wire = payload + kDissemChunkHeaderBytes;
  auto msg = NewPayload<DissemChunkMessage>();
  msg->from = id_;
  msg->target_fp = g.target_fp;
  msg->content = serve.content;
  msg->seq = seq;
  msg->total = plan.total;
  msg->content_fp = serve.content_fp;
  if (seq + 1 == plan.total) {
    msg->text = *artifact;  // only the final chunk carries the text
  }
  ctx_.network->Send(id_, serve.to, wire, TrafficClass::kControl, std::move(msg));
  ++g.stats.chunks_sent;
  g.stats.bytes_sent += wire;
  const SimDuration tx =
      ctx_.network->SerializationTime(serve.link, id_, TrafficClass::kControl, wire);
  ctx_.sim->AtActor(id_.value(), ctx_.sim->Now() + ChunkSpacing(tx, g.config),
                    [this, serve, seq, plan]() { SendDissemChunk(serve, seq + 1, plan); });
}

void NodeRuntime::HandleDissemChunk(const Packet& packet, const DissemChunkMessage& msg) {
  if (gossip_ == nullptr || msg.target_fp != gossip_->target_fp) {
    return;
  }
  GossipSession& g = *gossip_;
  g.timer.NoteActivity();
  install_.CountReceivedBytes(packet.size_bytes);
  if (DissemInstalled() || g.gave_up) {
    return;  // late duplicates
  }
  DissemReassembly& rx = g.rx;
  const bool matches = rx.active && rx.content == msg.content &&
                       rx.content_fp == msg.content_fp && rx.total == msg.total;
  if (!matches) {
    if (msg.seq != 0) {
      return;  // mid-stream chunk of a transfer we are not assembling
    }
    rx = DissemReassembly{};
    rx.active = true;
    rx.content = msg.content;
    rx.content_fp = msg.content_fp;
    rx.total = msg.total;
  }
  if (msg.seq != rx.received) {
    return;  // gap (a dropped chunk): the progress timeout re-requests
  }
  ++rx.received;
  if (rx.received < rx.total) {
    return;
  }
  // Final chunk carries the artifact text; content-verify before touching
  // the engine (the fingerprint chain alone cannot catch a flipped byte).
  rx = DissemReassembly{};
  g.pending_from = NodeId::Invalid();
  if (FingerprintStrategyText(msg.text) != msg.content_fp) {
    return;  // corrupt in transit: the next beacon triggers a clean re-pull
  }
  ApplyDissemArtifact(msg.content, msg.text, msg.from);
}

void NodeRuntime::ApplyDissemArtifact(DissemContent content, const std::string& text,
                                      NodeId server) {
  GossipSession& g = *gossip_;
  Status st = Status::Ok();
  switch (content) {
    case DissemContent::kPatchSlice:
      st = install_.ApplyPatch(text);
      break;
    case DissemContent::kPatchFull: {
      StatusOr<StrategyPatch> patch =
          fmt::IsV4Image(text) ? fmt::DecodePatchImage(text) : ParseStrategyPatch(text);
      if (patch.ok()) {
        StatusOr<std::string> sliced = SaveStrategyPatchSlice(*patch, id_.value());
        st = sliced.ok() ? install_.ApplyPatch(*sliced) : sliced.status();
      } else {
        st = patch.status();
      }
      break;
    }
    case DissemContent::kBlobFull: {
      // A v4 blob image decodes to canonical text before carving; the
      // carved slice installs through the text path either way.
      const std::string* blob = &text;
      std::string decoded_text;
      if (fmt::IsV4Image(text)) {
        StatusOr<std::string> decoded = fmt::DecodeStrategyImage(text);
        if (!decoded.ok()) {
          st = decoded.status();
          break;
        }
        decoded_text = std::move(*decoded);
        blob = &decoded_text;
      }
      StatusOr<std::string> carved = ExtractSlice(*blob, id_.value());
      st = carved.ok() ? install_.InstallFull(*carved, g.target_fp) : carved.status();
      break;
    }
    case DissemContent::kBlobSlice:
      st = install_.InstallFull(text, g.target_fp);
      break;
  }
  if (st.ok()) {
    if (DissemContentIsFull(content)) {
      g.relay = true;  // we hold a verified full artifact and can re-carve it
    }
    owner_->NotifyInstalled(id_);
    // Fresh version on board: reset so the next hop hears about it quickly.
    ResetTrickle();
    return;
  }
  if (DissemContentIsPatch(content)) {
    // The patch does not chain to our installed base: fall back to the blob
    // artifact from the same server (gossip's analogue of the install nack).
    ++g.stats.fallbacks;
    g.want_blob = true;
    g.rx = DissemReassembly{};
    if (!DissemSilenced()) {
      SendDissemRequest(server);
    }
    return;
  }
  // A content-verified blob refused to install: re-pulling cannot help.
  BTR_LOG(kWarning, "install") << "node " << id_.value()
                            << ": gossip blob install refused: " << st.ToString();
  g.gave_up = true;
  g.timer.Stop();  // go silent so the neighborhood can go dormant
}

void NodeRuntime::HandleOutputRecord(const Packet& packet, const OutputRecord& record) {
  if (ctx_.config.timing_checks) {
    CheckArrivalWindow(packet, record);
  }
  if (record.replica == 0 && !record.gap) {
    // First value wins; an equivocator cannot rewrite what it already sent.
    inputs_.Emplace(PackIdPeriod(record.task.value(), record.period),
                    ReceivedInput{record.digest, record.value_sig, packet.delivered_at});
  }
}

void NodeRuntime::CheckArrivalWindow(const Packet& packet, const OutputRecord& record) {
  if (current_period_ < quiet_until_period_ || pending_plan_ != nullptr) {
    return;  // windows are in flux around a mode switch
  }
  const std::vector<uint32_t>& reps = ctx_.graph->ReplicasOf(record.task);
  if (record.replica >= reps.size()) {
    return;
  }
  const uint32_t producer_aug = reps[record.replica];
  const NodeId producer_node = plan_->placement()[producer_aug];
  if (!producer_node.valid() || producer_node != record.sender || producer_node == id_) {
    return;
  }
  if (plan_->start()[producer_aug] < 0) {
    return;
  }
  const SimDuration period_len = ctx_.workload->period();
  const AugTask& producer = ctx_.graph->task(producer_aug);
  const SimTime expected_send = static_cast<SimTime>(record.period) * period_len +
                                plan_->start()[producer_aug] + producer.wcet;
  const SimDuration budget = plan_->ArrivalBudget(*ctx_.graph, producer_aug, id_);
  if (budget < 0) {
    return;  // no planned edge toward this node; nothing to check against
  }
  const SimTime lo = expected_send - ctx_.config.epsilon;
  const SimTime hi = expected_send + budget + ctx_.config.epsilon;
  // The arrival is timestamped by this node's own clock; epsilon absorbs
  // the bounded residual skew.
  const SimTime observed = clock_.Read(packet.delivered_at);
  if (observed >= lo && observed <= hi) {
    return;
  }
  if (plan_->routing->HopCount(producer_node, id_) == 1) {
    // Direct link: the MAC timestamp attests the sender's lateness.
    auto ev = NewPayload<EvidenceRecord>();
    ev->kind = EvidenceKind::kTiming;
    ev->declarer = id_;
    ev->period = record.period;
    ev->record = NewPayload<OutputRecord>(record);
    ev->observed_arrival = observed;
    ev->window_lo = lo;
    ev->window_hi = hi;
    ev->declarer_sig = signer_.Sign(ev->SealDigest());
    EmitEvidence(std::move(ev));
  } else {
    // Multi-hop: a relay might be responsible; only declare the path.
    DeclarePath(producer_node, id_, record.period);
  }
}

void NodeRuntime::DeclarePath(NodeId a, NodeId b, uint64_t period) {
  const uint32_t lo = std::min(a.value(), b.value());
  const uint32_t hi = std::max(a.value(), b.value());
  if (!declared_.Insert(PackNodePairPeriod(lo, hi, period))) {
    return;
  }
  if (fault_set_.Contains(a) || fault_set_.Contains(b)) {
    return;  // already isolated; no point piling on declarations
  }
  ++stats_.path_declarations;
  BTR_LOG(kDebug, "runtime") << ToString(id_) << " declares path (" << ToString(a) << ","
                             << ToString(b) << ") period " << period;
  auto ev = NewPayload<EvidenceRecord>();
  ev->kind = EvidenceKind::kPathDeclaration;
  ev->declarer = id_;
  ev->period = period;
  ev->path_a = a;
  ev->path_b = b;
  ev->declarer_sig = signer_.Sign(ev->SealDigest());
  EmitEvidence(std::move(ev));
}

void NodeRuntime::EmitEvidence(std::shared_ptr<EvidenceRecord> evidence) {
  stats_.crypto += ctx_.config.crypto.sign_cost;
  ++stats_.evidence_generated;
  std::shared_ptr<const EvidenceRecord> ev = std::move(evidence);
  if (!pool_.Insert(ev)) {
    return;
  }
  // Apply locally. Honest nodes only emit evidence they know to be valid.
  if (ev->kind == EvidenceKind::kPathDeclaration) {
    auto convicted = blame_.AddDeclaration(
        ev->path_a, ev->path_b, ev->declarer, ev->period,
        [this](NodeId n) { return fault_set_.Contains(n); });
    if (convicted.has_value()) {
      Convict(*convicted, EvidenceKind::kPathDeclaration);
    }
  } else {
    const EvidenceVerdict verdict = validator_.Validate(*ev);
    if (verdict.valid && verdict.convicts.valid()) {
      Convict(verdict.convicts, ev->kind);
    }
  }
  BroadcastEvidence(ev, NodeId::Invalid());
}

void NodeRuntime::BroadcastEvidence(const std::shared_ptr<const EvidenceRecord>& evidence,
                                    NodeId skip_neighbor) {
  // The forwarded message is identical for every neighbor (same forwarder,
  // same endorsement), so it is built and signed once and shared. The
  // modeled signing cost was always charged once per broadcast.
  std::shared_ptr<const EvidenceMessage> msg;
  const uint32_t wire_bytes = evidence->WireBytes() + 32;
  for (NodeId n : ctx_.topo->Neighbors(id_)) {
    if (n == skip_neighbor || fault_set_.Contains(n)) {
      continue;
    }
    if (msg == nullptr) {
      auto fresh = NewPayload<EvidenceMessage>();
      fresh->evidence = evidence;
      fresh->forwarder = id_;
      fresh->endorsement = signer_.Sign(evidence->ContentDigest());
      msg = std::move(fresh);
    }
    ctx_.network->Send(id_, n, wire_bytes, TrafficClass::kEvidence, msg);
  }
  stats_.crypto += ctx_.config.crypto.sign_cost;
}

void NodeRuntime::ApplyValidEvidence(const EvidenceRecord& evidence,
                                     const EvidenceVerdict& verdict) {
  if (evidence.kind == EvidenceKind::kPathDeclaration) {
    if (fault_set_.Contains(evidence.declarer)) {
      return;  // convicted nodes get no say
    }
    auto convicted = blame_.AddDeclaration(
        evidence.path_a, evidence.path_b, evidence.declarer, evidence.period,
        [this](NodeId n) { return fault_set_.Contains(n); });
    if (convicted.has_value()) {
      Convict(*convicted, EvidenceKind::kPathDeclaration);
    }
    return;
  }
  if (verdict.convicts.valid()) {
    Convict(verdict.convicts, evidence.kind);
  }
}

void NodeRuntime::Convict(NodeId node, EvidenceKind kind) {
  if (node == id_ || !fault_set_.Add(node)) {
    return;
  }
  owner_->RecordConviction(ConvictionEvent{node, id_, ctx_.sim->Now(), kind});
  BTR_LOG(kInfo, "runtime") << ToString(id_) << " convicts " << ToString(node) << " ("
                            << EvidenceKindName(kind) << ")";
  const Plan* next = LookupPlan(ctx_, fault_set_);
  if (next == nullptr) {
    // Beyond f: this fault set was never planned for. Instead of freezing
    // on the stale plan, degrade to the nearest covered mode — the
    // tie-break is a pure function of the fault set, so every honest node
    // lands on the same fallback without an agreement round.
    ++degradation_.beyond_f_lookups;
    if (degradation_.degraded_since == kSimTimeNever) {
      degradation_.degraded_since = ctx_.sim->Now();
    }
    if (beyond_f_warned_.Insert(fault_set_.Hash())) {
      BTR_LOG(kWarning, "runtime")
          << ToString(id_) << ": no plan for " << fault_set_.ToString()
          << " (beyond f); falling back to nearest covered mode";
    }
    next = LookupNearestCoveredPlan(ctx_, fault_set_);
    if (next == nullptr || next == plan_ || next == pending_plan_) {
      return;  // already on (or adopting) the best covered mode
    }
    // Hysteresis: if the mode we're on (or adopting) already covers an
    // equally large subset of the observed faults, a switch buys no extra
    // coverage — and the tie-break could abandon the plan that handles the
    // genuine culprit for a same-size subset that merely sorts earlier.
    const Plan* cur = pending_plan_ != nullptr ? pending_plan_ : plan_;
    if (cur != nullptr && fault_set_.Covers(cur->faults) &&
        cur->faults.size() >= next->faults.size()) {
      return;
    }
    ++degradation_.fallback_switches;
  }
  const Plan* old_plan = pending_plan_ != nullptr ? pending_plan_ : plan_;
  pending_plan_ = next;
  RequestMigrationState(old_plan, next);
}

void NodeRuntime::RequestMigrationState(const Plan* old_plan, const Plan* new_plan) {
  for (uint32_t aug_id = 0; aug_id < ctx_.graph->size(); ++aug_id) {
    const AugTask& task = ctx_.graph->task(aug_id);
    if (task.kind != AugKind::kWorkload || task.state_bytes == 0) {
      continue;
    }
    if (new_plan->placement()[aug_id] != id_) {
      continue;
    }
    // Did this node already hold a copy (any replica of the same task)?
    bool had_copy = false;
    NodeId donor;
    for (uint32_t rep : ctx_.graph->ReplicasOf(task.workload_task)) {
      const NodeId old_host = old_plan->placement()[rep];
      if (old_host == id_) {
        had_copy = true;
        break;
      }
      if (old_host.valid() && !fault_set_.Contains(old_host) &&
          (!donor.valid() || old_host < donor)) {
        donor = old_host;
      }
    }
    if (had_copy || !donor.valid()) {
      continue;  // state already local, or cold start
    }
    if (awaiting_state_.Contains(task.workload_task.value())) {
      continue;  // request already outstanding
    }
    awaiting_state_.Insert(task.workload_task.value());
    auto req = NewPayload<StateRequest>();
    req->task = task.workload_task;
    req->new_replica = task.replica;
    req->requester = id_;
    ctx_.network->Send(id_, donor, 32, TrafficClass::kControl, std::move(req));
  }
}

bool NodeRuntime::StateReady(TaskId task) const {
  return !awaiting_state_.Contains(task.value());
}

void NodeRuntime::AdoptPlan(const Plan* plan, uint64_t /*at_period*/) { pending_plan_ = plan; }

}  // namespace btr
