#include "src/core/plan.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"

namespace btr {

FaultSet::FaultSet(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

FaultSet FaultSet::With(NodeId node) const {
  FaultSet copy = *this;
  copy.Add(node);
  return copy;
}

FaultSet FaultSet::Without(NodeId node) const {
  FaultSet copy = *this;
  auto it = std::lower_bound(copy.nodes_.begin(), copy.nodes_.end(), node);
  if (it != copy.nodes_.end() && *it == node) {
    copy.nodes_.erase(it);
  }
  return copy;
}

bool FaultSet::Contains(NodeId node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

bool FaultSet::Add(NodeId node) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) {
    return false;
  }
  nodes_.insert(it, node);
  return true;
}

bool FaultSet::Covers(const FaultSet& other) const {
  return std::includes(nodes_.begin(), nodes_.end(), other.nodes_.begin(), other.nodes_.end());
}

uint64_t FaultSet::Hash() const {
  Hasher h;
  for (NodeId n : nodes_) {
    h.Add(n.value());
  }
  h.Add(nodes_.size());
  return h.Digest();
}

std::string FaultSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      s += ",";
    }
    s += btr::ToString(nodes_[i]);
  }
  return s + "}";
}

const std::vector<SimDuration>& PlanBody::EmptyBudgets() {
  static const std::vector<SimDuration> kEmpty;
  return kEmpty;
}

void PlanBody::set_edge_budget(std::vector<SimDuration> budgets) {
  edge_budget_ = std::make_shared<const std::vector<SimDuration>>(std::move(budgets));
}

namespace {

uint64_t TableContentHash(const ScheduleTable& table) {
  Hasher h;
  for (const ScheduleEntry& e : table.entries()) {
    h.Add(e.job).Add(e.start).Add(e.duration);
  }
  h.Add(table.size());
  return h.Digest();
}

uint64_t BudgetsContentHash(const std::vector<SimDuration>& budgets) {
  Hasher h;
  h.AddVector(budgets);
  return h.Digest();
}

}  // namespace

uint64_t PlanBody::ContentHash() const {
  Hasher h;
  for (NodeId n : placement) {
    h.Add(n.value());
  }
  h.Add(placement.size());
  h.AddVector(start);
  for (const ScheduleTable& t : tables) {
    h.Add(TableContentHash(t));
  }
  h.Add(tables.size());
  h.AddVector(edge_budget());
  for (TaskId sink : shed_sinks) {
    h.Add(sink.value());
  }
  h.Add(shed_sinks.size());
  h.Add(utility);
  return h.Digest();
}

size_t PlanBody::FootprintBytes() const {
  size_t bytes = placement.size() * (sizeof(NodeId) + sizeof(SimDuration));
  for (const ScheduleTable& t : tables) {
    bytes += t.size() * sizeof(ScheduleEntry);
  }
  bytes += edge_budget().size() * sizeof(SimDuration);
  bytes += shed_sinks.size() * sizeof(TaskId);
  return bytes;
}

bool operator==(const PlanBody& a, const PlanBody& b) {
  return a.placement == b.placement && a.start == b.start &&
         a.edge_budget() == b.edge_budget() && a.shed_sinks == b.shed_sinks &&
         a.utility == b.utility && a.tables == b.tables;
}

bool Plan::ServesSink(TaskId sink) const {
  const auto& shed = body->shed_sinks;
  return std::find(shed.begin(), shed.end(), sink) == shed.end();
}

SimDuration Plan::ArrivalBudget(const AugmentedGraph& graph, uint32_t from_aug,
                                NodeId to_node) const {
  SimDuration best = -1;
  const std::vector<AugEdge>& all = graph.edges();
  const std::vector<SimDuration>& budgets = body->edge_budget();
  if (budgets.size() != all.size()) {
    return best;  // no budgets recorded for this graph (hand-built plan)
  }
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].from != from_aug || budgets[i] < 0) {
      continue;
    }
    if (body->placement[all[i].to] == to_node) {
      best = std::max(best, budgets[i]);
    }
  }
  return best;
}

PlanDelta ComputeDelta(const Plan& from, const Plan& to, const AugmentedGraph& graph) {
  assert(from.placement().size() == to.placement().size());
  PlanDelta delta;
  for (uint32_t id = 0; id < from.placement().size(); ++id) {
    const NodeId a = from.placement()[id];
    const NodeId b = to.placement()[id];
    if (!a.valid() && !b.valid()) {
      continue;
    }
    if (!a.valid() && b.valid()) {
      ++delta.tasks_started;
      delta.state_bytes_moved += graph.task(id).state_bytes;
    } else if (a.valid() && !b.valid()) {
      ++delta.tasks_stopped;
    } else if (a != b) {
      ++delta.tasks_moved;
      delta.state_bytes_moved += graph.task(id).state_bytes;
    }
  }
  return delta;
}

void Strategy::CanonicalizeTables(PlanBody* body) {
  for (ScheduleTable& table : body->tables) {
    if (table.empty()) {
      continue;
    }
    std::vector<ScheduleTable>& chain = table_pool_[TableContentHash(table)];
    bool found = false;
    for (const ScheduleTable& rep : chain) {
      if (rep == table) {
        table = rep;  // copy-on-write: shares the representative's storage
        found = true;
        break;
      }
    }
    if (!found) {
      chain.push_back(table);
    }
  }
}

void Strategy::CanonicalizeEdgeBudgets(PlanBody* body) {
  const std::shared_ptr<const std::vector<SimDuration>>& own = body->shared_edge_budget();
  if (own == nullptr || own->empty()) {
    return;
  }
  auto& chain = edge_pool_[BudgetsContentHash(*own)];
  for (const auto& rep : chain) {
    if (rep == own || *rep == *own) {
      body->adopt_edge_budget(rep);
      return;
    }
  }
  chain.push_back(own);
}

const Plan* Strategy::Insert(Plan plan) {
  assert(plan.body != nullptr);
  // Whole-body dedup: same content hash + equal content (or the very same
  // object) means the mode shares the existing physical body.
  const uint64_t content_hash = plan.body->ContentHash();
  std::vector<uint32_t>& chain = body_pool_[content_hash];
  bool shared = false;
  for (uint32_t body_id : chain) {
    const std::shared_ptr<const PlanBody>& existing = bodies_[body_id];
    if (existing == plan.body || *existing == *plan.body) {
      plan.body = existing;
      shared = true;
      ++dedup_hits_;
      break;
    }
  }
  if (!shared) {
    // New body: canonicalize its bulky sub-structures against the pools so
    // the parts this mode shares with other modes are stored once. The copy
    // is cheap — tables and edge budgets copy as shared handles.
    PlanBody canonical = *plan.body;
    CanonicalizeTables(&canonical);
    CanonicalizeEdgeBudgets(&canonical);
    plan.body = std::make_shared<const PlanBody>(std::move(canonical));

    const uint32_t body_id = static_cast<uint32_t>(bodies_.size());
    bodies_.push_back(plan.body);
    chain.push_back(body_id);
  }

  auto it = by_faults_.find(plan.faults);
  if (it != by_faults_.end()) {
    *it->second = std::move(plan);
    return it->second;
  }
  modes_.push_back(std::move(plan));
  Plan* stored = &modes_.back();
  by_faults_.emplace(stored->faults, stored);
  return stored;
}

const Plan* Strategy::Lookup(const FaultSet& faults) const {
  auto it = by_faults_.find(faults);
  if (it == by_faults_.end()) {
    return nullptr;
  }
  return it->second;
}

namespace {

// Shared nearest-covered walk (Strategy::LookupNearestCovered and
// StrategyIndex::FindNearestCovered). Subset sizes are tried largest
// first; within a size, subsets of the sorted node list are enumerated in
// lexicographic order, so the first planned subset found is a pure
// function of the fault set — every honest node converges on the same
// fallback mode with no agreement round. The walk is exponential in the
// fault-set size in the worst case, but it only runs on beyond-f sets,
// which exceed f by however many extra faults actually manifested — a
// handful of nodes, not the fleet.
template <typename LookupFn>
const Plan* NearestCovered(const FaultSet& faults, const LookupFn& lookup) {
  if (const Plan* exact = lookup(faults)) {
    return exact;
  }
  const std::vector<NodeId>& nodes = faults.nodes();
  std::vector<uint32_t> pick;
  std::vector<NodeId> subset;
  for (size_t size = nodes.size(); size-- > 0;) {
    if (size == 0) {
      return lookup(FaultSet());
    }
    pick.resize(size);
    for (size_t i = 0; i < size; ++i) {
      pick[i] = static_cast<uint32_t>(i);
    }
    while (true) {
      subset.clear();
      for (uint32_t i : pick) {
        subset.push_back(nodes[i]);
      }
      if (const Plan* p = lookup(FaultSet(subset))) {
        return p;
      }
      // Next combination in lexicographic order.
      size_t i = size;
      while (i-- > 0) {
        if (pick[i] < nodes.size() - (size - i)) {
          ++pick[i];
          for (size_t j = i + 1; j < size; ++j) {
            pick[j] = pick[j - 1] + 1;
          }
          break;
        }
        if (i == 0) {
          goto next_size;
        }
      }
    }
  next_size:;
  }
  return nullptr;
}

}  // namespace

const Plan* Strategy::LookupNearestCovered(const FaultSet& faults) const {
  return NearestCovered(faults, [this](const FaultSet& fs) { return Lookup(fs); });
}

double Strategy::DedupRatio() const {
  const size_t expanded = ExpandedFootprintBytes();
  if (expanded == 0) {
    return 1.0;
  }
  return static_cast<double>(MemoryFootprintBytes()) / static_cast<double>(expanded);
}

size_t Strategy::MemoryFootprintBytes() const {
  size_t bytes = 0;
  std::unordered_set<const void*> seen;
  for (const std::shared_ptr<const PlanBody>& body : bodies_) {
    bytes += body->placement.size() * (sizeof(NodeId) + sizeof(SimDuration));
    bytes += body->shed_sinks.size() * sizeof(TaskId);
    for (const ScheduleTable& t : body->tables) {
      if (t.storage_key() != nullptr && seen.insert(t.storage_key()).second) {
        bytes += t.size() * sizeof(ScheduleEntry);
      }
    }
    const auto& budgets = body->shared_edge_budget();
    if (budgets != nullptr && seen.insert(budgets.get()).second) {
      bytes += budgets->size() * sizeof(SimDuration);
    }
  }
  for (const Plan& mode : modes_) {
    // Per-mode index entry: the fault set plus a body reference.
    bytes += mode.faults.size() * sizeof(NodeId) + sizeof(uint32_t);
  }
  return bytes;
}

size_t Strategy::ExpandedFootprintBytes() const {
  size_t bytes = 0;
  for (const Plan& mode : modes_) {
    bytes += mode.faults.size() * sizeof(NodeId);
    bytes += mode.body->FootprintBytes();
  }
  return bytes;
}

std::vector<FaultSet> Strategy::PlannedSets() const {
  std::vector<FaultSet> out;
  out.reserve(modes_.size());
  for (const auto& [key, plan] : by_faults_) {
    (void)plan;
    out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

StrategyIndex::StrategyIndex(const Strategy& strategy) {
  count_ = strategy.mode_count();
  size_t capacity = 16;
  while (capacity < count_ * 2) {
    capacity *= 2;
  }
  slots_.assign(capacity, Slot());
  const size_t mask = capacity - 1;
  for (const FaultSet& faults : strategy.PlannedSets()) {
    const Plan* plan = strategy.Lookup(faults);
    const uint64_t hash = faults.Hash();
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots_[i].plan != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = Slot{hash, plan};
  }
}

const Plan* StrategyIndex::Find(const FaultSet& faults) const {
  if (slots_.empty()) {
    return nullptr;
  }
  const size_t mask = slots_.size() - 1;
  const uint64_t hash = faults.Hash();
  size_t i = static_cast<size_t>(hash) & mask;
  while (slots_[i].plan != nullptr) {
    if (slots_[i].hash == hash && slots_[i].plan->faults == faults) {
      return slots_[i].plan;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

const Plan* StrategyIndex::FindNearestCovered(const FaultSet& faults) const {
  return NearestCovered(faults, [this](const FaultSet& fs) { return Find(fs); });
}

}  // namespace btr
