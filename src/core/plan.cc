#include "src/core/plan.h"

#include <algorithm>
#include <cassert>

namespace btr {

FaultSet::FaultSet(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

FaultSet FaultSet::With(NodeId node) const {
  FaultSet copy = *this;
  copy.Add(node);
  return copy;
}

bool FaultSet::Contains(NodeId node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

bool FaultSet::Add(NodeId node) {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) {
    return false;
  }
  nodes_.insert(it, node);
  return true;
}

bool FaultSet::Covers(const FaultSet& other) const {
  return std::includes(nodes_.begin(), nodes_.end(), other.nodes_.begin(), other.nodes_.end());
}

std::string FaultSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      s += ",";
    }
    s += btr::ToString(nodes_[i]);
  }
  return s + "}";
}

bool Plan::ServesSink(TaskId sink) const {
  return std::find(shed_sinks.begin(), shed_sinks.end(), sink) == shed_sinks.end();
}

SimDuration Plan::ArrivalBudget(const AugmentedGraph& graph, uint32_t from_aug,
                                NodeId to_node) const {
  SimDuration best = -1;
  const std::vector<AugEdge>& all = graph.edges();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].from != from_aug || edge_budget[i] < 0) {
      continue;
    }
    if (placement[all[i].to] == to_node) {
      best = std::max(best, edge_budget[i]);
    }
  }
  return best;
}

PlanDelta ComputeDelta(const Plan& from, const Plan& to, const AugmentedGraph& graph) {
  assert(from.placement.size() == to.placement.size());
  PlanDelta delta;
  for (uint32_t id = 0; id < from.placement.size(); ++id) {
    const NodeId a = from.placement[id];
    const NodeId b = to.placement[id];
    if (!a.valid() && !b.valid()) {
      continue;
    }
    if (!a.valid() && b.valid()) {
      ++delta.tasks_started;
      delta.state_bytes_moved += graph.task(id).state_bytes;
    } else if (a.valid() && !b.valid()) {
      ++delta.tasks_stopped;
    } else if (a != b) {
      ++delta.tasks_moved;
      delta.state_bytes_moved += graph.task(id).state_bytes;
    }
  }
  return delta;
}

void Strategy::Insert(Plan plan) {
  FaultSet key = plan.faults;
  plans_[std::move(key)] = std::move(plan);
}

const Plan* Strategy::Lookup(const FaultSet& faults) const {
  auto it = plans_.find(faults);
  if (it == plans_.end()) {
    return nullptr;
  }
  return &it->second;
}

size_t Strategy::MemoryFootprintBytes() const {
  size_t bytes = 0;
  for (const auto& [key, plan] : plans_) {
    bytes += key.size() * sizeof(NodeId);
    bytes += plan.placement.size() * (sizeof(NodeId) + sizeof(SimDuration));
    for (const ScheduleTable& t : plan.tables) {
      bytes += t.size() * sizeof(ScheduleEntry);
    }
    bytes += plan.shed_sinks.size() * sizeof(TaskId);
  }
  return bytes;
}

std::vector<FaultSet> Strategy::PlannedSets() const {
  std::vector<FaultSet> out;
  out.reserve(plans_.size());
  for (const auto& [key, plan] : plans_) {
    out.push_back(key);
  }
  return out;
}

}  // namespace btr
