#include "src/core/adversary.h"

#include <algorithm>

namespace btr {

const char* FaultBehaviorName(FaultBehavior b) {
  switch (b) {
    case FaultBehavior::kCrash:
      return "crash";
    case FaultBehavior::kValueCorruption:
      return "value-corruption";
    case FaultBehavior::kOmission:
      return "omission";
    case FaultBehavior::kSelectiveOmission:
      return "selective-omission";
    case FaultBehavior::kDelay:
      return "delay";
    case FaultBehavior::kEquivocate:
      return "equivocate";
    case FaultBehavior::kEvidenceFlood:
      return "evidence-flood";
  }
  return "?";
}

std::optional<FaultBehavior> ParseFaultBehavior(std::string_view name) {
  for (int i = 0; i < kFaultBehaviorCount; ++i) {
    const FaultBehavior b = static_cast<FaultBehavior>(i);
    if (name == FaultBehaviorName(b)) {
      return b;
    }
  }
  return std::nullopt;
}

SimTime AdversarySpec::ManifestTime(NodeId node) const {
  SimTime earliest = kSimTimeNever;
  for (const FaultInjection& inj : injections_) {
    if (inj.node == node) {
      earliest = std::min(earliest, inj.manifest_at);
    }
  }
  return earliest;
}

}  // namespace btr
