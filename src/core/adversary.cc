#include "src/core/adversary.h"

#include <algorithm>

namespace btr {

const char* FaultBehaviorName(FaultBehavior b) {
  switch (b) {
    case FaultBehavior::kCrash:
      return "crash";
    case FaultBehavior::kValueCorruption:
      return "value-corruption";
    case FaultBehavior::kOmission:
      return "omission";
    case FaultBehavior::kSelectiveOmission:
      return "selective-omission";
    case FaultBehavior::kDelay:
      return "delay";
    case FaultBehavior::kEquivocate:
      return "equivocate";
    case FaultBehavior::kEvidenceFlood:
      return "evidence-flood";
  }
  return "?";
}

const FaultInjection* AdversarySpec::ActiveOn(NodeId node, SimTime now) const {
  const FaultInjection* best = nullptr;
  for (const FaultInjection& inj : injections_) {
    if (inj.node != node || inj.manifest_at > now) {
      continue;
    }
    // Latest manifested injection wins (allows escalation scripts).
    if (best == nullptr || inj.manifest_at > best->manifest_at) {
      best = &inj;
    }
  }
  return best;
}

SimTime AdversarySpec::ManifestTime(NodeId node) const {
  SimTime earliest = kSimTimeNever;
  for (const FaultInjection& inj : injections_) {
    if (inj.node == node) {
      earliest = std::min(earliest, inj.manifest_at);
    }
  }
  return earliest;
}

}  // namespace btr
