// BtrSystem: the library's top-level facade and primary public API.
//
// The paper's bounded-time recovery is a *lifecycle*, not a one-shot build:
// plan offline, deploy, run, and keep the strategy current as the platform
// itself is edited. BtrSystem covers the whole loop:
//
//   Scenario scenario = MakeAvionicsScenario();
//   BtrConfig config;
//   config.planner.max_faults = 1;
//   config.planner.recovery_bound = Milliseconds(500);
//   BtrSystem system(scenario, config);
//   ASSERT_OK(system.Plan());                       // offline strategy
//   system.AddFault({node, Seconds(1), FaultBehavior::kValueCorruption});
//   RunReport report = system.Run(1000).value();    // simulate 1000 periods
//
//   // The platform changes mid-deployment: stage an edit. The strategy is
//   // incrementally rebuilt (StrategyBuilder::Rebuild) and diffed into
//   // per-node patches; the next Run() replays their dissemination over
//   // the simulated network at t = 20ms and commits the rebuilt strategy
//   // when it returns, so the run after that executes the edited system.
//   StrategyDelta delta;
//   delta.edits.push_back(DeltaEdit::LinkRemove("backboneB"));
//   ASSERT_OK(system.ApplyDelta(delta, Milliseconds(20)));
//   RunReport rollout = system.Run(200).value();    // rollout.install has cost
//   RunReport after = system.Run(200).value();      // edited topology active
//
// For experiments described as data (.btrx files) rather than C++, see
// src/spec/ — RunExperiment drives this lifecycle from a parsed script.

#ifndef BTR_SRC_CORE_BTR_SYSTEM_H_
#define BTR_SRC_CORE_BTR_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/adversary.h"
#include "src/core/monitor.h"
#include "src/core/plan.h"
#include "src/core/planner.h"
#include "src/core/runtime.h"
#include "src/core/strategy_delta.h"
#include "src/core/transition_analysis.h"
#include "src/workload/generators.h"

namespace btr {

struct BtrConfig {
  PlannerConfig planner;
  RuntimeConfig runtime;
  uint64_t seed = 1;
  // Simulation shards (parallel data plane). 0 = auto (1 for small
  // scenarios, 8 for >= 16 nodes). Reports are byte-identical for every
  // value — sharding is a speed knob, never a semantics knob.
  uint32_t shards = 0;
  // Serialization strategy shipments travel in (see strategy_patch.h).
  // The fingerprint chain stays in the text domain either way, so which
  // strategy every node ends up on is format-invariant; only the wire
  // byte counters (and therefore transfer timing) change.
  StrategyWireFormat wire_format = StrategyWireFormat::kV2Text;
};

// Everything a run produced, for experiments and examples.
struct RunReport {
  CorrectnessReport correctness;
  NetworkStats network;
  NodeStats total_node_stats;
  std::vector<NodeStats> per_node;

  struct FaultOutcome {
    NodeId node;
    FaultBehavior behavior = FaultBehavior::kCrash;
    SimTime manifested_at = 0;
    SimTime first_conviction = kSimTimeNever;  // earliest honest conviction
    SimTime last_conviction = kSimTimeNever;   // all honest nodes convinced
    SimDuration detection_latency = -1;        // first_conviction - manifested
    SimDuration distribution_latency = -1;     // last - first
    SimDuration recovery_time = -1;            // from the monitor
  };
  std::vector<FaultOutcome> faults;

  // Graceful degradation (beyond-f fallback): populated when some node's
  // observed fault set exceeded the planned-for f and the runtime fell
  // back to the nearest covered mode (see NodeRuntime::Convict). Aggregated
  // over nodes in id order, so the values are shard-layout invariant.
  // `coverage` is the fraction of node-time spent on an exactly-covered
  // mode: 1.0 for a run that never left the strategy, lower the earlier and
  // wider the beyond-f window.
  struct Degradation {
    uint64_t beyond_f_lookups = 0;   // exact plan lookups that missed
    uint64_t fallback_switches = 0;  // switches onto a nearest-covered mode
    SimDuration degraded_time = 0;   // summed over nodes
    double coverage = 1.0;
    bool active() const { return beyond_f_lookups != 0 || fallback_switches != 0; }
  };
  Degradation degradation;

  // Strategy-rollout cost when this run disseminated a staged delta (see
  // ApplyDelta); started_at == kSimTimeNever means no rollout ran.
  InstallRunReport install;

  uint64_t periods = 0;
  SimDuration simulated_time = 0;
  uint64_t events_executed = 0;
};

// Deterministic textual dump of everything behaviorally observable in a run
// (correctness report, network stats, per-node stats, fault outcomes, and —
// for rollout runs — the install report). Two runs of the same seeded
// scenario must produce byte-identical dumps; the determinism regression
// test and the throughput bench both fingerprint it.
std::string SerializeRunReport(const RunReport& report);

// 64-bit fingerprint of SerializeRunReport (convenience for bench output).
uint64_t FingerprintRunReport(const RunReport& report);

class BtrSystem {
 public:
  // Sentinel for ApplyDelta: commit the edit without simulating the patch
  // dissemination (an offline edit between deployments).
  static constexpr SimTime kNoRollout = -1;

  BtrSystem(Scenario scenario, BtrConfig config);

  // Offline phase: builds the strategy. Must be called before Run.
  Status Plan();

  // Adopts a strategy compiled elsewhere (the sweep service's
  // fingerprint-keyed cache) instead of building one. The strategy is
  // shared and immutable — many concurrent systems may run off the same
  // object — so adoption is refused unless its provenance matches this
  // system exactly: same f, same Planner::Fingerprint (config + topology +
  // workload), and, when stamped, same FingerprintScenario. A successful
  // adopt leaves the system indistinguishable from one that called Plan()
  // on the same inputs (planning is deterministic), so reports are
  // byte-identical either way.
  Status AdoptStrategy(std::shared_ptr<const Strategy> strategy);

  // Registers an adversarial fault injection for subsequent runs.
  void AddFault(const FaultInjection& injection);
  void ClearFaults() { adversary_ = AdversarySpec(); }

  // Simulates `periods` workload periods and evaluates the outcome. If a
  // delta is staged (ApplyDelta with rollout_at >= 0), this run additionally
  // replays the patch rollout over the simulated network starting at
  // rollout_at — the data plane executes the pre-edit strategy throughout,
  // dissemination is charged as control traffic, and the report's `install`
  // section records its cost — then commits the rebuilt strategy, so the
  // next Run() executes the edited system.
  StatusOr<RunReport> Run(uint64_t periods);

  // Edits the deployed system: applies `delta` to the scenario, rebuilds
  // the strategy incrementally (StrategyBuilder::Rebuild — only modes the
  // edit can reach are replanned), and diffs old vs new into per-node
  // patches (BuildStrategyUpdate).
  //
  // rollout_at >= 0 stages the edit: the next Run() replays dissemination
  // at that sim time and commits at its end (see Run). kNoRollout commits
  // immediately with no simulated traffic. Calling ApplyDelta while an
  // earlier edit is still staged first commits that edit silently.
  // `ship_mode` picks sliced patches (default) or the naive full-blob
  // baseline for the staged rollout.
  Status ApplyDelta(const StrategyDelta& delta, SimTime rollout_at = kNoRollout,
                    BtrRuntime::InstallShipMode ship_mode =
                        BtrRuntime::InstallShipMode::kPatchSlices);

  // True while an ApplyDelta(..., rollout_at >= 0) awaits its rollout run.
  bool has_staged_delta() const { return staged_ != nullptr; }
  // The staged rollout's shipment set (slices, patches, fallbacks); nullptr
  // when nothing is staged. Valid until Run() commits or ApplyDelta
  // restages.
  const StrategyUpdate* staged_update() const;

  // Offline worst-case recovery bound over every planned mode transition;
  // call after Plan(). `fits_recovery_bound` compares against configured R.
  TransitionAnalysis AnalyzeRecoveryBound() const;

  const Scenario& scenario() const { return *scenario_; }
  const Strategy& strategy() const { return *strategy_; }
  // The compiled strategy as a shareable immutable handle; the sweep
  // service inserts this into its cache after Plan(). Empty strategy (not
  // null) before planning.
  std::shared_ptr<const Strategy> shared_strategy() const { return strategy_; }
  // O(1) fault-set -> plan index over the strategy (valid after Plan()).
  const StrategyIndex& strategy_index() const { return strategy_index_; }
  const Planner& planner() const { return *planner_; }
  const AdversarySpec& adversary() const { return adversary_; }
  const BtrConfig& config() const { return config_; }
  bool planned() const { return planned_; }

  // Overrides the shard count for subsequent Run() calls without replanning
  // (the strategy is layout-independent). Bench/sweep knob; the report of
  // any given run is byte-identical for every value.
  void set_shards(uint32_t shards) { config_.shards = shards; }

 private:
  // A staged edit: the post-edit world plus the shipment set that turns the
  // deployed strategy into it. Scenario lives behind a unique_ptr because
  // the planner holds pointers into its topology/workload — committing
  // moves the pointer, never the objects.
  struct StagedDelta {
    std::unique_ptr<Scenario> scenario;
    std::unique_ptr<Planner> planner;
    Strategy strategy;
    std::shared_ptr<const StrategyUpdate> update;
    SimTime rollout_at = 0;
    BtrRuntime::InstallShipMode ship_mode = BtrRuntime::InstallShipMode::kPatchSlices;
  };

  void CommitStaged();

  std::unique_ptr<Scenario> scenario_;
  BtrConfig config_;
  std::unique_ptr<Planner> planner_;
  // Shared and immutable once published: cached strategies are adopted by
  // many concurrent systems, so nothing may mutate through this pointer.
  // Edits never do — ApplyDelta rebuilds into a *new* strategy (sharing
  // unchanged immutable bodies) and swaps the pointer at commit.
  std::shared_ptr<const Strategy> strategy_ = std::make_shared<Strategy>();
  StrategyIndex strategy_index_;
  AdversarySpec adversary_;
  bool planned_ = false;
  std::unique_ptr<StagedDelta> staged_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_BTR_SYSTEM_H_
