// BtrSystem: the library's top-level facade and primary public API.
//
//   Scenario scenario = MakeAvionicsScenario();
//   BtrConfig config;
//   config.planner.max_faults = 1;
//   config.planner.recovery_bound = Milliseconds(500);
//   BtrSystem system(scenario, config);
//   ASSERT_OK(system.Plan());                       // offline strategy
//   system.AddFault({node, Seconds(1), FaultBehavior::kValueCorruption});
//   RunReport report = system.Run(1000).value();    // simulate 1000 periods
//   // report.correctness.btr_violated, report.faults[i].detection_latency...

#ifndef BTR_SRC_CORE_BTR_SYSTEM_H_
#define BTR_SRC_CORE_BTR_SYSTEM_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/adversary.h"
#include "src/core/monitor.h"
#include "src/core/plan.h"
#include "src/core/planner.h"
#include "src/core/runtime.h"
#include "src/core/transition_analysis.h"
#include "src/workload/generators.h"

namespace btr {

struct BtrConfig {
  PlannerConfig planner;
  RuntimeConfig runtime;
  uint64_t seed = 1;
};

// Everything a run produced, for experiments and examples.
struct RunReport {
  CorrectnessReport correctness;
  NetworkStats network;
  NodeStats total_node_stats;
  std::vector<NodeStats> per_node;

  struct FaultOutcome {
    NodeId node;
    FaultBehavior behavior = FaultBehavior::kCrash;
    SimTime manifested_at = 0;
    SimTime first_conviction = kSimTimeNever;  // earliest honest conviction
    SimTime last_conviction = kSimTimeNever;   // all honest nodes convinced
    SimDuration detection_latency = -1;        // first_conviction - manifested
    SimDuration distribution_latency = -1;     // last - first
    SimDuration recovery_time = -1;            // from the monitor
  };
  std::vector<FaultOutcome> faults;

  uint64_t periods = 0;
  SimDuration simulated_time = 0;
  uint64_t events_executed = 0;
};

// Deterministic textual dump of everything behaviorally observable in a run
// (correctness report, network stats, per-node stats, fault outcomes). Two
// runs of the same seeded scenario must produce byte-identical dumps; the
// determinism regression test and the throughput bench both fingerprint it.
std::string SerializeRunReport(const RunReport& report);

// 64-bit fingerprint of SerializeRunReport (convenience for bench output).
uint64_t FingerprintRunReport(const RunReport& report);

class BtrSystem {
 public:
  BtrSystem(Scenario scenario, BtrConfig config);

  // Offline phase: builds the strategy. Must be called before Run.
  Status Plan();

  // Registers an adversarial fault injection for subsequent runs.
  void AddFault(const FaultInjection& injection);
  void ClearFaults() { adversary_ = AdversarySpec(); }

  // Simulates `periods` workload periods and evaluates the outcome.
  StatusOr<RunReport> Run(uint64_t periods);

  // Offline worst-case recovery bound over every planned mode transition;
  // call after Plan(). `fits_recovery_bound` compares against configured R.
  TransitionAnalysis AnalyzeRecoveryBound() const;

  const Scenario& scenario() const { return scenario_; }
  const Strategy& strategy() const { return strategy_; }
  // O(1) fault-set -> plan index over the strategy (valid after Plan()).
  const StrategyIndex& strategy_index() const { return strategy_index_; }
  const Planner& planner() const { return *planner_; }
  const AdversarySpec& adversary() const { return adversary_; }
  const BtrConfig& config() const { return config_; }
  bool planned() const { return planned_; }

 private:
  Scenario scenario_;
  BtrConfig config_;
  std::unique_ptr<Planner> planner_;
  Strategy strategy_;
  StrategyIndex strategy_index_;
  AdversarySpec adversary_;
  bool planned_ = false;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_BTR_SYSTEM_H_
