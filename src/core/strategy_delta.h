// Topology / workload edit deltas for incremental replanning.
//
// A deployed strategy goes stale when the system it was compiled for is
// edited: a link is added, removed, or re-measured, a task is staged in or
// retired, a flow's criticality is re-weighted. Recompiling the whole
// strategy scales with C(n, f); most small edits leave the inputs of most
// fault modes untouched, so StrategyBuilder::Rebuild replans only the
// modes an edit could actually reach (see strategy_builder.h).
//
// This module defines the edit vocabulary (StrategyDelta) and the pure
// function that applies a delta to a scenario (ApplyDelta). Identity across
// the edit is by *name*: links and tasks are matched between the old and
// new system by their names, which therefore must be unique among the
// objects a delta touches. The node set is fixed — node add/remove changes
// the fault-set universe itself and requires a full rebuild by design.

#ifndef BTR_SRC_CORE_STRATEGY_DELTA_H_
#define BTR_SRC_CORE_STRATEGY_DELTA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/topology.h"
#include "src/workload/dataflow.h"

namespace btr {

enum class DeltaKind : int {
  kLinkAdd = 0,        // new link between existing nodes
  kLinkRemove = 1,     // drop a link (by name)
  kLinkLatencyChange = 2,  // re-measured bandwidth and/or propagation
  kTaskAdd = 3,        // new task (optionally wired to existing tasks)
  kTaskRemove = 4,     // retire a task and its channels
  kTaskReweight = 5,   // change a task's criticality
};

const char* DeltaKindName(DeltaKind kind);

// A channel wired in by a kTaskAdd edit. Endpoints are task names; exactly
// one side is usually the added task itself, but any pair of names present
// after the edit is accepted.
struct DeltaChannel {
  std::string from;
  std::string to;
  uint32_t message_bytes = 0;
};

struct DeltaEdit {
  DeltaKind kind = DeltaKind::kLinkAdd;

  // Link edits (identity by LinkSpec::name).
  std::string link_name;
  std::vector<NodeId> endpoints;   // kLinkAdd
  int64_t bandwidth_bps = 0;       // kLinkAdd; kLinkLatencyChange: <= 0 keeps
  SimDuration propagation = -1;    // kLinkAdd; kLinkLatencyChange: < 0 keeps

  // Task edits (identity by TaskSpec::name).
  std::string task_name;
  TaskSpec task;                       // kTaskAdd (spec.id is ignored)
  std::vector<DeltaChannel> channels;  // kTaskAdd wiring
  Criticality criticality = Criticality::kMedium;  // kTaskReweight

  static DeltaEdit LinkAdd(std::string name, std::vector<NodeId> endpoints,
                           int64_t bandwidth_bps, SimDuration propagation);
  static DeltaEdit LinkRemove(std::string name);
  // Pass <= 0 bandwidth / < 0 propagation to keep the old value.
  static DeltaEdit LinkLatencyChange(std::string name, int64_t bandwidth_bps,
                                     SimDuration propagation);
  static DeltaEdit TaskAdd(TaskSpec task, std::vector<DeltaChannel> channels = {});
  static DeltaEdit TaskRemove(std::string name);
  static DeltaEdit TaskReweight(std::string name, Criticality criticality);
};

// An ordered batch of edits applied atomically: the strategy is rebuilt
// once for the whole batch, not once per edit.
struct StrategyDelta {
  std::vector<DeltaEdit> edits;

  bool empty() const { return edits.empty(); }
  bool Has(DeltaKind kind) const;
  // True if any edit's kind satisfies `pred` (used with the per-stage
  // InvalidatedBy declarations in planner_stages.h).
  template <typename Pred>
  bool Any(Pred pred) const {
    for (const DeltaEdit& e : edits) {
      if (pred(e.kind)) {
        return true;
      }
    }
    return false;
  }

  std::string ToString() const;
};

// Applies `delta` to copies of the scenario. The outputs are freshly built
// (append-only Topology/Dataflow are never mutated in place); surviving
// links and tasks keep their relative order, edits append at the end, so
// planner-visible enumeration orders stay stable for everything the delta
// did not touch. Fails without partial effects if an edit references an
// unknown name, adds a duplicate name, or uses invalid endpoints.
Status ApplyDelta(const Topology& topo, const Dataflow& workload, const StrategyDelta& delta,
                  Topology* new_topo, Dataflow* new_workload);

}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_DELTA_H_
