#include "src/core/planner.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

#include "src/common/log.h"
#include "src/rt/list_scheduler.h"

namespace btr {

Planner::Planner(const Topology* topo, const Dataflow* workload, PlannerConfig config)
    : topo_(topo), workload_(workload), config_(config) {
  // Paper rule: detection needs f + 1 replicas.
  if (config_.augment.replication < config_.max_faults + 1) {
    config_.augment.replication = config_.max_faults + 1;
  }
  graph_ = std::make_unique<AugmentedGraph>(workload_, topo_->node_count(), config_.augment);
}

uint32_t Planner::ReplicasInMode(size_t manifested) const {
  // With k faults already manifested, at most f - k more can appear; keeping
  // (f - k) + 1 replicas preserves detection of every remaining fault.
  const uint32_t f = config_.max_faults;
  const uint32_t k = static_cast<uint32_t>(manifested);
  return k >= f ? 1 : f - k + 1;
}

SimDuration Planner::SerializationOnHop(const Hop& hop, uint32_t bytes) const {
  const LinkSpec& spec = topo_->link(hop.link);
  const double share = 1.0 / static_cast<double>(spec.endpoints.size());
  const double bps =
      static_cast<double>(spec.bandwidth_bps) * share * config_.network.foreground_fraction;
  return static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / bps * 1e9) + 1;
}

SimDuration Planner::EdgeLatencyBudget(NodeId from, NodeId to, uint32_t bytes,
                                       const RoutingTable& routing) const {
  return EdgeLatencyBudgetLoaded(from, to, bytes, routing, nullptr);
}

SimDuration Planner::EdgeLatencyBudgetLoaded(NodeId from, NodeId to, uint32_t bytes,
                                             const RoutingTable& routing,
                                             const std::vector<uint64_t>* node_fg_bytes) const {
  if (from == to) {
    return 0;
  }
  const Route& route = routing.RouteBetween(from, to);
  if (route.empty()) {
    return -1;  // unreachable under this mode's routing
  }
  SimDuration budget = 0;
  for (const Hop& hop : route) {
    // The message's own serialization gets the contention headroom factor;
    // queueing is bounded separately: in the worst case every other
    // foreground byte the transmitting node sends this period is ahead of
    // this message in the same guardian queue.
    budget += static_cast<SimDuration>(config_.comm_budget_factor *
                                       static_cast<double>(SerializationOnHop(hop, bytes)));
    if (node_fg_bytes != nullptr) {
      const uint64_t queued = (*node_fg_bytes)[hop.sender.value()];
      const uint32_t clamped =
          static_cast<uint32_t>(std::min<uint64_t>(queued, 0xFFFFFFFFull));
      budget += SerializationOnHop(hop, clamped);
    }
    budget += topo_->link(hop.link).propagation;
  }
  return budget + config_.epsilon;
}

// Per-attempt planning state.
struct Planner::ModeContext {
  std::vector<bool> available;                       // per node
  std::vector<NodeId> available_list;
  std::shared_ptr<const RoutingTable> routing;
  std::vector<bool> active;                          // per aug id
  std::vector<NodeId> placement;                     // per aug id
  std::vector<SimDuration> node_load;                // accumulated busy time
  std::vector<int> vulnerability;                    // per node: isolation risk
};

namespace {

// Connected components of the available-node graph with one more node
// removed; used for the lookahead vulnerability score.
std::vector<int> ComponentsWithout(const Topology& topo, const std::vector<bool>& available,
                                   NodeId removed) {
  const size_t n = topo.node_count();
  std::vector<int> comp(n, -1);
  int next = 0;
  for (size_t start = 0; start < n; ++start) {
    if (!available[start] || NodeId(static_cast<uint32_t>(start)) == removed ||
        comp[start] != -1) {
      continue;
    }
    const int c = next++;
    std::deque<size_t> frontier{start};
    comp[start] = c;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop_front();
      for (NodeId v : topo.Neighbors(NodeId(static_cast<uint32_t>(u)))) {
        if (!available[v.value()] || v == removed || comp[v.value()] != -1) {
          continue;
        }
        comp[v.value()] = c;
        frontier.push_back(v.value());
      }
    }
  }
  return comp;
}

}  // namespace

double Planner::PlacementScore(const ModeContext& ctx, uint32_t aug_id, NodeId candidate,
                               const std::vector<const Plan*>& parents) const {
  const AugTask& task = graph_->task(aug_id);
  const SimDuration period = workload_->period();

  double score = config_.weight_load *
                 static_cast<double>(ctx.node_load[candidate.value()] + task.wcet) /
                 static_cast<double>(period);

  if (config_.locality_heuristic) {
    double comm = 0.0;
    auto add_peer = [&](uint32_t peer, uint32_t bytes) {
      if (!ctx.active[peer] || !ctx.placement[peer].valid()) {
        return;
      }
      const size_t hops = ctx.routing->HopCount(candidate, ctx.placement[peer]);
      comm += static_cast<double>(hops) * static_cast<double>(bytes);
    };
    for (const AugEdge& e : graph_->InEdges(aug_id)) {
      add_peer(e.from, e.bytes);
    }
    for (const AugEdge& e : graph_->OutEdges(aug_id)) {
      add_peer(e.to, e.bytes);
    }
    score += config_.weight_locality * comm / 10000.0;
  }

  if (config_.parent_stickiness && !parents.empty()) {
    bool same_slot = false;   // candidate held this very replica before
    bool has_state = false;   // candidate held *some* replica of the task
    for (const Plan* parent : parents) {
      if (parent == nullptr) {
        continue;
      }
      if (parent->placement[aug_id] == candidate) {
        same_slot = true;
      }
      if (task.kind == AugKind::kWorkload) {
        for (uint32_t sibling : graph_->ReplicasOf(task.workload_task)) {
          if (parent->placement[sibling] == candidate) {
            has_state = true;
          }
        }
      }
    }
    if (!same_slot) {
      // Moving is expensive; moving somewhere that already has the task's
      // state (a sibling replica) costs half as much.
      score += config_.weight_parent * (has_state ? 0.5 : 1.0);
    }
  }

  if (config_.lookahead && task.state_bytes > 0) {
    const double state_scale = 1.0 + static_cast<double>(task.state_bytes) / 4096.0;
    score += config_.weight_lookahead *
             static_cast<double>(ctx.vulnerability[candidate.value()]) * state_scale / 10.0;
  }
  return score;
}

StatusOr<Plan> Planner::TryPlan(const FaultSet& faults, const std::vector<const Plan*>& parents,
                                const std::vector<TaskId>& served_sinks,
                                const std::shared_ptr<const RoutingTable>& routing) const {
  ++metrics_.schedule_attempts;
  const size_t node_count = topo_->node_count();
  const SimDuration period = workload_->period();

  ModeContext ctx;
  ctx.available.assign(node_count, true);
  for (NodeId x : faults.nodes()) {
    ctx.available[x.value()] = false;
  }
  for (size_t n = 0; n < node_count; ++n) {
    if (ctx.available[n]) {
      ctx.available_list.push_back(NodeId(static_cast<uint32_t>(n)));
    }
  }
  ctx.routing = routing;
  ctx.active.assign(graph_->size(), false);
  ctx.placement.assign(graph_->size(), NodeId::Invalid());
  ctx.node_load.assign(node_count, 0);

  // Lookahead vulnerability: for each available node v, in how many
  // single-further-fault scenarios does v end up cut off from the part of
  // the system that holds the sensors and actuators? A task stranded away
  // from the I/O cannot serve any flow, and its state cannot be fetched.
  ctx.vulnerability.assign(node_count, 0);
  if (config_.lookahead && faults.size() < config_.max_faults) {
    std::vector<NodeId> io_nodes;
    for (const TaskSpec& spec : workload_->tasks()) {
      if (spec.pinned_node.valid() && ctx.available[spec.pinned_node.value()]) {
        io_nodes.push_back(spec.pinned_node);
      }
    }
    for (NodeId y : ctx.available_list) {
      const std::vector<int> comp = ComponentsWithout(*topo_, ctx.available, y);
      // The component that matters: the one holding the most I/O nodes
      // (ties broken toward the lower component id, deterministically).
      std::map<int, size_t> io_per_comp;
      for (NodeId io : io_nodes) {
        if (io != y && comp[io.value()] >= 0) {
          ++io_per_comp[comp[io.value()]];
        }
      }
      int io_comp = -1;
      size_t best = 0;
      for (const auto& [c, count] : io_per_comp) {
        if (count > best) {
          best = count;
          io_comp = c;
        }
      }
      if (io_comp < 0) {
        continue;
      }
      for (NodeId v : ctx.available_list) {
        if (v != y && comp[v.value()] != io_comp) {
          ++ctx.vulnerability[v.value()];
        }
      }
    }
  }

  // --- Determine active augmented tasks ---
  const uint32_t replicas_kept = ReplicasInMode(faults.size());
  const std::vector<bool> needed = workload_->ReachesSinkMask(served_sinks);
  for (const TaskSpec& spec : workload_->tasks()) {
    if (!needed[spec.id.value()]) {
      continue;
    }
    const std::vector<uint32_t>& reps = graph_->ReplicasOf(spec.id);
    const uint32_t keep = std::min<uint32_t>(replicas_kept, static_cast<uint32_t>(reps.size()));
    for (uint32_t r = 0; r < keep; ++r) {
      ctx.active[reps[r]] = true;
    }
    const uint32_t chk = graph_->CheckerOf(spec.id);
    if (chk != AugmentedGraph::kNone) {
      ctx.active[chk] = true;
    }
  }
  for (NodeId n : ctx.available_list) {
    ctx.active[graph_->VerifierOf(n)] = true;
  }

  // --- Placement ---
  // Deterministic order: workload topological order, replicas ascending,
  // then the task's checker; verifiers are pinned anyway.
  std::vector<uint32_t> order;
  for (TaskId t : workload_->TopologicalOrder()) {
    for (uint32_t rep : graph_->ReplicasOf(t)) {
      if (ctx.active[rep]) {
        order.push_back(rep);
      }
    }
    const uint32_t chk = graph_->CheckerOf(t);
    if (chk != AugmentedGraph::kNone && ctx.active[chk]) {
      order.push_back(chk);
    }
  }
  for (NodeId n : ctx.available_list) {
    order.push_back(graph_->VerifierOf(n));
  }

  for (uint32_t aug_id : order) {
    const AugTask& task = graph_->task(aug_id);
    if (task.pinned.valid()) {
      if (!ctx.available[task.pinned.value()]) {
        return Status::Infeasible("pinned task " + task.name + " on faulty node");
      }
      ctx.placement[aug_id] = task.pinned;
      ctx.node_load[task.pinned.value()] += task.wcet;
      continue;
    }
    // Hard constraints.
    std::vector<bool> banned(node_count, false);
    if (task.kind == AugKind::kWorkload || task.kind == AugKind::kChecker) {
      for (uint32_t sibling : graph_->ReplicasOf(task.workload_task)) {
        if (sibling != aug_id && ctx.active[sibling] && ctx.placement[sibling].valid()) {
          banned[ctx.placement[sibling].value()] = true;
        }
      }
    }
    // Connectivity constraint: the candidate must be able to exchange
    // messages with every already-placed communication peer (a fault can
    // disconnect part of the topology).
    auto reachable_to_peers = [&](NodeId cand) {
      for (const AugEdge& e : graph_->InEdges(aug_id)) {
        if (ctx.active[e.from] && ctx.placement[e.from].valid() &&
            !ctx.routing->Reachable(ctx.placement[e.from], cand)) {
          return false;
        }
      }
      for (const AugEdge& e : graph_->OutEdges(aug_id)) {
        if (ctx.active[e.to] && ctx.placement[e.to].valid() &&
            !ctx.routing->Reachable(cand, ctx.placement[e.to])) {
          return false;
        }
      }
      return true;
    };
    NodeId best;
    double best_score = 0.0;
    for (NodeId cand : ctx.available_list) {
      if (banned[cand.value()]) {
        continue;
      }
      if (!reachable_to_peers(cand)) {
        continue;
      }
      const double score = PlacementScore(ctx, aug_id, cand, parents);
      if (!best.valid() || score < best_score) {
        best = cand;
        best_score = score;
      }
    }
    if (!best.valid()) {
      return Status::Infeasible("no feasible node for " + task.name);
    }
    ctx.placement[aug_id] = best;
    ctx.node_load[best.value()] += task.wcet;
  }

  // --- Scheduling ---
  std::vector<uint32_t> dense_to_aug;
  std::vector<uint32_t> aug_to_dense(graph_->size(), AugmentedGraph::kNone);
  for (uint32_t id = 0; id < graph_->size(); ++id) {
    if (ctx.active[id]) {
      aug_to_dense[id] = static_cast<uint32_t>(dense_to_aug.size());
      dense_to_aug.push_back(id);
    }
  }
  std::vector<SchedJob> jobs;
  jobs.reserve(dense_to_aug.size());
  for (uint32_t dense = 0; dense < dense_to_aug.size(); ++dense) {
    const AugTask& task = graph_->task(dense_to_aug[dense]);
    SchedJob job;
    job.id = dense;
    job.node = ctx.placement[task.id].value();
    job.wcet = task.wcet;
    job.release = 0;
    job.deadline = period;
    if (task.kind == AugKind::kWorkload && task.replica == 0 &&
        workload_->task(task.workload_task).kind == TaskKind::kSink) {
      job.deadline = workload_->task(task.workload_task).relative_deadline;
    }
    job.priority_rank = -static_cast<int>(task.criticality);
    jobs.push_back(job);
  }
  // Effective wire size of an augmented edge: the runtime sends the larger
  // of the channel payload and the signed record itself.
  auto effective_bytes = [this](const AugEdge& e) -> uint32_t {
    const AugTask& from = graph_->task(e.from);
    uint32_t wire = 48;
    if (from.kind == AugKind::kWorkload) {
      wire += 28 * static_cast<uint32_t>(workload_->Inputs(from.workload_task).size());
    }
    return std::max(e.bytes, wire);
  };

  // Worst-case queueing context: total foreground bytes each node puts on
  // the wire per period under this placement.
  std::vector<uint64_t> node_fg_bytes(node_count, 0);
  for (const AugEdge& e : graph_->edges()) {
    if (!ctx.active[e.from] || !ctx.active[e.to]) {
      continue;
    }
    if (ctx.placement[e.from] == ctx.placement[e.to]) {
      continue;  // loopback does not touch the medium
    }
    node_fg_bytes[ctx.placement[e.from].value()] += effective_bytes(e);
  }

  std::vector<SchedEdge> edges;
  std::vector<SimDuration> edge_budget(graph_->edges().size(), -1);
  for (size_t i = 0; i < graph_->edges().size(); ++i) {
    const AugEdge& e = graph_->edges()[i];
    if (!ctx.active[e.from] || !ctx.active[e.to]) {
      continue;
    }
    SchedEdge se;
    se.from = aug_to_dense[e.from];
    se.to = aug_to_dense[e.to];
    se.comm_delay = EdgeLatencyBudgetLoaded(ctx.placement[e.from], ctx.placement[e.to],
                                            effective_bytes(e), *ctx.routing, &node_fg_bytes);
    if (se.comm_delay < 0) {
      // A pinned endpoint ended up unreachable in this mode; the caller
      // sheds the affected flow and retries.
      return Status::Infeasible(graph_->task(e.from).name + " cannot reach " +
                                graph_->task(e.to).name);
    }
    edge_budget[i] = se.comm_delay;
    edges.push_back(se);
  }

  ListScheduler scheduler(node_count, period);
  StatusOr<SchedResult> sched = scheduler.Schedule(jobs, edges);
  if (!sched.ok()) {
    return sched.status();
  }

  // --- Assemble the plan ---
  Plan plan;
  plan.faults = faults;
  plan.routing = routing;
  plan.edge_budget = std::move(edge_budget);
  plan.placement = ctx.placement;
  // Inactive tasks are shed: clear their placement.
  for (uint32_t id = 0; id < graph_->size(); ++id) {
    if (!ctx.active[id]) {
      plan.placement[id] = NodeId::Invalid();
    }
  }
  plan.start.assign(graph_->size(), -1);
  for (uint32_t dense = 0; dense < dense_to_aug.size(); ++dense) {
    plan.start[dense_to_aug[dense]] = sched->start[dense];
  }
  plan.tables.assign(node_count, ScheduleTable());
  BTR_LOG(kDebug, "planner") << "mode " << faults.ToString() << " scheduled " << jobs.size()
                             << " jobs";
  for (size_t n = 0; n < node_count; ++n) {
    for (const ScheduleEntry& e : sched->tables[n].entries()) {
      plan.tables[n].Add(dense_to_aug[e.job], e.start, e.duration);
    }
    plan.tables[n].SortByStart();
  }
  for (TaskId sink : workload_->SinkIds()) {
    if (std::find(served_sinks.begin(), served_sinks.end(), sink) == served_sinks.end()) {
      plan.shed_sinks.push_back(sink);
    } else {
      plan.utility += CriticalityWeight(workload_->task(sink).criticality);
    }
  }
  return plan;
}

StatusOr<Plan> Planner::PlanForMode(const FaultSet& faults,
                                    const std::vector<const Plan*>& parents) const {
  if (faults.size() > config_.max_faults) {
    return Status::InvalidArgument("fault set larger than max_faults");
  }
  auto routing = std::make_shared<RoutingTable>(*topo_, faults.nodes());

  // Which sinks can be served at all?
  std::vector<TaskId> served;
  for (TaskId sink : workload_->SinkIds()) {
    const TaskSpec& spec = workload_->task(sink);
    if (faults.Contains(spec.pinned_node)) {
      continue;
    }
    bool sources_ok = true;
    for (TaskId anc : workload_->AncestorsOf(sink)) {
      const TaskSpec& a = workload_->task(anc);
      if (a.kind == TaskKind::kSource && faults.Contains(a.pinned_node)) {
        sources_ok = false;
        break;
      }
    }
    if (sources_ok) {
      served.push_back(sink);
    }
  }
  // Shedding order: lowest criticality last in the vector.
  std::stable_sort(served.begin(), served.end(), [this](TaskId a, TaskId b) {
    return workload_->task(a).criticality > workload_->task(b).criticality;
  });

  for (;;) {
    StatusOr<Plan> attempt = TryPlan(faults, parents, served, routing);
    if (attempt.ok()) {
      ++metrics_.modes_planned;
      if (!attempt->shed_sinks.empty()) {
        ++metrics_.modes_degraded;
      }
      return attempt;
    }
    if (served.empty() || !config_.shed_by_criticality) {
      return attempt.status();
    }
    BTR_LOG(kDebug, "planner") << "mode " << faults.ToString() << " infeasible ("
                               << attempt.status().ToString() << "); shedding "
                               << workload_->task(served.back()).name;
    served.pop_back();
  }
}

namespace {

// Enumerates all size-k subsets of [0, n) in lexicographic order.
void EnumerateSubsets(size_t n, size_t k, std::vector<uint32_t>* current,
                      const std::function<void(const std::vector<uint32_t>&)>& visit,
                      uint32_t first = 0) {
  if (current->size() == k) {
    visit(*current);
    return;
  }
  for (uint32_t i = first; i < n; ++i) {
    current->push_back(i);
    EnumerateSubsets(n, k, current, visit, i + 1);
    current->pop_back();
  }
}

}  // namespace

StatusOr<Strategy> Planner::BuildStrategy() const {
  Strategy strategy;
  Status failure = Status::Ok();
  for (size_t k = 0; k <= config_.max_faults && failure.ok(); ++k) {
    std::vector<uint32_t> scratch;
    EnumerateSubsets(topo_->node_count(), k, &scratch,
                     [&](const std::vector<uint32_t>& subset) {
                       if (!failure.ok()) {
                         return;
                       }
                       std::vector<NodeId> nodes;
                       nodes.reserve(subset.size());
                       for (uint32_t v : subset) {
                         nodes.push_back(NodeId(v));
                       }
                       const FaultSet faults(std::move(nodes));
                       std::vector<const Plan*> parents;
                       for (NodeId x : faults.nodes()) {
                         FaultSet parent_set = faults;
                         std::vector<NodeId> reduced;
                         for (NodeId y : faults.nodes()) {
                           if (y != x) {
                             reduced.push_back(y);
                           }
                         }
                         const Plan* parent = strategy.Lookup(FaultSet(std::move(reduced)));
                         if (parent != nullptr) {
                           parents.push_back(parent);
                         }
                       }
                       StatusOr<Plan> plan = PlanForMode(faults, parents);
                       if (!plan.ok()) {
                         failure = plan.status();
                         return;
                       }
                       strategy.Insert(std::move(plan).value());
                     });
  }
  if (!failure.ok()) {
    return failure;
  }
  return strategy;
}

}  // namespace btr
