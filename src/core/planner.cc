#include "src/core/planner.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/core/strategy_builder.h"

namespace btr {

Planner::Planner(const Topology* topo, const Dataflow* workload, PlannerConfig config)
    : topo_(topo), workload_(workload), config_(config) {
  // Paper rule: detection needs f + 1 replicas.
  if (config_.augment.replication < config_.max_faults + 1) {
    config_.augment.replication = config_.max_faults + 1;
  }
  graph_ = std::make_unique<AugmentedGraph>(workload_, topo_->node_count(), config_.augment);
  admission_ = std::make_unique<SinkAdmission>(workload_);
  latency_ = std::make_unique<LatencyModel>(topo_, &config_);
  placement_ = std::make_unique<PlacementStage>(topo_, workload_, graph_.get(), &config_);
  schedule_ = std::make_unique<ScheduleStage>(topo_, workload_, graph_.get(), latency_.get());
}

SimDuration Planner::EdgeLatencyBudget(NodeId from, NodeId to, uint32_t bytes,
                                       const RoutingTable& routing) const {
  return latency_->EdgeBudget(from, to, bytes, routing, nullptr);
}

SimDuration Planner::EdgeLatencyBudgetLoaded(NodeId from, NodeId to, uint32_t bytes,
                                             const RoutingTable& routing,
                                             const std::vector<uint64_t>* node_fg_bytes) const {
  return latency_->EdgeBudget(from, to, bytes, routing, node_fg_bytes);
}

PlannerMetrics Planner::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

void Planner::RecordBuildMetrics(size_t modes_deduped, size_t unique_plans, size_t waves,
                                 size_t max_wave_modes, size_t threads_used) const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.modes_deduped = modes_deduped;
  metrics_.unique_plans = unique_plans;
  metrics_.waves = waves;
  metrics_.max_wave_modes = max_wave_modes;
  metrics_.threads_used = threads_used;
}

StatusOr<Plan> Planner::TryPlan(const FaultSet& faults, const std::vector<const Plan*>& parents,
                                const std::vector<TaskId>& served_sinks,
                                const std::shared_ptr<const RoutingTable>& routing) const {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++metrics_.schedule_attempts;
  }
  ModeContext ctx = placement_->PrepareContext(faults, routing);
  placement_->ActivateTasks(&ctx, served_sinks);
  Status placed = placement_->Place(&ctx, parents);
  if (!placed.ok()) {
    return placed;
  }
  StatusOr<PlanBody> body = schedule_->BuildBody(ctx, served_sinks);
  if (!body.ok()) {
    return body.status();
  }
  if (LogEnabled(LogLevel::kDebug)) {
    const size_t scheduled = static_cast<size_t>(
        std::count_if(body->placement.begin(), body->placement.end(),
                      [](NodeId n) { return n.valid(); }));
    BTR_LOG(kDebug, "planner") << "mode " << faults.ToString() << " scheduled " << scheduled
                               << " jobs";
  }
  return Plan(faults, routing, std::move(body).value());
}

StatusOr<Plan> Planner::PlanForMode(const FaultSet& faults,
                                    const std::vector<const Plan*>& parents) const {
  if (faults.size() > config_.max_faults) {
    return Status::InvalidArgument("fault set larger than max_faults");
  }
  auto routing = std::make_shared<RoutingTable>(*topo_, faults.nodes());

  // Stage: sink admission (which flows can run at all, shedding order).
  std::vector<TaskId> served = admission_->Admit(faults);

  for (;;) {
    StatusOr<Plan> attempt = TryPlan(faults, parents, served, routing);
    if (attempt.ok()) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++metrics_.modes_planned;
      if (!attempt->shed_sinks().empty()) {
        ++metrics_.modes_degraded;
      }
      return attempt;
    }
    if (served.empty() || !config_.shed_by_criticality) {
      return attempt.status();
    }
    BTR_LOG(kDebug, "planner") << "mode " << faults.ToString() << " infeasible ("
                               << attempt.status().ToString() << "); shedding "
                               << workload_->task(served.back()).name;
    served.pop_back();
  }
}

StatusOr<Strategy> Planner::BuildStrategy() const {
  StrategyBuilder builder(this, config_.planner_threads);
  return builder.Build();
}

}  // namespace btr
