#include "src/core/planner.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/log.h"
#include "src/core/strategy_builder.h"

namespace btr {

Planner::Planner(const Topology* topo, const Dataflow* workload, PlannerConfig config)
    : topo_(topo), workload_(workload), config_(config) {
  // Paper rule: detection needs f + 1 replicas.
  if (config_.augment.replication < config_.max_faults + 1) {
    config_.augment.replication = config_.max_faults + 1;
  }
  graph_ = std::make_unique<AugmentedGraph>(workload_, topo_->node_count(), config_.augment);
  admission_ = std::make_unique<SinkAdmission>(workload_);
  latency_ = std::make_unique<LatencyModel>(topo_, &config_);
  placement_ = std::make_unique<PlacementStage>(topo_, workload_, graph_.get(), &config_);
  schedule_ = std::make_unique<ScheduleStage>(topo_, workload_, graph_.get(), latency_.get());
}

SimDuration Planner::EdgeLatencyBudget(NodeId from, NodeId to, uint32_t bytes,
                                       const RoutingTable& routing) const {
  return latency_->EdgeBudget(from, to, bytes, routing, nullptr);
}

SimDuration Planner::EdgeLatencyBudgetLoaded(NodeId from, NodeId to, uint32_t bytes,
                                             const RoutingTable& routing,
                                             const std::vector<uint64_t>* node_fg_bytes) const {
  return latency_->EdgeBudget(from, to, bytes, routing, node_fg_bytes);
}

uint64_t FingerprintScenario(const Topology& topo, const Dataflow& workload) {
  // Field-by-field (never whole structs: padding bytes are not stable
  // across processes, and the fingerprint is persisted).
  Hasher h;
  h.Add(topo.node_count());
  for (const LinkSpec& l : topo.links()) {
    h.AddString(l.name).Add(l.bandwidth_bps).Add(l.propagation);
    h.Add(l.loss).Add(l.duty_on).Add(l.duty_period);
    for (NodeId n : l.endpoints) {
      h.Add(n.value());
    }
    h.Add(l.endpoints.size());
  }
  h.Add(topo.link_count());

  h.Add(workload.period());
  for (const TaskSpec& t : workload.tasks()) {
    h.AddString(t.name)
        .Add(t.kind)
        .Add(t.wcet)
        .Add(t.state_bytes)
        .Add(t.pinned_node.value())
        .Add(t.criticality)
        .Add(t.relative_deadline);
  }
  h.Add(workload.task_count());
  for (const ChannelSpec& ch : workload.channels()) {
    h.Add(ch.from.value()).Add(ch.to.value()).Add(ch.message_bytes);
  }
  h.Add(workload.channels().size());
  return h.Digest();
}

uint64_t Planner::Fingerprint() const {
  // Field-by-field (never whole structs: padding bytes are not stable
  // across processes, and the fingerprint is persisted).
  Hasher h;
  h.Add(config_.max_faults).Add(config_.recovery_bound);
  h.Add(config_.augment.replication)
      .Add(config_.augment.replicate_min_criticality)
      .Add(config_.augment.replay_factor)
      .Add(config_.augment.compare_cost)
      .Add(config_.augment.verifier_budget)
      .Add(config_.augment.digest_record_bytes);
  h.Add(config_.network.foreground_fraction)
      .Add(config_.network.evidence_fraction)
      .Add(config_.network.control_fraction)
      .Add(config_.network.loss_probability)
      .Add(config_.network.max_guardian_backlog);
  h.Add(config_.locality_heuristic)
      .Add(config_.parent_stickiness)
      .Add(config_.lookahead)
      .Add(config_.shed_by_criticality)
      .Add(config_.comm_budget_factor)
      .Add(config_.epsilon)
      .Add(config_.weight_load)
      .Add(config_.weight_locality)
      .Add(config_.weight_parent)
      .Add(config_.weight_lookahead);

  h.Add(FingerprintScenario(*topo_, *workload_));
  return h.Digest();
}

PlannerMetrics Planner::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

void Planner::RecordBuildMetrics(size_t modes_deduped, size_t unique_plans, size_t waves,
                                 size_t max_wave_modes, size_t threads_used) const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.modes_deduped = modes_deduped;
  metrics_.unique_plans = unique_plans;
  metrics_.waves = waves;
  metrics_.max_wave_modes = max_wave_modes;
  metrics_.threads_used = threads_used;
}

void Planner::RecordRebuildMetrics(size_t dirty_modes, size_t clean_modes,
                                   size_t migrated_bodies) const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.rebuild_dirty_modes = dirty_modes;
  metrics_.rebuild_clean_modes = clean_modes;
  metrics_.rebuild_migrated_bodies = migrated_bodies;
}

StatusOr<Plan> Planner::TryPlan(const FaultSet& faults, const std::vector<const Plan*>& parents,
                                const std::vector<TaskId>& served_sinks,
                                const std::shared_ptr<const RoutingTable>& routing) const {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++metrics_.schedule_attempts;
  }
  ModeContext ctx = placement_->PrepareContext(faults, routing);
  placement_->ActivateTasks(&ctx, served_sinks);
  Status placed = placement_->Place(&ctx, parents);
  if (!placed.ok()) {
    return placed;
  }
  StatusOr<PlanBody> body = schedule_->BuildBody(ctx, served_sinks);
  if (!body.ok()) {
    return body.status();
  }
  if (LogEnabled(LogLevel::kDebug)) {
    const size_t scheduled = static_cast<size_t>(
        std::count_if(body->placement.begin(), body->placement.end(),
                      [](NodeId n) { return n.valid(); }));
    BTR_LOG(kDebug, "planner") << "mode " << faults.ToString() << " scheduled " << scheduled
                               << " jobs";
  }
  return Plan(faults, routing, std::move(body).value());
}

StatusOr<Plan> Planner::PlanForMode(const FaultSet& faults,
                                    const std::vector<const Plan*>& parents,
                                    std::shared_ptr<const RoutingTable> routing) const {
  if (faults.size() > config_.max_faults) {
    return Status::InvalidArgument("fault set larger than max_faults");
  }
  if (routing == nullptr) {
    routing = std::make_shared<RoutingTable>(*topo_, faults.nodes());
  }

  // Stage: sink admission (which flows can run at all, shedding order).
  std::vector<TaskId> served = admission_->Admit(faults);

  for (;;) {
    StatusOr<Plan> attempt = TryPlan(faults, parents, served, routing);
    if (attempt.ok()) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++metrics_.modes_planned;
      if (!attempt->shed_sinks().empty()) {
        ++metrics_.modes_degraded;
      }
      return attempt;
    }
    if (served.empty() || !config_.shed_by_criticality) {
      return attempt.status();
    }
    BTR_LOG(kDebug, "planner") << "mode " << faults.ToString() << " infeasible ("
                               << attempt.status().ToString() << "); shedding "
                               << workload_->task(served.back()).name;
    served.pop_back();
  }
}

StatusOr<Strategy> Planner::BuildStrategy() const {
  StrategyBuilder builder(this, config_.planner_threads);
  return builder.Build();
}

}  // namespace btr
