// Evidence records and their validation (paper Sections 4.2 and 4.3).
//
// There are no trusted nodes, so a detected fault must be backed by evidence
// that any correct node can validate independently:
//
//  * kCommission — a signed output record that is provably wrong: either a
//    replay of the (deterministic) task on the record's own claimed
//    producer-signed inputs yields a different digest, or the claimed input
//    signatures do not verify (a node signed a record it could not have
//    validated). Self-contained proof against the record's signer.
//  * kEquivocation — two value signatures by the same node for the same
//    logical output (task, period) with different digests. Proof against
//    the signer (catches producers that send different values to different
//    consumers to confuse the checkers).
//  * kTiming — an attested arrival time outside the plan's expected window
//    for a directly-connected sender. Rests on the MAC-level timestamping
//    assumption from the system model.
//  * kPathDeclaration — an unproven claim by one endpoint of a path that an
//    expected message did not arrive (omission faults are not directly
//    provable). Declarations only accumulate *blame*: a node implicated on
//    enough distinct paths by distinct declarers is convicted (Section 4.2's
//    countermeasure to the omission problem).
//  * kEndorsementAbuse — an evidence record that fails validation, wrapped
//    with the endorsement signature of the node that forwarded it. Makes
//    distributing bogus evidence self-incriminating (Section 4.3).

#ifndef BTR_SRC_CORE_EVIDENCE_H_
#define BTR_SRC_CORE_EVIDENCE_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/inline_vec.h"
#include "src/common/types.h"
#include "src/crypto/keys.h"
#include "src/net/network.h"
#include "src/workload/dataflow.h"

namespace btr {

// Memoized content digest. Records are hashed at every signing, dedup, and
// validation step, and the same (shared) record object crosses many nodes,
// so recomputing the recursive hash dominated evidence processing. The
// cache is *sealed* explicitly by the code path that finished building the
// record (content fields final); an unsealed record always recomputes, so
// tests and adversaries that tamper with fields still see fresh digests.
// Copies start unsealed: a copied-then-mutated record (equivocation) cannot
// inherit a stale digest.
class DigestCache {
 public:
  DigestCache() = default;
  DigestCache(const DigestCache&) noexcept {}
  DigestCache& operator=(const DigestCache&) noexcept {
    valid_ = false;
    return *this;
  }

  bool valid() const { return valid_; }
  uint64_t value() const { return value_; }
  void Set(uint64_t v) const {
    value_ = v;
    valid_ = true;
  }

 private:
  mutable uint64_t value_ = 0;
  mutable bool valid_ = false;
};

// A producer-signed input as referenced by an output record. The value
// signature commits the producer to "task X output digest D in period p"
// independently of which consumer it was sent to, which is what makes
// equivocation provable with two such signatures.
struct SignedInput {
  TaskId producer;
  uint64_t digest = 0;
  Signature producer_sig;  // over InputContentDigest(producer, period, digest)
};

uint64_t InputContentDigest(TaskId producer, uint64_t period, uint64_t digest);

// A signed output record: what replicas send to consumers and checkers.
//
// A record may instead be a *gap notice* (`gap == true`): "I could not
// produce this period because my inputs from `gap_missing` never arrived."
// Gap notices keep omission blame from cascading down the dataflow: a
// starved-but-honest node's silence is excused by its notice, so path
// declarations concentrate on the node that is actually silent. A liar
// claiming gaps for inputs that did arrive is caught by its checker (which
// holds its own copies of those inputs) — up to the paper's acknowledged
// limit for single-path omission claims.
struct OutputRecord : Payload {
  // Inline capacity 4 covers the fan-in of every generated workload; no
  // allocation for the per-record input list on the hot path.
  using SignedInputs = InlineVec<SignedInput, 4>;

  TaskId task;
  uint32_t replica = 0;
  uint64_t period = 0;
  uint64_t digest = 0;
  SignedInputs claimed_inputs;  // sorted by producer id
  NodeId sender;
  // Value signature over InputContentDigest(task, period, digest); consumers
  // embed it when they reference this output as one of their inputs.
  Signature value_sig;
  Signature sender_sig;  // over ContentDigest()
  // Gap notice fields.
  bool gap = false;
  InlineVec<TaskId, 4> gap_missing;

  PayloadKind kind() const override { return PayloadKind::kOutputRecord; }

  // Returns the memoized digest once SealDigest() ran; recomputes otherwise.
  uint64_t ContentDigest() const;
  // Declares the content final: computes, caches, and returns the digest.
  // Call exactly when signing the finished record.
  uint64_t SealDigest() const;
  uint32_t WireBytes() const;

 private:
  uint64_t ComputeContentDigest() const;
  DigestCache digest_cache_;
};

enum class EvidenceKind : int {
  kCommission = 0,
  kEquivocation = 1,
  kTiming = 2,
  kPathDeclaration = 3,
  kEndorsementAbuse = 4,
};

const char* EvidenceKindName(EvidenceKind kind);

struct EvidenceRecord : Payload {
  EvidenceKind kind = EvidenceKind::kCommission;
  NodeId declarer;
  Signature declarer_sig;  // over ContentDigest()
  uint64_t period = 0;

  // kCommission / kTiming: the offending record (accused = record.sender).
  std::shared_ptr<const OutputRecord> record;
  // kEquivocation: two value signatures by the same producer for the same
  // (task, period) committing to different digests.
  TaskId eq_task;
  SignedInput eq_a;
  SignedInput eq_b;
  // kTiming: attested arrival vs window (accused = record.sender).
  SimTime observed_arrival = 0;
  SimTime window_lo = 0;
  SimTime window_hi = 0;
  // kPathDeclaration: the problematic path (declarer must be an endpoint).
  NodeId path_a;
  NodeId path_b;
  // kEndorsementAbuse: the invalid evidence and who endorsed it.
  std::shared_ptr<const EvidenceRecord> inner;
  Signature endorsement_sig;

  // Note: EvidenceRecord is never a packet payload itself — it travels
  // wrapped in an EvidenceMessage (messages.h), which carries the
  // PayloadKind tag. The `kind` member above is the evidence taxonomy.

  // Returns the memoized digest once SealDigest() ran; recomputes otherwise.
  uint64_t ContentDigest() const;
  // Declares the content final: computes, caches, and returns the digest.
  uint64_t SealDigest() const;
  uint32_t WireBytes() const;

 private:
  uint64_t ComputeContentDigest() const;
  DigestCache digest_cache_;
};

// Validation outcome.
struct EvidenceVerdict {
  bool valid = false;
  // Convicted node for directly-proving kinds; invalid for declarations.
  NodeId convicts;
  // Simulated CPU time the validation consumed (drawn from the verification
  // task budget).
  SimDuration cost = 0;
};

struct EvidenceValidationConfig {
  CryptoCostModel crypto;
  // If true, cheap checks (signatures, structure) run before the expensive
  // replay, so malformed evidence is rejected at signature-verify cost.
  // Turning this off models the naive validator for the DoS experiment.
  bool quick_reject = true;
};

class EvidenceValidator {
 public:
  EvidenceValidator(const KeyStore* keys, const Dataflow* workload,
                    EvidenceValidationConfig config)
      : keys_(keys), workload_(workload), config_(config) {}

  EvidenceVerdict Validate(const EvidenceRecord& ev) const;

  // Batched form of the verifier-budget loop: verifies the declarer
  // signatures of all `batch` items in one KeyStore pass (amortizing the
  // host-side crypto work; content digests are memoized per record), then
  // finishes each item's validation. Verdicts — including modeled costs —
  // are identical to calling Validate per item, so behavior is bit-stable;
  // only the host pays less.
  void ValidateBatch(const EvidenceRecord* const* batch, size_t n,
                     EvidenceVerdict* verdicts) const;

  // Validates an output record's signatures (used by checkers on receipt).
  bool ValidateRecordSignatures(const OutputRecord& rec) const;

  const EvidenceValidationConfig& config() const { return config_; }

 private:
  SimDuration ReplayCost(TaskId task) const;
  // Validation after the declarer signature was (batch-)checked.
  EvidenceVerdict ValidateAttributed(const EvidenceRecord& ev) const;

  const KeyStore* keys_;
  const Dataflow* workload_;
  EvidenceValidationConfig config_;
};

// Accumulates path declarations and convicts nodes per the blame rule:
// a node is convicted once it appears on >= threshold distinct problematic
// paths with >= threshold distinct counterpart endpoints, declared by
// >= threshold distinct declarers. Paths are *discounted* when their other
// endpoint or their only declarers are already known faulty (the caller's
// `discredited` predicate): a convicted node fully explains its own paths,
// so they must not lend blame to innocent counterparts, and its (possibly
// fabricated) declarations carry no weight.
// Declarations are additionally *windowed*: only paths declared within the
// last `window_periods` count toward a conviction. A fault produces a burst
// of contemporaneous declarations; stale leftovers (e.g., transition blips
// from an earlier mode switch) must not combine with a fresh burst to frame
// a node that merely appears in both.
class PathBlameTracker {
 public:
  using DiscreditedFn = std::function<bool(NodeId)>;

  explicit PathBlameTracker(size_t threshold = 2,
                            uint64_t window_periods = std::numeric_limits<uint64_t>::max())
      : threshold_(threshold), window_(window_periods) {}

  // Records a declaration made for `period`; returns a newly convicted
  // node, if any. `discredited` identifies nodes whose involvement voids a
  // path.
  std::optional<NodeId> AddDeclaration(NodeId path_a, NodeId path_b, NodeId declarer,
                                       uint64_t period = 0,
                                       const DiscreditedFn& discredited = nullptr);

  size_t DistinctPathsInvolving(NodeId node) const;
  bool IsConvicted(NodeId node) const { return convicted_.count(node) > 0; }

 private:
  struct PathKey {
    NodeId lo;
    NodeId hi;
    bool operator<(const PathKey& o) const {
      if (lo != o.lo) {
        return lo < o.lo;
      }
      return hi < o.hi;
    }
  };

  size_t threshold_;
  uint64_t window_;
  // Per path, per declarer: the latest period it was declared for.
  std::map<PathKey, std::map<NodeId, uint64_t>> declarers_;
  std::set<NodeId> convicted_;
};

// Deduplicating evidence pool (per node). Flat-hashed by content digest:
// the Contains probe runs for every queued evidence copy, every period.
class EvidencePool {
 public:
  // Returns true if the record is new (by content digest).
  bool Insert(const std::shared_ptr<const EvidenceRecord>& ev);
  bool Contains(uint64_t content_digest) const;
  size_t size() const { return by_digest_.size(); }

 private:
  FlatMap64<std::shared_ptr<const EvidenceRecord>> by_digest_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_EVIDENCE_H_
