// Deterministic task semantics and the golden oracle.
//
// Task outputs are modeled as 64-bit digests: a task's output in period p is
// a pure function of its identity, p, and the digests it received on its
// input channels. Determinism is what makes the paper's evidence scheme
// work: a checker can re-execute ("replay") a task on the claimed inputs and
// any third party can verify the result — commission faults become provable.
//
// The *golden oracle* computes the digests an all-correct system would
// produce. The runtime monitor compares actual sink outputs against golden
// ones to decide which intervals are "correct" in the sense of
// Definition 3.1. Honest replicas use the same ComputeOutput function on the
// inputs they actually received, so corruption propagates downstream
// deterministically and disappears once the faulty node is excluded.

#ifndef BTR_SRC_CORE_GOLDEN_H_
#define BTR_SRC_CORE_GOLDEN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"
#include "src/workload/dataflow.h"

namespace btr {

// One received input: the producing workload task plus its output digest.
struct InputValue {
  TaskId producer;
  uint64_t digest = 0;
};

// The (simulated) task function. Inputs must be supplied sorted by producer
// id; every caller (replica, checker replay, golden oracle) uses this one
// function, which is exactly the determinism assumption.
uint64_t ComputeOutput(TaskId task, uint64_t period, const std::vector<InputValue>& inputs);

// Source tasks sample the environment: a pure function of (task, period).
uint64_t SourceValue(TaskId task, uint64_t period);

class GoldenOracle {
 public:
  explicit GoldenOracle(const Dataflow* workload) : workload_(workload) {}

  // The digest task `task` outputs in period `period` in a fault-free run.
  uint64_t Golden(TaskId task, uint64_t period) const;

 private:
  const Dataflow* workload_;
  mutable std::unordered_map<uint64_t, uint64_t> memo_;  // key: task<<32 | period slice
};

}  // namespace btr

#endif  // BTR_SRC_CORE_GOLDEN_H_
