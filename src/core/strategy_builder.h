// Wave-parallel strategy compilation.
//
// The strategy has one plan per fault set of size <= f. Mode dependencies
// form levels: the plan for S uses the plans for the |S| - 1 subsets of S
// (parent stickiness), and nothing else. So the builder plans level k only
// after level k - 1 is fully inserted, and plans all C(n, k) modes of one
// level concurrently on a thread pool — the "wave".
//
// Parents are resolved *by canonical fault-set id* against the strategy
// being built (FaultSet is canonical by construction: sorted, deduplicated).
// This keeps parent resolution correct under plan deduplication: the lookup
// returns the per-mode entry — whose fault set and routing are the parent's
// own — even when its schedule body is physically shared with other modes.
//
// Determinism: each mode is planned independently from immutable inputs,
// and results are inserted in enumeration order after the wave completes,
// so the strategy is bit-identical for any thread count.

#ifndef BTR_SRC_CORE_STRATEGY_BUILDER_H_
#define BTR_SRC_CORE_STRATEGY_BUILDER_H_

#include <cstddef>

#include "src/common/status.h"
#include "src/core/plan.h"

namespace btr {

class Planner;

class StrategyBuilder {
 public:
  // `threads` = 0 picks one worker per hardware thread; 1 is fully serial.
  explicit StrategyBuilder(const Planner* planner, size_t threads = 0);

  // Plans every fault set up to the planner's max_faults, level by level.
  // On success the planner's metrics carry the build counters (modes
  // deduped, unique plans, waves, wave width, threads used).
  StatusOr<Strategy> Build();

 private:
  const Planner* planner_;
  size_t threads_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_BUILDER_H_
