// Wave-parallel strategy compilation, full and incremental.
//
// The strategy has one plan per fault set of size <= f. Mode dependencies
// form levels: the plan for S uses the plans for the |S| - 1 subsets of S
// (parent stickiness), and nothing else. So the builder plans level k only
// after level k - 1 is fully inserted, and plans all C(n, k) modes of one
// level concurrently on a thread pool — the "wave".
//
// Parents are resolved *by canonical fault-set id* against the strategy
// being built (FaultSet is canonical by construction: sorted, deduplicated).
// This keeps parent resolution correct under plan deduplication: the lookup
// returns the per-mode entry — whose fault set and routing are the parent's
// own — even when its schedule body is physically shared with other modes.
//
// Determinism: each mode is planned independently from immutable inputs,
// and results are inserted in enumeration order after the wave completes,
// so the strategy is bit-identical for any thread count.
//
// Incremental replanning (Rebuild): after a small topology/workload edit
// (StrategyDelta), most modes' planning inputs are unchanged, and because
// planning is deterministic their plans would come out bit-identical. The
// rebuild walks the same wave DAG and classifies each mode:
//
//   dirty — some stage input could have changed: the admitted-sink list
//           differs, the rebuilt routing table differs, a re-measured link
//           lies on some route, an edited task is active (or would become
//           active), adjacency shifted under the vulnerability heuristic,
//           or any parent mode's plan body changed. Dirty modes are
//           replanned on the thread pool exactly like a full build.
//   clean — every stage input is provably unchanged. The old mode's
//           deduplicated PlanBody is re-linked as-is (or, when the
//           augmented-task universe changed shape, migrated id-for-id —
//           memoized per body so sharing survives).
//
// Dirty-marking is conservative (over-approximate): marking too much only
// costs time, never correctness, while the clean path must be exact — the
// equivalence suite in tests/incremental_replan_test.cc checks that
// Rebuild(Build(G), delta) serializes byte-identically to
// Build(apply(G, delta)).

#ifndef BTR_SRC_CORE_STRATEGY_BUILDER_H_
#define BTR_SRC_CORE_STRATEGY_BUILDER_H_

#include <cstddef>

#include "src/common/status.h"
#include "src/core/plan.h"
#include "src/core/strategy_delta.h"

namespace btr {

class Planner;

class StrategyBuilder {
 public:
  // `planner` is the planner for the system being compiled — for Rebuild,
  // the *edited* system. `threads` = 0 picks one worker per hardware
  // thread; 1 is fully serial.
  explicit StrategyBuilder(const Planner* planner, size_t threads = 0);

  // Plans every fault set up to the planner's max_faults, level by level.
  // On success the planner's metrics carry the build counters (modes
  // deduped, unique plans, waves, wave width, threads used).
  StatusOr<Strategy> Build();

  // Incrementally recompiles `old_strategy` (built by `old_planner`) into a
  // strategy for this builder's planner, whose inputs must differ from the
  // old planner's by exactly `delta` (as applied by ApplyDelta). Replans
  // only dirty modes; the result is bit-identical to a full Build() of the
  // edited system. Requirements: same node count, same max_faults, same
  // planner config; if the old strategy carries provenance (always true for
  // built or v2-loaded strategies) it must match `old_planner`.
  StatusOr<Strategy> Rebuild(const Strategy& old_strategy, const Planner& old_planner,
                             const StrategyDelta& delta);

 private:
  const Planner* planner_;
  size_t threads_;
};

}  // namespace btr

#endif  // BTR_SRC_CORE_STRATEGY_BUILDER_H_
