#include "src/spec/experiment_spec.h"

#include <algorithm>
#include <string_view>

#include "src/core/strategy_text_internal.h"

namespace btr {
namespace {

using strategy_text::ParseU64;
using strategy_text::SplitFields;

// Hard cap on a spec's node count: large enough for any scenario the
// simulator can actually run, small enough that a grammatically valid
// spec can never drive Topology::AddNodes into std::bad_alloc.
constexpr uint64_t kMaxSpecNodes = 4096;

// --- serialization ---------------------------------------------------------

std::string Us(SimDuration ns) { return std::to_string(ns / 1000); }

std::string JoinU32(const std::vector<uint32_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  return out;
}

void AppendTaskAttrs(std::string* out, TaskKind kind, SimDuration wcet, Criticality crit,
                     uint32_t state_bytes, uint32_t pinned_node, SimDuration deadline,
                     const char* kind_key) {
  *out += ' ';
  *out += kind_key;
  *out += '=';
  *out += TaskKindName(kind);
  *out += " wcet-us=" + Us(wcet);
  *out += " crit=";
  *out += CriticalityName(crit);
  if (kind == TaskKind::kCompute) {
    *out += " state=" + std::to_string(state_bytes);
  } else {
    *out += " node=" + std::to_string(pinned_node);
  }
  if (kind == TaskKind::kSink) {
    *out += " deadline-us=" + Us(deadline);
  }
}

bool RadioKind(SpecScenario::Kind kind) {
  return kind == SpecScenario::Kind::kConvoyMobile ||
         kind == SpecScenario::Kind::kLossyMesh;
}

void AppendRadioAttrs(std::string* out, uint32_t loss_pm, SimDuration duty_on,
                      SimDuration duty_period) {
  if (loss_pm != 0) {
    *out += " loss-pm=" + std::to_string(loss_pm);
  }
  if (duty_period != 0) {
    *out += " duty-on-us=" + Us(duty_on);
    *out += " duty-period-us=" + Us(duty_period);
  }
}

void AppendScenario(std::string* out, const SpecScenario& s) {
  *out += "SCENARIO ";
  *out += ScenarioKindName(s.kind);
  *out += " nodes=" + std::to_string(s.nodes);
  if (RadioKind(s.kind)) {
    AppendRadioAttrs(out, s.loss_pm, s.duty_on, s.duty_period);
  }
  if (s.kind == SpecScenario::Kind::kRandom) {
    if (s.scenario_seed != 1) {
      *out += " scenario-seed=" + std::to_string(s.scenario_seed);
    }
    if (s.layers != 0) {
      *out += " layers=" + std::to_string(s.layers);
    }
    if (s.tasks_per_layer != 0) {
      *out += " tasks-per-layer=" + std::to_string(s.tasks_per_layer);
    }
    if (s.random_period != 0) {
      *out += " period-us=" + Us(s.random_period);
    }
  }
  if (s.kind == SpecScenario::Kind::kInline) {
    *out += " period-us=" + Us(s.period);
  }
  *out += '\n';
  if (s.kind != SpecScenario::Kind::kInline) {
    return;
  }
  for (const SpecScenario::Link& link : s.links) {
    *out += "LINK name=" + link.name + " nodes=" + JoinU32(link.nodes) +
            " bw-bps=" + std::to_string(link.bandwidth_bps) +
            " prop-us=" + Us(link.propagation);
    AppendRadioAttrs(out, link.loss_pm, link.duty_on, link.duty_period);
    *out += '\n';
  }
  for (const SpecScenario::Task& task : s.tasks) {
    *out += "TASK name=" + task.name;
    AppendTaskAttrs(out, task.kind, task.wcet, task.criticality, task.state_bytes,
                    task.pinned_node, task.deadline, "kind");
    *out += '\n';
  }
  for (const SpecScenario::Flow& flow : s.flows) {
    *out += "FLOW from=" + flow.from + " to=" + flow.to +
            " bytes=" + std::to_string(flow.bytes) + '\n';
  }
}

void AppendFault(std::string* out, const SpecFault& fault) {
  const FaultInjection& inj = fault.injection;
  *out += "FAULT node=";
  if (fault.critical_primary) {
    *out += "critical-primary";
  } else {
    *out += std::to_string(inj.node.value());
  }
  *out += " at-us=" + Us(inj.manifest_at);
  *out += " behavior=";
  *out += FaultBehaviorName(inj.behavior);
  if (inj.until != kSimTimeNever) {
    *out += " until-us=" + Us(inj.until);
  }
  if (inj.behavior == FaultBehavior::kDelay) {
    *out += " delay-us=" + Us(inj.delay);
  }
  if (inj.behavior == FaultBehavior::kSelectiveOmission && inj.target.valid()) {
    *out += " target=" + std::to_string(inj.target.value());
  }
  if (inj.behavior == FaultBehavior::kEvidenceFlood) {
    *out += " flood=" + std::to_string(inj.flood_rate);
  }
  *out += '\n';
}

void AppendEdit(std::string* out, SimTime at, const DeltaEdit& e) {
  *out += "EDIT at-us=" + Us(at) + " kind=";
  *out += DeltaKindName(e.kind);
  switch (e.kind) {
    case DeltaKind::kLinkAdd: {
      std::vector<uint32_t> nodes;
      for (NodeId n : e.endpoints) {
        nodes.push_back(n.value());
      }
      *out += " link=" + e.link_name + " nodes=" + JoinU32(nodes) +
              " bw-bps=" + std::to_string(e.bandwidth_bps) +
              " prop-us=" + Us(e.propagation);
      break;
    }
    case DeltaKind::kLinkRemove:
      *out += " link=" + e.link_name;
      break;
    case DeltaKind::kLinkLatencyChange:
      *out += " link=" + e.link_name;
      if (e.bandwidth_bps > 0) {
        *out += " bw-bps=" + std::to_string(e.bandwidth_bps);
      }
      if (e.propagation >= 0) {
        *out += " prop-us=" + Us(e.propagation);
      }
      break;
    case DeltaKind::kTaskAdd: {
      *out += " name=" + e.task.name;
      AppendTaskAttrs(out, e.task.kind, e.task.wcet, e.task.criticality, e.task.state_bytes,
                      e.task.pinned_node.valid() ? e.task.pinned_node.value() : 0,
                      e.task.relative_deadline, "task-kind");
      for (const DeltaChannel& c : e.channels) {
        *out += " chan=" + c.from + ':' + c.to + ':' + std::to_string(c.message_bytes);
      }
      break;
    }
    case DeltaKind::kTaskRemove:
      *out += " name=" + e.task_name;
      break;
    case DeltaKind::kTaskReweight:
      *out += " name=" + e.task_name + " crit=";
      *out += CriticalityName(e.criticality);
      break;
  }
  *out += '\n';
}

// --- parsing ---------------------------------------------------------------

Status LineError(size_t line_no, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + message);
}

// key=value splitter; false if no '=' or empty key/value.
bool SplitKeyValue(std::string_view field, std::string_view* key, std::string_view* value) {
  const size_t eq = field.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= field.size()) {
    return false;
  }
  *key = field.substr(0, eq);
  *value = field.substr(eq + 1);
  return true;
}

// A spec name token: used for experiment, link, and task names, which the
// record syntax embeds in key=value fields and chan=from:to:bytes triples.
bool ValidNameToken(std::string_view name) {
  if (name.empty() || name.size() > 64) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

bool ParseDurationUs(std::string_view value, SimDuration* out) {
  uint64_t us = 0;
  if (!ParseU64(value, &us) || us > static_cast<uint64_t>(INT64_MAX / 1000)) {
    return false;
  }
  *out = static_cast<SimDuration>(us) * 1000;
  return true;
}

bool ParseU32Field(std::string_view value, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseU64(value, &v) || v > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

// Comma-separated canonical u32 list, at least one element.
bool ParseU32List(std::string_view value, std::vector<uint32_t>* out) {
  out->clear();
  size_t start = 0;
  while (true) {
    const size_t comma = value.find(',', start);
    const std::string_view item = comma == std::string_view::npos
                                      ? value.substr(start)
                                      : value.substr(start, comma - start);
    uint32_t v = 0;
    if (!ParseU32Field(item, &v)) {
      return false;
    }
    out->push_back(v);
    if (comma == std::string_view::npos) {
      return true;
    }
    start = comma + 1;
  }
}

// Tracks which keys a record consumed, so unknown and duplicate keys are
// both hard errors (forged or stuttered fields read as corruption).
class KeyValues {
 public:
  Status Load(const std::vector<std::string_view>& fields, size_t first, size_t line_no) {
    for (size_t i = first; i < fields.size(); ++i) {
      std::string_view key;
      std::string_view value;
      if (!SplitKeyValue(fields[i], &key, &value)) {
        return LineError(line_no, "malformed field '" + std::string(fields[i]) +
                                      "' (expected key=value)");
      }
      for (const auto& [k, v] : entries_) {
        if (k == key) {
          return LineError(line_no, "duplicate key '" + std::string(key) + "'");
        }
      }
      entries_.emplace_back(key, value);
    }
    return Status::Ok();
  }

  bool Take(std::string_view key, std::string_view* value) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == key) {
        *value = entries_[i].second;
        entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  // Error unless every key was consumed.
  Status Done(size_t line_no) const {
    if (entries_.empty()) {
      return Status::Ok();
    }
    return LineError(line_no, "unknown key '" + std::string(entries_[0].first) + "'");
  }

 private:
  std::vector<std::pair<std::string_view, std::string_view>> entries_;
};

// Repeated keys that KeyValues rejects (chan=...) are pre-extracted here.
void ExtractRepeated(std::vector<std::string_view>* fields, std::string_view key,
                     std::vector<std::string_view>* out) {
  const std::string prefix = std::string(key) + "=";
  auto it = fields->begin();
  while (it != fields->end()) {
    if (it->size() > prefix.size() && it->substr(0, prefix.size()) == prefix) {
      out->push_back(it->substr(prefix.size()));
      it = fields->erase(it);
    } else {
      ++it;
    }
  }
}

// Shared by SCENARIO records (radio kinds) and inline LINK records: the
// optional loss-pm= / duty-on-us= / duty-period-us= radio-dynamics keys,
// with the same presence rules the serializer follows.
Status ParseRadioAttrs(KeyValues* kv, size_t line_no, uint32_t* loss_pm,
                       SimDuration* duty_on, SimDuration* duty_period) {
  std::string_view value;
  if (kv->Take("loss-pm", &value)) {
    uint64_t pm = 0;
    // 0 would serialize as an absent key; 1000 per-mille is a link that
    // never delivers, which Topology::Validate rejects.
    if (!ParseU64(value, &pm) || pm == 0 || pm >= 1000) {
      return LineError(line_no, "loss-pm= must be in [1, 999]");
    }
    *loss_pm = static_cast<uint32_t>(pm);
  }
  SimDuration on = 0;
  const bool has_on = kv->Take("duty-on-us", &value);
  if (has_on && (!ParseDurationUs(value, &on) || on == 0)) {
    return LineError(line_no, "malformed duty-on-us=");
  }
  SimDuration period = 0;
  const bool has_period = kv->Take("duty-period-us", &value);
  if (has_period && (!ParseDurationUs(value, &period) || period == 0)) {
    return LineError(line_no, "malformed duty-period-us=");
  }
  if (has_on != has_period) {
    return LineError(line_no, "duty-on-us= and duty-period-us= come as a pair");
  }
  if (has_on) {
    if (on > period) {
      return LineError(line_no, "duty-on-us= must not exceed duty-period-us=");
    }
    *duty_on = on;
    *duty_period = period;
  }
  return Status::Ok();
}

struct TaskAttrs {
  TaskKind kind = TaskKind::kCompute;
  SimDuration wcet = 0;
  Criticality criticality = Criticality::kMedium;
  uint32_t state_bytes = 0;
  bool has_node = false;
  uint32_t node = 0;
  bool has_deadline = false;
  SimDuration deadline = 0;
};

// Shared by TASK records and task-add edits: kind/wcet/crit plus the
// kind-dependent state / node / deadline fields, with the same presence
// rules the serializer follows.
Status ParseTaskAttrs(KeyValues* kv, size_t line_no, const char* kind_key, TaskAttrs* out) {
  std::string_view value;
  if (!kv->Take(kind_key, &value)) {
    return LineError(line_no, std::string("missing ") + kind_key + "=");
  }
  const auto kind = ParseTaskKind(value);
  if (!kind.has_value()) {
    return LineError(line_no, "unknown task kind '" + std::string(value) + "'");
  }
  out->kind = *kind;
  if (!kv->Take("wcet-us", &value) || !ParseDurationUs(value, &out->wcet)) {
    return LineError(line_no, "missing or malformed wcet-us=");
  }
  if (!kv->Take("crit", &value)) {
    return LineError(line_no, "missing crit=");
  }
  const auto crit = ParseCriticality(value);
  if (!crit.has_value()) {
    return LineError(line_no, "unknown criticality '" + std::string(value) + "'");
  }
  out->criticality = *crit;
  if (kv->Take("state", &value)) {
    if (out->kind != TaskKind::kCompute) {
      return LineError(line_no, "state= is only valid for compute tasks");
    }
    if (!ParseU32Field(value, &out->state_bytes)) {
      return LineError(line_no, "malformed state=");
    }
  }
  if (kv->Take("node", &value)) {
    if (out->kind == TaskKind::kCompute) {
      return LineError(line_no, "node= is only valid for pinned source/sink tasks");
    }
    if (!ParseU32Field(value, &out->node)) {
      return LineError(line_no, "malformed node=");
    }
    out->has_node = true;
  }
  if (kv->Take("deadline-us", &value)) {
    if (out->kind != TaskKind::kSink) {
      return LineError(line_no, "deadline-us= is only valid for sink tasks");
    }
    if (!ParseDurationUs(value, &out->deadline)) {
      return LineError(line_no, "malformed deadline-us=");
    }
    out->has_deadline = true;
  }
  if (out->kind != TaskKind::kCompute && !out->has_node) {
    return LineError(line_no, "source/sink tasks require node=");
  }
  if (out->kind == TaskKind::kSink && !out->has_deadline) {
    return LineError(line_no, "sink tasks require deadline-us=");
  }
  return Status::Ok();
}

// Parser state machine: canonical section order is enforced, so a record
// in the wrong place reads as corruption, not as a reordering.
enum class Section {
  kHeader,    // expecting BTRX
  kName,      // expecting NAME
  kScenario,  // expecting SCENARIO
  kInline,    // LINK / TASK / FLOW / CONFIG
  kConfig,    // expecting CONFIG
  kSweeps,    // SWEEP / PHASE
  kPhases,    // FAULT / EDIT / PHASE / END
  kDone,      // nothing after END
};

}  // namespace

const char* ScenarioKindName(SpecScenario::Kind kind) {
  switch (kind) {
    case SpecScenario::Kind::kAvionics:
      return "avionics";
    case SpecScenario::Kind::kScada:
      return "scada";
    case SpecScenario::Kind::kConvoy:
      return "convoy";
    case SpecScenario::Kind::kRandom:
      return "random";
    case SpecScenario::Kind::kInline:
      return "inline";
    case SpecScenario::Kind::kConvoyMobile:
      return "convoy-mobile";
    case SpecScenario::Kind::kLossyMesh:
      return "lossy-mesh";
  }
  return "?";
}

std::optional<SpecScenario::Kind> ParseScenarioKind(std::string_view name) {
  for (int i = 0; i < SpecScenario::kKindCount; ++i) {
    const auto kind = static_cast<SpecScenario::Kind>(i);
    if (name == ScenarioKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

bool ParsePaceFraction(std::string_view text, uint32_t* mille) {
  if (text == "1") {
    *mille = 1000;
    return true;
  }
  if (text.size() < 3 || text.size() > 5 || text[0] != '0' || text[1] != '.') {
    return false;
  }
  const std::string_view digits = text.substr(2);
  if (digits.back() == '0') {
    return false;  // trailing zero: not the canonical spelling
  }
  uint32_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  for (size_t i = digits.size(); i < 3; ++i) {
    value *= 10;
  }
  *mille = value;  // last digit nonzero => value >= 1
  return true;
}

std::string PaceFractionText(uint32_t mille) {
  if (mille >= 1000) {
    return "1";
  }
  std::string digits = std::to_string(mille);
  digits.insert(0, 3 - digits.size(), '0');
  while (digits.back() == '0') {
    digits.pop_back();
  }
  return "0." + digits;
}

std::string SerializeSpecScenario(const SpecScenario& scenario) {
  std::string out;
  out.reserve(256);
  AppendScenario(&out, scenario);
  return out;
}

std::string SerializeExperimentSpec(const ExperimentSpec& spec) {
  std::string out;
  out.reserve(512);
  out += "BTRX 1\n";
  out += "NAME " + spec.name + '\n';
  AppendScenario(&out, spec.scenario);
  out += "CONFIG f=" + std::to_string(spec.max_faults) +
         " recovery-us=" + Us(spec.recovery_bound) + " seed=" + std::to_string(spec.seed);
  if (!spec.heartbeats) {
    out += " heartbeats=0";
  }
  if (spec.shards != 0) {
    out += " shards=" + std::to_string(spec.shards);
  }
  if (spec.dissem != DissemMode::kUnicast) {
    out += " dissem=";
    out += DissemModeName(spec.dissem);
  }
  if (spec.beacon_period != 0) {
    out += " beacon-us=" + Us(spec.beacon_period);
  }
  if (spec.suppress_k != 0) {
    out += " suppress-k=" + std::to_string(spec.suppress_k);
  }
  if (spec.pace_mille != 0) {
    out += " pace-fraction=" + PaceFractionText(spec.pace_mille);
  }
  if (spec.wire_version == 4) {
    out += " wire=v4";
  }
  out += '\n';
  for (const SweepAxis& axis : spec.sweeps) {
    out += "SWEEP " + axis.key;
    for (uint64_t v : axis.values) {
      out += ' ';
      out += std::to_string(v);
    }
    out += '\n';
  }
  for (const SpecPhase& phase : spec.phases) {
    out += "PHASE periods=" + std::to_string(phase.periods) + '\n';
    for (const SpecFault& fault : phase.faults) {
      AppendFault(&out, fault);
    }
    if (phase.has_edit()) {
      for (const DeltaEdit& e : phase.edit.edits) {
        AppendEdit(&out, phase.edit_at, e);
      }
    }
  }
  out += "END\n";
  return out;
}

StatusOr<ExperimentSpec> ParseExperimentSpec(const std::string& text) {
  ExperimentSpec spec;
  spec.name.clear();
  Section section = Section::kHeader;
  size_t line_no = 0;
  size_t pos = 0;
  std::vector<std::string_view> fields;
  const std::string_view all(text);

  // Inline-scenario bookkeeping for reference validation.
  std::vector<std::string> task_names;
  auto known_task = [&task_names](std::string_view name) {
    return std::find(task_names.begin(), task_names.end(), name) != task_names.end();
  };

  while (pos < text.size()) {
    ++line_no;
    size_t nl = all.find('\n', pos);
    const bool terminated = nl != std::string_view::npos;
    std::string_view line = all.substr(pos, (terminated ? nl : text.size()) - pos);
    pos = terminated ? nl + 1 : text.size();

    // Hand-authoring affordances: blank lines, comments, indentation.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos || line[first] == '#') {
      continue;
    }
    size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (!terminated) {
      return LineError(line_no, "truncated: last line is not newline-terminated");
    }
    if (section == Section::kDone) {
      return LineError(line_no, "unexpected record after END");
    }
    if (!SplitFields(line, &fields)) {
      return LineError(line_no, "malformed line (fields must be single-space separated)");
    }
    const std::string_view rec = fields[0];

    if (section == Section::kHeader) {
      if (rec != "BTRX" || fields.size() != 2 || fields[1] != "1") {
        return LineError(line_no, "expected header 'BTRX 1'");
      }
      section = Section::kName;
      continue;
    }
    if (section == Section::kName) {
      if (rec != "NAME" || fields.size() != 2) {
        return LineError(line_no, "expected 'NAME <name>'");
      }
      if (!ValidNameToken(fields[1])) {
        return LineError(line_no, "invalid experiment name");
      }
      spec.name = std::string(fields[1]);
      section = Section::kScenario;
      continue;
    }
    if (section == Section::kScenario) {
      if (rec != "SCENARIO" || fields.size() < 2) {
        return LineError(line_no, "expected 'SCENARIO <kind> ...'");
      }
      SpecScenario& s = spec.scenario;
      const auto kind = ParseScenarioKind(fields[1]);
      if (!kind.has_value()) {
        return LineError(line_no, "unknown scenario kind '" + std::string(fields[1]) + "'");
      }
      s.kind = *kind;
      KeyValues kv;
      Status loaded = kv.Load(fields, 2, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      std::string_view value;
      if (!kv.Take("nodes", &value) || !ParseU64(value, &s.nodes) || s.nodes == 0 ||
          s.nodes > kMaxSpecNodes) {
        return LineError(line_no, "missing or malformed nodes= (1.." +
                                      std::to_string(kMaxSpecNodes) + ")");
      }
      if (RadioKind(s.kind)) {
        Status radio = ParseRadioAttrs(&kv, line_no, &s.loss_pm, &s.duty_on, &s.duty_period);
        if (!radio.ok()) {
          return radio;
        }
      }
      if (s.kind == SpecScenario::Kind::kRandom) {
        if (kv.Take("scenario-seed", &value) && !ParseU64(value, &s.scenario_seed)) {
          return LineError(line_no, "malformed scenario-seed=");
        }
        if (kv.Take("layers", &value) && (!ParseU64(value, &s.layers) || s.layers == 0)) {
          return LineError(line_no, "malformed layers=");
        }
        if (kv.Take("tasks-per-layer", &value) &&
            (!ParseU64(value, &s.tasks_per_layer) || s.tasks_per_layer == 0)) {
          return LineError(line_no, "malformed tasks-per-layer=");
        }
        if (kv.Take("period-us", &value) &&
            (!ParseDurationUs(value, &s.random_period) || s.random_period == 0)) {
          return LineError(line_no, "malformed period-us=");
        }
      }
      if (s.kind == SpecScenario::Kind::kInline) {
        if (!kv.Take("period-us", &value) || !ParseDurationUs(value, &s.period) ||
            s.period == 0) {
          return LineError(line_no, "inline scenarios require period-us=");
        }
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      section =
          s.kind == SpecScenario::Kind::kInline ? Section::kInline : Section::kConfig;
      continue;
    }

    if (section == Section::kInline && rec == "LINK") {
      SpecScenario& s = spec.scenario;
      KeyValues kv;
      Status loaded = kv.Load(fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      SpecScenario::Link link;
      std::string_view value;
      if (!kv.Take("name", &value) || !ValidNameToken(value)) {
        return LineError(line_no, "missing or invalid link name=");
      }
      link.name = std::string(value);
      for (const SpecScenario::Link& other : s.links) {
        if (other.name == link.name) {
          return LineError(line_no, "duplicate link name '" + link.name + "'");
        }
      }
      if (!kv.Take("nodes", &value) || !ParseU32List(value, &link.nodes) ||
          link.nodes.size() < 2) {
        return LineError(line_no, "missing or malformed nodes= (need >= 2 endpoints)");
      }
      for (size_t i = 0; i < link.nodes.size(); ++i) {
        if (link.nodes[i] >= s.nodes) {
          return LineError(line_no, "link endpoint " + std::to_string(link.nodes[i]) +
                                        " out of range (scenario has " +
                                        std::to_string(s.nodes) + " nodes)");
        }
        for (size_t j = 0; j < i; ++j) {
          if (link.nodes[j] == link.nodes[i]) {
            return LineError(line_no, "duplicate link endpoint");
          }
        }
      }
      uint64_t bw = 0;
      if (!kv.Take("bw-bps", &value) || !ParseU64(value, &bw) || bw == 0 ||
          bw > static_cast<uint64_t>(INT64_MAX)) {
        return LineError(line_no, "missing or malformed bw-bps=");
      }
      link.bandwidth_bps = static_cast<int64_t>(bw);
      if (!kv.Take("prop-us", &value) || !ParseDurationUs(value, &link.propagation)) {
        return LineError(line_no, "missing or malformed prop-us=");
      }
      Status radio =
          ParseRadioAttrs(&kv, line_no, &link.loss_pm, &link.duty_on, &link.duty_period);
      if (!radio.ok()) {
        return radio;
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      s.links.push_back(std::move(link));
      continue;
    }
    if (section == Section::kInline && rec == "TASK") {
      SpecScenario& s = spec.scenario;
      if (!s.flows.empty()) {
        return LineError(line_no, "TASK records must precede FLOW records");
      }
      KeyValues kv;
      Status loaded = kv.Load(fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      std::string_view value;
      if (!kv.Take("name", &value) || !ValidNameToken(value)) {
        return LineError(line_no, "missing or invalid task name=");
      }
      if (known_task(value)) {
        return LineError(line_no, "duplicate task name '" + std::string(value) + "'");
      }
      TaskAttrs attrs;
      Status parsed = ParseTaskAttrs(&kv, line_no, "kind", &attrs);
      if (!parsed.ok()) {
        return parsed;
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      if (attrs.has_node && attrs.node >= s.nodes) {
        return LineError(line_no, "pinned node " + std::to_string(attrs.node) +
                                      " out of range (scenario has " +
                                      std::to_string(s.nodes) + " nodes)");
      }
      SpecScenario::Task task;
      task.name = std::string(value);
      task.kind = attrs.kind;
      task.wcet = attrs.wcet;
      task.criticality = attrs.criticality;
      task.state_bytes = attrs.state_bytes;
      task.pinned_node = attrs.node;
      task.deadline = attrs.deadline;
      task_names.push_back(task.name);
      s.tasks.push_back(std::move(task));
      continue;
    }
    if (section == Section::kInline && rec == "FLOW") {
      SpecScenario& s = spec.scenario;
      KeyValues kv;
      Status loaded = kv.Load(fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      SpecScenario::Flow flow;
      std::string_view value;
      if (!kv.Take("from", &value) || !ValidNameToken(value)) {
        return LineError(line_no, "missing or invalid from=");
      }
      flow.from = std::string(value);
      if (!kv.Take("to", &value) || !ValidNameToken(value)) {
        return LineError(line_no, "missing or invalid to=");
      }
      flow.to = std::string(value);
      if (!kv.Take("bytes", &value) || !ParseU32Field(value, &flow.bytes)) {
        return LineError(line_no, "missing or malformed bytes=");
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      if (!known_task(flow.from)) {
        return LineError(line_no, "flow references unknown task '" + flow.from + "'");
      }
      if (!known_task(flow.to)) {
        return LineError(line_no, "flow references unknown task '" + flow.to + "'");
      }
      s.flows.push_back(std::move(flow));
      continue;
    }

    if ((section == Section::kConfig || section == Section::kInline) && rec == "CONFIG") {
      KeyValues kv;
      Status loaded = kv.Load(fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      std::string_view value;
      uint64_t f = 0;
      if (!kv.Take("f", &value) || !ParseU64(value, &f) || f > 16) {
        return LineError(line_no, "missing or malformed f=");
      }
      spec.max_faults = static_cast<uint32_t>(f);
      if (!kv.Take("recovery-us", &value) ||
          !ParseDurationUs(value, &spec.recovery_bound) || spec.recovery_bound == 0) {
        return LineError(line_no, "missing or malformed recovery-us=");
      }
      if (!kv.Take("seed", &value) || !ParseU64(value, &spec.seed)) {
        return LineError(line_no, "missing or malformed seed=");
      }
      if (kv.Take("heartbeats", &value)) {
        if (value == "0") {
          spec.heartbeats = false;
        } else if (value == "1") {
          spec.heartbeats = true;
        } else {
          return LineError(line_no, "heartbeats= must be 0 or 1");
        }
      }
      if (kv.Take("shards", &value)) {
        uint64_t shards = 0;
        // 0 would serialize as an absent key, so the canonical round-trip
        // only admits explicit counts; 64 generously exceeds any host.
        if (!ParseU64(value, &shards) || shards == 0 || shards > 64) {
          return LineError(line_no, "shards= must be in [1, 64]");
        }
        spec.shards = static_cast<uint32_t>(shards);
      }
      if (kv.Take("dissem", &value)) {
        if (!ParseDissemMode(std::string(value), &spec.dissem)) {
          return LineError(line_no, "dissem= must be unicast or gossip");
        }
      }
      if (kv.Take("beacon-us", &value)) {
        if (!ParseDurationUs(value, &spec.beacon_period) || spec.beacon_period == 0) {
          return LineError(line_no, "beacon-us= must be a positive duration");
        }
      }
      if (kv.Take("suppress-k", &value)) {
        uint64_t k = 0;
        // 0 would serialize as an absent key; 64 announcements per interval
        // already exceeds any plausible neighborhood.
        if (!ParseU64(value, &k) || k == 0 || k > 64) {
          return LineError(line_no, "suppress-k= must be in [1, 64]");
        }
        spec.suppress_k = static_cast<uint32_t>(k);
      }
      if (kv.Take("pace-fraction", &value)) {
        if (!ParsePaceFraction(value, &spec.pace_mille)) {
          return LineError(line_no,
                           "pace-fraction= must be a canonical fraction in (0, 1] "
                           "(\"1\" or \"0.\" plus up to three digits, e.g. 0.25)");
        }
      }
      if (kv.Take("wire", &value)) {
        if (value == "v2") {
          spec.wire_version = 0;  // the default: serializes as an absent key
        } else if (value == "v4") {
          spec.wire_version = 4;
        } else {
          return LineError(line_no, "wire= must be v2 or v4");
        }
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      section = Section::kSweeps;
      continue;
    }

    if (section == Section::kSweeps && rec == "SWEEP") {
      if (fields.size() < 3) {
        return LineError(line_no, "expected 'SWEEP <key> <value>...'");
      }
      SweepAxis axis;
      axis.line = static_cast<uint32_t>(line_no);
      axis.key = std::string(fields[1]);
      if (axis.key != "seed" && axis.key != "f" && axis.key != "nodes" &&
          axis.key != "recovery-us") {
        return LineError(line_no, "unknown sweep key '" + axis.key +
                                      "' (seed|f|nodes|recovery-us)");
      }
      for (const SweepAxis& other : spec.sweeps) {
        if (other.key == axis.key) {
          return LineError(line_no, "duplicate sweep axis '" + axis.key + "'");
        }
      }
      if (axis.key == "nodes" && spec.scenario.kind == SpecScenario::Kind::kInline) {
        // Inline LINK/TASK records were range-checked against the declared
        // node count; re-sizing it out from under them is forbidden.
        return LineError(line_no, "sweep axis 'nodes' is not valid for inline scenarios");
      }
      for (size_t i = 2; i < fields.size(); ++i) {
        uint64_t v = 0;
        if (!ParseU64(fields[i], &v)) {
          return LineError(line_no, "malformed sweep value '" + std::string(fields[i]) + "'");
        }
        // Sweep values obey the same bounds as the CONFIG / SCENARIO
        // fields they override.
        if ((axis.key == "f" && v > 16) ||
            (axis.key == "nodes" && (v == 0 || v > kMaxSpecNodes)) ||
            (axis.key == "recovery-us" &&
             (v == 0 || v > static_cast<uint64_t>(INT64_MAX / 1000)))) {
          return LineError(line_no, "sweep value " + std::to_string(v) +
                                        " out of range for axis '" + axis.key + "'");
        }
        axis.values.push_back(v);
      }
      spec.sweeps.push_back(std::move(axis));
      continue;
    }

    if ((section == Section::kSweeps || section == Section::kPhases) && rec == "PHASE") {
      KeyValues kv;
      Status loaded = kv.Load(fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      SpecPhase phase;
      std::string_view value;
      if (!kv.Take("periods", &value) || !ParseU64(value, &phase.periods) ||
          phase.periods == 0) {
        return LineError(line_no, "missing or malformed periods= (need >= 1)");
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      spec.phases.push_back(std::move(phase));
      section = Section::kPhases;
      continue;
    }

    if (section == Section::kPhases && rec == "FAULT") {
      SpecPhase& phase = spec.phases.back();
      KeyValues kv;
      Status loaded = kv.Load(fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      SpecFault fault;
      FaultInjection& inj = fault.injection;
      std::string_view value;
      if (!kv.Take("node", &value)) {
        return LineError(line_no, "missing node=");
      }
      if (value == "critical-primary") {
        fault.critical_primary = true;
      } else {
        uint32_t node = 0;
        if (!ParseU32Field(value, &node)) {
          return LineError(line_no, "malformed node= (integer or critical-primary)");
        }
        if (spec.scenario.kind == SpecScenario::Kind::kInline &&
            node >= spec.scenario.nodes) {
          return LineError(line_no, "fault node " + std::to_string(node) +
                                        " out of range (scenario has " +
                                        std::to_string(spec.scenario.nodes) + " nodes)");
        }
        inj.node = NodeId(node);
      }
      if (!kv.Take("at-us", &value) || !ParseDurationUs(value, &inj.manifest_at)) {
        return LineError(line_no, "missing or malformed at-us=");
      }
      if (!kv.Take("behavior", &value)) {
        return LineError(line_no, "missing behavior=");
      }
      const auto behavior = ParseFaultBehavior(value);
      if (!behavior.has_value()) {
        return LineError(line_no, "unknown behavior '" + std::string(value) + "'");
      }
      inj.behavior = *behavior;
      if (kv.Take("until-us", &value)) {
        if (!ParseDurationUs(value, &inj.until) || inj.until <= inj.manifest_at) {
          return LineError(line_no, "until-us must be a time after at-us");
        }
      }
      if (kv.Take("delay-us", &value)) {
        if (inj.behavior != FaultBehavior::kDelay) {
          return LineError(line_no, "delay-us= is only valid for behavior=delay");
        }
        if (!ParseDurationUs(value, &inj.delay)) {
          return LineError(line_no, "malformed delay-us=");
        }
      }
      if (kv.Take("target", &value)) {
        if (inj.behavior != FaultBehavior::kSelectiveOmission) {
          return LineError(line_no, "target= is only valid for behavior=selective-omission");
        }
        uint32_t target = 0;
        if (!ParseU32Field(value, &target)) {
          return LineError(line_no, "malformed target=");
        }
        inj.target = NodeId(target);
      }
      if (kv.Take("flood", &value)) {
        if (inj.behavior != FaultBehavior::kEvidenceFlood) {
          return LineError(line_no, "flood= is only valid for behavior=evidence-flood");
        }
        if (!ParseU32Field(value, &inj.flood_rate) || inj.flood_rate == 0) {
          return LineError(line_no, "malformed flood=");
        }
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      phase.faults.push_back(std::move(fault));
      continue;
    }

    if (section == Section::kPhases && rec == "EDIT") {
      SpecPhase& phase = spec.phases.back();
      std::vector<std::string_view> mutable_fields = fields;
      std::vector<std::string_view> chans;
      ExtractRepeated(&mutable_fields, "chan", &chans);
      KeyValues kv;
      Status loaded = kv.Load(mutable_fields, 1, line_no);
      if (!loaded.ok()) {
        return loaded;
      }
      std::string_view value;
      SimTime at = 0;
      if (!kv.Take("at-us", &value) || !ParseDurationUs(value, &at)) {
        return LineError(line_no, "missing or malformed at-us=");
      }
      if (phase.has_edit() && phase.edit_at != at) {
        return LineError(line_no,
                         "all EDIT records in a phase form one batch and must share at-us");
      }
      if (!kv.Take("kind", &value)) {
        return LineError(line_no, "missing kind=");
      }
      const std::string kind(value);
      DeltaEdit edit;
      if (kind == "link-add" || kind == "link-remove" || kind == "link-latency") {
        if (!kv.Take("link", &value) || !ValidNameToken(value)) {
          return LineError(line_no, "missing or invalid link=");
        }
        const std::string link_name(value);
        if (kind == "link-add") {
          std::vector<uint32_t> nodes;
          if (!kv.Take("nodes", &value) || !ParseU32List(value, &nodes) || nodes.size() < 2) {
            return LineError(line_no, "missing or malformed nodes= (need >= 2 endpoints)");
          }
          std::vector<NodeId> endpoints;
          for (uint32_t n : nodes) {
            endpoints.push_back(NodeId(n));
          }
          uint64_t bw = 0;
          if (!kv.Take("bw-bps", &value) || !ParseU64(value, &bw) || bw == 0 ||
              bw > static_cast<uint64_t>(INT64_MAX)) {
            return LineError(line_no, "missing or malformed bw-bps=");
          }
          SimDuration prop = 0;
          if (!kv.Take("prop-us", &value) || !ParseDurationUs(value, &prop)) {
            return LineError(line_no, "missing or malformed prop-us=");
          }
          edit = DeltaEdit::LinkAdd(link_name, std::move(endpoints),
                                    static_cast<int64_t>(bw), prop);
        } else if (kind == "link-remove") {
          edit = DeltaEdit::LinkRemove(link_name);
        } else {
          int64_t bw = 0;  // <= 0 keeps the old value
          SimDuration prop = -1;  // < 0 keeps the old value
          bool any = false;
          if (kv.Take("bw-bps", &value)) {
            uint64_t parsed_bw = 0;
            if (!ParseU64(value, &parsed_bw) || parsed_bw == 0 ||
                parsed_bw > static_cast<uint64_t>(INT64_MAX)) {
              return LineError(line_no, "malformed bw-bps=");
            }
            bw = static_cast<int64_t>(parsed_bw);
            any = true;
          }
          if (kv.Take("prop-us", &value)) {
            if (!ParseDurationUs(value, &prop)) {
              return LineError(line_no, "malformed prop-us=");
            }
            any = true;
          }
          if (!any) {
            return LineError(line_no, "link-latency requires bw-bps= and/or prop-us=");
          }
          edit = DeltaEdit::LinkLatencyChange(link_name, bw, prop);
        }
      } else if (kind == "task-add") {
        if (!kv.Take("name", &value) || !ValidNameToken(value)) {
          return LineError(line_no, "missing or invalid name=");
        }
        const std::string task_name(value);
        TaskAttrs attrs;
        Status parsed = ParseTaskAttrs(&kv, line_no, "task-kind", &attrs);
        if (!parsed.ok()) {
          return parsed;
        }
        TaskSpec task;
        task.name = task_name;
        task.kind = attrs.kind;
        task.wcet = attrs.wcet;
        task.criticality = attrs.criticality;
        task.state_bytes = attrs.state_bytes;
        if (attrs.has_node) {
          task.pinned_node = NodeId(attrs.node);
        }
        task.relative_deadline = attrs.deadline;
        std::vector<DeltaChannel> channels;
        for (std::string_view chan : chans) {
          const size_t c1 = chan.find(':');
          const size_t c2 = c1 == std::string_view::npos
                                ? std::string_view::npos
                                : chan.find(':', c1 + 1);
          if (c2 == std::string_view::npos) {
            return LineError(line_no, "malformed chan= (expected from:to:bytes)");
          }
          DeltaChannel channel;
          const std::string_view from = chan.substr(0, c1);
          const std::string_view to = chan.substr(c1 + 1, c2 - c1 - 1);
          if (!ValidNameToken(from) || !ValidNameToken(to) ||
              !ParseU32Field(chan.substr(c2 + 1), &channel.message_bytes)) {
            return LineError(line_no, "malformed chan= (expected from:to:bytes)");
          }
          channel.from = std::string(from);
          channel.to = std::string(to);
          channels.push_back(std::move(channel));
        }
        edit = DeltaEdit::TaskAdd(std::move(task), std::move(channels));
      } else if (kind == "task-remove") {
        if (!kv.Take("name", &value) || !ValidNameToken(value)) {
          return LineError(line_no, "missing or invalid name=");
        }
        edit = DeltaEdit::TaskRemove(std::string(value));
      } else if (kind == "task-reweight") {
        if (!kv.Take("name", &value) || !ValidNameToken(value)) {
          return LineError(line_no, "missing or invalid name=");
        }
        const std::string task_name(value);
        if (!kv.Take("crit", &value)) {
          return LineError(line_no, "missing crit=");
        }
        const auto crit = ParseCriticality(value);
        if (!crit.has_value()) {
          return LineError(line_no, "unknown criticality '" + std::string(value) + "'");
        }
        edit = DeltaEdit::TaskReweight(task_name, *crit);
      } else {
        return LineError(line_no, "unknown edit kind '" + kind + "'");
      }
      if (!chans.empty() && edit.kind != DeltaKind::kTaskAdd) {
        return LineError(line_no, "chan= is only valid for kind=task-add");
      }
      Status done = kv.Done(line_no);
      if (!done.ok()) {
        return done;
      }
      phase.edit_at = at;
      phase.edit.edits.push_back(std::move(edit));
      continue;
    }

    if (section == Section::kPhases && rec == "END") {
      if (fields.size() != 1) {
        return LineError(line_no, "END takes no fields");
      }
      section = Section::kDone;
      continue;
    }

    return LineError(line_no, "unexpected record '" + std::string(rec) + "' here");
  }

  if (section != Section::kDone) {
    return LineError(line_no + 1, "truncated: missing END");
  }
  return spec;
}

}  // namespace btr
