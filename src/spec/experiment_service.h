// Fleet-scale sweep execution: parallel experiment jobs over shared caches.
//
// ExpandSweeps turns one .btrx spec into a fleet of jobs; this service
// runs that fleet. Each job is an independent experiment (build scenario,
// obtain a strategy, replay the phase script), so jobs parallelize across
// the shared ThreadPool — and, because most sweep axes (seed, fault
// scripts) do not touch the planner's inputs, most jobs want the *same*
// compiled strategy. The service routes every compile through a
// fingerprint-keyed single-flight StrategyCache: the first job of an
// equivalence class plans, the rest adopt the shared immutable Strategy
// (BtrSystem::AdoptStrategy) after a provenance check. Scenario builds are
// memoized the same way, keyed by the canonical scenario-section text.
//
// Determinism contract: the service changes wall-clock time only, never
// reports. For every job, {cache on, cache off} x {any --jobs value}
// serialize byte-identical ExperimentReports, and the combined sweep
// fingerprint — accumulated over successful jobs in expansion order, same
// formula as the pre-service sweep loop — is invariant across all four
// corners (fuzzed in tests/experiment_service_test.cc, pinned under
// ASan/UBSan and TSan).
//
// Scheduling: `jobs` lanes pull job indices from an atomic counter. Lanes
// run as pool jobs; everything nested under a job — planner waves, patch
// dissemination, sharded simulation — runs inline on that lane's worker
// (ThreadPool runs nested batches on the caller; the simulator falls back
// to sequential windows on a pool worker), so an oversubscribed jobs x
// shards sweep completes instead of deadlocking.

#ifndef BTR_SRC_SPEC_EXPERIMENT_SERVICE_H_
#define BTR_SRC_SPEC_EXPERIMENT_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/spec/experiment_runner.h"
#include "src/spec/experiment_spec.h"
#include "src/spec/strategy_cache.h"

namespace btr {

struct ServiceOptions {
  // Parallel job lanes. 0 = host hardware concurrency; 1 runs every job
  // sequentially on the calling thread — with a cold cache that reproduces
  // the pre-service sequential sweep byte-for-byte.
  size_t jobs = 0;
  // Route strategy compiles / scenario builds through the shared caches.
  // Off: every job plans from scratch (the baseline the speedup and the
  // byte-identity oracle are measured against).
  bool cache = true;
  // Retain each job's full ExperimentReport in its record (memory scales
  // with sweep size; tests and report-hungry callers only).
  bool keep_reports = false;
  // When non-empty, append one canonical record block for this sweep to
  // the results store at this path (see AppendSweepResults).
  std::string results_path;
};

// Outcome of one expanded job, in expansion order. `status` failures are
// per-job data, not service failures: the fleet keeps running.
struct SweepJobRecord {
  std::string name;        // expanded spec name ("e7/seed=3,f=2")
  Status status;           // job outcome; fields below are 0 on failure
  uint64_t fingerprint = 0;  // FingerprintExperimentReport
  size_t modes = 0;          // strategy mode count
  uint64_t correct = 0;      // summed over phases
  uint64_t expected = 0;
  SimDuration worst_recovery = 0;
  bool violated = false;     // any phase violated Definition 3.1
  uint64_t events = 0;       // simulator events summed over phases

  // Cache identity and economics.
  uint64_t planner_fingerprint = 0;
  uint64_t scenario_fingerprint = 0;
  uint32_t max_faults = 0;
  bool cache_hit = false;    // strategy served from the cache
  // Strategy source format (StrategyProvenance::source_format): 0 =
  // planned in-process, 2 = loaded from v2/v3 text, 4 = loaded from a v4
  // binary image. Recorded so results provenance pins which serialization
  // the strategy crossed, not just which planner produced it.
  uint32_t strategy_format = 0;
  uint64_t plan_us = 0;      // scenario build + plan/adopt wall time
  uint64_t run_us = 0;       // phase-script wall time

  ExperimentReport report;   // populated only with ServiceOptions::keep_reports
};

struct SweepServiceReport {
  std::string spec_name;
  std::vector<SweepJobRecord> jobs;  // expansion order, one per expanded spec
  size_t failures = 0;
  uint64_t total_events = 0;
  // Over successful jobs in expansion order:
  //   combined = combined * 1099511628211 ^ job.fingerprint
  // — the exact accumulation the pre-service sweep loop used, so the
  // BENCH_JSON fingerprint is comparable across the transition.
  uint64_t combined_fingerprint = 0;

  size_t lanes = 0;                  // parallel lanes actually used
  uint64_t wall_us = 0;              // whole-sweep wall time
  StrategyCache::Stats strategy_cache;
  ScenarioCache::Stats scenario_cache;

  double cache_hit_ratio() const {
    const uint64_t total = strategy_cache.hits + strategy_cache.misses;
    return total == 0 ? 0.0 : static_cast<double>(strategy_cache.hits) / total;
  }
};

// Expands `spec`'s sweep axes and runs every job. Returns a non-OK status
// only when the fleet cannot start (sweep expansion rejected, results
// store unwritable); individual job failures land in their records.
StatusOr<SweepServiceReport> RunSweepService(const ExperimentSpec& spec,
                                             const ServiceOptions& options = {});

// --- results.btrr: the append-only results store ---------------------------
//
// Line-oriented, same parser discipline as strategy_io / .btrx. Each sweep
// appends one self-delimiting block:
//
//   BTRR 1
//   SWEEP <spec> jobs=<lanes> cache=<0|1> runs=<n> failures=<n>
//         combined-fp=<16hex> strategy-hits=<n> strategy-misses=<n>
//         wall-us=<n>                                   (one line)
//   JOB <name> ok=<0|1> fp=<16hex> planner-fp=<16hex> scenario-fp=<16hex>
//       f=<n> fmt=v<n> cache=<hit|miss> plan-us=<n> run-us=<n>
//                                                       (one line each)
//   END
//
// Appends never rewrite: history accumulates, one block per sweep run.
// The fmt= field (strategy source format) postdates the first stores; the
// parser accepts records without it and reports them as format 0.

// One parsed block (header fields + its JOB rows).
struct SweepResultsRecord {
  std::string spec_name;
  size_t lanes = 0;
  bool cache = false;
  size_t runs = 0;
  size_t failures = 0;
  uint64_t combined_fingerprint = 0;
  uint64_t strategy_hits = 0;
  uint64_t strategy_misses = 0;
  uint64_t wall_us = 0;
  struct Job {
    std::string name;
    bool ok = false;
    uint64_t fingerprint = 0;
    uint64_t planner_fingerprint = 0;
    uint64_t scenario_fingerprint = 0;
    uint32_t max_faults = 0;
    bool cache_hit = false;
    uint32_t strategy_format = 0;  // 0 when the record predates fmt=
    uint64_t plan_us = 0;
    uint64_t run_us = 0;
  };
  std::vector<Job> jobs;
};

// The canonical text block for one sweep (exact inverse of
// ParseResultsStore over a single block).
std::string SerializeSweepResults(const SweepServiceReport& report,
                                  const ServiceOptions& options);

// Appends the block to `path`, creating the file if needed.
Status AppendSweepResults(const std::string& path, const SweepServiceReport& report,
                          const ServiceOptions& options);

// Strict whole-store parser: every block, line-numbered errors.
StatusOr<std::vector<SweepResultsRecord>> ParseResultsStore(const std::string& text);

}  // namespace btr

#endif  // BTR_SRC_SPEC_EXPERIMENT_SERVICE_H_
